//===- tests/DatalogTests.cpp - Datalog engine unit tests -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "datalog/Engine.h"

#include <gtest/gtest.h>

#include <set>

using namespace intro::datalog;

namespace {

Term V(uint32_t N) { return Term::var(N); }
Term C(uint32_t N) { return Term::cst(N); }

std::vector<std::vector<uint32_t>> dump(const Relation &Rel) {
  std::vector<std::vector<uint32_t>> Out;
  for (uint32_t Index = 0; Index < Rel.size(); ++Index) {
    auto Tuple = Rel.tuple(Index);
    Out.emplace_back(Tuple.begin(), Tuple.end());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(Relation, InsertDedupContains) {
  Relation Rel("edge", 2);
  EXPECT_TRUE(Rel.insert(std::array<uint32_t, 2>{1, 2}));
  EXPECT_FALSE(Rel.insert(std::array<uint32_t, 2>{1, 2}));
  EXPECT_TRUE(Rel.insert(std::array<uint32_t, 2>{2, 1}));
  EXPECT_EQ(Rel.size(), 2u);
  EXPECT_TRUE(Rel.contains(std::array<uint32_t, 2>{1, 2}));
  EXPECT_FALSE(Rel.contains(std::array<uint32_t, 2>{3, 3}));
}

TEST(Engine, TransitiveClosure) {
  Engine E;
  uint32_t Edge = E.addRelation("edge", 2);
  uint32_t Path = E.addRelation("path", 2);

  // path(x, y) <- edge(x, y).
  E.addRule(Rule{{Atom{Path, {V(0), V(1)}}}, {Atom{Edge, {V(0), V(1)}}}, {}});
  // path(x, z) <- path(x, y), edge(y, z).
  E.addRule(Rule{{Atom{Path, {V(0), V(2)}}},
                 {Atom{Path, {V(0), V(1)}}, Atom{Edge, {V(1), V(2)}}},
                 {}});

  // A chain 0 -> 1 -> 2 -> 3 plus a self-contained edge 7 -> 8.
  for (auto [A, B] :
       std::vector<std::pair<uint32_t, uint32_t>>{{0, 1}, {1, 2}, {2, 3},
                                                  {7, 8}})
    E.relation(Edge).insert(std::array<uint32_t, 2>{A, B});

  EngineStats Stats = E.run();
  EXPECT_FALSE(Stats.BudgetExceeded);

  auto Paths = dump(E.relation(Path));
  std::vector<std::vector<uint32_t>> Expected = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {7, 8}};
  EXPECT_EQ(Paths, Expected);
}

TEST(Engine, TransitiveClosureOnCycleTerminates) {
  Engine E;
  uint32_t Edge = E.addRelation("edge", 2);
  uint32_t Path = E.addRelation("path", 2);
  E.addRule(Rule{{Atom{Path, {V(0), V(1)}}}, {Atom{Edge, {V(0), V(1)}}}, {}});
  E.addRule(Rule{{Atom{Path, {V(0), V(2)}}},
                 {Atom{Path, {V(0), V(1)}}, Atom{Edge, {V(1), V(2)}}},
                 {}});
  for (uint32_t Node = 0; Node < 10; ++Node)
    E.relation(Edge).insert(std::array<uint32_t, 2>{Node, (Node + 1) % 10});
  E.run();
  // Complete digraph on the cycle: 100 paths.
  EXPECT_EQ(E.relation(Path).size(), 100u);
}

TEST(Engine, ConstantsInBodyFilter) {
  Engine E;
  uint32_t In = E.addRelation("in", 2);
  uint32_t Out = E.addRelation("out", 1);
  // out(y) <- in(5, y).
  E.addRule(Rule{{Atom{Out, {V(0)}}}, {Atom{In, {C(5), V(0)}}}, {}});
  E.relation(In).insert(std::array<uint32_t, 2>{5, 100});
  E.relation(In).insert(std::array<uint32_t, 2>{6, 200});
  E.relation(In).insert(std::array<uint32_t, 2>{5, 300});
  E.run();
  auto Result = dump(E.relation(Out));
  EXPECT_EQ(Result, (std::vector<std::vector<uint32_t>>{{100}, {300}}));
}

TEST(Engine, NegationOnExtensionalRelation) {
  Engine E;
  uint32_t Node = E.addRelation("node", 1);
  uint32_t Banned = E.addRelation("banned", 1);
  uint32_t Ok = E.addRelation("ok", 1);
  // ok(x) <- node(x), !banned(x).
  E.addRule(Rule{{Atom{Ok, {V(0)}}},
                 {Atom{Node, {V(0)}}, Atom{Banned, {V(0)}, /*Negated=*/true}},
                 {}});
  for (uint32_t N : {1u, 2u, 3u, 4u})
    E.relation(Node).insert(std::array<uint32_t, 1>{N});
  E.relation(Banned).insert(std::array<uint32_t, 1>{2});
  E.relation(Banned).insert(std::array<uint32_t, 1>{4});
  E.run();
  EXPECT_EQ(dump(E.relation(Ok)),
            (std::vector<std::vector<uint32_t>>{{1}, {3}}));
}

TEST(Engine, FunctorsBindHeadVariables) {
  Engine E;
  uint32_t In = E.addRelation("in", 1);
  uint32_t Out = E.addRelation("out", 2);
  uint32_t Doubler = E.addFunctor(
      [](std::span<const uint32_t> Args) { return Args[0] * 2; });
  // out(x, double(x)) <- in(x).
  Rule R;
  R.Body = {Atom{In, {V(0)}}};
  R.Functors = {FunctorCall{Doubler, 1, {V(0)}}};
  R.Heads = {Atom{Out, {V(0), V(1)}}};
  E.addRule(std::move(R));
  for (uint32_t N : {3u, 5u})
    E.relation(In).insert(std::array<uint32_t, 1>{N});
  E.run();
  EXPECT_EQ(dump(E.relation(Out)),
            (std::vector<std::vector<uint32_t>>{{3, 6}, {5, 10}}));
}

TEST(Engine, MultipleHeadsFireTogether) {
  Engine E;
  uint32_t In = E.addRelation("in", 1);
  uint32_t OutA = E.addRelation("a", 1);
  uint32_t OutB = E.addRelation("b", 1);
  E.addRule(Rule{{Atom{OutA, {V(0)}}, Atom{OutB, {V(0)}}},
                 {Atom{In, {V(0)}}},
                 {}});
  E.relation(In).insert(std::array<uint32_t, 1>{9});
  E.run();
  EXPECT_EQ(E.relation(OutA).size(), 1u);
  EXPECT_EQ(E.relation(OutB).size(), 1u);
}

TEST(Engine, RecursionThroughFunctorTerminatesViaDedup) {
  // next(x) saturates because the functor output is capped (modular).
  Engine E;
  uint32_t Reach = E.addRelation("reach", 1);
  uint32_t Step = E.addFunctor(
      [](std::span<const uint32_t> Args) { return (Args[0] + 1) % 16; });
  Rule R;
  R.Body = {Atom{Reach, {V(0)}}};
  R.Functors = {FunctorCall{Step, 1, {V(0)}}};
  R.Heads = {Atom{Reach, {V(1)}}};
  E.addRule(std::move(R));
  E.relation(Reach).insert(std::array<uint32_t, 1>{0});
  EngineStats Stats = E.run();
  EXPECT_FALSE(Stats.BudgetExceeded);
  EXPECT_EQ(E.relation(Reach).size(), 16u);
}

TEST(Engine, TupleBudgetAborts) {
  // An exploding rule: pairs(x, y) <- pairs(x, y') , pairs(x', y). With a
  // functor-free cartesian growth this saturates quickly; use the budget.
  Engine E;
  uint32_t Reach = E.addRelation("reach", 1);
  uint32_t Step = E.addFunctor(
      [](std::span<const uint32_t> Args) { return Args[0] + 1; }); // Unbounded.
  Rule R;
  R.Body = {Atom{Reach, {V(0)}}};
  R.Functors = {FunctorCall{Step, 1, {V(0)}}};
  R.Heads = {Atom{Reach, {V(1)}}};
  E.addRule(std::move(R));
  E.relation(Reach).insert(std::array<uint32_t, 1>{0});
  EngineStats Stats = E.run(/*MaxTuples=*/1000);
  EXPECT_TRUE(Stats.BudgetExceeded);
}

TEST(Engine, SemiNaiveMatchesNaiveOnDiamond) {
  // Two rules feeding each other: ensure no derivations are missed.
  Engine E;
  uint32_t Edge = E.addRelation("edge", 2);
  uint32_t Left = E.addRelation("left", 2);
  uint32_t Right = E.addRelation("right", 2);
  // left(x,y) <- edge(x,y).          right(x,y) <- left(x,y).
  // left(x,z) <- right(x,y), edge(y,z).
  E.addRule(Rule{{Atom{Left, {V(0), V(1)}}}, {Atom{Edge, {V(0), V(1)}}}, {}});
  E.addRule(Rule{{Atom{Right, {V(0), V(1)}}}, {Atom{Left, {V(0), V(1)}}}, {}});
  E.addRule(Rule{{Atom{Left, {V(0), V(2)}}},
                 {Atom{Right, {V(0), V(1)}}, Atom{Edge, {V(1), V(2)}}},
                 {}});
  for (uint32_t Node = 0; Node < 6; ++Node)
    E.relation(Edge).insert(std::array<uint32_t, 2>{Node, Node + 1});
  E.run();
  // left = all paths: 6+5+4+3+2+1 = 21.
  EXPECT_EQ(E.relation(Left).size(), 21u);
  EXPECT_EQ(E.relation(Right).size(), 21u);
}

TEST(IndexKeyHash, OldSchemeCollisionFamilyNowHashesDistinctly) {
  // The retired `(RelationIndex << 8) ^ Mask` hash sent every key with
  // Mask == RelationIndex << 8 to bucket 0: (1, 0x100), (2, 0x200), ...
  // With one join index per indexed relation this was the *common* key
  // shape, not a pathological one.  mixIndexKeyBits must spread the family.
  auto Pack = [](uint32_t RelationIndex, uint32_t Mask) {
    return (static_cast<uint64_t>(RelationIndex) << 32) | Mask;
  };
  std::set<uint64_t> Hashes;
  constexpr uint32_t FamilySize = 24; // Masks fit in 32 bits up to rel 23.
  for (uint32_t Rel = 1; Rel < FamilySize; ++Rel) {
    uint32_t Mask = Rel << 8;
    EXPECT_EQ((Rel << 8) ^ Mask, 0u) << "family member no longer collides "
                                        "under the old scheme; fix the test";
    Hashes.insert(mixIndexKeyBits(Pack(Rel, Mask)));
  }
  EXPECT_EQ(Hashes.size(), FamilySize - 1)
      << "mixed hashes still collide within the old collision family";
}

TEST(IndexKeyHash, MixDependsOnEveryFieldAndIsDeterministic) {
  // Same mask under different relations, and different masks under one
  // relation, must produce distinct values; equal input, equal output.
  auto Pack = [](uint32_t RelationIndex, uint32_t Mask) {
    return (static_cast<uint64_t>(RelationIndex) << 32) | Mask;
  };
  EXPECT_EQ(mixIndexKeyBits(Pack(3, 5)), mixIndexKeyBits(Pack(3, 5)));
  EXPECT_NE(mixIndexKeyBits(Pack(3, 5)), mixIndexKeyBits(Pack(4, 5)));
  EXPECT_NE(mixIndexKeyBits(Pack(3, 5)), mixIndexKeyBits(Pack(3, 6)));
  // Flipping any single input bit changes the output (full avalanche in
  // the weak sense the index map needs).
  uint64_t Base = mixIndexKeyBits(Pack(7, 0b1011));
  for (int Bit = 0; Bit < 64; ++Bit)
    EXPECT_NE(mixIndexKeyBits(Pack(7, 0b1011) ^ (1ull << Bit)), Base)
        << "bit " << Bit;
}
