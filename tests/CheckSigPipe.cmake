# Regression test for the repo-wide SIGPIPE policy (support/Socket.h):
# `intro_batch ... | head` must survive the consumer closing the pipe.
# Before ignoreSigPipe() ran in the tool mains, the default disposition
# killed the batch the moment its stdout reader went away — mid-batch, no
# exit code, no report, no quarantine copy.  A dead *progress* consumer is
# a clean stop; a *result* file must still be written.
#
# Run as: cmake -DINTRO_BATCH=<path> -DCORPUS=<input> -P CheckSigPipe.cmake

if(NOT DEFINED INTRO_BATCH OR NOT DEFINED CORPUS)
  message(FATAL_ERROR "pass -DINTRO_BATCH=<path> and -DCORPUS=<input>")
endif()

find_program(HEAD_TOOL head REQUIRED)

# `head -c 0` exits without reading a byte, so every stdout write the batch
# makes afterwards hits a closed pipe.  A SIGPIPE death surfaces in
# RESULTS_VARIABLE as a signal description instead of the numeric "0".
set(REPORT ${CMAKE_CURRENT_BINARY_DIR}/sigpipe_report.json)
file(REMOVE ${REPORT})
execute_process(
  COMMAND ${INTRO_BATCH} --report=${REPORT} ${CORPUS}
  COMMAND ${HEAD_TOOL} -c 0
  RESULTS_VARIABLE CODES
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)

list(GET CODES 0 BATCH_CODE)
if(NOT BATCH_CODE STREQUAL "0")
  message(SEND_ERROR
    "intro_batch | head -c 0: expected clean exit 0, got '${BATCH_CODE}' "
    "(a signal name here means the SIGPIPE policy regressed)\n"
    "stderr: ${ERR}")
endif()

# The result channel is not the progress channel: the report file must have
# been written in full even though stdout was gone.
if(NOT EXISTS ${REPORT})
  message(SEND_ERROR "report file was not written after the stdout EPIPE")
else()
  file(READ ${REPORT} REPORT_TEXT)
  string(FIND "${REPORT_TEXT}" "intro-batch-report-v1" POS)
  if(POS EQUAL -1)
    message(SEND_ERROR "report file is missing its schema marker:\n"
                       "${REPORT_TEXT}")
  endif()
endif()
file(REMOVE ${REPORT})
