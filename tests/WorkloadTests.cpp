//===- tests/WorkloadTests.cpp - Workload generator tests -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Printer.h"
#include "ir/Validator.h"
#include "workload/DaCapo.h"
#include "workload/Random.h"

#include <gtest/gtest.h>

using namespace intro;

TEST(Profiles, AllNineBenchmarksExist) {
  auto Profiles = dacapoProfiles();
  ASSERT_EQ(Profiles.size(), 9u);
  std::vector<std::string> Names;
  for (const WorkloadProfile &P : Profiles)
    Names.push_back(P.Name);
  std::vector<std::string> Expected = {"antlr",  "bloat",    "chart",
                                       "eclipse", "hsqldb",  "jython",
                                       "lusearch", "pmd",    "xalan"};
  EXPECT_EQ(Names, Expected);
}

TEST(Profiles, ScalabilitySubjectsAreTheSixOfFigures57) {
  auto Subjects = scalabilitySubjects();
  ASSERT_EQ(Subjects.size(), 6u);
  EXPECT_EQ(Subjects[0].Name, "bloat");
  EXPECT_EQ(Subjects[5].Name, "xalan");
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(dacapoProfile("jython").Name, "jython");
  EXPECT_GT(dacapoProfile("jython").HubFanout, 0u);
}

TEST(Generator, AllProfilesProduceValidPrograms) {
  for (const WorkloadProfile &Profile : dacapoProfiles()) {
    Program Prog = generateWorkload(Profile);
    auto Errors = validateProgram(Prog);
    EXPECT_TRUE(Errors.empty())
        << Profile.Name << ": " << (Errors.empty() ? "" : Errors[0]);
    EXPECT_GE(Prog.entries().size(), 1u) << Profile.Name;
  }
}

TEST(Generator, DeterministicInSeed) {
  WorkloadProfile Profile = dacapoProfile("chart");
  Program A = generateWorkload(Profile);
  Program B = generateWorkload(Profile);
  EXPECT_EQ(printProgram(A), printProgram(B));
}

TEST(Generator, SeedChangesProgram) {
  WorkloadProfile Profile = dacapoProfile("chart");
  Program A = generateWorkload(Profile);
  Profile.Seed += 1;
  Program B = generateWorkload(Profile);
  EXPECT_NE(printProgram(A), printProgram(B));
}

TEST(Generator, StructuralKnobsAreVisible) {
  WorkloadProfile P;
  P.Name = "knobs";
  P.NumFamilies = 3;
  P.VariantsPerFamily = 2;
  P.NumContainerClasses = 2;
  P.ContainerUses = 10;
  P.LeafChainLength = 5;
  P.HubFanout = 7;
  P.NumGenClasses = 2;
  P.NumClientClasses = 2;
  P.ClientAllocSites = 3;
  P.HelperDepth = 2;
  Program Prog = generateWorkload(P);
  EXPECT_TRUE(validateProgram(Prog).empty());

  // Class census: Object + Hub + Registry + families (3 bases + 3 out-bases
  // + 6 variants + 6 outs = 18) + 2 containers + 2 gens + 2 clients +
  // 2*2 helpers + mod classes (ceil(10/5) = 2) = 33.
  EXPECT_EQ(Prog.numTypes(), 33u);

  // Hub payload allocations: one per fanout unit.
  uint32_t Payloads = 0;
  for (uint32_t Heap = 0; Heap < Prog.numHeaps(); ++Heap) {
    std::string_view Name = Prog.typeName(Prog.heap(HeapId(Heap)).Type);
    if (Name.substr(0, 3) == "Fam" && Name.find("_V") != std::string::npos)
      ++Payloads;
  }
  // 7 hub payloads + 10 container snippet values + 5 leaf scratches; main
  // seeds the leaf chain with one more variant allocation.
  EXPECT_EQ(Payloads, 7u + 10u + 5u + 1u);
}

TEST(Generator, EmptyPathologyMeansNoHubClients) {
  WorkloadProfile P;
  P.Name = "plain";
  P.HubFanout = 0;
  P.NumClientClasses = 0;
  P.ClientAllocSites = 0;
  Program Prog = generateWorkload(P);
  EXPECT_TRUE(validateProgram(Prog).empty());
  for (uint32_t Type = 0; Type < Prog.numTypes(); ++Type)
    EXPECT_NE(Prog.typeName(TypeId(Type)).substr(0, 6), "Client");
}

TEST(RandomPrograms, ValidAcrossManySeeds) {
  for (uint64_t Seed = 100; Seed < 200; ++Seed) {
    Program Prog = generateRandomProgram(Seed);
    auto Errors = validateProgram(Prog);
    ASSERT_TRUE(Errors.empty())
        << "seed " << Seed << ": " << (Errors.empty() ? "" : Errors[0]);
  }
}

TEST(RandomPrograms, DeterministicInSeed) {
  Program A = generateRandomProgram(42);
  Program B = generateRandomProgram(42);
  EXPECT_EQ(printProgram(A), printProgram(B));
  Program C = generateRandomProgram(43);
  EXPECT_NE(printProgram(A), printProgram(C));
}

TEST(RandomPrograms, OptionsControlSize) {
  RandomProgramOptions Small;
  Small.NumClasses = 2;
  Small.NumStaticMethods = 1;
  Small.InstructionsPerBody = 3;
  RandomProgramOptions Large;
  Large.NumClasses = 12;
  Large.NumStaticMethods = 8;
  Large.InstructionsPerBody = 20;
  Program A = generateRandomProgram(7, Small);
  Program B = generateRandomProgram(7, Large);
  EXPECT_LT(A.numInstructions(), B.numInstructions());
  EXPECT_LT(A.numTypes(), B.numTypes());
}

class ProfileSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProfileSweep, GenerationIsDeterministicAndValid) {
  WorkloadProfile Profile = dacapoProfiles()[GetParam()];
  Program A = generateWorkload(Profile);
  Program B = generateWorkload(Profile);
  EXPECT_TRUE(validateProgram(A).empty()) << Profile.Name;
  EXPECT_EQ(printProgram(A), printProgram(B)) << Profile.Name;
}

INSTANTIATE_TEST_SUITE_P(AllNine, ProfileSweep, ::testing::Range(0, 9));
