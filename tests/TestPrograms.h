//===- tests/TestPrograms.h - Canonical programs for tests ------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hand-written programs with known analysis results, shared across
/// the test suites.
///
//===----------------------------------------------------------------------===//

#ifndef TESTS_TESTPROGRAMS_H
#define TESTS_TESTPROGRAMS_H

#include "ir/Program.h"
#include "ir/ProgramBuilder.h"

namespace intro::testing {

/// Handles into the "two boxes" program (see makeTwoBoxes).
struct TwoBoxes {
  Program Prog;
  TypeId Object, BoxT, AT, BT;
  VarId OutA, OutB; ///< Results of b1.get() / b2.get() in main.
  VarId CastA;      ///< (A) b1.get()
  SiteId SetCall1, SetCall2, GetCall1, GetCall2;
  HeapId Box1, Box2, HeapA, HeapB;
};

/// The classic container-imprecision example:
///
///   Box b1 = new Box();  Box b2 = new Box();
///   b1.set(new A());     b2.set(new B());
///   Object oa = b1.get();  Object ob = b2.get();
///   A ca = (A) oa;
///
/// A context-insensitive analysis conflates the two boxes, so `oa` points to
/// both A and B and the cast may fail.  Object-sensitivity (depth 1+) and
/// call-site-sensitivity (depth 1+) both prove the cast safe.
/// Type-sensitivity does NOT (both boxes are allocated in the same class).
inline TwoBoxes makeTwoBoxes() {
  TwoBoxes T;
  ProgramBuilder B;
  T.Object = B.cls("Object");
  T.BoxT = B.cls("Box", T.Object);
  T.AT = B.cls("A", T.Object);
  T.BT = B.cls("B", T.Object);
  FieldId F = B.field(T.BoxT, "f");

  MethodBuilder Set = B.method(T.BoxT, "set", 1);
  Set.store(Set.thisVar(), F, Set.formal(0));

  MethodBuilder Get = B.method(T.BoxT, "get", 0);
  Get.load(Get.returnVar(), Get.thisVar(), F);

  MethodBuilder Main = B.method(T.Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId B1 = Main.local("b1");
  VarId B2 = Main.local("b2");
  VarId VA = Main.local("a");
  VarId VB = Main.local("b");
  T.OutA = Main.local("oa");
  T.OutB = Main.local("ob");
  T.CastA = Main.local("ca");
  T.Box1 = Main.alloc(B1, T.BoxT);
  T.Box2 = Main.alloc(B2, T.BoxT);
  T.HeapA = Main.alloc(VA, T.AT);
  T.HeapB = Main.alloc(VB, T.BT);
  T.SetCall1 = Main.vcall(VarId::invalid(), B1, "set", {VA});
  T.SetCall2 = Main.vcall(VarId::invalid(), B2, "set", {VB});
  T.GetCall1 = Main.vcall(T.OutA, B1, "get", {});
  T.GetCall2 = Main.vcall(T.OutB, B2, "get", {});
  Main.cast(T.CastA, T.OutA, T.AT);

  T.Prog = B.take();
  return T;
}

/// Handles into the "dispatch" program (see makeDispatch).
struct Dispatch {
  Program Prog;
  TypeId Animal, Cat, Dog;
  VarId Sound1, Sound2;
  SiteId Call1, Call2;
  HeapId CatHeap, DogHeap, MeowHeap, WoofHeap;
};

/// Virtual dispatch with two receiver types:
///
///   Animal c = new Cat();  Animal d = new Dog();
///   Object s1 = c.speak();  // resolves only to Cat.speak
///   Object s2 = d.speak();  // resolves only to Dog.speak
///
/// Even a context-insensitive analysis devirtualizes both calls, because the
/// receiver variables are distinct.
inline Dispatch makeDispatch() {
  Dispatch T;
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  T.Animal = B.cls("Animal", Object);
  T.Cat = B.cls("Cat", T.Animal);
  T.Dog = B.cls("Dog", T.Animal);
  TypeId Meow = B.cls("Meow", Object);
  TypeId Woof = B.cls("Woof", Object);

  MethodBuilder CatSpeak = B.method(T.Cat, "speak", 0);
  T.MeowHeap = CatSpeak.alloc(CatSpeak.returnVar(), Meow);
  MethodBuilder DogSpeak = B.method(T.Dog, "speak", 0);
  T.WoofHeap = DogSpeak.alloc(DogSpeak.returnVar(), Woof);

  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId C = Main.local("c");
  VarId D = Main.local("d");
  T.Sound1 = Main.local("s1");
  T.Sound2 = Main.local("s2");
  T.CatHeap = Main.alloc(C, T.Cat);
  T.DogHeap = Main.alloc(D, T.Dog);
  T.Call1 = Main.vcall(T.Sound1, C, "speak", {});
  T.Call2 = Main.vcall(T.Sound2, D, "speak", {});

  T.Prog = B.take();
  return T;
}

/// A program exercising static calls, moves, argument passing, recursion,
/// and an unreachable method.
struct Mixed {
  Program Prog;
  MethodId Unreachable;
  VarId Chained; ///< Receives the identity-chained allocation.
  HeapId Payload;
};

inline Mixed makeMixed() {
  Mixed T;
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId P = B.cls("Payload", Object);

  // static Object identity(Object p) { return p; }
  MethodBuilder Identity = B.method(Object, "identity", 1, /*IsStatic=*/true);
  Identity.move(Identity.returnVar(), Identity.formal(0));

  // static Object twice(Object p) { return identity(identity(p)); }
  MethodBuilder Twice = B.method(Object, "twice", 1, /*IsStatic=*/true);
  VarId Tmp = Twice.local("tmp");
  Twice.scall(Tmp, Identity.id(), {Twice.formal(0)});
  Twice.scall(Twice.returnVar(), Identity.id(), {Tmp});

  // static void orphan() { ... }  -- never called.
  MethodBuilder Orphan = B.method(Object, "orphan", 0, /*IsStatic=*/true);
  VarId OrphanVar = Orphan.local("x");
  Orphan.alloc(OrphanVar, P);
  T.Unreachable = Orphan.id();

  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId X = Main.local("x");
  T.Chained = Main.local("y");
  T.Payload = Main.alloc(X, P);
  Main.scall(T.Chained, Twice.id(), {X});

  T.Prog = B.take();
  return T;
}

} // namespace intro::testing

#endif // TESTS_TESTPROGRAMS_H
