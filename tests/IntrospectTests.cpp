//===- tests/IntrospectTests.cpp - Metrics/heuristics/driver tests --------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Escape.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "introspect/Driver.h"
#include "introspect/Heuristics.h"
#include "introspect/Metrics.h"
#include "support/ThreadPool.h"
#include "workload/DaCapo.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

using namespace intro;
using namespace intro::testing;

namespace {

/// Runs the insensitive first pass.
PointsToResult firstPass(const Program &Prog) {
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  return solvePointsTo(Prog, *Policy, Table);
}

} // namespace

TEST(Metrics, TwoBoxesHandComputed) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  IntrospectionMetrics M = computeIntrospectionMetrics(T.Prog, Insens);

  // In-flow (#1): each set-call passes one single-object argument.
  EXPECT_EQ(M.InFlow[T.SetCall1.index()], 1u);
  EXPECT_EQ(M.InFlow[T.SetCall2.index()], 1u);
  // get() has no arguments.
  EXPECT_EQ(M.InFlow[T.GetCall1.index()], 0u);

  // Pointed-by-vars (#5) for HeapA: insensitively, `a` in main, set's
  // formal, the field conflation makes `oa`/`ob` point to it, the cast
  // result `ca`, and get's return variable: 6 variables.
  EXPECT_EQ(M.PointedByVars[T.HeapA.index()], 6u);

  // Field points-to (#3): each Box object's field holds {A, B} insens.
  EXPECT_EQ(M.ObjectMaxFieldPointsTo[T.Box1.index()], 2u);
  EXPECT_EQ(M.ObjectTotalFieldPointsTo[T.Box1.index()], 2u);
  EXPECT_EQ(M.ObjectMaxFieldPointsTo[T.HeapA.index()], 0u);

  // Pointed-by-objs (#6): payloads are pointed to by both box objects'
  // fields; boxes by nothing.
  EXPECT_EQ(M.PointedByObjs[T.HeapA.index()], 2u);
  EXPECT_EQ(M.PointedByObjs[T.Box1.index()], 0u);

  // Method volumes (#2): main's locals are b1 b2 (1 each), a b (1 each),
  // oa ob (2 each), and ca (2: a cast is a move dataflow-wise, so it does
  // not filter) -- total 10, max 2.
  MethodId Main = T.Prog.entries()[0];
  EXPECT_EQ(M.MethodTotalVolume[Main.index()], 10u);
  EXPECT_EQ(M.MethodMaxVarPointsTo[Main.index()], 2u);

  // Max var-field points-to (#4) of main: its locals reach the Box objects
  // whose field sets have size 2.
  EXPECT_EQ(M.MethodMaxVarFieldPointsTo[Main.index()], 2u);
}

TEST(Metrics, UnreachableCodeHasZeroMetrics) {
  Mixed T = makeMixed();
  PointsToResult Insens = firstPass(T.Prog);
  IntrospectionMetrics M = computeIntrospectionMetrics(T.Prog, Insens);
  EXPECT_EQ(M.MethodTotalVolume[T.Unreachable.index()], 0u);
}

TEST(HeuristicA, ThresholdsAreStrict) {
  // An object pointed to by exactly K variables is still refined; K+1 is
  // not.  Build a program with a tunable pointed-by count.
  for (uint32_t Pointers : {3u, 5u}) {
    ProgramBuilder B;
    TypeId Object = B.cls("Object");
    TypeId A = B.cls("A", Object);
    MethodBuilder Main = B.method(Object, "main", 0, true);
    B.entry(Main.id());
    VarId First = Main.local("x0");
    HeapId Heap = Main.alloc(First, A);
    VarId Prev = First;
    for (uint32_t Index = 1; Index < Pointers; ++Index) {
      VarId Next = Main.local("x" + std::to_string(Index));
      Main.move(Next, Prev);
      Prev = Next;
    }
    Program Prog = B.take();
    PointsToResult Insens = firstPass(Prog);
    IntrospectionMetrics M = computeIntrospectionMetrics(Prog, Insens);
    ASSERT_EQ(M.PointedByVars[Heap.index()], Pointers);

    HeuristicAParams Params;
    Params.K = 4;
    RefinementExceptions E = applyHeuristicA(Prog, Insens, M, Params);
    EXPECT_EQ(E.NoRefineHeaps.count(Heap.index()), Pointers > 4 ? 1u : 0u);
  }
}

TEST(HeuristicA, ExcludesHighInflowSites) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  IntrospectionMetrics M = computeIntrospectionMetrics(T.Prog, Insens);

  HeuristicAParams Tight;
  Tight.K = 1000;
  Tight.L = 0; // Any site with in-flow > 0 is excluded.
  Tight.M = 1000;
  RefinementExceptions E = applyHeuristicA(T.Prog, Insens, M, Tight);
  MethodId SetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.SetCall1).Sig);
  EXPECT_TRUE(E.skipsSite(T.SetCall1, SetMethod));
  MethodId GetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.GetCall1).Sig);
  EXPECT_FALSE(E.skipsSite(T.GetCall1, GetMethod))
      << "get() has no arguments, so in-flow cannot exclude it";
}

TEST(HeuristicB, ProductRuleExcludesFatObjects) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  IntrospectionMetrics M = computeIntrospectionMetrics(T.Prog, Insens);

  HeuristicBParams Params;
  Params.Q = 3; // Box: total field pts 2 x pointed-by 2 = 4 > 3.
  Params.P = 1000000;
  RefinementExceptions E = applyHeuristicB(T.Prog, Insens, M, Params);
  EXPECT_TRUE(E.skipsHeap(T.Box1));
  EXPECT_TRUE(E.skipsHeap(T.Box2));
  // Payloads have no fields: product 0, never excluded.
  EXPECT_FALSE(E.skipsHeap(T.HeapA));
}

TEST(HeuristicB, VolumeRuleExcludesFatMethods) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  IntrospectionMetrics M = computeIntrospectionMetrics(T.Prog, Insens);

  HeuristicBParams Params;
  Params.P = 8; // main has volume 9.
  Params.Q = 1000000;
  RefinementExceptions E = applyHeuristicB(T.Prog, Insens, M, Params);
  // No call site invokes main, so nothing is excluded through it; but the
  // box methods have volume < 8 and their sites stay refined.
  MethodId GetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.GetCall1).Sig);
  EXPECT_FALSE(E.skipsSite(T.GetCall1, GetMethod));

  Params.P = 2; // get(): this (2 boxes) + return (2 payloads) = 4 > 2.
  E = applyHeuristicB(T.Prog, Insens, M, Params);
  EXPECT_TRUE(E.skipsSite(T.GetCall1, GetMethod));
}

TEST(RefinementStats, CountsReachablePopulation) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);

  RefinementExceptions E;
  E.NoRefineHeaps.insert(T.Box1.index());
  MethodId SetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.SetCall1).Sig);
  E.NoRefineSites.insert(
      RefinementExceptions::packSite(T.SetCall1, SetMethod));

  RefinementStats Stats = computeRefinementStats(T.Prog, Insens, E);
  EXPECT_EQ(Stats.TotalCallSites, 4u);
  EXPECT_EQ(Stats.ExcludedCallSites, 1u);
  EXPECT_EQ(Stats.TotalObjects, 4u);
  EXPECT_EQ(Stats.ExcludedObjects, 1u);
  EXPECT_DOUBLE_EQ(Stats.callSitePercent(), 25.0);
  EXPECT_DOUBLE_EQ(Stats.objectPercent(), 25.0);
}

TEST(Driver, TwoPassPipelineRuns) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOptions Options;
  Options.Heuristic = HeuristicKind::A;
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);

  EXPECT_EQ(Out.FirstPass.AnalysisName, "insens");
  EXPECT_EQ(Out.SecondPass.AnalysisName, "2objH-IntroA");
  EXPECT_TRUE(isCompleted(Out.FirstPass.Status));
  EXPECT_TRUE(isCompleted(Out.SecondPass.Status));
  EXPECT_GT(Out.Stats.TotalCallSites, 0u);
  EXPECT_GT(Out.Stats.ExcludedCallSites, 0u);
  EXPECT_GT(Out.Stats.ExcludedObjects, 0u);
  EXPECT_GE(Out.FirstPassSeconds, 0.0);
  EXPECT_GE(Out.SecondPassSeconds, 0.0);

  // The introspective second pass is at least as precise as the first.
  PrecisionMetrics First = computePrecision(Prog, Out.FirstPass);
  PrecisionMetrics Second = computePrecision(Prog, Out.SecondPass);
  EXPECT_LE(Second.CastsThatMayFail, First.CastsThatMayFail);
  EXPECT_LE(Second.PolymorphicVirtualCallSites,
            First.PolymorphicVirtualCallSites);
}

TEST(Driver, HeuristicBNamesAndSelectivity) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Refined = makeTypePolicy(Prog, 2, 1);
  IntrospectiveOptions OptionsA;
  OptionsA.Heuristic = HeuristicKind::A;
  IntrospectiveOptions OptionsB;
  OptionsB.Heuristic = HeuristicKind::B;
  IntrospectiveOutcome OutA = runIntrospective(Prog, *Refined, OptionsA);
  IntrospectiveOutcome OutB = runIntrospective(Prog, *Refined, OptionsB);

  EXPECT_EQ(OutB.SecondPass.AnalysisName, "2typeH-IntroB");
  // Figure 4's headline: A is much more aggressive than B.
  EXPECT_GT(OutA.Stats.callSitePercent(), OutB.Stats.callSitePercent());
  EXPECT_GT(OutA.Stats.objectPercent(), OutB.Stats.objectPercent());
}

TEST(Driver, BudgetsArePassedThrough) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOptions Options;
  Options.SecondPassBudget.MaxTuples = 10; // Absurdly small.
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  EXPECT_FALSE(isCompleted(Out.SecondPass.Status));
}

TEST(Metrics, ParallelComputationIsBitIdenticalToSequential) {
  // The sharded metric computation merges per-shard integer sums/maxes in
  // shard-index order; for any worker count the result must equal the
  // sequential sweep exactly.
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(Prog, *Insens, Table);
  IntrospectionMetrics Sequential = computeIntrospectionMetrics(Prog, First);

  for (unsigned Workers : {1u, 3u, 8u}) {
    ThreadPool Pool(Workers);
    IntrospectionMetrics Parallel =
        computeIntrospectionMetrics(Prog, First, Pool);
    SCOPED_TRACE("workers: " + std::to_string(Workers));
    EXPECT_EQ(Parallel.InFlow, Sequential.InFlow);
    EXPECT_EQ(Parallel.MethodTotalVolume, Sequential.MethodTotalVolume);
    EXPECT_EQ(Parallel.MethodMaxVarPointsTo,
              Sequential.MethodMaxVarPointsTo);
    EXPECT_EQ(Parallel.ObjectMaxFieldPointsTo,
              Sequential.ObjectMaxFieldPointsTo);
    EXPECT_EQ(Parallel.ObjectTotalFieldPointsTo,
              Sequential.ObjectTotalFieldPointsTo);
    EXPECT_EQ(Parallel.MethodMaxVarFieldPointsTo,
              Sequential.MethodMaxVarFieldPointsTo);
    EXPECT_EQ(Parallel.PointedByVars, Sequential.PointedByVars);
    EXPECT_EQ(Parallel.PointedByObjs, Sequential.PointedByObjs);
  }
}

TEST(Metrics, ParallelComputationHandlesTinyPrograms) {
  // More workers than sites/methods/field cells: shard clamping must not
  // read or write out of range, and the merge must skip never-ran shards.
  TwoBoxes T = makeTwoBoxes();
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(T.Prog, *Insens, Table);
  IntrospectionMetrics Sequential =
      computeIntrospectionMetrics(T.Prog, First);
  ThreadPool Pool(16);
  IntrospectionMetrics Parallel =
      computeIntrospectionMetrics(T.Prog, First, Pool);
  EXPECT_EQ(Parallel.InFlow, Sequential.InFlow);
  EXPECT_EQ(Parallel.PointedByVars, Sequential.PointedByVars);
  EXPECT_EQ(Parallel.PointedByObjs, Sequential.PointedByObjs);
  EXPECT_EQ(Parallel.ObjectTotalFieldPointsTo,
            Sequential.ObjectTotalFieldPointsTo);
}

TEST(Metrics, HashMapIterationOrderDoesNotLeakIntoResults) {
  // FieldHeaps / StaticFieldHeaps are unordered_maps: their iteration
  // order depends on insertion history, not on contents.  Rebuild the same
  // logical maps with a reversed insertion sequence (different bucket
  // layout) and require the metric and escape computations to be
  // bit-identical — i.e. no consumer folds the cells in hash order in an
  // order-sensitive way.
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(Prog, *Insens, Table);

  PointsToResult Shuffled = First;
  {
    std::vector<uint64_t> Keys;
    for (const auto &[Key, Heaps] : First.FieldHeaps)
      Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(), std::greater<uint64_t>());
    Shuffled.FieldHeaps.clear();
    for (uint64_t Key : Keys)
      Shuffled.FieldHeaps.emplace(Key, First.FieldHeaps.at(Key));
  }
  {
    std::vector<uint32_t> Keys;
    for (const auto &[Key, Heaps] : First.StaticFieldHeaps)
      Keys.push_back(Key);
    std::sort(Keys.begin(), Keys.end(), std::greater<uint32_t>());
    Shuffled.StaticFieldHeaps.clear();
    for (uint32_t Key : Keys)
      Shuffled.StaticFieldHeaps.emplace(Key, First.StaticFieldHeaps.at(Key));
  }
  ASSERT_FALSE(Shuffled.FieldHeaps.empty());

  IntrospectionMetrics Base = computeIntrospectionMetrics(Prog, First);
  IntrospectionMetrics Reordered = computeIntrospectionMetrics(Prog, Shuffled);
  EXPECT_EQ(Reordered.InFlow, Base.InFlow);
  EXPECT_EQ(Reordered.MethodTotalVolume, Base.MethodTotalVolume);
  EXPECT_EQ(Reordered.MethodMaxVarPointsTo, Base.MethodMaxVarPointsTo);
  EXPECT_EQ(Reordered.ObjectMaxFieldPointsTo, Base.ObjectMaxFieldPointsTo);
  EXPECT_EQ(Reordered.ObjectTotalFieldPointsTo,
            Base.ObjectTotalFieldPointsTo);
  EXPECT_EQ(Reordered.MethodMaxVarFieldPointsTo,
            Base.MethodMaxVarFieldPointsTo);
  EXPECT_EQ(Reordered.PointedByVars, Base.PointedByVars);
  EXPECT_EQ(Reordered.PointedByObjs, Base.PointedByObjs);

  ThreadPool Pool(3);
  IntrospectionMetrics Parallel =
      computeIntrospectionMetrics(Prog, Shuffled, Pool);
  EXPECT_EQ(Parallel.PointedByObjs, Base.PointedByObjs);
  EXPECT_EQ(Parallel.ObjectTotalFieldPointsTo, Base.ObjectTotalFieldPointsTo);
  EXPECT_EQ(Parallel.ObjectMaxFieldPointsTo, Base.ObjectMaxFieldPointsTo);

  EscapeResult EscapeBase = computeEscape(Prog, First);
  EscapeResult EscapeReordered = computeEscape(Prog, Shuffled);
  EXPECT_EQ(EscapeReordered.Escapes, EscapeBase.Escapes);
  EXPECT_EQ(EscapeReordered.EscapingSites, EscapeBase.EscapingSites);
  EXPECT_EQ(EscapeReordered.ReachableSites, EscapeBase.ReachableSites);
}
