//===- tests/SolverTests.cpp - Worklist solver unit tests -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/DatalogReference.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Result.h"
#include "analysis/Solver.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace intro;
using namespace intro::testing;

namespace {

PointsToResult solveWith(const Program &Prog, const ContextPolicy &Policy) {
  ContextTable Table;
  return solvePointsTo(Prog, Policy, Table);
}

bool pointsTo(const PointsToResult &Result, VarId Var, HeapId Heap) {
  return setContains(Result.pointsTo(Var), Heap.index());
}

} // namespace

TEST(Solver, DispatchResolvesPerReceiver) {
  Dispatch T = makeDispatch();
  auto Policy = makeInsensitivePolicy();
  PointsToResult R = solveWith(T.Prog, *Policy);
  ASSERT_EQ(R.Status, SolveStatus::Completed);

  EXPECT_TRUE(pointsTo(R, T.Sound1, T.MeowHeap));
  EXPECT_FALSE(pointsTo(R, T.Sound1, T.WoofHeap));
  EXPECT_TRUE(pointsTo(R, T.Sound2, T.WoofHeap));
  EXPECT_FALSE(pointsTo(R, T.Sound2, T.MeowHeap));

  // Each call site is monomorphic.
  EXPECT_EQ(R.callTargets(T.Call1).size(), 1u);
  EXPECT_EQ(R.callTargets(T.Call2).size(), 1u);
}

TEST(Solver, InsensitiveConflatesBoxes) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeInsensitivePolicy();
  PointsToResult R = solveWith(T.Prog, *Policy);
  ASSERT_EQ(R.Status, SolveStatus::Completed);
  // Context-insensitively both boxes share one abstract field, so both get()
  // results see both payloads.
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapA));
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapB));
  EXPECT_TRUE(pointsTo(R, T.OutB, T.HeapA));
  EXPECT_TRUE(pointsTo(R, T.OutB, T.HeapB));

  PrecisionMetrics Metrics = computePrecision(T.Prog, R);
  EXPECT_EQ(Metrics.CastsThatMayFail, 1u);
}

TEST(Solver, ObjectSensitivitySeparatesBoxes) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeObjectPolicy(T.Prog, 2, 1);
  PointsToResult R = solveWith(T.Prog, *Policy);
  ASSERT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapA));
  EXPECT_FALSE(pointsTo(R, T.OutA, T.HeapB));
  EXPECT_TRUE(pointsTo(R, T.OutB, T.HeapB));
  EXPECT_FALSE(pointsTo(R, T.OutB, T.HeapA));

  PrecisionMetrics Metrics = computePrecision(T.Prog, R);
  EXPECT_EQ(Metrics.CastsThatMayFail, 0u);
}

TEST(Solver, CallSiteSensitivitySeparatesBoxes) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeCallSitePolicy(2, 1);
  PointsToResult R = solveWith(T.Prog, *Policy);
  ASSERT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapA));
  EXPECT_FALSE(pointsTo(R, T.OutA, T.HeapB));
}

TEST(Solver, TypeSensitivityConflatesSameClassAllocations) {
  // Both boxes are allocated inside the same class, so type-sensitivity
  // cannot tell them apart -- a known property of the abstraction.
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeTypePolicy(T.Prog, 2, 1);
  PointsToResult R = solveWith(T.Prog, *Policy);
  ASSERT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapA));
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapB));
}

TEST(Solver, StaticCallsAndReachability) {
  Mixed T = makeMixed();
  auto Policy = makeInsensitivePolicy();
  PointsToResult R = solveWith(T.Prog, *Policy);
  ASSERT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_TRUE(pointsTo(R, T.Chained, T.Payload));
  EXPECT_FALSE(R.isReachable(T.Unreachable));
}

TEST(Solver, ContextSensitiveProjectionRefinesInsensitive) {
  // Projected to (var, heap), every context-sensitive result must be a
  // subset of the context-insensitive one.
  TwoBoxes T = makeTwoBoxes();
  auto Insens = makeInsensitivePolicy();
  PointsToResult RI = solveWith(T.Prog, *Insens);
  for (auto &Policy :
       {makeObjectPolicy(T.Prog, 2, 1), makeCallSitePolicy(2, 1),
        makeTypePolicy(T.Prog, 2, 1)}) {
    PointsToResult RS = solveWith(T.Prog, *Policy);
    ASSERT_EQ(RS.Status, SolveStatus::Completed);
    for (uint32_t VarRaw = 0; VarRaw < T.Prog.numVars(); ++VarRaw)
      for (uint32_t HeapRaw : RS.pointsTo(VarId(VarRaw)))
        EXPECT_TRUE(setContains(RI.pointsTo(VarId(VarRaw)), HeapRaw))
            << "analysis " << Policy->name() << " derived a fact the "
            << "insensitive analysis misses (unsound projection)";
  }
}

TEST(Solver, TupleBudgetProducesTimeoutStatus) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.Budget.MaxTuples = 2; // Absurdly small.
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::TupleBudgetExceeded);
  EXPECT_FALSE(isCompleted(R.Status));
}

TEST(Solver, StatsArepopulated) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeObjectPolicy(T.Prog, 2, 1);
  PointsToResult R = solveWith(T.Prog, *Policy);
  EXPECT_GT(R.Stats.VarPointsToTuples, 0u);
  EXPECT_GT(R.Stats.FieldPointsToTuples, 0u);
  EXPECT_GT(R.Stats.NumObjects, 0u);
  EXPECT_GT(R.Stats.ReachableMethodContexts, 0u);
  EXPECT_GT(R.Stats.CallGraphEdges, 0u);
  EXPECT_EQ(R.AnalysisName, "2objH");
}

TEST(Solver, KeepTuplesDumpsRelations) {
  Dispatch T = makeDispatch();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table, Options);
  EXPECT_FALSE(R.VarPointsTo.empty());
  EXPECT_FALSE(R.Reachable.empty());
  EXPECT_FALSE(R.CallGraph.empty());
  // Insensitive: every ctx and hctx in the dump is the `*` handle 0.
  for (const auto &Tuple : R.VarPointsTo) {
    EXPECT_EQ(Tuple[1], 0u);
    EXPECT_EQ(Tuple[3], 0u);
  }
}

TEST(Policies, Names) {
  Program Dummy; // Only used by object/type policies for lookups.
  EXPECT_EQ(makeInsensitivePolicy()->name(), "insens");
  EXPECT_EQ(makeCallSitePolicy(2, 1)->name(), "2callH");
  EXPECT_EQ(makeObjectPolicy(Dummy, 2, 1)->name(), "2objH");
  EXPECT_EQ(makeTypePolicy(Dummy, 2, 1)->name(), "2typeH");
}

TEST(Policies, IntrospectiveExceptionsFallBackToCoarse) {
  TwoBoxes T = makeTwoBoxes();
  auto Coarse = makeInsensitivePolicy();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);

  // Excluding the set/get call sites from refinement analyzes Box.set and
  // Box.get in the single coarse context: their `this` conflates both boxes
  // and the introspective analysis loses exactly the precision that full
  // 2objH had.
  RefinementExceptions Exceptions;
  MethodId SetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.SetCall1).Sig);
  MethodId GetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.GetCall1).Sig);
  for (SiteId Site : {T.SetCall1, T.SetCall2})
    Exceptions.NoRefineSites.insert(
        RefinementExceptions::packSite(Site, SetMethod));
  for (SiteId Site : {T.GetCall1, T.GetCall2})
    Exceptions.NoRefineSites.insert(
        RefinementExceptions::packSite(Site, GetMethod));
  auto Intro = makeIntrospectivePolicy("2objH-IntroTest", *Coarse, *Refined,
                                       std::move(Exceptions));
  PointsToResult R = solveWith(T.Prog, *Intro);
  ASSERT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_TRUE(pointsTo(R, T.OutA, T.HeapB)) << "coarse call contexts should "
                                               "re-conflate the two boxes";
}

TEST(Policies, IntrospectiveWithNoExceptionsMatchesRefined) {
  TwoBoxes T = makeTwoBoxes();
  auto Coarse = makeInsensitivePolicy();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  auto Intro = makeIntrospectivePolicy("2objH-IntroNone", *Coarse, *Refined,
                                       RefinementExceptions());
  PointsToResult RIntro = solveWith(T.Prog, *Intro);
  PointsToResult RFull = solveWith(T.Prog, *Refined);
  for (uint32_t VarRaw = 0; VarRaw < T.Prog.numVars(); ++VarRaw)
    EXPECT_EQ(RIntro.pointsTo(VarId(VarRaw)), RFull.pointsTo(VarId(VarRaw)));
}

TEST(Precision, DispatchProgramMetrics) {
  Dispatch T = makeDispatch();
  auto Policy = makeInsensitivePolicy();
  PointsToResult R = solveWith(T.Prog, *Policy);
  PrecisionMetrics Metrics = computePrecision(T.Prog, R);
  EXPECT_EQ(Metrics.PolymorphicVirtualCallSites, 0u);
  EXPECT_EQ(Metrics.ReachableVirtualCallSites, 2u);
  EXPECT_EQ(Metrics.ReachableMethods, 3u); // main + 2 speak methods.
  EXPECT_EQ(Metrics.ReachableCasts, 0u);
}

TEST(Precision, SharedReceiverVarIsPolymorphic) {
  // r = new Cat(); r = new Dog(); r.speak() -- one site, two targets.
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Animal = B.cls("Animal", Object);
  TypeId Cat = B.cls("Cat", Animal);
  TypeId Dog = B.cls("Dog", Animal);
  MethodBuilder CatSpeak = B.method(Cat, "speak", 0);
  (void)CatSpeak;
  MethodBuilder DogSpeak = B.method(Dog, "speak", 0);
  (void)DogSpeak;
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId R = Main.local("r");
  Main.alloc(R, Cat);
  Main.alloc(R, Dog);
  Main.vcall(VarId::invalid(), R, "speak", {});
  Program P = B.take();

  auto Policy = makeInsensitivePolicy();
  PointsToResult Result = solveWith(P, *Policy);
  PrecisionMetrics Metrics = computePrecision(P, Result);
  EXPECT_EQ(Metrics.PolymorphicVirtualCallSites, 1u);
}

TEST(Solver, LateEdgesOnHubUseBatchedPropagation) {
  // Regression for the quadratic edge-installation path: addEdge used to
  // re-propagate the full source set element-by-element for every late
  // edge, so a hub variable feeding E late consumers cost O(E * |hub|)
  // set probes.  With batched difference propagation each edge costs one
  // set union.  The hub program: S feeder variables whose allocation-site
  // ids interleave, merged into one hub, fanning out to E late edges.
  constexpr uint32_t NumObjects = 1024;
  constexpr uint32_t NumSources = 8;
  constexpr uint32_t NumConsumers = 32;

  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Payload = B.cls("Payload", Object);
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  std::vector<VarId> Sources;
  for (uint32_t Index = 0; Index < NumSources; ++Index)
    Sources.push_back(Main.local("s" + std::to_string(Index)));
  for (uint32_t Index = 0; Index < NumObjects; ++Index)
    Main.alloc(Sources[Index % NumSources], Payload);
  VarId Hub = Main.local("hub");
  for (VarId Source : Sources)
    Main.move(Hub, Source);
  for (uint32_t Index = 0; Index < NumConsumers; ++Index)
    Main.move(Main.local("c" + std::to_string(Index)), Hub);
  Program Prog = B.take();

  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
  ASSERT_EQ(R.Status, SolveStatus::Completed);

  // Identical result to the Datalog oracle, tuple for tuple.
  DatalogReferenceResult Reference = runDatalogReference(Prog, *Policy, Table);
  ASSERT_FALSE(Reference.BudgetExceeded);
  std::vector<std::array<uint32_t, 4>> VarTuples = R.VarPointsTo;
  std::sort(VarTuples.begin(), VarTuples.end());
  EXPECT_EQ(VarTuples, Reference.VarPointsTo);

  // Every consumer edge moved the whole hub set in batch...
  EXPECT_GT(R.Stats.BatchUnions, NumConsumers);
  // ...so single-element probes stay at the allocation sites (one per
  // ALLOC) instead of the O(tuples) element-wise re-propagation the old
  // path performed.  VarPointsToTuples here is ~NumObjects * NumConsumers.
  EXPECT_GE(R.Stats.VarPointsToTuples,
            static_cast<uint64_t>(NumObjects) * NumConsumers);
  EXPECT_LT(R.Stats.ElementProbes, R.Stats.VarPointsToTuples / 8);
  EXPECT_LE(R.Stats.ElementProbes, NumObjects + NumSources + NumConsumers);
  // The worklist stays linear in the node count: every node drains its
  // delta once and goes quiet (nothing re-propagates a stale set).
  EXPECT_LE(R.Stats.WorklistPops,
            static_cast<uint64_t>(NumSources) + NumConsumers + 4);
  // The hub and consumer sets are large and dense: the adaptive sets must
  // actually be in bitmap mode for the batched unions to be word-wise.
  EXPECT_GT(R.Stats.DensePointsToSets, NumConsumers);
}
