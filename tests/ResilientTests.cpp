//===- tests/ResilientTests.cpp - Degradation ladder and cancellation -----===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the resilience layer: the runResilient degradation ladder
/// (exercised rung by rung via deterministic fault injection), cooperative
/// cancellation (including the watchdog latency guarantee), the approximate
/// memory budget, and the sound-prefix consistency of budget-exhausted
/// results in both passes of runIntrospective.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "introspect/Driver.h"
#include "introspect/Resilient.h"
#include "ir/Program.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "workload/DaCapo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <thread>
#include <vector>

using namespace intro;

namespace {

Program chartProgram() { return generateWorkload(dacapoProfile("chart")); }

/// A fault plan that fails deterministically early with \p Status.
FaultPlan failFast(SolveStatus Status = SolveStatus::TupleBudgetExceeded) {
  FaultPlan Plan;
  Plan.FailAtPop = 1;
  Plan.FailStatus = Status;
  return Plan;
}

/// Asserts that a (possibly budget-truncated) result is an internally
/// consistent sound prefix: all projection tables have program-shaped
/// sizes, every set is sorted and duplicate-free, every id is in range,
/// and the call graph only touches reachable methods.
void expectConsistent(const Program &Prog, const PointsToResult &R) {
  ASSERT_EQ(R.VarHeaps.size(), Prog.numVars());
  ASSERT_EQ(R.SiteTargets.size(), Prog.numSites());
  ASSERT_EQ(R.MethodThrows.size(), Prog.numMethods());
  ASSERT_EQ(R.MethodReachable.size(), Prog.numMethods());

  auto ExpectSortedSet = [](const SortedIdSet &Set, size_t Limit) {
    for (size_t Index = 0; Index < Set.size(); ++Index) {
      EXPECT_LT(Set[Index], Limit);
      if (Index > 0) {
        EXPECT_LT(Set[Index - 1], Set[Index]) << "not sorted/unique";
      }
    }
  };
  for (const SortedIdSet &Heaps : R.VarHeaps)
    ExpectSortedSet(Heaps, Prog.numHeaps());
  for (const auto &[Key, Heaps] : R.FieldHeaps)
    ExpectSortedSet(Heaps, Prog.numHeaps());
  for (const auto &[Key, Heaps] : R.StaticFieldHeaps)
    ExpectSortedSet(Heaps, Prog.numHeaps());
  for (const SortedIdSet &Heaps : R.MethodThrows)
    ExpectSortedSet(Heaps, Prog.numHeaps());
  for (const SortedIdSet &Targets : R.SiteTargets)
    ExpectSortedSet(Targets, Prog.numMethods());

  // Entry methods are enqueued before the first iteration, so they stay
  // reachable in any prefix.
  for (MethodId Entry : Prog.entries())
    EXPECT_TRUE(R.isReachable(Entry));

  // Call-graph edges only leave reachable callers and only enter
  // reachable callees (both are recorded before any budget stop).
  for (uint32_t SiteRaw = 0; SiteRaw < Prog.numSites(); ++SiteRaw) {
    if (R.SiteTargets[SiteRaw].empty())
      continue;
    EXPECT_TRUE(R.isReachable(Prog.site(SiteId(SiteRaw)).InMethod));
    for (uint32_t MethodRaw : R.SiteTargets[SiteRaw])
      EXPECT_TRUE(R.isReachable(MethodId(MethodRaw)));
  }
}

} // namespace

// --- Fault injection in the solver ------------------------------------------

TEST(FaultInjection, FailAtPopStopsWithInjectedStatus) {
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  for (SolveStatus Injected :
       {SolveStatus::TupleBudgetExceeded, SolveStatus::TimeBudgetExceeded,
        SolveStatus::MemoryBudgetExceeded}) {
    ContextTable Table;
    SolverOptions Options;
    Options.Faults.FailAtPop = 100;
    Options.Faults.FailStatus = Injected;
    PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
    EXPECT_EQ(R.Status, Injected);
    EXPECT_EQ(R.Stats.WorklistPops, 100u);
    expectConsistent(Prog, R);
  }
}

TEST(FaultInjection, InertPlanChangesNothing) {
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable TableA, TableB;
  PointsToResult Plain = solvePointsTo(Prog, *Policy, TableA);
  SolverOptions Options; // Default FaultPlan is inert.
  EXPECT_FALSE(Options.Faults.armed());
  PointsToResult Faulted = solvePointsTo(Prog, *Policy, TableB, Options);
  EXPECT_EQ(Faulted.Status, SolveStatus::Completed);
  EXPECT_EQ(Faulted.Stats.VarPointsToTuples, Plain.Stats.VarPointsToTuples);
  EXPECT_EQ(Faulted.Stats.WorklistPops, Plain.Stats.WorklistPops);
}

TEST(FaultInjection, TupleInflationTripsTheBudgetEarly) {
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  // The real run stays far below the default budget; a pathological
  // inflation factor makes the very same run look like an explosion.
  Options.Faults.TupleInflation = 1'000'000'000;
  EXPECT_TRUE(Options.Faults.armed());
  PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::TupleBudgetExceeded);
  // Reported statistics stay honest: only budget enforcement is inflated.
  EXPECT_LT(R.Stats.VarPointsToTuples + R.Stats.FieldPointsToTuples,
            Options.Budget.MaxTuples);
  expectConsistent(Prog, R);
}

// --- Memory budget ----------------------------------------------------------

TEST(MemoryBudget, TinyBudgetExhaustsWithDistinctStatus) {
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.Budget.MaxBytes = 10'000;
  PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::MemoryBudgetExceeded);
  EXPECT_FALSE(isCompleted(R.Status));
  EXPECT_GT(R.Stats.ApproxBytes, Options.Budget.MaxBytes);
  expectConsistent(Prog, R);
}

TEST(MemoryBudget, CompletedRunReportsFootprintAndRespectsRoomyBudget) {
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.Budget.MaxBytes = 4ull << 30;
  PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_GT(R.Stats.ApproxBytes, 0u);
  EXPECT_LT(R.Stats.ApproxBytes, Options.Budget.MaxBytes);
}

// --- Cooperative cancellation ------------------------------------------------

TEST(Cancellation, PreCancelledTokenReturnsCancelledStatus) {
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  CancellationToken Token;
  Token.cancel();
  SolverOptions Options;
  Options.Cancel = &Token;
  Options.CancelInterval = 1;
  PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::Cancelled);
  EXPECT_FALSE(isCompleted(R.Status));
  expectConsistent(Prog, R);
}

TEST(Cancellation, TokenIsReusableAfterReset) {
  CancellationToken Token;
  EXPECT_FALSE(Token.isCancelled());
  Token.cancel();
  Token.cancel(); // Idempotent.
  EXPECT_TRUE(Token.isCancelled());
  Token.reset();
  EXPECT_FALSE(Token.isCancelled());
}

TEST(Cancellation, WatchdogAbortsExplodingSolvePromptly) {
  // hsqldb under 2objH is a genuine blow-up (Figure 5): with the budgets
  // effectively disabled it would run for minutes.  A watchdog cancels it
  // shortly after launch; the solver must return within 250 ms of the
  // signal with the distinct Cancelled status, not a timeout.  The signal
  // fires 50 ms in: far enough to be deep inside the hot loop, early
  // enough that the bound measures cancellation latency rather than how
  // much exploded state result assembly has to walk (the batched solver
  // covers several times more of the blow-up per wall-clock second).
  Program Prog = generateWorkload(dacapoProfile("hsqldb"));
  auto Policy = makeObjectPolicy(Prog, 2, 1);
  CancellationToken Token;

  PointsToResult R;
  std::thread Solve([&] {
    ContextTable Table;
    SolverOptions Options;
    Options.Budget.MaxTuples = ~0ull;
    Options.Budget.MaxSeconds = 1e9;
    Options.Cancel = &Token;
    R = solvePointsTo(Prog, *Policy, Table, Options);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Timer SinceSignal;
  Token.cancel();
  Solve.join();
  EXPECT_LT(SinceSignal.millis(), 250.0);
  EXPECT_EQ(R.Status, SolveStatus::Cancelled);
  expectConsistent(Prog, R);
}

// --- The degradation ladder ---------------------------------------------------

TEST(Resilient, HappyPathStopsAtDeepRung) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOutcome Out = runResilient(Prog, *Refined);
  EXPECT_TRUE(Out.completed());
  EXPECT_EQ(Out.Level, DegradationLevel::Deep);
  EXPECT_EQ(Out.Result.AnalysisName, "2objH");
  ASSERT_EQ(Out.Trace.size(), 1u);
  EXPECT_EQ(Out.Trace[0].Level, DegradationLevel::Deep);
  EXPECT_EQ(Out.Trace[0].Status, SolveStatus::Completed);
  // The happy path never runs the pre-analysis or the metric queries.
  EXPECT_TRUE(Out.Metrics.InFlow.empty());
  EXPECT_EQ(Out.MetricSeconds, 0.0);
  EXPECT_FALSE(Out.Cancelled);
}

TEST(Resilient, EveryRungIsForcedDownToInsensitive) {
  // Force all four refined rungs to fail; the ladder must degrade to the
  // context-insensitive result and record the full trace in rung order.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.TightenedRounds = 2;
  Options.faultsFor(DegradationLevel::Deep) =
      failFast(SolveStatus::TupleBudgetExceeded);
  Options.faultsFor(DegradationLevel::IntroB) =
      failFast(SolveStatus::TimeBudgetExceeded);
  Options.faultsFor(DegradationLevel::IntroA) =
      failFast(SolveStatus::MemoryBudgetExceeded);
  Options.faultsFor(DegradationLevel::TightenedIntroA) =
      failFast(SolveStatus::TupleBudgetExceeded);

  ResilientOutcome Out = runResilient(Prog, *Refined, Options);

  EXPECT_TRUE(Out.completed());
  EXPECT_EQ(Out.Level, DegradationLevel::Insensitive);
  EXPECT_EQ(Out.Result.AnalysisName, "insens");
  EXPECT_FALSE(Out.Cancelled);
  expectConsistent(Prog, Out.Result);

  // Full trace: deep, the insensitive pre-analysis, introB, introA, and
  // both tightened rounds — six attempts, statuses as injected.
  ASSERT_EQ(Out.Trace.size(), 6u);
  EXPECT_EQ(Out.Trace[0].Level, DegradationLevel::Deep);
  EXPECT_EQ(Out.Trace[0].Status, SolveStatus::TupleBudgetExceeded);
  EXPECT_EQ(Out.Trace[1].Level, DegradationLevel::Insensitive);
  EXPECT_EQ(Out.Trace[1].Status, SolveStatus::Completed);
  EXPECT_EQ(Out.Trace[2].Level, DegradationLevel::IntroB);
  EXPECT_EQ(Out.Trace[2].Status, SolveStatus::TimeBudgetExceeded);
  EXPECT_EQ(Out.Trace[2].AnalysisName, "2objH-IntroB");
  EXPECT_EQ(Out.Trace[3].Level, DegradationLevel::IntroA);
  EXPECT_EQ(Out.Trace[3].Status, SolveStatus::MemoryBudgetExceeded);
  EXPECT_EQ(Out.Trace[3].AnalysisName, "2objH-IntroA");
  EXPECT_EQ(Out.Trace[4].Level, DegradationLevel::TightenedIntroA);
  EXPECT_EQ(Out.Trace[4].TightenedRound, 1u);
  EXPECT_EQ(Out.Trace[4].AnalysisName, "2objH-IntroA-tight1");
  EXPECT_EQ(Out.Trace[5].Level, DegradationLevel::TightenedIntroA);
  EXPECT_EQ(Out.Trace[5].TightenedRound, 2u);
  for (const Attempt &A : Out.Trace)
    EXPECT_GE(A.Seconds, 0.0);

  // The formatted trace mentions every rung and every status.
  std::string Rendered = formatAttemptTrace(Out.Trace);
  EXPECT_NE(Rendered.find("deep"), std::string::npos);
  EXPECT_NE(Rendered.find("introB"), std::string::npos);
  EXPECT_NE(Rendered.find("introA-tightened#2"), std::string::npos);
  EXPECT_NE(Rendered.find("insensitive"), std::string::npos);
  EXPECT_NE(Rendered.find("MemoryBudgetExceeded"), std::string::npos);
}

TEST(Resilient, ReturnsDeepestRungThatCompletes) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);

  struct Case {
    std::vector<DegradationLevel> Failing;
    DegradationLevel Expected;
    const char *ExpectedName;
  };
  const Case Cases[] = {
      {{DegradationLevel::Deep}, DegradationLevel::IntroB, "2objH-IntroB"},
      {{DegradationLevel::Deep, DegradationLevel::IntroB},
       DegradationLevel::IntroA,
       "2objH-IntroA"},
      {{DegradationLevel::Deep, DegradationLevel::IntroB,
        DegradationLevel::IntroA},
       DegradationLevel::TightenedIntroA,
       "2objH-IntroA-tight1"},
  };
  for (const Case &C : Cases) {
    ResilientOptions Options;
    for (DegradationLevel Level : C.Failing)
      Options.faultsFor(Level) = failFast();
    ResilientOutcome Out = runResilient(Prog, *Refined, Options);
    EXPECT_TRUE(Out.completed());
    EXPECT_EQ(Out.Level, C.Expected);
    EXPECT_EQ(Out.Result.AnalysisName, C.ExpectedName);
    expectConsistent(Prog, Out.Result);
    // Earlier rungs appear in the trace as failed attempts.
    ASSERT_GE(Out.Trace.size(), C.Failing.size() + 1);
    EXPECT_EQ(Out.Trace.back().Status, SolveStatus::Completed);
  }
}

TEST(Resilient, SkippingRungsStartsTheLadderLower) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.AttemptDeep = false;
  Options.AttemptIntroB = false;
  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  EXPECT_TRUE(Out.completed());
  EXPECT_EQ(Out.Level, DegradationLevel::IntroA);
  EXPECT_EQ(Out.Result.AnalysisName, "2objH-IntroA");
  // Trace: the pre-analysis, then the IntroA rung.
  ASSERT_EQ(Out.Trace.size(), 2u);
  EXPECT_EQ(Out.Trace[0].Level, DegradationLevel::Insensitive);
  EXPECT_EQ(Out.Trace[1].Level, DegradationLevel::IntroA);
  EXPECT_FALSE(Out.Metrics.InFlow.empty());
  // The winning rung's exceptions are reported.
  EXPECT_FALSE(Out.Exceptions.NoRefineHeaps.empty() &&
               Out.Exceptions.NoRefineSites.empty());
}

TEST(Resilient, TightenedRoundsExcludeMoreEachTime) {
  // With absurdly tight backoff the tightened rungs must exclude at least
  // as many elements as plain IntroA does (monotone thresholds).
  Program Prog = chartProgram();
  PointsToResult Insens = [&] {
    auto Policy = makeInsensitivePolicy();
    ContextTable Table;
    return solvePointsTo(Prog, *Policy, Table);
  }();
  IntrospectionMetrics M = computeIntrospectionMetrics(Prog, Insens);
  HeuristicAParams Base;
  RefinementExceptions Loose = applyHeuristicA(Prog, Insens, M, Base);
  HeuristicAParams Tight;
  Tight.K = Base.K / 16;
  Tight.L = Base.L / 16;
  Tight.M = Base.M / 16;
  RefinementExceptions Tightened = applyHeuristicA(Prog, Insens, M, Tight);
  EXPECT_GE(Tightened.NoRefineHeaps.size(), Loose.NoRefineHeaps.size());
  EXPECT_GE(Tightened.NoRefineSites.size(), Loose.NoRefineSites.size());
}

TEST(Resilient, NonsenseBackoffMultiplierIsClampedToNoTightening) {
  // A multiplier of 0 (or any value <= 1) cannot tighten; the ladder must
  // clamp it rather than cast inf/negative quotients to integers.  With
  // the IntroA rung faulted, the first tightened round then repeats plain
  // IntroA's thresholds exactly, so it reproduces plain IntroA's result.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Plain;
  Plain.AttemptDeep = false;
  Plain.AttemptIntroB = false;
  ResilientOutcome Baseline = runResilient(Prog, *Refined, Plain);
  ASSERT_TRUE(Baseline.completed());
  for (double Multiplier : {0.0, -2.0, 0.5}) {
    ResilientOptions Options = Plain;
    Options.faultsFor(DegradationLevel::IntroA).FailAtPop = 1;
    Options.BackoffMultiplier = Multiplier;
    ResilientOutcome Out = runResilient(Prog, *Refined, Options);
    ASSERT_TRUE(Out.completed()) << "multiplier " << Multiplier;
    EXPECT_EQ(Out.Level, DegradationLevel::TightenedIntroA);
    EXPECT_EQ(Out.Result.Stats.VarPointsToTuples,
              Baseline.Result.Stats.VarPointsToTuples)
        << "multiplier " << Multiplier;
  }
}

TEST(Resilient, CancellationStopsTheLadderInsteadOfDegrading) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  CancellationToken Token;
  Token.cancel();
  ResilientOptions Options;
  Options.Cancel = &Token;
  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  EXPECT_TRUE(Out.Cancelled);
  EXPECT_FALSE(Out.completed());
  EXPECT_EQ(Out.Result.Status, SolveStatus::Cancelled);
  // Only the deep attempt ran: no degradation after a cancel.
  ASSERT_EQ(Out.Trace.size(), 1u);
  EXPECT_EQ(Out.Trace[0].Level, DegradationLevel::Deep);
}

TEST(Resilient, CancellationMidLadderFallsBackToCompletedPreAnalysis) {
  // Disable in-solver polling so the (pre-fired) cancel is observed only
  // between rungs: the deep rung fails on its injected fault, the
  // pre-analysis completes, and the ladder then stops before IntroB,
  // handing back the completed insensitive result instead of degrading
  // through the remaining rungs.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  CancellationToken Token;
  Token.cancel();
  ResilientOptions Options;
  Options.Cancel = &Token;
  Options.CancelInterval = 0xFFFFFFFFu;
  Options.faultsFor(DegradationLevel::Deep) = failFast();
  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  EXPECT_TRUE(Out.Cancelled);
  EXPECT_TRUE(Out.completed());
  EXPECT_EQ(Out.Level, DegradationLevel::Insensitive);
  EXPECT_EQ(Out.Result.AnalysisName, "insens");
  ASSERT_EQ(Out.Trace.size(), 2u);
  EXPECT_EQ(Out.Trace[0].Status, SolveStatus::TupleBudgetExceeded);
  EXPECT_EQ(Out.Trace[1].Status, SolveStatus::Completed);
}

// --- Budget-exhausted runs stay consistent (both introspective passes) ------

TEST(BudgetExhaustion, FirstPassTupleBudgetYieldsSoundPrefix) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOptions Options;
  Options.FirstPassBudget.MaxTuples = 500;
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  EXPECT_EQ(Out.FirstPass.Status, SolveStatus::TupleBudgetExceeded);
  expectConsistent(Prog, Out.FirstPass);
  // The second pass still runs (with junk exceptions) and stays consistent.
  expectConsistent(Prog, Out.SecondPass);
}

TEST(BudgetExhaustion, SecondPassTupleBudgetYieldsSoundPrefix) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOptions Options;
  Options.SecondPassBudget.MaxTuples = 500;
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  EXPECT_EQ(Out.FirstPass.Status, SolveStatus::Completed);
  EXPECT_EQ(Out.SecondPass.Status, SolveStatus::TupleBudgetExceeded);
  expectConsistent(Prog, Out.SecondPass);
}

TEST(BudgetExhaustion, TimeBudgetYieldsSoundPrefixInBothPasses) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  for (bool FirstPass : {true, false}) {
    IntrospectiveOptions Options;
    // A zero wall-clock budget trips at the first 1024-iteration clock
    // checkpoint: deterministic without being machine-dependent.
    (FirstPass ? Options.FirstPassBudget : Options.SecondPassBudget)
        .MaxSeconds = 0.0;
    IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
    const PointsToResult &Truncated =
        FirstPass ? Out.FirstPass : Out.SecondPass;
    EXPECT_EQ(Truncated.Status, SolveStatus::TimeBudgetExceeded);
    expectConsistent(Prog, Truncated);
  }
}

// --- Portfolio mode ----------------------------------------------------------

namespace {

/// Asserts that two results carry an identical client-visible payload:
/// every projection table, the analysis identity, and the deterministic
/// solver counters.  (Stats.Seconds and ApproxBytes are wall-clock / size
/// estimates and excluded by design.)
void expectSamePayload(const PointsToResult &A, const PointsToResult &B) {
  EXPECT_EQ(A.AnalysisName, B.AnalysisName);
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.VarHeaps, B.VarHeaps);
  EXPECT_EQ(A.FieldHeaps, B.FieldHeaps);
  EXPECT_EQ(A.StaticFieldHeaps, B.StaticFieldHeaps);
  EXPECT_EQ(A.MethodThrows, B.MethodThrows);
  EXPECT_EQ(A.SiteTargets, B.SiteTargets);
  EXPECT_EQ(A.MethodReachable, B.MethodReachable);
  EXPECT_EQ(A.Stats.VarPointsToTuples, B.Stats.VarPointsToTuples);
  EXPECT_EQ(A.Stats.FieldPointsToTuples, B.Stats.FieldPointsToTuples);
  EXPECT_EQ(A.Stats.NumContexts, B.Stats.NumContexts);
  EXPECT_EQ(A.Stats.WorklistPops, B.Stats.WorklistPops);
  EXPECT_EQ(A.Stats.CallGraphEdges, B.Stats.CallGraphEdges);
}

/// Asserts that a portfolio run's outcome matches the sequential walk's
/// bit for bit on everything the contract pins: result payload, rung,
/// metrics, exceptions, cancellation flag.
void expectSameOutcome(const ResilientOutcome &Seq,
                       const ResilientOutcome &Par) {
  EXPECT_EQ(Seq.Level, Par.Level);
  EXPECT_EQ(Seq.Cancelled, Par.Cancelled);
  expectSamePayload(Seq.Result, Par.Result);
  EXPECT_EQ(Seq.Metrics.InFlow, Par.Metrics.InFlow);
  EXPECT_EQ(Seq.Metrics.MethodTotalVolume, Par.Metrics.MethodTotalVolume);
  EXPECT_EQ(Seq.Metrics.MethodMaxVarPointsTo,
            Par.Metrics.MethodMaxVarPointsTo);
  EXPECT_EQ(Seq.Metrics.ObjectMaxFieldPointsTo,
            Par.Metrics.ObjectMaxFieldPointsTo);
  EXPECT_EQ(Seq.Metrics.ObjectTotalFieldPointsTo,
            Par.Metrics.ObjectTotalFieldPointsTo);
  EXPECT_EQ(Seq.Metrics.MethodMaxVarFieldPointsTo,
            Par.Metrics.MethodMaxVarFieldPointsTo);
  EXPECT_EQ(Seq.Metrics.PointedByVars, Par.Metrics.PointedByVars);
  EXPECT_EQ(Seq.Metrics.PointedByObjs, Par.Metrics.PointedByObjs);
  EXPECT_EQ(Seq.Exceptions.NoRefineHeaps, Par.Exceptions.NoRefineHeaps);
  EXPECT_EQ(Seq.Exceptions.NoRefineSites, Par.Exceptions.NoRefineSites);
}

} // namespace

TEST(Portfolio, BitIdenticalToSequentialAtEveryWinningRung) {
  // Every rung the ladder can return is exercised by failing the rungs
  // above it; in each scenario the racing portfolio must hand back the
  // exact outcome of the sequential walk.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);

  const std::vector<std::vector<DegradationLevel>> Scenarios = {
      {}, // Deep wins outright.
      {DegradationLevel::Deep},
      {DegradationLevel::Deep, DegradationLevel::IntroB},
      {DegradationLevel::Deep, DegradationLevel::IntroB,
       DegradationLevel::IntroA},
      {DegradationLevel::Deep, DegradationLevel::IntroB,
       DegradationLevel::IntroA, DegradationLevel::TightenedIntroA},
  };
  for (const auto &Failing : Scenarios) {
    ResilientOptions Sequential;
    for (DegradationLevel Level : Failing)
      Sequential.faultsFor(Level) = failFast();
    ResilientOptions Racing = Sequential;
    Racing.Portfolio = true;
    Racing.Workers = 4;

    ResilientOutcome Seq = runResilient(Prog, *Refined, Sequential);
    ResilientOutcome Par = runResilient(Prog, *Refined, Racing);
    SCOPED_TRACE("failing rungs: " + std::to_string(Failing.size()));
    expectSameOutcome(Seq, Par);
    expectConsistent(Prog, Par.Result);
  }
}

TEST(Portfolio, WorkerCountDoesNotChangeTheOutcome) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Base;
  Base.faultsFor(DegradationLevel::Deep) = failFast();
  Base.Portfolio = true;

  Base.Workers = 1;
  ResilientOutcome One = runResilient(Prog, *Refined, Base);
  Base.Workers = 3;
  ResilientOutcome Three = runResilient(Prog, *Refined, Base);
  Base.Workers = 8;
  ResilientOutcome Eight = runResilient(Prog, *Refined, Base);
  expectSameOutcome(One, Three);
  expectSameOutcome(One, Eight);
  EXPECT_EQ(One.Level, DegradationLevel::IntroB);
}

TEST(Portfolio, TraceRecordsEveryLaunchedRungInLadderOrder) {
  // Completion order races; trace order must not.  With every refined
  // rung failing, all seven attempts (deep, the pre-analysis, introB,
  // introA, two tightened rounds) appear in ladder-walk order with their
  // injected statuses.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.Portfolio = true;
  Options.Workers = 4;
  Options.TightenedRounds = 2;
  Options.faultsFor(DegradationLevel::Deep) =
      failFast(SolveStatus::TupleBudgetExceeded);
  Options.faultsFor(DegradationLevel::IntroB) =
      failFast(SolveStatus::TimeBudgetExceeded);
  Options.faultsFor(DegradationLevel::IntroA) =
      failFast(SolveStatus::MemoryBudgetExceeded);
  Options.faultsFor(DegradationLevel::TightenedIntroA) =
      failFast(SolveStatus::TupleBudgetExceeded);

  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  EXPECT_TRUE(Out.completed());
  EXPECT_EQ(Out.Level, DegradationLevel::Insensitive);

  ASSERT_EQ(Out.Trace.size(), 6u);
  EXPECT_EQ(Out.Trace[0].Level, DegradationLevel::Deep);
  EXPECT_EQ(Out.Trace[0].Status, SolveStatus::TupleBudgetExceeded);
  EXPECT_EQ(Out.Trace[1].Level, DegradationLevel::Insensitive);
  EXPECT_EQ(Out.Trace[1].Status, SolveStatus::Completed);
  EXPECT_EQ(Out.Trace[2].Level, DegradationLevel::IntroB);
  EXPECT_EQ(Out.Trace[2].Status, SolveStatus::TimeBudgetExceeded);
  EXPECT_EQ(Out.Trace[3].Level, DegradationLevel::IntroA);
  EXPECT_EQ(Out.Trace[3].Status, SolveStatus::MemoryBudgetExceeded);
  EXPECT_EQ(Out.Trace[4].Level, DegradationLevel::TightenedIntroA);
  EXPECT_EQ(Out.Trace[4].TightenedRound, 1u);
  EXPECT_EQ(Out.Trace[5].Level, DegradationLevel::TightenedIntroA);
  EXPECT_EQ(Out.Trace[5].TightenedRound, 2u);
}

TEST(Portfolio, HappyDeepWinClearsMetricsLikeSequential) {
  // The sequential happy path never computes metrics; a deep win in the
  // portfolio (which always runs the pre-analysis concurrently) must not
  // leak them into the outcome.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.Portfolio = true;
  Options.Workers = 4;
  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  EXPECT_EQ(Out.Level, DegradationLevel::Deep);
  EXPECT_TRUE(Out.Metrics.InFlow.empty());
  EXPECT_EQ(Out.MetricSeconds, 0.0);
}

TEST(Portfolio, PreCancelledTokenMatchesSequentialCancellation) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  CancellationToken Cancel;
  Cancel.cancel();

  ResilientOptions Sequential;
  Sequential.Cancel = &Cancel;
  ResilientOptions Racing = Sequential;
  Racing.Portfolio = true;
  Racing.Workers = 4;

  ResilientOutcome Seq = runResilient(Prog, *Refined, Sequential);
  ResilientOutcome Par = runResilient(Prog, *Refined, Racing);
  EXPECT_TRUE(Seq.Cancelled);
  EXPECT_TRUE(Par.Cancelled);
  EXPECT_EQ(Seq.Level, Par.Level);
  EXPECT_EQ(Seq.Result.Status, Par.Result.Status);
  expectConsistent(Prog, Par.Result);
}

TEST(Portfolio, ConcurrentExternalCancellationStopsAllRungs) {
  // A caller-side cancel while the rungs race must fan out through the
  // linked tokens and stop every in-flight solve.  jython's deep rung
  // explodes, so without the cancel this would run for many seconds; the
  // budgets below are only a backstop so a regression fails instead of
  // hanging.  The cancel fires 25 ms in so that even the cheap first-pass
  // rung is still in flight (the batched solver finishes it well under
  // the 100 ms this test historically waited).  Exercised under TSan in
  // CI to pin the token fan-out as data-race-free.
  Program Prog = generateWorkload(dacapoProfile("jython"));
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  CancellationToken Cancel;
  ResilientOptions Options;
  Options.Portfolio = true;
  Options.Workers = 4;
  Options.Cancel = &Cancel;
  Options.DeepBudget.MaxSeconds = 30.0;
  Options.FirstPassBudget.MaxSeconds = 30.0;
  Options.RefinedBudget.MaxSeconds = 30.0;

  std::thread Canceller([&Cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    Cancel.cancel();
  });
  Timer Clock;
  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  Canceller.join();

  EXPECT_TRUE(Out.Cancelled);
  EXPECT_FALSE(Out.completed());
  // Cancellation must beat the 30 s budget backstop by a wide margin.
  EXPECT_LT(Clock.seconds(), 15.0);
  expectConsistent(Prog, Out.Result);
  // Every recorded attempt was stopped by the token, not by a budget.
  for (const Attempt &A : Out.Trace)
    EXPECT_EQ(A.Status, SolveStatus::Cancelled);
}

TEST(Portfolio, SharedEmptySetIsSafeForConcurrentReaders) {
  // PointsToResult::emptySet() is the shared fallback every racing rung's
  // readers may touch; all threads must observe one fully-constructed
  // object at a single address (C++11 magic statics).
  PointsToResult Result; // No tables: every query hits the fallback.
  const SortedIdSet *Addresses[8] = {};
  {
    ThreadPool Pool(4);
    std::vector<std::future<void>> Reads;
    for (size_t Reader = 0; Reader < 8; ++Reader)
      Reads.push_back(Pool.submit([&Result, &Addresses, Reader] {
        const SortedIdSet &Empty = Result.pointsTo(VarId(12345));
        EXPECT_TRUE(Empty.empty());
        EXPECT_TRUE(Result.callTargets(SiteId(7)).empty());
        EXPECT_TRUE(Result.throwsOf(MethodId(9)).empty());
        Addresses[Reader] = &Empty;
      }));
    for (auto &Read : Reads)
      Read.get();
  }
  for (size_t Reader = 1; Reader < 8; ++Reader)
    EXPECT_EQ(Addresses[Reader], Addresses[0]);
}

TEST(FaultInjection, TupleInflationSaturatesInsteadOfWrapping) {
  // A pathological inflation factor whose product with the tuple count
  // overflows uint64 must saturate and trip the budget — wrapping would
  // make the product tiny and silently disarm the check.
  Program Prog = chartProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.Faults.TupleInflation = std::numeric_limits<uint64_t>::max();
  Options.Budget.MaxTuples = std::numeric_limits<uint64_t>::max() - 1;
  PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::TupleBudgetExceeded);
  expectConsistent(Prog, R);
}

// --- FaultPlan x portfolio interplay -----------------------------------------
//
// The solver-level fault plans and the racing portfolio compose: a fault
// firing inside a portfolio worker must produce exactly the sequential
// walk's outcome — first-completing-in-ladder-order winner, consistent
// payload, and an attempt trace that tells the whole story.

namespace {

/// Ladder-walk position of \p Level (launch order: deep, the insensitive
/// pre-analysis, then the refined rungs).
size_t ladderPosition(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::Deep:
    return 0;
  case DegradationLevel::Insensitive:
    return 1;
  case DegradationLevel::IntroB:
    return 2;
  case DegradationLevel::IntroA:
    return 3;
  case DegradationLevel::TightenedIntroA:
    return 4;
  }
  return 5;
}

/// Serializes \p Out and returns the parsed "attempts" array.
JsonValue outcomeAttemptsJson(const ResilientOutcome &Out) {
  std::ostringstream Text;
  JsonWriter J(Text);
  writeResilientOutcomeJson(J, Out);
  JsonParseResult Parsed = parseJson(Text.str());
  EXPECT_TRUE(Parsed.ok()) << Parsed.Error;
  const JsonValue *Attempts = Parsed.Value.get("attempts");
  EXPECT_NE(Attempts, nullptr);
  return Attempts ? *Attempts : JsonValue();
}

} // namespace

TEST(PortfolioFaults, WorkerFaultStillYieldsLadderOrderWinnerAndFullTrace) {
  // Only the deep rung faults; IntroB, IntroA, and the floor all complete,
  // and completion order races.  The winner must be IntroB — the first
  // completer in *ladder* order — exactly as in the sequential walk.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Sequential;
  Sequential.faultsFor(DegradationLevel::Deep) = failFast();
  ResilientOptions Racing = Sequential;
  Racing.Portfolio = true;
  Racing.Workers = 4;

  ResilientOutcome Seq = runResilient(Prog, *Refined, Sequential);
  ResilientOutcome Par = runResilient(Prog, *Refined, Racing);
  EXPECT_EQ(Par.Level, DegradationLevel::IntroB);
  expectSameOutcome(Seq, Par);
  expectConsistent(Prog, Par.Result);

  // The trace is complete and in ladder order: the faulted deep rung with
  // its injected status, then the rungs that ran, never out of order.
  ASSERT_FALSE(Par.Trace.empty());
  EXPECT_EQ(Par.Trace[0].Level, DegradationLevel::Deep);
  EXPECT_EQ(Par.Trace[0].Status, SolveStatus::TupleBudgetExceeded);
  for (size_t Index = 1; Index < Par.Trace.size(); ++Index)
    EXPECT_LT(ladderPosition(Par.Trace[Index - 1].Level),
              ladderPosition(Par.Trace[Index].Level) +
                  (Par.Trace[Index].Level == DegradationLevel::TightenedIntroA
                       ? 1
                       : 0))
        << "trace out of ladder order at row " << Index;
  bool SawWinner = false;
  for (const Attempt &A : Par.Trace)
    if (A.Level == DegradationLevel::IntroB &&
        A.Status == SolveStatus::Completed)
      SawWinner = true;
  EXPECT_TRUE(SawWinner);
}

TEST(PortfolioFaults, ExactlyOneWonFlagInTheOutcomeJson) {
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Options;
  Options.Portfolio = true;
  Options.Workers = 4;
  Options.faultsFor(DegradationLevel::Deep) = failFast();

  ResilientOutcome Out = runResilient(Prog, *Refined, Options);
  JsonValue Attempts = outcomeAttemptsJson(Out);
  ASSERT_TRUE(Attempts.isArray());
  size_t WonCount = 0;
  std::string WinnerLevel;
  for (const JsonValue &A : Attempts.elements()) {
    bool Won = false;
    ASSERT_TRUE(A.getBool("won", Won));
    if (!Won)
      continue;
    ++WonCount;
    ASSERT_TRUE(A.getString("level", WinnerLevel));
  }
  EXPECT_EQ(WonCount, 1u);
  EXPECT_EQ(WinnerLevel, degradationLevelName(Out.Level));
}

TEST(PortfolioFaults, AllRungsFaultedLeavesNoWonFlag) {
  // When even the floor faults, nothing completes and no attempt may be
  // marked as the winner; the racing walk must agree with the sequential
  // one on the all-failed outcome.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Sequential;
  for (DegradationLevel Level :
       {DegradationLevel::Deep, DegradationLevel::Insensitive,
        DegradationLevel::IntroB, DegradationLevel::IntroA,
        DegradationLevel::TightenedIntroA})
    Sequential.faultsFor(Level) = failFast();
  ResilientOptions Racing = Sequential;
  Racing.Portfolio = true;
  Racing.Workers = 4;

  ResilientOutcome Seq = runResilient(Prog, *Refined, Sequential);
  ResilientOutcome Par = runResilient(Prog, *Refined, Racing);
  EXPECT_FALSE(Seq.completed());
  EXPECT_FALSE(Par.completed());
  EXPECT_EQ(Seq.Level, Par.Level);
  EXPECT_EQ(Seq.Result.Status, Par.Result.Status);
  expectConsistent(Prog, Par.Result);

  JsonValue Attempts = outcomeAttemptsJson(Par);
  ASSERT_TRUE(Attempts.isArray());
  for (const JsonValue &A : Attempts.elements()) {
    bool Won = true;
    ASSERT_TRUE(A.getBool("won", Won));
    EXPECT_FALSE(Won);
  }
}

TEST(PortfolioFaults, PreAnalysisFaultUnderPortfolioMatchesSequential) {
  // The insensitive pre-analysis rung itself faults while the refined
  // rungs race on top of it.  Whatever the sequential ladder does with a
  // dead floor, the portfolio must reproduce it bit for bit.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Sequential;
  Sequential.faultsFor(DegradationLevel::Deep) = failFast();
  Sequential.faultsFor(DegradationLevel::Insensitive) =
      failFast(SolveStatus::MemoryBudgetExceeded);
  ResilientOptions Racing = Sequential;
  Racing.Portfolio = true;
  Racing.Workers = 4;

  ResilientOutcome Seq = runResilient(Prog, *Refined, Sequential);
  ResilientOutcome Par = runResilient(Prog, *Refined, Racing);
  expectSameOutcome(Seq, Par);
  expectConsistent(Prog, Par.Result);

  // The pre-analysis row records its injected status in both walks.
  for (const ResilientOutcome *Out : {&Seq, &Par}) {
    bool SawFloor = false;
    for (const Attempt &A : Out->Trace)
      if (A.Level == DegradationLevel::Insensitive) {
        SawFloor = true;
        EXPECT_EQ(A.Status, SolveStatus::MemoryBudgetExceeded);
      }
    EXPECT_TRUE(SawFloor);
  }
}

TEST(PortfolioFaults, TupleInflationTripsBudgetsIdenticallyInTheRace) {
  // TupleInflation makes the budget check see exploding points-to sets.
  // Inflated IntroB trips its tuple budget inside a portfolio worker; the
  // race must settle on IntroA exactly like the sequential walk.
  Program Prog = chartProgram();
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  ResilientOptions Sequential;
  Sequential.faultsFor(DegradationLevel::Deep) = failFast();
  Sequential.faultsFor(DegradationLevel::IntroB).TupleInflation = 1000000;
  Sequential.RefinedBudget.MaxTuples = 10000000;

  ResilientOptions Racing = Sequential;
  Racing.Portfolio = true;
  Racing.Workers = 4;

  ResilientOutcome Seq = runResilient(Prog, *Refined, Sequential);
  ResilientOutcome Par = runResilient(Prog, *Refined, Racing);
  EXPECT_EQ(Seq.Level, DegradationLevel::IntroA);
  expectSameOutcome(Seq, Par);
  expectConsistent(Prog, Par.Result);

  for (const Attempt &A : Par.Trace)
    if (A.Level == DegradationLevel::IntroB)
      EXPECT_EQ(A.Status, SolveStatus::TupleBudgetExceeded);
}
