//===- tests/GoldenTests.cpp - Deterministic golden-value regression ------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workloads are seeded and the solver is deterministic, so every
/// analysis result is bit-for-bit reproducible.  These tests pin the exact
/// relation sizes and precision metrics of two benchmarks under all four
/// base analyses.  Any semantic change to the solver, the context
/// policies, the metrics, or the generator shows up here first — if a
/// change is *intentional*, regenerate the table below (the values are
/// printed by the failing assertions).
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "workload/DaCapo.h"

#include <gtest/gtest.h>

using namespace intro;

namespace {

struct Golden {
  const char *Analysis;
  uint64_t VarTuples, FieldTuples, Contexts;
  uint64_t Poly, Reachable, Casts, CallGraphEdges;
};

void expectGolden(const char *Benchmark, const std::vector<Golden> &Rows) {
  Program Prog = generateWorkload(dacapoProfile(Benchmark));
  for (const Golden &Row : Rows) {
    std::string Name = Row.Analysis;
    std::unique_ptr<ContextPolicy> Policy =
        Name == "insens"   ? makeInsensitivePolicy()
        : Name == "2objH"  ? makeObjectPolicy(Prog, 2, 1)
        : Name == "2typeH" ? makeTypePolicy(Prog, 2, 1)
                           : makeCallSitePolicy(2, 1);
    ContextTable Table;
    PointsToResult R = solvePointsTo(Prog, *Policy, Table);
    ASSERT_EQ(R.Status, SolveStatus::Completed) << Benchmark << " " << Name;
    PrecisionMetrics M = computePrecision(Prog, R);

    EXPECT_EQ(R.Stats.VarPointsToTuples, Row.VarTuples)
        << Benchmark << " " << Name;
    EXPECT_EQ(R.Stats.FieldPointsToTuples, Row.FieldTuples)
        << Benchmark << " " << Name;
    EXPECT_EQ(R.Stats.NumContexts, Row.Contexts) << Benchmark << " " << Name;
    EXPECT_EQ(M.PolymorphicVirtualCallSites, Row.Poly)
        << Benchmark << " " << Name;
    EXPECT_EQ(M.ReachableMethods, Row.Reachable) << Benchmark << " " << Name;
    EXPECT_EQ(M.CastsThatMayFail, Row.Casts) << Benchmark << " " << Name;
    EXPECT_EQ(R.Stats.CallGraphEdges, Row.CallGraphEdges)
        << Benchmark << " " << Name;
  }
}

} // namespace

TEST(Golden, AntlrAllAnalyses) {
  expectGolden("antlr",
               {{"insens", 2651, 1066, 1, 26, 114, 83, 291},
                {"2objH", 3379, 1040, 135, 3, 114, 3, 260},
                {"2typeH", 3544, 1100, 26, 5, 114, 65, 262},
                {"2callH", 3915, 1040, 281, 3, 114, 3, 260}});
}

TEST(Golden, ChartAllAnalyses) {
  expectGolden("chart",
               {{"insens", 500918, 221958, 1, 542, 1121, 1108, 7104},
                {"2objH", 208849, 86184, 1713, 8, 1031, 8, 3188},
                {"2typeH", 136276, 68946, 202, 86, 1031, 832, 3272},
                {"2callH", 501375, 86184, 3685, 8, 1031, 8, 3188}});
}

TEST(Golden, ProgramShapes) {
  Program Antlr = generateWorkload(dacapoProfile("antlr"));
  EXPECT_EQ(Antlr.numTypes(), 105u);
  EXPECT_EQ(Antlr.numMethods(), 123u);
  EXPECT_EQ(Antlr.numVars(), 625u);
  EXPECT_EQ(Antlr.numHeaps(), 242u);
  EXPECT_EQ(Antlr.numSites(), 253u);
  EXPECT_EQ(Antlr.numInstructions(), 603u);

  Program Chart = generateWorkload(dacapoProfile("chart"));
  EXPECT_EQ(Chart.numTypes(), 462u);
  EXPECT_EQ(Chart.numMethods(), 1123u);
  EXPECT_EQ(Chart.numVars(), 6955u);
  EXPECT_EQ(Chart.numHeaps(), 2669u);
  EXPECT_EQ(Chart.numSites(), 3164u);
  EXPECT_EQ(Chart.numInstructions(), 7004u);
}
