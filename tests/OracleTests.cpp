//===- tests/OracleTests.cpp - Solver vs. Datalog reference ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validates the worklist solver against the literal Datalog rendering
/// of the paper's Figure 3, and both against the concrete interpreter
/// (soundness).  These are the strongest correctness guarantees in the
/// project: two independent implementations of the model must agree on
/// every relation, tuple for tuple, for every context flavor.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/DatalogReference.h"
#include "analysis/Solver.h"
#include "ir/Interpreter.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace intro;
using namespace intro::testing;

namespace {

/// Runs both implementations (sharing one context table so handles are
/// comparable) and asserts relation-for-relation equality.
void expectAgreement(const Program &Prog, const ContextPolicy &Policy) {
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult Solver = solvePointsTo(Prog, Policy, Table, Options);
  ASSERT_EQ(Solver.Status, SolveStatus::Completed);
  DatalogReferenceResult Reference = runDatalogReference(Prog, Policy, Table);
  ASSERT_FALSE(Reference.BudgetExceeded);

  auto SortedCopy = [](auto Tuples) {
    std::sort(Tuples.begin(), Tuples.end());
    return Tuples;
  };
  EXPECT_EQ(SortedCopy(Solver.VarPointsTo), Reference.VarPointsTo)
      << "VARPOINTSTO mismatch under " << Policy.name();
  EXPECT_EQ(SortedCopy(Solver.FieldPointsTo), Reference.FieldPointsTo)
      << "FLDPOINTSTO mismatch under " << Policy.name();
  EXPECT_EQ(SortedCopy(Solver.Reachable), Reference.Reachable)
      << "REACHABLE mismatch under " << Policy.name();
  EXPECT_EQ(SortedCopy(Solver.CallGraph), Reference.CallGraph)
      << "CALLGRAPH mismatch under " << Policy.name();
}

void expectAgreementAllFlavors(const Program &Prog) {
  expectAgreement(Prog, *makeInsensitivePolicy());
  expectAgreement(Prog, *makeCallSitePolicy(1, 0));
  expectAgreement(Prog, *makeCallSitePolicy(2, 1));
  expectAgreement(Prog, *makeObjectPolicy(Prog, 1, 0));
  expectAgreement(Prog, *makeObjectPolicy(Prog, 2, 1));
  expectAgreement(Prog, *makeTypePolicy(Prog, 2, 1));
}

/// Soundness: every dynamically observed fact is in the analysis result.
void expectSoundness(const Program &Prog, const ContextPolicy &Policy) {
  ContextTable Table;
  PointsToResult Result = solvePointsTo(Prog, Policy, Table);
  ASSERT_EQ(Result.Status, SolveStatus::Completed);
  DynamicFacts Facts = interpret(Prog);

  for (auto [Var, Heap] : Facts.VarPointsTo)
    EXPECT_TRUE(setContains(Result.pointsTo(Var), Heap.index()))
        << "dynamic fact " << Prog.varName(Var) << " -> "
        << Prog.heapName(Heap) << " missing under " << Policy.name();
  for (MethodId Method : Facts.ReachedMethods)
    EXPECT_TRUE(Result.isReachable(Method))
        << "dynamically reached method " << Prog.methodName(Method)
        << " not reachable under " << Policy.name();
  for (auto [Site, Target] : Facts.CallEdges)
    EXPECT_TRUE(setContains(Result.callTargets(Site), Target.index()))
        << "dynamic call edge missing under " << Policy.name();
  for (auto [BaseHeap, Field, Heap] : Facts.FieldPointsTo) {
    auto It = Result.FieldHeaps.find(PointsToResult::fieldKey(BaseHeap, Field));
    ASSERT_NE(It, Result.FieldHeaps.end());
    EXPECT_TRUE(setContains(It->second, Heap.index()));
  }
}

} // namespace

TEST(Oracle, TwoBoxesAllFlavors) { expectAgreementAllFlavors(makeTwoBoxes().Prog); }

TEST(Oracle, DispatchAllFlavors) { expectAgreementAllFlavors(makeDispatch().Prog); }

TEST(Oracle, MixedAllFlavors) { expectAgreementAllFlavors(makeMixed().Prog); }

TEST(Oracle, IntrospectiveSplitAgrees) {
  TwoBoxes T = makeTwoBoxes();
  auto Coarse = makeInsensitivePolicy();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);

  RefinementExceptions Exceptions;
  Exceptions.NoRefineHeaps.insert(T.Box1.index());
  SigId SetSig = T.Prog.site(T.SetCall1).Sig;
  MethodId SetMethod = T.Prog.lookup(T.BoxT, SetSig);
  Exceptions.NoRefineSites.insert(
      RefinementExceptions::packSite(T.SetCall1, SetMethod));

  auto Intro = makeIntrospectivePolicy("intro", *Coarse, *Refined, Exceptions);

  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult Solver = solvePointsTo(T.Prog, *Intro, Table, Options);
  DatalogReferenceResult Reference =
      runDatalogReference(T.Prog, *Coarse, *Refined, Exceptions, Table);

  auto SortedCopy = [](auto Tuples) {
    std::sort(Tuples.begin(), Tuples.end());
    return Tuples;
  };
  EXPECT_EQ(SortedCopy(Solver.VarPointsTo), Reference.VarPointsTo);
  EXPECT_EQ(SortedCopy(Solver.FieldPointsTo), Reference.FieldPointsTo);
  EXPECT_EQ(SortedCopy(Solver.Reachable), Reference.Reachable);
  EXPECT_EQ(SortedCopy(Solver.CallGraph), Reference.CallGraph);
}

TEST(Soundness, AllProgramsAllFlavors) {
  TwoBoxes T1 = makeTwoBoxes();
  Dispatch T2 = makeDispatch();
  Mixed T3 = makeMixed();
  for (const Program *Prog : {&T1.Prog, &T2.Prog, &T3.Prog}) {
    expectSoundness(*Prog, *makeInsensitivePolicy());
    expectSoundness(*Prog, *makeObjectPolicy(*Prog, 2, 1));
    expectSoundness(*Prog, *makeCallSitePolicy(2, 1));
    expectSoundness(*Prog, *makeTypePolicy(*Prog, 2, 1));
  }
}
