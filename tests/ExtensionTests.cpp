//===- tests/ExtensionTests.cpp - Extension feature tests -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the features beyond the paper's core model: checked-cast
/// semantics, hybrid context-sensitivity, composable heuristics, Datalog
/// aggregation (the paper's INFLOW query verbatim), result reports, and the
/// Doop-style facts export.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/DatalogReference.h"
#include "analysis/Reports.h"
#include "analysis/Solver.h"
#include "datalog/Aggregates.h"
#include "introspect/Custom.h"
#include "introspect/Metrics.h"
#include "ir/FactsIO.h"
#include "ir/Interpreter.h"
#include "workload/DaCapo.h"
#include "workload/Random.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace intro;
using namespace intro::testing;

// --- Checked-cast semantics ----------------------------------------------

TEST(CastFiltering, FilterRemovesIncompatibleObjects) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeInsensitivePolicy();

  ContextTable T1;
  SolverOptions Plain;
  PointsToResult Unfiltered = solvePointsTo(T.Prog, *Policy, T1, Plain);
  // Paper model: the cast target holds both payloads.
  EXPECT_TRUE(setContains(Unfiltered.pointsTo(T.CastA), T.HeapB.index()));

  ContextTable T2;
  SolverOptions Checked;
  Checked.FilterCasts = true;
  PointsToResult Filtered = solvePointsTo(T.Prog, *Policy, T2, Checked);
  // Checked casts: only the A object survives `(A) oa`.
  EXPECT_TRUE(setContains(Filtered.pointsTo(T.CastA), T.HeapA.index()));
  EXPECT_FALSE(setContains(Filtered.pointsTo(T.CastA), T.HeapB.index()));
  // The cast *source* is unaffected.
  EXPECT_TRUE(setContains(Filtered.pointsTo(T.OutA), T.HeapB.index()));
}

TEST(CastFiltering, SolverMatchesDatalogReference) {
  for (uint64_t Seed : {3u, 7u, 11u, 19u}) {
    Program Prog = generateRandomProgram(Seed);
    for (int UseObjectSens : {0, 1}) {
      auto Policy = UseObjectSens ? makeObjectPolicy(Prog, 2, 1)
                                  : makeInsensitivePolicy();
      ContextTable Table;
      SolverOptions Options;
      Options.KeepTuples = true;
      Options.FilterCasts = true;
      PointsToResult Solver = solvePointsTo(Prog, *Policy, Table, Options);
      DatalogReferenceOptions RefOptions;
      RefOptions.FilterCasts = true;
      DatalogReferenceResult Reference =
          runDatalogReference(Prog, *Policy, Table, RefOptions);

      auto Sorted = [](auto Tuples) {
        std::sort(Tuples.begin(), Tuples.end());
        return Tuples;
      };
      EXPECT_EQ(Sorted(Solver.VarPointsTo), Reference.VarPointsTo)
          << "seed " << Seed;
      EXPECT_EQ(Sorted(Solver.FieldPointsTo), Reference.FieldPointsTo)
          << "seed " << Seed;
      EXPECT_EQ(Sorted(Solver.CallGraph), Reference.CallGraph)
          << "seed " << Seed;
    }
  }
}

TEST(CastFiltering, StillSoundAgainstInterpreter) {
  // The interpreter's concrete casts also filter (a failing cast yields
  // null), so the filtered analysis must still over-approximate it.
  for (uint64_t Seed : {5u, 23u, 31u}) {
    Program Prog = generateRandomProgram(Seed);
    DynamicFacts Facts = interpret(Prog);
    auto Policy = makeInsensitivePolicy();
    ContextTable Table;
    SolverOptions Options;
    Options.FilterCasts = true;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);
    for (auto [Var, Heap] : Facts.VarPointsTo)
      EXPECT_TRUE(setContains(Result.pointsTo(Var), Heap.index()))
          << "seed " << Seed;
  }
}

TEST(CastFiltering, FilteredIsSubsetOfUnfiltered) {
  for (uint64_t Seed : {2u, 13u}) {
    Program Prog = generateRandomProgram(Seed);
    auto Policy = makeInsensitivePolicy();
    ContextTable T1;
    ContextTable T2;
    SolverOptions Plain;
    SolverOptions Checked;
    Checked.FilterCasts = true;
    PointsToResult Unfiltered = solvePointsTo(Prog, *Policy, T1, Plain);
    PointsToResult Filtered = solvePointsTo(Prog, *Policy, T2, Checked);
    for (uint32_t Var = 0; Var < Prog.numVars(); ++Var)
      for (uint32_t Heap : Filtered.pointsTo(VarId(Var)))
        EXPECT_TRUE(setContains(Unfiltered.pointsTo(VarId(Var)), Heap));
  }
}

// --- Hybrid context-sensitivity -------------------------------------------

TEST(Hybrid, NameAndVirtualPrecision) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeHybridPolicy(T.Prog, 2, 1);
  EXPECT_EQ(Policy->name(), "2hybH");
  ContextTable Table;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
  // Virtual calls get object-sensitivity: the boxes are separated.
  EXPECT_TRUE(setContains(R.pointsTo(T.OutA), T.HeapA.index()));
  EXPECT_FALSE(setContains(R.pointsTo(T.OutA), T.HeapB.index()));
}

TEST(Hybrid, StaticCallsGetCallSiteSensitivity) {
  // static id(p) { return p; } called from two sites with different
  // arguments: 2objH conflates the two calls (static calls inherit the
  // caller context), the hybrid separates them.
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId A = B.cls("A", Object);
  TypeId BT = B.cls("B", Object);
  MethodBuilder Id = B.method(Object, "id", 1, /*IsStatic=*/true);
  Id.move(Id.returnVar(), Id.formal(0));
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId X1 = Main.local("x1");
  VarId X2 = Main.local("x2");
  VarId R1 = Main.local("r1");
  VarId R2 = Main.local("r2");
  HeapId HeapA = Main.alloc(X1, A);
  HeapId HeapB = Main.alloc(X2, BT);
  Main.scall(R1, Id.id(), {X1});
  Main.scall(R2, Id.id(), {X2});
  Program Prog = B.take();

  auto Obj = makeObjectPolicy(Prog, 2, 1);
  ContextTable T1;
  PointsToResult RO = solvePointsTo(Prog, *Obj, T1);
  EXPECT_TRUE(setContains(RO.pointsTo(R1), HeapB.index()))
      << "2objH conflates static calls";

  auto Hybrid = makeHybridPolicy(Prog, 2, 1);
  ContextTable T2;
  PointsToResult RH = solvePointsTo(Prog, *Hybrid, T2);
  EXPECT_TRUE(setContains(RH.pointsTo(R1), HeapA.index()));
  EXPECT_FALSE(setContains(RH.pointsTo(R1), HeapB.index()))
      << "hybrid separates static call sites";
}

TEST(Hybrid, SolverMatchesDatalogReference) {
  for (uint64_t Seed : {4u, 17u}) {
    Program Prog = generateRandomProgram(Seed);
    auto Policy = makeHybridPolicy(Prog, 2, 1);
    ContextTable Table;
    SolverOptions Options;
    Options.KeepTuples = true;
    PointsToResult Solver = solvePointsTo(Prog, *Policy, Table, Options);
    DatalogReferenceResult Reference =
        runDatalogReference(Prog, *Policy, Table);
    auto Sorted = [](auto Tuples) {
      std::sort(Tuples.begin(), Tuples.end());
      return Tuples;
    };
    EXPECT_EQ(Sorted(Solver.VarPointsTo), Reference.VarPointsTo);
    EXPECT_EQ(Sorted(Solver.CallGraph), Reference.CallGraph);
  }
}

// --- Composable heuristics ---------------------------------------------------

TEST(CustomHeuristics, SpecAEquivalentToHandWritten) {
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(Prog, *Insens, Table);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, First);

  RefinementExceptions Canned = applyHeuristicA(Prog, First, Metrics);
  RefinementExceptions Custom =
      applyCustomHeuristic(Prog, First, Metrics, heuristicASpec());
  EXPECT_EQ(Canned.NoRefineHeaps, Custom.NoRefineHeaps);
  EXPECT_EQ(Canned.NoRefineSites, Custom.NoRefineSites);
}

TEST(CustomHeuristics, SpecBEquivalentToHandWritten) {
  Program Prog = generateWorkload(dacapoProfile("hsqldb"));
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(Prog, *Insens, Table);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, First);

  RefinementExceptions Canned = applyHeuristicB(Prog, First, Metrics);
  RefinementExceptions Custom =
      applyCustomHeuristic(Prog, First, Metrics, heuristicBSpec());
  EXPECT_EQ(Canned.NoRefineHeaps, Custom.NoRefineHeaps);
  EXPECT_EQ(Canned.NoRefineSites, Custom.NoRefineSites);
}

TEST(CustomHeuristics, RulesAreOrCombined) {
  TwoBoxes T = makeTwoBoxes();
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(T.Prog, *Insens, Table);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(T.Prog, First);

  // Two object rules covering disjoint sets: anything hitting either is
  // out.  Boxes have field sets of size 2 but only 3 pointing vars;
  // payloads have no fields but 6 pointing vars.
  CustomHeuristic OnlyFields;
  OnlyFields.ObjectRules.push_back(
      ObjectRule{Metric::ObjectTotalFieldPointsTo, Metric::None, 1});
  CustomHeuristic OnlyPointers;
  OnlyPointers.ObjectRules.push_back(
      ObjectRule{Metric::PointedByVars, Metric::None, 5});
  CustomHeuristic Both;
  Both.ObjectRules = {OnlyFields.ObjectRules[0], OnlyPointers.ObjectRules[0]};

  RefinementExceptions EF =
      applyCustomHeuristic(T.Prog, First, Metrics, OnlyFields);
  EXPECT_TRUE(EF.skipsHeap(T.Box1));
  EXPECT_FALSE(EF.skipsHeap(T.HeapA));

  RefinementExceptions EP =
      applyCustomHeuristic(T.Prog, First, Metrics, OnlyPointers);
  EXPECT_FALSE(EP.skipsHeap(T.Box1));
  EXPECT_TRUE(EP.skipsHeap(T.HeapA));

  RefinementExceptions EB = applyCustomHeuristic(T.Prog, First, Metrics, Both);
  EXPECT_TRUE(EB.skipsHeap(T.Box1)) << "OR: excluded by the field rule";
  EXPECT_TRUE(EB.skipsHeap(T.HeapA)) << "OR: excluded by the pointer rule";
}

TEST(CustomHeuristics, MetricDomains) {
  EXPECT_TRUE(isSiteMetric(Metric::InFlow));
  EXPECT_FALSE(isSiteMetric(Metric::PointedByVars));
  EXPECT_TRUE(isMethodMetric(Metric::MethodTotalVolume));
  EXPECT_TRUE(isObjectMetric(Metric::PointedByObjs));
  EXPECT_FALSE(isObjectMetric(Metric::MethodTotalVolume));
}

// --- Datalog aggregation (the paper's INFLOW query) ---------------------------

TEST(Aggregates, CountGroupBy) {
  datalog::Relation Rel("r", 2);
  for (auto [A, B] : std::vector<std::pair<uint32_t, uint32_t>>{
           {1, 10}, {1, 11}, {2, 10}, {1, 10}})
    Rel.insert(std::array<uint32_t, 2>{A, B});
  auto Groups = datalog::countGroupBy(Rel, {0});
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0].Key, (std::vector<uint32_t>{1}));
  EXPECT_EQ(Groups[0].Count, 2u); // (1,10) deduplicated by the relation.
  EXPECT_EQ(Groups[1].Key, (std::vector<uint32_t>{2}));
  EXPECT_EQ(Groups[1].Count, 1u);
}

TEST(Aggregates, CountDistinctGroupBy) {
  datalog::Relation Rel("r", 3);
  for (auto Row : std::vector<std::array<uint32_t, 3>>{
           {1, 7, 100}, {1, 8, 100}, {1, 9, 101}, {2, 7, 100}})
    Rel.insert(Row);
  // Distinct third column per first column.
  auto Groups = datalog::countDistinctGroupBy(Rel, {0}, {2});
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0].Count, 2u); // {100, 101}
  EXPECT_EQ(Groups[1].Count, 1u); // {100}
}

TEST(Aggregates, InFlowQueryMatchesMetricImplementation) {
  // Build HEAPSPERINVOCATIONPERARG(invo, arg, heap) exactly as in the
  // paper's Section 3 query and aggregate it; the result must equal the
  // C++ metric #1 implementation.
  Program Prog = generateWorkload(dacapoProfile("antlr"));
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult First = solvePointsTo(Prog, *Insens, Table);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, First);

  datalog::Relation Heaps("HEAPSPERINVOCATIONPERARG", 3);
  for (uint32_t SiteRaw = 0; SiteRaw < Prog.numSites(); ++SiteRaw) {
    SiteId Site(SiteRaw);
    if (First.callTargets(Site).empty())
      continue; // No CALLGRAPH(invo, _, _, _) fact.
    for (VarId Arg : Prog.site(Site).Actuals)
      for (uint32_t Heap : First.pointsTo(Arg))
        Heaps.insert(std::array<uint32_t, 3>{SiteRaw, Arg.index(), Heap});
  }
  auto InFlow = datalog::countGroupBy(Heaps, {0});

  std::map<uint32_t, uint64_t> FromQuery;
  for (const auto &Group : InFlow)
    FromQuery[Group.Key[0]] = Group.Count;
  for (uint32_t SiteRaw = 0; SiteRaw < Prog.numSites(); ++SiteRaw) {
    uint64_t Expected = Metrics.InFlow[SiteRaw];
    uint64_t Queried = FromQuery.count(SiteRaw) ? FromQuery[SiteRaw] : 0;
    EXPECT_EQ(Queried, Expected) << "site " << SiteRaw;
  }
}

// --- Reports --------------------------------------------------------------------

TEST(Reports, CallGraphDot) {
  Dispatch T = makeDispatch();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
  std::ostringstream Out;
  writeCallGraphDot(T.Prog, R, Out);
  std::string Dot = Out.str();
  EXPECT_NE(Dot.find("digraph callgraph"), std::string::npos);
  EXPECT_NE(Dot.find("Cat.speak"), std::string::npos);
  EXPECT_NE(Dot.find("Dog.speak"), std::string::npos);
  EXPECT_NE(Dot.find("->"), std::string::npos);
}

TEST(Reports, PointsToListing) {
  Dispatch T = makeDispatch();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
  std::ostringstream Out;
  writePointsToReport(T.Prog, R, Out);
  std::string Text = Out.str();
  EXPECT_NE(Text.find("s1 -> {"), std::string::npos);
  EXPECT_NE(Text.find("new Meow"), std::string::npos);
}

// --- Facts export ------------------------------------------------------------------

TEST(FactsIO, WritesDoopStyleDirectory) {
  TwoBoxes T = makeTwoBoxes();
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "intro_facts_test";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  std::string Error;
  auto Files = writeFactsDirectory(T.Prog, Dir.string(), Error);
  ASSERT_FALSE(Files.empty()) << Error;
  EXPECT_EQ(Files.size(), 22u); // 21 relations + EntryMethod.

  // Spot-check Alloc.facts: four allocations with names.
  std::ifstream Alloc(Dir / "Alloc.facts");
  ASSERT_TRUE(Alloc.good());
  std::string Line;
  size_t Lines = 0;
  bool SawBoxAlloc = false;
  while (std::getline(Alloc, Line)) {
    ++Lines;
    if (Line.find("new Box") != std::string::npos &&
        Line.find("b1\t") == 0)
      SawBoxAlloc = true;
  }
  EXPECT_EQ(Lines, 4u);
  EXPECT_TRUE(SawBoxAlloc);

  // Entry method listed by name.
  std::ifstream Entry(Dir / "EntryMethod.facts");
  std::string EntryName;
  std::getline(Entry, EntryName);
  EXPECT_EQ(EntryName, "main");

  std::filesystem::remove_all(Dir);
}

#include "ir/SouffleExport.h"

TEST(SouffleExport, EmitsWellFormedProgramText) {
  std::ostringstream Out;
  writeSouffleProgram(Out);
  std::string Text = Out.str();
  // Every input relation has a matching declaration and directive.
  for (const char *Relation :
       {"Alloc", "Move", "Cast", "Load", "Store", "SLoad", "SStore", "VCall",
        "SCall", "FormalArg", "ActualArg", "FormalReturn", "ActualReturn",
        "ThisVar", "HeapType", "Lookup", "Subtype", "Throw", "SiteInMethod",
        "Catch", "NoCatch", "EntryMethod"}) {
    EXPECT_NE(Text.find(std::string(".decl ") + Relation + "("),
              std::string::npos)
        << Relation;
    EXPECT_NE(Text.find(std::string(".input ") + Relation),
              std::string::npos)
        << Relation;
  }
  // Outputs and core rules present.
  EXPECT_NE(Text.find(".output VarPointsTo"), std::string::npos);
  EXPECT_NE(Text.find("Reachable(m) :- EntryMethod(m)."), std::string::npos);
  EXPECT_NE(Text.find("Lookup(ht, sig, tm)"), std::string::npos);
  // Balanced structure: every .decl'd relation name is used in some rule.
  EXPECT_NE(Text.find("!Subtype(ht, type)"), std::string::npos);
}
