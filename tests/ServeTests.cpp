//===- tests/ServeTests.cpp - Analysis service tests ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the persistent analysis service (serve/Protocol.h,
/// serve/Server.h, serve/Client.h): frame codec unit tests, an adversarial
/// framing suite (every truncation prefix of valid requests, oversized
/// length headers, binary garbage, pipelined requests, clients vanishing
/// mid-stream — all answered with coded errors while the server keeps
/// serving), end-to-end submits with the byte-identity contract against a
/// local supervised run, cross-connection cancellation, the shared warm
/// Pass-A cache, chaos-injected crash retries, and drain/SIGTERM shutdown
/// with no leaked children.
///
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Protocol.h"
#include "serve/Server.h"

#include "supervise/Supervise.h"
#include "support/ExitCodes.h"
#include "support/Json.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace intro;
using namespace intro::serve;
namespace fs = std::filesystem;

namespace {

/// The classic two-boxes program; every ladder rung solves it instantly.
const char *const TinySource = R"(
class Object
class Box extends Object {
  field f
  method set(p) {
    this.Box#f = p
  }
  method get() -> r {
    r = this.Box#f
  }
}
class A extends Object
class B extends Object
class Main extends Object {
  entry static method main() {
    b1 = new Box
    b2 = new Box
    a = new A
    b = new B
    b1.set(a)
    b2.set(b)
    oa = b1.get()
    ob = b2.get()
    ca = (A) oa
  }
}
)";

/// A unique scratch directory, removed on destruction.
struct TempDir {
  TempDir() {
    std::string Template =
        (fs::temp_directory_path() / "intro-serve-XXXXXX").string();
    std::vector<char> Buffer(Template.begin(), Template.end());
    Buffer.push_back('\0');
    const char *Made = mkdtemp(Buffer.data());
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : Template;
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string Path;
};

/// After every scenario the parent must have reaped every child it forked.
void expectNoLeakedChildren() {
  int Status = 0;
  errno = 0;
  EXPECT_EQ(waitpid(-1, &Status, WNOHANG), -1)
      << "a child process was leaked or left unreaped";
  EXPECT_EQ(errno, ECHILD);
}

/// Server options for tests: a generous per-job watchdog and no real
/// retry sleeping.
ServerOptions testOptions(const std::string &SocketPath, unsigned Workers = 2) {
  ServerOptions Options;
  Options.SocketPath = SocketPath;
  Options.Batch.Limits.WallDeadlineSeconds = 60;
  Options.Batch.SleepMs = [](double) {};
  Options.Workers = Workers;
  return Options;
}

/// A server on a background thread.  The destructor raises the stop flag
/// (the SIGTERM path) and joins, so every test ends with a full drain.
struct Harness {
  explicit Harness(ServerOptions Options) : Daemon(std::move(Options)) {
    std::string Error;
    Started = Daemon.start(Error);
    EXPECT_TRUE(Started) << Error;
    if (Started)
      Runner = std::thread([this] { Exit = Daemon.run(Stop); });
  }
  ~Harness() { stop(); }

  void stop() {
    if (Runner.joinable()) {
      Stop.store(true, std::memory_order_relaxed);
      Runner.join();
    }
  }

  Server Daemon;
  std::atomic<bool> Stop{false};
  std::thread Runner;
  int Exit = -1;
  bool Started = false;
};

/// A raw connection speaking bytes, for the adversarial framing tests; the
/// well-behaved path goes through serve::Client.
struct RawConn {
  explicit RawConn(const std::string &SocketPath) {
    std::string Error;
    Fd = connectUnix(SocketPath, Error);
    EXPECT_GE(Fd, 0) << Error;
  }
  ~RawConn() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool write(std::string_view Bytes) {
    return sendAll(Fd, Bytes.data(), Bytes.size());
  }

  /// Blocks for the next frame; false at EOF, on error, or after 10s.
  bool readFrame(std::string &Payload) {
    char Buffer[4096];
    std::string FrameError;
    while (true) {
      FrameDecoder::Status Status = Decoder.next(Payload, FrameError);
      if (Status == FrameDecoder::Status::Frame)
        return true;
      if (Status == FrameDecoder::Status::Error)
        return false;
      if (pollIn(Fd, 10000) <= 0)
        return false;
      long Count = readSome(Fd, Buffer, sizeof(Buffer));
      if (Count <= 0)
        return false;
      Decoder.feed(Buffer, static_cast<size_t>(Count));
    }
  }

  /// True when the server has closed its end (and no frame remains).
  bool atEof() {
    std::string Ignored, FrameError;
    if (Decoder.next(Ignored, FrameError) == FrameDecoder::Status::Frame)
      return false;
    char Buffer[256];
    if (pollIn(Fd, 10000) <= 0)
      return false;
    return readSome(Fd, Buffer, sizeof(Buffer)) == 0;
  }

  int Fd = -1;
  FrameDecoder Decoder;
};

/// Reads the hello frame and asserts the protocol name.
void expectHello(RawConn &Conn) {
  std::string Payload;
  ASSERT_TRUE(Conn.readFrame(Payload)) << "no hello frame";
  JsonParseResult Parsed = parseJson(Payload);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  std::string Protocol;
  ASSERT_TRUE(Parsed.Value.getString("protocol", Protocol));
  EXPECT_EQ(Protocol, ProtocolName);
}

/// Asserts \p Payload is {"ok":false,"error":{"code":ExpectedCode,...}}
/// and returns the error's "line" member (0 when absent).
uint64_t expectErrorFrame(const std::string &Payload,
                          const std::string &ExpectedCode) {
  JsonParseResult Parsed = parseJson(Payload);
  EXPECT_TRUE(Parsed.ok()) << Parsed.Error;
  if (!Parsed.ok())
    return 0;
  bool Ok = true;
  EXPECT_TRUE(Parsed.Value.getBool("ok", Ok));
  EXPECT_FALSE(Ok) << Payload;
  const JsonValue *Detail = Parsed.Value.get("error");
  EXPECT_NE(Detail, nullptr) << Payload;
  if (!Detail)
    return 0;
  std::string Code, Message;
  EXPECT_TRUE(Detail->getString("code", Code));
  EXPECT_EQ(Code, ExpectedCode) << Payload;
  EXPECT_TRUE(Detail->getString("message", Message));
  EXPECT_FALSE(Message.empty());
  uint64_t Line = 0;
  Detail->getUint("line", Line);
  return Line;
}

/// Round-trips one stats request on a fresh connection: the liveness probe
/// every adversarial test ends with.
void expectServerStillServes(const std::string &SocketPath) {
  RawConn Conn(SocketPath);
  expectHello(Conn);
  ASSERT_TRUE(Conn.write(encodeFrame(R"({"op":"stats"})")));
  std::string Payload;
  ASSERT_TRUE(Conn.readFrame(Payload));
  JsonParseResult Parsed = parseJson(Payload);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
  std::string Event;
  ASSERT_TRUE(Parsed.Value.getString("event", Event));
  EXPECT_EQ(Event, "stats");
}

/// The run report's deterministic section, as raw bytes: everything from
/// the "deterministic" key up to the "timing" key (the "cache" sibling,
/// when present, deliberately stays outside the identity contract — these
/// tests compare cacheless runs).
std::string deterministicSlice(const std::string &ReportLine) {
  size_t Begin = ReportLine.find("\"deterministic\"");
  size_t End = ReportLine.find("\"timing\"");
  EXPECT_NE(Begin, std::string::npos) << ReportLine;
  EXPECT_NE(End, std::string::npos) << ReportLine;
  if (Begin == std::string::npos || End == std::string::npos)
    return ReportLine;
  return ReportLine.substr(Begin, End - Begin);
}

/// The child report embeds per-attempt wall clock inside its outcome (the
/// batch parent folds it into the timing section).  Those values are the
/// only legitimately nondeterministic bytes in the deterministic slice, so
/// the identity contract is byte equality *after* pinning each one.
std::string scrubWallClock(std::string Slice) {
  for (const char *Key : {"\"seconds\":", "\"total_seconds\":",
                          "\"metric_seconds\":"}) {
    size_t KeyLen = std::strlen(Key);
    for (size_t At = Slice.find(Key); At != std::string::npos;
         At = Slice.find(Key, At + KeyLen)) {
      size_t ValueBegin = At + KeyLen;
      size_t ValueEnd = Slice.find_first_of(",}]", ValueBegin);
      if (ValueEnd == std::string::npos)
        break;
      Slice.replace(ValueBegin, ValueEnd - ValueBegin, "#");
    }
  }
  return Slice;
}

} // namespace

// --- Frame codec -------------------------------------------------------------

TEST(FrameCodec, RoundTripsPayloadsIncludingEmptyByteAtATime) {
  for (size_t Size : {size_t(0), size_t(1), size_t(3), size_t(4), size_t(5),
                      size_t(1000), size_t(70000)}) {
    std::string Payload(Size, 'x');
    for (size_t Index = 0; Index < Size; ++Index)
      Payload[Index] = static_cast<char>('a' + Index % 26);
    std::string Frame = encodeFrame(Payload);
    ASSERT_EQ(Frame.size(), Size + 4);

    FrameDecoder Decoder;
    std::string Out, Error;
    // Feeding one byte at a time must never yield a premature frame.
    for (size_t Index = 0; Index + 1 < Frame.size(); ++Index) {
      Decoder.feed(&Frame[Index], 1);
      if (Index + 1 < 4 || Size > 0) {
        EXPECT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::NeedMore);
      }
    }
    Decoder.feed(&Frame[Frame.size() - 1], 1);
    ASSERT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Frame);
    EXPECT_EQ(Out, Payload);
    EXPECT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::NeedMore);
    EXPECT_FALSE(Decoder.hasPartial());
  }
}

TEST(FrameCodec, ExtractsPipelinedFramesFromOneFeed) {
  std::string Stream =
      encodeFrame("first") + encodeFrame("") + encodeFrame("third");
  FrameDecoder Decoder;
  Decoder.feed(Stream.data(), Stream.size());
  std::string Out, Error;
  ASSERT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Frame);
  EXPECT_EQ(Out, "first");
  ASSERT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Frame);
  EXPECT_EQ(Out, "");
  ASSERT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Frame);
  EXPECT_EQ(Out, "third");
  EXPECT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::NeedMore);
}

TEST(FrameCodec, OversizedLengthHeaderPoisonsTheDecoder) {
  // Length header far beyond MaxFramePayload: 0xFFFFFFFF.
  const char Huge[4] = {'\xff', '\xff', '\xff', '\xff'};
  FrameDecoder Decoder;
  Decoder.feed(Huge, sizeof(Huge));
  std::string Out, Error;
  EXPECT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Error);
  EXPECT_FALSE(Error.empty());
  // Poisoned for good: even a perfectly valid frame cannot resynchronize,
  // because the stream position is lost.
  std::string Valid = encodeFrame("{}");
  Decoder.feed(Valid.data(), Valid.size());
  EXPECT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Error);
  EXPECT_FALSE(Decoder.hasPartial());
}

TEST(FrameCodec, PartialFrameIsTrackedForTruncationDiagnosis) {
  FrameDecoder Decoder;
  EXPECT_FALSE(Decoder.hasPartial());
  std::string Frame = encodeFrame("payload");
  Decoder.feed(Frame.data(), 3); // Half a length header.
  std::string Out, Error;
  EXPECT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::NeedMore);
  EXPECT_TRUE(Decoder.hasPartial());
  Decoder.feed(Frame.data() + 3, Frame.size() - 3);
  ASSERT_EQ(Decoder.next(Out, Error), FrameDecoder::Status::Frame);
  EXPECT_FALSE(Decoder.hasPartial());
}

// --- End-to-end submits ------------------------------------------------------

TEST(Serve, SubmitRunsAJobAndStreamsItsTranscript) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  Client C;
  std::string Error;
  ASSERT_TRUE(C.connect(Socket, Error)) << Error;

  std::vector<std::string> Lines;
  std::vector<uint64_t> LineAttempts;
  SubmitOutcome Outcome;
  ASSERT_TRUE(C.submit("tiny", TinySource, /*DeadlineSeconds=*/0,
                       /*ChaosSpec=*/"",
                       [&](uint64_t Attempt, const std::string &Line) {
                         LineAttempts.push_back(Attempt);
                         Lines.push_back(Line);
                       },
                       Outcome, Error))
      << Error;

  EXPECT_EQ(Outcome.JobId, 1u);
  EXPECT_EQ(Outcome.State, "done");
  EXPECT_EQ(Outcome.FinalClass, "clean");
  EXPECT_FALSE(Outcome.Quarantined);
  EXPECT_FALSE(Outcome.Aborted);
  EXPECT_EQ(Outcome.Attempts, 1u);
  EXPECT_EQ(Outcome.ResultLevel, "deep");
  EXPECT_TRUE(Outcome.ResultCompleted);
  EXPECT_FALSE(Outcome.CacheEnabled) << "no cache directory was configured";

  // The transcript streamed verbatim: rung_start progress first, then the
  // final intro-run-report-v1 line, all from attempt 1.
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_NE(Lines.front().find("rung_start"), std::string::npos);
  EXPECT_NE(Lines.front().find("\"deep\""), std::string::npos);
  EXPECT_NE(Lines.back().find("intro-run-report-v1"), std::string::npos);
  EXPECT_EQ(Outcome.FinalReportLine, Lines.back());
  for (uint64_t Attempt : LineAttempts)
    EXPECT_EQ(Attempt, 1u);

  ServerCounters Counters = H.Daemon.counters();
  EXPECT_EQ(Counters.Submits, 1u);
  EXPECT_EQ(Counters.Completed, 1u);
  EXPECT_EQ(Counters.Cancelled, 0u);

  C.close();
  H.stop();
  EXPECT_EQ(H.Exit, ExitSuccess);
  expectNoLeakedChildren();
}

TEST(Serve, ServedReportIsByteIdenticalToALocalRun) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  ServerOptions Options = testOptions(Socket);
  Harness H(Options);

  Client C;
  std::string Error;
  ASSERT_TRUE(C.connect(Socket, Error)) << Error;
  SubmitOutcome Served;
  ASSERT_TRUE(C.submit("ident", TinySource, 0, "", nullptr, Served, Error))
      << Error;
  ASSERT_EQ(Served.FinalClass, "clean");
  ASSERT_FALSE(Served.FinalReportLine.empty());

  // The same job run locally through the same supervised machinery, with a
  // hook reassembling the child's report line exactly as the server does.
  supervise::JobSpec Spec;
  Spec.Name = "ident";
  Spec.Source = TinySource;
  std::string Transcript;
  supervise::JobHooks Hooks;
  Hooks.OnChildOutput = [&](uint32_t, std::string_view Chunk) {
    Transcript.append(Chunk);
  };
  supervise::JobResult Local =
      supervise::runSupervisedJob(Spec, /*JobIndex=*/0, Options.Batch, Hooks);
  ASSERT_EQ(Local.FinalClass, supervise::JobOutcomeClass::Clean);

  std::string LocalReport;
  size_t Begin = 0;
  while (Begin < Transcript.size()) {
    size_t End = Transcript.find('\n', Begin);
    if (End == std::string::npos)
      End = Transcript.size();
    std::string Line = Transcript.substr(Begin, End - Begin);
    if (Line.find("\"schema\"") != std::string::npos)
      LocalReport = Line;
    Begin = End + 1;
  }
  ASSERT_FALSE(LocalReport.empty());

  // The determinism contract: byte equality of the deterministic section
  // modulo wall-clock fields, not structural equivalence.
  EXPECT_EQ(scrubWallClock(deterministicSlice(Served.FinalReportLine)),
            scrubWallClock(deterministicSlice(LocalReport)));
  expectNoLeakedChildren();
}

TEST(Serve, BadInputIsReportedWithDiagnosticsNotRetried) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  Client C;
  std::string Error;
  ASSERT_TRUE(C.connect(Socket, Error)) << Error;
  SubmitOutcome Outcome;
  ASSERT_TRUE(C.submit("broken", "class Object\nclass Leaky extends Object {",
                       0, "", nullptr, Outcome, Error))
      << Error;
  EXPECT_EQ(Outcome.State, "done");
  EXPECT_EQ(Outcome.FinalClass, "bad_input");
  EXPECT_TRUE(Outcome.Quarantined);
  EXPECT_EQ(Outcome.Attempts, 1u) << "deterministic verdicts are not retried";
  ASSERT_FALSE(Outcome.InputErrors.empty());
  expectNoLeakedChildren();
}

TEST(Serve, CrashChaosIsRetriedBelowTheDeathRungAndRecovers) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  Client C;
  std::string Error;
  ASSERT_TRUE(C.connect(Socket, Error)) << Error;
  std::vector<uint64_t> LineAttempts;
  SubmitOutcome Outcome;
  // Crash at the deep rung on attempt 1 only: the retry escalates below
  // the death rung and completes at introB.
  ASSERT_TRUE(C.submit("crashy", TinySource, 0, "crash:deep:1",
                       [&](uint64_t Attempt, const std::string &) {
                         LineAttempts.push_back(Attempt);
                       },
                       Outcome, Error))
      << Error;
  EXPECT_EQ(Outcome.State, "done");
  EXPECT_EQ(Outcome.FinalClass, "clean");
  EXPECT_EQ(Outcome.Attempts, 2u);
  EXPECT_EQ(Outcome.ResultLevel, "introB");
  // Lines streamed from both attempts, in attempt order.
  ASSERT_FALSE(LineAttempts.empty());
  EXPECT_EQ(LineAttempts.front(), 1u);
  EXPECT_EQ(LineAttempts.back(), 2u);
  expectNoLeakedChildren();
}

TEST(Serve, BadChaosSpecAndBadDeadlineAreBadRequests) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  RawConn Conn(Socket);
  expectHello(Conn);
  ASSERT_TRUE(Conn.write(encodeFrame(
      R"({"op":"submit","name":"j","source":"class Object","chaos":"frobnicate"})")));
  std::string Payload;
  ASSERT_TRUE(Conn.readFrame(Payload));
  expectErrorFrame(Payload, "bad_request");

  ASSERT_TRUE(Conn.write(encodeFrame(
      R"({"op":"submit","name":"j","source":"class Object","deadline_seconds":-5})")));
  ASSERT_TRUE(Conn.readFrame(Payload));
  expectErrorFrame(Payload, "bad_request");

  // Both were rejected before any job was created.
  EXPECT_EQ(H.Daemon.counters().Submits, 0u);
  expectServerStillServes(Socket);
}

// --- Adversarial framing -----------------------------------------------------

TEST(ServeFuzz, EveryTruncationPrefixGetsACodedErrorAndTheServerSurvives) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  // Two valid requests: the smallest interesting one and a submit.  Every
  // strict prefix of either, followed by EOF, is a truncated frame.
  const std::string Requests[] = {
      encodeFrame(R"({"op":"stats"})"),
      encodeFrame(
          R"({"op":"submit","name":"tiny","source":"class Object"})"),
  };
  for (const std::string &Frame : Requests) {
    for (size_t PrefixLen = 0; PrefixLen < Frame.size(); ++PrefixLen) {
      RawConn Conn(Socket);
      expectHello(Conn);
      if (PrefixLen > 0) {
        ASSERT_TRUE(Conn.write(Frame.substr(0, PrefixLen)));
      }
      ::shutdown(Conn.Fd, SHUT_WR);
      std::string Payload;
      if (PrefixLen == 0) {
        // A clean immediate EOF is not an error: no frame, just close.
        EXPECT_FALSE(Conn.readFrame(Payload));
      } else {
        ASSERT_TRUE(Conn.readFrame(Payload))
            << "no error frame for prefix length " << PrefixLen;
        expectErrorFrame(Payload, "truncated_frame");
        EXPECT_TRUE(Conn.atEof())
            << "connection must close after a framing error";
      }
    }
  }
  expectServerStillServes(Socket);
  EXPECT_EQ(H.Daemon.counters().Submits, 0u)
      << "no truncated submit may ever reach the job layer";
}

TEST(ServeFuzz, OversizedLengthHeaderIsACodedErrorAndCloses) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  for (uint32_t Length :
       {MaxFramePayload + 1, 0x7fffffffu, 0xffffffffu}) {
    RawConn Conn(Socket);
    expectHello(Conn);
    char Header[4] = {static_cast<char>(Length & 0xff),
                      static_cast<char>((Length >> 8) & 0xff),
                      static_cast<char>((Length >> 16) & 0xff),
                      static_cast<char>((Length >> 24) & 0xff)};
    ASSERT_TRUE(Conn.write(std::string_view(Header, sizeof(Header))));
    std::string Payload;
    ASSERT_TRUE(Conn.readFrame(Payload));
    expectErrorFrame(Payload, "oversized_frame");
    EXPECT_TRUE(Conn.atEof());
  }
  expectServerStillServes(Socket);
}

TEST(ServeFuzz, BinaryGarbagePayloadIsBadJsonAndTheConnectionRecovers) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  RawConn Conn(Socket);
  expectHello(Conn);
  std::string Garbage = "\x01\x02{{{not json\xff\xfe";
  ASSERT_TRUE(Conn.write(encodeFrame(Garbage)));
  std::string Payload;
  ASSERT_TRUE(Conn.readFrame(Payload));
  uint64_t Line = expectErrorFrame(Payload, "bad_json");
  EXPECT_GE(Line, 1u) << "bad_json must carry the parser's line number";

  // Malformed JSON in a well-formed frame is recoverable: the very same
  // connection keeps working.
  ASSERT_TRUE(Conn.write(encodeFrame(R"({"op":"stats"})")));
  ASSERT_TRUE(Conn.readFrame(Payload));
  JsonParseResult Parsed = parseJson(Payload);
  ASSERT_TRUE(Parsed.ok());
  std::string Event;
  ASSERT_TRUE(Parsed.Value.getString("event", Event));
  EXPECT_EQ(Event, "stats");
}

TEST(ServeFuzz, MalformedRequestsGetStableCodesOnOneLivingConnection) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  RawConn Conn(Socket);
  expectHello(Conn);
  const std::pair<const char *, const char *> Cases[] = {
      {R"([1, 2, 3])", "bad_request"},
      {R"({"not_an_op": 1})", "bad_request"},
      {R"({"op": "frobnicate"})", "unknown_op"},
      {R"({"op": "submit", "name": "x"})", "bad_request"},
      {R"({"op": "submit", "name": "", "source": "s"})", "bad_request"},
      {R"({"op": "status"})", "bad_request"},
      {R"({"op": "status", "job": 999})", "unknown_job"},
      {R"({"op": "cancel", "job": 999})", "unknown_job"},
  };
  for (const auto &[Request, Code] : Cases) {
    ASSERT_TRUE(Conn.write(encodeFrame(Request))) << Request;
    std::string Payload;
    ASSERT_TRUE(Conn.readFrame(Payload)) << Request;
    expectErrorFrame(Payload, Code);
  }
  // After the whole gauntlet the connection still answers real requests.
  ASSERT_TRUE(Conn.write(encodeFrame(R"({"op":"stats"})")));
  std::string Payload;
  ASSERT_TRUE(Conn.readFrame(Payload));
  JsonParseResult Parsed = parseJson(Payload);
  ASSERT_TRUE(Parsed.ok());
  std::string Event;
  ASSERT_TRUE(Parsed.Value.getString("event", Event));
  EXPECT_EQ(Event, "stats");
}

TEST(ServeFuzz, PipelinedRequestsInOneWriteAnswerInOrder) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  RawConn Conn(Socket);
  expectHello(Conn);
  std::string Burst = encodeFrame(R"({"op":"stats"})") +
                      encodeFrame(R"({"op":"status","job":42})") +
                      encodeFrame(R"({"op":"stats"})");
  ASSERT_TRUE(Conn.write(Burst));

  std::string Payload;
  ASSERT_TRUE(Conn.readFrame(Payload));
  JsonParseResult First = parseJson(Payload);
  ASSERT_TRUE(First.ok());
  std::string Event;
  ASSERT_TRUE(First.Value.getString("event", Event));
  EXPECT_EQ(Event, "stats");

  ASSERT_TRUE(Conn.readFrame(Payload));
  expectErrorFrame(Payload, "unknown_job");

  ASSERT_TRUE(Conn.readFrame(Payload));
  JsonParseResult Third = parseJson(Payload);
  ASSERT_TRUE(Third.ok());
  ASSERT_TRUE(Third.Value.getString("event", Event));
  EXPECT_EQ(Event, "stats");
  // Exactly three request frames were counted.
  EXPECT_EQ(H.Daemon.counters().Frames, 3u);
}

// --- Cancellation ------------------------------------------------------------

TEST(Serve, CancelFromAnotherConnectionAbortsARunningJob) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  // Connection A submits a job that spins forever at the deep rung; only
  // the cancel (not the generous watchdog) can end it quickly.
  std::string SubmitError;
  SubmitOutcome Outcome;
  std::thread Submitter([&] {
    Client A;
    if (!A.connect(Socket, SubmitError))
      return;
    A.submit("spinny", TinySource, 0, "spin", nullptr, Outcome, SubmitError);
  });

  // Connection B polls status until the job is running, then cancels it.
  Client B;
  std::string Error;
  ASSERT_TRUE(B.connect(Socket, Error)) << Error;
  bool Running = false;
  for (int Tries = 0; Tries < 500 && !Running; ++Tries) {
    ASSERT_TRUE(B.send(R"({"op":"status","job":1})", Error)) << Error;
    std::string Payload;
    ASSERT_TRUE(B.recv(Payload, Error)) << Error;
    JsonParseResult Parsed = parseJson(Payload);
    ASSERT_TRUE(Parsed.ok());
    std::string State;
    if (Parsed.Value.getString("state", State) && State == "running")
      Running = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(Running) << "job 1 never reached the running state";

  ASSERT_TRUE(B.send(R"({"op":"cancel","job":1})", Error)) << Error;
  std::string Payload;
  ASSERT_TRUE(B.recv(Payload, Error)) << Error;
  JsonParseResult Parsed = parseJson(Payload);
  ASSERT_TRUE(Parsed.ok());
  std::string Event, Was;
  ASSERT_TRUE(Parsed.Value.getString("event", Event));
  EXPECT_EQ(Event, "cancel");
  ASSERT_TRUE(Parsed.Value.getString("was", Was));
  EXPECT_EQ(Was, "running");

  Submitter.join();
  ASSERT_TRUE(SubmitError.empty()) << SubmitError;
  EXPECT_EQ(Outcome.State, "cancelled");
  EXPECT_TRUE(Outcome.Aborted);
  // The spinning child died by the cancel kill switch, not the watchdog.
  EXPECT_EQ(Outcome.FinalClass, "signalled");
  EXPECT_EQ(H.Daemon.counters().Cancelled, 1u);
  EXPECT_EQ(H.Daemon.counters().Completed, 0u);

  // A status probe after the fact names the terminal state.
  ASSERT_TRUE(B.send(R"({"op":"status","job":1})", Error)) << Error;
  ASSERT_TRUE(B.recv(Payload, Error)) << Error;
  JsonParseResult After = parseJson(Payload);
  ASSERT_TRUE(After.ok());
  std::string State;
  ASSERT_TRUE(After.Value.getString("state", State));
  EXPECT_EQ(State, "cancelled");

  H.stop();
  expectNoLeakedChildren();
}

TEST(Serve, ClientGoneMidStreamCancelsTheOrphanedJob) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  {
    // A raw submitter that hangs up as soon as the job is accepted: the
    // next streamed line hits a dead peer, and per the EPIPE policy the
    // server cancels the orphan instead of computing for nobody.
    RawConn Conn(Socket);
    expectHello(Conn);
    ASSERT_TRUE(Conn.write(encodeFrame(
        R"({"op":"submit","name":"orphan","source":")" +
        JsonWriter::escape(TinySource) + R"(","chaos":"spin"})")));
    std::string Payload;
    ASSERT_TRUE(Conn.readFrame(Payload)); // accepted
  } // RawConn destructor closes the socket mid-stream.

  // The job must settle as cancelled without any client asking for it.
  bool Settled = false;
  for (int Tries = 0; Tries < 500 && !Settled; ++Tries) {
    if (H.Daemon.counters().Cancelled == 1)
      Settled = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(Settled) << "orphaned job was never cancelled";

  expectServerStillServes(Socket);
  H.stop();
  EXPECT_EQ(H.Exit, ExitSuccess);
  expectNoLeakedChildren();
}

// --- The shared warm cache ---------------------------------------------------

TEST(Serve, SecondSubmitOfTheSameProgramHitsTheSharedCache) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  ServerOptions Options = testOptions(Socket);
  Options.Batch.CacheDir = Dir.Path + "/cache";
  // Skip the deep rung so every job runs the two-pass introspective
  // analysis — the Pass-A pre-analysis is what the cache holds.
  Options.Batch.Ladder.AttemptDeep = false;
  Harness H(Options);

  std::string Error;
  SubmitOutcome Cold, Warm;
  {
    Client C;
    ASSERT_TRUE(C.connect(Socket, Error)) << Error;
    ASSERT_TRUE(C.submit("first", TinySource, 0, "", nullptr, Cold, Error))
        << Error;
  }
  {
    // A different connection: the cache is keyed by program content, not
    // by session or job name.
    Client C;
    ASSERT_TRUE(C.connect(Socket, Error)) << Error;
    ASSERT_TRUE(C.submit("second", TinySource, 0, "", nullptr, Warm, Error))
        << Error;
  }

  EXPECT_EQ(Cold.FinalClass, "clean");
  EXPECT_EQ(Warm.FinalClass, "clean");
  ASSERT_TRUE(Cold.CacheEnabled);
  ASSERT_TRUE(Warm.CacheEnabled);
  EXPECT_EQ(Cold.Cache.Hits, 0u);
  EXPECT_GE(Cold.Cache.Misses, 1u);
  EXPECT_GE(Cold.Cache.Stores, 1u);
  EXPECT_GE(Warm.Cache.Hits, 1u) << "the warm submit re-solved Pass A";
  EXPECT_EQ(Warm.Cache.Misses, 0u);
  EXPECT_EQ(Warm.Cache.StoreFailures, 0u);
  expectNoLeakedChildren();
}

// --- Drain and shutdown ------------------------------------------------------

TEST(Serve, DrainAnswersFinishesAndShutsDownCleanly) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  std::string Error;
  {
    Client C;
    ASSERT_TRUE(C.connect(Socket, Error)) << Error;
    SubmitOutcome Outcome;
    ASSERT_TRUE(C.submit("tiny", TinySource, 0, "", nullptr, Outcome, Error))
        << Error;
    ASSERT_EQ(Outcome.FinalClass, "clean");
  }
  {
    Client C;
    ASSERT_TRUE(C.connect(Socket, Error)) << Error;
    ASSERT_TRUE(C.drain(Error)) << Error;
  }

  H.Runner.join();
  EXPECT_EQ(H.Exit, ExitSuccess);
  EXPECT_FALSE(fs::exists(Socket)) << "socket file must be unlinked";
  // Nothing is listening anymore.
  std::string ConnectError;
  EXPECT_LT(connectUnix(Socket, ConnectError), 0);
  expectNoLeakedChildren();
}

TEST(Serve, StopFlagDrainsLikeSigterm) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  Harness H(testOptions(Socket));

  Client C;
  std::string Error;
  ASSERT_TRUE(C.connect(Socket, Error)) << Error;
  SubmitOutcome Outcome;
  ASSERT_TRUE(C.submit("tiny", TinySource, 0, "", nullptr, Outcome, Error))
      << Error;
  EXPECT_EQ(Outcome.FinalClass, "clean");
  C.close();

  // The SIGTERM path: raise the stop flag, expect a clean drain.
  H.stop();
  EXPECT_EQ(H.Exit, ExitSuccess);
  EXPECT_FALSE(fs::exists(Socket));
  expectNoLeakedChildren();
}

TEST(Serve, StaleSocketFileFromADeadServerIsReplaced) {
  TempDir Dir;
  std::string Socket = Dir.Path + "/serve.sock";
  // A server that died hard leaves its socket file behind with nothing
  // listening: bind the path and close the fd without unlinking.
  int Stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Stale, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Socket.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Socket.c_str(), Socket.size() + 1);
  ASSERT_EQ(::bind(Stale, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ::close(Stale);
  ASSERT_TRUE(fs::exists(Socket));

  Harness H(testOptions(Socket));
  ASSERT_TRUE(H.Started) << "stale socket file was not detected and replaced";
  expectServerStillServes(Socket);
}
