//===- tests/ShapeTests.cpp - Paper-shape integration tests ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end integration tests that pin the qualitative shape of the
/// paper's evaluation (Figures 1 and 5-7) on the synthetic benchmark suite:
/// which analyses terminate on which benchmarks, and how precision orders
/// across insens / IntroA / IntroB / full.  If a solver or heuristic change
/// breaks the reproduction, these tests catch it before the harnesses do.
///
//===----------------------------------------------------------------------===//

#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "introspect/Driver.h"
#include "workload/DaCapo.h"

#include <gtest/gtest.h>

#include <map>

using namespace intro;

namespace {

/// Mirrors bench/BenchCommon.h's deep budget (kept independent so tests do
/// not depend on bench code).
SolveBudget deepBudget() {
  SolveBudget Budget;
  Budget.MaxTuples = 12'000'000;
  Budget.MaxSeconds = 120.0;
  return Budget;
}

struct Shape {
  bool Completed;
  PrecisionMetrics Precision;
};

Shape runPlain(const Program &Prog,
               std::unique_ptr<ContextPolicy> Policy) {
  ContextTable Table;
  SolverOptions Options;
  Options.Budget = deepBudget();
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);
  return {isCompleted(Result.Status), computePrecision(Prog, Result)};
}

Shape runIntroShape(const Program &Prog,
                    std::unique_ptr<ContextPolicy> Refined,
                    HeuristicKind Heuristic) {
  IntrospectiveOptions Options;
  Options.Heuristic = Heuristic;
  Options.SecondPassBudget = deepBudget();
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  return {isCompleted(Out.SecondPass.Status),
          computePrecision(Prog, Out.SecondPass)};
}

/// Caches generated programs across tests in this binary.
const Program &benchmark(const std::string &Name) {
  static std::map<std::string, Program> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end())
    It = Cache.emplace(Name, generateWorkload(dacapoProfile(Name))).first;
  return It->second;
}

} // namespace

TEST(Fig1Shape, InsensitiveCompletesEverywhere) {
  for (const WorkloadProfile &Profile : dacapoProfiles()) {
    Shape S = runPlain(benchmark(Profile.Name), makeInsensitivePolicy());
    EXPECT_TRUE(S.Completed) << Profile.Name;
  }
}

TEST(Fig1Shape, ObjectSensitivityIsBimodal) {
  // 2objH times out exactly on hsqldb and jython.
  for (const WorkloadProfile &Profile : dacapoProfiles()) {
    const Program &Prog = benchmark(Profile.Name);
    Shape S = runPlain(Prog, makeObjectPolicy(Prog, 2, 1));
    bool ShouldFail = Profile.Name == "hsqldb" || Profile.Name == "jython";
    EXPECT_EQ(S.Completed, !ShouldFail) << Profile.Name;
  }
}

TEST(Fig6Shape, TypeSensitivityFailsOnlyOnJython) {
  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    const Program &Prog = benchmark(Profile.Name);
    Shape S = runPlain(Prog, makeTypePolicy(Prog, 2, 1));
    EXPECT_EQ(S.Completed, Profile.Name != "jython") << Profile.Name;
  }
}

TEST(Fig7Shape, CallSiteSensitivityFailsOnFourOfSix) {
  std::map<std::string, bool> Expected = {
      {"bloat", false}, {"chart", true},   {"eclipse", true},
      {"hsqldb", false}, {"jython", false}, {"xalan", false}};
  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    const Program &Prog = benchmark(Profile.Name);
    Shape S = runPlain(Prog, makeCallSitePolicy(2, 1));
    EXPECT_EQ(S.Completed, Expected.at(Profile.Name)) << Profile.Name;
  }
}

TEST(Fig57Shape, IntroACompletesEverywhereForEveryFlavor) {
  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    const Program &Prog = benchmark(Profile.Name);
    EXPECT_TRUE(runIntroShape(Prog, makeObjectPolicy(Prog, 2, 1),
                              HeuristicKind::A)
                    .Completed)
        << Profile.Name << " 2objH-IntroA";
    EXPECT_TRUE(runIntroShape(Prog, makeTypePolicy(Prog, 2, 1),
                              HeuristicKind::A)
                    .Completed)
        << Profile.Name << " 2typeH-IntroA";
    EXPECT_TRUE(runIntroShape(Prog, makeCallSitePolicy(2, 1),
                              HeuristicKind::A)
                    .Completed)
        << Profile.Name << " 2callH-IntroA";
  }
}

TEST(Fig57Shape, IntroBFailsExactlyOnJythonObjectAndCallSite) {
  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    const Program &Prog = benchmark(Profile.Name);
    bool IsJython = Profile.Name == "jython";
    EXPECT_EQ(runIntroShape(Prog, makeObjectPolicy(Prog, 2, 1),
                            HeuristicKind::B)
                  .Completed,
              !IsJython)
        << Profile.Name << " 2objH-IntroB";
    EXPECT_TRUE(runIntroShape(Prog, makeTypePolicy(Prog, 2, 1),
                              HeuristicKind::B)
                    .Completed)
        << Profile.Name << " 2typeH-IntroB";
    EXPECT_EQ(runIntroShape(Prog, makeCallSitePolicy(2, 1),
                            HeuristicKind::B)
                  .Completed,
              !IsJython)
        << Profile.Name << " 2callH-IntroB";
  }
}

TEST(PrecisionShape, OrderingInsensIntroAIntroBFull) {
  // On a benchmark where everything completes (chart), precision must
  // order: insens >= IntroA >= IntroB >= full for every metric (lower is
  // more precise), with a strict improvement from insens to full.
  const Program &Prog = benchmark("chart");
  Shape Insens = runPlain(Prog, makeInsensitivePolicy());
  Shape IntroA =
      runIntroShape(Prog, makeObjectPolicy(Prog, 2, 1), HeuristicKind::A);
  Shape IntroB =
      runIntroShape(Prog, makeObjectPolicy(Prog, 2, 1), HeuristicKind::B);
  Shape Full = runPlain(Prog, makeObjectPolicy(Prog, 2, 1));

  auto Check = [&](auto Member, const char *Metric) {
    uint64_t I = Insens.Precision.*Member;
    uint64_t A = IntroA.Precision.*Member;
    uint64_t B = IntroB.Precision.*Member;
    uint64_t F = Full.Precision.*Member;
    EXPECT_GE(I, A) << Metric;
    EXPECT_GE(A, B) << Metric;
    EXPECT_GE(B, F) << Metric;
  };
  Check(&PrecisionMetrics::PolymorphicVirtualCallSites, "poly sites");
  Check(&PrecisionMetrics::ReachableMethods, "reachable");
  Check(&PrecisionMetrics::CastsThatMayFail, "casts");
  EXPECT_GT(Insens.Precision.CastsThatMayFail,
            Full.Precision.CastsThatMayFail);
  EXPECT_GT(Insens.Precision.PolymorphicVirtualCallSites,
            Full.Precision.PolymorphicVirtualCallSites);
}

TEST(PrecisionShape, IntroBMatchesFull2callHWhereItCompletes) {
  // The paper's Figure 7 remark: IntroB achieves the *full* precision of
  // 2callH on the benchmarks where the latter terminates.
  for (const char *Name : {"chart", "eclipse"}) {
    const Program &Prog = benchmark(Name);
    Shape Full = runPlain(Prog, makeCallSitePolicy(2, 1));
    ASSERT_TRUE(Full.Completed) << Name;
    Shape IntroB =
        runIntroShape(Prog, makeCallSitePolicy(2, 1), HeuristicKind::B);
    ASSERT_TRUE(IntroB.Completed) << Name;
    EXPECT_EQ(IntroB.Precision.PolymorphicVirtualCallSites,
              Full.Precision.PolymorphicVirtualCallSites)
        << Name;
    EXPECT_EQ(IntroB.Precision.CastsThatMayFail,
              Full.Precision.CastsThatMayFail)
        << Name;
    EXPECT_EQ(IntroB.Precision.ReachableMethods,
              Full.Precision.ReachableMethods)
        << Name;
  }
}

TEST(Fig4Shape, HeuristicAIsMoreAggressiveThanB) {
  for (const WorkloadProfile &Profile : scalabilitySubjects()) {
    const Program &Prog = benchmark(Profile.Name);
    auto Insens = makeInsensitivePolicy();
    ContextTable Table;
    PointsToResult First = solvePointsTo(Prog, *Insens, Table);
    IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, First);
    RefinementStats A = computeRefinementStats(
        Prog, First, applyHeuristicA(Prog, First, Metrics));
    RefinementStats B = computeRefinementStats(
        Prog, First, applyHeuristicB(Prog, First, Metrics));

    EXPECT_GT(A.callSitePercent(), B.callSitePercent()) << Profile.Name;
    EXPECT_GE(A.objectPercent(), B.objectPercent()) << Profile.Name;
    // "the program elements that are refined are the overwhelming majority"
    // -- B's exclusions stay small.
    EXPECT_LT(B.callSitePercent(), 10.0) << Profile.Name;
    EXPECT_LT(B.objectPercent(), 25.0) << Profile.Name;
  }
}
