//===- tests/ImportanceTests.cpp - Importance metric tests ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "introspect/Importance.h"
#include "introspect/Metrics.h"
#include "workload/DaCapo.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace intro;
using namespace intro::testing;

namespace {

PointsToResult firstPass(const Program &Prog) {
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  return solvePointsTo(Prog, *Policy, Table);
}

} // namespace

TEST(Importance, CastSourcesMatter) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  ImportanceMetrics I = computeImportance(T.Prog, Insens);

  // The cast `(A) oa` sees both payloads insensitively: each earns one
  // importance point.  The boxes feed no cast or polymorphic dispatch.
  EXPECT_EQ(I.ObjectImportance[T.HeapA.index()], 1u);
  EXPECT_EQ(I.ObjectImportance[T.HeapB.index()], 1u);
  EXPECT_EQ(I.ObjectImportance[T.Box1.index()], 0u);
}

TEST(Importance, MonomorphicDispatchEarnsNothing) {
  Dispatch T = makeDispatch();
  PointsToResult Insens = firstPass(T.Prog);
  ImportanceMetrics I = computeImportance(T.Prog, Insens);
  // Both speak() sites are monomorphic; there are no casts: all zero.
  for (uint32_t Heap = 0; Heap < T.Prog.numHeaps(); ++Heap)
    EXPECT_EQ(I.ObjectImportance[Heap], 0u);
}

TEST(Importance, AccessorsInheritHandledObjectImportance) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  ImportanceMetrics I = computeImportance(T.Prog, Insens);

  // get() returns the (cast-relevant) payloads: its method importance
  // includes the scaled flow credit.  main's own cast gives it a local
  // client op.
  MethodId Get = T.Prog.lookup(T.BoxT, T.Prog.site(T.GetCall1).Sig);
  MethodId Main = T.Prog.entries()[0];
  EXPECT_EQ(I.MethodImportance[Get.index()], 1u / 4u + 0u)
      << "payload importance 1 scaled by 4 truncates to 0";
  EXPECT_GE(I.MethodImportance[Main.index()], 1u);
}

TEST(Importance, GuardLiftsOnlyImportantExclusions) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = firstPass(T.Prog);
  ImportanceMetrics I = computeImportance(T.Prog, Insens);

  RefinementExceptions Exceptions;
  Exceptions.NoRefineHeaps.insert(T.HeapA.index()); // Importance 1.
  Exceptions.NoRefineHeaps.insert(T.Box1.index());  // Importance 0.
  ImportanceGuardParams Params;
  Params.ObjectThreshold = 0; // Anything with importance > 0 is lifted.
  uint64_t Lifted = applyImportanceGuard(T.Prog, I, Exceptions, Params);
  EXPECT_EQ(Lifted, 1u);
  EXPECT_FALSE(Exceptions.skipsHeap(T.HeapA));
  EXPECT_TRUE(Exceptions.skipsHeap(T.Box1));
}

TEST(Importance, GuardedIntroARecoversPrecisionAndScales) {
  // End-to-end on the chart workload: guarded IntroA must be at least as
  // precise as plain IntroA and still complete.
  Program Prog = generateWorkload(dacapoProfile("chart"));
  auto Insens = makeInsensitivePolicy();
  ContextTable First;
  PointsToResult Pass1 = solvePointsTo(Prog, *Insens, First);
  IntrospectionMetrics Metrics = computeIntrospectionMetrics(Prog, Pass1);
  ImportanceMetrics Importance = computeImportance(Prog, Pass1);

  auto RunWith = [&](bool Guard) {
    RefinementExceptions Exceptions = applyHeuristicA(Prog, Pass1, Metrics);
    if (Guard)
      applyImportanceGuard(Prog, Importance, Exceptions);
    auto Refined = makeObjectPolicy(Prog, 2, 1);
    auto Policy =
        makeIntrospectivePolicy("g", *Insens, *Refined, Exceptions);
    ContextTable Table;
    SolverOptions Options;
    Options.Budget.MaxTuples = 12'000'000;
    PointsToResult R = solvePointsTo(Prog, *Policy, Table, Options);
    EXPECT_TRUE(isCompleted(R.Status));
    return computePrecision(Prog, R);
  };

  PrecisionMetrics Plain = RunWith(false);
  PrecisionMetrics Guarded = RunWith(true);
  EXPECT_LT(Guarded.CastsThatMayFail, Plain.CastsThatMayFail);
  EXPECT_LT(Guarded.PolymorphicVirtualCallSites,
            Plain.PolymorphicVirtualCallSites);
}

TEST(Importance, UnreachableMethodsScoreZero) {
  Mixed T = makeMixed();
  PointsToResult Insens = firstPass(T.Prog);
  ImportanceMetrics I = computeImportance(T.Prog, Insens);
  EXPECT_EQ(I.MethodImportance[T.Unreachable.index()], 0u);
}
