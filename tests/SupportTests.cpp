//===- tests/SupportTests.cpp - Support library unit tests ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Ids.h"
#include "support/Overflow.h"
#include "support/ParseNum.h"
#include "support/Rng.h"
#include "support/SetUtils.h"
#include "support/StringInterner.h"
#include "support/TableWriter.h"
#include "support/Timer.h"
#include "support/TupleInterner.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <sstream>
#include <type_traits>

using namespace intro;

TEST(Ids, DefaultIsInvalid) {
  VarId Var;
  EXPECT_FALSE(Var.isValid());
  EXPECT_EQ(Var, VarId::invalid());
}

TEST(Ids, IndexRoundTrip) {
  HeapId Heap(42);
  EXPECT_TRUE(Heap.isValid());
  EXPECT_EQ(Heap.index(), 42u);
  EXPECT_EQ(Heap.raw(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(MethodId(1), MethodId(2));
  EXPECT_NE(MethodId(1), MethodId(2));
  EXPECT_EQ(MethodId(3), MethodId(3));
}

TEST(Ids, Hashable) {
  std::hash<VarId> Hasher;
  EXPECT_EQ(Hasher(VarId(7)), Hasher(VarId(7)));
}

TEST(StringInterner, DeduplicatesAndRoundTrips) {
  StringInterner Interner;
  uint32_t A = Interner.intern("alpha");
  uint32_t B = Interner.intern("beta");
  uint32_t A2 = Interner.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Interner.text(A), "alpha");
  EXPECT_EQ(Interner.text(B), "beta");
  EXPECT_EQ(Interner.size(), 2u);
}

TEST(StringInterner, ViewsSurviveGrowth) {
  StringInterner Interner;
  uint32_t First = Interner.intern("s0");
  std::string_view View = Interner.text(First);
  for (int Index = 0; Index < 1000; ++Index)
    Interner.intern("s" + std::to_string(Index));
  EXPECT_EQ(View, "s0");
  EXPECT_EQ(Interner.text(First), "s0");
}

TEST(TupleInterner, EmptyTupleIsValid) {
  TupleInterner Interner;
  uint32_t Empty = Interner.intern({});
  EXPECT_EQ(Empty, 0u);
  EXPECT_TRUE(Interner.elements(Empty).empty());
  EXPECT_EQ(Interner.intern({}), Empty);
}

TEST(TupleInterner, DeduplicatesByContent) {
  TupleInterner Interner;
  std::vector<uint32_t> T1 = {1, 2, 3};
  std::vector<uint32_t> T2 = {1, 2, 4};
  uint32_t H1 = Interner.intern(T1);
  uint32_t H2 = Interner.intern(T2);
  uint32_t H3 = Interner.intern(T1);
  EXPECT_EQ(H1, H3);
  EXPECT_NE(H1, H2);
  auto Elements = Interner.elements(H2);
  ASSERT_EQ(Elements.size(), 3u);
  EXPECT_EQ(Elements[2], 4u);
}

TEST(TupleInterner, FindDoesNotInsert) {
  TupleInterner Interner;
  std::vector<uint32_t> T = {9, 9};
  EXPECT_EQ(Interner.find(T), TupleInterner::NotFound);
  EXPECT_EQ(Interner.size(), 0u);
  uint32_t H = Interner.intern(T);
  EXPECT_EQ(Interner.find(T), H);
}

TEST(TupleInterner, SelfAliasingInternIsSafe) {
  TupleInterner Interner;
  std::vector<uint32_t> Seed = {10, 20, 30};
  uint32_t H = Interner.intern(Seed);
  // Intern a truncated view of an existing tuple many times; the arena grows
  // underneath the input span.
  for (int Round = 0; Round < 100; ++Round) {
    auto View = Interner.elements(H);
    uint32_t Sub = Interner.intern(View.subspan(0, 2));
    auto SubElements = Interner.elements(Sub);
    ASSERT_EQ(SubElements.size(), 2u);
    EXPECT_EQ(SubElements[0], 10u);
    EXPECT_EQ(SubElements[1], 20u);
    // Grow the arena with fresh tuples.
    std::vector<uint32_t> Fresh = {static_cast<uint32_t>(Round), 7u, 8u, 9u};
    Interner.intern(Fresh);
  }
}

TEST(Rng, Deterministic) {
  Rng A(123);
  Rng B(123);
  for (int Index = 0; Index < 100; ++Index)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BelowIsInRange) {
  Rng R(7);
  for (int Index = 0; Index < 1000; ++Index)
    EXPECT_LT(R.below(10), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng R(11);
  bool SawLo = false;
  bool SawHi = false;
  for (int Index = 0; Index < 2000; ++Index) {
    uint32_t Value = R.range(3, 5);
    EXPECT_GE(Value, 3u);
    EXPECT_LE(Value, 5u);
    SawLo |= Value == 3;
    SawHi |= Value == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1);
  Rng B(2);
  bool Diverged = false;
  for (int Index = 0; Index < 10 && !Diverged; ++Index)
    Diverged = A.next() != B.next();
  EXPECT_TRUE(Diverged);
}

TEST(SetUtils, InsertAndContains) {
  SortedIdSet Set;
  EXPECT_TRUE(setInsert(Set, 5));
  EXPECT_TRUE(setInsert(Set, 1));
  EXPECT_TRUE(setInsert(Set, 9));
  EXPECT_FALSE(setInsert(Set, 5));
  EXPECT_TRUE(setContains(Set, 1));
  EXPECT_TRUE(setContains(Set, 5));
  EXPECT_FALSE(setContains(Set, 2));
  EXPECT_EQ(Set, (SortedIdSet{1, 5, 9}));
}

TEST(SetUtils, UnionInto) {
  SortedIdSet Set = {1, 3, 5};
  SortedIdSet Delta = {2, 3, 6};
  SortedIdSet NewElements;
  setUnionInto(Set, Delta, NewElements);
  EXPECT_EQ(Set, (SortedIdSet{1, 2, 3, 5, 6}));
  EXPECT_EQ(NewElements, (SortedIdSet{2, 6}));
}

TEST(SetUtils, NormalizeSortsAndDedupes) {
  SortedIdSet Values = {5, 1, 5, 3, 1};
  setNormalize(Values);
  EXPECT_EQ(Values, (SortedIdSet{1, 3, 5}));
}

TEST(TableWriter, AlignsColumns) {
  TableWriter Table({"name", "value"});
  Table.addRow({"x", "1"});
  Table.addRow({"longer", "22"});
  std::ostringstream Out;
  Table.print(Out);
  std::string Text = Out.str();
  EXPECT_NE(Text.find("| name   | value |"), std::string::npos);
  EXPECT_NE(Text.find("| longer | 22    |"), std::string::npos);
}

TEST(TableWriter, Formatters) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(uint64_t(42)), "42");
  EXPECT_EQ(TableWriter::percent(12.34), "12.3 %");
}

TEST(Timer, BackedByMonotonicClock) {
  // The budget enforcement contract: a wall-clock adjustment (NTP, DST,
  // manual change) mid-solve must not move elapsed time.  steady_clock is
  // the only standard clock guaranteeing that.
  static_assert(std::is_same_v<Timer::Clock, std::chrono::steady_clock>,
                "Timer must use std::chrono::steady_clock");
  EXPECT_TRUE(Timer::Clock::is_steady);
}

TEST(Timer, ElapsedIsNonNegativeAndMonotone) {
  Timer Clock;
  double Previous = 0.0;
  for (int Sample = 0; Sample < 10000; ++Sample) {
    double Now = Clock.seconds();
    ASSERT_GE(Now, Previous) << "elapsed time went backwards";
    Previous = Now;
  }
  EXPECT_GE(Clock.millis(), Previous * 1000.0);
  Clock.reset();
  EXPECT_GE(Clock.seconds(), 0.0);
}

TEST(Overflow, SaturatingMulExactWhenInRange) {
  EXPECT_EQ(saturatingMul(6, 7), 42u);
  EXPECT_EQ(saturatingMul(0, std::numeric_limits<uint64_t>::max()), 0u);
  EXPECT_EQ(saturatingMul(std::numeric_limits<uint64_t>::max(), 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(Overflow, SaturatingMulClampsOnOverflow) {
  // 2^32 * 2^32 = 2^64 wraps to 0 under plain uint64 multiplication — the
  // exact bug class that disarmed the TupleInflation budget check.
  EXPECT_EQ(saturatingMul(uint64_t(1) << 32, uint64_t(1) << 32),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(saturatingMul(std::numeric_limits<uint64_t>::max(), 2),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(saturatingMul(std::numeric_limits<uint64_t>::max(),
                          std::numeric_limits<uint64_t>::max()),
            std::numeric_limits<uint64_t>::max());
}

TEST(Overflow, SaturatingAdd) {
  EXPECT_EQ(saturatingAdd(40, 2), 42u);
  EXPECT_EQ(saturatingAdd(std::numeric_limits<uint64_t>::max(), 1),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(saturatingAdd(std::numeric_limits<uint64_t>::max(),
                          std::numeric_limits<uint64_t>::max()),
            std::numeric_limits<uint64_t>::max());
}

// --- Strict numeric CLI parsing (support/ParseNum.h) -------------------------

TEST(ParseNum, AcceptsPlainDecimals) {
  uint64_t U64 = 0;
  uint32_t U32 = 0;
  double F64 = 0;
  std::string Error;
  EXPECT_TRUE(parseU64("--seed", "0", 0, 10, U64, Error));
  EXPECT_EQ(U64, 0u);
  EXPECT_TRUE(parseU64("--seed", "18446744073709551615", 0,
                       std::numeric_limits<uint64_t>::max(), U64, Error));
  EXPECT_EQ(U64, std::numeric_limits<uint64_t>::max());
  EXPECT_TRUE(parseU32("--workers", "4294967295", 0,
                       std::numeric_limits<uint32_t>::max(), U32, Error));
  EXPECT_EQ(U32, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(parseF64("--deadline", "1.5", 0, 10, F64, Error));
  EXPECT_EQ(F64, 1.5);
  EXPECT_TRUE(Error.empty());
}

TEST(ParseNum, RejectsGarbageWithANamedFlagDiagnostic) {
  // `--retries=x` must produce a named-flag error, not escape as
  // std::invalid_argument (which an outer try/catch misreports as an
  // internal error, exit 3 instead of exit 2).
  uint64_t Out = 7;
  std::string Error;
  EXPECT_FALSE(parseU64("--retries", "x", 0, 100, Out, Error));
  EXPECT_NE(Error.find("--retries"), std::string::npos);
  EXPECT_NE(Error.find("'x'"), std::string::npos);
  EXPECT_EQ(Out, 7u) << "output must be untouched on failure";
}

TEST(ParseNum, RejectsWhatStoulWouldAccept) {
  // Every one of these passes std::stoul but is not a flag value a user
  // meant: signs, whitespace, trailing garbage, hex.
  uint64_t Out = 0;
  std::string Error;
  for (const char *Bad : {"", "-1", "+1", " 1", "1 ", "12x", "0x10", "1.0"})
    EXPECT_FALSE(parseU64("--n", Bad, 0, 1000, Out, Error)) << Bad;
}

TEST(ParseNum, RejectsSixtyFourBitOverflowInsteadOfWrapping) {
  uint64_t Out = 0;
  std::string Error;
  EXPECT_FALSE(parseU64("--seed", "18446744073709551616", 0,
                        std::numeric_limits<uint64_t>::max(), Out, Error));
  EXPECT_NE(Error.find("64 bits"), std::string::npos);
}

TEST(ParseNum, U32RejectsValuesAboveTheCallersRange) {
  // On LP64, std::stoul happily parses 2^32 and a later static_cast
  // truncates it to 0; the checked parse must reject it instead.
  uint32_t Out = 0;
  std::string Error;
  EXPECT_FALSE(parseU32("--workers", "4294967296", 1,
                        std::numeric_limits<uint32_t>::max(), Out, Error));
  EXPECT_NE(Error.find("--workers"), std::string::npos);
}

TEST(ParseNum, EnforcesTheInclusiveRange) {
  uint64_t Out = 0;
  std::string Error;
  EXPECT_FALSE(parseU64("--max-attempts", "0", 1, 10, Out, Error));
  EXPECT_NE(Error.find("[1, 10]"), std::string::npos);
  EXPECT_TRUE(parseU64("--max-attempts", "1", 1, 10, Out, Error));
  EXPECT_TRUE(parseU64("--max-attempts", "10", 1, 10, Out, Error));
  EXPECT_FALSE(parseU64("--max-attempts", "11", 1, 10, Out, Error));
}

TEST(ParseNum, F64RejectsNonPlainDecimals) {
  double Out = 0;
  std::string Error;
  for (const char *Bad : {"", "inf", "nan", "1e5", "-1.0", " 1.0", "1.0.0",
                          "0x1p3"})
    EXPECT_FALSE(parseF64("--deadline", Bad, 0, 1e9, Out, Error)) << Bad;
  EXPECT_FALSE(parseF64("--deadline", "10.1", 0, 10, Out, Error));
  EXPECT_NE(Error.find("--deadline"), std::string::npos);
}
