//===- tests/IrTests.cpp - IR substrate unit tests ------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Facts.h"
#include "ir/Interpreter.h"
#include "ir/Program.h"
#include "ir/ProgramBuilder.h"
#include "ir/Validator.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace intro;
using namespace intro::testing;

TEST(ClassHierarchy, SubtypeReflexiveAndTransitive) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Mid = B.cls("Mid", Object);
  TypeId Leaf = B.cls("Leaf", Mid);
  TypeId Other = B.cls("Other", Object);
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  Program P = B.take();

  EXPECT_TRUE(P.isSubtypeOf(Leaf, Leaf));
  EXPECT_TRUE(P.isSubtypeOf(Leaf, Mid));
  EXPECT_TRUE(P.isSubtypeOf(Leaf, Object));
  EXPECT_TRUE(P.isSubtypeOf(Mid, Object));
  EXPECT_FALSE(P.isSubtypeOf(Mid, Leaf));
  EXPECT_FALSE(P.isSubtypeOf(Leaf, Other));
  EXPECT_FALSE(P.isSubtypeOf(Object, Leaf));
}

TEST(ClassHierarchy, DispatchFindsOverrides) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Base = B.cls("Base", Object);
  TypeId Derived = B.cls("Derived", Base);
  TypeId Grand = B.cls("Grand", Derived);
  MethodBuilder BaseM = B.method(Base, "m", 0);
  MethodBuilder DerivedM = B.method(Derived, "m", 0);
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  Program P = B.take();

  SigId Sig = P.method(BaseM.id()).Sig;
  EXPECT_EQ(P.lookup(Base, Sig), BaseM.id());
  EXPECT_EQ(P.lookup(Derived, Sig), DerivedM.id());
  // Inherited: Grand has no own `m`, resolves to Derived's.
  EXPECT_EQ(P.lookup(Grand, Sig), DerivedM.id());
  // Object has no `m` at all.
  EXPECT_FALSE(P.lookup(Object, Sig).isValid());
}

TEST(ClassHierarchy, SignatureDedupByNameAndArity) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId C1 = B.cls("C1", Object);
  TypeId C2 = B.cls("C2", Object);
  MethodBuilder M1 = B.method(C1, "f", 2);
  MethodBuilder M2 = B.method(C2, "f", 2);
  MethodBuilder M3 = B.method(C1, "f", 3); // Different arity: new signature.
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  Program P = B.take();
  EXPECT_EQ(P.method(M1.id()).Sig, P.method(M2.id()).Sig);
  EXPECT_NE(P.method(M1.id()).Sig, P.method(M3.id()).Sig);
}

TEST(ProgramBuilder, MethodScaffolding) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId C = B.cls("C", Object);
  MethodBuilder M = B.method(C, "f", 2);
  EXPECT_TRUE(M.thisVar().isValid());
  EXPECT_NE(M.formal(0), M.formal(1));
  VarId Ret1 = M.returnVar();
  VarId Ret2 = M.returnVar();
  EXPECT_EQ(Ret1, Ret2) << "returnVar must be created once";
  VarId This = M.thisVar(); // Builder handles die at take().
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  Program P = B.take();
  EXPECT_EQ(P.method(M.id()).Formals.size(), 2u);
  EXPECT_EQ(P.var(This).Owner, M.id());
}

TEST(ProgramBuilder, InstructionEmission) {
  TwoBoxes T = makeTwoBoxes();
  EXPECT_EQ(T.Prog.numTypes(), 4u);
  EXPECT_EQ(T.Prog.numHeaps(), 4u);
  EXPECT_EQ(T.Prog.numSites(), 4u);
  // main: 4 allocs + 4 calls + 1 cast = 9 instructions; set: 1; get: 1.
  EXPECT_EQ(T.Prog.numInstructions(), 11u);
}

TEST(Validator, AcceptsWellFormedPrograms) {
  EXPECT_TRUE(validateProgram(makeTwoBoxes().Prog).empty());
  EXPECT_TRUE(validateProgram(makeDispatch().Prog).empty());
  EXPECT_TRUE(validateProgram(makeMixed().Prog).empty());
}

TEST(Validator, RejectsMissingEntry) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  B.method(Object, "main", 0, true);
  Program P = B.take();
  auto Errors = validateProgram(P);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("no entry"), std::string::npos);
}

TEST(Validator, RejectsVirtualEntry) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder M = B.method(Object, "run", 0, /*IsStatic=*/false);
  B.entry(M.id());
  Program P = B.take();
  auto Errors = validateProgram(P);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("must be static"), std::string::npos);
}

TEST(Validator, RejectsCrossMethodVariableUse) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder M1 = B.method(Object, "f", 0, true);
  MethodBuilder M2 = B.method(Object, "main", 0, true);
  B.entry(M2.id());
  VarId Foreign = M1.local("x");
  VarId Local = M2.local("y");
  M2.move(Local, Foreign); // Illegal: Foreign belongs to f.
  Program P = B.take();
  auto Errors = validateProgram(P);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("outside its owning method"), std::string::npos);
}

TEST(Interpreter, RecordsAllocationsAndDispatch) {
  Dispatch T = makeDispatch();
  DynamicFacts Facts = interpret(T.Prog);
  EXPECT_FALSE(Facts.Truncated);

  // Both speak() methods executed.
  auto HasMethod = [&](MethodId M) {
    for (MethodId Reached : Facts.ReachedMethods)
      if (Reached == M)
        return true;
    return false;
  };
  SigId Speak = T.Prog.site(T.Call1).Sig;
  EXPECT_TRUE(HasMethod(T.Prog.lookup(T.Cat, Speak)));
  EXPECT_TRUE(HasMethod(T.Prog.lookup(T.Dog, Speak)));

  // s1 got the Meow object, s2 the Woof object -- and not vice versa.
  auto PointsTo = [&](VarId Var, HeapId Heap) {
    for (auto [V, H] : Facts.VarPointsTo)
      if (V == Var && H == Heap)
        return true;
    return false;
  };
  EXPECT_TRUE(PointsTo(T.Sound1, T.MeowHeap));
  EXPECT_FALSE(PointsTo(T.Sound1, T.WoofHeap));
  EXPECT_TRUE(PointsTo(T.Sound2, T.WoofHeap));
  EXPECT_FALSE(PointsTo(T.Sound2, T.MeowHeap));
}

TEST(Interpreter, HeapStorageFlowsThroughFields) {
  TwoBoxes T = makeTwoBoxes();
  DynamicFacts Facts = interpret(T.Prog);
  auto PointsTo = [&](VarId Var, HeapId Heap) {
    for (auto [V, H] : Facts.VarPointsTo)
      if (V == Var && H == Heap)
        return true;
    return false;
  };
  // Concretely, each box returns exactly its own payload.
  EXPECT_TRUE(PointsTo(T.OutA, T.HeapA));
  EXPECT_FALSE(PointsTo(T.OutA, T.HeapB));
  EXPECT_TRUE(PointsTo(T.OutB, T.HeapB));
  // The successful cast propagates.
  EXPECT_TRUE(PointsTo(T.CastA, T.HeapA));
}

TEST(Interpreter, UnreachableMethodNotExecuted) {
  Mixed T = makeMixed();
  DynamicFacts Facts = interpret(T.Prog);
  for (MethodId Reached : Facts.ReachedMethods)
    EXPECT_NE(Reached, T.Unreachable);
  auto PointsTo = [&](VarId Var, HeapId Heap) {
    for (auto [V, H] : Facts.VarPointsTo)
      if (V == Var && H == Heap)
        return true;
    return false;
  };
  EXPECT_TRUE(PointsTo(T.Chained, T.Payload));
}

TEST(Interpreter, StepBudgetTruncatesRecursion) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder Loop = B.method(Object, "loop", 0, true);
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  Main.scall(VarId::invalid(), Loop.id(), {});
  B.bodyOf(Loop.id()).scall(VarId::invalid(), Loop.id(), {});
  Program P = B.take();
  DynamicFacts Facts = interpret(P, /*MaxSteps=*/1000);
  EXPECT_TRUE(Facts.Truncated);
}

TEST(Facts, ExtractionMatchesProgramShape) {
  TwoBoxes T = makeTwoBoxes();
  ProgramFacts Facts = extractFacts(T.Prog);
  EXPECT_EQ(Facts.Alloc.size(), 4u);
  EXPECT_EQ(Facts.VCall.size(), 4u);
  EXPECT_EQ(Facts.SCall.size(), 0u);
  EXPECT_EQ(Facts.Cast.size(), 1u);
  // Casts are kept out of MOVE; consumers choose move-like or checked
  // semantics.  TwoBoxes has no genuine moves.
  EXPECT_EQ(Facts.Move.size(), 0u);
  // SUBTYPE pairs for the one cast to A: among heap types {Box, A, B},
  // only A itself is a subtype of A.
  EXPECT_EQ(Facts.Subtype.size(), 1u);
  EXPECT_EQ(Facts.Store.size(), 1u);
  EXPECT_EQ(Facts.Load.size(), 1u);
  EXPECT_EQ(Facts.ThisVar.size(), 2u);
  EXPECT_EQ(Facts.EntryMethods.size(), 1u);
  // set(arg): one formal arg; one actual arg at each of 2 set-call sites.
  EXPECT_EQ(Facts.FormalArg.size(), 1u);
  EXPECT_EQ(Facts.ActualArg.size(), 2u);
  // get() has a return; both get-call sites receive it.
  EXPECT_EQ(Facts.FormalReturn.size(), 1u);
  EXPECT_EQ(Facts.ActualReturn.size(), 2u);
}

TEST(Facts, LookupRestrictedToUsefulPairs) {
  Dispatch T = makeDispatch();
  ProgramFacts Facts = extractFacts(T.Prog);
  // Heap types: Cat, Dog, Meow, Woof.  Used signature: speak/0.
  // Only Cat and Dog resolve it.
  EXPECT_EQ(Facts.Lookup.size(), 2u);
}
