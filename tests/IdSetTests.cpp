//===- tests/IdSetTests.cpp - Adaptive points-to set unit tests -----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// support/IdSet.h unit tests: the vector <-> bitmap promotion boundary,
/// every mixed-representation union pairing, empty/duplicate/max-handle
/// edges, the sparse-outlier demotion guard, and a property test of random
/// operation interleavings against a std::set reference model.
///
//===----------------------------------------------------------------------===//

#include "support/IdSet.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

using namespace intro;

namespace {

/// \returns an IdSet holding [0, Count) with \p Threshold, densely packed
/// (consecutive handles, so it promotes as soon as the threshold allows).
IdSet denseSet(uint32_t Count, uint32_t Threshold) {
  IdSet Set(Threshold);
  for (uint32_t Value = 0; Value < Count; ++Value)
    Set.insert(Value);
  return Set;
}

std::vector<uint32_t> contents(const IdSet &Set) { return Set.toVector(); }

} // namespace

TEST(IdSet, StaysSortedVectorBelowThreshold) {
  IdSet Set(/*PromoteThreshold=*/8);
  for (uint32_t Value = 0; Value < 7; ++Value) {
    EXPECT_TRUE(Set.insert(Value * 3));
    EXPECT_FALSE(Set.isDense());
  }
  EXPECT_EQ(Set.size(), 7u);
  EXPECT_TRUE(Set.contains(6));
  EXPECT_FALSE(Set.contains(7));
}

TEST(IdSet, PromotesAtThresholdWhenDenseEnough) {
  // Consecutive handles: at the 8th insert the bitmap needs 1 word for 8
  // elements, easily within the 1-element-per-word density requirement.
  IdSet Set(/*PromoteThreshold=*/8);
  for (uint32_t Value = 0; Value < 8; ++Value)
    Set.insert(Value);
  EXPECT_TRUE(Set.isDense());
  EXPECT_EQ(Set.size(), 8u);
  for (uint32_t Value = 0; Value < 8; ++Value)
    EXPECT_TRUE(Set.contains(Value));
  EXPECT_FALSE(Set.contains(8));
}

TEST(IdSet, StaysVectorPastThresholdWhenSparse) {
  // Handles 64 words apart: the bitmap would need one word per element
  // (4096 bytes for 16 elements), failing the density condition.
  IdSet Set(/*PromoteThreshold=*/8);
  for (uint32_t Value = 0; Value < 16; ++Value)
    Set.insert(Value * 4096);
  EXPECT_FALSE(Set.isDense());
  EXPECT_EQ(Set.size(), 16u);
  // approxBytes reflects vector storage.
  EXPECT_EQ(Set.approxBytes(), 16u * sizeof(uint32_t));
}

TEST(IdSet, PromotionPreservesContentsAndOrder) {
  IdSet Set(/*PromoteThreshold=*/4);
  std::vector<uint32_t> Expected;
  // Insert descending so promotion happens mid-sequence.
  for (uint32_t Value = 20; Value-- > 0;) {
    Set.insert(Value);
    Expected.push_back(Value);
  }
  std::sort(Expected.begin(), Expected.end());
  EXPECT_TRUE(Set.isDense());
  EXPECT_EQ(contents(Set), Expected);
  // Iterator and forEach agree and ascend.
  std::vector<uint32_t> Iterated(Set.begin(), Set.end());
  EXPECT_EQ(Iterated, Expected);
}

TEST(IdSet, DuplicateInsertsAreRejectedInBothRepresentations) {
  IdSet Small(/*PromoteThreshold=*/100);
  EXPECT_TRUE(Small.insert(5));
  EXPECT_FALSE(Small.insert(5));
  EXPECT_EQ(Small.size(), 1u);

  IdSet Dense = denseSet(64, /*Threshold=*/4);
  ASSERT_TRUE(Dense.isDense());
  EXPECT_FALSE(Dense.insert(63));
  EXPECT_TRUE(Dense.insert(64));
  EXPECT_EQ(Dense.size(), 65u);
}

TEST(IdSet, MaxHandleLandsInVectorMode) {
  IdSet Set(/*PromoteThreshold=*/4);
  constexpr uint32_t Max = std::numeric_limits<uint32_t>::max();
  EXPECT_TRUE(Set.insert(Max));
  EXPECT_TRUE(Set.contains(Max));
  // A lone max handle must never promote: the bitmap would need 2^26 words.
  for (uint32_t Value = 0; Value < 32; ++Value)
    Set.insert(Value);
  EXPECT_FALSE(Set.isDense());
  EXPECT_EQ(Set.size(), 33u);
  EXPECT_TRUE(Set.contains(Max));
}

TEST(IdSet, SparseOutlierDemotesDenseSet) {
  // A compact dense set hit with a far-away handle must fall back to the
  // vector representation rather than allocate a ~512 MB bitmap.
  IdSet Set = denseSet(64, /*Threshold=*/4);
  ASSERT_TRUE(Set.isDense());
  constexpr uint32_t Outlier = std::numeric_limits<uint32_t>::max() - 1;
  EXPECT_TRUE(Set.insert(Outlier));
  EXPECT_FALSE(Set.isDense());
  EXPECT_EQ(Set.size(), 65u);
  EXPECT_TRUE(Set.contains(Outlier));
  EXPECT_TRUE(Set.contains(0));
  EXPECT_TRUE(Set.contains(63));
  // Storage stayed proportional to the element count, not the key range.
  EXPECT_EQ(Set.approxBytes(), 65u * sizeof(uint32_t));
}

TEST(IdSet, ClearResetsToEmptySmallSet) {
  IdSet Set = denseSet(64, /*Threshold=*/4);
  ASSERT_TRUE(Set.isDense());
  Set.clear();
  EXPECT_TRUE(Set.empty());
  EXPECT_FALSE(Set.isDense());
  EXPECT_EQ(Set.approxBytes(), 0u);
  EXPECT_TRUE(Set.insert(3));
  EXPECT_EQ(Set.size(), 1u);
}

// --- unionWithDelta: all four representation pairings ----------------------

namespace {

/// Exercises Dst.unionWithDelta(Src) and checks: final contents are the set
/// union, the reported delta is exactly the genuinely new elements in
/// ascending order, and the return value matches the delta size.
void checkUnion(IdSet Dst, const IdSet &Src) {
  std::set<uint32_t> Model(Dst.begin(), Dst.end());
  std::vector<uint32_t> ExpectedDelta;
  for (uint32_t Value : Src)
    if (Model.insert(Value).second)
      ExpectedDelta.push_back(Value);

  SortedIdSet Delta;
  size_t Added = Dst.unionWithDelta(Src, Delta);
  EXPECT_EQ(Added, ExpectedDelta.size());
  EXPECT_EQ(Delta, ExpectedDelta);
  EXPECT_EQ(contents(Dst),
            std::vector<uint32_t>(Model.begin(), Model.end()));
}

} // namespace

TEST(IdSet, UnionSmallIntoSmall) {
  IdSet Dst(/*PromoteThreshold=*/100);
  IdSet Src(/*PromoteThreshold=*/100);
  for (uint32_t Value : {2u, 4u, 6u, 8u})
    Dst.insert(Value);
  for (uint32_t Value : {1u, 4u, 9u})
    Src.insert(Value);
  ASSERT_FALSE(Dst.isDense());
  ASSERT_FALSE(Src.isDense());
  checkUnion(Dst, Src);
}

TEST(IdSet, UnionDenseIntoSmall) {
  IdSet Dst(/*PromoteThreshold=*/1000);
  for (uint32_t Value = 0; Value < 20; Value += 2)
    Dst.insert(Value);
  IdSet Src = denseSet(128, /*Threshold=*/4);
  ASSERT_FALSE(Dst.isDense());
  ASSERT_TRUE(Src.isDense());
  checkUnion(Dst, Src);
}

TEST(IdSet, UnionSmallIntoDense) {
  IdSet Dst = denseSet(128, /*Threshold=*/4);
  IdSet Src(/*PromoteThreshold=*/1000);
  for (uint32_t Value : {3u, 127u, 128u, 200u})
    Src.insert(Value);
  ASSERT_TRUE(Dst.isDense());
  ASSERT_FALSE(Src.isDense());
  checkUnion(Dst, Src);
}

TEST(IdSet, UnionDenseIntoDense) {
  IdSet Dst = denseSet(128, /*Threshold=*/4);
  IdSet Src(/*Threshold=*/4);
  for (uint32_t Value = 64; Value < 256; ++Value)
    Src.insert(Value);
  ASSERT_TRUE(Dst.isDense());
  ASSERT_TRUE(Src.isDense());
  checkUnion(Dst, Src);
}

TEST(IdSet, UnionWithSelfAndEmptyAreNoOps) {
  IdSet Set = denseSet(100, /*Threshold=*/4);
  SortedIdSet Delta;
  EXPECT_EQ(Set.unionWithDelta(Set, Delta), 0u);
  EXPECT_TRUE(Delta.empty());
  EXPECT_EQ(Set.size(), 100u);

  IdSet Empty;
  EXPECT_EQ(Set.unionWithDelta(Empty, Delta), 0u);
  EXPECT_TRUE(Delta.empty());

  // Empty destination adopts everything.
  IdSet Fresh;
  EXPECT_EQ(Fresh.unionWithDelta(Set, Delta), 100u);
  EXPECT_EQ(Delta.size(), 100u);
  EXPECT_EQ(Fresh, Set);
}

TEST(IdSet, UnionDeltaAppendsWithoutClearing) {
  // The solver reuses one scratch vector across edges; unionWithDelta must
  // append, not clear.
  IdSet A(/*PromoteThreshold=*/100);
  IdSet B(/*PromoteThreshold=*/100);
  A.insert(1);
  B.insert(2);
  IdSet Dst(/*PromoteThreshold=*/100);
  SortedIdSet Delta;
  Dst.unionWithDelta(A, Delta);
  Dst.unionWithDelta(B, Delta);
  EXPECT_EQ(Delta, (SortedIdSet{1, 2}));
}

TEST(IdSet, UnionPromotesSmallDestinationPastThreshold) {
  IdSet Dst(/*PromoteThreshold=*/8);
  Dst.insert(0);
  IdSet Src = denseSet(64, /*Threshold=*/4);
  SortedIdSet Delta;
  EXPECT_EQ(Dst.unionWithDelta(Src, Delta), 63u);
  EXPECT_TRUE(Dst.isDense());
  EXPECT_EQ(Dst.size(), 64u);
}

TEST(IdSet, UnionSparseRangeDemotesDenseDestination) {
  // Merging far-flung handles into a compact dense set trips the outlier
  // guard mid-union; the operation must complete on the vector path with
  // nothing lost or double-reported.
  IdSet Dst = denseSet(64, /*Threshold=*/4);
  ASSERT_TRUE(Dst.isDense());
  SortedIdSet Sparse;
  for (uint32_t Value = 0; Value < 8; ++Value)
    Sparse.push_back(1u << (20 + Value));
  SortedIdSet Delta;
  EXPECT_EQ(Dst.unionWithDelta(Sparse, Delta), 8u);
  EXPECT_FALSE(Dst.isDense());
  EXPECT_EQ(Dst.size(), 72u);
  EXPECT_EQ(Delta, Sparse);
  for (uint32_t Value : Sparse)
    EXPECT_TRUE(Dst.contains(Value));
}

TEST(IdSet, InsertNewSortedInBothRepresentations) {
  IdSet Small(/*PromoteThreshold=*/100);
  Small.insert(5);
  Small.insertNewSorted({1, 3, 9});
  EXPECT_EQ(contents(Small), (std::vector<uint32_t>{1, 3, 5, 9}));
  // Append-after-back fast path.
  Small.insertNewSorted({10, 11});
  EXPECT_EQ(Small.size(), 6u);

  IdSet Dense = denseSet(64, /*Threshold=*/4);
  Dense.insertNewSorted({70, 80});
  EXPECT_TRUE(Dense.contains(70));
  EXPECT_TRUE(Dense.contains(80));
  EXPECT_EQ(Dense.size(), 66u);

  Small.insertNewSorted({});
  EXPECT_EQ(Small.size(), 6u);
}

TEST(IdSet, EqualityIsRepresentationIndependent) {
  // Same contents, one promoted and one held as a vector.
  IdSet Vector(/*PromoteThreshold=*/1000);
  IdSet Bitmap(/*PromoteThreshold=*/4);
  for (uint32_t Value = 0; Value < 100; ++Value) {
    Vector.insert(Value);
    Bitmap.insert(Value);
  }
  ASSERT_FALSE(Vector.isDense());
  ASSERT_TRUE(Bitmap.isDense());
  EXPECT_EQ(Vector, Bitmap);
  Bitmap.insert(100);
  EXPECT_NE(Vector, Bitmap);
}

TEST(IdSet, DenseApproxBytesStaysWithinVectorFactor) {
  // The promotion density condition bounds bitmap bytes by 2x the vector
  // bytes at promotion time.
  IdSet Set(/*PromoteThreshold=*/48);
  for (uint32_t Value = 0; Value < 48; ++Value)
    Set.insert(Value * 2); // Density: 32 elements per 64-bit word span.
  ASSERT_TRUE(Set.isDense());
  EXPECT_LE(Set.approxBytes(), 2 * 48 * sizeof(uint32_t));
}

TEST(IdSet, DefaultThresholdBoundary47_48_49) {
  // The default-threshold promotion boundary, pinned element by element:
  // 47 consecutive handles stay a sorted vector, the 48th insert promotes
  // (density 48 elements in one word span is ample), the 49th extends the
  // bitmap.  Contents and order must be identical across the flip.
  static_assert(IdSet::DefaultPromoteThreshold == 48,
                "boundary test tracks the default threshold");
  IdSet Set; // Default threshold.
  std::vector<uint32_t> Expected;
  for (uint32_t Value = 0; Value < 47; ++Value) {
    EXPECT_TRUE(Set.insert(Value));
    Expected.push_back(Value);
  }
  EXPECT_FALSE(Set.isDense());
  EXPECT_EQ(Set.size(), 47u);
  EXPECT_EQ(contents(Set), Expected);

  EXPECT_TRUE(Set.insert(47));
  Expected.push_back(47);
  EXPECT_TRUE(Set.isDense());
  EXPECT_EQ(Set.size(), 48u);
  EXPECT_EQ(contents(Set), Expected);

  EXPECT_TRUE(Set.insert(48));
  Expected.push_back(48);
  EXPECT_TRUE(Set.isDense());
  EXPECT_EQ(Set.size(), 49u);
  EXPECT_EQ(contents(Set), Expected);

  // Duplicates at and around the boundary never double-count.
  EXPECT_FALSE(Set.insert(47));
  EXPECT_FALSE(Set.insert(48));
  EXPECT_EQ(Set.size(), 49u);
  std::vector<uint32_t> Iterated(Set.begin(), Set.end());
  EXPECT_EQ(Iterated, Expected);
}

TEST(IdSet, UnionDeltaAcrossDefaultThresholdBoundary) {
  // A batched union that lands the set exactly on, then one past, the
  // default promotion boundary: deltas must stay exact while the
  // representation flips mid-sequence.
  IdSet Set;
  SortedIdSet First47, Delta;
  for (uint32_t Value = 0; Value < 47; ++Value)
    First47.push_back(Value);
  EXPECT_EQ(Set.unionWithDelta(First47, Delta), 47u);
  EXPECT_EQ(Delta, First47);
  EXPECT_FALSE(Set.isDense());

  Delta.clear();
  EXPECT_EQ(Set.unionWithDelta(SortedIdSet{46, 47}, Delta), 1u);
  EXPECT_EQ(Delta, SortedIdSet{47});
  EXPECT_EQ(Set.size(), 48u);

  Delta.clear();
  EXPECT_EQ(Set.unionWithDelta(SortedIdSet{48}, Delta), 1u);
  EXPECT_EQ(Delta, SortedIdSet{48});
  EXPECT_EQ(Set.size(), 49u);
  for (uint32_t Value = 0; Value < 49; ++Value)
    EXPECT_TRUE(Set.contains(Value));
  EXPECT_FALSE(Set.contains(49));
}

TEST(IdSet, RandomOpInterleavingsMatchStdSetModel) {
  // Property test: arbitrary interleavings of insert / unionWithDelta /
  // clear across random thresholds must track a std::set model exactly,
  // and every reported union delta must be exactly the new elements.
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    Rng R(0x1d5e7 + Seed);
    uint32_t Threshold = R.range(1, 64);
    uint32_t KeyRange = R.range(64, 4096);
    IdSet Set(Threshold);
    std::set<uint32_t> Model;

    for (int Op = 0; Op < 400; ++Op) {
      switch (R.below(8)) {
      case 0: { // Occasional sparse outlier insert.
        uint32_t Value = std::numeric_limits<uint32_t>::max() - R.below(1000);
        EXPECT_EQ(Set.insert(Value), Model.insert(Value).second);
        break;
      }
      case 1: { // Union with a random batch (sorted range overload).
        SortedIdSet Batch;
        for (uint32_t Index = R.below(100); Index-- > 0;)
          Batch.push_back(R.below(KeyRange));
        std::sort(Batch.begin(), Batch.end());
        Batch.erase(std::unique(Batch.begin(), Batch.end()), Batch.end());
        std::vector<uint32_t> ExpectedDelta;
        for (uint32_t Value : Batch)
          if (Model.insert(Value).second)
            ExpectedDelta.push_back(Value);
        SortedIdSet Delta;
        EXPECT_EQ(Set.unionWithDelta(Batch, Delta), ExpectedDelta.size());
        EXPECT_EQ(Delta, ExpectedDelta);
        break;
      }
      case 2: { // Union with a random IdSet.
        IdSet Other(R.range(1, 32));
        for (uint32_t Index = R.below(150); Index-- > 0;)
          Other.insert(R.below(KeyRange));
        std::vector<uint32_t> ExpectedDelta;
        for (uint32_t Value : Other)
          if (Model.insert(Value).second)
            ExpectedDelta.push_back(Value);
        SortedIdSet Delta;
        EXPECT_EQ(Set.unionWithDelta(Other, Delta), ExpectedDelta.size());
        EXPECT_EQ(Delta, ExpectedDelta);
        break;
      }
      case 3: { // Membership probe.
        uint32_t Value = R.below(KeyRange);
        EXPECT_EQ(Set.contains(Value), Model.count(Value) == 1);
        break;
      }
      case 4: {
        if (R.below(20) == 0) { // Rare full reset.
          Set.clear();
          Model.clear();
        }
        break;
      }
      default: { // Plain insert.
        uint32_t Value = R.below(KeyRange);
        EXPECT_EQ(Set.insert(Value), Model.insert(Value).second);
        break;
      }
      }
    }

    EXPECT_EQ(Set.size(), Model.size());
    EXPECT_EQ(contents(Set),
              std::vector<uint32_t>(Model.begin(), Model.end()));
    std::vector<uint32_t> Iterated(Set.begin(), Set.end());
    EXPECT_EQ(Iterated, std::vector<uint32_t>(Model.begin(), Model.end()));
  }
}
