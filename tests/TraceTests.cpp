//===- tests/TraceTests.cpp - Tracing and run-report tests ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the structured tracing layer (support/Trace.h), the streaming
/// JSON writer, the machine-readable run-report exports, and the
/// divide-by-zero / degenerate-knob fixes that ride along with them:
///
///   - span nesting and per-name summaries,
///   - counter aggregation across threads,
///   - multi-thread merge determinism (content-identical for any worker
///     count),
///   - valid JSON from both export formats (checked by a tiny in-test
///     recursive-descent parser, so the tests need no external tooling),
///   - a no-allocation assertion for the disabled (no recorder) path,
///   - solver / resilient-driver integration (counters, rung spans, trip
///     instants, normalization notes, win/loss flags),
///   - empty-program statistics, zero-knob options, and empty attempt
///     traces.
///
//===----------------------------------------------------------------------===//

#include "analysis/Reports.h"
#include "analysis/Solver.h"
#include "analysis/Statistics.h"
#include "introspect/Resilient.h"
#include "ir/ProgramBuilder.h"
#include "support/Cancellation.h"
#include "support/Json.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <new>
#include <sstream>

using namespace intro;
using intro::testing::makeTwoBoxes;
using intro::testing::TwoBoxes;

//===----------------------------------------------------------------------===//
// Allocation counting (for the disabled-path no-allocation assertion).
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GlobalAllocCount{0};
} // namespace

// GCC's allocator pairing analysis cannot see that these replacements form
// a matched malloc/free pair, and warns at inlined call sites.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *operator new(std::size_t Size) {
  GlobalAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *Ptr = std::malloc(Size ? Size : 1))
    return Ptr;
  throw std::bad_alloc();
}

void operator delete(void *Ptr) noexcept { std::free(Ptr); }
void operator delete(void *Ptr, std::size_t) noexcept { std::free(Ptr); }

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON validator: enough of RFC 8259 to reject malformed output.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : Text(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek('}'))
      return true;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"' || !string())
        return false;
      skipWs();
      if (!peek(':'))
        return false;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek('}'))
        return true;
      if (!peek(','))
        return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek(']'))
      return true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek(']'))
        return true;
      if (!peek(','))
        return false;
    }
  }

  bool string() {
    ++Pos; // '"'
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // Unescaped control character.
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos];
        if (E == 'u') {
          for (int Digit = 0; Digit < 4; ++Digit)
            if (++Pos >= Text.size() || !std::isxdigit(
                    static_cast<unsigned char>(Text[Pos])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek('-')) {
    }
    if (!digits())
      return false;
    if (peek('.') && !digits())
      return false;
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digits())
        return false;
    }
    return Pos > Start;
  }

  bool digits() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *Word) {
    size_t Length = std::strlen(Word);
    if (Text.compare(Pos, Length, Word) != 0)
      return false;
    Pos += Length;
    return true;
  }

  bool peek(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  const std::string &Text;
  size_t Pos = 0;
};

bool isValidJson(const std::string &Text) {
  return JsonChecker(Text).valid();
}

std::string deterministicSummary(trace::Recorder &Rec) {
  std::ostringstream Out;
  JsonWriter J(Out);
  Rec.writeDeterministicSummary(J);
  return Out.str();
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriterTest, NestedStructureIsValid) {
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("name");
  J.value("qu\"ote\\back\nline");
  J.key("count");
  J.value(uint64_t(42));
  J.key("negative");
  J.value(int64_t(-7));
  J.key("pi");
  J.value(3.25);
  J.key("flag");
  J.value(true);
  J.key("nothing");
  J.null();
  J.key("list");
  J.beginArray();
  J.value(uint64_t(1));
  J.beginObject();
  J.endObject();
  J.beginArray();
  J.endArray();
  J.endArray();
  J.endObject();
  EXPECT_TRUE(isValidJson(Out.str())) << Out.str();
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginArray();
  J.value(std::numeric_limits<double>::quiet_NaN());
  J.value(std::numeric_limits<double>::infinity());
  J.value(-std::numeric_limits<double>::infinity());
  J.value(1.5);
  J.endArray();
  EXPECT_EQ(Out.str(), "[null,null,null,1.5]");
}

//===----------------------------------------------------------------------===//
// Recorder basics
//===----------------------------------------------------------------------===//

TEST(TraceTest, SpanNestingAndSummaries) {
  trace::Recorder Rec;
  Rec.start();
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner");
      TRACE_COUNTER("work", 2);
    }
    {
      TRACE_SPAN("inner");
      TRACE_COUNTER("work", 3);
    }
  }
  Rec.stop();

  const auto &Spans = Rec.spans();
  ASSERT_EQ(Spans.count("outer"), 1u);
  ASSERT_EQ(Spans.count("inner"), 1u);
  EXPECT_EQ(Spans.at("outer").Count, 1u);
  EXPECT_EQ(Spans.at("inner").Count, 2u);
  // The outer span encloses both inner spans on the monotonic clock.
  EXPECT_GE(Spans.at("outer").TotalNs, Spans.at("inner").TotalNs);

  EXPECT_EQ(Rec.counters().at("work"), 5u);

  // Event stream: B(outer) B(inner) E(inner) B(inner) E(inner) E(outer).
  const auto &Events = Rec.events();
  ASSERT_EQ(Events.size(), 6u);
  EXPECT_EQ(Events.front().K, trace::Event::Kind::Begin);
  EXPECT_STREQ(Events.front().Name, "outer");
  EXPECT_EQ(Events.back().K, trace::Event::Kind::End);
  EXPECT_STREQ(Events.back().Name, "outer");
}

TEST(TraceTest, InstantValuesSum) {
  trace::Recorder Rec;
  Rec.start();
  TRACE_INSTANT("mark", 10);
  TRACE_INSTANT("mark", 32);
  Rec.stop();
  EXPECT_EQ(Rec.instants().at("mark").Count, 2u);
  EXPECT_EQ(Rec.instants().at("mark").Sum, 42u);
}

TEST(TraceTest, NoRecorderMeansNoEffect) {
  ASSERT_EQ(trace::active(), nullptr);
  TRACE_SPAN("ignored");
  TRACE_COUNTER("ignored", 1);
  TRACE_INSTANT("ignored", 1);
  EXPECT_EQ(trace::active(), nullptr);
}

TEST(TraceTest, CounterAggregationAcrossThreads) {
  trace::Recorder Rec;
  Rec.start();
  {
    ThreadPool Pool(4);
    std::vector<std::future<void>> Tasks;
    for (int Index = 0; Index < 16; ++Index)
      Tasks.push_back(Pool.submit([] {
        TRACE_COUNTER("thread.items", 5);
        TRACE_COUNTER("thread.calls", 1);
      }));
    for (auto &Task : Tasks)
      Task.get();
  } // Pool joins its workers here: the flush happens-before edge.
  Rec.stop();
  EXPECT_EQ(Rec.counters().at("thread.items"), 80u);
  EXPECT_EQ(Rec.counters().at("thread.calls"), 16u);
}

// The tentpole determinism property: the merged summary (names, counters,
// span/instant counts and sums) is byte-identical for any worker count.
TEST(TraceTest, MergeDeterminismAcrossWorkerCounts) {
  auto RunWorkload = [](unsigned Workers) {
    trace::Recorder Rec;
    Rec.start();
    {
      ThreadPool Pool(Workers);
      std::vector<std::future<void>> Tasks;
      for (uint64_t Index = 0; Index < 12; ++Index)
        Tasks.push_back(Pool.submit([Index] {
          trace::ScopedSpan Span("work.task");
          TRACE_COUNTER("work.items", 3);
          TRACE_INSTANT("work.mark", Index);
        }));
      for (auto &Task : Tasks)
        Task.get();
    }
    Rec.stop();
    return deterministicSummary(Rec);
  };

  std::string At1 = RunWorkload(1);
  std::string At2 = RunWorkload(2);
  std::string At4 = RunWorkload(4);
  EXPECT_EQ(At1, At2);
  EXPECT_EQ(At1, At4);
  EXPECT_TRUE(isValidJson(At1)) << At1;
  // Spot-check the content: 12 span pairs, 36 items, instant sum 0+..+11.
  EXPECT_NE(At1.find("\"work.items\":36"), std::string::npos) << At1;
  EXPECT_NE(At1.find("\"sum\":66"), std::string::npos) << At1;
}

TEST(TraceTest, ChromeTraceIsValidJson) {
  trace::Recorder Rec;
  Rec.start();
  {
    TRACE_SPAN("chrome.span");
    TRACE_INSTANT("chrome.instant", 7);
    TRACE_COUNTER("chrome.counter", 3);
  }
  Rec.stop();
  std::ostringstream Out;
  Rec.writeChromeTrace(Out);
  const std::string Text = Out.str();
  EXPECT_TRUE(isValidJson(Text)) << Text;
  // The object format chrome://tracing expects, with our event names.
  EXPECT_NE(Text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Text.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Text.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceTest, RestartAfterStopRecordsFreshContent) {
  trace::Recorder First;
  First.start();
  TRACE_COUNTER("restart.count", 1);
  First.stop();

  trace::Recorder Second;
  Second.start();
  TRACE_COUNTER("restart.count", 5);
  Second.stop();

  EXPECT_EQ(First.counters().at("restart.count"), 1u);
  EXPECT_EQ(Second.counters().at("restart.count"), 5u);
}

// The disabled path (no recorder installed) must not allocate: it is the
// path every production run without --trace pays at every event site.
TEST(TraceTest, DisabledModeDoesNotAllocate) {
  ASSERT_EQ(trace::active(), nullptr);
  uint64_t Before = GlobalAllocCount.load(std::memory_order_relaxed);
  for (int Index = 0; Index < 1000; ++Index) {
    TRACE_SPAN("disabled.span");
    TRACE_COUNTER("disabled.counter", 1);
    TRACE_INSTANT("disabled.instant", 2);
  }
  uint64_t After = GlobalAllocCount.load(std::memory_order_relaxed);
  EXPECT_EQ(Before, After);
}

//===----------------------------------------------------------------------===//
// Solver integration
//===----------------------------------------------------------------------===//

TEST(TraceSolverTest, SolverEmitsCounters) {
  TwoBoxes T = makeTwoBoxes();
  trace::Recorder Rec;
  Rec.start();
  {
    auto Policy = makeInsensitivePolicy();
    ContextTable Table;
    PointsToResult Result = solvePointsTo(T.Prog, *Policy, Table);
    ASSERT_TRUE(isCompleted(Result.Status));
  }
  Rec.stop();
  const auto &Counters = Rec.counters();
  EXPECT_EQ(Counters.at("solve.runs"), 1u);
  EXPECT_GT(Counters.at("solve.pops"), 0u);
  EXPECT_GT(Counters.at("solve.tuples"), 0u);
  EXPECT_GT(Counters.at("solve.call_graph_edges"), 0u);
  EXPECT_EQ(Rec.spans().at("solve.run").Count, 1u);
}

TEST(TraceSolverTest, BudgetTripEmitsInstant) {
  TwoBoxes T = makeTwoBoxes();
  trace::Recorder Rec;
  Rec.start();
  {
    auto Policy = makeInsensitivePolicy();
    ContextTable Table;
    SolverOptions Options;
    Options.Budget.MaxTuples = 1; // Trips almost immediately.
    PointsToResult Result = solvePointsTo(T.Prog, *Policy, Table, Options);
    ASSERT_EQ(Result.Status, SolveStatus::TupleBudgetExceeded);
  }
  Rec.stop();
  EXPECT_EQ(Rec.instants().count("solve.trip.tuple_budget"), 1u);
}

TEST(TraceSolverTest, CancelIntervalZeroIsClampedAndWorks) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.CancelInterval = 0; // Degenerate modulus; must not divide by zero.
  PointsToResult Result = solvePointsTo(T.Prog, *Policy, Table, Options);
  EXPECT_TRUE(isCompleted(Result.Status));

  // With a pre-cancelled token it must stop immediately (interval clamps to
  // "poll every iteration"), not misbehave.
  CancellationToken Cancel;
  Cancel.cancel();
  ContextTable Table2;
  SolverOptions Cancelled;
  Cancelled.CancelInterval = 0;
  Cancelled.Cancel = &Cancel;
  PointsToResult Stopped = solvePointsTo(T.Prog, *Policy, Table2, Cancelled);
  EXPECT_EQ(Stopped.Status, SolveStatus::Cancelled);
}

TEST(TraceSolverTest, SolverStatsJsonIsValid) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult Result = solvePointsTo(T.Prog, *Policy, Table);
  std::ostringstream Out;
  JsonWriter J(Out);
  writeSolverStatsJson(J, Result.Stats);
  EXPECT_TRUE(isValidJson(Out.str())) << Out.str();
  EXPECT_NE(Out.str().find("\"worklist_pops\":"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Resilient-driver integration: rung spans, notes, win/loss JSON
//===----------------------------------------------------------------------===//

TEST(TraceResilientTest, RungSpansAndWinFlag) {
  TwoBoxes T = makeTwoBoxes();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  trace::Recorder Rec;
  ResilientOutcome Outcome;
  Rec.start();
  Outcome = runResilient(T.Prog, *Refined);
  Rec.stop();

  ASSERT_TRUE(Outcome.completed());
  EXPECT_EQ(Outcome.Level, DegradationLevel::Deep);
  EXPECT_EQ(Rec.spans().at("rung.deep").Count, 1u);

  std::ostringstream Out;
  JsonWriter J(Out);
  writeResilientOutcomeJson(J, Outcome);
  const std::string Text = Out.str();
  EXPECT_TRUE(isValidJson(Text)) << Text;
  // Exactly one attempt won.
  size_t FirstWon = Text.find("\"won\":true");
  ASSERT_NE(FirstWon, std::string::npos);
  EXPECT_EQ(Text.find("\"won\":true", FirstWon + 1), std::string::npos);
}

TEST(TraceResilientTest, PortfolioRecordsDeterministicRungSet) {
  TwoBoxes T = makeTwoBoxes();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  ResilientOptions Options;
  Options.Portfolio = true;
  Options.Workers = 2;
  trace::Recorder Rec;
  Rec.start();
  ResilientOutcome Outcome = runResilient(T.Prog, *Refined, Options);
  Rec.stop();

  ASSERT_TRUE(Outcome.completed());
  EXPECT_EQ(Outcome.Level, DegradationLevel::Deep);
  // The deep rung and the insensitive pre-analysis always race together;
  // each launched rung records exactly one span on its worker thread.
  EXPECT_EQ(Rec.spans().at("rung.deep").Count, 1u);
  EXPECT_EQ(Rec.spans().at("rung.insensitive").Count, 1u);
  EXPECT_EQ(Rec.counters().at("portfolio.rungs_launched"),
            Outcome.Trace.size());
  EXPECT_EQ(Rec.instants().count("portfolio.winner_level"), 1u);
}

TEST(TraceResilientTest, ZeroKnobsProduceNotes) {
  std::vector<std::string> Notes;
  ResilientOptions Options;
  Options.CancelInterval = 0;
  Options.BackoffMultiplier = 0.5;
  Options.Portfolio = true;
  Options.Workers = 0;
  ResilientOptions Normalized = normalizeResilientOptions(Options, Notes);
  EXPECT_EQ(Normalized.CancelInterval, 1u);
  EXPECT_EQ(Normalized.BackoffMultiplier, 1.0);
  EXPECT_GE(Normalized.Workers, 1u);
  EXPECT_EQ(Notes.size(), 3u);
}

TEST(TraceResilientTest, NegativeAndNonFiniteKnobsAreClamped) {
  std::vector<std::string> Notes;
  ResilientOptions Options;
  Options.BackoffMultiplier = -std::numeric_limits<double>::infinity();
  ResilientOptions Normalized = normalizeResilientOptions(Options, Notes);
  EXPECT_EQ(Normalized.BackoffMultiplier, 1.0);
  ASSERT_EQ(Notes.size(), 1u);
  EXPECT_NE(Notes[0].find("BackoffMultiplier"), std::string::npos);
}

TEST(TraceResilientTest, WellFormedOptionsProduceNoNotes) {
  std::vector<std::string> Notes;
  ResilientOptions Options;
  normalizeResilientOptions(Options, Notes);
  EXPECT_TRUE(Notes.empty());
}

TEST(TraceResilientTest, RunCarriesNotesIntoOutcomeAndReport) {
  TwoBoxes T = makeTwoBoxes();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  ResilientOptions Options;
  Options.CancelInterval = 0;
  ResilientOutcome Outcome = runResilient(T.Prog, *Refined, Options);
  ASSERT_TRUE(Outcome.completed());
  ASSERT_EQ(Outcome.Notes.size(), 1u);

  std::ostringstream Out;
  JsonWriter J(Out);
  writeResilientOutcomeJson(J, Outcome);
  EXPECT_NE(Out.str().find("CancelInterval=0"), std::string::npos);
  EXPECT_TRUE(isValidJson(Out.str()));
}

//===----------------------------------------------------------------------===//
// Empty-input robustness (the bugfix sweep)
//===----------------------------------------------------------------------===//

TEST(EmptyInputTest, FormatAttemptTraceEmpty) {
  EXPECT_EQ(formatAttemptTrace(AttemptTrace()), "(no attempts)\n");
}

TEST(EmptyInputTest, AttemptTraceJsonEmpty) {
  std::ostringstream Out;
  JsonWriter J(Out);
  writeAttemptTraceJson(J, AttemptTrace());
  EXPECT_EQ(Out.str(), "[]");
}

TEST(EmptyInputTest, TableWriterNoRows) {
  TableWriter Table({"alpha", "b"});
  std::ostringstream Out;
  Table.print(Out);
  EXPECT_EQ(Out.str(), "| alpha | b |\n|-------|---|\n");
}

TEST(EmptyInputTest, TableWriterNoColumns) {
  TableWriter Table({});
  std::ostringstream Out;
  Table.print(Out);
  EXPECT_EQ(Out.str(), "(empty table)\n");
}

TEST(EmptyInputTest, EmptyProgramStatisticsAreFinite) {
  ProgramBuilder B;
  Program Prog = B.take();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);
  EXPECT_TRUE(isCompleted(Result.Status));

  ContextStatistics Stats = computeContextStatistics(Prog, Result);
  EXPECT_EQ(Stats.ReachableMethods, 0u);
  EXPECT_EQ(Stats.TotalMethodContexts, 0u);
  // The former bug: 0 / 0 propagated NaN into the report tables.
  EXPECT_TRUE(std::isfinite(Stats.MeanContextsPerMethod));
  EXPECT_EQ(Stats.MeanContextsPerMethod, 0.0);
  EXPECT_TRUE(Stats.TopByContexts.empty());
  EXPECT_TRUE(Stats.TopByTuples.empty());

  // And the pretty-printer must render it without degenerate tokens.
  std::ostringstream Out;
  printContextStatistics(Prog, Stats, Out);
  EXPECT_EQ(Out.str().find("nan"), std::string::npos);
  EXPECT_EQ(Out.str().find("inf"), std::string::npos);
}

TEST(EmptyInputTest, EmptyRecorderExportsAreValid) {
  trace::Recorder Rec;
  Rec.start();
  Rec.stop();
  std::ostringstream Chrome;
  Rec.writeChromeTrace(Chrome);
  EXPECT_TRUE(isValidJson(Chrome.str())) << Chrome.str();
  std::string Summary = deterministicSummary(Rec);
  EXPECT_TRUE(isValidJson(Summary)) << Summary;
  EXPECT_EQ(Summary, "{\"counters\":{},\"spans\":[],\"instants\":[]}");
}

} // namespace
