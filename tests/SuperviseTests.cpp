//===- tests/SuperviseTests.cpp - Supervision subsystem tests -------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the process-isolation layer (support/Subprocess.h) and the
/// supervised batch runner (supervise/Supervise.h): every outcome class is
/// demonstrated with an injected-fault child, classification / retry /
/// ladder escalation are checked end to end, the batch report's
/// deterministic section is proven byte-identical across retry timing and
/// worker counts, and each process-spawning test asserts that no child was
/// leaked (waitpid accounting).
///
//===----------------------------------------------------------------------===//

#include "supervise/Supervise.h"

#include "analysis/Reports.h"
#include "support/ExitCodes.h"
#include "support/Json.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SUPERVISE_TESTS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SUPERVISE_TESTS_SANITIZED 1
#endif
#endif

using namespace intro;
using namespace intro::supervise;

namespace {

/// The classic two-boxes program: parses, validates, and every ladder rung
/// solves it in well under a millisecond.
const char *const TinySource = R"(
class Object
class Box extends Object {
  field f
  method set(p) {
    this.Box#f = p
  }
  method get() -> r {
    r = this.Box#f
  }
}
class A extends Object
class B extends Object
class Main extends Object {
  entry static method main() {
    b1 = new Box
    b2 = new Box
    a = new A
    b = new B
    b1.set(a)
    b2.set(b)
    oa = b1.get()
    ob = b2.get()
    ca = (A) oa
  }
}
)";

/// Deliberately malformed: unclosed class body and call parenthesis.
const char *const BrokenSource = R"(
class Object
class Leaky extends Object {
  method oops(p) {
    q = oops(p
)";

/// Batch options tuned for tests: a generous wall deadline so nothing runs
/// away, and a no-op sleeper so retries do not actually wait.
BatchOptions fastOptions() {
  BatchOptions Options;
  Options.Limits.WallDeadlineSeconds = 60;
  Options.SleepMs = [](double) {};
  return Options;
}

JobSpec tinyJob(std::string Name = "tiny") {
  JobSpec Job;
  Job.Name = std::move(Name);
  Job.Source = TinySource;
  return Job;
}

/// After every supervised scenario the parent must have reaped every child
/// it forked: waitpid(-1) with WNOHANG must report "no children at all".
void expectNoLeakedChildren() {
  int Status = 0;
  errno = 0;
  EXPECT_EQ(waitpid(-1, &Status, WNOHANG), -1)
      << "a child process was leaked or left unreaped";
  EXPECT_EQ(errno, ECHILD);
}

/// Serializes the batch report and returns (full document, deterministic
/// section).  The deterministic slice is everything between the
/// "deterministic" key and the "timing" key — raw bytes, so a comparison
/// between two runs is a byte-identity check, not a structural one.
std::pair<std::string, std::string>
renderReport(const BatchResult &Batch, const BatchOptions &Options) {
  std::ostringstream Out;
  JsonWriter J(Out);
  writeBatchReportJson(J, Batch, Options);
  std::string Full = Out.str();
  size_t Begin = Full.find("\"deterministic\"");
  size_t End = Full.find("\"timing\"");
  EXPECT_NE(Begin, std::string::npos);
  EXPECT_NE(End, std::string::npos);
  EXPECT_LT(Begin, End);
  return {Full, Full.substr(Begin, End - Begin)};
}

} // namespace

// --- Process isolation primitive (runSupervisedChild) ------------------------

TEST(Subprocess, CleanChildExitsZeroAndDeliversOutput) {
  ChildLimits Limits;
  ChildResult Result = runSupervisedChild(Limits, [](std::ostream &Out) {
    Out << "hello from the child\n";
    return 0;
  });
  EXPECT_EQ(Result.Status, ChildStatus::CleanExit);
  EXPECT_EQ(Result.ExitCode, 0);
  EXPECT_EQ(Result.Output, "hello from the child\n");
  expectNoLeakedChildren();
}

TEST(Subprocess, NonzeroChildExitIsReported) {
  ChildLimits Limits;
  ChildResult Result =
      runSupervisedChild(Limits, [](std::ostream &) { return 5; });
  EXPECT_EQ(Result.Status, ChildStatus::NonzeroExit);
  EXPECT_EQ(Result.ExitCode, 5);
  expectNoLeakedChildren();
}

TEST(Subprocess, SignalledChildIsReportedWithItsSignal) {
  ChildLimits Limits;
  ChildResult Result = runSupervisedChild(Limits, [](std::ostream &) {
    raise(SIGKILL);
    return 0;
  });
  EXPECT_EQ(Result.Status, ChildStatus::Signalled);
  EXPECT_EQ(Result.TermSignal, SIGKILL);
  expectNoLeakedChildren();
}

TEST(Subprocess, BadAllocInChildBecomesOutOfMemory) {
  // The harness maps std::bad_alloc onto the dedicated OOM exit code, so
  // allocation failure is distinguishable from an arbitrary nonzero exit.
  ChildLimits Limits;
  ChildResult Result = runSupervisedChild(
      Limits, [](std::ostream &) -> int { throw std::bad_alloc(); });
  EXPECT_EQ(Result.Status, ChildStatus::OutOfMemory);
  EXPECT_EQ(Result.ExitCode, OomExitCode);
  expectNoLeakedChildren();
}

TEST(Subprocess, WatchdogKillsAChildThatSleepsPastTheDeadline) {
  ChildLimits Limits;
  Limits.WallDeadlineSeconds = 0.5;
  ChildResult Result = runSupervisedChild(Limits, [](std::ostream &Out) {
    Out << "about to hang\n";
    Out.flush();
    for (;;)
      usleep(100000);
    return 0;
  });
  EXPECT_EQ(Result.Status, ChildStatus::WatchdogKill);
  EXPECT_EQ(Result.TermSignal, SIGKILL);
  // Output produced before the hang still arrives.
  EXPECT_EQ(Result.Output, "about to hang\n");
  expectNoLeakedChildren();
}

TEST(Subprocess, LargeChildOutputDoesNotDeadlockThePipe) {
  // 1 MiB is far beyond any kernel pipe buffer; the parent must drain
  // concurrently or both sides deadlock.
  constexpr size_t Bytes = 1 << 20;
  ChildLimits Limits;
  Limits.WallDeadlineSeconds = 60; // Converts a deadlock into a failure.
  ChildResult Result = runSupervisedChild(Limits, [](std::ostream &Out) {
    std::string Line(1023, 'x');
    Line += '\n';
    for (size_t Written = 0; Written < Bytes; Written += Line.size())
      Out << Line;
    return 0;
  });
  EXPECT_EQ(Result.Status, ChildStatus::CleanExit);
  EXPECT_EQ(Result.Output.size(), Bytes);
  expectNoLeakedChildren();
}

TEST(Subprocess, ChildStatusNamesAreStable) {
  EXPECT_STREQ(childStatusName(ChildStatus::CleanExit), "clean-exit");
  EXPECT_STREQ(childStatusName(ChildStatus::NonzeroExit), "nonzero-exit");
  EXPECT_STREQ(childStatusName(ChildStatus::Signalled), "signalled");
  EXPECT_STREQ(childStatusName(ChildStatus::OutOfMemory), "out-of-memory");
  EXPECT_STREQ(childStatusName(ChildStatus::WatchdogKill), "watchdog-kill");
}

// --- Classification vocabulary ----------------------------------------------

TEST(Taxonomy, OutcomeClassNamesAreStable) {
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::Clean), "clean");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::AnalysisFailure),
               "analysis_failure");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::BadInput), "bad_input");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::NonzeroExit),
               "nonzero_exit");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::Signalled), "signalled");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::OutOfMemory),
               "out_of_memory");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::WatchdogTimeout),
               "watchdog_timeout");
  EXPECT_STREQ(jobOutcomeClassName(JobOutcomeClass::BadReport), "bad_report");
}

TEST(Taxonomy, OnlyTransientClassesAreRetryable) {
  // Deterministic verdicts reproduce on retry; everything else is worth
  // another launch.
  EXPECT_FALSE(isRetryable(JobOutcomeClass::Clean));
  EXPECT_FALSE(isRetryable(JobOutcomeClass::AnalysisFailure));
  EXPECT_FALSE(isRetryable(JobOutcomeClass::BadInput));
  EXPECT_TRUE(isRetryable(JobOutcomeClass::NonzeroExit));
  EXPECT_TRUE(isRetryable(JobOutcomeClass::Signalled));
  EXPECT_TRUE(isRetryable(JobOutcomeClass::OutOfMemory));
  EXPECT_TRUE(isRetryable(JobOutcomeClass::WatchdogTimeout));
  EXPECT_TRUE(isRetryable(JobOutcomeClass::BadReport));
}

TEST(Taxonomy, EscalateBelowDisablesTheRungAndEverythingStronger) {
  {
    ResilientOptions Options;
    escalateBelow(Options, DegradationLevel::Deep);
    EXPECT_FALSE(Options.AttemptDeep);
    EXPECT_TRUE(Options.AttemptIntroB);
    EXPECT_TRUE(Options.AttemptIntroA);
    EXPECT_EQ(Options.TightenedRounds, 2u);
  }
  {
    ResilientOptions Options;
    escalateBelow(Options, DegradationLevel::IntroA);
    EXPECT_FALSE(Options.AttemptDeep);
    EXPECT_FALSE(Options.AttemptIntroB);
    EXPECT_FALSE(Options.AttemptIntroA);
    EXPECT_EQ(Options.TightenedRounds, 2u);
  }
  {
    ResilientOptions Options;
    escalateBelow(Options, DegradationLevel::TightenedIntroA);
    EXPECT_FALSE(Options.AttemptDeep);
    EXPECT_FALSE(Options.AttemptIntroB);
    EXPECT_FALSE(Options.AttemptIntroA);
    EXPECT_EQ(Options.TightenedRounds, 0u);
  }
  {
    // The floor has nothing below it to resume at.
    ResilientOptions Options;
    escalateBelow(Options, DegradationLevel::Insensitive);
    EXPECT_TRUE(Options.AttemptDeep);
    EXPECT_TRUE(Options.AttemptIntroB);
    EXPECT_TRUE(Options.AttemptIntroA);
    EXPECT_EQ(Options.TightenedRounds, 2u);
  }
}

TEST(Taxonomy, DegradationLevelNamesRoundTrip) {
  for (DegradationLevel Level :
       {DegradationLevel::Deep, DegradationLevel::IntroB,
        DegradationLevel::IntroA, DegradationLevel::TightenedIntroA,
        DegradationLevel::Insensitive}) {
    DegradationLevel Parsed;
    ASSERT_TRUE(degradationLevelFromName(degradationLevelName(Level), Parsed));
    EXPECT_EQ(Parsed, Level);
  }
  DegradationLevel Parsed;
  EXPECT_FALSE(degradationLevelFromName("no-such-rung", Parsed));
  EXPECT_FALSE(degradationLevelFromName("", Parsed));
}

// --- Backoff planning ---------------------------------------------------------

TEST(Backoff, IsAPureFunctionOfItsArguments) {
  RetryPolicy Policy;
  for (uint32_t Attempt = 2; Attempt <= 5; ++Attempt)
    for (size_t Job = 0; Job < 4; ++Job)
      EXPECT_EQ(plannedBackoffMs(Policy, Job, Attempt),
                plannedBackoffMs(Policy, Job, Attempt));
}

TEST(Backoff, StaysWithinTheJitterEnvelopeAndGrows) {
  RetryPolicy Policy;
  Policy.BaseDelayMs = 100;
  Policy.Multiplier = 2.0;
  Policy.JitterFraction = 0.5;
  for (size_t Job = 0; Job < 8; ++Job) {
    double Base = Policy.BaseDelayMs;
    for (uint32_t Attempt = 2; Attempt <= 5; ++Attempt) {
      double Delay = plannedBackoffMs(Policy, Job, Attempt);
      EXPECT_GE(Delay, Base * (1 - Policy.JitterFraction));
      EXPECT_LE(Delay, Base * (1 + Policy.JitterFraction));
      Base *= Policy.Multiplier;
    }
  }
}

TEST(Backoff, ZeroJitterIsExactExponentialBackoff) {
  RetryPolicy Policy;
  Policy.BaseDelayMs = 10;
  Policy.Multiplier = 3.0;
  Policy.JitterFraction = 0;
  EXPECT_DOUBLE_EQ(plannedBackoffMs(Policy, 0, 2), 10);
  EXPECT_DOUBLE_EQ(plannedBackoffMs(Policy, 0, 3), 30);
  EXPECT_DOUBLE_EQ(plannedBackoffMs(Policy, 0, 4), 90);
  // The job index only feeds the jitter, so without jitter it is inert.
  EXPECT_DOUBLE_EQ(plannedBackoffMs(Policy, 7, 3), 30);
}

// --- Supervised jobs: the five outcome classes -------------------------------

TEST(Supervise, CleanJobCompletesAtTheDeepRung) {
  BatchOptions Options = fastOptions();
  JobResult Result = runSupervisedJob(tinyJob(), 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  EXPECT_FALSE(Result.Quarantined);
  ASSERT_EQ(Result.Attempts.size(), 1u);
  EXPECT_EQ(Result.Attempts[0].Status, ChildStatus::CleanExit);
  EXPECT_EQ(Result.Attempts[0].Class, JobOutcomeClass::Clean);
  EXPECT_TRUE(Result.Attempts[0].ReportError.empty());
  EXPECT_FALSE(Result.Attempts[0].Ladder.empty());
  EXPECT_TRUE(Result.ResultCompleted);
  EXPECT_EQ(Result.ResultLevel, "deep");
  expectNoLeakedChildren();
}

TEST(Supervise, BadInputIsQuarantinedWithoutRetry) {
  BatchOptions Options = fastOptions();
  JobSpec Job;
  Job.Name = "broken";
  Job.Source = BrokenSource;
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::BadInput);
  EXPECT_TRUE(Result.Quarantined);
  // Deterministic verdict: exactly one launch, no retries.
  ASSERT_EQ(Result.Attempts.size(), 1u);
  EXPECT_EQ(Result.Attempts[0].ExitCode, ExitBadInput);
  ASSERT_FALSE(Result.InputErrors.empty());
  // Diagnostics carry line numbers for the operator reading the report.
  EXPECT_NE(Result.InputErrors[0].find("line"), std::string::npos);
  expectNoLeakedChildren();
}

TEST(Supervise, NonzeroExitIsRetriedWithAPlannedDelayAndRecovers) {
  BatchOptions Options = fastOptions();
  JobSpec Job = tinyJob("flaky-exit");
  Job.Chaos.Fault = ChaosPlan::Kind::ExitNonzero;
  Job.Chaos.UntilAttempt = 1;
  JobResult Result = runSupervisedJob(Job, 3, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  EXPECT_FALSE(Result.Quarantined);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  EXPECT_EQ(Result.Attempts[0].Class, JobOutcomeClass::NonzeroExit);
  EXPECT_EQ(Result.Attempts[0].Status, ChildStatus::NonzeroExit);
  EXPECT_EQ(Result.Attempts[0].ExitCode, 13);
  // The planned delay is the deterministic schedule entry for retry #2.
  EXPECT_DOUBLE_EQ(Result.Attempts[0].PlannedDelayMs,
                   plannedBackoffMs(Options.Retry, 3, 2));
  EXPECT_EQ(Result.Attempts[1].Class, JobOutcomeClass::Clean);
  EXPECT_DOUBLE_EQ(Result.Attempts[1].PlannedDelayMs, 0);
  // An unexplained exit is not a hard death, so the ladder is not
  // escalated: the retry completes at the deep rung again.
  EXPECT_EQ(Result.ResultLevel, "deep");
  expectNoLeakedChildren();
}

TEST(Supervise, CrashIsClassifiedSignalledAndResumesBelowTheDeathRung) {
  BatchOptions Options = fastOptions();
  JobSpec Job = tinyJob("crashy");
  Job.Chaos.Fault = ChaosPlan::Kind::Crash;
  Job.Chaos.AtLevel = DegradationLevel::Deep;
  // The chaos stays armed on every attempt; only escalation (which skips
  // the deep rung on the retry) lets the job recover.
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  const JobAttempt &First = Result.Attempts[0];
  EXPECT_EQ(First.Status, ChildStatus::Signalled);
  EXPECT_EQ(First.Class, JobOutcomeClass::Signalled);
  EXPECT_EQ(First.TermSignal, SIGKILL);
  // The progress stream told the parent where the body is buried.
  EXPECT_TRUE(First.AnyRungStarted);
  EXPECT_EQ(First.DeepestStartedRung, DegradationLevel::Deep);
  // The relaunch resumed strictly below the death rung.
  EXPECT_EQ(Result.Attempts[1].Class, JobOutcomeClass::Clean);
  EXPECT_EQ(Result.ResultLevel, "introB");
  for (const Attempt &Rung : Result.Attempts[1].Ladder)
    EXPECT_NE(Rung.Level, DegradationLevel::Deep);
  expectNoLeakedChildren();
}

TEST(Supervise, OomUnderAddressSpaceLimitIsClassifiedAndEscapedByRetry) {
#ifdef SUPERVISE_TESTS_SANITIZED
  GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer shadow memory";
#else
  BatchOptions Options = fastOptions();
  Options.Limits.MaxAddressSpaceBytes = 1ull << 30; // 1 GiB.
  JobSpec Job = tinyJob("hungry");
  Job.Chaos.Fault = ChaosPlan::Kind::Oom;
  Job.Chaos.AtLevel = DegradationLevel::Deep;
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  EXPECT_EQ(Result.Attempts[0].Status, ChildStatus::OutOfMemory);
  EXPECT_EQ(Result.Attempts[0].Class, JobOutcomeClass::OutOfMemory);
  EXPECT_TRUE(Result.Attempts[0].AnyRungStarted);
  EXPECT_EQ(Result.Attempts[0].DeepestStartedRung, DegradationLevel::Deep);
  // OOM is a hard death: the retry runs on a tighter rung.
  EXPECT_EQ(Result.ResultLevel, "introB");
  expectNoLeakedChildren();
#endif
}

TEST(Supervise, WatchdogTimeoutIsClassifiedAndEscapedByRetry) {
  BatchOptions Options = fastOptions();
  Options.Limits.WallDeadlineSeconds = 1.0;
  JobSpec Job = tinyJob("spinny");
  Job.Chaos.Fault = ChaosPlan::Kind::Spin;
  Job.Chaos.AtLevel = DegradationLevel::Deep;
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  EXPECT_EQ(Result.Attempts[0].Status, ChildStatus::WatchdogKill);
  EXPECT_EQ(Result.Attempts[0].Class, JobOutcomeClass::WatchdogTimeout);
  EXPECT_TRUE(Result.Attempts[0].AnyRungStarted);
  EXPECT_EQ(Result.Attempts[0].DeepestStartedRung, DegradationLevel::Deep);
  EXPECT_EQ(Result.ResultLevel, "introB");
  expectNoLeakedChildren();
}

TEST(Supervise, GarbageReportIsBadReportAndRetried) {
  BatchOptions Options = fastOptions();
  JobSpec Job = tinyJob("garbled");
  Job.Chaos.Fault = ChaosPlan::Kind::GarbageReport;
  Job.Chaos.UntilAttempt = 1;
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  EXPECT_EQ(Result.Attempts[0].Status, ChildStatus::CleanExit);
  EXPECT_EQ(Result.Attempts[0].Class, JobOutcomeClass::BadReport);
  EXPECT_FALSE(Result.Attempts[0].ReportError.empty());
  expectNoLeakedChildren();
}

TEST(Supervise, TruncatedReportIsBadReportAndRetried) {
  BatchOptions Options = fastOptions();
  JobSpec Job = tinyJob("cutoff");
  Job.Chaos.Fault = ChaosPlan::Kind::TruncatedReport;
  Job.Chaos.UntilAttempt = 1;
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Clean);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  EXPECT_EQ(Result.Attempts[0].Class, JobOutcomeClass::BadReport);
  EXPECT_FALSE(Result.Attempts[0].ReportError.empty());
  expectNoLeakedChildren();
}

TEST(Supervise, PersistentFailureExhaustsRetriesAndQuarantines) {
  BatchOptions Options = fastOptions();
  Options.Retry.MaxAttempts = 3;
  JobSpec Job = tinyJob("doomed");
  Job.Chaos.Fault = ChaosPlan::Kind::ExitNonzero; // Fires on every attempt.
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::NonzeroExit);
  EXPECT_TRUE(Result.Quarantined);
  ASSERT_EQ(Result.Attempts.size(), 3u);
  for (const JobAttempt &A : Result.Attempts)
    EXPECT_EQ(A.Class, JobOutcomeClass::NonzeroExit);
  // No retry follows the last attempt, so no delay is planned for it.
  EXPECT_GT(Result.Attempts[0].PlannedDelayMs, 0);
  EXPECT_GT(Result.Attempts[1].PlannedDelayMs, 0);
  EXPECT_DOUBLE_EQ(Result.Attempts[2].PlannedDelayMs, 0);
  expectNoLeakedChildren();
}

TEST(Supervise, PersistentCrashAtTheFloorCannotEscalateAndQuarantines) {
  // The insensitive pre-analysis is the ladder floor; a crash there has
  // nothing below it to resume at, so every retry dies the same way.  The
  // upper rungs are disabled so the floor is actually reached (a tiny
  // program otherwise completes at the deep rung and never runs it).
  BatchOptions Options = fastOptions();
  Options.Ladder.AttemptDeep = false;
  Options.Ladder.AttemptIntroB = false;
  Options.Ladder.AttemptIntroA = false;
  Options.Ladder.TightenedRounds = 0;
  Options.Retry.MaxAttempts = 2;
  JobSpec Job = tinyJob("floor-crash");
  Job.Chaos.Fault = ChaosPlan::Kind::Crash;
  Job.Chaos.AtLevel = DegradationLevel::Insensitive;
  JobResult Result = runSupervisedJob(Job, 0, Options);
  EXPECT_EQ(Result.FinalClass, JobOutcomeClass::Signalled);
  EXPECT_TRUE(Result.Quarantined);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  for (const JobAttempt &A : Result.Attempts) {
    EXPECT_EQ(A.Class, JobOutcomeClass::Signalled);
    EXPECT_TRUE(A.AnyRungStarted);
    EXPECT_EQ(A.DeepestStartedRung, DegradationLevel::Insensitive);
  }
  expectNoLeakedChildren();
}

// --- Batches and the deterministic report ------------------------------------

namespace {

/// A mixed batch exercising clean, bad-input, crash-then-recover, and
/// exit-then-recover jobs in one run.
std::vector<JobSpec> mixedBatch() {
  std::vector<JobSpec> Jobs;
  Jobs.push_back(tinyJob("alpha"));
  JobSpec Broken;
  Broken.Name = "broken";
  Broken.Source = BrokenSource;
  Jobs.push_back(Broken);
  JobSpec Crashy = tinyJob("crashy");
  Crashy.Chaos.Fault = ChaosPlan::Kind::Crash;
  Crashy.Chaos.AtLevel = DegradationLevel::Deep;
  Crashy.Chaos.UntilAttempt = 1;
  Jobs.push_back(Crashy);
  JobSpec Flaky = tinyJob("flaky");
  Flaky.Chaos.Fault = ChaosPlan::Kind::ExitNonzero;
  Flaky.Chaos.UntilAttempt = 1;
  Jobs.push_back(Flaky);
  return Jobs;
}

} // namespace

TEST(Batch, ResultsArriveInInputOrderRegardlessOfWorkers) {
  std::vector<JobSpec> Jobs = mixedBatch();
  BatchOptions Options = fastOptions();
  Options.Workers = 4;
  BatchResult Batch = runSupervisedBatch(Jobs, Options);
  ASSERT_EQ(Batch.Jobs.size(), Jobs.size());
  for (size_t Index = 0; Index < Jobs.size(); ++Index)
    EXPECT_EQ(Batch.Jobs[Index].Name, Jobs[Index].Name);
  EXPECT_EQ(Batch.Jobs[0].FinalClass, JobOutcomeClass::Clean);
  EXPECT_EQ(Batch.Jobs[1].FinalClass, JobOutcomeClass::BadInput);
  EXPECT_EQ(Batch.Jobs[2].FinalClass, JobOutcomeClass::Clean);
  EXPECT_EQ(Batch.Jobs[3].FinalClass, JobOutcomeClass::Clean);
  expectNoLeakedChildren();
}

TEST(Batch, DeterministicSectionIsByteIdenticalAcrossTimingAndWorkers) {
  std::vector<JobSpec> Jobs = mixedBatch();

  // Run 1: serial, no sleeping at all.
  BatchOptions Fast = fastOptions();
  Fast.Workers = 1;
  BatchResult First = runSupervisedBatch(Jobs, Fast);

  // Run 2: parallel supervisors and a sleeper that actually waits (scaled
  // down), i.e. completely different retry timing.
  BatchOptions Slow = fastOptions();
  Slow.Workers = 4;
  Slow.SleepMs = [](double Ms) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long>(Ms * 10)));
  };
  BatchResult Second = runSupervisedBatch(Jobs, Slow);

  auto [FullFirst, DetFirst] = renderReport(First, Fast);
  auto [FullSecond, DetSecond] = renderReport(Second, Slow);
  EXPECT_EQ(DetFirst, DetSecond)
      << "deterministic report section depends on timing or workers";

  // Both documents are valid JSON carrying the schema marker.
  for (const std::string &Full : {FullFirst, FullSecond}) {
    JsonParseResult Parsed = parseJson(Full);
    ASSERT_TRUE(Parsed.ok()) << Parsed.Error;
    std::string Schema;
    ASSERT_TRUE(Parsed.Value.getString("schema", Schema));
    EXPECT_EQ(Schema, "intro-batch-report-v1");
  }
  expectNoLeakedChildren();
}

TEST(Batch, ReportTotalsMatchTheJobRecords) {
  std::vector<JobSpec> Jobs = mixedBatch();
  BatchOptions Options = fastOptions();
  BatchResult Batch = runSupervisedBatch(Jobs, Options);
  auto [Full, Det] = renderReport(Batch, Options);
  JsonParseResult Parsed = parseJson(Full);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;

  const JsonValue *Deterministic = Parsed.Value.get("deterministic");
  ASSERT_NE(Deterministic, nullptr);
  const JsonValue *JobsJson = Deterministic->get("jobs");
  ASSERT_NE(JobsJson, nullptr);
  ASSERT_TRUE(JobsJson->isArray());
  EXPECT_EQ(JobsJson->size(), Jobs.size());

  const JsonValue *Totals = Deterministic->get("totals");
  ASSERT_NE(Totals, nullptr);
  uint64_t TotalJobs = 0, Quarantined = 0, Retries = 0, Clean = 0, Bad = 0;
  ASSERT_TRUE(Totals->getUint("jobs", TotalJobs));
  ASSERT_TRUE(Totals->getUint("quarantined", Quarantined));
  ASSERT_TRUE(Totals->getUint("retries", Retries));
  ASSERT_TRUE(Totals->getUint("clean", Clean));
  ASSERT_TRUE(Totals->getUint("bad_input", Bad));
  EXPECT_EQ(TotalJobs, Jobs.size());
  EXPECT_EQ(Quarantined, 1u); // Only the broken input.
  EXPECT_EQ(Clean, 3u);
  EXPECT_EQ(Bad, 1u);
  uint64_t ExpectedRetries = 0;
  for (const JobResult &Job : Batch.Jobs)
    ExpectedRetries += Job.Attempts.size() - 1;
  EXPECT_EQ(Retries, ExpectedRetries);

  // Wall-clock values live only in the timing section.
  EXPECT_EQ(Det.find("\"seconds\""), std::string::npos);
  EXPECT_EQ(Det.find("total_seconds"), std::string::npos);
  expectNoLeakedChildren();
}

// --- Options / trace serialization round trips -------------------------------

TEST(ResilientJson, OptionsSurviveARoundTrip) {
  ResilientOptions Options;
  Options.DeepBudget.MaxTuples = 12345;
  Options.DeepBudget.MaxSeconds = 7.5;
  Options.RefinedBudget.MaxBytes = 1 << 20;
  Options.AttemptDeep = false;
  Options.TightenedRounds = 5;
  Options.BackoffMultiplier = 2.5;
  Options.ParamsA.K = 9;
  Options.ParamsB.P = 11;
  Options.CancelInterval = 17;
  Options.Portfolio = true;
  Options.Workers = 3;
  Options.faultsFor(DegradationLevel::IntroB).FailAtPop = 42;
  Options.faultsFor(DegradationLevel::IntroB).FailStatus =
      SolveStatus::TimeBudgetExceeded;

  std::ostringstream Out;
  JsonWriter J(Out);
  writeResilientOptionsJson(J, Options);
  JsonParseResult Parsed = parseJson(Out.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;

  ResilientOptions Back;
  std::string Error;
  ASSERT_TRUE(parseResilientOptionsJson(Parsed.Value, Back, Error)) << Error;

  // Re-serializing the decoded options reproduces the exact bytes: the
  // JSON form is canonical for everything it carries.
  std::ostringstream Out2;
  JsonWriter J2(Out2);
  writeResilientOptionsJson(J2, Back);
  EXPECT_EQ(Out.str(), Out2.str());

  EXPECT_EQ(Back.DeepBudget.MaxTuples, Options.DeepBudget.MaxTuples);
  EXPECT_EQ(Back.AttemptDeep, false);
  EXPECT_EQ(Back.TightenedRounds, 5u);
  EXPECT_EQ(Back.Workers, 3u);
  EXPECT_EQ(Back.faultsFor(DegradationLevel::IntroB).FailAtPop, 42u);
  EXPECT_EQ(Back.faultsFor(DegradationLevel::IntroB).FailStatus,
            SolveStatus::TimeBudgetExceeded);
}

TEST(ResilientJson, OptionsParserRejectsBadNamesButIgnoresUnknownKeys) {
  {
    JsonParseResult Parsed =
        parseJson("{\"unknown_key\": 1, \"attempt_deep\": false}");
    ASSERT_TRUE(Parsed.ok());
    ResilientOptions Back;
    std::string Error;
    EXPECT_TRUE(parseResilientOptionsJson(Parsed.Value, Back, Error)) << Error;
    EXPECT_FALSE(Back.AttemptDeep);
  }
  {
    JsonParseResult Parsed = parseJson(
        "{\"level_faults\": [{\"level\": \"bogus\", \"fail_at_pop\": 1}]}");
    ASSERT_TRUE(Parsed.ok());
    ResilientOptions Back;
    std::string Error;
    EXPECT_FALSE(parseResilientOptionsJson(Parsed.Value, Back, Error));
    EXPECT_FALSE(Error.empty());
  }
}

TEST(ResilientJson, AttemptTraceSurvivesARoundTrip) {
  AttemptTrace Trace;
  Attempt First;
  First.Level = DegradationLevel::Deep;
  First.AnalysisName = "2objH";
  First.Status = SolveStatus::TupleBudgetExceeded;
  First.Stats.WorklistPops = 99;
  First.Seconds = 1.25;
  Trace.push_back(First);
  Attempt Second;
  Second.Level = DegradationLevel::TightenedIntroA;
  Second.AnalysisName = "introA";
  Second.Status = SolveStatus::Completed;
  Second.TightenedRound = 2;
  Trace.push_back(Second);

  std::ostringstream Out;
  JsonWriter J(Out);
  writeAttemptTraceJson(J, Trace);
  JsonParseResult Parsed = parseJson(Out.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;

  AttemptTrace Back;
  std::string Error;
  ASSERT_TRUE(parseAttemptTraceJson(Parsed.Value, Back, Error)) << Error;
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back[0].Level, DegradationLevel::Deep);
  EXPECT_EQ(Back[0].AnalysisName, "2objH");
  EXPECT_EQ(Back[0].Status, SolveStatus::TupleBudgetExceeded);
  EXPECT_EQ(Back[0].Stats.WorklistPops, 99u);
  EXPECT_EQ(Back[1].Level, DegradationLevel::TightenedIntroA);
  EXPECT_EQ(Back[1].TightenedRound, 2u);
}

TEST(ResilientJson, AttemptTraceParserReportsThePositionOfBadEntries) {
  JsonParseResult Parsed = parseJson(
      "[{\"level\": \"deep\", \"status\": \"Completed\"},"
      " {\"level\": \"deep\", \"status\": \"frobnicated\"}]");
  ASSERT_TRUE(Parsed.ok());
  AttemptTrace Back;
  std::string Error;
  EXPECT_FALSE(parseAttemptTraceJson(Parsed.Value, Back, Error));
  EXPECT_NE(Error.find("attempt 2"), std::string::npos) << Error;
}

TEST(ResilientJson, SolverStatsRoundTrip) {
  SolverStats Stats;
  Stats.VarPointsToTuples = 10;
  Stats.FieldPointsToTuples = 20;
  Stats.WorklistPops = 30;
  Stats.NumContexts = 40;
  Stats.Seconds = 0.5;

  std::ostringstream Out;
  JsonWriter J(Out);
  writeSolverStatsJson(J, Stats);
  JsonParseResult Parsed = parseJson(Out.str());
  ASSERT_TRUE(Parsed.ok()) << Parsed.Error;

  SolverStats Back;
  ASSERT_TRUE(parseSolverStatsJson(Parsed.Value, Back));
  EXPECT_EQ(Back.VarPointsToTuples, 10u);
  EXPECT_EQ(Back.FieldPointsToTuples, 20u);
  EXPECT_EQ(Back.WorklistPops, 30u);
  EXPECT_EQ(Back.NumContexts, 40u);
  EXPECT_DOUBLE_EQ(Back.Seconds, 0.5);

  JsonParseResult NotAnObject = parseJson("[1, 2]");
  ASSERT_TRUE(NotAnObject.ok());
  EXPECT_FALSE(parseSolverStatsJson(NotAnObject.Value, Back));
}

// --- The JSON reader under hostile input -------------------------------------
//
// The supervisor feeds whatever bytes a (possibly dying) child wrote into
// parseJson, so the reader must reject garbage with a diagnostic instead
// of crashing or looping.

TEST(JsonReader, TruncatedDocumentsFailWithADiagnostic) {
  for (const char *Text :
       {"", "{", "[1, 2", "{\"a\": ", "\"unterminated", "{\"a\": 1,", "tru"}) {
    JsonParseResult Parsed = parseJson(Text);
    EXPECT_FALSE(Parsed.ok()) << "accepted: " << Text;
    EXPECT_FALSE(Parsed.Error.empty());
  }
}

TEST(JsonReader, BinaryGarbageFailsCleanly) {
  std::string Garbage = "\x01\x02{{{not json\xff\xfe\n";
  JsonParseResult Parsed = parseJson(Garbage);
  EXPECT_FALSE(Parsed.ok());
  std::string WithNul = std::string("{\"a\": \"b") + '\0' + "\"}";
  EXPECT_FALSE(parseJson(WithNul).ok());
}

TEST(JsonReader, ErrorsCarryTheLineNumber) {
  JsonParseResult Parsed = parseJson("{\n  \"a\": 1,\n  \"b\": !\n}");
  ASSERT_FALSE(Parsed.ok());
  EXPECT_EQ(Parsed.Line, 3u);
}

TEST(JsonReader, NestingBeyondTheDepthCapIsRejected) {
  std::string Deep(100000, '[');
  JsonParseResult Parsed = parseJson(Deep);
  EXPECT_FALSE(Parsed.ok());
  // A legal document within the cap still parses.
  std::string Ok = std::string(64, '[') + std::string(64, ']');
  EXPECT_TRUE(parseJson(Ok).ok());
}

// --- Job-name disambiguation -------------------------------------------------

TEST(JobNames, UniqueNamesAreLeftAlone) {
  std::vector<JobSpec> Jobs;
  for (const char *Name : {"alpha", "beta", "gamma"})
    Jobs.push_back(tinyJob(Name));
  disambiguateJobNames(Jobs);
  EXPECT_EQ(Jobs[0].Name, "alpha");
  EXPECT_EQ(Jobs[1].Name, "beta");
  EXPECT_EQ(Jobs[2].Name, "gamma");
}

TEST(JobNames, BasenameCollisionsGetOrderedSuffixes) {
  // Two inputs from different directories sharing a basename used to
  // collide: one quarantine copy silently overwrote the other.  The later
  // duplicates get ".2", ".3", ... in input order; the first keeps the
  // plain name.
  std::vector<JobSpec> Jobs;
  for (const char *Name : {"app", "lib", "app", "app"})
    Jobs.push_back(tinyJob(Name));
  disambiguateJobNames(Jobs);
  EXPECT_EQ(Jobs[0].Name, "app");
  EXPECT_EQ(Jobs[1].Name, "lib");
  EXPECT_EQ(Jobs[2].Name, "app.2");
  EXPECT_EQ(Jobs[3].Name, "app.3");
}

TEST(JobNames, SuffixesSkipLiteralNamesAlreadyTaken) {
  // A literal input named "app.2" must not be aliased by a generated
  // suffix, no matter where it appears in the input order.
  std::vector<JobSpec> Jobs;
  for (const char *Name : {"app", "app", "app.2", "app"})
    Jobs.push_back(tinyJob(Name));
  disambiguateJobNames(Jobs);
  EXPECT_EQ(Jobs[0].Name, "app");
  EXPECT_EQ(Jobs[1].Name, "app.3") << "app.2 is taken by a literal input";
  EXPECT_EQ(Jobs[2].Name, "app.2");
  EXPECT_EQ(Jobs[3].Name, "app.4");
  std::set<std::string> Unique;
  for (const JobSpec &Job : Jobs)
    Unique.insert(Job.Name);
  EXPECT_EQ(Unique.size(), Jobs.size());
}

TEST(JobNames, DisambiguationIsDeterministic) {
  std::vector<JobSpec> A, B;
  for (const char *Name : {"x", "x", "x.2", "y", "x", "y"}) {
    A.push_back(tinyJob(Name));
    B.push_back(tinyJob(Name));
  }
  disambiguateJobNames(A);
  disambiguateJobNames(B);
  for (size_t Index = 0; Index < A.size(); ++Index)
    EXPECT_EQ(A[Index].Name, B[Index].Name);
}
