//===- tests/ClientTests.cpp - Escape analysis & statistics tests ---------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Alias.h"
#include "analysis/ContextPolicy.h"
#include "analysis/Escape.h"
#include "analysis/Solver.h"
#include "analysis/Statistics.h"
#include "ir/ProgramBuilder.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace intro;
using namespace intro::testing;

namespace {

PointsToResult solveInsens(const Program &Prog, bool KeepTuples = false) {
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = KeepTuples;
  return solvePointsTo(Prog, *Policy, Table, Options);
}

} // namespace

TEST(Escape, StoredObjectsEscape) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult R = solveInsens(T.Prog);
  EscapeResult E = computeEscape(T.Prog, R);

  // Payloads are stored into box fields and returned from get(): escape.
  EXPECT_TRUE(E.escapes(T.HeapA.index()));
  EXPECT_TRUE(E.escapes(T.HeapB.index()));
  // The boxes themselves only flow into set/get receivers (`this`): they
  // stay captured in main.
  EXPECT_FALSE(E.escapes(T.Box1.index()));
  EXPECT_FALSE(E.escapes(T.Box2.index()));
  EXPECT_EQ(E.ReachableSites, 4u);
  EXPECT_EQ(E.EscapingSites, 2u);
  EXPECT_EQ(E.captured(), 2u);
}

TEST(Escape, ReturnedObjectsEscape) {
  Dispatch T = makeDispatch();
  PointsToResult R = solveInsens(T.Prog);
  EscapeResult E = computeEscape(T.Prog, R);
  // speak() allocates and returns: the sounds escape into main.
  EXPECT_TRUE(E.escapes(T.MeowHeap.index()));
  EXPECT_TRUE(E.escapes(T.WoofHeap.index()));
  // The receivers never leave main.
  EXPECT_FALSE(E.escapes(T.CatHeap.index()));
  EXPECT_FALSE(E.escapes(T.DogHeap.index()));
}

TEST(Escape, ArgumentPassingEscapes) {
  Mixed T = makeMixed();
  PointsToResult R = solveInsens(T.Prog);
  EscapeResult E = computeEscape(T.Prog, R);
  // The payload is passed through identity chains: it escapes.
  EXPECT_TRUE(E.escapes(T.Payload.index()));
}

TEST(Escape, UnreachableAllocationsAreIgnored) {
  Mixed T = makeMixed();
  PointsToResult R = solveInsens(T.Prog);
  EscapeResult E = computeEscape(T.Prog, R);
  // orphan()'s allocation is not part of the reachable population.
  uint32_t Reachable = 0;
  for (uint32_t Heap = 0; Heap < T.Prog.numHeaps(); ++Heap)
    if (R.isReachable(T.Prog.heap(HeapId(Heap)).InMethod))
      ++Reachable;
  EXPECT_EQ(E.ReachableSites, Reachable);
  EXPECT_LT(Reachable, T.Prog.numHeaps());
}

TEST(Escape, ThrownObjectsEscape) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Err = B.cls("Err", Object);
  MethodBuilder Risky = B.method(Object, "risky", 0, /*IsStatic=*/true);
  VarId X = Risky.local("x");
  HeapId ErrHeap = Risky.alloc(X, Err);
  Risky.throwStmt(X);
  VarId Local = Risky.local("l");
  HeapId LocalHeap = Risky.alloc(Local, Object);
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  Main.scall(VarId::invalid(), Risky.id(), {});
  Program Prog = B.take();

  PointsToResult R = solveInsens(Prog);
  EscapeResult E = computeEscape(Prog, R);
  EXPECT_TRUE(E.escapes(ErrHeap.index()));
  EXPECT_FALSE(E.escapes(LocalHeap.index()));
}

TEST(Escape, StaticStoreEscapes) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Cfg = B.cls("Cfg", Object);
  FieldId Global = B.field(Cfg, "g");
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId X = Main.local("x");
  HeapId Stored = Main.alloc(X, Cfg);
  Main.sstore(Global, X);
  VarId Y = Main.local("y");
  HeapId Kept = Main.alloc(Y, Cfg);
  Program Prog = B.take();

  PointsToResult R = solveInsens(Prog);
  EscapeResult E = computeEscape(Prog, R);
  EXPECT_TRUE(E.escapes(Stored.index()));
  EXPECT_FALSE(E.escapes(Kept.index()));
}

TEST(Statistics, CountsContextsAndTuples) {
  TwoBoxes T = makeTwoBoxes();
  auto Policy = makeObjectPolicy(T.Prog, 2, 1);
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table, Options);

  ContextStatistics Stats = computeContextStatistics(T.Prog, R, 3);
  EXPECT_EQ(Stats.ReachableMethods, 3u); // main, set, get.
  // main: 1 ctx; set/get: one per box = 2 each -> 5 pairs.
  EXPECT_EQ(Stats.TotalMethodContexts, 5u);
  EXPECT_EQ(Stats.MaxContextsPerMethod, 2u);
  EXPECT_DOUBLE_EQ(Stats.MeanContextsPerMethod, 5.0 / 3.0);
  ASSERT_FALSE(Stats.TopByContexts.empty());
  EXPECT_EQ(Stats.TopByContexts[0].second, 2u);
  EXPECT_EQ(Stats.TotalMethodContexts, R.Stats.ReachableMethodContexts);

  std::ostringstream Out;
  printContextStatistics(T.Prog, Stats, Out);
  EXPECT_NE(Out.str().find("Box.set"), std::string::npos);
  EXPECT_NE(Out.str().find("max contexts/method:    2"), std::string::npos);
}

TEST(Statistics, WithoutKeepTuplesIsEmpty) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult R = solveInsens(T.Prog, /*KeepTuples=*/false);
  ContextStatistics Stats = computeContextStatistics(T.Prog, R);
  EXPECT_EQ(Stats.TotalMethodContexts, 0u);
  EXPECT_TRUE(Stats.TopByContexts.empty());
}

TEST(Alias, IntersectionSemantics) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult R = solveInsens(T.Prog);
  // Insensitively oa and ob both hold {A, B}: they may alias.
  EXPECT_TRUE(mayAlias(R, T.OutA, T.OutB));
  // A box variable and a payload variable never share objects.
  const MethodInfo &Main = T.Prog.method(T.Prog.entries()[0]);
  VarId B1 = Main.Locals[0]; // b1
  EXPECT_FALSE(mayAlias(R, B1, T.OutA));
  // Reflexive for non-empty sets.
  EXPECT_TRUE(mayAlias(R, T.OutA, T.OutA));
}

TEST(Alias, DeepContextRemovesSpuriousPairs) {
  TwoBoxes T = makeTwoBoxes();
  PointsToResult Insens = solveInsens(T.Prog);
  EXPECT_TRUE(mayAlias(Insens, T.OutA, T.OutB));

  auto Deep = makeObjectPolicy(T.Prog, 2, 1);
  ContextTable Table;
  PointsToResult Precise = solvePointsTo(T.Prog, *Deep, Table);
  EXPECT_FALSE(mayAlias(Precise, T.OutA, T.OutB))
      << "2objH separates the two box payloads";

  EXPECT_LT(countIntraMethodAliasPairs(T.Prog, Precise),
            countIntraMethodAliasPairs(T.Prog, Insens));
}

TEST(Alias, EmptySetsNeverAlias) {
  Mixed T = makeMixed();
  PointsToResult R = solveInsens(T.Prog);
  // orphan()'s local never gets a points-to set.
  const MethodInfo &Orphan = T.Prog.method(T.Unreachable);
  ASSERT_FALSE(Orphan.Locals.empty());
  EXPECT_FALSE(mayAlias(R, Orphan.Locals[0], Orphan.Locals[0]));
}
