# Fuzz-lane smoke for intro_fuzz, exercising the tool end to end:
#
#   1. the checked-in seed corpus replays clean through the oracle harness;
#   2. a short generated campaign is clean and its report's deterministic
#      section is byte-identical across runs and worker counts;
#   3. a planted soundness bug is detected, auto-reduced, and filed as a
#      repro + triage artifact triple;
#   4. malformed flags exit 2 with a diagnostic naming the flag.
#
# Run as: cmake -DINTRO_FUZZ=<path> -DCORPUS_DIR=<dir> -DWORK_DIR=<dir>
#               -P CheckFuzzSmoke.cmake

foreach(VAR INTRO_FUZZ CORPUS_DIR WORK_DIR)
  if(NOT DEFINED ${VAR})
    message(FATAL_ERROR "pass -D${VAR}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# 1. Corpus replay: every checked-in program must be oracle-clean.
execute_process(
  COMMAND ${INTRO_FUZZ} ${CORPUS_DIR}
  RESULT_VARIABLE CODE
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR)
if(NOT CODE EQUAL 0)
  message(SEND_ERROR "corpus replay failed (exit ${CODE})\n${OUT}${ERR}")
endif()

# 2. Campaign determinism: same seeds, different worker counts, plus a
# repeat run — the reports must agree outside the timing section.
execute_process(
  COMMAND ${INTRO_FUZZ} --seed=101 --count=30 --mutate=2
          --report=${WORK_DIR}/a.json
  RESULT_VARIABLE CODE OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT CODE EQUAL 0)
  message(SEND_ERROR "campaign run failed (exit ${CODE})\n${OUT}${ERR}")
endif()
execute_process(
  COMMAND ${INTRO_FUZZ} --seed=101 --count=30 --mutate=2 --workers=4
          --report=${WORK_DIR}/b.json
  RESULT_VARIABLE CODE OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT CODE EQUAL 0)
  message(SEND_ERROR "4-worker campaign failed (exit ${CODE})\n${OUT}${ERR}")
endif()
foreach(NAME a b)
  file(READ ${WORK_DIR}/${NAME}.json ${NAME}_JSON)
  string(FIND "${${NAME}_JSON}" "\"timing\"" CUT)
  string(SUBSTRING "${${NAME}_JSON}" 0 ${CUT} ${NAME}_DET)
endforeach()
if(NOT a_DET STREQUAL b_DET)
  message(SEND_ERROR "report deterministic section differs across worker "
                     "counts:\n--- 1 worker\n${a_DET}\n--- 4 workers\n${b_DET}")
endif()

# 3. Planted bug: must be found (exit 1), reduced, and filed as artifacts.
execute_process(
  COMMAND ${INTRO_FUZZ} --seed=1 --count=6 --plant-bug=drop-max-heap
          --repro-dir=${WORK_DIR}/repros --report=${WORK_DIR}/planted.json
  RESULT_VARIABLE CODE OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT CODE EQUAL 1)
  message(SEND_ERROR "planted bug: expected exit 1, got ${CODE}\n${OUT}${ERR}")
endif()
file(GLOB REPROS ${WORK_DIR}/repros/*.ir)
list(LENGTH REPROS NUM_REPROS)
if(NUM_REPROS EQUAL 0)
  message(SEND_ERROR "planted bug produced no .ir repros")
endif()
foreach(REPRO ${REPROS})
  string(REPLACE ".ir" ".triage.json" TRIAGE ${REPRO})
  string(REPLACE ".ir" ".reason.txt" REASON ${REPRO})
  foreach(FILE ${TRIAGE} ${REASON})
    if(NOT EXISTS ${FILE})
      message(SEND_ERROR "missing artifact: ${FILE}")
    endif()
  endforeach()
endforeach()
file(READ ${WORK_DIR}/planted.json PLANTED)
string(FIND "${PLANTED}" "\"clean\":false" POS)
if(POS EQUAL -1)
  message(SEND_ERROR "planted-bug report does not record findings:\n${PLANTED}")
endif()

# 4. CLI contract: malformed flags are diagnosed with exit 2.
foreach(BAD --seed=x --count=0 --fuzz-budget=nan --oracles=bogus
        --plant-bug=bogus)
  execute_process(
    COMMAND ${INTRO_FUZZ} ${BAD}
    RESULT_VARIABLE CODE
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT CODE EQUAL 2)
    message(SEND_ERROR "${BAD}: expected exit 2, got ${CODE}\n${ERR}")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK_DIR})
