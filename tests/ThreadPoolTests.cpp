//===- tests/ThreadPoolTests.cpp - ThreadPool unit tests ------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

using namespace intro;

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool Pool(2);
  EXPECT_EQ(Pool.workerCount(), 2u);
  std::vector<std::future<int>> Futures;
  for (int Value = 0; Value < 32; ++Value)
    Futures.push_back(Pool.submit([Value] { return Value * Value; }));
  for (int Value = 0; Value < 32; ++Value)
    EXPECT_EQ(Futures[Value].get(), Value * Value);
}

TEST(ThreadPool, ZeroWorkersMeansDefault) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), ThreadPool::defaultWorkerCount());
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool Pool(2);
  auto Future = Pool.submit(
      []() -> int { throw std::runtime_error("solver blew up"); });
  EXPECT_THROW(Future.get(), std::runtime_error);
  // The worker that ran the throwing task must survive to run more work.
  EXPECT_EQ(Pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> Completed{0};
  {
    ThreadPool Pool(1);
    for (int Index = 0; Index < 16; ++Index)
      Pool.submit([&Completed] { ++Completed; });
    // Destructor runs here: all 16 tasks must execute before join.
  }
  EXPECT_EQ(Completed.load(), 16);
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other's side-effect can only both
  // finish if they run on distinct workers at the same time.  Deadline-
  // guarded so a regression fails the test instead of hanging it.
  ThreadPool Pool(2);
  std::atomic<int> Arrived{0};
  auto Rendezvous = [&Arrived] {
    ++Arrived;
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (Arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > Deadline)
        return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto A = Pool.submit(Rendezvous);
  auto B = Pool.submit(Rendezvous);
  EXPECT_TRUE(A.get());
  EXPECT_TRUE(B.get());
}

TEST(ParallelForShards, CoversRangeExactlyOnce) {
  ThreadPool Pool(3);
  constexpr size_t Count = 1000;
  std::vector<std::atomic<int>> Touched(Count);
  parallelForShards(Pool, Count, 7, [&](size_t, size_t Begin, size_t End) {
    for (size_t Index = Begin; Index < End; ++Index)
      ++Touched[Index];
  });
  for (size_t Index = 0; Index < Count; ++Index)
    EXPECT_EQ(Touched[Index].load(), 1) << "index " << Index;
}

TEST(ParallelForShards, ShardBoundariesAreDeterministic) {
  // Slice boundaries depend only on (Count, ShardCount), never on
  // scheduling — the determinism argument of the parallel metric merge.
  ThreadPool Pool(2);
  auto Boundaries = [&](size_t Count, size_t Shards) {
    std::mutex Lock;
    std::vector<std::pair<size_t, size_t>> Slices;
    parallelForShards(Pool, Count, Shards,
                      [&](size_t Shard, size_t Begin, size_t End) {
                        std::lock_guard<std::mutex> Guard(Lock);
                        if (Slices.size() <= Shard)
                          Slices.resize(Shard + 1);
                        Slices[Shard] = {Begin, End};
                      });
    return Slices;
  };
  EXPECT_EQ(Boundaries(10, 4), Boundaries(10, 4));
  auto Slices = Boundaries(10, 4);
  ASSERT_EQ(Slices.size(), 4u);
  EXPECT_EQ(Slices.front().first, 0u);
  EXPECT_EQ(Slices.back().second, 10u);
  for (size_t Shard = 1; Shard < Slices.size(); ++Shard)
    EXPECT_EQ(Slices[Shard].first, Slices[Shard - 1].second);
}

TEST(ParallelForShards, MoreShardsThanItemsClampsSafely) {
  ThreadPool Pool(2);
  std::atomic<int> Touched{0};
  parallelForShards(Pool, 2, 100, [&](size_t, size_t Begin, size_t End) {
    Touched += static_cast<int>(End - Begin);
  });
  EXPECT_EQ(Touched.load(), 2);
  // Empty range: the single inline shard still runs, with an empty slice.
  bool Ran = false;
  parallelForShards(Pool, 0, 4, [&](size_t, size_t Begin, size_t End) {
    Ran = true;
    EXPECT_EQ(Begin, End);
  });
  EXPECT_TRUE(Ran);
}

TEST(ParallelForShards, RethrowsFirstShardFailureAfterAllComplete) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  try {
    parallelForShards(Pool, 100, 4, [&](size_t Shard, size_t, size_t) {
      ++Ran;
      if (Shard == 1)
        throw std::runtime_error("shard failed");
    });
    FAIL() << "expected the shard exception to propagate";
  } catch (const std::runtime_error &) {
  }
  // Every shard ran to completion before the rethrow: no shard is still
  // touching caller-owned buffers when the exception unwinds them.
  EXPECT_EQ(Ran.load(), 4);
}
