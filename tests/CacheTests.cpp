//===- tests/CacheTests.cpp - Content-addressed Pass-A cache tests --------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Pass-A result cache (cache/Fingerprint.h,
/// cache/ResultCache.h) and its integrations: fingerprint canonicality,
/// entry round-trips, the adversarial corruption suite (every truncation
/// and every flipped byte must be a miss, never a crash), concurrent
/// writers, deterministic eviction, and the driver / degradation-ladder /
/// supervised-batch warm paths — including the contract that a warm batch
/// run's deterministic report section is byte-identical to the cold run's.
///
//===----------------------------------------------------------------------===//

#include "cache/Fingerprint.h"
#include "cache/ResultCache.h"

#include "analysis/ContextPolicy.h"
#include "frontend/Parser.h"
#include "introspect/Driver.h"
#include "introspect/Resilient.h"
#include "ir/Program.h"
#include "supervise/Supervise.h"
#include "support/Json.h"
#include "support/Trace.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace intro;
using intro::testing::makeTwoBoxes;
using intro::testing::TwoBoxes;
namespace fs = std::filesystem;

namespace {

/// A unique scratch directory, removed on destruction.
struct TempDir {
  TempDir() {
    std::string Template =
        (fs::temp_directory_path() / "intro-cache-XXXXXX").string();
    std::vector<char> Buffer(Template.begin(), Template.end());
    Buffer.push_back('\0');
    const char *Made = mkdtemp(Buffer.data());
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : Template;
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string Path;
};

/// A synthetic Pass-A entry exercising every serialized field, including
/// the unordered maps (whose keys must encode in sorted order) and the
/// optional tuple dumps.
cache::CachedPassA samplePassA() {
  cache::CachedPassA Entry;
  PointsToResult &R = Entry.Insens;
  R.Status = SolveStatus::Completed;
  R.AnalysisName = "insens";
  R.Stats.Seconds = 1.25;
  R.Stats.VarPointsToTuples = 11;
  R.Stats.FieldPointsToTuples = 22;
  R.Stats.ThrowPointsToTuples = 3;
  R.Stats.StaticFieldTuples = 4;
  R.Stats.NumVarNodes = 5;
  R.Stats.NumFieldNodes = 6;
  R.Stats.NumObjects = 7;
  R.Stats.NumContexts = 1;
  R.Stats.NumHeapContexts = 1;
  R.Stats.ReachableMethodContexts = 8;
  R.Stats.CallGraphEdges = 9;
  R.Stats.WorklistPops = 123;
  R.Stats.ApproxBytes = 4096;
  R.VarHeaps = {{1, 2, 3}, {}, {7}};
  R.FieldHeaps[(uint64_t(5) << 32) | 1] = {2, 4};
  R.FieldHeaps[(uint64_t(1) << 32) | 9] = {8};
  R.MethodReachable = {true, false, true};
  R.StaticFieldHeaps[3] = {1};
  R.StaticFieldHeaps[1] = {0, 9};
  R.MethodThrows = {{4}, {}};
  R.SiteTargets = {{0}, {1, 2}};
  R.VarPointsTo = {{1, 0, 2, 0}, {2, 0, 3, 0}};
  R.FieldPointsTo = {{5, 0, 1, 2, 0}};
  R.Reachable = {{0, 0}, {2, 0}};
  R.CallGraph = {{0, 0, 1, 0}};
  R.ThrowPointsTo = {{1, 0, 4, 0}};
  R.StaticFieldPointsTo = {{3, 1, 0}};
  Entry.Metrics.InFlow = {1, 2, 3};
  Entry.Metrics.MethodTotalVolume = {4, 5};
  Entry.Metrics.MethodMaxVarPointsTo = {6};
  Entry.Metrics.ObjectMaxFieldPointsTo = {7, 8};
  Entry.Metrics.ObjectTotalFieldPointsTo = {9};
  Entry.Metrics.MethodMaxVarFieldPointsTo = {10, 11};
  Entry.Metrics.PointedByVars = {12};
  Entry.Metrics.PointedByObjs = {13, 14, 15};
  return Entry;
}

// Deliberately skips Stats.Seconds: a re-solved pass records fresh
// wall-clock.  The verbatim round-trip tests check Seconds explicitly.
void expectResultsEqual(const PointsToResult &A, const PointsToResult &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_EQ(A.AnalysisName, B.AnalysisName);
  EXPECT_EQ(A.Stats.WorklistPops, B.Stats.WorklistPops);
  EXPECT_EQ(A.Stats.VarPointsToTuples, B.Stats.VarPointsToTuples);
  EXPECT_EQ(A.Stats.CallGraphEdges, B.Stats.CallGraphEdges);
  EXPECT_EQ(A.Stats.ApproxBytes, B.Stats.ApproxBytes);
  EXPECT_EQ(A.VarHeaps, B.VarHeaps);
  EXPECT_EQ(A.FieldHeaps, B.FieldHeaps);
  EXPECT_EQ(A.MethodReachable, B.MethodReachable);
  EXPECT_EQ(A.StaticFieldHeaps, B.StaticFieldHeaps);
  EXPECT_EQ(A.MethodThrows, B.MethodThrows);
  EXPECT_EQ(A.SiteTargets, B.SiteTargets);
  EXPECT_EQ(A.VarPointsTo, B.VarPointsTo);
  EXPECT_EQ(A.FieldPointsTo, B.FieldPointsTo);
  EXPECT_EQ(A.Reachable, B.Reachable);
  EXPECT_EQ(A.CallGraph, B.CallGraph);
  EXPECT_EQ(A.ThrowPointsTo, B.ThrowPointsTo);
  EXPECT_EQ(A.StaticFieldPointsTo, B.StaticFieldPointsTo);
}

void expectMetricsEqual(const IntrospectionMetrics &A,
                        const IntrospectionMetrics &B) {
  EXPECT_EQ(A.InFlow, B.InFlow);
  EXPECT_EQ(A.MethodTotalVolume, B.MethodTotalVolume);
  EXPECT_EQ(A.MethodMaxVarPointsTo, B.MethodMaxVarPointsTo);
  EXPECT_EQ(A.ObjectMaxFieldPointsTo, B.ObjectMaxFieldPointsTo);
  EXPECT_EQ(A.ObjectTotalFieldPointsTo, B.ObjectTotalFieldPointsTo);
  EXPECT_EQ(A.MethodMaxVarFieldPointsTo, B.MethodMaxVarFieldPointsTo);
  EXPECT_EQ(A.PointedByVars, B.PointedByVars);
  EXPECT_EQ(A.PointedByObjs, B.PointedByObjs);
}

/// Builds a minimal finalized Program by hand.  \p InternerNoise interns
/// that many junk strings *before* any entity is added, shifting every
/// name handle — the fingerprint must not notice.  \p FieldName lets one
/// test vary nothing but a name.
Program handBuiltProgram(unsigned InternerNoise = 0,
                         const char *FieldName = "f") {
  Program P;
  for (unsigned Index = 0; Index < InternerNoise; ++Index)
    P.names().intern("noise-" + std::to_string(Index));
  TypeId Object = P.addType("Object", TypeId::invalid());
  TypeId A = P.addType("A", Object);
  P.addField(FieldName, A);
  SigId Sig = P.addSignature("main/0", 0);
  MethodId Main = P.addMethod("main", Object, Sig, /*IsStatic=*/true);
  P.addVar("x", Main);
  P.addHeap("new A", A, Main);
  P.addEntry(Main);
  P.finalize();
  return P;
}

const char *const TinySource = R"(
class Object
class Box extends Object {
  field f
  method set(p) {
    this.Box#f = p
  }
  method get() -> r {
    r = this.Box#f
  }
}
class A extends Object
class B extends Object
class Main extends Object {
  entry static method main() {
    b1 = new Box
    b2 = new Box
    a = new A
    b = new B
    b1.set(a)
    b2.set(b)
    oa = b1.get()
    ob = b2.get()
    ca = (A) oa
  }
}
)";

/// A second, structurally different valid program.
const char *const OtherSource = R"(
class Object
class C extends Object {
  method id(p) -> r {
    r = p
  }
}
class Main extends Object {
  entry static method main() {
    c = new C
    v = new Object
    w = c.id(v)
  }
}
)";

} // namespace

// --- Fingerprints ------------------------------------------------------------

TEST(Fingerprint, EqualProgramsFingerprintEqually) {
  ParseResult A = parseProgram(TinySource);
  ParseResult B = parseProgram(TinySource);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  cache::Fingerprint FpA = cache::fingerprintProgram(A.Prog);
  EXPECT_EQ(FpA, cache::fingerprintProgram(B.Prog));
  EXPECT_FALSE(FpA == cache::Fingerprint{}) << "fingerprint must be mixed";
}

TEST(Fingerprint, IndependentOfInternerInsertionOrder) {
  // Same entities, names, and facts — but the second program's interner
  // assigned every name a different handle.  The fingerprint hashes name
  // *text*, never handles, so the two must agree.
  Program Clean = handBuiltProgram(0);
  Program Shifted = handBuiltProgram(64);
  EXPECT_EQ(cache::fingerprintProgram(Clean),
            cache::fingerprintProgram(Shifted));
}

TEST(Fingerprint, SensitiveToNamesAndToFacts) {
  Program Base = handBuiltProgram(0, "f");
  Program Renamed = handBuiltProgram(0, "g");
  EXPECT_NE(cache::fingerprintProgram(Base),
            cache::fingerprintProgram(Renamed))
      << "a changed name must change the fingerprint";

  ParseResult A = parseProgram(TinySource);
  ParseResult B = parseProgram(OtherSource);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_NE(cache::fingerprintProgram(A.Prog),
            cache::fingerprintProgram(B.Prog));
}

TEST(Fingerprint, HexRoundTrips) {
  TwoBoxes T = makeTwoBoxes();
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);
  std::string Hex = cache::toHex(Fp);
  EXPECT_EQ(Hex.size(), 32u);
  EXPECT_EQ(Hex.find_first_not_of("0123456789abcdef"), std::string::npos);
  cache::Fingerprint Back;
  EXPECT_TRUE(cache::fingerprintFromHex(Hex, Back));
  EXPECT_EQ(Fp, Back);
  EXPECT_FALSE(cache::fingerprintFromHex("", Back));
  EXPECT_FALSE(cache::fingerprintFromHex(Hex.substr(1), Back));
  EXPECT_FALSE(cache::fingerprintFromHex(Hex + "0", Back));
  std::string Bad = Hex;
  Bad[5] = 'g';
  EXPECT_FALSE(cache::fingerprintFromHex(Bad, Back));
}

// --- Entry encoding and the adversarial suite --------------------------------

TEST(EntryFormat, RoundTripsEveryField) {
  cache::CachedPassA Entry = samplePassA();
  cache::Fingerprint Fp{0x1234'5678'9abc'def0ull, 0x0fed'cba9'8765'4321ull};
  std::vector<uint8_t> Bytes = cache::encodeEntry(Fp, Entry);
  cache::CachedPassA Decoded;
  ASSERT_TRUE(cache::decodeEntry(Bytes, Fp, Decoded));
  expectResultsEqual(Entry.Insens, Decoded.Insens);
  expectMetricsEqual(Entry.Metrics, Decoded.Metrics);
  EXPECT_EQ(Decoded.Insens.Stats.Seconds, 1.25)
      << "stored wall-clock restores bit-exactly";
}

TEST(EntryFormat, EncodingIsDeterministic) {
  // The unordered maps must encode in sorted-key order: two equal entries
  // built with different insertion orders yield identical bytes.
  cache::Fingerprint Fp{1, 2};
  cache::CachedPassA A = samplePassA();
  cache::CachedPassA B;
  B.Metrics = A.Metrics;
  B.Insens.Status = A.Insens.Status;
  B.Insens.AnalysisName = A.Insens.AnalysisName;
  B.Insens.Stats = A.Insens.Stats;
  B.Insens.VarHeaps = A.Insens.VarHeaps;
  B.Insens.MethodReachable = A.Insens.MethodReachable;
  B.Insens.MethodThrows = A.Insens.MethodThrows;
  B.Insens.SiteTargets = A.Insens.SiteTargets;
  B.Insens.VarPointsTo = A.Insens.VarPointsTo;
  B.Insens.FieldPointsTo = A.Insens.FieldPointsTo;
  B.Insens.Reachable = A.Insens.Reachable;
  B.Insens.CallGraph = A.Insens.CallGraph;
  B.Insens.ThrowPointsTo = A.Insens.ThrowPointsTo;
  B.Insens.StaticFieldPointsTo = A.Insens.StaticFieldPointsTo;
  // Reversed insertion order relative to samplePassA().
  B.Insens.FieldHeaps[(uint64_t(1) << 32) | 9] = {8};
  B.Insens.FieldHeaps[(uint64_t(5) << 32) | 1] = {2, 4};
  B.Insens.StaticFieldHeaps[1] = {0, 9};
  B.Insens.StaticFieldHeaps[3] = {1};
  EXPECT_EQ(cache::encodeEntry(Fp, A), cache::encodeEntry(Fp, B));
}

TEST(EntryFormat, EveryTruncationIsAMissNeverACrash) {
  cache::Fingerprint Fp{42, 43};
  std::vector<uint8_t> Bytes = cache::encodeEntry(Fp, samplePassA());
  for (size_t Length = 0; Length < Bytes.size(); ++Length) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Length);
    cache::CachedPassA Out;
    EXPECT_FALSE(cache::decodeEntry(Prefix, Fp, Out))
        << "truncation at byte " << Length << " must be a miss";
  }
}

TEST(EntryFormat, EveryFlippedByteIsAMissNeverACrash) {
  // There is no unprotected region: magic, version, and the fingerprint
  // echo are compared directly, and every payload byte is checksummed.
  // Section headers (tag/length/checksum) either fail the checksum, break
  // framing, or orphan a required section.
  cache::Fingerprint Fp{7, 9};
  std::vector<uint8_t> Bytes = cache::encodeEntry(Fp, samplePassA());
  for (size_t Index = 0; Index < Bytes.size(); ++Index) {
    std::vector<uint8_t> Mutated = Bytes;
    Mutated[Index] ^= 0x20;
    cache::CachedPassA Out;
    EXPECT_FALSE(cache::decodeEntry(Mutated, Fp, Out))
        << "flipped byte " << Index << " must be a miss";
  }
}

TEST(EntryFormat, WrongFormatVersionIsAMiss) {
  cache::Fingerprint Fp{1, 1};
  std::vector<uint8_t> Bytes = cache::encodeEntry(Fp, samplePassA());
  // The u32 version sits right after the 8-byte magic (little-endian).
  Bytes[8] = static_cast<uint8_t>(cache::FormatVersion + 1);
  cache::CachedPassA Out;
  EXPECT_FALSE(cache::decodeEntry(Bytes, Fp, Out));
}

TEST(EntryFormat, WrongFingerprintEchoIsAMiss) {
  cache::Fingerprint Stored{100, 200};
  std::vector<uint8_t> Bytes = cache::encodeEntry(Stored, samplePassA());
  cache::CachedPassA Out;
  cache::Fingerprint Other{100, 201};
  EXPECT_FALSE(cache::decodeEntry(Bytes, Other, Out))
      << "an entry renamed onto another key must not be served";
  EXPECT_TRUE(cache::decodeEntry(Bytes, Stored, Out));
}

// --- The on-disk store -------------------------------------------------------

TEST(ResultCache, StoreThenLookupRoundTripsAndCounts) {
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp{11, 22};

  cache::CachedPassA Missed;
  EXPECT_FALSE(Cache.lookup(Fp, Missed)) << "empty cache must miss";
  EXPECT_TRUE(Cache.store(Fp, samplePassA()));
  EXPECT_TRUE(fs::exists(Cache.entryPath(Fp)));
  EXPECT_EQ(fs::path(Cache.entryPath(Fp)).extension(), ".pac");

  cache::CachedPassA Out;
  ASSERT_TRUE(Cache.lookup(Fp, Out));
  expectResultsEqual(samplePassA().Insens, Out.Insens);

  cache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Probes, 2u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Stores, 1u);
  EXPECT_EQ(Stats.CorruptEntries, 0u);
}

TEST(ResultCache, CorruptFileOnDiskIsAMissAndRestorable) {
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp{5, 6};
  ASSERT_TRUE(Cache.store(Fp, samplePassA()));

  // Truncate the entry mid-payload, as a crashed writer without the
  // temp+rename protocol (or a failing disk) would.
  auto Size = fs::file_size(Cache.entryPath(Fp));
  fs::resize_file(Cache.entryPath(Fp), Size / 2);

  cache::CachedPassA Out;
  EXPECT_FALSE(Cache.lookup(Fp, Out));
  EXPECT_EQ(Cache.stats().CorruptEntries, 1u);

  // The caller's protocol — re-solve, re-store — fully recovers.
  EXPECT_TRUE(Cache.store(Fp, samplePassA()));
  EXPECT_TRUE(Cache.lookup(Fp, Out));
  expectMetricsEqual(samplePassA().Metrics, Out.Metrics);
}

TEST(ResultCache, ConcurrentWritersAreLastWriteWinsNeverTorn) {
  TempDir Dir;
  cache::Fingerprint Fp{77, 88};
  constexpr unsigned NumWriters = 8;
  constexpr unsigned RoundsPerWriter = 8;

  std::vector<std::thread> Writers;
  for (unsigned Writer = 0; Writer < NumWriters; ++Writer)
    Writers.emplace_back([&, Writer] {
      cache::ResultCache Cache({Dir.Path, 0});
      cache::CachedPassA Entry = samplePassA();
      Entry.Insens.Stats.WorklistPops = 1000 + Writer; // writer tag
      for (unsigned Round = 0; Round < RoundsPerWriter; ++Round)
        Cache.store(Fp, Entry);
    });

  // A racing reader must only ever see a miss or a fully intact entry.
  cache::ResultCache Reader({Dir.Path, 0});
  for (unsigned Probe = 0; Probe < 64; ++Probe) {
    cache::CachedPassA Out;
    if (Reader.lookup(Fp, Out)) {
      EXPECT_GE(Out.Insens.Stats.WorklistPops, 1000u);
      EXPECT_LT(Out.Insens.Stats.WorklistPops, 1000u + NumWriters);
      EXPECT_EQ(Out.Insens.VarHeaps, samplePassA().Insens.VarHeaps);
    }
  }
  for (std::thread &Writer : Writers)
    Writer.join();
  EXPECT_EQ(Reader.stats().CorruptEntries, 0u) << "a torn read happened";

  cache::CachedPassA Final;
  ASSERT_TRUE(Reader.lookup(Fp, Final));
  EXPECT_GE(Final.Insens.Stats.WorklistPops, 1000u);
  EXPECT_LT(Final.Insens.Stats.WorklistPops, 1000u + NumWriters);
}

TEST(ResultCache, EvictionEnforcesTheCapDeterministically) {
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 2});
  cache::Fingerprint A{1, 0}, B{2, 0}, C{3, 0};
  ASSERT_TRUE(Cache.store(A, samplePassA()));
  ASSERT_TRUE(Cache.store(B, samplePassA()));
  ASSERT_TRUE(Cache.store(C, samplePassA()));

  size_t Entries = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir.Path))
    Entries += Entry.path().extension() == ".pac";
  EXPECT_EQ(Entries, 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_TRUE(fs::exists(Cache.entryPath(C)))
      << "the just-stored entry must never be the eviction victim";

  // Deterministic victim selection: the lexicographically smallest entry
  // name among the survivors-to-be is removed.
  std::string HexA = cache::toHex(A), HexB = cache::toHex(B);
  cache::Fingerprint Evicted = HexA < HexB ? A : B;
  cache::Fingerprint Kept = HexA < HexB ? B : A;
  EXPECT_FALSE(fs::exists(Cache.entryPath(Evicted)));
  EXPECT_TRUE(fs::exists(Cache.entryPath(Kept)));
}

// --- Store failure injection -------------------------------------------------
//
// store() must degrade to "no entry, counted failure, temp cleaned up" when
// the filesystem refuses to cooperate.  Both injections work under root
// (unlike chmod-based ones): a cache directory that is actually a regular
// file, and a directory squatting on the final entry name so the
// temp-to-final fs::rename fails.

TEST(ResultCache, CacheDirectoryThatIsAFileFailsTheStoreNotTheProcess) {
  TempDir Dir;
  std::string NotADir = Dir.Path + "/cachefile";
  std::ofstream(NotADir) << "occupied";
  cache::ResultCache Cache({NotADir, 0});
  cache::Fingerprint Fp{31, 41};

  EXPECT_FALSE(Cache.store(Fp, samplePassA()));
  EXPECT_EQ(Cache.stats().StoreFailures, 1u);
  EXPECT_EQ(Cache.stats().Stores, 0u);

  // Lookups against the unusable directory stay plain misses.
  cache::CachedPassA Out;
  EXPECT_FALSE(Cache.lookup(Fp, Out));
  EXPECT_EQ(Cache.stats().CorruptEntries, 0u);
}

TEST(ResultCache, RenameFailureIsCountedTracedAndLeavesNoTempFile) {
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp{59, 26};
  // A directory at the final entry path makes fs::rename(file, dir) fail
  // with EISDIR after the temp file was written successfully.
  ASSERT_TRUE(fs::create_directories(Cache.entryPath(Fp)));

  trace::Recorder Rec;
  Rec.start();
  EXPECT_FALSE(Cache.store(Fp, samplePassA()));
  Rec.stop();

  cache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.StoreFailures, 1u);
  EXPECT_EQ(Stats.Stores, 0u);

  // The failure leaves a trace instant naming the errno, so a run report
  // can distinguish "rename refused" from "could not create the temp".
  auto Instant = Rec.instants().find("cache.store_rename_failed");
  ASSERT_NE(Instant, Rec.instants().end());
  EXPECT_EQ(Instant->second.Count, 1u);
  EXPECT_GT(Instant->second.Sum, 0u) << "instant should carry the errno";

  // The orphaned temp file was removed: only the squatting directory
  // remains in the cache directory.
  size_t Remaining = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir.Path)) {
    EXPECT_TRUE(Entry.is_directory())
        << "leftover temp file: " << Entry.path();
    ++Remaining;
  }
  EXPECT_EQ(Remaining, 1u);

  // Removing the blockage restores normal service on the same instance.
  fs::remove(Cache.entryPath(Fp));
  EXPECT_TRUE(Cache.store(Fp, samplePassA()));
  cache::CachedPassA Out;
  EXPECT_TRUE(Cache.lookup(Fp, Out));
}

// --- Driver integration ------------------------------------------------------

TEST(DriverCache, WarmRunReloadsPassAAndMatchesCold) {
  TwoBoxes T = makeTwoBoxes();
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);

  IntrospectiveOptions Options;
  Options.Heuristic = HeuristicKind::B;
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);

  IntrospectiveOutcome Cold = runIntrospective(T.Prog, *Refined, Options);
  ASSERT_TRUE(isCompleted(Cold.FirstPass.Status));
  IntrospectiveOutcome Warm = runIntrospective(T.Prog, *Refined, Options);

  expectResultsEqual(Cold.FirstPass, Warm.FirstPass);
  expectMetricsEqual(Cold.Metrics, Warm.Metrics);
  expectResultsEqual(Cold.SecondPass, Warm.SecondPass);

  cache::CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Probes, 2u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Stores, 1u);
  EXPECT_EQ(Stats.Hits, 1u) << "the warm run must not re-solve Pass A";
}

TEST(DriverCache, ArmedFaultPlanBypassesTheCache) {
  // A warm entry must never mask an injected Pass-A failure.
  TwoBoxes T = makeTwoBoxes();
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);

  IntrospectiveOptions Options;
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  runIntrospective(T.Prog, *Refined, Options); // populate the cache

  Options.FirstPassFaults.FailAtPop = 1;
  Options.FirstPassFaults.FailStatus = SolveStatus::TupleBudgetExceeded;
  IntrospectiveOutcome Faulted = runIntrospective(T.Prog, *Refined, Options);
  EXPECT_EQ(Faulted.FirstPass.Status, SolveStatus::TupleBudgetExceeded);
  EXPECT_EQ(Cache.stats().Probes, 1u)
      << "an armed fault plan must not even probe";
}

TEST(DriverCache, IncompleteFirstPassIsNotStored) {
  TwoBoxes T = makeTwoBoxes();
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);

  IntrospectiveOptions Options;
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  Options.FirstPassBudget.MaxTuples = 1; // guaranteed exhaustion
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  IntrospectiveOutcome Out = runIntrospective(T.Prog, *Refined, Options);
  EXPECT_FALSE(isCompleted(Out.FirstPass.Status));
  EXPECT_EQ(Cache.stats().Stores, 0u)
      << "a budget-exhausted Pass A must stay uncached";
  EXPECT_EQ(Cache.stats().Misses, 1u);
}

// --- Degradation-ladder integration ------------------------------------------

TEST(LadderCache, WarmLadderSharesPassAWithIdenticalTraceColumns) {
  TwoBoxes T = makeTwoBoxes();
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);

  ResilientOptions Options;
  Options.AttemptDeep = false; // force the pre-analysis + introspective path
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  std::vector<DegradationLevel> Started;
  Options.OnRungStart = [&](DegradationLevel Level, uint32_t) {
    Started.push_back(Level);
  };
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);

  ResilientOutcome Cold = runResilient(T.Prog, *Refined, Options);
  std::vector<DegradationLevel> ColdStarted = std::move(Started);
  Started.clear();
  ResilientOutcome Warm = runResilient(T.Prog, *Refined, Options);

  EXPECT_EQ(Cache.stats().Hits, 1u);
  EXPECT_EQ(Cache.stats().Stores, 1u);
  EXPECT_EQ(ColdStarted, Started)
      << "a cache hit must still announce the Insensitive rung";

  // The warm trace must be column-identical to the cold one in everything
  // deterministic; only wall-clock (Attempt::Seconds) may differ.
  ASSERT_EQ(Cold.Trace.size(), Warm.Trace.size());
  for (size_t Row = 0; Row < Cold.Trace.size(); ++Row) {
    EXPECT_EQ(Cold.Trace[Row].Level, Warm.Trace[Row].Level);
    EXPECT_EQ(Cold.Trace[Row].AnalysisName, Warm.Trace[Row].AnalysisName);
    EXPECT_EQ(Cold.Trace[Row].Status, Warm.Trace[Row].Status);
    EXPECT_EQ(Cold.Trace[Row].TightenedRound, Warm.Trace[Row].TightenedRound);
    EXPECT_EQ(Cold.Trace[Row].Stats.WorklistPops,
              Warm.Trace[Row].Stats.WorklistPops)
        << "the cache-served rung must carry the stored solver stats";
    EXPECT_EQ(Cold.Trace[Row].Stats.VarPointsToTuples,
              Warm.Trace[Row].Stats.VarPointsToTuples);
  }
  EXPECT_EQ(Cold.Level, Warm.Level);
  expectResultsEqual(Cold.Result, Warm.Result);
  expectMetricsEqual(Cold.Metrics, Warm.Metrics);
}

TEST(LadderCache, PortfolioWarmRunIsBitIdenticalToSequential) {
  TwoBoxes T = makeTwoBoxes();
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);

  ResilientOptions Options;
  Options.AttemptDeep = false;
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  ResilientOutcome Sequential = runResilient(T.Prog, *Refined, Options);
  ASSERT_EQ(Cache.stats().Stores, 1u);

  Options.Portfolio = true;
  Options.Workers = 4;
  ResilientOutcome Portfolio = runResilient(T.Prog, *Refined, Options);
  EXPECT_GE(Cache.stats().Hits, 1u);
  EXPECT_EQ(Portfolio.Level, Sequential.Level);
  expectResultsEqual(Portfolio.Result, Sequential.Result);
  expectMetricsEqual(Portfolio.Metrics, Sequential.Metrics);
}

TEST(LadderCache, ArmedInsensitiveFaultBypassesTheCache) {
  TwoBoxes T = makeTwoBoxes();
  TempDir Dir;
  cache::ResultCache Cache({Dir.Path, 0});
  cache::Fingerprint Fp = cache::fingerprintProgram(T.Prog);

  ResilientOptions Options;
  Options.AttemptDeep = false;
  Options.Cache = &Cache;
  Options.CacheKey = &Fp;
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);
  runResilient(T.Prog, *Refined, Options); // populate

  Options.faultsFor(DegradationLevel::Insensitive).FailAtPop = 1;
  Options.faultsFor(DegradationLevel::Insensitive).FailStatus =
      SolveStatus::TupleBudgetExceeded;
  ResilientOutcome Faulted = runResilient(T.Prog, *Refined, Options);
  EXPECT_FALSE(Faulted.completed());
  EXPECT_EQ(Cache.stats().Probes, 1u)
      << "the fault-armed run must not have probed";
}

// --- Supervised-batch integration --------------------------------------------

namespace {

supervise::BatchOptions batchOptions(const std::string &CacheDir) {
  supervise::BatchOptions Options;
  Options.Limits.WallDeadlineSeconds = 60;
  Options.SleepMs = [](double) {};
  Options.Ladder.AttemptDeep = false; // every job exercises the pre-analysis
  Options.CacheDir = CacheDir;
  return Options;
}

std::vector<supervise::JobSpec> twoJobs() {
  supervise::JobSpec A, B;
  A.Name = "tiny";
  A.Source = TinySource;
  B.Name = "other";
  B.Source = OtherSource;
  return {A, B};
}

/// Renders the batch report and \returns (full, deterministic-slice) where
/// the slice is the raw bytes from the "deterministic" key up to the
/// "cache" key — the cold-vs-warm byte-identity contract.  The cache
/// section sits *outside* the slice by design: its counters necessarily
/// differ between a cold and a warm run.
std::pair<std::string, std::string>
renderBatchReport(const supervise::BatchResult &Batch,
                  const supervise::BatchOptions &Options) {
  std::ostringstream Out;
  JsonWriter J(Out);
  supervise::writeBatchReportJson(J, Batch, Options);
  std::string Full = Out.str();
  size_t Begin = Full.find("\"deterministic\"");
  size_t End = Full.find("\"cache\"");
  EXPECT_NE(Begin, std::string::npos);
  EXPECT_NE(End, std::string::npos);
  EXPECT_LT(Begin, End);
  return {Full, Full.substr(Begin, End - Begin)};
}

} // namespace

TEST(BatchCache, WarmRunIsAllHitsWithAByteIdenticalDeterministicSection) {
  TempDir Dir;
  supervise::BatchOptions Options = batchOptions(Dir.Path);
  std::vector<supervise::JobSpec> Jobs = twoJobs();

  supervise::BatchResult Cold = supervise::runSupervisedBatch(Jobs, Options);
  supervise::BatchResult Warm = supervise::runSupervisedBatch(Jobs, Options);

  for (const supervise::JobResult &Job : Cold.Jobs) {
    ASSERT_EQ(Job.FinalClass, supervise::JobOutcomeClass::Clean) << Job.Name;
    ASSERT_EQ(Job.Attempts.size(), 1u);
    EXPECT_TRUE(Job.Attempts[0].CacheEnabled);
    EXPECT_EQ(Job.Attempts[0].Cache.Misses, 1u);
    EXPECT_EQ(Job.Attempts[0].Cache.Stores, 1u);
    EXPECT_EQ(Job.Attempts[0].Cache.Hits, 0u);
  }
  for (const supervise::JobResult &Job : Warm.Jobs) {
    ASSERT_EQ(Job.FinalClass, supervise::JobOutcomeClass::Clean) << Job.Name;
    ASSERT_EQ(Job.Attempts.size(), 1u);
    EXPECT_TRUE(Job.Attempts[0].CacheEnabled);
    EXPECT_EQ(Job.Attempts[0].Cache.Hits, 1u)
        << Job.Name << " did not reuse the cold run's Pass A";
    EXPECT_EQ(Job.Attempts[0].Cache.Misses, 0u);
    EXPECT_EQ(Job.Attempts[0].Cache.Stores, 0u);
  }

  auto [ColdFull, ColdSlice] = renderBatchReport(Cold, Options);
  auto [WarmFull, WarmSlice] = renderBatchReport(Warm, Options);
  EXPECT_EQ(ColdSlice, WarmSlice)
      << "the deterministic section is the cold-vs-warm identity contract";
  EXPECT_NE(ColdFull.find("\"enabled\":true"), std::string::npos);
}

TEST(BatchCache, RetryAfterAHardDeathReloadsThePredecessorsPassA) {
  // Attempt 1 solves and stores the pre-analysis, then dies hard when the
  // IntroB rung starts.  The escalateBelow relaunch must *reload* Pass A
  // instead of re-solving it: its counters show one hit and zero stores.
  TempDir Dir;
  supervise::BatchOptions Options = batchOptions(Dir.Path);
  supervise::JobSpec Job;
  Job.Name = "crashy";
  Job.Source = TinySource;
  Job.Chaos.Fault = supervise::ChaosPlan::Kind::Crash;
  Job.Chaos.AtLevel = DegradationLevel::IntroB;
  Job.Chaos.UntilAttempt = 1;

  supervise::JobResult Result = supervise::runSupervisedJob(Job, 0, Options);
  ASSERT_EQ(Result.FinalClass, supervise::JobOutcomeClass::Clean);
  ASSERT_EQ(Result.Attempts.size(), 2u);
  EXPECT_FALSE(Result.Attempts[0].CacheEnabled)
      << "a hard death delivers no report, so no counters";
  ASSERT_TRUE(Result.Attempts[1].CacheEnabled);
  EXPECT_EQ(Result.Attempts[1].Cache.Hits, 1u);
  EXPECT_EQ(Result.Attempts[1].Cache.Stores, 0u);
  EXPECT_EQ(Result.Attempts[1].Cache.Misses, 0u);
}

TEST(BatchCache, CorruptedEntryIsAMissThenRestored) {
  TempDir Dir;
  supervise::BatchOptions Options = batchOptions(Dir.Path);
  std::vector<supervise::JobSpec> Jobs = twoJobs();
  supervise::runSupervisedBatch(Jobs, Options);

  // Corrupt every stored entry byte 0 (the magic).
  size_t Corrupted = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir.Path)) {
    if (Entry.path().extension() != ".pac")
      continue;
    std::fstream File(Entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    File.put('X');
    ++Corrupted;
  }
  ASSERT_EQ(Corrupted, 2u);

  supervise::BatchResult Again = supervise::runSupervisedBatch(Jobs, Options);
  for (const supervise::JobResult &Job : Again.Jobs) {
    ASSERT_EQ(Job.FinalClass, supervise::JobOutcomeClass::Clean) << Job.Name;
    EXPECT_EQ(Job.Attempts[0].Cache.Hits, 0u);
    EXPECT_EQ(Job.Attempts[0].Cache.Misses, 1u);
    EXPECT_EQ(Job.Attempts[0].Cache.CorruptEntries, 1u);
    EXPECT_EQ(Job.Attempts[0].Cache.Stores, 1u) << "must re-store after miss";
  }

  // And the re-stored entries serve the next run.
  supervise::BatchResult Warm = supervise::runSupervisedBatch(Jobs, Options);
  for (const supervise::JobResult &Job : Warm.Jobs)
    EXPECT_EQ(Job.Attempts[0].Cache.Hits, 1u);
}
