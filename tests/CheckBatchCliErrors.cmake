# Tool-level CLI contract for intro_batch: every malformed numeric flag
# must exit with code 2 (ExitBadInput) and print a diagnostic that names
# the offending flag.  Before the strict parser, `--seed=x` escaped
# std::stoul as std::invalid_argument and surfaced as exit 3 ("internal
# error"), and out-of-range values were silently truncated.
#
# Run as: cmake -DINTRO_BATCH=<path> -P CheckBatchCliErrors.cmake

if(NOT DEFINED INTRO_BATCH)
  message(FATAL_ERROR "pass -DINTRO_BATCH=<path to intro_batch>")
endif()

set(FAILURES 0)

# check_rejects(<flag-with-value> <expected-stderr-substring>)
function(check_rejects ARG EXPECT)
  execute_process(
    COMMAND ${INTRO_BATCH} ${ARG} nonexistent.intro
    RESULT_VARIABLE CODE
    OUTPUT_VARIABLE OUT
    ERROR_VARIABLE ERR)
  if(NOT CODE EQUAL 2)
    message(SEND_ERROR "${ARG}: expected exit 2 (bad input), got ${CODE}\n"
                       "stderr: ${ERR}")
  endif()
  string(FIND "${ERR}" "${EXPECT}" POS)
  if(POS EQUAL -1)
    message(SEND_ERROR "${ARG}: stderr does not name the flag\n"
                       "expected substring: ${EXPECT}\nstderr: ${ERR}")
  endif()
endfunction()

# Garbage values: must be diagnosed, not escape as an exception (exit 3).
check_rejects(--max-attempts=x "--max-attempts")
check_rejects(--seed=12q       "--seed")
check_rejects(--deadline=nan   "--deadline")
check_rejects(--workers=       "--workers")

# Out-of-range / overflow: must be rejected, not silently truncated.
check_rejects(--max-attempts=0           "--max-attempts")
check_rejects(--workers=4294967296       "--workers")
check_rejects(--seed=18446744073709551616 "--seed")

# --mem-limit=0 means "no address space at all", not "no limit": rejected.
check_rejects(--mem-limit=0 "--mem-limit")

# Unknown flags still fail fast.
execute_process(
  COMMAND ${INTRO_BATCH} --retries=3 nonexistent.intro
  RESULT_VARIABLE CODE
  ERROR_VARIABLE ERR)
if(NOT CODE EQUAL 2)
  message(SEND_ERROR "unknown flag: expected exit 2, got ${CODE}")
endif()
