//===- tests/FuzzTests.cpp - Fuzzing subsystem unit tests -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// src/fuzz/ unit tests: generator determinism (byte-identical programs per
/// seed) and validity across every bias, mutator determinism and
/// never-crash, parse→print→parse fixpoint over the checked-in corpus,
/// oracle cleanliness on the known-good fixtures, planted-bug detection for
/// every bug double, reducer convergence to a tiny repro, and campaign
/// determinism across worker counts.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"
#include "fuzz/Generator.h"
#include "fuzz/Mutator.h"
#include "fuzz/Oracles.h"
#include "fuzz/Reducer.h"

#include "TestPrograms.h"
#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "ir/Validator.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace intro;
using namespace intro::fuzz;
using namespace intro::testing;
namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Text;
  Text << In.rdbuf();
  return Text.str();
}

/// In-process oracle options: no scratch dirs, so the disk-backed parity
/// oracles are skipped and tests stay hermetic and fast.
OracleOptions quickOracles() {
  OracleOptions Options;
  Options.Oracles = OracleSet::defaults()
                        .disable(OracleKind::CacheWarmColdParity);
  return Options;
}

} // namespace

// --- Generator --------------------------------------------------------------

TEST(FuzzGenerator, SameSeedIsByteIdentical) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    FuzzBias Bias = biasForSeed(Seed);
    std::string A = printProgram(generateFuzzProgram(Seed, Bias));
    std::string B = printProgram(generateFuzzProgram(Seed, Bias));
    EXPECT_EQ(A, B) << "seed " << Seed;
  }
}

TEST(FuzzGenerator, DistinctSeedsDiffer) {
  // Not a hard requirement of any oracle, but a collapse to one program
  // would quietly gut the campaign's coverage.
  std::string A = printProgram(
      generateFuzzProgram(1, FuzzBias::Uniform));
  std::string B = printProgram(
      generateFuzzProgram(2, FuzzBias::Uniform));
  EXPECT_NE(A, B);
}

TEST(FuzzGenerator, EveryBiasYieldsValidatedPrograms) {
  for (size_t BiasIndex = 0; BiasIndex < NumFuzzBiases; ++BiasIndex) {
    FuzzBias Bias = static_cast<FuzzBias>(BiasIndex);
    for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
      Program Prog = generateFuzzProgram(Seed, Bias);
      EXPECT_TRUE(validateProgram(Prog).empty())
          << fuzzBiasName(Bias) << " seed " << Seed;
      EXPECT_GT(Prog.numMethods(), 0u);
    }
  }
}

TEST(FuzzGenerator, BiasNamesRoundTrip) {
  for (size_t BiasIndex = 0; BiasIndex < NumFuzzBiases; ++BiasIndex) {
    FuzzBias Bias = static_cast<FuzzBias>(BiasIndex);
    FuzzBias Parsed;
    ASSERT_TRUE(fuzzBiasFromName(fuzzBiasName(Bias), Parsed));
    EXPECT_EQ(Parsed, Bias);
  }
  FuzzBias Ignored;
  EXPECT_FALSE(fuzzBiasFromName("no-such-bias", Ignored));
}

// --- Mutator ----------------------------------------------------------------

TEST(FuzzMutator, SameSeedSameMutant) {
  std::string Text =
      printProgram(generateFuzzProgram(3, FuzzBias::CastHeavy));
  for (uint64_t Seed = 0; Seed < 20; ++Seed)
    EXPECT_EQ(mutateBytes(Seed, Text), mutateBytes(Seed, Text));
}

TEST(FuzzMutator, MutantsNeverCrashTheFrontend) {
  // The round-trip contract: any byte soup either fails to parse (with a
  // diagnostic) or parses and reaches the print/parse fixpoint.  This is
  // the in-process regression net for the lexer hang the first campaign
  // found (an Error token without a terminating EndOfFile).
  for (uint64_t ProgSeed = 1; ProgSeed <= 6; ++ProgSeed) {
    std::string Text = printProgram(
        generateFuzzProgram(ProgSeed, biasForSeed(ProgSeed)));
    for (uint64_t MutSeed = 0; MutSeed < 200; ++MutSeed) {
      std::string Mutant = mutateBytes(ProgSeed * 1000003ULL + MutSeed, Text);
      RoundTripOutcome Out = roundTripCheck(Mutant);
      EXPECT_TRUE(Out.ok()) << "prog " << ProgSeed << " mutant " << MutSeed
                            << ": " << Out.Detail;
    }
  }
}

TEST(FuzzMutator, LexerErrorTokenTerminates) {
  // Minimized repro of the parser hang: an unexpected character inside a
  // method body used to leave the token stream without EndOfFile, spinning
  // the body-skip loop forever.  Must now diagnose in finite time.
  ParseResult Result = parseProgram("class A { method m() { @");
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Errors.front().find("unexpected character"),
            std::string::npos);
  // Same shape with the other single-char error lexemes.
  EXPECT_FALSE(parseProgram("class A { method m() { :").ok());
  EXPECT_FALSE(parseProgram("class A { method m() { -").ok());
  EXPECT_FALSE(parseProgram("class A { entry static method m() { x = y ~").ok());
}

// --- Corpus -----------------------------------------------------------------

TEST(FuzzCorpus, EveryFileRoundTripsAsAFixpoint) {
  fs::path Dir = FUZZ_CORPUS_DIR;
  size_t Seen = 0;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".ir")
      continue;
    ++Seen;
    std::string Source = readFile(Entry.path());
    RoundTripOutcome Out = roundTripCheck(Source);
    EXPECT_TRUE(Out.Parsed) << Entry.path();
    EXPECT_TRUE(Out.Fixpoint) << Entry.path() << ": " << Out.Detail;
    // Corpus files are stored in canonical printer form: parsing and
    // re-printing must reproduce the exact bytes on disk.
    ParseResult Parsed = parseProgram(Source);
    ASSERT_TRUE(Parsed.ok());
    EXPECT_EQ(printProgram(Parsed.Prog), Source) << Entry.path();
  }
  EXPECT_GE(Seen, 10u) << "seed corpus shrank below the checked-in floor";
}

TEST(FuzzCorpus, CoversEveryBias) {
  fs::path Dir = FUZZ_CORPUS_DIR;
  for (size_t BiasIndex = 0; BiasIndex < NumFuzzBiases; ++BiasIndex) {
    std::string Needle =
        std::string("fuzz-") + fuzzBiasName(static_cast<FuzzBias>(BiasIndex));
    bool Found = false;
    for (const fs::directory_entry &Entry : fs::directory_iterator(Dir))
      Found |= Entry.path().filename().string().rfind(Needle, 0) == 0;
    EXPECT_TRUE(Found) << "no corpus file for bias " << Needle;
  }
}

// --- Oracles ----------------------------------------------------------------

TEST(FuzzOracles, CleanOnKnownGoodFixtures) {
  const Program &Boxes = makeTwoBoxes().Prog;
  const Program &Dispatch = makeDispatch().Prog;
  const Program &Mixed = makeMixed().Prog;
  for (const Program *Prog : {&Boxes, &Dispatch, &Mixed}) {
    OracleOutcome Out = checkProgram(*Prog, quickOracles());
    EXPECT_TRUE(Out.clean());
    EXPECT_GT(Out.ChecksRun, 0u);
    for (const Finding &F : Out.Findings)
      ADD_FAILURE() << oracleKindName(F.Oracle) << "/" << F.Policy << ": "
                    << F.Detail;
  }
}

TEST(FuzzOracles, EveryPlantedBugIsDetected) {
  // Each bug double must be caught by at least one oracle on at least one
  // seed in a small sweep (not every program exercises every fact kind).
  for (PlantedBug Bug : {PlantedBug::DropMaxHeapPerVar,
                         PlantedBug::DropMaxCallTarget,
                         PlantedBug::ForgetThrows}) {
    bool Caught = false;
    for (uint64_t Seed = 1; Seed <= 12 && !Caught; ++Seed) {
      OracleOptions Options = quickOracles();
      Options.Bug = Bug;
      Program Prog = generateFuzzProgram(Seed, biasForSeed(Seed));
      Caught = !checkProgram(Prog, Options).clean();
    }
    EXPECT_TRUE(Caught) << "planted bug " << plantedBugName(Bug)
                        << " slipped past every oracle";
  }
}

TEST(FuzzOracles, PlantedBugNamesRoundTrip) {
  for (PlantedBug Bug : {PlantedBug::None, PlantedBug::DropMaxHeapPerVar,
                         PlantedBug::DropMaxCallTarget,
                         PlantedBug::ForgetThrows}) {
    PlantedBug Parsed;
    ASSERT_TRUE(plantedBugFromName(plantedBugName(Bug), Parsed));
    EXPECT_EQ(Parsed, Bug);
  }
  for (size_t Kind = 0; Kind < NumOracleKinds; ++Kind) {
    OracleKind Parsed;
    ASSERT_TRUE(oracleKindFromName(
        oracleKindName(static_cast<OracleKind>(Kind)), Parsed));
    EXPECT_EQ(Parsed, static_cast<OracleKind>(Kind));
  }
}

TEST(FuzzOracles, ApplyPlantedBugDropsFromProjections) {
  // The double must actually corrupt: solve the two-boxes program and check
  // drop-max-heap removes an element from some multi-element var set.
  TwoBoxes Boxes = makeTwoBoxes();
  ContextTable Table;
  auto Policy = makeInsensitivePolicy();
  PointsToResult Clean = solvePointsTo(Boxes.Prog, *Policy, Table);
  PointsToResult Corrupt = Clean;
  applyPlantedBug(PlantedBug::DropMaxHeapPerVar, Corrupt);
  size_t CleanTotal = 0, CorruptTotal = 0;
  for (const SortedIdSet &Set : Clean.VarHeaps)
    CleanTotal += Set.size();
  for (const SortedIdSet &Set : Corrupt.VarHeaps)
    CorruptTotal += Set.size();
  EXPECT_LT(CorruptTotal, CleanTotal);
}

// --- Reducer ----------------------------------------------------------------

TEST(FuzzReducer, ConvergesOnPlantedSoundnessBug) {
  // End-to-end acceptance check: a planted soundness bug in the solver
  // double, found on a generated program, must reduce to <= 10 statements
  // with the predicate still holding on the emitted repro.
  OracleOptions Options = quickOracles();
  Options.Bug = PlantedBug::DropMaxHeapPerVar;
  bool Exercised = false;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Program Prog = generateFuzzProgram(Seed, biasForSeed(Seed));
    OracleOutcome Out = checkProgram(Prog, Options);
    if (Out.clean())
      continue;
    Exercised = true;
    OracleKind Kind = Out.Findings.front().Oracle;
    OracleOptions Sub = Options;
    Sub.Oracles = OracleSet().enable(Kind);
    auto Predicate = [&Sub, Kind](const Program &Candidate) {
      for (const Finding &F : checkProgram(Candidate, Sub).Findings)
        if (F.Oracle == Kind)
          return true;
      return false;
    };
    ReduceOutcome Reduced = reduceProgram(Prog, Predicate);
    EXPECT_TRUE(Reduced.PredicateHolds) << "seed " << Seed;
    EXPECT_LE(Reduced.Statements, 10u)
        << "seed " << Seed << " repro:\n" << Reduced.Source;
    EXPECT_LT(Reduced.Statements, countStatements(Prog));
    // The repro is canonical: it re-parses to its own printed form.
    ParseResult Parsed = parseProgram(Reduced.Source);
    ASSERT_TRUE(Parsed.ok());
    EXPECT_EQ(printProgram(Parsed.Prog), Reduced.Source);
  }
  EXPECT_TRUE(Exercised);
}

TEST(FuzzReducer, FlakyPredicateReturnsUnreducedSource) {
  Program Prog = generateFuzzProgram(1, FuzzBias::Uniform);
  ReduceOutcome Out =
      reduceProgram(Prog, [](const Program &) { return false; });
  EXPECT_FALSE(Out.PredicateHolds);
  EXPECT_EQ(Out.Source, printProgram(Prog));
  EXPECT_EQ(Out.RemovedUnits, 0u);
}

TEST(FuzzReducer, HonorsCheckBudget) {
  Program Prog = generateFuzzProgram(2, FuzzBias::DeepCalls);
  ReducerOptions Options;
  Options.MaxChecks = 5;
  uint32_t Calls = 0;
  ReduceOutcome Out = reduceProgram(
      Prog, [&Calls](const Program &) { ++Calls; return true; }, Options);
  // One extra call is allowed for the final canonicalization re-check.
  EXPECT_LE(Out.Checks, Options.MaxChecks);
  EXPECT_LE(Calls, Options.MaxChecks + 1);
}

// --- Campaign ---------------------------------------------------------------

TEST(FuzzCampaign, DeterministicAcrossWorkerCounts) {
  CampaignOptions Options;
  Options.Seed = 1;
  Options.Count = 12;
  Options.MutationsPerSeed = 2;
  Options.Oracles = quickOracles();
  Options.Oracles.Bug = PlantedBug::DropMaxHeapPerVar;
  Options.ReduceMaxChecks = 50;

  Options.Workers = 1;
  CampaignOutcome One = runCampaign(Options);
  Options.Workers = 4;
  CampaignOutcome Four = runCampaign(Options);

  std::ostringstream ReportOne, ReportFour;
  Options.Workers = 1;
  writeCampaignReportJson(ReportOne, Options, One);
  writeCampaignReportJson(ReportFour, Options, Four);
  // Everything outside the timing section is byte-identical; compare the
  // deterministic prefix (the timing object is the last key).
  std::string A = ReportOne.str(), B = ReportFour.str();
  A.resize(A.rfind("\"timing\""));
  B.resize(B.rfind("\"timing\""));
  EXPECT_EQ(A, B);
  EXPECT_GT(One.TotalFindings, 0u);
  ASSERT_EQ(One.Seeds.size(), Four.Seeds.size());
  for (size_t Index = 0; Index < One.Seeds.size(); ++Index) {
    EXPECT_EQ(One.Seeds[Index].Reduction.Source,
              Four.Seeds[Index].Reduction.Source);
    EXPECT_EQ(One.Seeds[Index].Findings.size(),
              Four.Seeds[Index].Findings.size());
  }
}

TEST(FuzzCampaign, WritesQuarantineStyleArtifacts) {
  fs::path Dir = fs::temp_directory_path() /
                 ("fuzz-artifacts-" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  CampaignOptions Options;
  Options.Seed = 1;
  Options.Count = 6;
  Options.Oracles = quickOracles();
  Options.Oracles.Bug = PlantedBug::DropMaxHeapPerVar;
  Options.ReduceMaxChecks = 50;
  Options.ReproDir = Dir.string();
  CampaignOutcome Outcome = runCampaign(Options);
  ASSERT_GT(Outcome.TotalFindings, 0u);
  bool SawTriple = false;
  for (const SeedReport &Seed : Outcome.Seeds) {
    if (Seed.ReproName.empty())
      continue;
    SawTriple = true;
    fs::path Stem = Dir / Seed.ReproName;
    EXPECT_TRUE(fs::exists(Stem.string() + ".ir"));
    EXPECT_TRUE(fs::exists(Stem.string() + ".reason.txt"));
    EXPECT_TRUE(fs::exists(Stem.string() + ".triage.json"));
    // The .ir repro replays: it parses and still trips the oracle.
    ParseResult Parsed = parseProgram(readFile(Stem.string() + ".ir"));
    ASSERT_TRUE(Parsed.ok());
    EXPECT_FALSE(checkProgram(Parsed.Prog, Options.Oracles).clean());
    std::string Triage = readFile(Stem.string() + ".triage.json");
    EXPECT_NE(Triage.find("intro-fuzz-triage-v1"), std::string::npos);
  }
  EXPECT_TRUE(SawTriple);
  fs::remove_all(Dir);
}

TEST(FuzzCampaign, BudgetStopsLaunchingButKeepsPrefixContiguous) {
  CampaignOptions Options;
  Options.Seed = 1;
  Options.Count = 100000;
  Options.BudgetSeconds = 0.2;
  Options.Oracles = quickOracles();
  CampaignOutcome Outcome = runCampaign(Options);
  EXPECT_TRUE(Outcome.BudgetExhausted);
  EXPECT_LT(Outcome.SeedsStarted, Outcome.SeedsPlanned);
  EXPECT_GT(Outcome.SeedsStarted, 0u);
  for (size_t Index = 0; Index < Outcome.Seeds.size(); ++Index)
    EXPECT_EQ(Outcome.Seeds[Index].Seed, Options.Seed + Index);
}
