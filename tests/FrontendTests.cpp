//===- tests/FrontendTests.cpp - Lexer/Parser/Printer tests ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/Printer.h"

#include "analysis/ContextPolicy.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "ir/Validator.h"
#include "workload/DaCapo.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace intro;
using namespace intro::testing;

TEST(Lexer, TokenKinds) {
  auto Tokens = tokenize("class Foo { x = (A) y  a.B#f = z  C::m(a, b) }");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Identifier, TokenKind::LBrace,
      TokenKind::Identifier, TokenKind::Equals,     TokenKind::LParen,
      TokenKind::Identifier, TokenKind::RParen,     TokenKind::Identifier,
      TokenKind::Identifier, TokenKind::Dot,        TokenKind::Identifier,
      TokenKind::Hash,       TokenKind::Identifier, TokenKind::Equals,
      TokenKind::Identifier, TokenKind::Identifier, TokenKind::ColonColon,
      TokenKind::Identifier, TokenKind::LParen,     TokenKind::Identifier,
      TokenKind::Comma,      TokenKind::Identifier, TokenKind::RParen,
      TokenKind::RBrace,     TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, CommentsAndLines) {
  auto Tokens = tokenize("// a comment\nfoo // trailing\nbar");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[0].Line, 2u);
  EXPECT_EQ(Tokens[1].Text, "bar");
  EXPECT_EQ(Tokens[1].Line, 3u);
}

TEST(Lexer, ArrowAndDollarNames) {
  auto Tokens = tokenize("method f() -> $ret");
  ASSERT_GE(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::Arrow);
  EXPECT_EQ(Tokens[5].Text, "$ret");
}

TEST(Lexer, ErrorTokenIsAlwaysFollowedByEndOfFile) {
  // The stream must end with EndOfFile even after an Error token: parser
  // loops keyed on EndOfFile would otherwise spin forever (the hang the
  // first mutation-fuzz campaign found).
  auto Tokens = tokenize("foo @");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[Tokens.size() - 2].Kind, TokenKind::Error);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

namespace {

const char *TwoBoxesSource = R"(
// The classic container example.
class Object
class Box extends Object {
  field f
  method set(p) {
    this.Box#f = p
  }
  method get() -> r {
    r = this.Box#f
  }
}
class A extends Object
class B extends Object
class Main extends Object {
  entry static method main() {
    b1 = new Box
    b2 = new Box
    a = new A
    b = new B
    b1.set(a)
    b2.set(b)
    oa = b1.get()
    ob = b2.get()
    ca = (A) oa
  }
}
)";

} // namespace

TEST(Parser, ParsesTwoBoxes) {
  ParseResult Result = parseProgram(TwoBoxesSource);
  ASSERT_TRUE(Result.ok()) << Result.Errors[0];
  EXPECT_TRUE(validateProgram(Result.Prog).empty());
  EXPECT_EQ(Result.Prog.numTypes(), 5u);
  EXPECT_EQ(Result.Prog.numHeaps(), 4u);
  EXPECT_EQ(Result.Prog.numSites(), 4u);

  // The parsed program behaves like the builder-made TwoBoxes: insens says
  // the cast may fail, 2objH proves it safe.
  auto Insens = makeInsensitivePolicy();
  ContextTable T1;
  PointsToResult RI = solvePointsTo(Result.Prog, *Insens, T1);
  EXPECT_EQ(computePrecision(Result.Prog, RI).CastsThatMayFail, 1u);
  auto Obj = makeObjectPolicy(Result.Prog, 2, 1);
  ContextTable T2;
  PointsToResult RO = solvePointsTo(Result.Prog, *Obj, T2);
  EXPECT_EQ(computePrecision(Result.Prog, RO).CastsThatMayFail, 0u);
}

TEST(Parser, ForwardReferences) {
  // Subclass before superclass; static call to a later method.
  const char *Source = R"(
class Late extends Root {
  method m() { }
}
class Root
class Main extends Root {
  entry static method main() {
    x = Main::helper()
    l = new Late
    l.m()
  }
  static method helper() -> r {
    r = new Late
  }
}
)";
  ParseResult Result = parseProgram(Source);
  ASSERT_TRUE(Result.ok()) << Result.Errors[0];
  EXPECT_TRUE(validateProgram(Result.Prog).empty());
}

TEST(Parser, ReturnStatement) {
  const char *Source = R"(
class Object {
  entry static method main() {
    v = Object::mk()
  }
  static method mk() {
    x = new Object
    return x
  }
}
)";
  ParseResult Result = parseProgram(Source);
  ASSERT_TRUE(Result.ok()) << Result.Errors[0];
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult R = solvePointsTo(Result.Prog, *Insens, Table);
  // main's v receives the object allocated in mk.
  bool Found = false;
  for (uint32_t VarRaw = 0; VarRaw < Result.Prog.numVars(); ++VarRaw)
    if (Result.Prog.varName(VarId(VarRaw)) == "v" &&
        !R.pointsTo(VarId(VarRaw)).empty())
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Parser, ErrorUnknownClass) {
  ParseResult Result = parseProgram(R"(
class Object {
  entry static method main() {
    x = new Missing
  }
}
)");
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Errors[0].find("unknown class 'Missing'"),
            std::string::npos);
}

TEST(Parser, ErrorUnknownField) {
  ParseResult Result = parseProgram(R"(
class Object {
  entry static method main() {
    x = new Object
    y = x.Object#nope
  }
}
)");
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Errors[0].find("unknown field"), std::string::npos);
}

TEST(Parser, ErrorCyclicInheritance) {
  ParseResult Result = parseProgram(R"(
class A extends B
class B extends A
)");
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Errors[0].find("cyclic"), std::string::npos);
}

TEST(Parser, ErrorDuplicateClass) {
  ParseResult Result = parseProgram("class A\nclass A\n");
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Errors[0].find("duplicate class"), std::string::npos);
}

TEST(Parser, ErrorVirtualEntry) {
  ParseResult Result = parseProgram(R"(
class A {
  entry method main() { }
}
)");
  ASSERT_FALSE(Result.ok());
  EXPECT_NE(Result.Errors[0].find("must be static"), std::string::npos);
}

TEST(Printer, RoundTripPreservesStructureAndSemantics) {
  TwoBoxes T1 = makeTwoBoxes();
  Dispatch T2 = makeDispatch();
  Mixed T3 = makeMixed();
  for (const Program *Original : {&T1.Prog, &T2.Prog, &T3.Prog}) {
    std::string Text = printProgram(*Original);
    ParseResult Reparsed = parseProgram(Text);
    ASSERT_TRUE(Reparsed.ok()) << Reparsed.Errors[0] << "\nsource:\n" << Text;
    EXPECT_TRUE(validateProgram(Reparsed.Prog).empty());

    EXPECT_EQ(Reparsed.Prog.numTypes(), Original->numTypes());
    EXPECT_EQ(Reparsed.Prog.numMethods(), Original->numMethods());
    EXPECT_EQ(Reparsed.Prog.numHeaps(), Original->numHeaps());
    EXPECT_EQ(Reparsed.Prog.numSites(), Original->numSites());
    EXPECT_EQ(Reparsed.Prog.numInstructions(), Original->numInstructions());

    // Identical analysis outcomes (precision metrics are name-independent).
    auto Insens = makeInsensitivePolicy();
    ContextTable T1;
    ContextTable T2;
    PointsToResult R1 = solvePointsTo(*Original, *Insens, T1);
    PointsToResult R2 = solvePointsTo(Reparsed.Prog, *Insens, T2);
    PrecisionMetrics M1 = computePrecision(*Original, R1);
    PrecisionMetrics M2 = computePrecision(Reparsed.Prog, R2);
    EXPECT_EQ(M1.PolymorphicVirtualCallSites, M2.PolymorphicVirtualCallSites);
    EXPECT_EQ(M1.ReachableMethods, M2.ReachableMethods);
    EXPECT_EQ(M1.CastsThatMayFail, M2.CastsThatMayFail);
    EXPECT_EQ(R1.Stats.VarPointsToTuples, R2.Stats.VarPointsToTuples);
  }
}

TEST(Printer, PrintParseReprintIsIdempotent) {
  TwoBoxes T = makeTwoBoxes();
  std::string Once = printProgram(T.Prog);
  ParseResult Reparsed = parseProgram(Once);
  ASSERT_TRUE(Reparsed.ok());
  std::string Twice = printProgram(Reparsed.Prog);
  EXPECT_EQ(Once, Twice);
}

TEST(Printer, RoundTripsGeneratedWorkload) {
  // The whole synthetic antlr benchmark survives a round trip.
  Program Original = generateWorkload(dacapoProfile("antlr"));
  std::string Text = printProgram(Original);
  ParseResult Reparsed = parseProgram(Text);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.Errors[0];
  EXPECT_TRUE(validateProgram(Reparsed.Prog).empty());
  EXPECT_EQ(Reparsed.Prog.numInstructions(), Original.numInstructions());
  EXPECT_EQ(printProgram(Reparsed.Prog), Text);
}

TEST(Parser, ExceptionSyntaxErrors) {
  // catch without '('.
  ParseResult R1 = parseProgram(R"(
class Object {
  entry static method main() {
    Object::f() catch Object e
  }
  static method f() { }
}
)");
  ASSERT_FALSE(R1.ok());
  EXPECT_NE(R1.Errors[0].find("expected '(' after 'catch'"),
            std::string::npos);

  // catch with an unknown type.
  ParseResult R2 = parseProgram(R"(
class Object {
  entry static method main() {
    Object::f() catch (Nope) e
  }
  static method f() { }
}
)");
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.Errors[0].find("unknown class 'Nope'"), std::string::npos);
}

TEST(Parser, StaticFieldSyntaxErrors) {
  // Static store to an unknown field.
  ParseResult R = parseProgram(R"(
class Object {
  entry static method main() {
    x = new Object
    Object#missing = x
  }
}
)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("unknown field"), std::string::npos);
}

TEST(Parser, ThrowRequiresVariable) {
  ParseResult R = parseProgram(R"(
class Object {
  entry static method main() {
    throw {
  }
}
)");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, StaticLoadStoreRoundTrip) {
  const char *Source = R"(
class Object
class G extends Object {
  field cell
}
class Main extends Object {
  entry static method main() {
    x = new G
    G#cell = x
    y = G#cell
  }
}
)";
  ParseResult R = parseProgram(Source);
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  std::string Once = printProgram(R.Prog);
  EXPECT_NE(Once.find("G#cell = x"), std::string::npos);
  EXPECT_NE(Once.find("y = G#cell"), std::string::npos);
  ParseResult Again = parseProgram(Once);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(printProgram(Again.Prog), Once);
}

// --- Hostile input: the frontend is the untrusted boundary -------------------
//
// intro_batch feeds arbitrary files into parseProgram inside a sandboxed
// child; the parser must turn anything — truncated programs, binary
// garbage, pathological nesting — into line-numbered diagnostics, never a
// crash or an abort.

TEST(Parser, EveryTruncationOfAValidProgramFailsGracefully) {
  const char *Source = R"(
class Object
class Box extends Object {
  field f
  method set(p) {
    this.Box#f = p
  }
}
class Main extends Object {
  entry static method main() {
    b = new Box
    b.set(b)
  }
}
)";
  std::string Full(Source);
  for (size_t Length = 0; Length < Full.size(); ++Length) {
    std::string Cut = Full.substr(0, Length);
    ParseResult Result = parseProgram(Cut);
    if (Result.ok())
      continue; // Some prefixes are complete programs; that is fine.
    ASSERT_FALSE(Result.Errors.empty()) << "length " << Length;
    EXPECT_EQ(Result.Errors[0].rfind("line ", 0), 0u)
        << "no line number at truncation length " << Length << ": "
        << Result.Errors[0];
  }
}

TEST(Parser, BinaryGarbageIsRejectedWithLineNumberedDiagnostics) {
  const std::vector<std::string> Garbage = {
      std::string("\x01\x02\x03\xff\xfe"),
      std::string("class\0Object", 12),
      std::string(256, '\xff'),
      "\x7f" "ELF\x02\x01\x01\x00",
      "class Object\n\xde\xad\xbe\xef\n",
  };
  for (const std::string &Bytes : Garbage) {
    ParseResult Result = parseProgram(Bytes);
    ASSERT_FALSE(Result.ok());
    ASSERT_FALSE(Result.Errors.empty());
    EXPECT_EQ(Result.Errors[0].rfind("line ", 0), 0u) << Result.Errors[0];
  }
}

TEST(Parser, DiagnosticsPointAtTheOffendingLine) {
  // The garbage byte sits on line 3; the diagnostic must say so.
  ParseResult Result = parseProgram("class Object\nclass A extends Object\n@");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.Errors[0].rfind("line 3:", 0), 0u) << Result.Errors[0];
}

TEST(Parser, PathologicalNestingDoesNotOverflowOrHang) {
  // 100k unmatched openers: the parser must fail fast, not recurse per
  // brace or scan quadratically.
  for (char Opener : {'{', '(', '}'}) {
    std::string Bomb = "class Object " + std::string(100000, Opener);
    ParseResult Result = parseProgram(Bomb);
    EXPECT_FALSE(Result.ok());
    EXPECT_FALSE(Result.Errors.empty());
  }
  // A long but well-formed inheritance chain still parses.
  std::string Chain = "class C0\n";
  for (int Index = 1; Index < 2000; ++Index)
    Chain += "class C" + std::to_string(Index) + " extends C" +
             std::to_string(Index - 1) + "\n";
  EXPECT_TRUE(parseProgram(Chain).ok());
}

TEST(Lexer, GarbageBytesBecomeErrorTokensWithLines) {
  auto Tokens = tokenize("foo\n\x01\nbar");
  bool SawError = false;
  for (const Token &T : Tokens)
    if (T.Kind == TokenKind::Error) {
      SawError = true;
      EXPECT_EQ(T.Line, 2u);
    }
  EXPECT_TRUE(SawError);
}
