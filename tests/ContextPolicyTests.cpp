//===- tests/ContextPolicyTests.cpp - RECORD/MERGE white-box tests --------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// White-box tests of the context constructors: for each flavor, the exact
/// element tuples produced by RECORD and MERGE are inspected through the
/// ContextTable, pinning the abstractions (most-recent-first ordering,
/// depth truncation, heap-context derivation, static-call treatment).
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace intro;
using namespace intro::testing;

namespace {

std::vector<uint32_t> elems(const ContextTable &Table, CtxId Ctx) {
  auto Span = Table.elements(Ctx);
  return std::vector<uint32_t>(Span.begin(), Span.end());
}

std::vector<uint32_t> elems(const ContextTable &Table, HCtxId HCtx) {
  auto Span = Table.elements(HCtx);
  return std::vector<uint32_t>(Span.begin(), Span.end());
}

} // namespace

TEST(ContextTable, EmptyContextsAreHandleZero) {
  ContextTable Table;
  EXPECT_EQ(Table.emptyCtx().index(), 0u);
  EXPECT_EQ(Table.emptyHCtx().index(), 0u);
  EXPECT_TRUE(Table.elements(Table.emptyCtx()).empty());
  EXPECT_EQ(Table.numContexts(), 1u);
}

TEST(ContextTable, InternsDeterministically) {
  ContextTable Table;
  std::vector<uint32_t> Elements = {3, 1, 4};
  CtxId A = Table.internCtx(Elements);
  CtxId B = Table.internCtx(Elements);
  EXPECT_EQ(A, B);
  EXPECT_EQ(elems(Table, A), Elements);
  // Calling and heap contexts are independent spaces.
  HCtxId H = Table.internHCtx(Elements);
  EXPECT_EQ(elems(Table, H), Elements);
}

TEST(Insensitive, EverythingIsStar) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Policy = makeInsensitivePolicy();
  CtxId SomeCtx = Table.internCtx(std::vector<uint32_t>{9, 8});
  EXPECT_EQ(Policy->record(T.Box1, SomeCtx, Table), Table.emptyHCtx());
  EXPECT_EQ(Policy->merge(T.Box1, Table.emptyHCtx(), T.GetCall1,
                          MethodId(0), SomeCtx, Table),
            Table.emptyCtx());
  EXPECT_EQ(Policy->mergeStatic(T.GetCall1, MethodId(0), SomeCtx, Table),
            Table.emptyCtx());
}

TEST(CallSite, PushesSitesMostRecentFirst) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Policy = makeCallSitePolicy(2, 1);

  CtxId C1 = Policy->merge(T.HeapA, Table.emptyHCtx(), T.SetCall1,
                           MethodId(0), Table.emptyCtx(), Table);
  EXPECT_EQ(elems(Table, C1), (std::vector<uint32_t>{T.SetCall1.index()}));

  CtxId C2 = Policy->merge(T.HeapA, Table.emptyHCtx(), T.GetCall1,
                           MethodId(0), C1, Table);
  EXPECT_EQ(elems(Table, C2), (std::vector<uint32_t>{T.GetCall1.index(),
                                                     T.SetCall1.index()}));

  // Depth 2: a third push truncates the oldest element.
  CtxId C3 = Policy->merge(T.HeapA, Table.emptyHCtx(), T.GetCall2,
                           MethodId(0), C2, Table);
  EXPECT_EQ(elems(Table, C3), (std::vector<uint32_t>{T.GetCall2.index(),
                                                     T.GetCall1.index()}));

  // RECORD: heap context = first HeapDepth elements of the calling ctx.
  HCtxId H = Policy->record(T.HeapA, C3, Table);
  EXPECT_EQ(elems(Table, H), (std::vector<uint32_t>{T.GetCall2.index()}));

  // Static merge behaves like virtual merge for call-site sensitivity.
  CtxId CS = Policy->mergeStatic(T.SetCall2, MethodId(0), C1, Table);
  EXPECT_EQ(elems(Table, CS), (std::vector<uint32_t>{T.SetCall2.index(),
                                                     T.SetCall1.index()}));
}

TEST(ObjectSens, ContextIsReceiverAllocationChain) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Policy = makeObjectPolicy(T.Prog, 2, 1);

  // Receiver Box1 with empty heap context.
  CtxId C1 = Policy->merge(T.Box1, Table.emptyHCtx(), T.SetCall1, MethodId(0),
                           Table.emptyCtx(), Table);
  EXPECT_EQ(elems(Table, C1), (std::vector<uint32_t>{T.Box1.index()}));

  // An object allocated while running in C1 records hctx [Box1].
  HCtxId H = Policy->record(T.HeapA, C1, Table);
  EXPECT_EQ(elems(Table, H), (std::vector<uint32_t>{T.Box1.index()}));

  // Dispatch on that object: context = [HeapA, Box1] (depth 2).
  CtxId C2 =
      Policy->merge(T.HeapA, H, T.GetCall1, MethodId(0), C1, Table);
  EXPECT_EQ(elems(Table, C2),
            (std::vector<uint32_t>{T.HeapA.index(), T.Box1.index()}));

  // The caller's own context is irrelevant to the merge (pure obj-sens).
  CtxId C2b = Policy->merge(T.HeapA, H, T.GetCall1, MethodId(0),
                            Table.emptyCtx(), Table);
  EXPECT_EQ(C2, C2b);

  // Static calls propagate the caller context unchanged.
  EXPECT_EQ(Policy->mergeStatic(T.SetCall1, MethodId(0), C2, Table), C2);
}

TEST(TypeSens, ElementIsClassContainingAllocation) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Policy = makeTypePolicy(T.Prog, 2, 1);

  // All four heaps are allocated in main, which class Object declares, so
  // the context element for any receiver is Object's type id.
  TypeId MainClass = T.Prog.classOfMethod(T.Prog.heap(T.Box1).InMethod);
  CtxId C1 = Policy->merge(T.Box1, Table.emptyHCtx(), T.SetCall1, MethodId(0),
                           Table.emptyCtx(), Table);
  EXPECT_EQ(elems(Table, C1), (std::vector<uint32_t>{MainClass.index()}));

  // Boxes and payloads share the allocating class: contexts coincide (the
  // known coarseness of type-sensitivity).
  CtxId C2 = Policy->merge(T.HeapB, Table.emptyHCtx(), T.SetCall2,
                           MethodId(0), Table.emptyCtx(), Table);
  EXPECT_EQ(C1, C2);
}

TEST(Hybrid, ElementsAreTaggedByKind) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Policy = makeHybridPolicy(T.Prog, 2, 1);

  // Virtual merge: untagged allocation-site element.
  CtxId CV = Policy->merge(T.Box1, Table.emptyHCtx(), T.SetCall1, MethodId(0),
                           Table.emptyCtx(), Table);
  // Static merge from CV: tagged invocation-site element in front.
  CtxId CS = Policy->mergeStatic(T.SetCall1, MethodId(0), CV, Table);
  auto Elements = elems(Table, CS);
  ASSERT_EQ(Elements.size(), 2u);
  EXPECT_EQ(Elements[0], T.SetCall1.index() | 0x80000000u);
  EXPECT_EQ(Elements[1], T.Box1.index());

  // Same numeric index as heap vs site never collides.
  ASSERT_EQ(T.Box1.index(), 0u);
  CtxId FromSite0 =
      Policy->mergeStatic(SiteId(0), MethodId(0), Table.emptyCtx(), Table);
  CtxId FromHeap0 = Policy->merge(HeapId(0), Table.emptyHCtx(), T.SetCall1,
                                  MethodId(0), Table.emptyCtx(), Table);
  EXPECT_NE(FromSite0, FromHeap0);
}

TEST(Introspective, RoutesPerElement) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Coarse = makeInsensitivePolicy();
  auto Refined = makeObjectPolicy(T.Prog, 2, 1);

  RefinementExceptions Exceptions;
  Exceptions.NoRefineHeaps.insert(T.Box1.index());
  MethodId SetMethod = T.Prog.lookup(T.BoxT, T.Prog.site(T.SetCall1).Sig);
  Exceptions.NoRefineSites.insert(
      RefinementExceptions::packSite(T.SetCall1, SetMethod));
  auto Intro = makeIntrospectivePolicy("x", *Coarse, *Refined, Exceptions);

  // Excluded heap: coarse RECORD.  Other heaps: refined RECORD.
  CtxId Ctx = Table.internCtx(std::vector<uint32_t>{T.Box2.index()});
  EXPECT_EQ(Intro->record(T.Box1, Ctx, Table), Table.emptyHCtx());
  EXPECT_EQ(elems(Table, Intro->record(T.HeapA, Ctx, Table)),
            (std::vector<uint32_t>{T.Box2.index()}));

  // Excluded (site, target): coarse MERGE -- but only for that target.
  EXPECT_EQ(Intro->merge(T.Box1, Table.emptyHCtx(), T.SetCall1, SetMethod,
                         Ctx, Table),
            Table.emptyCtx());
  MethodId Other = T.Prog.lookup(T.BoxT, T.Prog.site(T.GetCall1).Sig);
  EXPECT_NE(Intro->merge(T.Box1, Table.emptyHCtx(), T.SetCall1, Other, Ctx,
                         Table),
            Table.emptyCtx());
}

TEST(Depth, DeeperPoliciesKeepMoreElements) {
  TwoBoxes T = makeTwoBoxes();
  ContextTable Table;
  auto Deep = makeCallSitePolicy(4, 3);
  CtxId Ctx = Table.emptyCtx();
  std::vector<SiteId> Sites = {T.SetCall1, T.SetCall2, T.GetCall1,
                               T.GetCall2, T.SetCall1};
  for (SiteId Site : Sites)
    Ctx = Deep->mergeStatic(Site, MethodId(0), Ctx, Table);
  // Depth 4: the five pushes keep the most recent four, newest first.
  EXPECT_EQ(elems(Table, Ctx),
            (std::vector<uint32_t>{T.SetCall1.index(), T.GetCall2.index(),
                                   T.GetCall1.index(), T.SetCall2.index()}));
  // Heap depth 3.
  HCtxId H = Deep->record(T.HeapA, Ctx, Table);
  EXPECT_EQ(elems(Table, H),
            (std::vector<uint32_t>{T.SetCall1.index(), T.GetCall2.index(),
                                   T.GetCall1.index()}));
}
