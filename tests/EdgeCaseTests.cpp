//===- tests/EdgeCaseTests.cpp - Engine and solver edge cases -------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "datalog/Engine.h"
#include "ir/ProgramBuilder.h"
#include "ir/Validator.h"

#include <gtest/gtest.h>

using namespace intro;

namespace {

datalog::Term V(uint32_t N) { return datalog::Term::var(N); }
datalog::Term C(uint32_t N) { return datalog::Term::cst(N); }

} // namespace

// --- Datalog engine corners -------------------------------------------------

TEST(EngineEdge, RepeatedVariableMatchesDiagonal) {
  datalog::Engine E;
  uint32_t Edge = E.addRelation("edge", 2);
  uint32_t Loop = E.addRelation("loop", 1);
  // loop(x) <- edge(x, x).
  E.addRule(
      datalog::Rule{{datalog::Atom{Loop, {V(0)}}},
                    {datalog::Atom{Edge, {V(0), V(0)}}},
                    {}});
  E.relation(Edge).insert(std::array<uint32_t, 2>{1, 2});
  E.relation(Edge).insert(std::array<uint32_t, 2>{3, 3});
  E.relation(Edge).insert(std::array<uint32_t, 2>{2, 1});
  E.relation(Edge).insert(std::array<uint32_t, 2>{7, 7});
  E.run();
  EXPECT_EQ(E.relation(Loop).size(), 2u);
  EXPECT_TRUE(E.relation(Loop).contains(std::array<uint32_t, 1>{3}));
  EXPECT_TRUE(E.relation(Loop).contains(std::array<uint32_t, 1>{7}));
}

TEST(EngineEdge, ConstantInHead) {
  datalog::Engine E;
  uint32_t In = E.addRelation("in", 1);
  uint32_t Out = E.addRelation("out", 2);
  // out(42, x) <- in(x).
  E.addRule(datalog::Rule{{datalog::Atom{Out, {C(42), V(0)}}},
                          {datalog::Atom{In, {V(0)}}},
                          {}});
  E.relation(In).insert(std::array<uint32_t, 1>{5});
  E.run();
  EXPECT_TRUE(E.relation(Out).contains(std::array<uint32_t, 2>{42, 5}));
}

TEST(EngineEdge, MultipleFunctorsChain) {
  datalog::Engine E;
  uint32_t In = E.addRelation("in", 1);
  uint32_t Out = E.addRelation("out", 3);
  uint32_t Inc = E.addFunctor(
      [](std::span<const uint32_t> Args) { return Args[0] + 1; });
  uint32_t Mul = E.addFunctor(
      [](std::span<const uint32_t> Args) { return Args[0] * Args[1]; });
  // out(x, x+1, x*(x+1)) <- in(x).
  datalog::Rule R;
  R.Body = {datalog::Atom{In, {V(0)}}};
  R.Functors = {datalog::FunctorCall{Inc, 1, {V(0)}},
                datalog::FunctorCall{Mul, 2, {V(0), V(1)}}};
  R.Heads = {datalog::Atom{Out, {V(0), V(1), V(2)}}};
  E.addRule(std::move(R));
  E.relation(In).insert(std::array<uint32_t, 1>{6});
  E.run();
  EXPECT_TRUE(E.relation(Out).contains(std::array<uint32_t, 3>{6, 7, 42}));
}

TEST(EngineEdge, EmptyRelationsProduceNothing) {
  datalog::Engine E;
  uint32_t In = E.addRelation("in", 1);
  uint32_t Out = E.addRelation("out", 1);
  E.addRule(datalog::Rule{{datalog::Atom{Out, {V(0)}}},
                          {datalog::Atom{In, {V(0)}}},
                          {}});
  datalog::EngineStats Stats = E.run();
  EXPECT_EQ(E.relation(Out).size(), 0u);
  EXPECT_FALSE(Stats.BudgetExceeded);
}

TEST(EngineEdge, IndexedJoinMatchesBruteForceOnDenseData) {
  // right(y, z) join left(x, y) over ~everything: validate counts against
  // a hand-computed expectation.
  datalog::Engine E;
  uint32_t Left = E.addRelation("left", 2);
  uint32_t Right = E.addRelation("right", 2);
  uint32_t Join = E.addRelation("join", 3);
  E.addRule(datalog::Rule{
      {datalog::Atom{Join, {V(0), V(1), V(2)}}},
      {datalog::Atom{Left, {V(0), V(1)}}, datalog::Atom{Right, {V(1), V(2)}}},
      {}});
  // left: (i, i % 8); right: (j % 8, j).
  for (uint32_t I = 0; I < 64; ++I) {
    E.relation(Left).insert(std::array<uint32_t, 2>{I, I % 8});
    E.relation(Right).insert(std::array<uint32_t, 2>{I % 8, I});
  }
  E.run();
  // Each of the 64 left rows matches the 8 right rows sharing its key.
  EXPECT_EQ(E.relation(Join).size(), 64u * 8u);
}

// --- Solver corners --------------------------------------------------------

TEST(SolverEdge, SelfMoveTerminates) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId X = Main.local("x");
  HeapId H = Main.alloc(X, Object);
  Main.move(X, X);
  Program P = B.take();
  auto Policy = makeInsensitivePolicy();
  ContextTable T;
  PointsToResult R = solvePointsTo(P, *Policy, T);
  EXPECT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_TRUE(setContains(R.pointsTo(X), H.index()));
}

TEST(SolverEdge, DispatchFailureYieldsNoTargets) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId A = B.cls("A", Object);
  // No class implements "nothing".
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId X = Main.local("x");
  Main.alloc(X, A);
  SiteId Site = Main.vcall(VarId::invalid(), X, "nothing", {});
  Program P = B.take();
  auto Policy = makeInsensitivePolicy();
  ContextTable T;
  PointsToResult R = solvePointsTo(P, *Policy, T);
  EXPECT_TRUE(R.callTargets(Site).empty());
  EXPECT_EQ(R.Stats.CallGraphEdges, 0u);
}

TEST(SolverEdge, CallOnUnassignedReceiverIsSilent) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId A = B.cls("A", Object);
  MethodBuilder M = B.method(A, "m", 0);
  (void)M;
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId X = Main.local("x"); // Never assigned.
  SiteId Site = Main.vcall(VarId::invalid(), X, "m", {});
  Program P = B.take();
  auto Policy = makeInsensitivePolicy();
  ContextTable T;
  PointsToResult R = solvePointsTo(P, *Policy, T);
  EXPECT_TRUE(R.callTargets(Site).empty());
  EXPECT_FALSE(R.isReachable(M.id()));
}

TEST(SolverEdge, RecursiveVirtualCallsTerminate) {
  // A linked-list style recursion: node.visit() calls next.visit().
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Node = B.cls("Node", Object);
  FieldId Next = B.field(Node, "next");
  MethodBuilder Visit = B.method(Node, "visit", 0);
  VarId N = Visit.local("n");
  Visit.load(N, Visit.thisVar(), Next);
  Visit.vcall(VarId::invalid(), N, "visit", {});

  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId X = Main.local("x");
  VarId Y = Main.local("y");
  Main.alloc(X, Node);
  Main.alloc(Y, Node);
  Main.store(X, Next, Y);
  Main.store(Y, Next, X); // Cycle.
  Main.vcall(VarId::invalid(), X, "visit", {});
  Program P = B.take();

  for (auto &Policy :
       {makeInsensitivePolicy(), makeObjectPolicy(P, 2, 1),
        makeCallSitePolicy(2, 1)}) {
    ContextTable T;
    PointsToResult R = solvePointsTo(P, *Policy, T);
    EXPECT_EQ(R.Status, SolveStatus::Completed) << Policy->name();
    EXPECT_TRUE(R.isReachable(Visit.id())) << Policy->name();
  }
}

TEST(SolverEdge, MultipleEntryPoints) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder E1 = B.method(Object, "entry1", 0, true);
  MethodBuilder E2 = B.method(Object, "entry2", 0, true);
  MethodBuilder Dead = B.method(Object, "dead", 0, true);
  B.entry(E1.id());
  B.entry(E2.id());
  VarId X1 = E1.local("x");
  E1.alloc(X1, Object);
  VarId X2 = E2.local("x");
  E2.alloc(X2, Object);
  Program P = B.take();
  auto Policy = makeInsensitivePolicy();
  ContextTable T;
  PointsToResult R = solvePointsTo(P, *Policy, T);
  EXPECT_TRUE(R.isReachable(E1.id()));
  EXPECT_TRUE(R.isReachable(E2.id()));
  EXPECT_FALSE(R.isReachable(Dead.id()));
}

TEST(SolverEdge, EmptyBodyProgram) {
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  Program P = B.take();
  EXPECT_TRUE(validateProgram(P).empty());
  auto Policy = makeObjectPolicy(P, 2, 1);
  ContextTable T;
  PointsToResult R = solvePointsTo(P, *Policy, T);
  EXPECT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_EQ(R.Stats.VarPointsToTuples, 0u);
  EXPECT_TRUE(R.isReachable(Main.id()));
}

namespace {

/// Three-level nesting: Triple owns a Pair (allocated in Triple.init),
/// which owns a Box (allocated in Pair.init).  Distinguishing the two
/// inner boxes requires heap context of depth 2 — i.e. 3objH; 2objH (heap
/// depth 1) conflates them.
struct Nested {
  Program Prog;
  VarId OutA;
  HeapId HeapA, HeapB;
};

Nested makeNested() {
  Nested T;
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Box = B.cls("Box", Object);
  TypeId Pair = B.cls("Pair", Object);
  TypeId Triple = B.cls("Triple", Object);
  TypeId A = B.cls("A", Object);
  TypeId BT = B.cls("B", Object);
  FieldId BoxF = B.field(Box, "f");
  FieldId PairInner = B.field(Pair, "inner");
  FieldId TripleP = B.field(Triple, "p");

  MethodBuilder BoxSet = B.method(Box, "bset", 1);
  BoxSet.store(BoxSet.thisVar(), BoxF, BoxSet.formal(0));
  MethodBuilder BoxGet = B.method(Box, "bget", 0);
  BoxGet.load(BoxGet.returnVar(), BoxGet.thisVar(), BoxF);

  MethodBuilder PairInit = B.method(Pair, "pinit", 0);
  {
    VarId Inner = PairInit.local("inner");
    PairInit.alloc(Inner, Box); // THE single inner-box allocation site.
    PairInit.store(PairInit.thisVar(), PairInner, Inner);
  }
  MethodBuilder PairPut = B.method(Pair, "pput", 1);
  {
    VarId Inner = PairPut.local("i");
    PairPut.load(Inner, PairPut.thisVar(), PairInner);
    PairPut.vcall(VarId::invalid(), Inner, "bset", {PairPut.formal(0)});
  }
  MethodBuilder PairGet = B.method(Pair, "pget", 0);
  {
    VarId Inner = PairGet.local("i");
    PairGet.load(Inner, PairGet.thisVar(), PairInner);
    PairGet.vcall(PairGet.returnVar(), Inner, "bget", {});
  }

  MethodBuilder TripleInit = B.method(Triple, "tinit", 0);
  {
    VarId P = TripleInit.local("p");
    TripleInit.alloc(P, Pair); // THE single pair allocation site.
    TripleInit.vcall(VarId::invalid(), P, "pinit", {});
    TripleInit.store(TripleInit.thisVar(), TripleP, P);
  }
  MethodBuilder TriplePut = B.method(Triple, "tput", 1);
  {
    VarId P = TriplePut.local("p");
    TriplePut.load(P, TriplePut.thisVar(), TripleP);
    TriplePut.vcall(VarId::invalid(), P, "pput", {TriplePut.formal(0)});
  }
  MethodBuilder TripleGet = B.method(Triple, "tget", 0);
  {
    VarId P = TripleGet.local("p");
    TripleGet.load(P, TripleGet.thisVar(), TripleP);
    TripleGet.vcall(TripleGet.returnVar(), P, "pget", {});
  }

  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId T1 = Main.local("t1");
  VarId T2 = Main.local("t2");
  VarId VA = Main.local("a");
  VarId VB = Main.local("b");
  T.OutA = Main.local("oa");
  Main.alloc(T1, Triple);
  Main.alloc(T2, Triple);
  T.HeapA = Main.alloc(VA, A);
  T.HeapB = Main.alloc(VB, BT);
  Main.vcall(VarId::invalid(), T1, "tinit", {});
  Main.vcall(VarId::invalid(), T2, "tinit", {});
  Main.vcall(VarId::invalid(), T1, "tput", {VA});
  Main.vcall(VarId::invalid(), T2, "tput", {VB});
  Main.vcall(T.OutA, T1, "tget", {});
  T.Prog = B.take();
  return T;
}

} // namespace

TEST(SolverEdge, DepthThreeObjectSensitivitySeparatesNestedBoxes) {
  Nested T = makeNested();
  ASSERT_TRUE(validateProgram(T.Prog).empty());

  // 2objH (heap depth 1): the two inner boxes share their allocation site
  // and their 1-deep heap context ([pair-site]), so the payloads conflate.
  {
    auto Policy = makeObjectPolicy(T.Prog, 2, 1);
    ContextTable Table;
    PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
    EXPECT_TRUE(setContains(R.pointsTo(T.OutA), T.HeapA.index()));
    EXPECT_TRUE(setContains(R.pointsTo(T.OutA), T.HeapB.index()))
        << "2objH should conflate the three-level nesting";
  }
  // 3objH (heap depth 2): the inner boxes' heap contexts extend to the
  // triple allocation sites, separating the two towers.
  {
    auto Policy = makeObjectPolicy(T.Prog, 3, 2);
    ContextTable Table;
    PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
    EXPECT_TRUE(setContains(R.pointsTo(T.OutA), T.HeapA.index()));
    EXPECT_FALSE(setContains(R.pointsTo(T.OutA), T.HeapB.index()))
        << "3objH should separate the three-level nesting";
  }
}

TEST(SolverEdge, FilterCastsComposesWithIntrospection) {
  Nested T = makeNested();
  auto Coarse = makeInsensitivePolicy();
  auto Refined = makeObjectPolicy(T.Prog, 3, 2);
  auto Intro = makeIntrospectivePolicy("3objH-Intro", *Coarse, *Refined,
                                       RefinementExceptions());
  ContextTable Table;
  SolverOptions Options;
  Options.FilterCasts = true;
  PointsToResult R = solvePointsTo(T.Prog, *Intro, Table, Options);
  EXPECT_EQ(R.Status, SolveStatus::Completed);
  EXPECT_FALSE(setContains(R.pointsTo(T.OutA), T.HeapB.index()));
}

TEST(SolverEdge, OutOfRangeIdsYieldSharedEmptySets) {
  // Regression: pointsTo/callTargets/throwsOf used to index their
  // projection tables unchecked, so a stale or foreign id was UB.  They
  // now answer with the shared empty set.
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  MethodBuilder Main = B.method(Object, "main", 0, true);
  B.entry(Main.id());
  VarId X = Main.local("x");
  Main.alloc(X, Object);
  Program P = B.take();
  auto Policy = makeInsensitivePolicy();
  ContextTable T;
  PointsToResult R = solvePointsTo(P, *Policy, T);

  const SortedIdSet &Empty = PointsToResult::emptySet();
  EXPECT_EQ(&R.pointsTo(VarId(1000)), &Empty);
  EXPECT_EQ(&R.callTargets(SiteId(1000)), &Empty);
  EXPECT_EQ(&R.throwsOf(MethodId(1000)), &Empty);
  // Invalid sentinel ids are handled too, not just out-of-range ones.
  EXPECT_EQ(&R.pointsTo(VarId::invalid()), &Empty);
  EXPECT_EQ(&R.callTargets(SiteId::invalid()), &Empty);
  EXPECT_EQ(&R.throwsOf(MethodId::invalid()), &Empty);
  EXPECT_FALSE(R.isReachable(MethodId::invalid()));
  // In-range queries still answer from the real tables.
  EXPECT_EQ(R.pointsTo(X).size(), 1u);
}
