//===- tests/ExceptionTests.cpp - Exceptions & static fields --------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written programs pinning the exception-flow extension (throw /
/// catch-by-type / transitive escape, in the spirit of the paper's
/// companion work [11]) and the static-field extension of the full Doop
/// core, on both the solver and (via textual IR) the frontend.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "ir/Interpreter.h"
#include "ir/ProgramBuilder.h"
#include "ir/Validator.h"

#include <gtest/gtest.h>

using namespace intro;

namespace {

/// main --> risky() which throws either an IOError or a RuntimeError;
/// main catches IOError only.  outer() calls main's logic via a helper
/// without any catch.
struct ThrowProgram {
  Program Prog;
  MethodId Main, Risky, Helper;
  HeapId IoHeap, RuntimeHeap;
  VarId Caught;
};

ThrowProgram makeThrowProgram() {
  ThrowProgram T;
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Error = B.cls("Error", Object);
  TypeId IoError = B.cls("IOError", Error);
  TypeId RuntimeError = B.cls("RuntimeError", Error);

  MethodBuilder Risky = B.method(Object, "risky", 0, /*IsStatic=*/true);
  VarId Io = Risky.local("io");
  T.IoHeap = Risky.alloc(Io, IoError);
  Risky.throwStmt(Io);
  VarId Rt = Risky.local("rt");
  T.RuntimeHeap = Risky.alloc(Rt, RuntimeError);
  Risky.throwStmt(Rt);
  T.Risky = Risky.id();

  // helper() calls risky() without catching: both exceptions escape it.
  MethodBuilder Helper = B.method(Object, "helper", 0, /*IsStatic=*/true);
  Helper.scall(VarId::invalid(), Risky.id(), {});
  T.Helper = Helper.id();

  // main catches IOError from helper(); RuntimeError escapes main.
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  T.Caught = Main.local("e");
  SiteId Call = Main.scall(VarId::invalid(), Helper.id(), {});
  Main.attachCatch(Call, IoError, T.Caught);
  T.Main = Main.id();

  T.Prog = B.take();
  return T;
}

} // namespace

TEST(Exceptions, ProgramIsValid) {
  ThrowProgram T = makeThrowProgram();
  EXPECT_TRUE(validateProgram(T.Prog).empty());
}

TEST(Exceptions, ThrowSetsAndCatchByType) {
  ThrowProgram T = makeThrowProgram();
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
  ASSERT_EQ(R.Status, SolveStatus::Completed);

  // risky() throws both.
  EXPECT_TRUE(setContains(R.throwsOf(T.Risky), T.IoHeap.index()));
  EXPECT_TRUE(setContains(R.throwsOf(T.Risky), T.RuntimeHeap.index()));
  // helper() has no catch: both escape it transitively.
  EXPECT_TRUE(setContains(R.throwsOf(T.Helper), T.IoHeap.index()));
  EXPECT_TRUE(setContains(R.throwsOf(T.Helper), T.RuntimeHeap.index()));
  // main catches the IOError...
  EXPECT_TRUE(setContains(R.pointsTo(T.Caught), T.IoHeap.index()));
  EXPECT_FALSE(setContains(R.pointsTo(T.Caught), T.RuntimeHeap.index()));
  // ...and only the RuntimeError escapes main.
  EXPECT_FALSE(setContains(R.throwsOf(T.Main), T.IoHeap.index()));
  EXPECT_TRUE(setContains(R.throwsOf(T.Main), T.RuntimeHeap.index()));
}

TEST(Exceptions, InterpreterUnwindsAndAnalysisCovers) {
  ThrowProgram T = makeThrowProgram();
  DynamicFacts Facts = interpret(T.Prog);

  // Concretely: risky throws the IOError first; helper propagates it; main
  // catches it.  The RuntimeError allocation is dead code after the first
  // throw.
  bool CaughtIo = false;
  for (auto [Var, Heap] : Facts.VarPointsTo)
    if (Var == T.Caught && Heap == T.IoHeap)
      CaughtIo = true;
  EXPECT_TRUE(CaughtIo);
  bool MainThrew = false;
  for (auto [Method, Heap] : Facts.MethodThrows)
    if (Method == T.Main)
      MainThrew = true;
  EXPECT_FALSE(MainThrew) << "the only concrete exception is caught";

  // The static result covers the dynamic facts.
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult R = solvePointsTo(T.Prog, *Policy, Table);
  for (auto [Method, Heap] : Facts.MethodThrows)
    EXPECT_TRUE(setContains(R.throwsOf(Method), Heap.index()));
}

TEST(Exceptions, ContextSensitiveCatchSeparation) {
  // Two wrappers call thrower() which rethrows its argument; each wrapper
  // catches everything.  Under 2callH the exception sets stay separate;
  // insensitively both wrappers appear to catch both objects.
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId E1 = B.cls("E1", Object);
  TypeId E2 = B.cls("E2", Object);

  MethodBuilder Thrower = B.method(Object, "thrower", 1, /*IsStatic=*/true);
  Thrower.throwStmt(Thrower.formal(0));

  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId X1 = Main.local("x1");
  VarId X2 = Main.local("x2");
  HeapId H1 = Main.alloc(X1, E1);
  HeapId H2 = Main.alloc(X2, E2);
  VarId C1 = Main.local("c1");
  VarId C2 = Main.local("c2");
  SiteId S1 = Main.scall(VarId::invalid(), Thrower.id(), {X1});
  Main.attachCatch(S1, Object, C1);
  SiteId S2 = Main.scall(VarId::invalid(), Thrower.id(), {X2});
  Main.attachCatch(S2, Object, C2);
  Program Prog = B.take();

  auto Insens = makeInsensitivePolicy();
  ContextTable T1;
  PointsToResult RI = solvePointsTo(Prog, *Insens, T1);
  EXPECT_TRUE(setContains(RI.pointsTo(C1), H2.index()))
      << "insensitively the throw sets conflate";

  auto Deep = makeCallSitePolicy(2, 1);
  ContextTable T2;
  PointsToResult RD = solvePointsTo(Prog, *Deep, T2);
  EXPECT_TRUE(setContains(RD.pointsTo(C1), H1.index()));
  EXPECT_FALSE(setContains(RD.pointsTo(C1), H2.index()))
      << "2callH separates the two thrower activations";
}

TEST(StaticFields, GlobalCellFlow) {
  // A producer writes into a static field; a consumer reads it.
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Config = B.cls("Config", Object);
  FieldId Global = B.field(Config, "instance");

  MethodBuilder Producer = B.method(Object, "produce", 0, /*IsStatic=*/true);
  VarId P = Producer.local("p");
  HeapId ConfigHeap = Producer.alloc(P, Config);
  Producer.sstore(Global, P);

  MethodBuilder Consumer = B.method(Object, "consume", 0, /*IsStatic=*/true);
  VarId C = Consumer.local("c");
  Consumer.sload(C, Global);

  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  Main.scall(VarId::invalid(), Producer.id(), {});
  Main.scall(VarId::invalid(), Consumer.id(), {});
  Program Prog = B.take();
  ASSERT_TRUE(validateProgram(Prog).empty());

  auto Policy = makeObjectPolicy(Prog, 2, 1);
  ContextTable Table;
  PointsToResult R = solvePointsTo(Prog, *Policy, Table);
  EXPECT_TRUE(setContains(R.pointsTo(C), ConfigHeap.index()));
  auto It = R.StaticFieldHeaps.find(Global.index());
  ASSERT_NE(It, R.StaticFieldHeaps.end());
  EXPECT_TRUE(setContains(It->second, ConfigHeap.index()));

  // Dynamic agreement.
  DynamicFacts Facts = interpret(Prog);
  bool SawGlobal = false;
  for (auto [Field, Heap] : Facts.StaticFieldPointsTo)
    if (Field == Global && Heap == ConfigHeap)
      SawGlobal = true;
  EXPECT_TRUE(SawGlobal);
}

TEST(Frontend, ExceptionAndStaticFieldSyntaxRoundTrips) {
  const char *Source = R"(
class Object
class Err extends Object
class Cfg extends Object {
  field instance
}
class Main extends Object {
  entry static method main() {
    c = new Cfg
    Cfg#instance = c
    g = Cfg#instance
    Main::risky() catch (Err) e
  }
  static method risky() {
    x = new Err
    throw x
  }
}
)";
  ParseResult Parsed = parseProgram(Source);
  ASSERT_TRUE(Parsed.ok()) << Parsed.Errors[0];
  ASSERT_TRUE(validateProgram(Parsed.Prog).empty());

  // Semantics: the Err object is caught into e.
  auto Policy = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult R = solvePointsTo(Parsed.Prog, *Policy, Table);
  bool Caught = false;
  bool GlobalFlows = false;
  for (uint32_t Var = 0; Var < Parsed.Prog.numVars(); ++Var) {
    if (Parsed.Prog.varName(VarId(Var)) == "e" &&
        !R.pointsTo(VarId(Var)).empty())
      Caught = true;
    if (Parsed.Prog.varName(VarId(Var)) == "g" &&
        !R.pointsTo(VarId(Var)).empty())
      GlobalFlows = true;
  }
  EXPECT_TRUE(Caught);
  EXPECT_TRUE(GlobalFlows);

  // Print/parse/print is stable.
  std::string Once = printProgram(Parsed.Prog);
  ParseResult Again = parseProgram(Once);
  ASSERT_TRUE(Again.ok()) << Again.Errors[0];
  EXPECT_EQ(printProgram(Again.Prog), Once);
}
