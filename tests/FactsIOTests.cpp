//===- tests/FactsIOTests.cpp - Facts-directory round-trip and hardening --===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric-id facts format must round-trip exactly, and the reader
/// must reject — with a diagnostic, never a crash or a silent mis-read —
/// every malformed-input class: truncated or over-long records,
/// non-numeric ids, out-of-range ids, duplicate functional declarations,
/// and missing relation files.
///
//===----------------------------------------------------------------------===//

#include "ir/Facts.h"
#include "ir/FactsIO.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

using namespace intro;
using namespace intro::testing;

namespace {

/// A fresh facts directory holding the Dispatch program in numeric form.
class FactsIOTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("intro_factsio_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()));
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
    FactsIOOptions Options;
    Options.NumericIds = true;
    std::string Error;
    ASSERT_FALSE(
        writeFactsDirectory(T.Prog, Dir.string(), Error, Options).empty())
        << Error;
  }

  void TearDown() override { std::filesystem::remove_all(Dir); }

  void append(const std::string &Relation, const std::string &Line) {
    std::ofstream Out(Dir / (Relation + ".facts"), std::ios::app);
    Out << Line << '\n';
  }

  /// Reads the directory back, expecting failure whose diagnostic contains
  /// every fragment in \p Fragments.
  void expectRejected(std::initializer_list<const char *> Fragments) {
    ProgramFacts Read;
    std::string Error;
    EXPECT_FALSE(
        readFactsDirectory(Dir.string(), shapeOf(T.Prog), Read, Error));
    for (const char *Fragment : Fragments)
      EXPECT_NE(Error.find(Fragment), std::string::npos)
          << "diagnostic '" << Error << "' lacks '" << Fragment << "'";
  }

  Dispatch T = makeDispatch();
  std::filesystem::path Dir;
};

} // namespace

TEST_F(FactsIOTest, NumericDirectoryRoundTripsExactly) {
  ProgramFacts Expected = extractFacts(T.Prog);
  ProgramFacts Read;
  std::string Error;
  ASSERT_TRUE(readFactsDirectory(Dir.string(), shapeOf(T.Prog), Read, Error))
      << Error;

  EXPECT_EQ(Read.Alloc, Expected.Alloc);
  EXPECT_EQ(Read.Move, Expected.Move);
  EXPECT_EQ(Read.Cast, Expected.Cast);
  EXPECT_EQ(Read.Subtype, Expected.Subtype);
  EXPECT_EQ(Read.Load, Expected.Load);
  EXPECT_EQ(Read.Store, Expected.Store);
  EXPECT_EQ(Read.SLoad, Expected.SLoad);
  EXPECT_EQ(Read.SStore, Expected.SStore);
  EXPECT_EQ(Read.Throw, Expected.Throw);
  EXPECT_EQ(Read.SiteInMethod, Expected.SiteInMethod);
  EXPECT_EQ(Read.Catch, Expected.Catch);
  EXPECT_EQ(Read.NoCatch, Expected.NoCatch);
  EXPECT_EQ(Read.VCall, Expected.VCall);
  EXPECT_EQ(Read.SCall, Expected.SCall);
  EXPECT_EQ(Read.FormalArg, Expected.FormalArg);
  EXPECT_EQ(Read.ActualArg, Expected.ActualArg);
  EXPECT_EQ(Read.FormalReturn, Expected.FormalReturn);
  EXPECT_EQ(Read.ActualReturn, Expected.ActualReturn);
  EXPECT_EQ(Read.ThisVar, Expected.ThisVar);
  EXPECT_EQ(Read.HeapType, Expected.HeapType);
  EXPECT_EQ(Read.Lookup, Expected.Lookup);
  EXPECT_EQ(Read.EntryMethods, Expected.EntryMethods);
}

TEST_F(FactsIOTest, RejectsTruncatedRecord) {
  append("Alloc", "0\t1"); // Alloc has arity 3.
  expectRejected({"Alloc.facts", "expected 3 columns, got 2"});
}

TEST_F(FactsIOTest, RejectsOverlongRecord) {
  append("Move", "0\t0\t0");
  expectRejected({"Move.facts", "expected 2 columns, got 3"});
}

TEST_F(FactsIOTest, RejectsNonNumericId) {
  append("Move", "0\tbogus");
  expectRejected({"Move.facts", "column 2", "'bogus' is not a valid id"});
}

TEST_F(FactsIOTest, RejectsNegativeId) {
  append("Move", "-1\t0");
  expectRejected({"Move.facts", "'-1' is not a valid id"});
}

TEST_F(FactsIOTest, RejectsIdOverflowingUint32) {
  // A value past uint32 must not wrap into a small, in-range id.
  append("Load", "99999999999\t0\t0");
  expectRejected({"Load.facts", "'99999999999' is not a valid id"});
}

TEST_F(FactsIOTest, RejectsOutOfRangeId) {
  uint32_t BadVar = static_cast<uint32_t>(T.Prog.numVars());
  append("Move", std::to_string(BadVar) + "\t0");
  expectRejected({"Move.facts", "var id", "out of range"});
}

TEST_F(FactsIOTest, RejectsDuplicateFunctionalDeclaration) {
  ProgramFacts Expected = extractFacts(T.Prog);
  ASSERT_FALSE(Expected.FormalReturn.empty());
  const auto &Row = Expected.FormalReturn.front();
  append("FormalReturn",
         std::to_string(Row[0]) + "\t" + std::to_string(Row[1]));
  expectRejected({"FormalReturn.facts", "duplicate declaration",
                  "first at line 1"});
}

TEST_F(FactsIOTest, RejectsDuplicateKeyedArgumentSlot) {
  // Two rows for the same (site, index) slot — even with different
  // variables — are a duplicate declaration.  A site can only pass one
  // actual in each position.
  append("ActualArg", "0\t0\t0");
  append("ActualArg", "0\t0\t1");
  expectRejected({"ActualArg.facts", "duplicate declaration"});
}

TEST_F(FactsIOTest, RejectsMissingRelationFile) {
  std::filesystem::remove(Dir / "HeapType.facts");
  expectRejected({"cannot open", "HeapType.facts"});
}

TEST_F(FactsIOTest, DiagnosticsCarryLineNumbers) {
  // The appended bad row lands on a specific line; the diagnostic must
  // name it so a user can find the corruption in a million-line file.
  std::ifstream In(Dir / "Move.facts");
  size_t Lines = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++Lines;
  In.close();
  append("Move", "0\tbogus");
  ProgramFacts Read;
  std::string Error;
  EXPECT_FALSE(
      readFactsDirectory(Dir.string(), shapeOf(T.Prog), Read, Error));
  EXPECT_NE(Error.find(":" + std::to_string(Lines + 1) + ":"),
            std::string::npos)
      << Error;
}

TEST_F(FactsIOTest, ToleratesBlankLinesAndCrLf) {
  append("Move", "");
  {
    std::ofstream Out(Dir / "Move.facts", std::ios::app);
    Out << "0\t0\r\n"; // CRLF row, ids in range.
  }
  ProgramFacts Read;
  std::string Error;
  EXPECT_TRUE(readFactsDirectory(Dir.string(), shapeOf(T.Prog), Read, Error))
      << Error;
  ProgramFacts Expected = extractFacts(T.Prog);
  ASSERT_EQ(Read.Move.size(), Expected.Move.size() + 1);
  EXPECT_EQ(Read.Move.back(), (std::array<uint32_t, 2>{0, 0}));
}
