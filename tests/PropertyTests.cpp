//===- tests/PropertyTests.cpp - Randomized property tests ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests over random programs (workload/Random.h), swept by
/// seed with TEST_P:
///   - structural validity of every generated program;
///   - solver == Datalog reference, tuple for tuple, per context flavor;
///   - soundness: dynamic facts are a subset of every analysis result;
///   - abstraction: context-sensitive results project into insensitive ones;
///   - frontend round-trip preserves analysis outcomes.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/DatalogReference.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "ir/Interpreter.h"
#include "ir/ProgramBuilder.h"
#include "ir/Validator.h"
#include "workload/Random.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace intro;

namespace {

class RandomProgramProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  Program makeProgram() const { return generateRandomProgram(GetParam()); }
};

std::vector<std::unique_ptr<ContextPolicy>> allFlavors(const Program &Prog) {
  std::vector<std::unique_ptr<ContextPolicy>> Policies;
  Policies.push_back(makeInsensitivePolicy());
  Policies.push_back(makeCallSitePolicy(1, 0));
  Policies.push_back(makeCallSitePolicy(2, 1));
  Policies.push_back(makeObjectPolicy(Prog, 1, 0));
  Policies.push_back(makeObjectPolicy(Prog, 2, 1));
  Policies.push_back(makeTypePolicy(Prog, 1, 0));
  Policies.push_back(makeTypePolicy(Prog, 2, 1));
  Policies.push_back(makeHybridPolicy(Prog, 2, 1));
  return Policies;
}

} // namespace

TEST_P(RandomProgramProperty, GeneratedProgramIsValid) {
  Program Prog = makeProgram();
  auto Errors = validateProgram(Prog);
  EXPECT_TRUE(Errors.empty()) << (Errors.empty() ? "" : Errors[0].c_str());
}

TEST_P(RandomProgramProperty, SolverMatchesDatalogReference) {
  Program Prog = makeProgram();
  for (auto &Policy : allFlavors(Prog)) {
    ContextTable Table;
    SolverOptions Options;
    Options.KeepTuples = true;
    PointsToResult Solver = solvePointsTo(Prog, *Policy, Table, Options);
    ASSERT_EQ(Solver.Status, SolveStatus::Completed);
    DatalogReferenceResult Reference =
        runDatalogReference(Prog, *Policy, Table);
    ASSERT_FALSE(Reference.BudgetExceeded);

    auto Sorted = [](auto Tuples) {
      std::sort(Tuples.begin(), Tuples.end());
      return Tuples;
    };
    EXPECT_EQ(Sorted(Solver.VarPointsTo), Reference.VarPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.FieldPointsTo), Reference.FieldPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.Reachable), Reference.Reachable)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.CallGraph), Reference.CallGraph)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.ThrowPointsTo), Reference.ThrowPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.StaticFieldPointsTo),
              Reference.StaticFieldPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
  }
}

TEST_P(RandomProgramProperty, IntrospectiveSolverMatchesDatalogReference) {
  Program Prog = makeProgram();
  auto Coarse = makeInsensitivePolicy();
  auto Refined = makeObjectPolicy(Prog, 2, 1);

  // Derive a nontrivial refinement split from the seed: exclude every third
  // heap and every (site, target) pair whose site index is even.
  RefinementExceptions Exceptions;
  for (uint32_t Heap = 0; Heap < Prog.numHeaps(); Heap += 3)
    Exceptions.NoRefineHeaps.insert(Heap);
  {
    ContextTable Probe;
    PointsToResult Insens = solvePointsTo(Prog, *Coarse, Probe);
    for (uint32_t Site = 0; Site < Prog.numSites(); Site += 2)
      for (uint32_t Target : Insens.callTargets(SiteId(Site)))
        Exceptions.NoRefineSites.insert(
            RefinementExceptions::packSite(SiteId(Site), MethodId(Target)));
  }

  auto Intro =
      makeIntrospectivePolicy("introtest", *Coarse, *Refined, Exceptions);
  ContextTable Table;
  SolverOptions Options;
  Options.KeepTuples = true;
  PointsToResult Solver = solvePointsTo(Prog, *Intro, Table, Options);
  DatalogReferenceResult Reference =
      runDatalogReference(Prog, *Coarse, *Refined, Exceptions, Table);

  auto Sorted = [](auto Tuples) {
    std::sort(Tuples.begin(), Tuples.end());
    return Tuples;
  };
  EXPECT_EQ(Sorted(Solver.VarPointsTo), Reference.VarPointsTo);
  EXPECT_EQ(Sorted(Solver.FieldPointsTo), Reference.FieldPointsTo);
  EXPECT_EQ(Sorted(Solver.Reachable), Reference.Reachable);
  EXPECT_EQ(Sorted(Solver.CallGraph), Reference.CallGraph);
}

TEST_P(RandomProgramProperty, AnalysesAreSoundAgainstInterpreter) {
  Program Prog = makeProgram();
  DynamicFacts Facts = interpret(Prog);
  for (auto &Policy : allFlavors(Prog)) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    ASSERT_EQ(Result.Status, SolveStatus::Completed);

    for (auto [Var, Heap] : Facts.VarPointsTo)
      EXPECT_TRUE(setContains(Result.pointsTo(Var), Heap.index()))
          << "seed " << GetParam() << " flavor " << Policy->name()
          << ": dynamic " << Prog.varName(Var) << " -> "
          << Prog.heapName(Heap);
    for (MethodId Method : Facts.ReachedMethods)
      EXPECT_TRUE(Result.isReachable(Method))
          << "seed " << GetParam() << " flavor " << Policy->name();
    for (auto [Site, Target] : Facts.CallEdges)
      EXPECT_TRUE(setContains(Result.callTargets(Site), Target.index()))
          << "seed " << GetParam() << " flavor " << Policy->name();
    for (auto [Field, Heap] : Facts.StaticFieldPointsTo) {
      auto It = Result.StaticFieldHeaps.find(Field.index());
      ASSERT_NE(It, Result.StaticFieldHeaps.end())
          << "seed " << GetParam() << " flavor " << Policy->name();
      EXPECT_TRUE(setContains(It->second, Heap.index()))
          << "seed " << GetParam() << " flavor " << Policy->name();
    }
    for (auto [Method, Heap] : Facts.MethodThrows)
      EXPECT_TRUE(setContains(Result.throwsOf(Method), Heap.index()))
          << "seed " << GetParam() << " flavor " << Policy->name()
          << ": exception from " << Prog.methodName(Method);
  }
}

TEST_P(RandomProgramProperty, ContextSensitiveProjectsIntoInsensitive) {
  Program Prog = makeProgram();
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult Base = solvePointsTo(Prog, *Insens, Table);
  for (auto &Policy : allFlavors(Prog)) {
    ContextTable Inner;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Inner);
    for (uint32_t Var = 0; Var < Prog.numVars(); ++Var)
      for (uint32_t Heap : Result.pointsTo(VarId(Var)))
        EXPECT_TRUE(setContains(Base.pointsTo(VarId(Var)), Heap))
            << "seed " << GetParam() << " flavor " << Policy->name();
    for (uint32_t Site = 0; Site < Prog.numSites(); ++Site)
      for (uint32_t Target : Result.callTargets(SiteId(Site)))
        EXPECT_TRUE(setContains(Base.callTargets(SiteId(Site)), Target))
            << "seed " << GetParam() << " flavor " << Policy->name();
  }
}

TEST_P(RandomProgramProperty, DeeperContextNeverLosesPrecision) {
  // Counts of the three paper metrics never increase when moving from
  // insensitive to a deep analysis (they are derived from projections).
  Program Prog = makeProgram();
  auto Insens = makeInsensitivePolicy();
  ContextTable T0;
  PrecisionMetrics Base =
      computePrecision(Prog, solvePointsTo(Prog, *Insens, T0));
  for (auto &Policy : allFlavors(Prog)) {
    ContextTable Table;
    PrecisionMetrics Deep =
        computePrecision(Prog, solvePointsTo(Prog, *Policy, Table));
    EXPECT_LE(Deep.PolymorphicVirtualCallSites,
              Base.PolymorphicVirtualCallSites);
    EXPECT_LE(Deep.ReachableMethods, Base.ReachableMethods);
    EXPECT_LE(Deep.CastsThatMayFail, Base.CastsThatMayFail);
  }
}

TEST_P(RandomProgramProperty, FrontendRoundTripPreservesAnalysis) {
  Program Prog = makeProgram();
  std::string Text = printProgram(Prog);
  ParseResult Reparsed = parseProgram(Text);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.Errors[0];
  EXPECT_EQ(printProgram(Reparsed.Prog), Text) << "seed " << GetParam();

  auto Insens = makeInsensitivePolicy();
  ContextTable T1;
  ContextTable T2;
  PointsToResult R1 = solvePointsTo(Prog, *Insens, T1);
  PointsToResult R2 = solvePointsTo(Reparsed.Prog, *Insens, T2);
  EXPECT_EQ(R1.Stats.VarPointsToTuples, R2.Stats.VarPointsToTuples);
  EXPECT_EQ(R1.Stats.CallGraphEdges, R2.Stats.CallGraphEdges);
  PrecisionMetrics M1 = computePrecision(Prog, R1);
  PrecisionMetrics M2 = computePrecision(Reparsed.Prog, R2);
  EXPECT_EQ(M1.PolymorphicVirtualCallSites, M2.PolymorphicVirtualCallSites);
  EXPECT_EQ(M1.CastsThatMayFail, M2.CastsThatMayFail);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<uint64_t>(1, 33));

// --- Larger random programs: stress the engines harder -----------------------

class LargeRandomProgramProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(LargeRandomProgramProperty, OracleAgreementAtScale) {
  RandomProgramOptions Options;
  Options.NumClasses = 12;
  Options.NumVirtualSigs = 5;
  Options.NumStaticMethods = 6;
  Options.InstructionsPerBody = 14;
  Options.LocalsPerMethod = 6;
  Program Prog = generateRandomProgram(GetParam(), Options);
  ASSERT_TRUE(validateProgram(Prog).empty());

  bool ComparedAny = false;
  for (auto &Policy :
       {makeInsensitivePolicy(), makeObjectPolicy(Prog, 2, 1),
        makeCallSitePolicy(2, 1)}) {
    ContextTable Table;
    SolverOptions SOptions;
    SOptions.KeepTuples = true;
    // Random programs can be genuinely pathological (that is the point of
    // the paper!); cap the work and only compare completed runs.
    SOptions.Budget.MaxTuples = 2'000'000;
    PointsToResult Solver = solvePointsTo(Prog, *Policy, Table, SOptions);
    if (!isCompleted(Solver.Status))
      continue; // A partial fixpoint cannot be compared to the oracle.
    ComparedAny = true;
    DatalogReferenceResult Reference =
        runDatalogReference(Prog, *Policy, Table);
    ASSERT_FALSE(Reference.BudgetExceeded);
    auto Sorted = [](auto Tuples) {
      std::sort(Tuples.begin(), Tuples.end());
      return Tuples;
    };
    EXPECT_EQ(Sorted(Solver.VarPointsTo), Reference.VarPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.FieldPointsTo), Reference.FieldPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.ThrowPointsTo), Reference.ThrowPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.StaticFieldPointsTo),
              Reference.StaticFieldPointsTo)
        << "seed " << GetParam() << " flavor " << Policy->name();
    EXPECT_EQ(Sorted(Solver.CallGraph), Reference.CallGraph)
        << "seed " << GetParam() << " flavor " << Policy->name();
  }
  EXPECT_TRUE(ComparedAny)
      << "every flavor blew the cap on seed " << GetParam()
      << " -- shrink the generator options";
}

INSTANTIATE_TEST_SUITE_P(LargeSeeds, LargeRandomProgramProperty,
                         ::testing::Range<uint64_t>(100, 108));

// --- Dense hub workloads: oracle agreement with bitmap-backed sets -----------

TEST(DenseHubProperty, OracleAgreementWithPromotedSets) {
  // Random programs keep points-to sets small, so the adaptive sets stay in
  // vector mode there.  This workload funnels enough interleaved allocation
  // sites through a hub (with loads, stores, casts, and dispatch hanging
  // off it) that the hot sets cross the promotion threshold, then demands
  // tuple-for-tuple oracle agreement while the solver is in bitmap mode.
  constexpr uint32_t NumObjects = 96;
  constexpr uint32_t NumSources = 4;
  constexpr uint32_t NumConsumers = 8;

  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Base = B.cls("Base", Object);
  TypeId Payload = B.cls("Payload", Base);
  TypeId Other = B.cls("Other", Base);
  FieldId Link = B.field(Base, "link");
  MethodBuilder Poke = B.method(Base, "poke", 0);
  (void)Poke;
  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());

  std::vector<VarId> Sources;
  for (uint32_t Index = 0; Index < NumSources; ++Index)
    Sources.push_back(Main.local("s" + std::to_string(Index)));
  // Interleaved allocation over two sibling types so the cast filter below
  // genuinely splits the hub set.
  for (uint32_t Index = 0; Index < NumObjects; ++Index)
    Main.alloc(Sources[Index % NumSources],
               Index % 2 == 0 ? Payload : Other);
  VarId Hub = Main.local("hub");
  for (VarId Source : Sources)
    Main.move(Hub, Source);
  for (uint32_t Index = 0; Index < NumConsumers; ++Index)
    Main.move(Main.local("c" + std::to_string(Index)), Hub);
  // Field flow through the dense set: every hub object's link field holds
  // the whole hub set, read back through a load.
  Main.store(Hub, Link, Hub);
  Main.load(Main.local("back"), Hub, Link);
  // A checked cast filters the dense set by type.
  Main.cast(Main.local("narrowed"), Hub, Payload);
  // Dispatch over the dense receiver set.
  Main.vcall(VarId::invalid(), Hub, "poke", {});
  Program Prog = B.take();
  ASSERT_TRUE(validateProgram(Prog).empty());

  for (auto &Policy : {makeInsensitivePolicy(), makeObjectPolicy(Prog, 2, 1)}) {
    ContextTable Table;
    SolverOptions Options;
    Options.KeepTuples = true;
    PointsToResult Solver = solvePointsTo(Prog, *Policy, Table, Options);
    ASSERT_EQ(Solver.Status, SolveStatus::Completed);
    // The point of this workload: the solver really ran on bitmap sets.
    EXPECT_GT(Solver.Stats.DensePointsToSets, 0u) << Policy->name();
    EXPECT_GT(Solver.Stats.BatchUnions, 0u) << Policy->name();

    DatalogReferenceResult Reference =
        runDatalogReference(Prog, *Policy, Table);
    ASSERT_FALSE(Reference.BudgetExceeded);
    auto Sorted = [](auto Tuples) {
      std::sort(Tuples.begin(), Tuples.end());
      return Tuples;
    };
    EXPECT_EQ(Sorted(Solver.VarPointsTo), Reference.VarPointsTo)
        << Policy->name();
    EXPECT_EQ(Sorted(Solver.FieldPointsTo), Reference.FieldPointsTo)
        << Policy->name();
    EXPECT_EQ(Sorted(Solver.Reachable), Reference.Reachable)
        << Policy->name();
    EXPECT_EQ(Sorted(Solver.CallGraph), Reference.CallGraph)
        << Policy->name();
  }
}
