# Empty dependencies file for intro_datalog.
# This may be replaced when dependencies are built.
