file(REMOVE_RECURSE
  "CMakeFiles/intro_datalog.dir/Aggregates.cpp.o"
  "CMakeFiles/intro_datalog.dir/Aggregates.cpp.o.d"
  "CMakeFiles/intro_datalog.dir/Engine.cpp.o"
  "CMakeFiles/intro_datalog.dir/Engine.cpp.o.d"
  "libintro_datalog.a"
  "libintro_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
