file(REMOVE_RECURSE
  "libintro_datalog.a"
)
