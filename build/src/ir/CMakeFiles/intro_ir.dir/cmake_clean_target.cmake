file(REMOVE_RECURSE
  "libintro_ir.a"
)
