
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Facts.cpp" "src/ir/CMakeFiles/intro_ir.dir/Facts.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/Facts.cpp.o.d"
  "/root/repo/src/ir/FactsIO.cpp" "src/ir/CMakeFiles/intro_ir.dir/FactsIO.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/FactsIO.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/intro_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Program.cpp" "src/ir/CMakeFiles/intro_ir.dir/Program.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/Program.cpp.o.d"
  "/root/repo/src/ir/ProgramBuilder.cpp" "src/ir/CMakeFiles/intro_ir.dir/ProgramBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/ProgramBuilder.cpp.o.d"
  "/root/repo/src/ir/SouffleExport.cpp" "src/ir/CMakeFiles/intro_ir.dir/SouffleExport.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/SouffleExport.cpp.o.d"
  "/root/repo/src/ir/Validator.cpp" "src/ir/CMakeFiles/intro_ir.dir/Validator.cpp.o" "gcc" "src/ir/CMakeFiles/intro_ir.dir/Validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/intro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
