# Empty compiler generated dependencies file for intro_ir.
# This may be replaced when dependencies are built.
