file(REMOVE_RECURSE
  "CMakeFiles/intro_ir.dir/Facts.cpp.o"
  "CMakeFiles/intro_ir.dir/Facts.cpp.o.d"
  "CMakeFiles/intro_ir.dir/FactsIO.cpp.o"
  "CMakeFiles/intro_ir.dir/FactsIO.cpp.o.d"
  "CMakeFiles/intro_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/intro_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/intro_ir.dir/Program.cpp.o"
  "CMakeFiles/intro_ir.dir/Program.cpp.o.d"
  "CMakeFiles/intro_ir.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/intro_ir.dir/ProgramBuilder.cpp.o.d"
  "CMakeFiles/intro_ir.dir/SouffleExport.cpp.o"
  "CMakeFiles/intro_ir.dir/SouffleExport.cpp.o.d"
  "CMakeFiles/intro_ir.dir/Validator.cpp.o"
  "CMakeFiles/intro_ir.dir/Validator.cpp.o.d"
  "libintro_ir.a"
  "libintro_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
