file(REMOVE_RECURSE
  "CMakeFiles/intro_introspect.dir/Custom.cpp.o"
  "CMakeFiles/intro_introspect.dir/Custom.cpp.o.d"
  "CMakeFiles/intro_introspect.dir/Driver.cpp.o"
  "CMakeFiles/intro_introspect.dir/Driver.cpp.o.d"
  "CMakeFiles/intro_introspect.dir/Heuristics.cpp.o"
  "CMakeFiles/intro_introspect.dir/Heuristics.cpp.o.d"
  "CMakeFiles/intro_introspect.dir/Importance.cpp.o"
  "CMakeFiles/intro_introspect.dir/Importance.cpp.o.d"
  "CMakeFiles/intro_introspect.dir/Metrics.cpp.o"
  "CMakeFiles/intro_introspect.dir/Metrics.cpp.o.d"
  "libintro_introspect.a"
  "libintro_introspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_introspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
