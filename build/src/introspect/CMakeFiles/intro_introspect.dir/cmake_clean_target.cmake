file(REMOVE_RECURSE
  "libintro_introspect.a"
)
