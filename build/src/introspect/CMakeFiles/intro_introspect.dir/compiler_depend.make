# Empty compiler generated dependencies file for intro_introspect.
# This may be replaced when dependencies are built.
