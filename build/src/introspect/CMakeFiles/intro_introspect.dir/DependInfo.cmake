
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/introspect/Custom.cpp" "src/introspect/CMakeFiles/intro_introspect.dir/Custom.cpp.o" "gcc" "src/introspect/CMakeFiles/intro_introspect.dir/Custom.cpp.o.d"
  "/root/repo/src/introspect/Driver.cpp" "src/introspect/CMakeFiles/intro_introspect.dir/Driver.cpp.o" "gcc" "src/introspect/CMakeFiles/intro_introspect.dir/Driver.cpp.o.d"
  "/root/repo/src/introspect/Heuristics.cpp" "src/introspect/CMakeFiles/intro_introspect.dir/Heuristics.cpp.o" "gcc" "src/introspect/CMakeFiles/intro_introspect.dir/Heuristics.cpp.o.d"
  "/root/repo/src/introspect/Importance.cpp" "src/introspect/CMakeFiles/intro_introspect.dir/Importance.cpp.o" "gcc" "src/introspect/CMakeFiles/intro_introspect.dir/Importance.cpp.o.d"
  "/root/repo/src/introspect/Metrics.cpp" "src/introspect/CMakeFiles/intro_introspect.dir/Metrics.cpp.o" "gcc" "src/introspect/CMakeFiles/intro_introspect.dir/Metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/intro_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/intro_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/intro_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/intro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
