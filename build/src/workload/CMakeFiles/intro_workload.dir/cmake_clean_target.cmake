file(REMOVE_RECURSE
  "libintro_workload.a"
)
