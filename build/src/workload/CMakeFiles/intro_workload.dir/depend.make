# Empty dependencies file for intro_workload.
# This may be replaced when dependencies are built.
