file(REMOVE_RECURSE
  "CMakeFiles/intro_workload.dir/DaCapo.cpp.o"
  "CMakeFiles/intro_workload.dir/DaCapo.cpp.o.d"
  "CMakeFiles/intro_workload.dir/Generator.cpp.o"
  "CMakeFiles/intro_workload.dir/Generator.cpp.o.d"
  "CMakeFiles/intro_workload.dir/Random.cpp.o"
  "CMakeFiles/intro_workload.dir/Random.cpp.o.d"
  "libintro_workload.a"
  "libintro_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
