# Empty dependencies file for intro_analysis.
# This may be replaced when dependencies are built.
