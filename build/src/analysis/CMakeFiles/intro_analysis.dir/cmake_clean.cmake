file(REMOVE_RECURSE
  "CMakeFiles/intro_analysis.dir/Alias.cpp.o"
  "CMakeFiles/intro_analysis.dir/Alias.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/ContextPolicy.cpp.o"
  "CMakeFiles/intro_analysis.dir/ContextPolicy.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/DatalogReference.cpp.o"
  "CMakeFiles/intro_analysis.dir/DatalogReference.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/Escape.cpp.o"
  "CMakeFiles/intro_analysis.dir/Escape.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/PrecisionMetrics.cpp.o"
  "CMakeFiles/intro_analysis.dir/PrecisionMetrics.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/Reports.cpp.o"
  "CMakeFiles/intro_analysis.dir/Reports.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/Solver.cpp.o"
  "CMakeFiles/intro_analysis.dir/Solver.cpp.o.d"
  "CMakeFiles/intro_analysis.dir/Statistics.cpp.o"
  "CMakeFiles/intro_analysis.dir/Statistics.cpp.o.d"
  "libintro_analysis.a"
  "libintro_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
