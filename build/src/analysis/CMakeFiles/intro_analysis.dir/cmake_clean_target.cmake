file(REMOVE_RECURSE
  "libintro_analysis.a"
)
