
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Alias.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/Alias.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/Alias.cpp.o.d"
  "/root/repo/src/analysis/ContextPolicy.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/ContextPolicy.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/ContextPolicy.cpp.o.d"
  "/root/repo/src/analysis/DatalogReference.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/DatalogReference.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/DatalogReference.cpp.o.d"
  "/root/repo/src/analysis/Escape.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/Escape.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/Escape.cpp.o.d"
  "/root/repo/src/analysis/PrecisionMetrics.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/PrecisionMetrics.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/PrecisionMetrics.cpp.o.d"
  "/root/repo/src/analysis/Reports.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/Reports.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/Reports.cpp.o.d"
  "/root/repo/src/analysis/Solver.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/Solver.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/Solver.cpp.o.d"
  "/root/repo/src/analysis/Statistics.cpp" "src/analysis/CMakeFiles/intro_analysis.dir/Statistics.cpp.o" "gcc" "src/analysis/CMakeFiles/intro_analysis.dir/Statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/intro_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/intro_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/intro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
