# Empty compiler generated dependencies file for intro_frontend.
# This may be replaced when dependencies are built.
