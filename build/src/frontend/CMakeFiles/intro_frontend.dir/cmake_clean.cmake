file(REMOVE_RECURSE
  "CMakeFiles/intro_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/intro_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/intro_frontend.dir/Parser.cpp.o"
  "CMakeFiles/intro_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/intro_frontend.dir/Printer.cpp.o"
  "CMakeFiles/intro_frontend.dir/Printer.cpp.o.d"
  "libintro_frontend.a"
  "libintro_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
