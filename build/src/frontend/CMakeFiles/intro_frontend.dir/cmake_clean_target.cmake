file(REMOVE_RECURSE
  "libintro_frontend.a"
)
