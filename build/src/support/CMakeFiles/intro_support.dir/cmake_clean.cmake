file(REMOVE_RECURSE
  "CMakeFiles/intro_support.dir/StringInterner.cpp.o"
  "CMakeFiles/intro_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/intro_support.dir/TableWriter.cpp.o"
  "CMakeFiles/intro_support.dir/TableWriter.cpp.o.d"
  "CMakeFiles/intro_support.dir/TupleInterner.cpp.o"
  "CMakeFiles/intro_support.dir/TupleInterner.cpp.o.d"
  "libintro_support.a"
  "libintro_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
