file(REMOVE_RECURSE
  "libintro_support.a"
)
