# Empty dependencies file for intro_support.
# This may be replaced when dependencies are built.
