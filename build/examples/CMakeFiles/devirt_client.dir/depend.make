# Empty dependencies file for devirt_client.
# This may be replaced when dependencies are built.
