file(REMOVE_RECURSE
  "CMakeFiles/devirt_client.dir/devirt_client.cpp.o"
  "CMakeFiles/devirt_client.dir/devirt_client.cpp.o.d"
  "devirt_client"
  "devirt_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devirt_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
