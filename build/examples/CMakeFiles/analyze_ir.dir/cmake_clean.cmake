file(REMOVE_RECURSE
  "CMakeFiles/analyze_ir.dir/analyze_ir.cpp.o"
  "CMakeFiles/analyze_ir.dir/analyze_ir.cpp.o.d"
  "analyze_ir"
  "analyze_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
