# Empty compiler generated dependencies file for analyze_ir.
# This may be replaced when dependencies are built.
