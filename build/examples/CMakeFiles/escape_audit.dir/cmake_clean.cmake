file(REMOVE_RECURSE
  "CMakeFiles/escape_audit.dir/escape_audit.cpp.o"
  "CMakeFiles/escape_audit.dir/escape_audit.cpp.o.d"
  "escape_audit"
  "escape_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
