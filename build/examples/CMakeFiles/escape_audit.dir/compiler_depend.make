# Empty compiler generated dependencies file for escape_audit.
# This may be replaced when dependencies are built.
