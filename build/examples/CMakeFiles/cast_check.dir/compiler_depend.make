# Empty compiler generated dependencies file for cast_check.
# This may be replaced when dependencies are built.
