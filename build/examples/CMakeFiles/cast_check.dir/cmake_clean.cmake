file(REMOVE_RECURSE
  "CMakeFiles/cast_check.dir/cast_check.cpp.o"
  "CMakeFiles/cast_check.dir/cast_check.cpp.o.d"
  "cast_check"
  "cast_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cast_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
