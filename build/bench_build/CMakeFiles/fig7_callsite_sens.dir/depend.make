# Empty dependencies file for fig7_callsite_sens.
# This may be replaced when dependencies are built.
