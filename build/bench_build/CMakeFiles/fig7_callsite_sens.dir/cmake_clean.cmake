file(REMOVE_RECURSE
  "../bench/fig7_callsite_sens"
  "../bench/fig7_callsite_sens.pdb"
  "CMakeFiles/fig7_callsite_sens.dir/fig7_callsite_sens.cpp.o"
  "CMakeFiles/fig7_callsite_sens.dir/fig7_callsite_sens.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_callsite_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
