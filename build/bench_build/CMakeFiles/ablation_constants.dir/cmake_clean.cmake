file(REMOVE_RECURSE
  "../bench/ablation_constants"
  "../bench/ablation_constants.pdb"
  "CMakeFiles/ablation_constants.dir/ablation_constants.cpp.o"
  "CMakeFiles/ablation_constants.dir/ablation_constants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
