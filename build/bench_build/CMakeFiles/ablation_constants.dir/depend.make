# Empty dependencies file for ablation_constants.
# This may be replaced when dependencies are built.
