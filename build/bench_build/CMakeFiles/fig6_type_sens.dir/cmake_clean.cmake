file(REMOVE_RECURSE
  "../bench/fig6_type_sens"
  "../bench/fig6_type_sens.pdb"
  "CMakeFiles/fig6_type_sens.dir/fig6_type_sens.cpp.o"
  "CMakeFiles/fig6_type_sens.dir/fig6_type_sens.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_type_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
