# Empty dependencies file for fig6_type_sens.
# This may be replaced when dependencies are built.
