# Empty dependencies file for fig1_bimodal.
# This may be replaced when dependencies are built.
