file(REMOVE_RECURSE
  "../bench/fig1_bimodal"
  "../bench/fig1_bimodal.pdb"
  "CMakeFiles/fig1_bimodal.dir/fig1_bimodal.cpp.o"
  "CMakeFiles/fig1_bimodal.dir/fig1_bimodal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
