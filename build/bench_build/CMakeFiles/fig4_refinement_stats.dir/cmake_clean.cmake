file(REMOVE_RECURSE
  "../bench/fig4_refinement_stats"
  "../bench/fig4_refinement_stats.pdb"
  "CMakeFiles/fig4_refinement_stats.dir/fig4_refinement_stats.cpp.o"
  "CMakeFiles/fig4_refinement_stats.dir/fig4_refinement_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_refinement_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
