# Empty dependencies file for fig4_refinement_stats.
# This may be replaced when dependencies are built.
