file(REMOVE_RECURSE
  "../bench/fig5_object_sens"
  "../bench/fig5_object_sens.pdb"
  "CMakeFiles/fig5_object_sens.dir/fig5_object_sens.cpp.o"
  "CMakeFiles/fig5_object_sens.dir/fig5_object_sens.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_object_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
