# Empty compiler generated dependencies file for fig5_object_sens.
# This may be replaced when dependencies are built.
