
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_importance.cpp" "bench_build/CMakeFiles/ablation_importance.dir/ablation_importance.cpp.o" "gcc" "bench_build/CMakeFiles/ablation_importance.dir/ablation_importance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/introspect/CMakeFiles/intro_introspect.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/intro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/intro_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/intro_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/intro_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/intro_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
