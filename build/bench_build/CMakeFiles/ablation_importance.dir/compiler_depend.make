# Empty compiler generated dependencies file for ablation_importance.
# This may be replaced when dependencies are built.
