file(REMOVE_RECURSE
  "../bench/ablation_importance"
  "../bench/ablation_importance.pdb"
  "CMakeFiles/ablation_importance.dir/ablation_importance.cpp.o"
  "CMakeFiles/ablation_importance.dir/ablation_importance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
