file(REMOVE_RECURSE
  "CMakeFiles/client_tests.dir/ClientTests.cpp.o"
  "CMakeFiles/client_tests.dir/ClientTests.cpp.o.d"
  "client_tests"
  "client_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
