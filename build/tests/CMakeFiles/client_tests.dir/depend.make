# Empty dependencies file for client_tests.
# This may be replaced when dependencies are built.
