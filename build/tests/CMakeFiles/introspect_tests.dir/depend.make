# Empty dependencies file for introspect_tests.
# This may be replaced when dependencies are built.
