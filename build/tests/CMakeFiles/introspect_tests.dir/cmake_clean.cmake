file(REMOVE_RECURSE
  "CMakeFiles/introspect_tests.dir/IntrospectTests.cpp.o"
  "CMakeFiles/introspect_tests.dir/IntrospectTests.cpp.o.d"
  "introspect_tests"
  "introspect_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/introspect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
