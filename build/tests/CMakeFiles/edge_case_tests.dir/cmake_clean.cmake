file(REMOVE_RECURSE
  "CMakeFiles/edge_case_tests.dir/EdgeCaseTests.cpp.o"
  "CMakeFiles/edge_case_tests.dir/EdgeCaseTests.cpp.o.d"
  "edge_case_tests"
  "edge_case_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_case_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
