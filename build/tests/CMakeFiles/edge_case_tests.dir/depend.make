# Empty dependencies file for edge_case_tests.
# This may be replaced when dependencies are built.
