# Empty compiler generated dependencies file for solver_tests.
# This may be replaced when dependencies are built.
