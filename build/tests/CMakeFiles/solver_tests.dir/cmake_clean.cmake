file(REMOVE_RECURSE
  "CMakeFiles/solver_tests.dir/SolverTests.cpp.o"
  "CMakeFiles/solver_tests.dir/SolverTests.cpp.o.d"
  "solver_tests"
  "solver_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
