file(REMOVE_RECURSE
  "CMakeFiles/oracle_tests.dir/OracleTests.cpp.o"
  "CMakeFiles/oracle_tests.dir/OracleTests.cpp.o.d"
  "oracle_tests"
  "oracle_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
