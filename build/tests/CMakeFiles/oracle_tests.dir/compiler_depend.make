# Empty compiler generated dependencies file for oracle_tests.
# This may be replaced when dependencies are built.
