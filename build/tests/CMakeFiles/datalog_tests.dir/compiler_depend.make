# Empty compiler generated dependencies file for datalog_tests.
# This may be replaced when dependencies are built.
