file(REMOVE_RECURSE
  "CMakeFiles/datalog_tests.dir/DatalogTests.cpp.o"
  "CMakeFiles/datalog_tests.dir/DatalogTests.cpp.o.d"
  "datalog_tests"
  "datalog_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
