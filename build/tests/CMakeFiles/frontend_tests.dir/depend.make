# Empty dependencies file for frontend_tests.
# This may be replaced when dependencies are built.
