# Empty compiler generated dependencies file for exception_tests.
# This may be replaced when dependencies are built.
