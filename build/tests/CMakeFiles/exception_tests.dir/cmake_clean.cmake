file(REMOVE_RECURSE
  "CMakeFiles/exception_tests.dir/ExceptionTests.cpp.o"
  "CMakeFiles/exception_tests.dir/ExceptionTests.cpp.o.d"
  "exception_tests"
  "exception_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
