file(REMOVE_RECURSE
  "CMakeFiles/shape_tests.dir/ShapeTests.cpp.o"
  "CMakeFiles/shape_tests.dir/ShapeTests.cpp.o.d"
  "shape_tests"
  "shape_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
