# Empty dependencies file for shape_tests.
# This may be replaced when dependencies are built.
