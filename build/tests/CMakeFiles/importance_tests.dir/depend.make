# Empty dependencies file for importance_tests.
# This may be replaced when dependencies are built.
