file(REMOVE_RECURSE
  "CMakeFiles/importance_tests.dir/ImportanceTests.cpp.o"
  "CMakeFiles/importance_tests.dir/ImportanceTests.cpp.o.d"
  "importance_tests"
  "importance_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/importance_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
