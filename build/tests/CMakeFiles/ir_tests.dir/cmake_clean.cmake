file(REMOVE_RECURSE
  "CMakeFiles/ir_tests.dir/IrTests.cpp.o"
  "CMakeFiles/ir_tests.dir/IrTests.cpp.o.d"
  "ir_tests"
  "ir_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
