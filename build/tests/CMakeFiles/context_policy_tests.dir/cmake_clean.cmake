file(REMOVE_RECURSE
  "CMakeFiles/context_policy_tests.dir/ContextPolicyTests.cpp.o"
  "CMakeFiles/context_policy_tests.dir/ContextPolicyTests.cpp.o.d"
  "context_policy_tests"
  "context_policy_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
