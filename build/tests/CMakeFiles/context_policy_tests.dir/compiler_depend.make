# Empty compiler generated dependencies file for context_policy_tests.
# This may be replaced when dependencies are built.
