file(REMOVE_RECURSE
  "CMakeFiles/extension_tests.dir/ExtensionTests.cpp.o"
  "CMakeFiles/extension_tests.dir/ExtensionTests.cpp.o.d"
  "extension_tests"
  "extension_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
