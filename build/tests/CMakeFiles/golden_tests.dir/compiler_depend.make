# Empty compiler generated dependencies file for golden_tests.
# This may be replaced when dependencies are built.
