file(REMOVE_RECURSE
  "CMakeFiles/golden_tests.dir/GoldenTests.cpp.o"
  "CMakeFiles/golden_tests.dir/GoldenTests.cpp.o.d"
  "golden_tests"
  "golden_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
