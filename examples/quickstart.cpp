//===- examples/quickstart.cpp - Five-minute tour of the library ----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quickstart from the README: build a tiny program with the
/// ProgramBuilder API, run a context-insensitive and a 2-object-sensitive
/// analysis on it, and observe the precision difference on the classic
/// "two boxes" container pattern.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Solver.h"
#include "ir/ProgramBuilder.h"

#include <iostream>

using namespace intro;

int main() {
  // --- 1. Build a program -------------------------------------------------
  //
  //   Box b1 = new Box();        Box b2 = new Box();
  //   b1.set(new A());           b2.set(new B());
  //   Object oa = b1.get();      // really an A
  //   A ca = (A) oa;             // does this cast ever fail?
  ProgramBuilder B;
  TypeId Object = B.cls("Object");
  TypeId Box = B.cls("Box", Object);
  TypeId A = B.cls("A", Object);
  TypeId BT = B.cls("B", Object);
  FieldId F = B.field(Box, "f");

  MethodBuilder Set = B.method(Box, "set", 1);
  Set.store(Set.thisVar(), F, Set.formal(0));
  MethodBuilder Get = B.method(Box, "get", 0);
  Get.load(Get.returnVar(), Get.thisVar(), F);

  MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
  B.entry(Main.id());
  VarId B1 = Main.local("b1");
  VarId B2 = Main.local("b2");
  VarId VA = Main.local("a");
  VarId VB = Main.local("b");
  VarId Oa = Main.local("oa");
  VarId Ca = Main.local("ca");
  Main.alloc(B1, Box);
  Main.alloc(B2, Box);
  HeapId HeapA = Main.alloc(VA, A);
  HeapId HeapB = Main.alloc(VB, BT);
  Main.vcall(VarId::invalid(), B1, "set", {VA});
  Main.vcall(VarId::invalid(), B2, "set", {VB});
  Main.vcall(Oa, B1, "get", {});
  Main.cast(Ca, Oa, A);

  Program Prog = B.take();

  // --- 2. Analyze it, twice ------------------------------------------------
  auto ShowRun = [&](const ContextPolicy &Policy) {
    ContextTable Contexts;
    PointsToResult Result = solvePointsTo(Prog, Policy, Contexts);
    PrecisionMetrics Precision = computePrecision(Prog, Result);

    std::cout << "analysis " << Policy.name() << ":\n  oa may point to {";
    bool FirstHeap = true;
    for (uint32_t HeapRaw : Result.pointsTo(Oa)) {
      std::cout << (FirstHeap ? " " : ", ")
                << Prog.typeName(Prog.heap(HeapId(HeapRaw)).Type);
      FirstHeap = false;
    }
    std::cout << " }\n  casts that may fail: "
              << Precision.CastsThatMayFail << "\n  VarPointsTo tuples: "
              << Result.Stats.VarPointsToTuples << "\n\n";
  };

  auto Insens = makeInsensitivePolicy();
  ShowRun(*Insens);
  // Context-insensitively, both boxes share one abstract field, so `oa`
  // appears to hold A *and* B -- the cast "may fail".

  auto Deep = makeObjectPolicy(Prog, /*Depth=*/2, /*HeapDepth=*/1);
  ShowRun(*Deep);
  // 2objH analyzes set/get once per receiver box, so `oa` holds exactly
  // the A object and the cast is proved safe.

  (void)HeapA;
  (void)HeapB;
  return 0;
}
