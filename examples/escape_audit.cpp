//===- examples/escape_audit.cpp - Escape analysis + diagnostics ----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two clients on one run: (a) escape analysis — how many allocation sites
/// are provably confined to their allocating method (stack-allocation
/// candidates) under increasingly precise analyses; (b) the context-growth
/// diagnostics one uses to understand *why* a deep analysis is expensive.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Escape.h"
#include "analysis/Solver.h"
#include "analysis/Statistics.h"
#include "workload/DaCapo.h"

#include <iostream>

using namespace intro;

int main() {
  Program Prog = generateWorkload(dacapoProfile("eclipse"));
  std::cout << "escape audit on the synthetic 'eclipse' benchmark ("
            << Prog.numHeaps() << " allocation sites)\n\n";

  for (int UseDeep : {0, 1}) {
    auto Policy = UseDeep ? makeObjectPolicy(Prog, 2, 1)
                          : makeInsensitivePolicy();
    ContextTable Table;
    SolverOptions Options;
    Options.KeepTuples = UseDeep != 0; // For the diagnostics below.
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);
    EscapeResult Escape = computeEscape(Prog, Result);

    double Share = 100.0 * static_cast<double>(Escape.captured()) /
                   static_cast<double>(Escape.ReachableSites);
    std::cout << Policy->name() << ": " << Escape.captured() << " of "
              << Escape.ReachableSites
              << " reachable allocation sites do not escape their method ("
              << Share << " %)\n";

    if (UseDeep) {
      std::cout << "\ncontext-growth diagnostics (2objH):\n";
      ContextStatistics Stats =
          computeContextStatistics(Prog, Result, /*TopN=*/5);
      printContextStatistics(Prog, Stats, std::cout);
    }
  }
  std::cout << "\nNote how the deep analysis shrinks the *reachable* site\n"
               "population (the decoy allocations disappear with the\n"
               "spurious call-graph edges), and how the diagnostics point\n"
               "straight at the planted pathology: the popular container's\n"
               "methods hoard contexts, the hub-draining client methods\n"
               "hoard tuples -- exactly the elements the introspection\n"
               "heuristics exclude.\n";
  return 0;
}
