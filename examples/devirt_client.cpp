//===- examples/devirt_client.cpp - Devirtualization via introspection ----===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiler-style client: find virtual call sites that can be replaced by
/// direct calls (exactly one possible target).  Runs on the synthetic
/// "xalan" benchmark, where a plain 2objH analysis blows past the resource
/// budget on larger configurations, while the introspective variant stays
/// cheap and still devirtualizes far more sites than the insensitive
/// analysis -- the paper's value proposition, experienced from a client.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "introspect/Driver.h"
#include "workload/DaCapo.h"

#include <iostream>

using namespace intro;

namespace {

struct DevirtReport {
  uint64_t Monomorphic = 0; ///< Sites with exactly one target.
  uint64_t Polymorphic = 0; ///< Sites with two or more targets.
};

DevirtReport report(const Program &Prog, const PointsToResult &Result) {
  DevirtReport Report;
  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    SiteId Site(SiteIndex);
    const SiteInfo &Info = Prog.site(Site);
    if (Info.IsStatic || !Result.isReachable(Info.InMethod))
      continue;
    size_t Targets = Result.callTargets(Site).size();
    if (Targets == 1)
      ++Report.Monomorphic;
    else if (Targets >= 2)
      ++Report.Polymorphic;
  }
  return Report;
}

} // namespace

int main() {
  Program Prog = generateWorkload(dacapoProfile("xalan"));
  std::cout << "devirtualization client on the synthetic 'xalan' benchmark ("
            << Prog.numMethods() << " methods, " << Prog.numSites()
            << " call sites)\n\n";

  // Baseline: context-insensitive.
  auto Insens = makeInsensitivePolicy();
  ContextTable Table;
  PointsToResult Base = solvePointsTo(Prog, *Insens, Table);
  DevirtReport BaseReport = report(Prog, Base);
  std::cout << "insens:        " << BaseReport.Monomorphic
            << " devirtualizable, " << BaseReport.Polymorphic
            << " polymorphic\n";

  // The production path: introspective 2objH with Heuristic B.
  auto Refined = makeObjectPolicy(Prog, 2, 1);
  IntrospectiveOptions Options;
  Options.Heuristic = HeuristicKind::B;
  IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
  DevirtReport IntroReport = report(Prog, Out.SecondPass);
  std::cout << "2objH-IntroB:  " << IntroReport.Monomorphic
            << " devirtualizable, " << IntroReport.Polymorphic
            << " polymorphic  ("
            << (isCompleted(Out.SecondPass.Status) ? "completed"
                                                   : "budget exceeded")
            << " in " << Out.SecondPassSeconds << "s; "
            << Out.Stats.ExcludedCallSites
            << " call sites analyzed context-insensitively)\n";

  uint64_t Gained = IntroReport.Monomorphic - BaseReport.Monomorphic;
  std::cout << "\nthe introspective analysis devirtualizes " << Gained
            << " more sites than the insensitive baseline\n";
  return 0;
}
