//===- examples/analyze_ir.cpp - Command-line analysis driver -------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line tool in the spirit of Doop's driver: read a program in
/// the textual IR format, run the requested analysis, and optionally emit
/// reports and fact files.
///
/// Usage:
///   analyze_ir [<file.ir>] [analysis] [options]
///
/// analyses:
///   insens (default), 1callH, 2callH, 1objH, 2objH, 1typeH, 2typeH,
///   2hybH, and <flavor>-introA / <flavor>-introB for the paper's two-pass
///   introspective pipeline.
///
/// options:
///   --filter-casts       checked-cast (Doop CheckCast) semantics
///   --max-tuples=<n>     resource budget (default 100000000)
///   --stats              context-growth diagnostics (top methods)
///   --escape             escape-analysis summary
///   --dot=<file>         write the resolved call graph as Graphviz DOT
///   --report=<file>      write the per-variable points-to listing
///   --facts=<dir>        export Doop-style .facts files (dir must exist)
///
/// With no file argument, a small demo program is analyzed.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Escape.h"
#include "analysis/PrecisionMetrics.h"
#include "analysis/Reports.h"
#include "analysis/Solver.h"
#include "analysis/Statistics.h"
#include "frontend/Parser.h"
#include "introspect/Driver.h"
#include "ir/FactsIO.h"
#include "ir/Validator.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace intro;

namespace {

const char *DemoSource = R"(
class Object
class Node extends Object {
  field next
  method link(n) { this.Node#next = n }
  method tail() -> r { r = this.Node#next }
}
class Main extends Object {
  entry static method main() {
    a = new Node
    b = new Node
    a.link(b)
    t = a.tail()
    u = (Node) t
    t.link(a)
  }
}
)";

struct CliOptions {
  std::string File;
  std::string Analysis = "insens";
  bool FilterCasts = false;
  bool ShowStats = false;
  bool ShowEscape = false;
  uint64_t MaxTuples = 100'000'000;
  std::string DotPath;
  std::string ReportPath;
  std::string FactsDir;
};

void printUsage() {
  std::cerr
      << "usage: analyze_ir [<file.ir>] [analysis] [options]\n"
         "  analyses: insens 1callH 2callH 1objH 2objH 1typeH 2typeH 2hybH\n"
         "            plus <flavor>-introA / <flavor>-introB\n"
         "  options:  --filter-casts --max-tuples=<n> --stats --escape\n"
         "            --dot=<file> --report=<file> --facts=<dir>\n";
}

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  for (int Arg = 1; Arg < Argc; ++Arg) {
    std::string Text = Argv[Arg];
    if (Text == "--filter-casts")
      Cli.FilterCasts = true;
    else if (Text == "--stats")
      Cli.ShowStats = true;
    else if (Text == "--escape")
      Cli.ShowEscape = true;
    else if (Text.rfind("--max-tuples=", 0) == 0)
      Cli.MaxTuples = std::stoull(Text.substr(13));
    else if (Text.rfind("--dot=", 0) == 0)
      Cli.DotPath = Text.substr(6);
    else if (Text.rfind("--report=", 0) == 0)
      Cli.ReportPath = Text.substr(9);
    else if (Text.rfind("--facts=", 0) == 0)
      Cli.FactsDir = Text.substr(8);
    else if (Text.rfind("--", 0) == 0) {
      std::cerr << "unknown option '" << Text << "'\n";
      return false;
    } else if (Text.find('.') != std::string::npos && Cli.File.empty())
      Cli.File = Text;
    else
      Cli.Analysis = Text;
  }
  return true;
}

/// Builds the plain policy named \p Name, or null if unknown.
std::unique_ptr<ContextPolicy> makeNamedPolicy(const std::string &Name,
                                               const Program &Prog) {
  if (Name == "insens")
    return makeInsensitivePolicy();
  if (Name == "1callH")
    return makeCallSitePolicy(1, 0);
  if (Name == "2callH")
    return makeCallSitePolicy(2, 1);
  if (Name == "1objH")
    return makeObjectPolicy(Prog, 1, 0);
  if (Name == "2objH")
    return makeObjectPolicy(Prog, 2, 1);
  if (Name == "1typeH")
    return makeTypePolicy(Prog, 1, 0);
  if (Name == "2typeH")
    return makeTypePolicy(Prog, 2, 1);
  if (Name == "2hybH")
    return makeHybridPolicy(Prog, 2, 1);
  return nullptr;
}

void printSummary(const Program &Prog, const PointsToResult &Result) {
  PrecisionMetrics Precision = computePrecision(Prog, Result);
  std::cout << "analysis:            " << Result.AnalysisName << "\n"
            << "status:              "
            << (isCompleted(Result.Status) ? "completed" : "budget exceeded")
            << "\n"
            << "time:                " << Result.Stats.Seconds << " s\n"
            << "var-points-to:       " << Result.Stats.VarPointsToTuples
            << " tuples\n"
            << "field-points-to:     " << Result.Stats.FieldPointsToTuples
            << " tuples\n"
            << "static-field tuples: " << Result.Stats.StaticFieldTuples
            << "\n"
            << "throw-points-to:     " << Result.Stats.ThrowPointsToTuples
            << " tuples\n"
            << "contexts:            " << Result.Stats.NumContexts
            << " (heap " << Result.Stats.NumHeapContexts << ")\n"
            << "reachable methods:   " << Precision.ReachableMethods << " of "
            << Prog.numMethods() << "\n"
            << "call-graph edges:    " << Result.Stats.CallGraphEdges << "\n"
            << "polymorphic sites:   " << Precision.PolymorphicVirtualCallSites
            << " of " << Precision.ReachableVirtualCallSites
            << " reachable virtual sites\n"
            << "casts that may fail: " << Precision.CastsThatMayFail << " of "
            << Precision.ReachableCasts << " reachable casts\n";
}

void emitArtifacts(const CliOptions &Cli, const Program &Prog,
                   const PointsToResult &Result) {
  if (Cli.ShowEscape) {
    EscapeResult Escape = computeEscape(Prog, Result);
    std::cout << "escape:              " << Escape.captured() << " of "
              << Escape.ReachableSites << " reachable sites captured\n";
  }
  if (Cli.ShowStats) {
    std::cout << "\ncontext-growth diagnostics:\n";
    printContextStatistics(Prog, computeContextStatistics(Prog, Result),
                           std::cout);
  }
  if (!Cli.DotPath.empty()) {
    std::ofstream Out(Cli.DotPath);
    writeCallGraphDot(Prog, Result, Out);
    std::cout << "wrote call graph to " << Cli.DotPath << "\n";
  }
  if (!Cli.ReportPath.empty()) {
    std::ofstream Out(Cli.ReportPath);
    writePointsToReport(Prog, Result, Out);
    std::cout << "wrote points-to report to " << Cli.ReportPath << "\n";
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage();
    return 1;
  }

  std::string Source = DemoSource;
  if (!Cli.File.empty()) {
    std::ifstream File(Cli.File);
    if (!File) {
      std::cerr << "error: cannot open '" << Cli.File << "'\n";
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Source = Buffer.str();
  }

  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.ok()) {
    for (const std::string &Error : Parsed.Errors)
      std::cerr << "parse error: " << Error << "\n";
    return 1;
  }
  auto Errors = validateProgram(Parsed.Prog);
  if (!Errors.empty()) {
    for (const std::string &Error : Errors)
      std::cerr << "invalid program: " << Error << "\n";
    return 1;
  }
  const Program &Prog = Parsed.Prog;

  if (!Cli.FactsDir.empty()) {
    std::string Error;
    auto Files = writeFactsDirectory(Prog, Cli.FactsDir, Error);
    if (Files.empty()) {
      std::cerr << "facts export failed: " << Error << "\n";
      return 1;
    }
    std::cout << "wrote " << Files.size() << " fact files to " << Cli.FactsDir
              << "\n";
  }

  SolverOptions Options;
  Options.Budget.MaxTuples = Cli.MaxTuples;
  Options.FilterCasts = Cli.FilterCasts;
  Options.KeepTuples = Cli.ShowStats;

  // Introspective pipeline: "<flavor>-introA" / "<flavor>-introB".
  size_t IntroPos = Cli.Analysis.find("-intro");
  if (IntroPos != std::string::npos) {
    std::string FlavorName = Cli.Analysis.substr(0, IntroPos);
    char HeuristicName = Cli.Analysis.back();
    auto Refined = makeNamedPolicy(FlavorName, Prog);
    if (!Refined || (HeuristicName != 'A' && HeuristicName != 'B')) {
      printUsage();
      return 1;
    }
    IntrospectiveOptions IntroOptions;
    IntroOptions.Heuristic =
        HeuristicName == 'A' ? HeuristicKind::A : HeuristicKind::B;
    IntroOptions.SecondPassBudget.MaxTuples = Cli.MaxTuples;
    IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, IntroOptions);
    std::cout << "first pass (insens):  " << Out.FirstPassSeconds << " s\n"
              << "introspection:        " << Out.MetricSeconds << " s, "
              << Out.Stats.ExcludedCallSites << " call sites and "
              << Out.Stats.ExcludedObjects
              << " objects selected to not be refined\n\n";
    printSummary(Prog, Out.SecondPass);
    emitArtifacts(Cli, Prog, Out.SecondPass);
    return 0;
  }

  auto Policy = makeNamedPolicy(Cli.Analysis, Prog);
  if (!Policy) {
    printUsage();
    return 1;
  }
  ContextTable Table;
  PointsToResult Result = solvePointsTo(Prog, *Policy, Table, Options);
  printSummary(Prog, Result);
  emitArtifacts(Cli, Prog, Result);
  return 0;
}
