//===- examples/cast_check.cpp - Cast-safety checking from textual IR -----===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A verification-style client: prove downcasts safe.  The program is given
/// in the textual IR format (so this example also demonstrates the
/// frontend), and every flavor of context-sensitivity is compared on it.
/// The example encodes a registry/visitor pattern in which each flavor
/// proves a *different* subset of the casts safe, illustrating what the
/// abstractions do and do not distinguish.
///
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"
#include "analysis/Solver.h"
#include "frontend/Parser.h"
#include "ir/Validator.h"

#include <iostream>

using namespace intro;

namespace {

// Two cells used through the same class but distinguishable by receiver
// object (2objH), by call site (2callH), and -- because one cell is used
// from a method of another class -- partially by type (2typeH).
const char *Source = R"(
class Object
class Cell extends Object {
  field v
  method set(p) { this.Cell#v = p }
  method get() -> r { r = this.Cell#v }
}
class A extends Object
class B extends Object

class Other extends Object {
  method use() -> r {
    c = new Cell
    a = new A
    c.set(a)
    o = c.get()
    r = (A) o        // cast #1: in class Other
  }
}

class Main extends Object {
  entry static method main() {
    c1 = new Cell
    c2 = new Cell
    a = new A
    b = new B
    c1.set(a)
    c2.set(b)
    oa = c1.get()
    ob = c2.get()
    ca = (A) oa      // cast #2: in class Main
    cb = (B) ob      // cast #3: in class Main
    helper = new Other
    x = helper.use()
  }
}
)";

uint64_t countUnsafeCasts(const Program &Prog, const PointsToResult &Result) {
  uint64_t Unsafe = 0;
  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    if (!Result.isReachable(MethodId(MethodIndex)))
      continue;
    for (const Instruction &Instr : Prog.method(MethodId(MethodIndex)).Body) {
      if (Instr.Kind != InstrKind::Cast)
        continue;
      for (uint32_t HeapRaw : Result.pointsTo(Instr.From))
        if (!Prog.isSubtypeOf(Prog.heap(HeapId(HeapRaw)).Type,
                              Instr.CastType)) {
          ++Unsafe;
          break;
        }
    }
  }
  return Unsafe;
}

} // namespace

int main() {
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.ok()) {
    std::cerr << "parse error: " << Parsed.Errors[0] << "\n";
    return 1;
  }
  auto Errors = validateProgram(Parsed.Prog);
  if (!Errors.empty()) {
    std::cerr << "invalid program: " << Errors[0] << "\n";
    return 1;
  }
  const Program &Prog = Parsed.Prog;

  std::cout << "cast-safety client: 3 downcasts through a shared Cell "
               "class\n\n";
  std::vector<std::unique_ptr<ContextPolicy>> Policies;
  Policies.push_back(makeInsensitivePolicy());
  Policies.push_back(makeTypePolicy(Prog, 2, 1));
  Policies.push_back(makeCallSitePolicy(2, 1));
  Policies.push_back(makeObjectPolicy(Prog, 2, 1));
  for (const auto &Policy : Policies) {
    ContextTable Table;
    PointsToResult Result = solvePointsTo(Prog, *Policy, Table);
    uint64_t Unsafe = countUnsafeCasts(Prog, Result);
    std::cout << "  " << Policy->name() << ": " << (3 - Unsafe)
              << "/3 casts proved safe\n";
  }
  std::cout << "\ninsens conflates all three cells; 2typeH separates the\n"
               "Other-class cell from Main's but not Main's two cells from\n"
               "each other; 2objH and 2callH prove all three casts safe.\n";
  return 0;
}
