//===- workload/DaCapo.h - DaCapo-shaped benchmark profiles -----*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-benchmark workload profiles named after the DaCapo 2006 programs the
/// paper evaluates.  The parameter choices are calibrated so that the
/// *shape* of the paper's results holds on the synthetic substrate:
///
///   - the context-insensitive analysis is uniformly fast everywhere;
///   - 2objH blows up on hsqldb and jython (and is painfully slow on
///     bloat), as in Figures 1 and 5;
///   - 2typeH blows up on jython only (Figure 6);
///   - 2callH blows up on 4 of the 6 scalability subjects (Figure 7);
///   - IntroA always terminates; IntroB terminates everywhere except
///     jython under 2objH and 2callH.
///
/// See DESIGN.md for why each structural knob drives each flavor.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOAD_DACAPO_H
#define WORKLOAD_DACAPO_H

#include "workload/Generator.h"

#include <string_view>
#include <vector>

namespace intro {

/// All nine benchmark profiles of the paper's Figure 1, in the paper's
/// order: antlr, bloat, chart, eclipse, hsqldb, jython, lusearch, pmd,
/// xalan.
std::vector<WorkloadProfile> dacapoProfiles();

/// The six "scalability subject" profiles of Figures 4-7: bloat, chart,
/// eclipse, hsqldb, jython, xalan.
std::vector<WorkloadProfile> scalabilitySubjects();

/// \returns the profile named \p Name (must exist in dacapoProfiles()).
WorkloadProfile dacapoProfile(std::string_view Name);

} // namespace intro

#endif // WORKLOAD_DACAPO_H
