//===- workload/Random.h - Random programs for property tests ---*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates small, fully random — but structurally valid — programs for
/// property-based testing: the worklist solver is compared tuple-for-tuple
/// against the Datalog reference on them, and both against the concrete
/// interpreter, across many seeds and every context flavor.
///
/// Unlike workload/Generator.h (which plants specific cost structures),
/// this generator draws every instruction independently, exploring corner
/// cases: unassigned variables, dispatch failures, dead methods, self-moves,
/// recursive static calls, casts that always fail, and so on.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOAD_RANDOM_H
#define WORKLOAD_RANDOM_H

#include "ir/Program.h"

namespace intro {

/// Shape parameters for random programs.
struct RandomProgramOptions {
  uint32_t NumClasses = 6;         ///< Classes beside the root.
  uint32_t NumVirtualSigs = 3;     ///< Distinct virtual method names.
  uint32_t NumStaticMethods = 4;   ///< Static helper methods.
  uint32_t InstructionsPerBody = 8; ///< Approximate body length.
  uint32_t LocalsPerMethod = 5;    ///< Local variable pool per method.
};

/// Generates a random program from \p Seed.  The result is finalized and
/// passes ir/Validator.h (asserted by the workload test suite).
Program generateRandomProgram(uint64_t Seed,
                              const RandomProgramOptions &Options =
                                  RandomProgramOptions());

} // namespace intro

#endif // WORKLOAD_RANDOM_H
