//===- workload/Generator.cpp - Synthetic benchmark programs --------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "ir/ProgramBuilder.h"
#include "support/Rng.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace intro;

namespace {

std::string concat(std::string_view Prefix, uint32_t A) {
  std::string Out(Prefix);
  Out += std::to_string(A);
  return Out;
}

std::string concat(std::string_view Prefix, uint32_t A, std::string_view Mid,
                   uint32_t B) {
  std::string Out(Prefix);
  Out += std::to_string(A);
  Out += Mid;
  Out += std::to_string(B);
  return Out;
}

/// One class-hierarchy family: an abstract base, its variants, and the
/// output classes their `workN()` methods allocate.
struct Family {
  TypeId Base;
  std::string WorkName;
  std::vector<TypeId> Variants;
};

class Generator {
public:
  explicit Generator(const WorkloadProfile &Profile)
      : P(Profile), R(Profile.Seed) {}

  Program run() {
    Object = B.cls("Object");
    makeFamilies();
    makeContainers();
    makeHub();
    makeUtils();
    makeHelpersAndClients();
    makeGenClasses();
    makeRegistryScanners();
    makeUtilDrives();
    makeContainerUses();
    makeLeafChain();
    makeMain();
    return B.take();
  }

private:
  // --- Breadth -------------------------------------------------------------

  void makeFamilies() {
    Families.reserve(P.NumFamilies);
    for (uint32_t F = 0; F < P.NumFamilies; ++F) {
      Family Fam;
      Fam.Base = B.cls(concat("Fam", F), Object);
      Fam.WorkName = concat("work", F);
      TypeId OutBase = B.cls(concat("Out", F), Object);
      for (uint32_t V = 0; V < P.VariantsPerFamily; ++V) {
        TypeId Variant = B.cls(concat("Fam", F, "_V", V), Fam.Base);
        TypeId OutType = B.cls(concat("Out", F, "_V", V), OutBase);
        MethodBuilder Work = B.method(Variant, Fam.WorkName, 0);
        Work.alloc(Work.returnVar(), OutType);
        Fam.Variants.push_back(Variant);
      }
      Families.push_back(std::move(Fam));
    }
  }

  void makeContainers() {
    Containers.reserve(P.NumContainerClasses);
    for (uint32_t C = 0; C < P.NumContainerClasses; ++C) {
      TypeId Cont = B.cls(concat("Cont", C), Object);
      FieldId Payload = B.field(Cont, "f");
      MethodBuilder Set = B.method(Cont, "set", 1);
      Set.store(Set.thisVar(), Payload, Set.formal(0));
      MethodBuilder Get = B.method(Cont, "get", 0);
      Get.load(Get.returnVar(), Get.thisVar(), Payload);
      Containers.push_back(Cont);
    }
  }

  // --- Hub pathology ----------------------------------------------------------

  void makeHub() {
    HubType = B.cls("Hub", Object);
    FieldId Slot = B.field(HubType, "slot");
    MethodBuilder Put = B.method(HubType, "put", 1);
    Put.store(Put.thisVar(), Slot, Put.formal(0));
    MethodBuilder Pull = B.method(HubType, "pull", 0);
    Pull.load(Pull.returnVar(), Pull.thisVar(), Slot);

    // The registry is a second, independent conflation point with the same
    // shape; clients registered here do not fatten the hub's payload sets.
    RegistryType = B.cls("Registry", Object);
    FieldId RegSlot = B.field(RegistryType, "slot");
    MethodBuilder Reg = B.method(RegistryType, "put", 1);
    Reg.store(Reg.thisVar(), RegSlot, Reg.formal(0));
    MethodBuilder Scan = B.method(RegistryType, "pull", 0);
    Scan.load(Scan.returnVar(), Scan.thisVar(), RegSlot);
  }

  /// Static methods that sweep the registry into many locals, raising the
  /// pointed-by-vars metric of every registered object.
  void makeRegistryScanners() {
    if (!P.UseRegistry)
      return;
    for (uint32_t S = 0; S < P.RegistryScanMethods; ++S) {
      MethodBuilder Scan =
          B.method(Object, concat("scanRegistry", S), 1, /*IsStatic=*/true);
      VarId Swept = Scan.local("o");
      Scan.vcall(Swept, Scan.formal(0), "pull", {});
      for (uint32_t W = 0; W < P.RegistryScanLocals; ++W) {
        VarId Spread = Scan.local(concat("w", W));
        Scan.move(Spread, Swept);
      }
      RegistryScanners.push_back(Scan.id());
    }
  }

  // --- Utility DAG (call-site pathology) ---------------------------------------

  void makeUtils() {
    if (P.UtilLevels == 0 || P.UtilMethodsPerLevel == 0)
      return;
    UtilMethods.resize(P.UtilLevels);
    // Declare all levels first (bottom level has no callees).
    std::vector<std::vector<MethodBuilder>> Builders(P.UtilLevels);
    for (uint32_t L = 0; L < P.UtilLevels; ++L)
      for (uint32_t M = 0; M < P.UtilMethodsPerLevel; ++M) {
        Builders[L].push_back(
            B.method(Object, concat("util", L, "_", M), 1, /*IsStatic=*/true));
        UtilMethods[L].push_back(Builders[L].back().id());
      }
    // Bodies: pass the payload down `UtilFanout` randomly chosen methods of
    // the next level; bottom level is the identity.
    for (uint32_t L = 0; L < P.UtilLevels; ++L)
      for (uint32_t M = 0; M < P.UtilMethodsPerLevel; ++M) {
        MethodBuilder &Util = Builders[L][M];
        VarId Arg = Util.formal(0);
        Util.move(Util.returnVar(), Arg);
        if (L + 1 >= P.UtilLevels)
          continue;
        for (uint32_t Fan = 0; Fan < P.UtilFanout; ++Fan) {
          MethodId Callee =
              UtilMethods[L + 1][R.below(P.UtilMethodsPerLevel)];
          VarId Out = Util.local(concat("u", Fan));
          Util.scall(Out, Callee, {Arg});
        }
      }
  }

  // --- Clients and helpers (receiver-space pathology) ----------------------------

  void makeHelpersAndClients() {
    Clients.reserve(P.NumClientClasses);
    for (uint32_t K = 0; K < P.NumClientClasses; ++K) {
      // Helper chain classes: Helper_k_d.proc(p) stores p and forwards it.
      std::vector<TypeId> Helpers;
      for (uint32_t D = 0; D < P.HelperDepth; ++D)
        Helpers.push_back(B.cls(concat("Helper", K, "_", D), Object));
      for (uint32_t D = 0; D < P.HelperDepth; ++D) {
        FieldId Stash = B.field(Helpers[D], "hs");
        MethodBuilder Proc = B.method(Helpers[D], "proc", 1);
        Proc.store(Proc.thisVar(), Stash, Proc.formal(0));
        for (uint32_t W = 0; W < P.HelperSpreadLocals; ++W) {
          VarId Spread = Proc.local(concat("w", W));
          Proc.move(Spread, Proc.formal(0));
        }
        if (D + 1 < P.HelperDepth) {
          VarId Next = Proc.local("next");
          Proc.alloc(Next, Helpers[D + 1]);
          Proc.vcall(VarId::invalid(), Next, "proc", {Proc.formal(0)});
        }
      }

      // Client_k.run(hub): drain the hub, stash, spread the drained set over
      // extra locals, forward to helpers, and dispatch on the payload.
      TypeId Client = B.cls(concat("Client", K), Object);
      FieldId Stash = B.field(Client, "st");
      MethodBuilder Run = B.method(Client, "run", 1);
      VarId Hub = Run.formal(0);
      VarId Drained = Run.local("o");
      Run.vcall(Drained, Hub, "pull", {});
      Run.store(Run.thisVar(), Stash, Drained);
      for (uint32_t W = 0; W < P.SpreadLocalsPerRun; ++W) {
        VarId Spread = Run.local(concat("w", W));
        Run.move(Spread, Drained);
      }
      if (P.HelperDepth > 0)
        for (uint32_t H = 0; H < P.HelperSitesPerRun; ++H) {
          VarId Helper = Run.local(concat("h", H));
          Run.alloc(Helper, Helpers[0]);
          Run.vcall(VarId::invalid(), Helper, "proc", {Drained});
          if (P.PutHelpersInHub)
            Run.vcall(VarId::invalid(), Hub, "put", {Helper});
        }
      if (!Families.empty()) {
        // Dispatch on the (conflated) hub payload: inherently polymorphic.
        const Family &Fam = Families[R.below(P.NumFamilies)];
        VarId Narrowed = Run.local("n");
        Run.cast(Narrowed, Drained, Fam.Base);
        VarId Result = Run.local("r");
        Run.vcall(Result, Narrowed, Fam.WorkName, {});
      }
      Clients.push_back(Client);
    }
  }

  // --- Generator classes (allocator-class diversity, type pathology) --------------

  void makeGenClasses() {
    if (P.NumGenClasses == 0)
      return;
    // Distribute payload and client allocations round-robin over the
    // spawn() methods of NumGenClasses distinct classes: the class hosting
    // an allocation site is what a type-sensitive analysis uses as context.
    std::vector<MethodBuilder> Spawns;
    GenTypes.reserve(P.NumGenClasses);
    for (uint32_t G = 0; G < P.NumGenClasses; ++G) {
      TypeId Gen = B.cls(concat("Gen", G), Object);
      GenTypes.push_back(Gen);
      Spawns.push_back(B.method(Gen, "spawn", 2)); // (hub, registry)
    }
    for (uint32_t F = 0; F < P.HubFanout; ++F) {
      MethodBuilder &Spawn = Spawns[F % Spawns.size()];
      VarId Payload = Spawn.local(concat("p", F));
      if (Families.empty())
        Spawn.alloc(Payload, Object);
      else {
        const Family &Fam = Families[R.below(P.NumFamilies)];
        Spawn.alloc(Payload, Fam.Variants[R.below(P.VariantsPerFamily)]);
      }
      Spawn.vcall(VarId::invalid(), Spawn.formal(0), "put", {Payload});
    }
    uint32_t ClientSiteIndex = 0;
    for (uint32_t K = 0; K < P.NumClientClasses; ++K)
      for (uint32_t S = 0; S < P.ClientAllocSites; ++S) {
        MethodBuilder &Spawn = Spawns[ClientSiteIndex++ % Spawns.size()];
        VarId Client = Spawn.local(concat("c", K, "_", S));
        Spawn.alloc(Client, Clients[K]);
        Spawn.vcall(VarId::invalid(), Client, "run", {Spawn.formal(0)});
        if (P.PutClientsInHub)
          Spawn.vcall(VarId::invalid(), Spawn.formal(0), "put", {Client});
        if (P.UseRegistry)
          Spawn.vcall(VarId::invalid(), Spawn.formal(1), "put", {Client});
      }
  }

  // --- Utility-DAG drivers (call-site pathology entry points) ---------------

  void makeUtilDrives() {
    if (UtilMethods.empty() || P.UtilDriveMethods == 0)
      return;
    for (uint32_t D = 0; D < P.UtilDriveMethods; ++D) {
      MethodBuilder Drive =
          B.method(Object, concat("utilDrive", D), 1, /*IsStatic=*/true);
      VarId Hub = Drive.formal(0);
      VarId Drained = Drive.local("o");
      Drive.vcall(Drained, Hub, "pull", {});
      for (uint32_t E = 0; E < P.UtilEntrySitesPerDrive; ++E) {
        MethodId Entry = UtilMethods[0][R.below(P.UtilMethodsPerLevel)];
        VarId Out = Drive.local(concat("e", E));
        Drive.scall(Out, Entry, {Drained});
      }
      UtilDrives.push_back(Drive.id());
    }
  }

  // --- Container uses (precision-bearing code with casts) -------------------------

  /// Emits one container-use snippet into \p Host: allocate a container of
  /// class \p Cont, store a fresh variant, read it back, cast it, dispatch
  /// on it.  The exact-variant cast is provable under deep context (the
  /// container instance is distinguished) but "may fail" insensitively
  /// (payloads of one container class are conflated).
  void emitSnippet(MethodBuilder &Host, uint32_t N, TypeId Cont) {
    const Family &Fam = Families[R.below(P.NumFamilies)];
    TypeId Variant = Fam.Variants[R.below(P.VariantsPerFamily)];

    VarId Box = Host.local(concat("box", N));
    Host.alloc(Box, Cont);
    VarId Value = Host.local(concat("v", N));
    Host.alloc(Value, Variant);
    Host.vcall(VarId::invalid(), Box, "set", {Value});
    VarId Out = Host.local(concat("o", N));
    Host.vcall(Out, Box, "get", {});
    VarId Narrowed = Host.local(concat("w", N));
    Host.cast(Narrowed, Out, Variant);
    // Dispatch on the widened value: monomorphic under deep context.
    VarId Base = Host.local(concat("b", N));
    Host.cast(Base, Out, Fam.Base);
    VarId Result = Host.local(concat("r", N));
    Host.vcall(Result, Base, Fam.WorkName, {});
  }

  void makeContainerUses() {
    if (Containers.empty() || Families.empty())
      return;
    // Snippets are hosted in drive() methods of distinct module classes:
    // the hosting class is type-sensitivity's context element, so snippets
    // in different modules are distinguished by 2typeH while snippets
    // within one module are not (partial precision, as with real code).
    uint32_t PerMod = std::max(1u, P.SnippetsPerModClass);
    uint32_t Emitted = 0;
    MethodBuilder *Drive = nullptr;
    std::vector<MethodBuilder> Drives;
    uint32_t TotalUses = P.ContainerUses + P.PopularContainerUses;
    Drives.reserve(TotalUses / PerMod + 2);
    for (uint32_t N = 0; N < TotalUses; ++N) {
      if (Emitted % PerMod == 0) {
        TypeId Mod = B.cls(concat("Mod", static_cast<uint32_t>(Mods.size())),
                           Object);
        Mods.push_back(Mod);
        Drives.push_back(B.method(Mod, "drive", 0));
        Drive = &Drives.back();
      }
      ++Emitted;
      // The popular container class 0 serves the extra uses; regular uses
      // draw a random container class.
      TypeId Cont = N < P.ContainerUses
                        ? Containers[R.below(P.NumContainerClasses)]
                        : Containers[0];
      emitSnippet(*Drive, N, Cont);
    }

    // Decoy variants: each is a fresh subclass of some family base whose
    // work() override exists, is *stored* into a popular-class container,
    // but is never retrieved from it -- a precise analysis proves the
    // override unreachable, a conflating one does not.
    for (uint32_t D = 0; D < P.DecoyVariants; ++D) {
      if (Emitted % PerMod == 0) {
        TypeId Mod = B.cls(concat("Mod", static_cast<uint32_t>(Mods.size())),
                           Object);
        Mods.push_back(Mod);
        Drives.push_back(B.method(Mod, "drive", 0));
        Drive = &Drives.back();
      }
      ++Emitted;
      const Family &Fam = Families[R.below(P.NumFamilies)];
      TypeId Decoy = B.cls(concat("Decoy", D), Fam.Base);
      TypeId DecoyOut = B.cls(concat("DecoyOut", D), Object);
      MethodBuilder Work = B.method(Decoy, Fam.WorkName, 0);
      Work.alloc(Work.returnVar(), DecoyOut);

      VarId Box = Drive->local(concat("dbox", D));
      Drive->alloc(Box, Containers[0]);
      VarId Value = Drive->local(concat("dv", D));
      Drive->alloc(Value, Decoy);
      Drive->vcall(VarId::invalid(), Box, "set", {Value});
    }
  }

  void makeLeafChain() {
    if (P.LeafChainLength == 0)
      return;
    std::vector<MethodBuilder> Leaves;
    Leaves.reserve(P.LeafChainLength);
    for (uint32_t N = 0; N < P.LeafChainLength; ++N)
      Leaves.push_back(
          B.method(Object, concat("leaf", N), 1, /*IsStatic=*/true));
    for (uint32_t N = 0; N < P.LeafChainLength; ++N) {
      MethodBuilder &Leaf = Leaves[N];
      // Each leaf allocates a private scratch object (breadth: realistic
      // heap-site and points-to population without pathology).
      VarId Scratch = Leaf.local("s");
      if (!Families.empty()) {
        const Family &Fam = Families[R.below(P.NumFamilies)];
        Leaf.alloc(Scratch, Fam.Variants[R.below(P.VariantsPerFamily)]);
      } else {
        Leaf.alloc(Scratch, Object);
      }
      if (N + 1 < P.LeafChainLength)
        Leaf.scall(Leaf.returnVar(), Leaves[N + 1].id(), {Scratch});
      else
        Leaf.move(Leaf.returnVar(), Leaf.formal(0));
    }
    LeafEntry = Leaves.front().id();
  }

  // --- main -------------------------------------------------------------------

  void makeMain() {
    MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
    B.entry(Main.id());

    VarId Hub = Main.local("hub");
    Main.alloc(Hub, HubType);
    VarId Registry = Main.local("reg");
    Main.alloc(Registry, RegistryType);
    for (uint32_t G = 0; G < GenTypes.size(); ++G) {
      VarId Gen = Main.local(concat("g", G));
      Main.alloc(Gen, GenTypes[G]);
      Main.vcall(VarId::invalid(), Gen, "spawn", {Hub, Registry});
    }
    for (MethodId Scanner : RegistryScanners)
      Main.scall(VarId::invalid(), Scanner, {Registry});
    for (MethodId Drive : UtilDrives)
      Main.scall(VarId::invalid(), Drive, {Hub});
    for (uint32_t M = 0; M < Mods.size(); ++M) {
      VarId Mod = Main.local(concat("m", M));
      Main.alloc(Mod, Mods[M]);
      Main.vcall(VarId::invalid(), Mod, "drive", {});
    }
    if (LeafEntry.isValid()) {
      VarId Seed = Main.local("seed");
      if (Families.empty())
        Main.alloc(Seed, Object);
      else
        Main.alloc(Seed, Families[0].Variants[0]);
      Main.scall(VarId::invalid(), LeafEntry, {Seed});
    }
  }

  const WorkloadProfile &P;
  Rng R;
  ProgramBuilder B;

  TypeId Object;
  TypeId HubType;
  TypeId RegistryType;
  std::vector<MethodId> RegistryScanners;
  std::vector<Family> Families;
  std::vector<TypeId> Containers;
  std::vector<TypeId> Clients;
  std::vector<TypeId> GenTypes;
  std::vector<std::vector<MethodId>> UtilMethods;
  std::vector<MethodId> UtilDrives;
  std::vector<TypeId> Mods;
  MethodId LeafEntry;
};

} // namespace

Program intro::generateWorkload(const WorkloadProfile &Profile) {
  return Generator(Profile).run();
}
