//===- workload/DaCapo.cpp - DaCapo-shaped benchmark profiles -------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/DaCapo.h"

#include <cassert>

using namespace intro;

namespace {

/// A tame profile: moderate breadth, no pathology.  The fig-1-only
/// benchmarks (antlr, lusearch, pmd) are variations of this.
WorkloadProfile tame(std::string Name, uint64_t Seed, uint32_t Scale) {
  WorkloadProfile P;
  P.Name = std::move(Name);
  P.Seed = Seed;
  P.NumFamilies = 8 + Scale * 2;
  P.VariantsPerFamily = 4;
  P.NumContainerClasses = 4 + Scale;
  P.ContainerUses = 40 + Scale * 20;
  P.LeafChainLength = 60 + Scale * 20;
  P.HubFanout = 40 + Scale * 20;
  P.NumGenClasses = 4;
  P.NumClientClasses = 3 + Scale;
  P.ClientAllocSites = 4 + Scale;
  P.SpreadLocalsPerRun = 2;
  P.HelperSitesPerRun = 1;
  P.HelperDepth = 1;
  return P;
}

} // namespace

std::vector<WorkloadProfile> intro::dacapoProfiles() {
  std::vector<WorkloadProfile> Profiles;

  // antlr: small parser-like workload, no pathology.
  Profiles.push_back(tame("antlr", 101, 0));

  // bloat: bytecode-optimizer-shaped -- a large receiver space over fat hub
  // sets makes 2objH painfully slow (but finishing), and a wide utility DAG
  // kills 2callH.
  {
    WorkloadProfile P;
    P.Name = "bloat";
    P.Seed = 102;
    P.NumFamilies = 14;
    P.NumContainerClasses = 8;
    P.ContainerUses = 260;
    P.PopularContainerUses = 320;
    P.LeafChainLength = 900;
    P.HubFanout = 500;
    P.NumGenClasses = 10;
    P.NumClientClasses = 20;
    P.ClientAllocSites = 16;
    P.SpreadLocalsPerRun = 3;
    P.HelperSitesPerRun = 2;
    P.HelperDepth = 2;
    P.PutClientsInHub = true;
    P.PutHelpersInHub = true;
    P.UtilLevels = 4;
    P.UtilMethodsPerLevel = 5;
    P.UtilFanout = 22;
    P.UtilDriveMethods = 3;
    P.UtilEntrySitesPerDrive = 10;
    P.HelperSpreadLocals = 6;
    P.DecoyVariants = 110;
    Profiles.push_back(std::move(P));
  }

  // chart: everything completes; mild pathology only.
  {
    WorkloadProfile P;
    P.Name = "chart";
    P.Seed = 103;
    P.NumFamilies = 12;
    P.NumContainerClasses = 7;
    P.ContainerUses = 250;
    P.PopularContainerUses = 300;
    P.LeafChainLength = 800;
    P.HubFanout = 200;
    P.NumGenClasses = 8;
    P.NumClientClasses = 8;
    P.ClientAllocSites = 12;
    P.SpreadLocalsPerRun = 2;
    P.HelperSitesPerRun = 2;
    P.HelperDepth = 1;
    P.PutClientsInHub = true;
    P.UtilLevels = 3;
    P.UtilMethodsPerLevel = 4;
    P.UtilFanout = 6;
    P.UtilDriveMethods = 2;
    P.UtilEntrySitesPerDrive = 6;
    P.DecoyVariants = 90;
    Profiles.push_back(std::move(P));
  }

  // eclipse: like chart, somewhat larger, still completing everywhere.
  {
    WorkloadProfile P;
    P.Name = "eclipse";
    P.Seed = 104;
    P.NumFamilies = 14;
    P.NumContainerClasses = 8;
    P.ContainerUses = 280;
    P.PopularContainerUses = 320;
    P.LeafChainLength = 900;
    P.HubFanout = 250;
    P.NumGenClasses = 10;
    P.NumClientClasses = 10;
    P.ClientAllocSites = 14;
    P.SpreadLocalsPerRun = 2;
    P.HelperSitesPerRun = 2;
    P.HelperDepth = 1;
    P.PutClientsInHub = true;
    P.UtilLevels = 3;
    P.UtilMethodsPerLevel = 4;
    P.UtilFanout = 7;
    P.UtilDriveMethods = 2;
    P.UtilEntrySitesPerDrive = 6;
    P.DecoyVariants = 110;
    Profiles.push_back(std::move(P));
  }

  // hsqldb: database-shaped -- iterator/helper objects allocated at many
  // sites per client run multiply 2objH contexts (tail-repairable: IntroB
  // recovers it by coarsening the helper objects), and the utility DAG
  // kills 2callH.
  {
    WorkloadProfile P;
    P.Name = "hsqldb";
    P.Seed = 105;
    P.NumFamilies = 12;
    P.NumContainerClasses = 7;
    P.ContainerUses = 240;
    P.PopularContainerUses = 300;
    P.LeafChainLength = 900;
    P.HubFanout = 700;
    P.NumGenClasses = 8;
    P.NumClientClasses = 10;
    P.ClientAllocSites = 60;
    P.SpreadLocalsPerRun = 2;
    P.HelperSitesPerRun = 8;
    P.HelperDepth = 1;
    P.PutClientsInHub = true;
    P.PutHelpersInHub = true; // <- IntroB's object rule catches the helpers.
    P.UtilLevels = 4;
    P.UtilMethodsPerLevel = 5;
    P.UtilFanout = 20;
    P.UtilDriveMethods = 3;
    P.UtilEntrySitesPerDrive = 10;
    P.HelperSpreadLocals = 9;
    P.DecoyVariants = 100;
    Profiles.push_back(std::move(P));
  }

  // jython: interpreter-shaped -- the worst of all worlds.  A huge receiver
  // space whose cost lives in the context *head* (so IntroB cannot repair
  // 2objH), allocation sites spread over very many generated classes (the
  // 2typeH killer), and a utility DAG whose methods stay under IntroB's
  // volume threshold (so IntroB cannot repair 2callH either).
  {
    WorkloadProfile P;
    P.Name = "jython";
    P.Seed = 106;
    P.NumFamilies = 12;
    P.NumContainerClasses = 7;
    P.ContainerUses = 280;
    P.PopularContainerUses = 300;
    P.LeafChainLength = 1400;
    P.HubFanout = 700;
    P.NumGenClasses = 120;
    P.NumClientClasses = 40;
    P.ClientAllocSites = 15;
    P.SpreadLocalsPerRun = 15;
    P.HelperSitesPerRun = 70;
    P.HelperDepth = 1;
    P.PutClientsInHub = false;
    P.PutHelpersInHub = false;
    P.UtilLevels = 4;
    P.UtilMethodsPerLevel = 5;
    P.UtilFanout = 10; // Low volume per util: under IntroB's P threshold.
    P.UtilDriveMethods = 6;
    P.UtilEntrySitesPerDrive = 12;
    P.HelperSpreadLocals = 6;
    P.UseRegistry = false;
    P.DecoyVariants = 170;
    Profiles.push_back(std::move(P));
  }

  // lusearch: small search workload, no pathology.
  Profiles.push_back(tame("lusearch", 107, 1));

  // pmd: small analyzer workload, slight pathology, still tame.
  {
    WorkloadProfile P = tame("pmd", 108, 2);
    P.UtilLevels = 2;
    P.UtilMethodsPerLevel = 3;
    P.UtilFanout = 4;
    P.UtilDriveMethods = 1;
    P.UtilEntrySitesPerDrive = 4;
    Profiles.push_back(std::move(P));
  }

  // xalan: XSLT-shaped -- moderate receiver space (2objH completes, slowly)
  // and the widest utility DAG in the suite (2callH explodes).
  {
    WorkloadProfile P;
    P.Name = "xalan";
    P.Seed = 109;
    P.NumFamilies = 12;
    P.NumContainerClasses = 7;
    P.ContainerUses = 250;
    P.PopularContainerUses = 300;
    P.LeafChainLength = 900;
    P.HubFanout = 400;
    P.NumGenClasses = 12;
    P.NumClientClasses = 15;
    P.ClientAllocSites = 20;
    P.SpreadLocalsPerRun = 3;
    P.HelperSitesPerRun = 2;
    P.HelperDepth = 2;
    P.PutClientsInHub = true;
    P.PutHelpersInHub = true;
    P.UtilLevels = 4;
    P.UtilMethodsPerLevel = 5;
    P.UtilFanout = 24;
    P.UtilDriveMethods = 3;
    P.UtilEntrySitesPerDrive = 10;
    P.HelperSpreadLocals = 6;
    P.DecoyVariants = 100;
    Profiles.push_back(std::move(P));
  }

  return Profiles;
}

std::vector<WorkloadProfile> intro::scalabilitySubjects() {
  std::vector<WorkloadProfile> Subjects;
  for (const WorkloadProfile &P : dacapoProfiles())
    if (P.Name == "bloat" || P.Name == "chart" || P.Name == "eclipse" ||
        P.Name == "hsqldb" || P.Name == "jython" || P.Name == "xalan")
      Subjects.push_back(P);
  return Subjects;
}

WorkloadProfile intro::dacapoProfile(std::string_view Name) {
  for (WorkloadProfile &P : dacapoProfiles())
    if (P.Name == Name)
      return P;
  assert(false && "unknown benchmark profile name");
  return WorkloadProfile();
}
