//===- workload/Random.cpp - Random programs for property tests -----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Random.h"

#include "ir/ProgramBuilder.h"
#include "support/Rng.h"

#include <string>
#include <vector>

using namespace intro;

namespace {

class RandomGen {
public:
  RandomGen(uint64_t Seed, const RandomProgramOptions &Options)
      : R(Seed), Opt(Options) {}

  Program run() {
    makeClasses();
    declareMethods();
    fillBodies();
    makeMain();
    return B.take();
  }

private:
  void makeClasses() {
    Types.push_back(B.cls("Object"));
    for (uint32_t Index = 0; Index < Opt.NumClasses; ++Index) {
      // Random superclass among the already-created types: mixes deep and
      // wide hierarchies.
      TypeId Super = Types[R.below(static_cast<uint32_t>(Types.size()))];
      Types.push_back(B.cls("C" + std::to_string(Index), Super));
    }
    // Fields: zero to two per class (root included).
    for (TypeId Type : Types)
      for (uint32_t Index = 0; Index < R.below(3); ++Index)
        Fields.push_back(
            B.field(Type, "f" + std::to_string(Fields.size())));
  }

  void declareMethods() {
    // Virtual methods: each signature is implemented by a random subset of
    // classes (overriding along whatever hierarchy resulted).
    for (uint32_t Sig = 0; Sig < Opt.NumVirtualSigs; ++Sig) {
      std::string Name = "m" + std::to_string(Sig);
      uint32_t Arity = R.below(3);
      for (TypeId Type : Types) {
        if (!R.chance(500))
          continue;
        Bodies.push_back(B.method(Type, Name, Arity, /*IsStatic=*/false));
      }
    }
    for (uint32_t Index = 0; Index < Opt.NumStaticMethods; ++Index)
      Bodies.push_back(B.method(Types[R.below(
                                    static_cast<uint32_t>(Types.size()))],
                                "s" + std::to_string(Index), R.below(3),
                                /*IsStatic=*/true));
  }

  VarId randomVar(MethodBuilder &MB, std::vector<VarId> &Pool) {
    if (Pool.empty() || (Pool.size() < Opt.LocalsPerMethod && R.chance(300)))
      Pool.push_back(MB.local("v" + std::to_string(Pool.size())));
    return Pool[R.below(static_cast<uint32_t>(Pool.size()))];
  }

  TypeId randomType() {
    return Types[R.below(static_cast<uint32_t>(Types.size()))];
  }

  void emitRandomBody(MethodBuilder MB, uint32_t Length,
                      std::vector<VarId> Pool = {}) {
    // Seed the pool with this/formals so they participate in dataflow.
    const MethodInfo &Info = B.current().method(MB.id());
    if (!Info.IsStatic)
      Pool.push_back(Info.This);
    for (VarId Formal : Info.Formals)
      Pool.push_back(Formal);

    for (uint32_t Index = 0; Index < Length; ++Index) {
      switch (R.below(11)) {
      case 0:
      case 1:
        MB.alloc(randomVar(MB, Pool), randomType());
        break;
      case 2:
        MB.move(randomVar(MB, Pool), randomVar(MB, Pool));
        break;
      case 3:
        MB.cast(randomVar(MB, Pool), randomVar(MB, Pool), randomType());
        break;
      case 4:
        if (!Fields.empty())
          MB.load(randomVar(MB, Pool), randomVar(MB, Pool),
                  Fields[R.below(static_cast<uint32_t>(Fields.size()))]);
        break;
      case 5:
        if (!Fields.empty())
          MB.store(randomVar(MB, Pool),
                   Fields[R.below(static_cast<uint32_t>(Fields.size()))],
                   randomVar(MB, Pool));
        break;
      case 6: {
        uint32_t Sig = R.below(Opt.NumVirtualSigs);
        uint32_t Arity = SigArity(Sig);
        std::vector<VarId> Args;
        for (uint32_t Arg = 0; Arg < Arity; ++Arg)
          Args.push_back(randomVar(MB, Pool));
        VarId Result =
            R.chance(600) ? randomVar(MB, Pool) : VarId::invalid();
        SiteId Site = MB.vcall(Result, randomVar(MB, Pool),
                               "m" + std::to_string(Sig), Args);
        if (R.chance(300))
          MB.attachCatch(Site, randomType(), randomVar(MB, Pool));
        break;
      }
      case 7: {
        if (Statics.empty())
          break;
        MethodId Target =
            Statics[R.below(static_cast<uint32_t>(Statics.size()))];
        const MethodInfo &TargetInfo = B.current().method(Target);
        std::vector<VarId> Args;
        for (size_t Arg = 0; Arg < TargetInfo.Formals.size(); ++Arg)
          Args.push_back(randomVar(MB, Pool));
        VarId Result =
            R.chance(600) ? randomVar(MB, Pool) : VarId::invalid();
        SiteId Site = MB.scall(Result, Target, Args);
        if (R.chance(300))
          MB.attachCatch(Site, randomType(), randomVar(MB, Pool));
        break;
      }
      case 8:
        if (!Fields.empty() && R.chance(700))
          MB.sload(randomVar(MB, Pool),
                   Fields[R.below(static_cast<uint32_t>(Fields.size()))]);
        break;
      case 9:
        if (!Fields.empty() && R.chance(700))
          MB.sstore(Fields[R.below(static_cast<uint32_t>(Fields.size()))],
                    randomVar(MB, Pool));
        break;
      case 10:
        if (R.chance(400))
          MB.throwStmt(randomVar(MB, Pool));
        break;
      }
    }
    // Half of the methods return something.
    if (R.chance(500) && !Pool.empty())
      MB.move(MB.returnVar(),
              Pool[R.below(static_cast<uint32_t>(Pool.size()))]);
  }

  uint32_t SigArity(uint32_t Sig) {
    // Look up the arity the first declaration fixed for this name; default
    // 0 if no class implements it (the call will just never dispatch).
    for (MethodBuilder &MB : Bodies) {
      const MethodInfo &Info = B.current().method(MB.id());
      if (!Info.IsStatic &&
          B.current().methodName(MB.id()) == "m" + std::to_string(Sig))
        return static_cast<uint32_t>(Info.Formals.size());
    }
    return 0;
  }

  void fillBodies() {
    for (MethodBuilder &MB : Bodies) {
      const MethodInfo &Info = B.current().method(MB.id());
      if (Info.IsStatic)
        Statics.push_back(MB.id());
    }
    for (MethodBuilder &MB : Bodies)
      emitRandomBody(MB, 1 + R.below(Opt.InstructionsPerBody));
  }

  void makeMain() {
    MethodBuilder Main =
        B.method(Types[0], "main", 0, /*IsStatic=*/true);
    B.entry(Main.id());
    std::vector<VarId> Pool;
    // Guarantee some allocations so dispatch has receivers.
    for (uint32_t Index = 0; Index < 3 + R.below(4); ++Index) {
      VarId Var = Main.local("r" + std::to_string(Index));
      Main.alloc(Var, randomType());
      Pool.push_back(Var);
    }
    emitRandomBody(Main, 4 + R.below(Opt.InstructionsPerBody), Pool);
  }

  Rng R;
  const RandomProgramOptions &Opt;
  ProgramBuilder B;
  std::vector<TypeId> Types;
  std::vector<FieldId> Fields;
  std::vector<MethodBuilder> Bodies;
  std::vector<MethodId> Statics;
};

} // namespace

Program intro::generateRandomProgram(uint64_t Seed,
                                     const RandomProgramOptions &Options) {
  return RandomGen(Seed, Options).run();
}
