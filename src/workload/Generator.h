//===- workload/Generator.h - Synthetic benchmark programs ------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic object-oriented programs that reproduce the
/// scalability structure of the paper's DaCapo benchmarks (which we cannot
/// consume without a Java bytecode frontend; see DESIGN.md).
///
/// The generator plants four independent structural ingredients whose
/// intensities are per-profile knobs:
///
///  - *Breadth*: class-hierarchy families, container classes with
///    set/get methods, cast-heavy container-use snippets, and leaf call
///    chains.  This is the well-behaved code where context-sensitivity
///    earns its precision (casts proved safe, call sites devirtualized).
///
///  - *Hub pathology* (`HubFanout`): a registry object whose single slot
///    conflates many payload allocation sites.  Its fat points-to sets get
///    multiplied by every additional context, the exact failure mode the
///    paper describes ("c copies of n points-to facts each").
///
///  - *Receiver-space pathology* (`NumClientClasses` x `ClientAllocSites`,
///    `HelperDepth`): many receiver allocation sites for methods that
///    handle hub payloads -- the context-count multiplier for
///    object-sensitivity.
///
///  - *Allocator-class diversity* (`NumGenClasses`): hub/client allocations
///    are hosted in methods of distinct generator classes, which is what
///    multiplies contexts under *type*-sensitivity (jython-style).
///
///  - *Utility-DAG pathology* (`UtilLevels` x `UtilMethodsPerLevel` x
///    `UtilFanout`): layered static utility methods with many cross-level
///    call sites, the context-count multiplier for call-site-sensitivity.
///
/// Everything is deterministic in the profile's seed.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOAD_GENERATOR_H
#define WORKLOAD_GENERATOR_H

#include "ir/Program.h"

#include <string>

namespace intro {

/// Size and pathology knobs for one synthetic benchmark.
struct WorkloadProfile {
  std::string Name = "custom";
  uint64_t Seed = 1;

  // --- Breadth (well-behaved code) --------------------------------------
  uint32_t NumFamilies = 10;        ///< Independent class hierarchies.
  uint32_t VariantsPerFamily = 4;   ///< Subclasses per hierarchy.
  uint32_t NumContainerClasses = 6; ///< Box-like classes with set/get.
  uint32_t ContainerUses = 60;      ///< Container-use snippets (with casts).
  uint32_t SnippetsPerModClass = 5; ///< Snippets hosted per module class.
                                    ///< Type-sensitivity distinguishes
                                    ///< container instances *across* module
                                    ///< classes but not within one, so this
                                    ///< knob sets 2typeH's precision between
                                    ///< insens (large) and 2objH (1).
  uint32_t PopularContainerUses = 0; ///< Extra snippets all sharing container
                                     ///< class 0 ("the popular container").
                                     ///< Its instances' field sets exceed
                                     ///< Heuristic A's M threshold, so IntroA
                                     ///< sacrifices these casts while IntroB
                                     ///< (volume under P) keeps them.
  uint32_t DecoyVariants = 0;       ///< Family variants that are stored into
                                    ///< the popular container but never
                                    ///< legitimately retrieved: their work()
                                    ///< methods are reachable only under
                                    ///< imprecise (conflating) analyses,
                                    ///< giving the reachable-methods metric
                                    ///< its paper-style spread.
  uint32_t LeafChainLength = 100;   ///< Static leaf-method chain (breadth).

  // --- Hub pathology ------------------------------------------------------
  uint32_t HubFanout = 0;        ///< Payload allocation sites fed to the hub.
  uint32_t NumGenClasses = 4;    ///< Classes hosting hub/client allocations
                                 ///< (the type-sensitivity multiplier).
  uint32_t NumClientClasses = 0; ///< Classes whose methods drain the hub.
  uint32_t ClientAllocSites = 0; ///< Receiver allocation sites per client
                                 ///< class (the object-sensitivity head
                                 ///< multiplier).
  uint32_t SpreadLocalsPerRun = 2; ///< Extra hub-holding locals in run().
  uint32_t HelperSitesPerRun = 1;  ///< Helper allocation sites per run().
  uint32_t HelperDepth = 0;        ///< Helper chain depth below run().
  uint32_t HelperSpreadLocals = 0; ///< Extra payload-holding locals in
                                   ///< proc().  Pushes proc's points-to
                                   ///< volume over Heuristic B's P threshold
                                   ///< so IntroB can repair helper-driven
                                   ///< explosions; keep 0 to defeat IntroB.
  bool PutClientsInHub = false;    ///< Clients become hub payloads too
                                   ///< (raises their pointed-by metrics).
  bool PutHelpersInHub = false;    ///< Helpers become hub payloads too.
  bool UseRegistry = false;        ///< Register clients in a *separate*
                                   ///< registry object instead of the hub:
                                   ///< raises their pointed-by metrics
                                   ///< without inflating the hub sets.
  uint32_t RegistryScanLocals = 15; ///< Locals per registry scanner method.
  uint32_t RegistryScanMethods = 2; ///< Static registry scanner methods.

  // --- Call-site pathology -------------------------------------------------
  uint32_t UtilLevels = 0;           ///< Depth of the static utility DAG.
  uint32_t UtilMethodsPerLevel = 0;  ///< Width of each DAG level.
  uint32_t UtilFanout = 0;           ///< Next-level call sites per method.
  uint32_t UtilDriveMethods = 0;     ///< Static drivers feeding the DAG.
  uint32_t UtilEntrySitesPerDrive = 0; ///< DAG entry calls per driver.
};

/// Generates the program described by \p Profile.  The result is finalized
/// and structurally valid (checked by tests against ir/Validator.h).
Program generateWorkload(const WorkloadProfile &Profile);

} // namespace intro

#endif // WORKLOAD_GENERATOR_H
