//===- analysis/PrecisionMetrics.cpp - Paper precision clients ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/PrecisionMetrics.h"

#include "analysis/Result.h"
#include "ir/Program.h"

using namespace intro;

PrecisionMetrics intro::computePrecision(const Program &Prog,
                                         const PointsToResult &Result) {
  PrecisionMetrics Metrics;

  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    MethodId Method(MethodIndex);
    if (!Result.isReachable(Method))
      continue;
    ++Metrics.ReachableMethods;

    for (const Instruction &Instr : Prog.method(Method).Body) {
      if (Instr.Kind != InstrKind::Cast)
        continue;
      ++Metrics.ReachableCasts;
      // A cast may fail if the source can hold an object whose dynamic type
      // is not a subtype of the cast's target type.
      for (uint32_t HeapRaw : Result.pointsTo(Instr.From)) {
        if (!Prog.isSubtypeOf(Prog.heap(HeapId(HeapRaw)).Type,
                              Instr.CastType)) {
          ++Metrics.CastsThatMayFail;
          break;
        }
      }
    }
  }

  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    SiteId Site(SiteIndex);
    const SiteInfo &Info = Prog.site(Site);
    if (Info.IsStatic || !Result.isReachable(Info.InMethod))
      continue;
    // A virtual site is counted as reachable once the analysis resolved at
    // least one target for it (a receiver object reached the site).
    size_t NumTargets = Result.callTargets(Site).size();
    if (NumTargets == 0)
      continue;
    ++Metrics.ReachableVirtualCallSites;
    if (NumTargets >= 2)
      ++Metrics.PolymorphicVirtualCallSites;
  }

  return Metrics;
}
