//===- analysis/PrecisionMetrics.h - Paper precision clients ----*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three precision metrics reported in the paper's Figures 5-7 (lower
/// is better for all three):
///   - virtual call sites that cannot be devirtualized (polymorphic sites),
///   - reachable methods,
///   - reachable cast instructions that may fail.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_PRECISIONMETRICS_H
#define ANALYSIS_PRECISIONMETRICS_H

#include <cstdint>

namespace intro {

class PointsToResult;
class Program;

/// The paper's three precision metrics for one analysis run.
struct PrecisionMetrics {
  /// Reachable virtual call sites with two or more resolved targets.
  uint64_t PolymorphicVirtualCallSites = 0;
  /// Methods reachable in at least one context.
  uint64_t ReachableMethods = 0;
  /// Cast instructions, in reachable methods, whose source may point to an
  /// object that is not a subtype of the cast's target type.
  uint64_t CastsThatMayFail = 0;
  /// Total reachable virtual call sites (denominator for context).
  uint64_t ReachableVirtualCallSites = 0;
  /// Total reachable cast instructions (denominator for context).
  uint64_t ReachableCasts = 0;
};

/// Computes the precision metrics of \p Result for \p Prog.
PrecisionMetrics computePrecision(const Program &Prog,
                                  const PointsToResult &Result);

} // namespace intro

#endif // ANALYSIS_PRECISIONMETRICS_H
