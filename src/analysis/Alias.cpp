//===- analysis/Alias.cpp - May-alias queries -----------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Alias.h"

#include "analysis/Result.h"
#include "ir/Program.h"

#include <algorithm>

using namespace intro;

namespace {

/// \returns true if the two sorted sets intersect.
bool intersects(const SortedIdSet &A, const SortedIdSet &B) {
  auto ItA = A.begin();
  auto ItB = B.begin();
  while (ItA != A.end() && ItB != B.end()) {
    if (*ItA == *ItB)
      return true;
    if (*ItA < *ItB)
      ++ItA;
    else
      ++ItB;
  }
  return false;
}

} // namespace

bool intro::mayAlias(const PointsToResult &Result, VarId A, VarId B) {
  return intersects(Result.pointsTo(A), Result.pointsTo(B));
}

uint64_t intro::countIntraMethodAliasPairs(const Program &Prog,
                                           const PointsToResult &Result) {
  uint64_t Pairs = 0;
  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    MethodId Method(MethodIndex);
    if (!Result.isReachable(Method))
      continue;
    const auto &Locals = Prog.method(Method).Locals;
    for (size_t I = 0; I < Locals.size(); ++I) {
      if (Result.pointsTo(Locals[I]).empty())
        continue;
      for (size_t J = I + 1; J < Locals.size(); ++J)
        if (mayAlias(Result, Locals[I], Locals[J]))
          ++Pairs;
    }
  }
  return Pairs;
}
