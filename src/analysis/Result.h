//===- analysis/Result.h - Points-to analysis results -----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of one solver run: status (completed or budget-exhausted, the
/// moral equivalent of the paper's 90-minute timeout), size statistics, the
/// context-insensitive projections every client consumes, and — optionally —
/// the full context-sensitive tuple dump used by the Datalog oracle tests.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_RESULT_H
#define ANALYSIS_RESULT_H

#include "support/Ids.h"
#include "support/SetUtils.h"

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace intro {

/// Why the solver stopped.
enum class SolveStatus : uint8_t {
  Completed,            ///< Fixpoint reached.
  TupleBudgetExceeded,  ///< Relation sizes blew past the budget ("timeout").
  TimeBudgetExceeded,   ///< Wall clock blew past the budget ("timeout").
  MemoryBudgetExceeded, ///< Approximate solver footprint blew past MaxBytes.
  Cancelled,            ///< Aborted via a CancellationToken, not a budget.
};

/// \returns true if \p Status denotes a completed (non-timeout) run.
inline bool isCompleted(SolveStatus Status) {
  return Status == SolveStatus::Completed;
}

/// \returns a stable human-readable name for \p Status.
inline const char *statusName(SolveStatus Status) {
  switch (Status) {
  case SolveStatus::Completed:
    return "Completed";
  case SolveStatus::TupleBudgetExceeded:
    return "TupleBudgetExceeded";
  case SolveStatus::TimeBudgetExceeded:
    return "TimeBudgetExceeded";
  case SolveStatus::MemoryBudgetExceeded:
    return "MemoryBudgetExceeded";
  case SolveStatus::Cancelled:
    return "Cancelled";
  }
  return "?";
}

/// Inverse of statusName: \returns true and stores into \p Status when
/// \p Name matches a status name exactly.  Used when decoding reports.
inline bool statusFromName(std::string_view Name, SolveStatus &Status) {
  static constexpr SolveStatus All[] = {
      SolveStatus::Completed, SolveStatus::TupleBudgetExceeded,
      SolveStatus::TimeBudgetExceeded, SolveStatus::MemoryBudgetExceeded,
      SolveStatus::Cancelled};
  for (SolveStatus Candidate : All)
    if (Name == statusName(Candidate)) {
      Status = Candidate;
      return true;
    }
  return false;
}

/// Resource budget for a solver run.  Exceeding any limit aborts the run
/// with the matching exhaustion status; the paper's blow-ups are detected
/// primarily via the (machine-independent) tuple limit.
struct SolveBudget {
  uint64_t MaxTuples = 100'000'000; ///< VarPointsTo + FldPointsTo tuples.
  double MaxSeconds = 300.0;        ///< Wall-clock limit.
  /// Approximate solver heap footprint limit in bytes (nodes, points-to
  /// sets, edges, and index entries; book-kept incrementally, not measured
  /// from the allocator).  0 disables the limit.
  uint64_t MaxBytes = 0;
};

/// Size/performance counters of a solver run.
struct SolverStats {
  double Seconds = 0.0;
  uint64_t VarPointsToTuples = 0;   ///< Context-sensitive |VARPOINTSTO|.
  uint64_t FieldPointsToTuples = 0; ///< Context-sensitive |FLDPOINTSTO|.
  uint64_t ThrowPointsToTuples = 0; ///< Context-sensitive |THROWPOINTSTO|.
  uint64_t StaticFieldTuples = 0;   ///< |SFLDPOINTSTO|.
  uint64_t NumVarNodes = 0;         ///< Distinct (var, ctx) pairs.
  uint64_t NumFieldNodes = 0;       ///< Distinct (object, field) pairs.
  uint64_t NumObjects = 0;          ///< Distinct (heap, hctx) pairs.
  uint64_t NumContexts = 0;         ///< |C| materialized.
  uint64_t NumHeapContexts = 0;     ///< |HC| materialized.
  uint64_t ReachableMethodContexts = 0; ///< |REACHABLE| (meth, ctx) pairs.
  uint64_t CallGraphEdges = 0;      ///< Insensitive (site, target) edges.
  uint64_t WorklistPops = 0;        ///< Solver iterations.
  uint64_t ApproxBytes = 0;         ///< Book-kept solver footprint estimate.

  // In-memory-only propagation diagnostics.  Deliberately EXCLUDED from the
  // stats JSON (Reports.cpp) and the Pass-A result-cache entry encoding
  // (ResultCache.cpp): they describe how the fixpoint was computed, not what
  // it is, and serializing them would invalidate cache entries written by
  // earlier builds and perturb byte-identical report sections.  On a
  // cache-warm run they read as zero.
  uint64_t BatchUnions = 0;    ///< Whole-delta set unions (batched edges).
  uint64_t ElementProbes = 0;  ///< Single-element insert attempts.
  uint64_t DensePointsToSets = 0; ///< Nodes whose Pts ended bitmap-backed.
};

/// The result of a points-to analysis run.
class PointsToResult {
public:
  SolveStatus Status = SolveStatus::Completed;
  SolverStats Stats;
  std::string AnalysisName;

  /// Per-variable points-to set, projected to allocation sites (contexts
  /// collapsed).  Indexed by VarId; values are raw HeapIds.
  std::vector<SortedIdSet> VarHeaps;

  /// Per-(base heap, field) points-to set, contexts collapsed.  Key is
  /// (baseHeap << 32 | field); values are raw HeapIds.
  std::unordered_map<uint64_t, SortedIdSet> FieldHeaps;

  /// Reachability per method (in any context).
  std::vector<bool> MethodReachable;

  /// Per-static-field points-to set, contexts collapsed.  Key is the raw
  /// FieldId; values are raw HeapIds.
  std::unordered_map<uint32_t, SortedIdSet> StaticFieldHeaps;

  /// Per-method escaping-exception set, contexts collapsed.  Indexed by
  /// MethodId; values are raw HeapIds.
  std::vector<SortedIdSet> MethodThrows;

  /// Per-call-site resolved targets (contexts collapsed).  Indexed by
  /// SiteId; values are raw MethodIds.  Static sites have exactly their
  /// fixed target once their caller is reachable.
  std::vector<SortedIdSet> SiteTargets;

  /// Full tuple dumps; populated only when SolverOptions::KeepTuples.
  /// VARPOINTSTO(var, ctx, heap, hctx)
  std::vector<std::array<uint32_t, 4>> VarPointsTo;
  /// FLDPOINTSTO(baseHeap, baseHCtx, fld, heap, hctx)
  std::vector<std::array<uint32_t, 5>> FieldPointsTo;
  /// REACHABLE(meth, ctx)
  std::vector<std::array<uint32_t, 2>> Reachable;
  /// CALLGRAPH(invo, callerCtx, meth, calleeCtx)
  std::vector<std::array<uint32_t, 4>> CallGraph;
  /// THROWPOINTSTO(meth, ctx, heap, hctx)
  std::vector<std::array<uint32_t, 4>> ThrowPointsTo;
  /// SFLDPOINTSTO(fld, heap, hctx)
  std::vector<std::array<uint32_t, 3>> StaticFieldPointsTo;

  /// \returns true if \p Method is reachable in any context.
  bool isReachable(MethodId Method) const {
    return Method.raw() < MethodReachable.size() &&
           MethodReachable[Method.raw()];
  }

  /// \returns the heaps that \p Var may point to (contexts collapsed).
  /// Out-of-range (or invalid) ids yield the shared empty set.
  const SortedIdSet &pointsTo(VarId Var) const {
    return Var.raw() < VarHeaps.size() ? VarHeaps[Var.raw()] : emptySet();
  }

  /// \returns the methods that the call at \p Site may invoke.
  /// Out-of-range (or invalid) ids yield the shared empty set.
  const SortedIdSet &callTargets(SiteId Site) const {
    return Site.raw() < SiteTargets.size() ? SiteTargets[Site.raw()]
                                           : emptySet();
  }

  /// \returns the exception objects escaping \p Method (ctxs collapsed).
  /// Out-of-range (or invalid) ids yield the shared empty set.
  const SortedIdSet &throwsOf(MethodId Method) const {
    return Method.raw() < MethodThrows.size() ? MethodThrows[Method.raw()]
                                              : emptySet();
  }

  /// The shared empty set returned for ids outside the analyzed program.
  /// Deliberately a function-local `static const`: initialization is
  /// guaranteed thread-safe (C++11 magic statics) and the object is
  /// immutable afterwards, so concurrent readers — e.g. the portfolio
  /// engine's racing rungs, or clients querying a result from several
  /// threads — can all hold references to it without synchronization.
  static const SortedIdSet &emptySet() {
    static const SortedIdSet Empty;
    return Empty;
  }

  /// Packs a FieldHeaps key.
  static uint64_t fieldKey(HeapId BaseHeap, FieldId Field) {
    return (static_cast<uint64_t>(BaseHeap.index()) << 32) | Field.index();
  }
};

} // namespace intro

#endif // ANALYSIS_RESULT_H
