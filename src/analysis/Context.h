//===- analysis/Context.h - Interned analysis contexts ----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calling contexts (the paper's set C) and heap contexts (set HC) are
/// tuples of program-element indices: call sites for call-site-sensitivity,
/// allocation sites for object-sensitivity, class types for
/// type-sensitivity.  The empty tuple is the "insensitive" context `*`.
///
/// ContextTable interns both kinds into dense CtxId / HCtxId handles that
/// the solver, the Datalog reference implementation, and the result queries
/// all share.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_CONTEXT_H
#define ANALYSIS_CONTEXT_H

#include "support/Ids.h"
#include "support/TupleInterner.h"

#include <span>

namespace intro {

/// Interns calling contexts and heap contexts.
///
/// Handle 0 of each kind is always the empty tuple, interned eagerly so that
/// `CtxId(0)` / `HCtxId(0)` denote the context-insensitive `*` everywhere.
class ContextTable {
public:
  ContextTable() {
    [[maybe_unused]] uint32_t EmptyCtx = Ctxs.intern({});
    [[maybe_unused]] uint32_t EmptyHCtx = HCtxs.intern({});
    assert(EmptyCtx == 0 && EmptyHCtx == 0 && "empty context must be 0");
  }

  /// The empty calling context `*`.
  CtxId emptyCtx() const { return CtxId(0); }
  /// The empty heap context `*`.
  HCtxId emptyHCtx() const { return HCtxId(0); }

  /// Interns the calling context with the given \p Elements.
  CtxId internCtx(std::span<const uint32_t> Elements) {
    return CtxId(Ctxs.intern(Elements));
  }

  /// Interns the heap context with the given \p Elements.
  HCtxId internHCtx(std::span<const uint32_t> Elements) {
    return HCtxId(HCtxs.intern(Elements));
  }

  /// \returns the elements of calling context \p Ctx.
  std::span<const uint32_t> elements(CtxId Ctx) const {
    return Ctxs.elements(Ctx.index());
  }

  /// \returns the elements of heap context \p HCtx.
  std::span<const uint32_t> elements(HCtxId HCtx) const {
    return HCtxs.elements(HCtx.index());
  }

  /// Number of distinct calling contexts created so far.
  size_t numContexts() const { return Ctxs.size(); }
  /// Number of distinct heap contexts created so far.
  size_t numHeapContexts() const { return HCtxs.size(); }

private:
  TupleInterner Ctxs;
  TupleInterner HCtxs;
};

} // namespace intro

#endif // ANALYSIS_CONTEXT_H
