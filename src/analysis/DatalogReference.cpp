//===- analysis/DatalogReference.cpp - Figure 3 as Datalog ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogReference.h"

#include "datalog/Engine.h"
#include "ir/Facts.h"
#include "ir/Program.h"

#include <algorithm>

using namespace intro;
using datalog::Atom;
using datalog::Engine;
using datalog::FunctorCall;
using datalog::Rule;
using datalog::Term;

namespace {

Term V(uint32_t Number) { return Term::var(Number); }

/// Loads an EDB relation from a vector of fixed-arity tuples.
template <size_t Arity>
void load(Engine &E, uint32_t RelIndex,
          const std::vector<std::array<uint32_t, Arity>> &Tuples) {
  for (const auto &Tuple : Tuples)
    E.relation(RelIndex).insert(std::span<const uint32_t>(Tuple));
}

} // namespace

DatalogReferenceResult intro::runDatalogReference(
    const Program &Prog, const ContextPolicy &Coarse,
    const ContextPolicy &Refined, const RefinementExceptions &Exceptions,
    ContextTable &Table, const DatalogReferenceOptions &Options) {
  ProgramFacts Facts = extractFacts(Prog);
  Engine E;

  // --- Relations (Figure 2) -----------------------------------------------
  uint32_t Alloc = E.addRelation("ALLOC", 3);
  uint32_t Move = E.addRelation("MOVE", 2);
  uint32_t Load = E.addRelation("LOAD", 3);
  uint32_t Store = E.addRelation("STORE", 3);
  uint32_t VCall = E.addRelation("VCALL", 4);
  uint32_t SCall = E.addRelation("SCALL", 3);
  uint32_t FormalArg = E.addRelation("FORMALARG", 3);
  uint32_t ActualArg = E.addRelation("ACTUALARG", 3);
  uint32_t FormalReturn = E.addRelation("FORMALRETURN", 2);
  uint32_t ActualReturn = E.addRelation("ACTUALRETURN", 2);
  uint32_t ThisVar = E.addRelation("THISVAR", 2);
  uint32_t HeapType = E.addRelation("HEAPTYPE", 2);
  uint32_t Lookup = E.addRelation("LOOKUP", 3);
  uint32_t Cast = E.addRelation("CAST", 3);
  uint32_t Subtype = E.addRelation("SUBTYPE", 2);
  uint32_t SLoad = E.addRelation("SLOAD", 3);
  uint32_t SStore = E.addRelation("SSTORE", 2);
  uint32_t Throw = E.addRelation("THROW", 2);
  uint32_t SiteInMethod = E.addRelation("SITEINMETHOD", 2);
  uint32_t Catch = E.addRelation("CATCH", 3);
  uint32_t NoCatch = E.addRelation("NOCATCH", 1);
  // Complement-form refinement filters (footnote 4): the coarse rules match
  // these positively, the refined rules negate them.
  uint32_t NoRefineObj = E.addRelation("NOREFINEOBJECT", 1);
  uint32_t NoRefineSite = E.addRelation("NOREFINESITE", 2);
  uint32_t InitialReachable = E.addRelation("INITIALREACHABLE", 1);

  uint32_t VarPointsTo = E.addRelation("VARPOINTSTO", 4);
  uint32_t CallGraph = E.addRelation("CALLGRAPH", 4);
  uint32_t FldPointsTo = E.addRelation("FLDPOINTSTO", 5);
  uint32_t InterProcAssign = E.addRelation("INTERPROCASSIGN", 4);
  uint32_t Reachable = E.addRelation("REACHABLE", 2);
  uint32_t SFldPointsTo = E.addRelation("SFLDPOINTSTO", 3);
  uint32_t ThrowPointsTo = E.addRelation("THROWPOINTSTO", 4);

  load(E, Alloc, Facts.Alloc);
  load(E, Move, Facts.Move);
  if (Options.FilterCasts) {
    load(E, Cast, Facts.Cast);
    load(E, Subtype, Facts.Subtype);
  } else {
    // The paper's model: a cast flows like a move.
    for (const auto &CastTuple : Facts.Cast)
      E.relation(Move).insert(
          std::array<uint32_t, 2>{CastTuple[0], CastTuple[1]});
  }
  load(E, Load, Facts.Load);
  load(E, Store, Facts.Store);
  load(E, VCall, Facts.VCall);
  load(E, SCall, Facts.SCall);
  load(E, FormalArg, Facts.FormalArg);
  load(E, ActualArg, Facts.ActualArg);
  load(E, FormalReturn, Facts.FormalReturn);
  load(E, ActualReturn, Facts.ActualReturn);
  load(E, ThisVar, Facts.ThisVar);
  load(E, HeapType, Facts.HeapType);
  load(E, Lookup, Facts.Lookup);
  load(E, SLoad, Facts.SLoad);
  load(E, SStore, Facts.SStore);
  load(E, Throw, Facts.Throw);
  load(E, SiteInMethod, Facts.SiteInMethod);
  load(E, Catch, Facts.Catch);
  if (Facts.Throw.size() || Facts.Catch.size())
    load(E, Subtype, Facts.Subtype); // Needed by the catch rules too.
  for (uint32_t SiteRaw : Facts.NoCatch)
    E.relation(NoCatch).insert(std::array<uint32_t, 1>{SiteRaw});
  for (uint32_t Method : Facts.EntryMethods)
    E.relation(InitialReachable).insert(std::array<uint32_t, 1>{Method});
  for (uint32_t HeapRaw : Exceptions.NoRefineHeaps)
    E.relation(NoRefineObj).insert(std::array<uint32_t, 1>{HeapRaw});
  for (uint64_t Packed : Exceptions.NoRefineSites)
    E.relation(NoRefineSite)
        .insert(std::array<uint32_t, 2>{static_cast<uint32_t>(Packed >> 32),
                                        static_cast<uint32_t>(Packed)});

  // --- Context-constructor functors (Figure 2, bottom) --------------------
  auto RecordFn = [&Table](const ContextPolicy &Policy) {
    return [&Policy, &Table](std::span<const uint32_t> Args) {
      return Policy.record(HeapId(Args[0]), CtxId(Args[1]), Table).index();
    };
  };
  auto MergeFn = [&Table](const ContextPolicy &Policy) {
    // merge(heap, hctx, invo, toMeth, callerCtx)
    return [&Policy, &Table](std::span<const uint32_t> Args) {
      return Policy
          .merge(HeapId(Args[0]), HCtxId(Args[1]), SiteId(Args[2]),
                 MethodId(Args[3]), CtxId(Args[4]), Table)
          .index();
    };
  };
  auto MergeStaticFn = [&Table](const ContextPolicy &Policy) {
    // mergeStatic(invo, meth, callerCtx)
    return [&Policy, &Table](std::span<const uint32_t> Args) {
      return Policy
          .mergeStatic(SiteId(Args[0]), MethodId(Args[1]), CtxId(Args[2]),
                       Table)
          .index();
    };
  };
  uint32_t Record = E.addFunctor(RecordFn(Coarse));
  uint32_t RecordRefined = E.addFunctor(RecordFn(Refined));
  uint32_t Merge = E.addFunctor(MergeFn(Coarse));
  uint32_t MergeRefined = E.addFunctor(MergeFn(Refined));
  uint32_t MergeStatic = E.addFunctor(MergeStaticFn(Coarse));
  uint32_t MergeStaticRefined = E.addFunctor(MergeStaticFn(Refined));

  // --- Rules (Figure 3) ----------------------------------------------------

  // INTERPROCASSIGN(to, calleeCtx, from, callerCtx) <-
  //   CALLGRAPH(invo, callerCtx, meth, calleeCtx),
  //   FORMALARG(meth, i, to), ACTUALARG(invo, i, from).
  {
    enum { Invo, CallerCtx, Meth, CalleeCtx, I, To, From };
    Rule R;
    R.Body = {Atom{CallGraph, {V(Invo), V(CallerCtx), V(Meth), V(CalleeCtx)}},
              Atom{FormalArg, {V(Meth), V(I), V(To)}},
              Atom{ActualArg, {V(Invo), V(I), V(From)}}};
    R.Heads = {
        Atom{InterProcAssign, {V(To), V(CalleeCtx), V(From), V(CallerCtx)}}};
    E.addRule(std::move(R));
  }

  // INTERPROCASSIGN(to, callerCtx, from, calleeCtx) <-
  //   CALLGRAPH(invo, callerCtx, meth, calleeCtx),
  //   FORMALRETURN(meth, from), ACTUALRETURN(invo, to).
  {
    enum { Invo, CallerCtx, Meth, CalleeCtx, From, To };
    Rule R;
    R.Body = {Atom{CallGraph, {V(Invo), V(CallerCtx), V(Meth), V(CalleeCtx)}},
              Atom{FormalReturn, {V(Meth), V(From)}},
              Atom{ActualReturn, {V(Invo), V(To)}}};
    R.Heads = {
        Atom{InterProcAssign, {V(To), V(CallerCtx), V(From), V(CalleeCtx)}}};
    E.addRule(std::move(R));
  }

  // RECORD(heap, ctx) = hctx, VARPOINTSTO(var, ctx, heap, hctx) <-
  //   REACHABLE(meth, ctx), ALLOC(var, heap, meth), !OBJECTTOREFINE(heap).
  // (in complement form: the coarse rule requires NOREFINEOBJECT(heap), the
  //  refined duplicate negates it)
  for (bool IsRefined : {false, true}) {
    enum { Meth, Ctx, Var, Heap, HCtx };
    Rule R;
    R.Body = {Atom{Reachable, {V(Meth), V(Ctx)}},
              Atom{Alloc, {V(Var), V(Heap), V(Meth)}},
              Atom{NoRefineObj, {V(Heap)}, /*Negated=*/IsRefined}};
    R.Functors = {FunctorCall{IsRefined ? RecordRefined : Record, HCtx,
                              {V(Heap), V(Ctx)}}};
    R.Heads = {Atom{VarPointsTo, {V(Var), V(Ctx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // VARPOINTSTO(to, ctx, heap, hctx) <-
  //   MOVE(to, from), VARPOINTSTO(from, ctx, heap, hctx).
  {
    enum { To, From, Ctx, Heap, HCtx };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(From), V(Ctx), V(Heap), V(HCtx)}},
              Atom{Move, {V(To), V(From)}}};
    R.Heads = {Atom{VarPointsTo, {V(To), V(Ctx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // Checked-cast rule (only under FilterCasts; the relations are empty
  // otherwise):
  // VARPOINTSTO(to, ctx, heap, hctx) <-
  //   CAST(to, from, type), VARPOINTSTO(from, ctx, heap, hctx),
  //   HEAPTYPE(heap, heapT), SUBTYPE(heapT, type).
  {
    enum { To, From, Type, Ctx, Heap, HCtx, HeapT };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(From), V(Ctx), V(Heap), V(HCtx)}},
              Atom{Cast, {V(To), V(From), V(Type)}},
              Atom{HeapType, {V(Heap), V(HeapT)}},
              Atom{Subtype, {V(HeapT), V(Type)}}};
    R.Heads = {Atom{VarPointsTo, {V(To), V(Ctx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // VARPOINTSTO(to, toCtx, heap, hctx) <-
  //   INTERPROCASSIGN(to, toCtx, from, fromCtx),
  //   VARPOINTSTO(from, fromCtx, heap, hctx).
  {
    enum { To, ToCtx, From, FromCtx, Heap, HCtx };
    Rule R;
    R.Body = {Atom{InterProcAssign, {V(To), V(ToCtx), V(From), V(FromCtx)}},
              Atom{VarPointsTo, {V(From), V(FromCtx), V(Heap), V(HCtx)}}};
    R.Heads = {Atom{VarPointsTo, {V(To), V(ToCtx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // VARPOINTSTO(to, ctx, heap, hctx) <-
  //   LOAD(to, base, fld), VARPOINTSTO(base, ctx, baseH, baseHCtx),
  //   FLDPOINTSTO(baseH, baseHCtx, fld, heap, hctx).
  {
    enum { To, Base, Fld, Ctx, BaseH, BaseHCtx, Heap, HCtx };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(Base), V(Ctx), V(BaseH), V(BaseHCtx)}},
              Atom{Load, {V(To), V(Base), V(Fld)}},
              Atom{FldPointsTo,
                   {V(BaseH), V(BaseHCtx), V(Fld), V(Heap), V(HCtx)}}};
    R.Heads = {Atom{VarPointsTo, {V(To), V(Ctx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // FLDPOINTSTO(baseH, baseHCtx, fld, heap, hctx) <-
  //   STORE(base, fld, from), VARPOINTSTO(from, ctx, heap, hctx),
  //   VARPOINTSTO(base, ctx, baseH, baseHCtx).
  {
    enum { Base, Fld, From, Ctx, Heap, HCtx, BaseH, BaseHCtx };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(From), V(Ctx), V(Heap), V(HCtx)}},
              Atom{Store, {V(Base), V(Fld), V(From)}},
              Atom{VarPointsTo, {V(Base), V(Ctx), V(BaseH), V(BaseHCtx)}}};
    R.Heads = {Atom{FldPointsTo,
                    {V(BaseH), V(BaseHCtx), V(Fld), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // MERGE(heap, hctx, invo, callerCtx) = calleeCtx,
  // REACHABLE(toMeth, calleeCtx),
  // VARPOINTSTO(this, calleeCtx, heap, hctx),
  // CALLGRAPH(invo, callerCtx, toMeth, calleeCtx) <-
  //   VCALL(base, sig, invo, inMeth), REACHABLE(inMeth, callerCtx),
  //   VARPOINTSTO(base, callerCtx, heap, hctx),
  //   HEAPTYPE(heap, heapT), LOOKUP(heapT, sig, toMeth),
  //   THISVAR(toMeth, this), !SITETOREFINE(invo, toMeth).
  for (bool IsRefined : {false, true}) {
    enum {
      Base,
      Sig,
      Invo,
      InMeth,
      CallerCtx,
      Heap,
      HCtx,
      HeapT,
      ToMeth,
      This,
      CalleeCtx
    };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(Base), V(CallerCtx), V(Heap), V(HCtx)}},
              Atom{VCall, {V(Base), V(Sig), V(Invo), V(InMeth)}},
              Atom{Reachable, {V(InMeth), V(CallerCtx)}},
              Atom{HeapType, {V(Heap), V(HeapT)}},
              Atom{Lookup, {V(HeapT), V(Sig), V(ToMeth)}},
              Atom{ThisVar, {V(ToMeth), V(This)}},
              Atom{NoRefineSite, {V(Invo), V(ToMeth)}, /*Negated=*/IsRefined}};
    R.Functors = {FunctorCall{IsRefined ? MergeRefined : Merge, CalleeCtx,
                              {V(Heap), V(HCtx), V(Invo), V(ToMeth),
                               V(CallerCtx)}}};
    R.Heads = {Atom{Reachable, {V(ToMeth), V(CalleeCtx)}},
               Atom{VarPointsTo, {V(This), V(CalleeCtx), V(Heap), V(HCtx)}},
               Atom{CallGraph,
                    {V(Invo), V(CallerCtx), V(ToMeth), V(CalleeCtx)}}};
    E.addRule(std::move(R));
  }

  // Static-call analogue (full-Doop extension, not in Figure 3):
  // MERGESTATIC(invo, callerCtx) = calleeCtx,
  // REACHABLE(meth, calleeCtx),
  // CALLGRAPH(invo, callerCtx, meth, calleeCtx) <-
  //   SCALL(meth, invo, inMeth), REACHABLE(inMeth, callerCtx),
  //   !SITETOREFINE(invo, meth).
  for (bool IsRefined : {false, true}) {
    enum { Meth, Invo, InMeth, CallerCtx, CalleeCtx };
    Rule R;
    R.Body = {Atom{Reachable, {V(InMeth), V(CallerCtx)}},
              Atom{SCall, {V(Meth), V(Invo), V(InMeth)}},
              Atom{NoRefineSite, {V(Invo), V(Meth)}, /*Negated=*/IsRefined}};
    R.Functors = {
        FunctorCall{IsRefined ? MergeStaticRefined : MergeStatic, CalleeCtx,
                    {V(Invo), V(Meth), V(CallerCtx)}}};
    R.Heads = {Atom{Reachable, {V(Meth), V(CalleeCtx)}},
               Atom{CallGraph,
                    {V(Invo), V(CallerCtx), V(Meth), V(CalleeCtx)}}};
    E.addRule(std::move(R));
  }

  // --- Static fields (full-Doop core extension) -----------------------------
  // SFLDPOINTSTO(fld, heap, hctx) <-
  //   SSTORE(fld, from), VARPOINTSTO(from, ctx, heap, hctx).
  {
    enum { Fld, From, Ctx, Heap, HCtx };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(From), V(Ctx), V(Heap), V(HCtx)}},
              Atom{SStore, {V(Fld), V(From)}}};
    R.Heads = {Atom{SFldPointsTo, {V(Fld), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }
  // VARPOINTSTO(to, ctx, heap, hctx) <-
  //   SLOAD(to, fld, meth), REACHABLE(meth, ctx),
  //   SFLDPOINTSTO(fld, heap, hctx).
  {
    enum { To, Fld, Meth, Ctx, Heap, HCtx };
    Rule R;
    R.Body = {Atom{SFldPointsTo, {V(Fld), V(Heap), V(HCtx)}},
              Atom{SLoad, {V(To), V(Fld), V(Meth)}},
              Atom{Reachable, {V(Meth), V(Ctx)}}};
    R.Heads = {Atom{VarPointsTo, {V(To), V(Ctx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // --- Exceptions (extension in the spirit of the paper's ref. [11]) --------
  // THROWPOINTSTO(meth, ctx, heap, hctx) <-
  //   THROW(var, meth), VARPOINTSTO(var, ctx, heap, hctx).
  {
    enum { Var, Meth, Ctx, Heap, HCtx };
    Rule R;
    R.Body = {Atom{VarPointsTo, {V(Var), V(Ctx), V(Heap), V(HCtx)}},
              Atom{Throw, {V(Var), V(Meth)}}};
    R.Heads = {Atom{ThrowPointsTo, {V(Meth), V(Ctx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }
  // No catch clause: everything escapes to the caller.
  // THROWPOINTSTO(callerMeth, callerCtx, heap, hctx) <-
  //   THROWPOINTSTO(toMeth, calleeCtx, heap, hctx),
  //   CALLGRAPH(invo, callerCtx, toMeth, calleeCtx),
  //   SITEINMETHOD(invo, callerMeth), NOCATCH(invo).
  {
    enum { ToMeth, CalleeCtx, Heap, HCtx, Invo, CallerCtx, CallerMeth };
    Rule R;
    R.Body = {Atom{ThrowPointsTo, {V(ToMeth), V(CalleeCtx), V(Heap),
                                   V(HCtx)}},
              Atom{CallGraph, {V(Invo), V(CallerCtx), V(ToMeth),
                               V(CalleeCtx)}},
              Atom{SiteInMethod, {V(Invo), V(CallerMeth)}},
              Atom{NoCatch, {V(Invo)}}};
    R.Heads = {
        Atom{ThrowPointsTo, {V(CallerMeth), V(CallerCtx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }
  // Caught: exceptions of the covered type bind to the catch variable.
  // VARPOINTSTO(catchVar, callerCtx, heap, hctx) <-
  //   THROWPOINTSTO(toMeth, calleeCtx, heap, hctx),
  //   CALLGRAPH(invo, callerCtx, toMeth, calleeCtx),
  //   CATCH(invo, type, catchVar),
  //   HEAPTYPE(heap, heapT), SUBTYPE(heapT, type).
  {
    enum {
      ToMeth,
      CalleeCtx,
      Heap,
      HCtx,
      Invo,
      CallerCtx,
      Type,
      CatchVar,
      HeapT
    };
    Rule R;
    R.Body = {Atom{ThrowPointsTo, {V(ToMeth), V(CalleeCtx), V(Heap),
                                   V(HCtx)}},
              Atom{CallGraph, {V(Invo), V(CallerCtx), V(ToMeth),
                               V(CalleeCtx)}},
              Atom{Catch, {V(Invo), V(Type), V(CatchVar)}},
              Atom{HeapType, {V(Heap), V(HeapT)}},
              Atom{Subtype, {V(HeapT), V(Type)}}};
    R.Heads = {
        Atom{VarPointsTo, {V(CatchVar), V(CallerCtx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }
  // Uncaught at a catching site: the complement escapes to the caller.
  {
    enum {
      ToMeth,
      CalleeCtx,
      Heap,
      HCtx,
      Invo,
      CallerCtx,
      Type,
      CatchVar,
      HeapT,
      CallerMeth
    };
    Rule R;
    R.Body = {Atom{ThrowPointsTo, {V(ToMeth), V(CalleeCtx), V(Heap),
                                   V(HCtx)}},
              Atom{CallGraph, {V(Invo), V(CallerCtx), V(ToMeth),
                               V(CalleeCtx)}},
              Atom{Catch, {V(Invo), V(Type), V(CatchVar)}},
              Atom{SiteInMethod, {V(Invo), V(CallerMeth)}},
              Atom{HeapType, {V(Heap), V(HeapT)}},
              Atom{Subtype, {V(HeapT), V(Type)}, /*Negated=*/true}};
    R.Heads = {
        Atom{ThrowPointsTo, {V(CallerMeth), V(CallerCtx), V(Heap), V(HCtx)}}};
    E.addRule(std::move(R));
  }

  // REACHABLE(meth, initialCtx) <- INITIALREACHABLE(meth).
  {
    enum { Meth };
    CtxId Initial = Refined.initialContext(Table);
    Rule R;
    R.Body = {Atom{InitialReachable, {V(Meth)}}};
    R.Heads = {Atom{Reachable, {V(Meth), Term::cst(Initial.index())}}};
    E.addRule(std::move(R));
  }

  datalog::EngineStats Stats = E.run(Options.MaxTuples);

  // --- Extract results -------------------------------------------------------
  DatalogReferenceResult Result;
  Result.Rounds = Stats.Rounds;
  Result.BudgetExceeded = Stats.BudgetExceeded;

  auto Dump = [&E](uint32_t RelIndex, auto &Out) {
    const datalog::Relation &Rel = E.relation(RelIndex);
    using ArrayType = typename std::remove_reference_t<decltype(Out)>::
        value_type;
    for (uint32_t Index = 0; Index < Rel.size(); ++Index) {
      std::span<const uint32_t> Tuple = Rel.tuple(Index);
      ArrayType Row{};
      std::copy(Tuple.begin(), Tuple.end(), Row.begin());
      Out.push_back(Row);
    }
    std::sort(Out.begin(), Out.end());
  };
  Dump(VarPointsTo, Result.VarPointsTo);
  Dump(FldPointsTo, Result.FieldPointsTo);
  Dump(Reachable, Result.Reachable);
  Dump(CallGraph, Result.CallGraph);
  Dump(ThrowPointsTo, Result.ThrowPointsTo);
  Dump(SFldPointsTo, Result.StaticFieldPointsTo);
  return Result;
}

DatalogReferenceResult
intro::runDatalogReference(const Program &Prog, const ContextPolicy &Policy,
                           ContextTable &Table,
                           const DatalogReferenceOptions &Options) {
  return runDatalogReference(Prog, Policy, Policy, RefinementExceptions(),
                             Table, Options);
}
