//===- analysis/Solver.h - Context-sensitive points-to solver ---*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production implementation of the analysis model of the paper's
/// Figure 3: a worklist-based, field-sensitive, flow-insensitive points-to
/// analysis with on-the-fly call-graph construction, parameterized over the
/// RECORD/MERGE context constructors of a ContextPolicy.
///
/// Each of the ten Datalog rules maps onto a solver action:
///   - ALLOC + RECORD(REFINED)       -> seeding var nodes at instantiation
///   - MOVE                          -> copy edges
///   - INTERPROCASSIGN (two rules)   -> edges added at dispatch time
///   - LOAD / STORE                  -> per-object field edges added when
///                                      the base variable gains objects
///   - VCALL + MERGE(REFINED)        -> dispatch on receiver-object deltas
///   - REACHABLE                     -> method-body instantiation
///
/// The introspective SITETOREFINE / OBJECTTOREFINE split lives entirely in
/// the ContextPolicy; the solver is identical across all analysis runs, as
/// in the paper ("the two runs of the analysis use identical code").
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_SOLVER_H
#define ANALYSIS_SOLVER_H

#include "analysis/Context.h"
#include "analysis/Result.h"
#include "support/Cancellation.h"

namespace intro {

class ContextPolicy;
class Program;

/// Deterministic fault injection for resilience tests.  A FaultPlan makes a
/// solver run fail (or *look* expensive) at an exact, reproducible point, so
/// every rung of the degradation ladder can be exercised without building
/// programs that genuinely blow up.  Default-constructed plans are inert.
struct FaultPlan {
  /// Force the run to stop with FailStatus once this many worklist pops have
  /// happened.  0 disables the fault.
  uint64_t FailAtPop = 0;
  /// The status reported when the FailAtPop fault fires.  Must be a
  /// non-completed status; Completed is treated as "no fault".
  SolveStatus FailStatus = SolveStatus::TupleBudgetExceeded;
  /// Pathological metric inflation: the tuple count is multiplied by this
  /// factor when tested against SolveBudget::MaxTuples, making the budget
  /// trip early as if the points-to sets had exploded.  Reported statistics
  /// stay honest; only budget enforcement is inflated.  1 disables.
  uint64_t TupleInflation = 1;

  /// \returns true if any fault is armed.
  bool armed() const {
    return (FailAtPop != 0 && FailStatus != SolveStatus::Completed) ||
           TupleInflation > 1;
  }
};

/// Options controlling a solver run.
struct SolverOptions {
  SolveBudget Budget;
  /// Dump the full context-sensitive VARPOINTSTO / FLDPOINTSTO / REACHABLE /
  /// CALLGRAPH relations into the result (used by the oracle tests; costs
  /// memory, off by default).
  bool KeepTuples = false;
  /// Doop-style checked-cast semantics: `to = (T) from` propagates only the
  /// objects whose type is a subtype of T (a failing cast throws, cutting
  /// the dataflow).  Off by default — the paper's model treats casts as
  /// moves.
  bool FilterCasts = false;
  /// Optional cooperative cancellation.  When set, the worklist loop polls
  /// the token every CancelInterval iterations and stops with
  /// SolveStatus::Cancelled (a sound-prefix result, like a budget stop).
  /// The token must outlive the run.
  const CancellationToken *Cancel = nullptr;
  /// How many worklist iterations between cancellation polls.  Small values
  /// tighten the response latency; the poll is a relaxed atomic load, so
  /// even 1 is affordable.
  uint32_t CancelInterval = 64;
  /// Deterministic fault injection (tests only; inert by default).
  FaultPlan Faults;
};

/// Runs the points-to analysis on \p Prog under \p Policy.
///
/// \p Table is the (shared) context interner; passing the same table to
/// several runs keeps context ids comparable across them.
/// \returns the analysis result; Status indicates whether the run completed
/// within budget.  \p Prog must be finalized and validated.
PointsToResult solvePointsTo(const Program &Prog, const ContextPolicy &Policy,
                             ContextTable &Table,
                             const SolverOptions &Options = SolverOptions());

} // namespace intro

#endif // ANALYSIS_SOLVER_H
