//===- analysis/Alias.h - May-alias queries ---------------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The textbook client of points-to analysis: may-alias queries.  Two
/// variables may alias iff their (projected) points-to sets intersect.
/// Also provides an aggregate alias-pair count per method, which works as
/// a fourth precision probe alongside the paper's three metrics: more
/// context means fewer spurious alias pairs.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_ALIAS_H
#define ANALYSIS_ALIAS_H

#include "support/Ids.h"

#include <cstdint>

namespace intro {

class PointsToResult;
class Program;

/// \returns true if \p A and \p B may point to a common object under
/// \p Result (contexts collapsed).  Variables with empty points-to sets
/// never alias anything.
bool mayAlias(const PointsToResult &Result, VarId A, VarId B);

/// Counts, over all reachable methods, the unordered pairs of distinct
/// locals that may alias.  Lower is more precise.
uint64_t countIntraMethodAliasPairs(const Program &Prog,
                                    const PointsToResult &Result);

} // namespace intro

#endif // ANALYSIS_ALIAS_H
