//===- analysis/Reports.h - Human-readable result exports -------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders analysis results for human and downstream-tool consumption: the
/// (context-insensitively projected) call graph as Graphviz DOT, and a
/// per-variable points-to listing.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_REPORTS_H
#define ANALYSIS_REPORTS_H

#include <ostream>

namespace intro {

class JsonValue;
class JsonWriter;
class PointsToResult;
class Program;
struct SolverStats;

/// Writes the resolved call graph (one node per reachable method, one edge
/// per (call site, target) pair, contexts collapsed) as Graphviz DOT.
void writeCallGraphDot(const Program &Prog, const PointsToResult &Result,
                       std::ostream &Out);

/// Writes a `var -> {allocation sites}` listing for every variable of every
/// reachable method with a non-empty points-to set.
void writePointsToReport(const Program &Prog, const PointsToResult &Result,
                         std::ostream &Out);

/// Writes \p Stats as one JSON object (all SolverStats fields by name).
/// `seconds` is wall-clock and therefore run-dependent; everything else is
/// deterministic for a deterministic solve.  Used by the machine-readable
/// run reports (`--trace=FILE`).
void writeSolverStatsJson(JsonWriter &J, const SolverStats &Stats);

/// Inverse of writeSolverStatsJson: decodes a stats object parsed from a
/// run report back into \p Stats.  Missing members keep their zero default
/// (a report truncated by a dying child still yields its decodable prefix);
/// \returns false only when \p Value is not an object.
bool parseSolverStatsJson(const JsonValue &Value, SolverStats &Stats);

} // namespace intro

#endif // ANALYSIS_REPORTS_H
