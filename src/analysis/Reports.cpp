//===- analysis/Reports.cpp - Human-readable result exports ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Reports.h"

#include "analysis/Result.h"
#include "ir/Program.h"
#include "support/Json.h"

#include <ostream>
#include <string>

using namespace intro;

namespace {

/// DOT-escapes a name (quotes and backslashes).
std::string dotEscape(std::string_view Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// A stable, qualified method label: `Class.method`.
std::string methodLabel(const Program &Prog, MethodId Method) {
  std::string Label(Prog.typeName(Prog.method(Method).Owner));
  Label += '.';
  Label += Prog.methodName(Method);
  return Label;
}

} // namespace

void intro::writeCallGraphDot(const Program &Prog,
                              const PointsToResult &Result,
                              std::ostream &Out) {
  Out << "digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n";
  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex)
    if (Result.isReachable(MethodId(MethodIndex)))
      Out << "  m" << MethodIndex << " [label=\""
          << dotEscape(methodLabel(Prog, MethodId(MethodIndex))) << "\"];\n";

  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    SiteId Site(SiteIndex);
    const SiteInfo &Info = Prog.site(Site);
    for (uint32_t TargetRaw : Result.callTargets(Site))
      Out << "  m" << Info.InMethod.index() << " -> m" << TargetRaw
          << " [label=\"" << dotEscape(Prog.siteName(Site)) << "\"];\n";
  }
  Out << "}\n";
}

void intro::writePointsToReport(const Program &Prog,
                                const PointsToResult &Result,
                                std::ostream &Out) {
  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    MethodId Method(MethodIndex);
    if (!Result.isReachable(Method))
      continue;
    bool PrintedHeader = false;
    for (VarId Var : Prog.method(Method).Locals) {
      const SortedIdSet &Heaps = Result.pointsTo(Var);
      if (Heaps.empty())
        continue;
      if (!PrintedHeader) {
        Out << methodLabel(Prog, Method) << ":\n";
        PrintedHeader = true;
      }
      Out << "  " << Prog.varName(Var) << " -> {";
      bool First = true;
      for (uint32_t HeapRaw : Heaps) {
        Out << (First ? " " : ", ") << Prog.heapName(HeapId(HeapRaw));
        First = false;
      }
      Out << " }\n";
    }
  }
}

// Propagation diagnostics (SolverStats::BatchUnions / ElementProbes /
// DensePointsToSets) are deliberately omitted: run reports must be
// byte-identical between a cold solve and a cache-warm replay (where the
// decoded stats carry zeros for fields the entry format does not store),
// and the diagnostics describe how the fixpoint was computed, not what it
// is.
void intro::writeSolverStatsJson(JsonWriter &J, const SolverStats &Stats) {
  J.beginObject();
  J.key("seconds");
  J.value(Stats.Seconds);
  J.key("var_points_to_tuples");
  J.value(Stats.VarPointsToTuples);
  J.key("field_points_to_tuples");
  J.value(Stats.FieldPointsToTuples);
  J.key("throw_points_to_tuples");
  J.value(Stats.ThrowPointsToTuples);
  J.key("static_field_tuples");
  J.value(Stats.StaticFieldTuples);
  J.key("var_nodes");
  J.value(Stats.NumVarNodes);
  J.key("field_nodes");
  J.value(Stats.NumFieldNodes);
  J.key("objects");
  J.value(Stats.NumObjects);
  J.key("contexts");
  J.value(Stats.NumContexts);
  J.key("heap_contexts");
  J.value(Stats.NumHeapContexts);
  J.key("reachable_method_contexts");
  J.value(Stats.ReachableMethodContexts);
  J.key("call_graph_edges");
  J.value(Stats.CallGraphEdges);
  J.key("worklist_pops");
  J.value(Stats.WorklistPops);
  J.key("approx_bytes");
  J.value(Stats.ApproxBytes);
  J.endObject();
}

bool intro::parseSolverStatsJson(const JsonValue &Value, SolverStats &Stats) {
  if (!Value.isObject())
    return false;
  Value.getDouble("seconds", Stats.Seconds);
  Value.getUint("var_points_to_tuples", Stats.VarPointsToTuples);
  Value.getUint("field_points_to_tuples", Stats.FieldPointsToTuples);
  Value.getUint("throw_points_to_tuples", Stats.ThrowPointsToTuples);
  Value.getUint("static_field_tuples", Stats.StaticFieldTuples);
  Value.getUint("var_nodes", Stats.NumVarNodes);
  Value.getUint("field_nodes", Stats.NumFieldNodes);
  Value.getUint("objects", Stats.NumObjects);
  Value.getUint("contexts", Stats.NumContexts);
  Value.getUint("heap_contexts", Stats.NumHeapContexts);
  Value.getUint("reachable_method_contexts", Stats.ReachableMethodContexts);
  Value.getUint("call_graph_edges", Stats.CallGraphEdges);
  Value.getUint("worklist_pops", Stats.WorklistPops);
  Value.getUint("approx_bytes", Stats.ApproxBytes);
  return true;
}
