//===- analysis/ContextPolicy.h - Context constructors ----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's RECORD and MERGE context constructor functions (Figure 2),
/// hidden behind a virtual interface so that the same solver rules implement
/// context-insensitive, call-site-sensitive, object-sensitive, and
/// type-sensitive analyses of any depth — plus the introspective combination
/// of two such policies driven by the SITETOREFINE / OBJECTTOREFINE input
/// relations (stored in complement, "do not refine", form; see the paper's
/// footnote 4).
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_CONTEXTPOLICY_H
#define ANALYSIS_CONTEXTPOLICY_H

#include "analysis/Context.h"
#include "support/Ids.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace intro {

class Program;

/// Abstract context constructors.  RECORD creates heap contexts at
/// allocation sites; MERGE creates calling contexts at (virtual) call
/// sites; MERGESTATIC handles calls with a statically known target.
class ContextPolicy {
public:
  virtual ~ContextPolicy();

  /// Human-readable analysis name, e.g. "2objH".
  virtual std::string name() const = 0;

  /// Context in which entry methods are analyzed.
  virtual CtxId initialContext(ContextTable &Table) const {
    return Table.emptyCtx();
  }

  /// RECORD(heap, ctx) = hctx — heap context for an object allocated at
  /// \p Heap while the allocating method runs in \p Ctx.
  virtual HCtxId record(HeapId Heap, CtxId Ctx, ContextTable &Table) const = 0;

  /// MERGE(heap, hctx, invo, ctx) = calleeCtx — calling context for the
  /// method invoked at \p Invo on a receiver abstracted as (\p Heap,
  /// \p HCtx), from caller context \p CallerCtx.  \p Callee is the
  /// dispatched target (needed by the introspective SITETOREFINE filter,
  /// which is keyed on (invo, meth) pairs).
  virtual CtxId merge(HeapId Heap, HCtxId HCtx, SiteId Invo, MethodId Callee,
                      CtxId CallerCtx, ContextTable &Table) const = 0;

  /// MERGE for static calls (no receiver object).
  virtual CtxId mergeStatic(SiteId Invo, MethodId Callee, CtxId CallerCtx,
                            ContextTable &Table) const = 0;
};

/// Context-insensitive: every constructor returns the `*` context.
std::unique_ptr<ContextPolicy> makeInsensitivePolicy();

/// k-call-site-sensitive with a (k-1)-context-sensitive heap ("kcallH").
/// Context elements are invocation sites, most recent first.
std::unique_ptr<ContextPolicy> makeCallSitePolicy(uint32_t Depth,
                                                  uint32_t HeapDepth);

/// k-object-sensitive with a (k-1)-context-sensitive heap ("kobjH").
/// Context elements are receiver allocation sites, most recent first.
/// Static calls propagate the caller's context unchanged (Doop convention).
std::unique_ptr<ContextPolicy> makeObjectPolicy(const Program &Prog,
                                                uint32_t Depth,
                                                uint32_t HeapDepth);

/// k-type-sensitive with a (k-1)-context-sensitive heap ("ktypeH").
/// Context elements are the classes *containing the allocation site* of the
/// receiver object (Smaragdakis et al., POPL 2011).
std::unique_ptr<ContextPolicy> makeTypePolicy(const Program &Prog,
                                              uint32_t Depth,
                                              uint32_t HeapDepth);

/// Selective hybrid context-sensitivity (Kastrinis & Smaragdakis, PLDI
/// 2013 — the paper's reference [12]): object-sensitivity at virtual call
/// sites, call-site-sensitivity at static call sites ("khybH").  Context
/// elements are tagged so that allocation-site and invocation-site indices
/// never collide.
std::unique_ptr<ContextPolicy> makeHybridPolicy(const Program &Prog,
                                                uint32_t Depth,
                                                uint32_t HeapDepth);

/// The program elements that introspective context-sensitivity treats with
/// the *coarse* context.  This is the complement encoding of the paper's
/// SITETOREFINE / OBJECTTOREFINE inputs: everything not listed here is
/// refined (analyzed with the precise context).
struct RefinementExceptions {
  /// Heap allocation sites to analyze with the coarse RECORD.
  std::unordered_set<uint32_t> NoRefineHeaps;
  /// (invocation site, target method) pairs to analyze with the coarse
  /// MERGE, packed as (site << 32 | method).
  std::unordered_set<uint64_t> NoRefineSites;

  static uint64_t packSite(SiteId Invo, MethodId Callee) {
    return (static_cast<uint64_t>(Invo.index()) << 32) | Callee.index();
  }

  bool skipsHeap(HeapId Heap) const {
    return NoRefineHeaps.count(Heap.index()) != 0;
  }
  bool skipsSite(SiteId Invo, MethodId Callee) const {
    return NoRefineSites.count(packSite(Invo, Callee)) != 0;
  }
};

/// Introspective combination: \p Refined constructors (RECORDREFINED /
/// MERGEREFINED) apply to every element *not* excluded by \p Exceptions;
/// excluded elements fall back to \p Coarse (context-insensitive in the
/// paper's experiments).  Both policies must outlive the returned object.
std::unique_ptr<ContextPolicy>
makeIntrospectivePolicy(std::string Name, const ContextPolicy &Coarse,
                        const ContextPolicy &Refined,
                        RefinementExceptions Exceptions);

} // namespace intro

#endif // ANALYSIS_CONTEXTPOLICY_H
