//===- analysis/ContextPolicy.cpp - Context constructors ------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ContextPolicy.h"

#include "ir/Program.h"

#include <algorithm>
#include <array>

using namespace intro;

ContextPolicy::~ContextPolicy() = default;

namespace {

/// Maximum supported context depth.  Deep enough for every analysis in the
/// paper (depth 2 plus a 1-deep heap); bump if you experiment further.
constexpr uint32_t MaxDepth = 8;

/// Pushes \p NewElement in front of \p Tail, keeping at most \p Depth
/// elements, and interns the result as a calling context.
CtxId pushCtx(uint32_t NewElement, std::span<const uint32_t> Tail,
              uint32_t Depth, ContextTable &Table) {
  assert(Depth >= 1 && Depth <= MaxDepth && "unsupported context depth");
  std::array<uint32_t, MaxDepth> Buffer;
  Buffer[0] = NewElement;
  uint32_t Count = 1;
  for (uint32_t Element : Tail) {
    if (Count >= Depth)
      break;
    Buffer[Count++] = Element;
  }
  return Table.internCtx(std::span<const uint32_t>(Buffer.data(), Count));
}

/// Interns the first \p Depth elements of \p Elements as a heap context.
HCtxId truncateToHCtx(std::span<const uint32_t> Elements, uint32_t Depth,
                      ContextTable &Table) {
  uint32_t Count = std::min<uint32_t>(Depth,
                                      static_cast<uint32_t>(Elements.size()));
  return Table.internHCtx(std::span<const uint32_t>(Elements.data(), Count));
}

class InsensitivePolicy : public ContextPolicy {
public:
  std::string name() const override { return "insens"; }

  HCtxId record(HeapId, CtxId, ContextTable &Table) const override {
    return Table.emptyHCtx();
  }

  CtxId merge(HeapId, HCtxId, SiteId, MethodId, CtxId,
              ContextTable &Table) const override {
    return Table.emptyCtx();
  }

  CtxId mergeStatic(SiteId, MethodId, CtxId,
                    ContextTable &Table) const override {
    return Table.emptyCtx();
  }
};

class CallSitePolicy : public ContextPolicy {
public:
  CallSitePolicy(uint32_t Depth, uint32_t HeapDepth)
      : Depth(Depth), HeapDepth(HeapDepth) {}

  std::string name() const override {
    return std::to_string(Depth) + "call" + (HeapDepth > 0 ? "H" : "");
  }

  // The heap context of an object is the (truncated) calling context of the
  // allocating method.
  HCtxId record(HeapId, CtxId Ctx, ContextTable &Table) const override {
    return truncateToHCtx(Table.elements(Ctx), HeapDepth, Table);
  }

  // The callee context is the call site consed onto the caller's context.
  CtxId merge(HeapId, HCtxId, SiteId Invo, MethodId, CtxId CallerCtx,
              ContextTable &Table) const override {
    return pushCtx(Invo.index(), Table.elements(CallerCtx), Depth, Table);
  }

  CtxId mergeStatic(SiteId Invo, MethodId, CtxId CallerCtx,
                    ContextTable &Table) const override {
    return pushCtx(Invo.index(), Table.elements(CallerCtx), Depth, Table);
  }

private:
  uint32_t Depth;
  uint32_t HeapDepth;
};

class ObjectPolicy : public ContextPolicy {
public:
  ObjectPolicy(const Program &Prog, uint32_t Depth, uint32_t HeapDepth)
      : Prog(Prog), Depth(Depth), HeapDepth(HeapDepth) {
    (void)this->Prog;
  }

  std::string name() const override {
    return std::to_string(Depth) + "obj" + (HeapDepth > 0 ? "H" : "");
  }

  HCtxId record(HeapId, CtxId Ctx, ContextTable &Table) const override {
    return truncateToHCtx(Table.elements(Ctx), HeapDepth, Table);
  }

  // The callee context is the receiver's allocation site consed onto the
  // receiver's heap context.
  CtxId merge(HeapId Heap, HCtxId HCtx, SiteId, MethodId, CtxId,
              ContextTable &Table) const override {
    return pushCtx(Heap.index(), Table.elements(HCtx), Depth, Table);
  }

  // Static calls have no receiver: the caller's context is propagated
  // unchanged (the standard Doop treatment for object-sensitivity).
  CtxId mergeStatic(SiteId, MethodId, CtxId CallerCtx,
                    ContextTable &) const override {
    return CallerCtx;
  }

private:
  const Program &Prog;
  uint32_t Depth;
  uint32_t HeapDepth;
};

class TypePolicy : public ContextPolicy {
public:
  TypePolicy(const Program &Prog, uint32_t Depth, uint32_t HeapDepth)
      : Prog(Prog), Depth(Depth), HeapDepth(HeapDepth) {}

  std::string name() const override {
    return std::to_string(Depth) + "type" + (HeapDepth > 0 ? "H" : "");
  }

  HCtxId record(HeapId, CtxId Ctx, ContextTable &Table) const override {
    return truncateToHCtx(Table.elements(Ctx), HeapDepth, Table);
  }

  // Like object-sensitivity, but the context element is the class that
  // lexically contains the receiver's allocation site.
  CtxId merge(HeapId Heap, HCtxId HCtx, SiteId, MethodId, CtxId,
              ContextTable &Table) const override {
    TypeId Element = Prog.classOfMethod(Prog.heap(Heap).InMethod);
    return pushCtx(Element.index(), Table.elements(HCtx), Depth, Table);
  }

  CtxId mergeStatic(SiteId, MethodId, CtxId CallerCtx,
                    ContextTable &) const override {
    return CallerCtx;
  }

private:
  const Program &Prog;
  uint32_t Depth;
  uint32_t HeapDepth;
};

class HybridPolicy : public ContextPolicy {
public:
  HybridPolicy(const Program &Prog, uint32_t Depth, uint32_t HeapDepth)
      : Prog(Prog), Depth(Depth), HeapDepth(HeapDepth) {
    (void)this->Prog;
  }

  std::string name() const override {
    return std::to_string(Depth) + "hyb" + (HeapDepth > 0 ? "H" : "");
  }

  HCtxId record(HeapId, CtxId Ctx, ContextTable &Table) const override {
    return truncateToHCtx(Table.elements(Ctx), HeapDepth, Table);
  }

  // Virtual calls: object-sensitivity (receiver allocation site).
  CtxId merge(HeapId Heap, HCtxId HCtx, SiteId, MethodId, CtxId,
              ContextTable &Table) const override {
    return pushCtx(tagHeap(Heap), Table.elements(HCtx), Depth, Table);
  }

  // Static calls: call-site-sensitivity (the invocation site is consed
  // onto the caller's context) -- the "selective hybrid" of [12].
  CtxId mergeStatic(SiteId Invo, MethodId, CtxId CallerCtx,
                    ContextTable &Table) const override {
    return pushCtx(tagSite(Invo), Table.elements(CallerCtx), Depth, Table);
  }

private:
  // Tag the top bit so heap and site indices occupy disjoint element
  // spaces: mixing them untagged would spuriously merge contexts.
  static uint32_t tagHeap(HeapId Heap) { return Heap.index(); }
  static uint32_t tagSite(SiteId Invo) {
    return Invo.index() | 0x80000000u;
  }

  const Program &Prog;
  uint32_t Depth;
  uint32_t HeapDepth;
};

class IntrospectivePolicy : public ContextPolicy {
public:
  IntrospectivePolicy(std::string Name, const ContextPolicy &Coarse,
                      const ContextPolicy &Refined,
                      RefinementExceptions Exceptions)
      : Name(std::move(Name)), Coarse(Coarse), Refined(Refined),
        Exceptions(std::move(Exceptions)) {}

  std::string name() const override { return Name; }

  // The duplicated rule pair of Figure 3: OBJECTTOREFINE selects between
  // RECORD and RECORDREFINED...
  HCtxId record(HeapId Heap, CtxId Ctx, ContextTable &Table) const override {
    if (Exceptions.skipsHeap(Heap))
      return Coarse.record(Heap, Ctx, Table);
    return Refined.record(Heap, Ctx, Table);
  }

  // ...and SITETOREFINE between MERGE and MERGEREFINED.
  CtxId merge(HeapId Heap, HCtxId HCtx, SiteId Invo, MethodId Callee,
              CtxId CallerCtx, ContextTable &Table) const override {
    if (Exceptions.skipsSite(Invo, Callee))
      return Coarse.merge(Heap, HCtx, Invo, Callee, CallerCtx, Table);
    return Refined.merge(Heap, HCtx, Invo, Callee, CallerCtx, Table);
  }

  CtxId mergeStatic(SiteId Invo, MethodId Callee, CtxId CallerCtx,
                    ContextTable &Table) const override {
    if (Exceptions.skipsSite(Invo, Callee))
      return Coarse.mergeStatic(Invo, Callee, CallerCtx, Table);
    return Refined.mergeStatic(Invo, Callee, CallerCtx, Table);
  }

private:
  std::string Name;
  const ContextPolicy &Coarse;
  const ContextPolicy &Refined;
  RefinementExceptions Exceptions;
};

} // namespace

std::unique_ptr<ContextPolicy> intro::makeInsensitivePolicy() {
  return std::make_unique<InsensitivePolicy>();
}

std::unique_ptr<ContextPolicy> intro::makeCallSitePolicy(uint32_t Depth,
                                                         uint32_t HeapDepth) {
  return std::make_unique<CallSitePolicy>(Depth, HeapDepth);
}

std::unique_ptr<ContextPolicy>
intro::makeObjectPolicy(const Program &Prog, uint32_t Depth,
                        uint32_t HeapDepth) {
  return std::make_unique<ObjectPolicy>(Prog, Depth, HeapDepth);
}

std::unique_ptr<ContextPolicy>
intro::makeTypePolicy(const Program &Prog, uint32_t Depth,
                      uint32_t HeapDepth) {
  return std::make_unique<TypePolicy>(Prog, Depth, HeapDepth);
}

std::unique_ptr<ContextPolicy>
intro::makeHybridPolicy(const Program &Prog, uint32_t Depth,
                        uint32_t HeapDepth) {
  return std::make_unique<HybridPolicy>(Prog, Depth, HeapDepth);
}

std::unique_ptr<ContextPolicy>
intro::makeIntrospectivePolicy(std::string Name, const ContextPolicy &Coarse,
                               const ContextPolicy &Refined,
                               RefinementExceptions Exceptions) {
  return std::make_unique<IntrospectivePolicy>(std::move(Name), Coarse,
                                               Refined, std::move(Exceptions));
}
