//===- analysis/DatalogReference.h - Figure 3 as Datalog --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 3 rules evaluated *literally* on the Datalog engine,
/// with the RECORD/MERGE (and RECORDREFINED/MERGEREFINED) context
/// constructors registered as external functors — a faithful executable
/// rendering of the paper's model, including the duplicated rule pairs
/// keyed on OBJECTTOREFINE / SITETOREFINE (which we store in complement,
/// "do not refine", form per the paper's footnote 4).
///
/// This implementation is deliberately simple and serves as the *oracle*
/// for the hand-tuned worklist solver: property tests assert that both
/// produce identical VARPOINTSTO / FLDPOINTSTO / REACHABLE / CALLGRAPH
/// relations on randomized programs under every context flavor.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DATALOGREFERENCE_H
#define ANALYSIS_DATALOGREFERENCE_H

#include "analysis/Context.h"
#include "analysis/ContextPolicy.h"

#include <array>
#include <cstdint>
#include <vector>

namespace intro {

class Program;

/// The relations computed by the Datalog reference run, sorted.
struct DatalogReferenceResult {
  /// VARPOINTSTO(var, ctx, heap, hctx)
  std::vector<std::array<uint32_t, 4>> VarPointsTo;
  /// FLDPOINTSTO(baseHeap, baseHCtx, fld, heap, hctx)
  std::vector<std::array<uint32_t, 5>> FieldPointsTo;
  /// REACHABLE(meth, ctx)
  std::vector<std::array<uint32_t, 2>> Reachable;
  /// CALLGRAPH(invo, callerCtx, meth, calleeCtx)
  std::vector<std::array<uint32_t, 4>> CallGraph;
  /// THROWPOINTSTO(meth, ctx, heap, hctx)
  std::vector<std::array<uint32_t, 4>> ThrowPointsTo;
  /// SFLDPOINTSTO(fld, heap, hctx)
  std::vector<std::array<uint32_t, 3>> StaticFieldPointsTo;
  uint64_t Rounds = 0;
  bool BudgetExceeded = false;
};

/// Options for the reference run.
struct DatalogReferenceOptions {
  uint64_t MaxTuples = 50'000'000;
  /// Mirror of SolverOptions::FilterCasts: evaluate casts with the checked
  /// (SUBTYPE-filtered) rule instead of as moves.
  bool FilterCasts = false;
};

/// Evaluates the model on \p Prog with the full introspective split:
/// \p Refined constructors apply to every element not excluded by
/// \p Exceptions, which fall back to \p Coarse.
DatalogReferenceResult
runDatalogReference(const Program &Prog, const ContextPolicy &Coarse,
                    const ContextPolicy &Refined,
                    const RefinementExceptions &Exceptions,
                    ContextTable &Table,
                    const DatalogReferenceOptions &Options =
                        DatalogReferenceOptions());

/// Convenience overload: one uniform \p Policy, no refinement split.
DatalogReferenceResult
runDatalogReference(const Program &Prog, const ContextPolicy &Policy,
                    ContextTable &Table,
                    const DatalogReferenceOptions &Options =
                        DatalogReferenceOptions());

} // namespace intro

#endif // ANALYSIS_DATALOGREFERENCE_H
