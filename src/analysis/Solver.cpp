//===- analysis/Solver.cpp - Context-sensitive points-to solver -----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"

#include "analysis/ContextPolicy.h"
#include "ir/Program.h"
#include "support/IdSet.h"
#include "support/Overflow.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace intro;

namespace {

constexpr uint8_t NodeKindVar = 0;
constexpr uint8_t NodeKindField = 1;
constexpr uint8_t NodeKindStaticField = 2;
constexpr uint8_t NodeKindThrow = 3;

uint64_t pack(uint32_t High, uint32_t Low) {
  return (static_cast<uint64_t>(High) << 32) | Low;
}

/// One constraint-graph node: a (var, ctx) pair or an (object, field) pair.
///
/// Pts and Delta are adaptive sets (support/IdSet.h): sorted vectors while
/// small, packed bitmaps once a hub node's set grows large and dense.  The
/// difference-propagation invariant is Delta SUBSETOF Pts: an object enters
/// Delta exactly when it first enters Pts, and is drained (propagated to
/// every outgoing edge) exactly once, by processNode.
struct Node {
  IdSet Pts;          ///< All objects known to flow here.
  IdSet Delta;        ///< Subset of Pts not yet propagated.
  SortedIdSet Succ;   ///< Subset edges: Pts flows into these nodes.
  /// Filtered (checked-cast / catch) edges, packed as (dst << 32 | type);
  /// only objects compatible with type flow across.  Sorted for dedup.
  std::vector<uint64_t> FilterSucc;
  /// Complement-filtered edges (uncaught-exception propagation): only
  /// objects NOT compatible with type flow across.  Sorted for dedup.
  std::vector<uint64_t> NegFilterSucc;
  /// For var nodes holding a Load base: (field, destination node).
  std::vector<std::pair<uint32_t, uint32_t>> LoadUses;
  /// For var nodes holding a Store base: (field, source node).
  std::vector<std::pair<uint32_t, uint32_t>> StoreUses;
  /// For var nodes that are virtual-call receivers: the call sites.
  std::vector<uint32_t> CallUses;
  uint32_t CtxRaw = 0; ///< Calling context (var nodes only).
  bool InWorklist = false;
};

class Solver {
public:
  Solver(const Program &Prog, const ContextPolicy &Policy, ContextTable &Ctxs,
         const SolverOptions &Opts)
      : Prog(Prog), Policy(Policy), Ctxs(Ctxs), Opts(Opts) {
    // Degenerate-knob clamp: CancelInterval is a modulus in the stop check;
    // 0 means "poll every iteration", exactly like 1.  Make that explicit
    // here (and observable in the trace) rather than relying on the
    // short-circuit in stopRequested().
    if (this->Opts.CancelInterval == 0) {
      this->Opts.CancelInterval = 1;
      TRACE_INSTANT("solve.clamp.cancel_interval", 1);
    }
  }

  PointsToResult run() {
    TRACE_SPAN("solve.run");
    CtxId Initial = Policy.initialContext(Ctxs);
    for (MethodId Entry : Prog.entries())
      enqueueReachable(Entry, Initial);

    uint64_t Checkpoint = 0;
    while (!PendingReachable.empty() || !Worklist.empty()) {
      // The tuple/memory budgets and the fault plan are cheap integer tests,
      // so test them every iteration; the clock costs a syscall and runs
      // only every 1024 iterations; cancellation is a relaxed atomic load,
      // polled every CancelInterval iterations.
      ++Checkpoint;
      if (stopRequested(Checkpoint))
        break;
      if (!PendingReachable.empty()) {
        auto [Method, Ctx] = PendingReachable.back();
        PendingReachable.pop_back();
        instantiate(MethodId(Method), CtxId(Ctx));
        continue;
      }
      processNode(popWorklist());
    }
    return finish();
  }

private:
  // --- Budget, fault injection, and cancellation -------------------------

  /// Tests every stop condition, cheapest first.  Sets Status and \returns
  /// true if the run must abort at this iteration.
  bool stopRequested(uint64_t Checkpoint) {
    BudgetChecks = Checkpoint;
    if (Opts.Faults.FailAtPop != 0 && Pops >= Opts.Faults.FailAtPop &&
        Opts.Faults.FailStatus != SolveStatus::Completed) {
      Status = Opts.Faults.FailStatus;
      TRACE_INSTANT("solve.trip.fault", Pops);
      return true;
    }
    // Saturating multiply: a pathological inflation factor must trip the
    // budget, not wrap uint64_t and silently disarm it.  A zero factor
    // (below the documented minimum of 1) is treated as the inert 1.
    if (saturatingMul(TotalTuples, std::max<uint64_t>(
                                       Opts.Faults.TupleInflation, 1)) >
        Opts.Budget.MaxTuples) {
      Status = SolveStatus::TupleBudgetExceeded;
      TRACE_INSTANT("solve.trip.tuple_budget", TotalTuples);
      return true;
    }
    if (Opts.Budget.MaxBytes != 0 && ApproxBytes > Opts.Budget.MaxBytes) {
      Status = SolveStatus::MemoryBudgetExceeded;
      TRACE_INSTANT("solve.trip.memory_budget", ApproxBytes);
      return true;
    }
    if (Checkpoint % 1024 == 0) {
      // Piggyback the periodic delta-relation sample on the existing clock
      // checkpoint so tracing adds no modulus of its own to the hot loop.
      // For a single-threaded solve both values are schedule-independent,
      // so the sample sequence is deterministic (see DESIGN.md §8).
      TRACE_INSTANT("solve.sample.tuples", TotalTuples);
      TRACE_INSTANT("solve.sample.worklist_depth", Worklist.size());
      if (Clock.seconds() > Opts.Budget.MaxSeconds) {
        Status = SolveStatus::TimeBudgetExceeded;
        TRACE_INSTANT("solve.trip.time_budget", Pops);
        return true;
      }
    }
    if (Opts.Cancel &&
        (Opts.CancelInterval <= 1 || Checkpoint % Opts.CancelInterval == 0) &&
        Opts.Cancel->isCancelled()) {
      Status = SolveStatus::Cancelled;
      TRACE_INSTANT("solve.trip.cancelled", Pops);
      return true;
    }
    return false;
  }

  /// Estimated bytes of hash-map bookkeeping per index entry (bucket slot,
  /// key/value pair, chaining pointer).  A constant so that the memory
  /// budget is deterministic across platforms and allocators.
  static constexpr uint64_t IndexEntryBytes = 48;

  // --- Node and object interning ------------------------------------------

  uint32_t getObject(HeapId Heap, HCtxId HCtx) {
    uint64_t Key = pack(Heap.index(), HCtx.index());
    auto [It, Inserted] = ObjIndex.emplace(Key, Objects.size());
    if (Inserted) {
      Objects.push_back({Heap.index(), HCtx.index()});
      ApproxBytes += sizeof(Objects[0]) + IndexEntryBytes;
    }
    return It->second;
  }

  uint32_t newNode(uint8_t Kind, uint64_t Key, uint32_t CtxRaw) {
    uint32_t Index = static_cast<uint32_t>(Nodes.size());
    Nodes.emplace_back();
    Nodes.back().CtxRaw = CtxRaw;
    NodeKind.push_back(Kind);
    NodeKey.push_back(Key);
    ApproxBytes += sizeof(Node) + sizeof(uint8_t) + sizeof(uint64_t) +
                   IndexEntryBytes;
    return Index;
  }

  uint32_t varNode(VarId Var, CtxId Ctx) {
    uint64_t Key = pack(Var.index(), Ctx.index());
    auto [It, Inserted] = VarNodeIndex.emplace(Key, 0);
    if (Inserted)
      It->second = newNode(NodeKindVar, Key, Ctx.index());
    return It->second;
  }

  uint32_t fieldNode(uint32_t Object, FieldId Field) {
    uint64_t Key = pack(Object, Field.index());
    auto [It, Inserted] = FieldNodeIndex.emplace(Key, 0);
    if (Inserted)
      It->second = newNode(NodeKindField, Key, 0);
    return It->second;
  }

  /// Static fields are single global cells (Doop: StaticFieldPointsTo has
  /// no base object and no context).
  uint32_t staticFieldNode(FieldId Field) {
    auto [It, Inserted] = StaticFieldNodeIndex.emplace(Field.index(), 0);
    if (Inserted)
      It->second = newNode(NodeKindStaticField, Field.index(), 0);
    return It->second;
  }

  /// The set of exception objects escaping (method, ctx) — the paper
  /// [11]-style THROWPOINTSTO relation.
  uint32_t throwNode(MethodId Method, CtxId Ctx) {
    uint64_t Key = pack(Method.index(), Ctx.index());
    auto [It, Inserted] = ThrowNodeIndex.emplace(Key, 0);
    if (Inserted)
      It->second = newNode(NodeKindThrow, Key, Ctx.index());
    return It->second;
  }

  // --- Core propagation ----------------------------------------------------

  void pushWorklist(uint32_t N) {
    if (Nodes[N].InWorklist)
      return;
    Nodes[N].InWorklist = true;
    Worklist.push_back(N);
  }

  uint32_t popWorklist() {
    uint32_t N = Worklist.back();
    Worklist.pop_back();
    Nodes[N].InWorklist = false;
    ++Pops;
    return N;
  }

  /// Combined payload estimate of a node's two sets, the quantity tracked
  /// incrementally into ApproxBytes.
  static uint64_t setBytes(const Node &N) {
    return N.Pts.approxBytes() + N.Delta.approxBytes();
  }

  /// Accounts growth of node \p N's set payload between \p Before and the
  /// current setBytes.  Monotone: representation switches that *shrink* the
  /// payload (vector -> denser bitmap) do not refund — ApproxBytes is a
  /// cumulative high-water estimate, mirroring the original per-entry
  /// bookkeeping, so budget trips never un-trip.
  void accountSetGrowth(const Node &N, uint64_t Before) {
    uint64_t After = setBytes(N);
    if (After > Before)
      ApproxBytes += After - Before;
  }

  /// Adds \p Object to node \p N.  \returns true if it was new.  The
  /// single-element path — batch propagation goes through unionInto.
  bool addObjectTo(uint32_t N, uint32_t Object) {
    Node &Target = Nodes[N];
    ++ElementProbes;
    uint64_t Before = setBytes(Target);
    if (!Target.Pts.insert(Object))
      return false;
    ++TotalTuples;
    Target.Delta.insert(Object);
    accountSetGrowth(Target, Before);
    pushWorklist(N);
    return true;
  }

  /// Batched difference propagation: merges \p Src (an IdSet or a sorted
  /// duplicate-free SortedIdSet) into node \p DstN in one union, records
  /// exactly the genuinely new elements in the node's Delta, and enqueues
  /// the node if anything changed.  One call replaces |Src| addObjectTo
  /// probes; the worklist push happens iff the per-element loop would have
  /// pushed, so the pop sequence (and thus every deterministic counter) is
  /// identical to per-element propagation.
  template <typename SrcSetT> void unionInto(uint32_t DstN, const SrcSetT &Src) {
    Node &Dst = Nodes[DstN];
    ++BatchUnions;
    uint64_t Before = setBytes(Dst);
    UnionScratch.clear();
    if (Dst.Pts.unionWithDelta(Src, UnionScratch) == 0)
      return;
    TotalTuples += UnionScratch.size();
    Dst.Delta.insertNewSorted(UnionScratch);
    accountSetGrowth(Dst, Before);
    pushWorklist(DstN);
  }

  /// Adds the subset edge \p Src -> \p Dst, propagating existing objects
  /// with a single batched union (no per-object re-insertion, no snapshot
  /// copy of the source set).
  void addEdge(uint32_t Src, uint32_t Dst) {
    if (Src == Dst)
      return; // pts(n) <= pts(n) holds trivially.
    if (!setInsert(Nodes[Src].Succ, Dst))
      return;
    ApproxBytes += sizeof(uint32_t);
    // Safe to read Nodes[Src].Pts in place: unionInto never creates nodes,
    // so Nodes cannot reallocate under it (and Src != Dst).
    unionInto(Dst, Nodes[Src].Pts);
  }

  /// \returns true if \p Object (a (heap, hctx) pair) is a subtype of
  /// \p CastTypeRaw — the checked-cast filter.
  bool castAdmits(uint32_t Object, uint32_t CastTypeRaw) const {
    return Prog.isSubtypeOf(Prog.heap(HeapId(Objects[Object].first)).Type,
                            TypeId(CastTypeRaw));
  }

  /// Adds a type-filtered edge \p Src -> \p Dst: \p Negated=false admits
  /// subtypes of \p FilterType (checked cast, catch), Negated=true admits
  /// the complement (uncaught-exception propagation).  The admitted subset
  /// is materialized once and merged with one batched union.
  void addFilteredEdge(uint32_t Src, uint32_t Dst, TypeId FilterType,
                       bool Negated = false) {
    uint64_t Packed = pack(Dst, FilterType.index());
    auto &Edges = Negated ? Nodes[Src].NegFilterSucc : Nodes[Src].FilterSucc;
    auto It = std::lower_bound(Edges.begin(), Edges.end(), Packed);
    if (It != Edges.end() && *It == Packed)
      return;
    Edges.insert(It, Packed);
    ApproxBytes += sizeof(uint64_t);
    FilterScratch.clear();
    Nodes[Src].Pts.forEach([&](uint32_t Object) {
      if (castAdmits(Object, FilterType.index()) != Negated)
        FilterScratch.push_back(Object);
    });
    unionInto(Dst, FilterScratch);
  }

  void processNode(uint32_t N) {
    IdSet Delta = std::move(Nodes[N].Delta);
    Nodes[N].Delta.clear();
    if (Delta.empty())
      return;

    // LOAD rule: to = base.fld joins FLDPOINTSTO of every new base object.
    // Snapshot the use lists: dispatching can create nodes (reallocating
    // Nodes) but never adds uses to an already-instantiated (var, ctx).
    // These three rules are inherently per-object (each object selects a
    // different field node or callee), so they stay element-wise.
    {
      auto LoadUses = Nodes[N].LoadUses;
      for (auto [FieldRaw, Dst] : LoadUses)
        Delta.forEach([&](uint32_t Object) {
          addEdge(fieldNode(Object, FieldId(FieldRaw)), Dst);
        });
    }
    // STORE rule: base.fld = from feeds FLDPOINTSTO of every new object.
    {
      auto StoreUses = Nodes[N].StoreUses;
      for (auto [FieldRaw, Src] : StoreUses)
        Delta.forEach([&](uint32_t Object) {
          addEdge(Src, fieldNode(Object, FieldId(FieldRaw)));
        });
    }
    // VCALL rule: dispatch on every new receiver object.
    {
      auto CallUses = Nodes[N].CallUses;
      uint32_t CtxRaw = Nodes[N].CtxRaw;
      for (uint32_t SiteRaw : CallUses)
        Delta.forEach([&](uint32_t Object) {
          dispatch(SiteId(SiteRaw), CtxId(CtxRaw), Object);
        });
    }
    // Copy edges (MOVE / INTERPROCASSIGN / field flow): one batched union
    // of the whole delta per edge.  Delta is a drained local, so a
    // self-edge target can never alias it.
    {
      SortedIdSet Succ = Nodes[N].Succ; // Snapshot: edges may be added.
      for (uint32_t Dst : Succ)
        unionInto(Dst, Delta);
    }
    // Type-filtered edges (checked casts, catch clauses) and their
    // complements (uncaught-exception propagation): materialize the
    // admitted subset of the delta once per edge, then one batched union.
    for (bool Negated : {false, true}) {
      const auto &Source =
          Negated ? Nodes[N].NegFilterSucc : Nodes[N].FilterSucc;
      if (Source.empty())
        continue;
      std::vector<uint64_t> Filtered = Source; // Snapshot.
      for (uint64_t Packed : Filtered) {
        uint32_t Dst = static_cast<uint32_t>(Packed >> 32);
        uint32_t FilterTypeRaw = static_cast<uint32_t>(Packed);
        FilterScratch.clear();
        Delta.forEach([&](uint32_t Object) {
          if (castAdmits(Object, FilterTypeRaw) != Negated)
            FilterScratch.push_back(Object);
        });
        unionInto(Dst, FilterScratch);
      }
    }
  }

  // --- Call handling --------------------------------------------------------

  void recordCallEdge(SiteId Site, CtxId CallerCtx, MethodId Callee,
                      CtxId CalleeCtx) {
    if (CallEdgeProjection.insert(pack(Site.index(), Callee.index())).second)
      SiteTargets[Site.index()].push_back(Callee.index());
    if (Opts.KeepTuples)
      CallGraphTuples.insert(
          {Site.index(), CallerCtx.index(), Callee.index(), CalleeCtx.index()});
  }

  void bindArguments(const SiteInfo &Site, CtxId CallerCtx, MethodId Callee,
                     CtxId CalleeCtx) {
    const MethodInfo &Target = Prog.method(Callee);
    size_t NumArgs = std::min(Site.Actuals.size(), Target.Formals.size());
    for (size_t Index = 0; Index < NumArgs; ++Index)
      addEdge(varNode(Site.Actuals[Index], CallerCtx),
              varNode(Target.Formals[Index], CalleeCtx));
    if (Site.Result.isValid() && Target.Return.isValid())
      addEdge(varNode(Target.Return, CalleeCtx),
              varNode(Site.Result, CallerCtx));

    // Exception flow: objects escaping the callee either bind to the
    // site's catch variable (subtype of the catch type) or escape the
    // caller as well (complement).  Without a catch clause, everything
    // escapes upward.
    uint32_t CalleeThrow = throwNode(Callee, CalleeCtx);
    if (Site.CatchVar.isValid()) {
      addFilteredEdge(CalleeThrow, varNode(Site.CatchVar, CallerCtx),
                      Site.CatchType);
      addFilteredEdge(CalleeThrow, throwNode(Site.InMethod, CallerCtx),
                      Site.CatchType, /*Negated=*/true);
    } else {
      addEdge(CalleeThrow, throwNode(Site.InMethod, CallerCtx));
    }
  }

  void dispatch(SiteId SiteHandle, CtxId CallerCtx, uint32_t Object) {
    const SiteInfo &Site = Prog.site(SiteHandle);
    auto [HeapRaw, HCtxRaw] = Objects[Object];
    HeapId Heap(HeapRaw);
    MethodId Callee = Prog.lookup(Prog.heap(Heap).Type, Site.Sig);
    if (!Callee.isValid())
      return; // No method matches the signature: dispatch failure.

    CtxId CalleeCtx = Policy.merge(Heap, HCtxId(HCtxRaw), SiteHandle, Callee,
                                   CallerCtx, Ctxs);
    recordCallEdge(SiteHandle, CallerCtx, Callee, CalleeCtx);
    enqueueReachable(Callee, CalleeCtx);
    addObjectTo(varNode(Prog.method(Callee).This, CalleeCtx), Object);
    bindArguments(Site, CallerCtx, Callee, CalleeCtx);
  }

  // --- Method instantiation --------------------------------------------------

  void enqueueReachable(MethodId Method, CtxId Ctx) {
    if (!ReachableSet.insert(pack(Method.index(), Ctx.index())).second)
      return;
    ReachableList.push_back({Method.index(), Ctx.index()});
    PendingReachable.push_back({Method.index(), Ctx.index()});
    ApproxBytes += 2 * sizeof(ReachableList[0]) + IndexEntryBytes;
  }

  /// Applies the body of \p Method under \p Ctx: the ALLOC/MOVE rules fire
  /// immediately; LOAD/STORE/VCALL register trigger lists on their base
  /// variables; static calls resolve on the spot.
  void instantiate(MethodId Method, CtxId Ctx) {
    const MethodInfo &Info = Prog.method(Method);
    for (const Instruction &Instr : Info.Body) {
      switch (Instr.Kind) {
      case InstrKind::Alloc: {
        HCtxId HCtx = Policy.record(Instr.Heap, Ctx, Ctxs);
        addObjectTo(varNode(Instr.To, Ctx), getObject(Instr.Heap, HCtx));
        break;
      }
      case InstrKind::Move:
        addEdge(varNode(Instr.From, Ctx), varNode(Instr.To, Ctx));
        break;
      case InstrKind::Cast:
        if (Opts.FilterCasts)
          addFilteredEdge(varNode(Instr.From, Ctx), varNode(Instr.To, Ctx),
                          Instr.CastType);
        else
          addEdge(varNode(Instr.From, Ctx), varNode(Instr.To, Ctx));
        break;
      case InstrKind::Load: {
        uint32_t Base = varNode(Instr.Base, Ctx);
        uint32_t Dst = varNode(Instr.To, Ctx);
        Nodes[Base].LoadUses.push_back({Instr.Field.index(), Dst});
        ApproxBytes += sizeof(Nodes[Base].LoadUses[0]);
        SortedIdSet Snapshot = Nodes[Base].Pts.toVector();
        for (uint32_t Object : Snapshot)
          addEdge(fieldNode(Object, Instr.Field), Dst);
        break;
      }
      case InstrKind::Store: {
        uint32_t Base = varNode(Instr.Base, Ctx);
        uint32_t Src = varNode(Instr.From, Ctx);
        Nodes[Base].StoreUses.push_back({Instr.Field.index(), Src});
        ApproxBytes += sizeof(Nodes[Base].StoreUses[0]);
        SortedIdSet Snapshot = Nodes[Base].Pts.toVector();
        for (uint32_t Object : Snapshot)
          addEdge(Src, fieldNode(Object, Instr.Field));
        break;
      }
      case InstrKind::SLoad:
        addEdge(staticFieldNode(Instr.Field), varNode(Instr.To, Ctx));
        break;
      case InstrKind::SStore:
        addEdge(varNode(Instr.From, Ctx), staticFieldNode(Instr.Field));
        break;
      case InstrKind::Throw:
        addEdge(varNode(Instr.From, Ctx), throwNode(Method, Ctx));
        break;
      case InstrKind::Call: {
        const SiteInfo &Site = Prog.site(Instr.Site);
        if (Site.IsStatic) {
          MethodId Callee = Site.StaticTarget;
          CtxId CalleeCtx = Policy.mergeStatic(Instr.Site, Callee, Ctx, Ctxs);
          recordCallEdge(Instr.Site, Ctx, Callee, CalleeCtx);
          enqueueReachable(Callee, CalleeCtx);
          bindArguments(Site, Ctx, Callee, CalleeCtx);
          break;
        }
        uint32_t Base = varNode(Site.Base, Ctx);
        Nodes[Base].CallUses.push_back(Instr.Site.index());
        ApproxBytes += sizeof(uint32_t);
        SortedIdSet Snapshot = Nodes[Base].Pts.toVector();
        for (uint32_t Object : Snapshot)
          dispatch(Instr.Site, Ctx, Object);
        break;
      }
      }
    }
  }

  // --- Result assembly ---------------------------------------------------------

  PointsToResult finish() {
    // Counters are accumulated in the existing locals (Pops, TotalTuples,
    // ...) and published once here — the hot loop pays nothing for them.
    TRACE_COUNTER("solve.runs", 1);
    TRACE_COUNTER("solve.pops", Pops);
    TRACE_COUNTER("solve.tuples", TotalTuples);
    TRACE_COUNTER("solve.budget_checks", BudgetChecks);
    TRACE_COUNTER("solve.reachable_method_contexts", ReachableList.size());
    TRACE_COUNTER("solve.call_graph_edges", CallEdgeProjection.size());
    TRACE_COUNTER("solve.nodes", Nodes.size());
    TRACE_COUNTER("solve.objects", Objects.size());

    PointsToResult Result;
    Result.Status = Status;
    Result.AnalysisName = Policy.name();

    Result.VarHeaps.resize(Prog.numVars());
    Result.MethodReachable.assign(Prog.numMethods(), false);
    Result.SiteTargets.resize(Prog.numSites());
    for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
      Result.SiteTargets[SiteIndex] = std::move(SiteTargets[SiteIndex]);
      setNormalize(Result.SiteTargets[SiteIndex]);
    }

    Result.MethodThrows.resize(Prog.numMethods());
    uint64_t VarTuples = 0;
    uint64_t FieldTuples = 0;
    uint64_t ThrowTuples = 0;
    uint64_t StaticTuples = 0;
    uint64_t DenseSets = 0;
    for (uint32_t N = 0; N < Nodes.size(); ++N) {
      const Node &NodeRef = Nodes[N];
      DenseSets += NodeRef.Pts.isDense() ? 1 : 0;
      switch (NodeKind[N]) {
      case NodeKindVar: {
        VarTuples += NodeRef.Pts.size();
        uint32_t VarRaw = static_cast<uint32_t>(NodeKey[N] >> 32);
        SortedIdSet &Heaps = Result.VarHeaps[VarRaw];
        for (uint32_t Object : NodeRef.Pts)
          Heaps.push_back(Objects[Object].first);
        if (Opts.KeepTuples)
          for (uint32_t Object : NodeRef.Pts)
            Result.VarPointsTo.push_back({VarRaw, NodeRef.CtxRaw,
                                          Objects[Object].first,
                                          Objects[Object].second});
        break;
      }
      case NodeKindField: {
        FieldTuples += NodeRef.Pts.size();
        uint32_t BaseObject = static_cast<uint32_t>(NodeKey[N] >> 32);
        uint32_t FieldRaw = static_cast<uint32_t>(NodeKey[N]);
        uint64_t Key = pack(Objects[BaseObject].first, FieldRaw);
        SortedIdSet &Heaps = Result.FieldHeaps[Key];
        for (uint32_t Object : NodeRef.Pts)
          Heaps.push_back(Objects[Object].first);
        if (Opts.KeepTuples)
          for (uint32_t Object : NodeRef.Pts)
            Result.FieldPointsTo.push_back(
                {Objects[BaseObject].first, Objects[BaseObject].second,
                 FieldRaw, Objects[Object].first, Objects[Object].second});
        break;
      }
      case NodeKindStaticField: {
        StaticTuples += NodeRef.Pts.size();
        uint32_t FieldRaw = static_cast<uint32_t>(NodeKey[N]);
        SortedIdSet &Heaps = Result.StaticFieldHeaps[FieldRaw];
        for (uint32_t Object : NodeRef.Pts)
          Heaps.push_back(Objects[Object].first);
        if (Opts.KeepTuples)
          for (uint32_t Object : NodeRef.Pts)
            Result.StaticFieldPointsTo.push_back(
                {FieldRaw, Objects[Object].first, Objects[Object].second});
        break;
      }
      case NodeKindThrow: {
        ThrowTuples += NodeRef.Pts.size();
        uint32_t MethodRaw = static_cast<uint32_t>(NodeKey[N] >> 32);
        SortedIdSet &Heaps = Result.MethodThrows[MethodRaw];
        for (uint32_t Object : NodeRef.Pts)
          Heaps.push_back(Objects[Object].first);
        if (Opts.KeepTuples)
          for (uint32_t Object : NodeRef.Pts)
            Result.ThrowPointsTo.push_back({MethodRaw, NodeRef.CtxRaw,
                                            Objects[Object].first,
                                            Objects[Object].second});
        break;
      }
      }
    }
    for (SortedIdSet &Heaps : Result.VarHeaps)
      setNormalize(Heaps);
    for (auto &[Key, Heaps] : Result.FieldHeaps)
      setNormalize(Heaps);
    for (auto &[Key, Heaps] : Result.StaticFieldHeaps)
      setNormalize(Heaps);
    for (SortedIdSet &Heaps : Result.MethodThrows)
      setNormalize(Heaps);

    for (auto [MethodRaw, CtxRaw] : ReachableList) {
      Result.MethodReachable[MethodRaw] = true;
      if (Opts.KeepTuples)
        Result.Reachable.push_back({MethodRaw, CtxRaw});
    }
    if (Opts.KeepTuples)
      Result.CallGraph.assign(CallGraphTuples.begin(), CallGraphTuples.end());

    Result.Stats.Seconds = Clock.seconds();
    Result.Stats.VarPointsToTuples = VarTuples;
    Result.Stats.FieldPointsToTuples = FieldTuples;
    Result.Stats.ThrowPointsToTuples = ThrowTuples;
    Result.Stats.StaticFieldTuples = StaticTuples;
    uint64_t NumFieldNodes = FieldNodeIndex.size();
    Result.Stats.NumVarNodes = VarNodeIndex.size();
    Result.Stats.NumFieldNodes = NumFieldNodes;
    Result.Stats.NumObjects = Objects.size();
    Result.Stats.NumContexts = Ctxs.numContexts();
    Result.Stats.NumHeapContexts = Ctxs.numHeapContexts();
    Result.Stats.ReachableMethodContexts = ReachableList.size();
    Result.Stats.CallGraphEdges = CallEdgeProjection.size();
    Result.Stats.WorklistPops = Pops;
    Result.Stats.ApproxBytes = ApproxBytes;
    Result.Stats.BatchUnions = BatchUnions;
    Result.Stats.ElementProbes = ElementProbes;
    Result.Stats.DensePointsToSets = DenseSets;
    return Result;
  }

  const Program &Prog;
  const ContextPolicy &Policy;
  ContextTable &Ctxs;
  SolverOptions Opts;
  Timer Clock;

  std::vector<Node> Nodes;
  std::vector<uint8_t> NodeKind;
  std::vector<uint64_t> NodeKey;
  std::unordered_map<uint64_t, uint32_t> VarNodeIndex;
  std::unordered_map<uint64_t, uint32_t> FieldNodeIndex;
  std::unordered_map<uint32_t, uint32_t> StaticFieldNodeIndex;
  std::unordered_map<uint64_t, uint32_t> ThrowNodeIndex;

  std::unordered_map<uint64_t, uint32_t> ObjIndex;
  std::vector<std::pair<uint32_t, uint32_t>> Objects;

  std::vector<uint32_t> Worklist;
  std::vector<std::pair<uint32_t, uint32_t>> PendingReachable;
  std::unordered_set<uint64_t> ReachableSet;
  std::vector<std::pair<uint32_t, uint32_t>> ReachableList;

  std::unordered_set<uint64_t> CallEdgeProjection;
  std::vector<SortedIdSet> SiteTargets =
      std::vector<SortedIdSet>(Prog.numSites());
  std::set<std::array<uint32_t, 4>> CallGraphTuples;

  /// Batched-propagation scratch, reused across unionInto / addFilteredEdge
  /// calls so the hot loop performs no per-edge allocation once warm.
  SortedIdSet UnionScratch;
  SortedIdSet FilterScratch;

  uint64_t TotalTuples = 0;
  uint64_t ApproxBytes = 0;
  uint64_t Pops = 0;
  uint64_t BudgetChecks = 0;
  uint64_t BatchUnions = 0;   ///< unionInto invocations (whole-delta merges).
  uint64_t ElementProbes = 0; ///< Single-element addObjectTo attempts.
  SolveStatus Status = SolveStatus::Completed;
};

} // namespace

PointsToResult intro::solvePointsTo(const Program &Prog,
                                    const ContextPolicy &Policy,
                                    ContextTable &Table,
                                    const SolverOptions &Options) {
  return Solver(Prog, Policy, Table, Options).run();
}
