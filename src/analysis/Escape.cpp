//===- analysis/Escape.cpp - Escape analysis client -----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"

#include "analysis/Result.h"
#include "ir/Program.h"

using namespace intro;

EscapeResult intro::computeEscape(const Program &Prog,
                                  const PointsToResult &Result) {
  EscapeResult Escape;
  Escape.Escapes.assign(Prog.numHeaps(), false);

  auto MarkAll = [&](const SortedIdSet &Heaps) {
    for (uint32_t HeapRaw : Heaps)
      Escape.Escapes[HeapRaw] = true;
  };

  // Stored into any object field: the holder may outlive the activation.
  for (const auto &[Key, Heaps] : Result.FieldHeaps)
    MarkAll(Heaps);
  // Stored into a static field: globally visible.
  for (const auto &[FieldRaw, Heaps] : Result.StaticFieldHeaps)
    MarkAll(Heaps);
  // Escaping via an exception.
  for (const SortedIdSet &Heaps : Result.MethodThrows)
    MarkAll(Heaps);

  // Observed by a variable of a method other than the allocating one
  // (covers argument passing, returns, and catches).  Receiver (`this`)
  // variables are exempt: merely invoking a method on an object does not
  // leak it — any onward flow inside the callee goes through other
  // variables or fields, which are checked.
  for (uint32_t VarRaw = 0; VarRaw < Prog.numVars(); ++VarRaw) {
    MethodId Owner = Prog.var(VarId(VarRaw)).Owner;
    if (Prog.method(Owner).This == VarId(VarRaw))
      continue;
    for (uint32_t HeapRaw : Result.pointsTo(VarId(VarRaw)))
      if (Prog.heap(HeapId(HeapRaw)).InMethod != Owner)
        Escape.Escapes[HeapRaw] = true;
  }

  for (uint32_t HeapRaw = 0; HeapRaw < Prog.numHeaps(); ++HeapRaw) {
    if (!Result.isReachable(Prog.heap(HeapId(HeapRaw)).InMethod))
      continue;
    ++Escape.ReachableSites;
    if (Escape.Escapes[HeapRaw])
      ++Escape.EscapingSites;
  }
  return Escape;
}
