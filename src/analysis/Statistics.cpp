//===- analysis/Statistics.cpp - Context-growth diagnostics ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Statistics.h"

#include "analysis/Result.h"
#include "ir/Program.h"

#include <algorithm>
#include <map>

using namespace intro;

namespace {

std::vector<std::pair<uint32_t, uint64_t>>
topN(const std::map<uint32_t, uint64_t> &Counts, size_t TopN) {
  std::vector<std::pair<uint32_t, uint64_t>> All(Counts.begin(),
                                                 Counts.end());
  // Sort by count descending, method id ascending for determinism.
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (All.size() > TopN)
    All.resize(TopN);
  return All;
}

} // namespace

ContextStatistics
intro::computeContextStatistics(const Program &Prog,
                                const PointsToResult &Result, size_t TopN) {
  ContextStatistics Stats;

  std::map<uint32_t, uint64_t> ContextsPerMethod;
  for (const auto &Row : Result.Reachable)
    ++ContextsPerMethod[Row[0]];

  std::map<uint32_t, uint64_t> TuplesPerMethod;
  for (const auto &Row : Result.VarPointsTo)
    ++TuplesPerMethod[Prog.var(VarId(Row[0])).Owner.index()];

  Stats.ReachableMethods = ContextsPerMethod.size();
  for (const auto &[MethodRaw, Count] : ContextsPerMethod) {
    Stats.TotalMethodContexts += Count;
    Stats.MaxContextsPerMethod = std::max(Stats.MaxContextsPerMethod, Count);
  }
  if (Stats.ReachableMethods > 0)
    Stats.MeanContextsPerMethod =
        static_cast<double>(Stats.TotalMethodContexts) /
        static_cast<double>(Stats.ReachableMethods);
  Stats.TopByContexts = topN(ContextsPerMethod, TopN);
  Stats.TopByTuples = topN(TuplesPerMethod, TopN);
  return Stats;
}

void intro::printContextStatistics(const Program &Prog,
                                   const ContextStatistics &Stats,
                                   std::ostream &Out) {
  Out << "reachable methods:      " << Stats.ReachableMethods << "\n"
      << "method-context pairs:   " << Stats.TotalMethodContexts << "\n"
      << "mean contexts/method:   " << Stats.MeanContextsPerMethod << "\n"
      << "max contexts/method:    " << Stats.MaxContextsPerMethod << "\n";
  Out << "top methods by contexts:\n";
  for (auto [MethodRaw, Count] : Stats.TopByContexts)
    Out << "  " << Prog.typeName(Prog.method(MethodId(MethodRaw)).Owner)
        << "." << Prog.methodName(MethodId(MethodRaw)) << ": " << Count
        << "\n";
  Out << "top methods by var-points-to tuples:\n";
  for (auto [MethodRaw, Count] : Stats.TopByTuples)
    Out << "  " << Prog.typeName(Prog.method(MethodId(MethodRaw)).Owner)
        << "." << Prog.methodName(MethodId(MethodRaw)) << ": " << Count
        << "\n";
}
