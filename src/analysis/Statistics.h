//===- analysis/Statistics.h - Context-growth diagnostics -------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics for the failure mode the paper studies: which methods
/// accumulate how many contexts, and which carry the bulk of the
/// VARPOINTSTO tuples.  This is the tool one reaches for when a deep
/// analysis blows up — it points straight at the program elements the
/// introspection heuristics should be catching.
///
/// Requires a result produced with SolverOptions::KeepTuples.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_STATISTICS_H
#define ANALYSIS_STATISTICS_H

#include <cstdint>
#include <ostream>
#include <utility>
#include <vector>

namespace intro {

class PointsToResult;
class Program;

/// Context-growth statistics of one analysis run.
struct ContextStatistics {
  uint64_t ReachableMethods = 0;
  uint64_t TotalMethodContexts = 0; ///< |REACHABLE| (method, ctx) pairs.
  uint64_t MaxContextsPerMethod = 0;
  double MeanContextsPerMethod = 0.0;
  /// Methods with the most contexts: (raw MethodId, context count), sorted
  /// descending.
  std::vector<std::pair<uint32_t, uint64_t>> TopByContexts;
  /// Methods whose locals carry the most context-sensitive VARPOINTSTO
  /// tuples: (raw MethodId, tuple count), sorted descending.
  std::vector<std::pair<uint32_t, uint64_t>> TopByTuples;
};

/// Computes the statistics for \p Result (which must have been produced
/// with KeepTuples, otherwise counts are zero), keeping the \p TopN worst
/// methods per category.
ContextStatistics computeContextStatistics(const Program &Prog,
                                           const PointsToResult &Result,
                                           size_t TopN = 10);

/// Pretty-prints \p Stats with method names resolved.
void printContextStatistics(const Program &Prog,
                            const ContextStatistics &Stats,
                            std::ostream &Out);

} // namespace intro

#endif // ANALYSIS_STATISTICS_H
