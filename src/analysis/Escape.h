//===- analysis/Escape.h - Escape analysis client ---------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic client built on the points-to substrate: method-escape
/// analysis.  An object (allocation site) *escapes* its allocating method
/// if it can be observed outside an activation of that method — it is
/// stored into an object field or a static field, thrown, or flows into a
/// variable of a different method (argument passing, return, catch).
/// Non-escaping objects are candidates for stack allocation or scalar
/// replacement.
///
/// Precision of the underlying points-to analysis translates directly into
/// more non-escaping objects, which makes this a good end-to-end precision
/// probe alongside the paper's three metrics.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_ESCAPE_H
#define ANALYSIS_ESCAPE_H

#include <cstdint>
#include <vector>

namespace intro {

class PointsToResult;
class Program;

/// Per-allocation-site escape classification.
struct EscapeResult {
  /// Indexed by raw HeapId: true if the object may escape its allocating
  /// method.  Objects of unreachable methods are vacuously non-escaping.
  std::vector<bool> Escapes;
  /// Allocation sites in reachable methods.
  uint64_t ReachableSites = 0;
  /// ... of which may escape.
  uint64_t EscapingSites = 0;

  bool escapes(uint32_t HeapRaw) const { return Escapes[HeapRaw]; }
  uint64_t captured() const { return ReachableSites - EscapingSites; }
};

/// Classifies every allocation site of \p Prog using \p Result.
EscapeResult computeEscape(const Program &Prog, const PointsToResult &Result);

} // namespace intro

#endif // ANALYSIS_ESCAPE_H
