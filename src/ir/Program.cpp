//===- ir/Program.cpp - Whole-program IR container ------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <cassert>

using namespace intro;

TypeId Program::addType(std::string_view Name, TypeId Super) {
  assert(!Finalized && "program already finalized");
  assert((!Super.isValid() || Super.index() < Types.size()) &&
         "superclass must be added before subclass");
  TypeInfo Info;
  Info.Name = Names.intern(Name);
  Info.Super = Super;
  Types.push_back(std::move(Info));
  return TypeId(static_cast<uint32_t>(Types.size() - 1));
}

FieldId Program::addField(std::string_view Name, TypeId Owner) {
  assert(!Finalized && "program already finalized");
  FieldInfo Info;
  Info.Name = Names.intern(Name);
  Info.Owner = Owner;
  Fields.push_back(Info);
  FieldId Id(static_cast<uint32_t>(Fields.size() - 1));
  Types[Owner.index()].Fields.push_back(Id);
  return Id;
}

SigId Program::addSignature(std::string_view Name, uint32_t Arity) {
  uint32_t NameHandle = Names.intern(Name);
  // Signatures are deduplicated by (name, arity); linear scan is fine since
  // builders call this once per distinct signature via their own caches.
  for (size_t Index = 0; Index < Sigs.size(); ++Index)
    if (Sigs[Index].Name == NameHandle && Sigs[Index].Arity == Arity)
      return SigId(static_cast<uint32_t>(Index));
  assert(!Finalized && "program already finalized");
  Sigs.push_back(SigInfo{NameHandle, Arity});
  return SigId(static_cast<uint32_t>(Sigs.size() - 1));
}

MethodId Program::addMethod(std::string_view Name, TypeId Owner, SigId Sig,
                            bool IsStatic) {
  assert(!Finalized && "program already finalized");
  MethodInfo Info;
  Info.Name = Names.intern(Name);
  Info.Owner = Owner;
  Info.Sig = Sig;
  Info.IsStatic = IsStatic;
  Methods.push_back(std::move(Info));
  MethodId Id(static_cast<uint32_t>(Methods.size() - 1));
  if (!IsStatic) {
    auto [It, Inserted] =
        Types[Owner.index()].DeclaredMethods.emplace(Sig.index(), Id);
    (void)It;
    assert(Inserted && "duplicate virtual method signature in class");
  }
  return Id;
}

VarId Program::addVar(std::string_view Name, MethodId Owner) {
  assert(!Finalized && "program already finalized");
  VarInfo Info;
  Info.Name = Names.intern(Name);
  Info.Owner = Owner;
  Vars.push_back(Info);
  VarId Id(static_cast<uint32_t>(Vars.size() - 1));
  Methods[Owner.index()].Locals.push_back(Id);
  return Id;
}

HeapId Program::addHeap(std::string_view Name, TypeId Type,
                        MethodId InMethod) {
  assert(!Finalized && "program already finalized");
  HeapInfo Info;
  Info.Name = Names.intern(Name);
  Info.Type = Type;
  Info.InMethod = InMethod;
  Heaps.push_back(Info);
  return HeapId(static_cast<uint32_t>(Heaps.size() - 1));
}

SiteId Program::addSite(SiteInfo Site) {
  assert(!Finalized && "program already finalized");
  Sites.push_back(std::move(Site));
  return SiteId(static_cast<uint32_t>(Sites.size() - 1));
}

void Program::finalize() {
  if (Finalized)
    return;
  Finalized = true;

  // Depths: parents are guaranteed to precede children (checked in addType).
  for (TypeInfo &Info : Types)
    Info.Depth = Info.Super.isValid() ? Types[Info.Super.index()].Depth + 1 : 0;

  // Flattened dispatch tables, root-first so overrides win.
  for (uint32_t TypeIndex = 0; TypeIndex < Types.size(); ++TypeIndex) {
    // Collect the superclass chain root-first.
    std::vector<uint32_t> Chain;
    for (TypeId Cursor(TypeIndex); Cursor.isValid();
         Cursor = Types[Cursor.index()].Super)
      Chain.push_back(Cursor.index());
    for (auto It = Chain.rbegin(); It != Chain.rend(); ++It)
      for (const auto &[SigRaw, Method] : Types[*It].DeclaredMethods)
        DispatchCache[dispatchKey(TypeId(TypeIndex), SigId(SigRaw))] = Method;
  }
}

bool Program::isSubtypeOf(TypeId Sub, TypeId Super) const {
  assert(Finalized && "finalize() must run before subtype queries");
  uint32_t SuperDepth = Types[Super.index()].Depth;
  TypeId Cursor = Sub;
  while (Cursor.isValid() && Types[Cursor.index()].Depth > SuperDepth)
    Cursor = Types[Cursor.index()].Super;
  return Cursor == Super;
}

MethodId Program::lookup(TypeId Type, SigId Sig) const {
  assert(Finalized && "finalize() must run before dispatch");
  auto It = DispatchCache.find(dispatchKey(Type, Sig));
  return It == DispatchCache.end() ? MethodId::invalid() : It->second;
}

size_t Program::numInstructions() const {
  size_t Total = 0;
  for (const MethodInfo &Info : Methods)
    Total += Info.Body.size();
  return Total;
}
