//===- ir/Validator.cpp - Structural IR well-formedness -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Validator.h"

#include "ir/Program.h"

#include <string>

using namespace intro;

namespace {

/// Collects violations with a shared formatting helper.
class Checker {
public:
  explicit Checker(const Program &Prog) : Prog(Prog) {}

  std::vector<std::string> run() {
    checkEntries();
    for (uint32_t Index = 0; Index < Prog.numMethods(); ++Index)
      checkMethod(MethodId(Index));
    for (uint32_t Index = 0; Index < Prog.numSites(); ++Index)
      checkSite(SiteId(Index));
    for (uint32_t Index = 0; Index < Prog.numHeaps(); ++Index)
      checkHeap(HeapId(Index));
    return std::move(Errors);
  }

private:
  void report(std::string Message) { Errors.push_back(std::move(Message)); }

  void checkEntries() {
    if (Prog.entries().empty())
      report("program has no entry method");
    for (MethodId Entry : Prog.entries()) {
      if (!Entry.isValid() || Entry.index() >= Prog.numMethods()) {
        report("invalid entry method id");
        continue;
      }
      if (!Prog.method(Entry).IsStatic)
        report("entry method '" + std::string(Prog.methodName(Entry)) +
               "' must be static");
    }
  }

  void checkVarIn(VarId Var, MethodId Method, const char *Role) {
    if (!Var.isValid() || Var.index() >= Prog.numVars()) {
      report(std::string("invalid variable used as ") + Role + " in method '" +
             std::string(Prog.methodName(Method)) + "'");
      return;
    }
    if (Prog.var(Var).Owner != Method)
      report("variable '" + std::string(Prog.varName(Var)) + "' used as " +
             Role + " outside its owning method, in '" +
             std::string(Prog.methodName(Method)) + "'");
  }

  void checkMethod(MethodId Method) {
    const MethodInfo &Info = Prog.method(Method);
    if (Info.Formals.size() != Prog.signature(Info.Sig).Arity)
      report("method '" + std::string(Prog.methodName(Method)) +
             "' formal count does not match its signature arity");
    if (Info.IsStatic && Info.This.isValid())
      report("static method '" + std::string(Prog.methodName(Method)) +
             "' must not have a `this` variable");
    if (!Info.IsStatic && !Info.This.isValid())
      report("virtual method '" + std::string(Prog.methodName(Method)) +
             "' is missing its `this` variable");

    for (const Instruction &Instr : Info.Body) {
      switch (Instr.Kind) {
      case InstrKind::Alloc:
        checkVarIn(Instr.To, Method, "alloc destination");
        if (!Instr.Heap.isValid() || Instr.Heap.index() >= Prog.numHeaps())
          report("alloc with invalid heap id in '" +
                 std::string(Prog.methodName(Method)) + "'");
        else if (Prog.heap(Instr.Heap).InMethod != Method)
          report("alloc site recorded in a different method than its "
                 "instruction, in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      case InstrKind::Move:
        checkVarIn(Instr.To, Method, "move destination");
        checkVarIn(Instr.From, Method, "move source");
        break;
      case InstrKind::Cast:
        checkVarIn(Instr.To, Method, "cast destination");
        checkVarIn(Instr.From, Method, "cast source");
        if (!Instr.CastType.isValid() ||
            Instr.CastType.index() >= Prog.numTypes())
          report("cast to invalid type in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      case InstrKind::Load:
        checkVarIn(Instr.To, Method, "load destination");
        checkVarIn(Instr.Base, Method, "load base");
        if (!Instr.Field.isValid() || Instr.Field.index() >= Prog.numFields())
          report("load of invalid field in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      case InstrKind::Store:
        checkVarIn(Instr.Base, Method, "store base");
        checkVarIn(Instr.From, Method, "store source");
        if (!Instr.Field.isValid() || Instr.Field.index() >= Prog.numFields())
          report("store to invalid field in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      case InstrKind::SLoad:
        checkVarIn(Instr.To, Method, "static load destination");
        if (!Instr.Field.isValid() || Instr.Field.index() >= Prog.numFields())
          report("static load of invalid field in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      case InstrKind::SStore:
        checkVarIn(Instr.From, Method, "static store source");
        if (!Instr.Field.isValid() || Instr.Field.index() >= Prog.numFields())
          report("static store to invalid field in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      case InstrKind::Throw:
        checkVarIn(Instr.From, Method, "thrown value");
        break;
      case InstrKind::Call:
        if (!Instr.Site.isValid() || Instr.Site.index() >= Prog.numSites())
          report("call with invalid site id in '" +
                 std::string(Prog.methodName(Method)) + "'");
        else if (Prog.site(Instr.Site).InMethod != Method)
          report("call site recorded in a different method than its "
                 "instruction, in '" +
                 std::string(Prog.methodName(Method)) + "'");
        break;
      }
    }
  }

  void checkSite(SiteId Site) {
    const SiteInfo &Info = Prog.site(Site);
    MethodId Caller = Info.InMethod;
    if (Info.Actuals.size() != Prog.signature(Info.Sig).Arity)
      report("call site '" + std::string(Prog.siteName(Site)) +
             "' actual count does not match signature arity");
    for (VarId Actual : Info.Actuals)
      checkVarIn(Actual, Caller, "actual argument");
    if (Info.Result.isValid())
      checkVarIn(Info.Result, Caller, "call result");
    if (Info.CatchVar.isValid()) {
      checkVarIn(Info.CatchVar, Caller, "catch variable");
      if (!Info.CatchType.isValid() ||
          Info.CatchType.index() >= Prog.numTypes())
        report("call site '" + std::string(Prog.siteName(Site)) +
               "' has a catch clause with an invalid type");
    }
    if (Info.IsStatic) {
      if (!Info.StaticTarget.isValid() ||
          Info.StaticTarget.index() >= Prog.numMethods())
        report("static call site '" + std::string(Prog.siteName(Site)) +
               "' has no valid target");
      else if (!Prog.method(Info.StaticTarget).IsStatic)
        report("static call site '" + std::string(Prog.siteName(Site)) +
               "' targets a virtual method");
    } else {
      checkVarIn(Info.Base, Caller, "receiver");
    }
  }

  void checkHeap(HeapId Heap) {
    const HeapInfo &Info = Prog.heap(Heap);
    if (!Info.Type.isValid() || Info.Type.index() >= Prog.numTypes())
      report("allocation site '" + std::string(Prog.heapName(Heap)) +
             "' has an invalid type");
  }

  const Program &Prog;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> intro::validateProgram(const Program &Prog) {
  return Checker(Prog).run();
}
