//===- ir/ProgramBuilder.cpp - Convenient IR construction -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/ProgramBuilder.h"

#include <cassert>

using namespace intro;

VarId MethodBuilder::thisVar() const {
  const MethodInfo &Info = Parent->Prog.method(Method);
  assert(!Info.IsStatic && "static methods have no `this`");
  return Info.This;
}

VarId MethodBuilder::formal(uint32_t Index) const {
  const MethodInfo &Info = Parent->Prog.method(Method);
  assert(Index < Info.Formals.size() && "formal index out of range");
  return Info.Formals[Index];
}

VarId MethodBuilder::returnVar() {
  MethodInfo &Info = Parent->Prog.method(Method);
  if (!Info.Return.isValid())
    Info.Return = Parent->Prog.addVar("$ret", Method);
  return Info.Return;
}

VarId MethodBuilder::local(std::string_view Name) {
  return Parent->Prog.addVar(Name, Method);
}

HeapId MethodBuilder::alloc(VarId To, TypeId Type) {
  Program &P = Parent->Prog;
  std::string Label(P.methodName(Method));
  Label += "/new ";
  Label += P.typeName(Type);
  Label += '/';
  Label += std::to_string(Parent->NextHeapIndex++);
  HeapId Heap = P.addHeap(Label, Type, Method);
  P.method(Method).Body.push_back(Instruction::makeAlloc(To, Heap));
  return Heap;
}

void MethodBuilder::move(VarId To, VarId From) {
  Parent->Prog.method(Method).Body.push_back(Instruction::makeMove(To, From));
}

void MethodBuilder::cast(VarId To, VarId From, TypeId Type) {
  Parent->Prog.method(Method).Body.push_back(
      Instruction::makeCast(To, From, Type));
}

void MethodBuilder::load(VarId To, VarId Base, FieldId Field) {
  Parent->Prog.method(Method).Body.push_back(
      Instruction::makeLoad(To, Base, Field));
}

void MethodBuilder::store(VarId Base, FieldId Field, VarId From) {
  Parent->Prog.method(Method).Body.push_back(
      Instruction::makeStore(Base, Field, From));
}

void MethodBuilder::sload(VarId To, FieldId Field) {
  Parent->Prog.method(Method).Body.push_back(
      Instruction::makeSLoad(To, Field));
}

void MethodBuilder::sstore(FieldId Field, VarId From) {
  Parent->Prog.method(Method).Body.push_back(
      Instruction::makeSStore(Field, From));
}

void MethodBuilder::throwStmt(VarId From) {
  Parent->Prog.method(Method).Body.push_back(Instruction::makeThrow(From));
}

void MethodBuilder::attachCatch(SiteId Site, TypeId Type, VarId Var) {
  // Sites are immutable once added except for the catch clause, which the
  // builder fills in right after emitting the call.
  SiteInfo &Info = Parent->Prog.siteMutable(Site);
  assert(Info.InMethod == Method && "catch attached to foreign site");
  Info.CatchType = Type;
  Info.CatchVar = Var;
}

SiteId MethodBuilder::vcall(VarId Result, VarId Base, std::string_view Name,
                            const std::vector<VarId> &Actuals) {
  Program &P = Parent->Prog;
  SiteInfo Site;
  std::string Label(P.methodName(Method));
  Label += "/call ";
  Label += Name;
  Label += '/';
  Label += std::to_string(Parent->NextSiteIndex++);
  Site.Name = P.names().intern(Label);
  Site.IsStatic = false;
  Site.Base = Base;
  Site.Sig = P.addSignature(Name, static_cast<uint32_t>(Actuals.size()));
  Site.Actuals = Actuals;
  Site.Result = Result;
  Site.InMethod = Method;
  SiteId Id = P.addSite(std::move(Site));
  P.method(Method).Body.push_back(Instruction::makeCall(Id));
  return Id;
}

SiteId MethodBuilder::scall(VarId Result, MethodId Target,
                            const std::vector<VarId> &Actuals) {
  Program &P = Parent->Prog;
  assert(P.method(Target).IsStatic && "scall target must be static");
  SiteInfo Site;
  std::string Label(P.methodName(Method));
  Label += "/scall ";
  Label += P.methodName(Target);
  Label += '/';
  Label += std::to_string(Parent->NextSiteIndex++);
  Site.Name = P.names().intern(Label);
  Site.IsStatic = true;
  Site.Sig = P.method(Target).Sig;
  Site.StaticTarget = Target;
  Site.Actuals = Actuals;
  Site.Result = Result;
  Site.InMethod = Method;
  SiteId Id = P.addSite(std::move(Site));
  P.method(Method).Body.push_back(Instruction::makeCall(Id));
  return Id;
}

TypeId ProgramBuilder::cls(std::string_view Name, TypeId Super) {
  return Prog.addType(Name, Super);
}

FieldId ProgramBuilder::field(TypeId Owner, std::string_view Name) {
  return Prog.addField(Name, Owner);
}

MethodBuilder ProgramBuilder::method(TypeId Owner, std::string_view Name,
                                     uint32_t Arity, bool IsStatic) {
  std::vector<std::string> ParamNames;
  ParamNames.reserve(Arity);
  for (uint32_t Index = 0; Index < Arity; ++Index)
    ParamNames.push_back("p" + std::to_string(Index));
  return methodNamed(Owner, Name, ParamNames, IsStatic, /*ReturnName=*/"");
}

MethodBuilder
ProgramBuilder::methodNamed(TypeId Owner, std::string_view Name,
                            const std::vector<std::string> &ParamNames,
                            bool IsStatic, std::string_view ReturnName) {
  SigId Sig =
      Prog.addSignature(Name, static_cast<uint32_t>(ParamNames.size()));
  MethodId Id = Prog.addMethod(Name, Owner, Sig, IsStatic);
  if (!IsStatic)
    Prog.method(Id).This = Prog.addVar("this", Id);
  for (const std::string &ParamName : ParamNames)
    Prog.method(Id).Formals.push_back(Prog.addVar(ParamName, Id));
  if (!ReturnName.empty())
    Prog.method(Id).Return = Prog.addVar(ReturnName, Id);
  return MethodBuilder(*this, Id);
}

Program ProgramBuilder::take() {
  Prog.finalize();
  return std::move(Prog);
}
