//===- ir/Facts.h - Doop-style input relation extraction --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts a Program into the flat input relations of the paper's Figure 2
/// (ALLOC, MOVE, LOAD, STORE, VCALL, FORMALARG, ..., HEAPTYPE, LOOKUP),
/// exactly as a Doop fact generator would emit them.  These tuple tables
/// feed the Datalog reference implementation and are handy for debugging.
///
/// All tuples are raw dense indices (see support/Ids.h for the id spaces).
///
//===----------------------------------------------------------------------===//

#ifndef IR_FACTS_H
#define IR_FACTS_H

#include <array>
#include <cstdint>
#include <vector>

namespace intro {

class Program;

/// The input relations of the analysis model (paper Figure 2), plus the
/// static-call and cast extensions.
struct ProgramFacts {
  /// ALLOC(var, heap, inMeth)
  std::vector<std::array<uint32_t, 3>> Alloc;
  /// MOVE(to, from) — genuine moves only; casts are in Cast.
  std::vector<std::array<uint32_t, 2>> Move;
  /// CAST(to, from, type) — the cast instructions.  Under the paper's model
  /// a cast flows like a move; under Doop-style checked-cast semantics it
  /// filters by SUBTYPE.
  std::vector<std::array<uint32_t, 3>> Cast;
  /// SUBTYPE(sub, super), restricted to pairs of (heap type, cast target
  /// type) that are actually in the subtype relation.
  std::vector<std::array<uint32_t, 2>> Subtype;
  /// LOAD(to, base, fld)
  std::vector<std::array<uint32_t, 3>> Load;
  /// STORE(base, fld, from)
  std::vector<std::array<uint32_t, 3>> Store;
  /// SLOAD(to, fld, inMeth) — static-field load.
  std::vector<std::array<uint32_t, 3>> SLoad;
  /// SSTORE(fld, from) — static-field store.
  std::vector<std::array<uint32_t, 2>> SStore;
  /// THROW(var, meth) — `throw var` in meth.
  std::vector<std::array<uint32_t, 2>> Throw;
  /// SITEINMETHOD(invo, meth) — enclosing method of every call site.
  std::vector<std::array<uint32_t, 2>> SiteInMethod;
  /// CATCH(invo, type, var) — catch clause of a call site.
  std::vector<std::array<uint32_t, 3>> Catch;
  /// NOCATCH(invo) — call sites without a catch clause.
  std::vector<uint32_t> NoCatch;
  /// VCALL(base, sig, invo, inMeth)
  std::vector<std::array<uint32_t, 4>> VCall;
  /// SCALL(meth, invo, inMeth) — static calls with a fixed target.
  std::vector<std::array<uint32_t, 3>> SCall;
  /// FORMALARG(meth, i, arg)
  std::vector<std::array<uint32_t, 3>> FormalArg;
  /// ACTUALARG(invo, i, arg)
  std::vector<std::array<uint32_t, 3>> ActualArg;
  /// FORMALRETURN(meth, ret)
  std::vector<std::array<uint32_t, 2>> FormalReturn;
  /// ACTUALRETURN(invo, var)
  std::vector<std::array<uint32_t, 2>> ActualReturn;
  /// THISVAR(meth, this)
  std::vector<std::array<uint32_t, 2>> ThisVar;
  /// HEAPTYPE(heap, type)
  std::vector<std::array<uint32_t, 2>> HeapType;
  /// LOOKUP(type, sig, meth), restricted to types that occur as heap types
  /// and signatures that occur at virtual call sites.
  std::vector<std::array<uint32_t, 3>> Lookup;
  /// Entry methods (seed of REACHABLE).
  std::vector<uint32_t> EntryMethods;
};

/// Extracts the input relations of \p Prog.  The program must be finalized.
ProgramFacts extractFacts(const Program &Prog);

} // namespace intro

#endif // IR_FACTS_H
