//===- ir/Instruction.h - IR instruction representation ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions of the simplified object-oriented intermediate language from
/// Section 2 of the paper: allocation, move, heap load/store, and virtual
/// method call, extended with casts (needed for the "casts that may fail"
/// precision metric) and static calls (present in the full Doop model).
///
/// The language is flow-insensitive: a method body is an unordered set of
/// instructions, which we store as a vector for determinism.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INSTRUCTION_H
#define IR_INSTRUCTION_H

#include "support/Ids.h"

namespace intro {

/// Discriminates the instruction kinds of the input language.
enum class InstrKind : uint8_t {
  Alloc,  ///< var = new T            (paper: ALLOC)
  Move,   ///< to = from              (paper: MOVE)
  Cast,   ///< to = (T) from          (dataflow-wise a MOVE; tracked for the
          ///< cast-may-fail precision client)
  Load,   ///< to = base.fld          (paper: LOAD)
  Store,  ///< base.fld = from        (paper: STORE)
  SLoad,  ///< to = fld               (static-field load; full-Doop core)
  SStore, ///< fld = from             (static-field store; full-Doop core)
  Call,   ///< base.sig(..) or T.m(..) (paper: VCALL; also static calls)
  Throw,  ///< throw from             (exception extension, cf. paper [11])
};

/// One IR instruction.  Fields not used by a kind hold invalid ids.
struct Instruction {
  InstrKind Kind;
  VarId To;        ///< Destination of Alloc/Move/Cast/Load.
  VarId From;      ///< Source of Move/Cast/Store.
  VarId Base;      ///< Base object variable of Load/Store.
  FieldId Field;   ///< Field of Load/Store.
  HeapId Heap;     ///< Allocation site of Alloc.
  TypeId CastType; ///< Target type of Cast.
  SiteId Site;     ///< Invocation site of Call.

  static Instruction makeAlloc(VarId To, HeapId Heap) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Alloc;
    Instr.To = To;
    Instr.Heap = Heap;
    return Instr;
  }

  static Instruction makeMove(VarId To, VarId From) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Move;
    Instr.To = To;
    Instr.From = From;
    return Instr;
  }

  static Instruction makeCast(VarId To, VarId From, TypeId CastType) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Cast;
    Instr.To = To;
    Instr.From = From;
    Instr.CastType = CastType;
    return Instr;
  }

  static Instruction makeLoad(VarId To, VarId Base, FieldId Field) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Load;
    Instr.To = To;
    Instr.Base = Base;
    Instr.Field = Field;
    return Instr;
  }

  static Instruction makeStore(VarId Base, FieldId Field, VarId From) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Store;
    Instr.Base = Base;
    Instr.Field = Field;
    Instr.From = From;
    return Instr;
  }

  static Instruction makeSLoad(VarId To, FieldId Field) {
    Instruction Instr{};
    Instr.Kind = InstrKind::SLoad;
    Instr.To = To;
    Instr.Field = Field;
    return Instr;
  }

  static Instruction makeSStore(FieldId Field, VarId From) {
    Instruction Instr{};
    Instr.Kind = InstrKind::SStore;
    Instr.Field = Field;
    Instr.From = From;
    return Instr;
  }

  static Instruction makeCall(SiteId Site) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Call;
    Instr.Site = Site;
    return Instr;
  }

  static Instruction makeThrow(VarId From) {
    Instruction Instr{};
    Instr.Kind = InstrKind::Throw;
    Instr.From = From;
    return Instr;
  }
};

} // namespace intro

#endif // IR_INSTRUCTION_H
