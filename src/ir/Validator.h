//===- ir/Validator.h - Structural IR well-formedness -----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the structural invariants every Program must satisfy before it is
/// analyzed: variables are used only inside their owning method, call-site
/// arities match signatures, entries exist, and so on.  Returns messages
/// rather than aborting, so the frontend can report user errors gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef IR_VALIDATOR_H
#define IR_VALIDATOR_H

#include <string>
#include <vector>

namespace intro {

class Program;

/// Validates \p Prog.  \returns one human-readable message per violation;
/// empty means the program is well formed.
std::vector<std::string> validateProgram(const Program &Prog);

} // namespace intro

#endif // IR_VALIDATOR_H
