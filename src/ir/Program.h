//===- ir/Program.h - Whole-program IR container ----------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program representation analyzed by the framework: a class
/// hierarchy with fields and virtually dispatched methods, plus per-method
/// instruction lists over the language of ir/Instruction.h.
///
/// All entities are stored in dense tables indexed by the typed ids of
/// support/Ids.h.  A Program is constructed through ProgramBuilder (or the
/// textual frontend) and then frozen with finalize(), which computes the
/// dispatch tables used by the analyses.
///
//===----------------------------------------------------------------------===//

#ifndef IR_PROGRAM_H
#define IR_PROGRAM_H

#include "ir/Instruction.h"
#include "support/Ids.h"
#include "support/StringInterner.h"

#include <string_view>
#include <unordered_map>
#include <vector>

namespace intro {

/// A class type in the hierarchy.
struct TypeInfo {
  uint32_t Name;               ///< Interned type name.
  TypeId Super;                ///< Superclass; invalid for the root.
  uint32_t Depth = 0;          ///< Distance from the hierarchy root.
  std::vector<FieldId> Fields; ///< Fields declared directly in this class.
  /// Methods declared directly in this class, keyed by raw signature id.
  std::unordered_map<uint32_t, MethodId> DeclaredMethods;
};

/// An instance field.
struct FieldInfo {
  uint32_t Name; ///< Interned field name.
  TypeId Owner;  ///< Declaring class.
};

/// A dispatch signature: method name plus arity.
struct SigInfo {
  uint32_t Name;  ///< Interned method name.
  uint32_t Arity; ///< Number of formal parameters (excluding `this`).
};

/// A local variable or formal parameter.
struct VarInfo {
  uint32_t Name;  ///< Interned variable name (unique within its method).
  MethodId Owner; ///< Enclosing method.
};

/// A method definition.
struct MethodInfo {
  uint32_t Name;               ///< Interned method name.
  TypeId Owner;                ///< Declaring class.
  SigId Sig;                   ///< Dispatch signature.
  bool IsStatic = false;       ///< True for static (non-virtual) methods.
  VarId This;                  ///< `this` variable; invalid if static.
  std::vector<VarId> Formals;  ///< Formal parameters, in order.
  VarId Return;                ///< Formal return variable; invalid if void.
  std::vector<VarId> Locals;   ///< All variables of the method (incl. above).
  std::vector<Instruction> Body; ///< Instructions (order is irrelevant to
                                 ///< the flow-insensitive analyses).
};

/// A heap object abstraction: one allocation site.
struct HeapInfo {
  uint32_t Name;     ///< Interned site label, e.g. "m/new A/3".
  TypeId Type;       ///< Allocated class (paper: HEAPTYPE).
  MethodId InMethod; ///< Method containing the allocation.
};

/// A method invocation site.
struct SiteInfo {
  uint32_t Name;         ///< Interned site label.
  bool IsStatic = false; ///< Static call (fixed target) vs. virtual call.
  VarId Base;            ///< Receiver variable; invalid for static calls.
  SigId Sig;             ///< Signature looked up at dispatch time.
  MethodId StaticTarget; ///< Fixed target; valid only for static calls.
  std::vector<VarId> Actuals; ///< Actual arguments, in order.
  VarId Result;          ///< Variable receiving the return value; optional.
  MethodId InMethod;     ///< Enclosing (caller) method.
  VarId CatchVar;        ///< Receives caught exceptions; invalid = no catch.
  TypeId CatchType;      ///< Exception type this site's catch clause covers.
};

/// Whole-program IR: entity tables, class hierarchy, and dispatch.
class Program {
public:
  // --- Construction (used by ProgramBuilder / the frontend) -------------

  TypeId addType(std::string_view Name, TypeId Super);
  FieldId addField(std::string_view Name, TypeId Owner);
  SigId addSignature(std::string_view Name, uint32_t Arity);
  MethodId addMethod(std::string_view Name, TypeId Owner, SigId Sig,
                     bool IsStatic);
  VarId addVar(std::string_view Name, MethodId Owner);
  HeapId addHeap(std::string_view Name, TypeId Type, MethodId InMethod);
  SiteId addSite(SiteInfo Site);

  /// Marks \p Method as a program entry point (always reachable).
  void addEntry(MethodId Method) { EntryMethods.push_back(Method); }

  /// Freezes the program: computes type depths and flattened dispatch
  /// tables.  Must be called before analysis; idempotent.
  void finalize();

  // --- Queries -----------------------------------------------------------

  size_t numTypes() const { return Types.size(); }
  size_t numFields() const { return Fields.size(); }
  size_t numSignatures() const { return Sigs.size(); }
  size_t numMethods() const { return Methods.size(); }
  size_t numVars() const { return Vars.size(); }
  size_t numHeaps() const { return Heaps.size(); }
  size_t numSites() const { return Sites.size(); }

  const TypeInfo &type(TypeId Id) const { return Types[Id.index()]; }
  const FieldInfo &field(FieldId Id) const { return Fields[Id.index()]; }
  const SigInfo &signature(SigId Id) const { return Sigs[Id.index()]; }
  const MethodInfo &method(MethodId Id) const { return Methods[Id.index()]; }
  const VarInfo &var(VarId Id) const { return Vars[Id.index()]; }
  const HeapInfo &heap(HeapId Id) const { return Heaps[Id.index()]; }
  const SiteInfo &site(SiteId Id) const { return Sites[Id.index()]; }

  MethodInfo &method(MethodId Id) { return Methods[Id.index()]; }
  SiteInfo &siteMutable(SiteId Id) { return Sites[Id.index()]; }

  const std::vector<MethodId> &entries() const { return EntryMethods; }

  /// \returns the interned-name text for any entity name handle.
  std::string_view name(uint32_t NameHandle) const {
    return Names.text(NameHandle);
  }

  std::string_view typeName(TypeId Id) const { return name(type(Id).Name); }
  std::string_view methodName(MethodId Id) const {
    return name(method(Id).Name);
  }
  std::string_view varName(VarId Id) const { return name(var(Id).Name); }
  std::string_view fieldName(FieldId Id) const { return name(field(Id).Name); }
  std::string_view heapName(HeapId Id) const { return name(heap(Id).Name); }
  std::string_view siteName(SiteId Id) const { return name(site(Id).Name); }

  /// \returns true if \p Sub is \p Super or a (transitive) subclass of it.
  bool isSubtypeOf(TypeId Sub, TypeId Super) const;

  /// Virtual dispatch: resolves \p Sig in \p Type, walking up the hierarchy
  /// (paper: LOOKUP).  \returns the invalid id if no method matches.
  MethodId lookup(TypeId Type, SigId Sig) const;

  /// \returns the class whose body contains \p Method — used as the context
  /// element by type-sensitivity ("type containing the allocation site").
  TypeId classOfMethod(MethodId Method) const { return method(Method).Owner; }

  /// Total number of instructions across all method bodies.
  size_t numInstructions() const;

  /// Access to the interner, for builders that need to pre-intern names.
  StringInterner &names() { return Names; }
  const StringInterner &names() const { return Names; }

private:
  StringInterner Names;
  std::vector<TypeInfo> Types;
  std::vector<FieldInfo> Fields;
  std::vector<SigInfo> Sigs;
  std::vector<MethodInfo> Methods;
  std::vector<VarInfo> Vars;
  std::vector<HeapInfo> Heaps;
  std::vector<SiteInfo> Sites;
  std::vector<MethodId> EntryMethods;

  /// Flattened dispatch: (type, sig) -> method, including inherited methods.
  std::unordered_map<uint64_t, MethodId> DispatchCache;
  bool Finalized = false;

  static uint64_t dispatchKey(TypeId Type, SigId Sig) {
    return (static_cast<uint64_t>(Type.index()) << 32) | Sig.index();
  }
};

} // namespace intro

#endif // IR_PROGRAM_H
