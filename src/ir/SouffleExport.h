//===- ir/SouffleExport.h - Souffle program emission ------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the core analysis as a Souffle Datalog program that consumes the
/// `.facts` directory written by ir/FactsIO.h: relation declarations with
/// `.input` directives matching the exported TSV files, plus the
/// context-insensitive points-to rules (the first pass of introspective
/// analysis).  This lets the inputs be cross-checked on an independent,
/// external Datalog engine.
///
/// Only the insensitive analysis is emitted: the context-sensitive
/// variants need the RECORD/MERGE constructor functors, which have no
/// portable Souffle rendering (they are LogicBlox-style functional
/// predicates; in this framework they live in analysis/ContextPolicy.h).
///
//===----------------------------------------------------------------------===//

#ifndef IR_SOUFFLEEXPORT_H
#define IR_SOUFFLEEXPORT_H

#include <ostream>

namespace intro {

/// Writes the Souffle program (declarations, inputs, rules, outputs) to
/// \p Out.  Pair it with writeFactsDirectory() and run:
///   souffle -F <factsdir> -D <outdir> program.dl
void writeSouffleProgram(std::ostream &Out);

} // namespace intro

#endif // IR_SOUFFLEEXPORT_H
