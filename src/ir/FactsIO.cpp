//===- ir/FactsIO.cpp - Doop-style facts-directory export -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/FactsIO.h"

#include "ir/Facts.h"
#include "ir/Program.h"

#include <fstream>

using namespace intro;

namespace {

/// Renders one id column of a relation row as its entity name.  Which
/// table an index refers to is positional, so each writer passes a
/// per-column name projector.
using ColumnNamer = std::string_view (*)(const Program &, uint32_t);

std::string_view varName(const Program &P, uint32_t Raw) {
  return P.varName(VarId(Raw));
}
std::string_view heapName(const Program &P, uint32_t Raw) {
  return P.heapName(HeapId(Raw));
}
std::string_view methodName(const Program &P, uint32_t Raw) {
  return P.methodName(MethodId(Raw));
}
std::string_view fieldName(const Program &P, uint32_t Raw) {
  return P.fieldName(FieldId(Raw));
}
std::string_view typeName(const Program &P, uint32_t Raw) {
  return P.typeName(TypeId(Raw));
}
std::string_view siteName(const Program &P, uint32_t Raw) {
  return P.siteName(SiteId(Raw));
}
std::string_view sigName(const Program &P, uint32_t Raw) {
  return P.name(P.signature(SigId(Raw)).Name);
}

// An index column (argument position) is printed numerically.
constexpr ColumnNamer RawIndex = nullptr;

/// Writes tuples of \p Rows into \p Path with one \p Namers entry per
/// column.  \returns false on I/O failure.
template <size_t Arity>
bool writeRelation(const Program &Prog, const std::string &Path,
                   const std::vector<std::array<uint32_t, Arity>> &Rows,
                   const std::array<ColumnNamer, Arity> &Namers) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  for (const auto &Row : Rows) {
    for (size_t Col = 0; Col < Arity; ++Col) {
      if (Col > 0)
        Out << '\t';
      if (Namers[Col] == RawIndex)
        Out << Row[Col];
      else
        Out << Namers[Col](Prog, Row[Col]);
    }
    Out << '\n';
  }
  return Out.good();
}

} // namespace

std::vector<std::string>
intro::writeFactsDirectory(const Program &Prog, const std::string &Directory,
                           std::string &Error) {
  ProgramFacts Facts = extractFacts(Prog);
  std::vector<std::string> Written;

  auto Emit = [&](const char *Name, bool Ok, const std::string &Path) {
    if (!Ok) {
      Error = std::string("failed to write ") + Name + " to " + Path;
      return false;
    }
    Written.push_back(Path);
    return true;
  };

#define WRITE_RELATION(NAME, ROWS, ...)                                       \
  do {                                                                        \
    std::string Path = Directory + "/" NAME ".facts";                         \
    constexpr size_t Arity = decltype(ROWS)::value_type().size();             \
    if (!Emit(NAME,                                                           \
              writeRelation<Arity>(Prog, Path, ROWS,                          \
                                   std::array<ColumnNamer, Arity>{            \
                                       __VA_ARGS__}),                         \
              Path))                                                          \
      return {};                                                              \
  } while (false)

  WRITE_RELATION("Alloc", Facts.Alloc, varName, heapName, methodName);
  WRITE_RELATION("Move", Facts.Move, varName, varName);
  WRITE_RELATION("Cast", Facts.Cast, varName, varName, typeName);
  WRITE_RELATION("Load", Facts.Load, varName, varName, fieldName);
  WRITE_RELATION("Store", Facts.Store, varName, fieldName, varName);
  WRITE_RELATION("VCall", Facts.VCall, varName, sigName, siteName,
                 methodName);
  WRITE_RELATION("SCall", Facts.SCall, methodName, siteName, methodName);
  WRITE_RELATION("FormalArg", Facts.FormalArg, methodName, RawIndex,
                 varName);
  WRITE_RELATION("ActualArg", Facts.ActualArg, siteName, RawIndex, varName);
  WRITE_RELATION("FormalReturn", Facts.FormalReturn, methodName, varName);
  WRITE_RELATION("ActualReturn", Facts.ActualReturn, siteName, varName);
  WRITE_RELATION("ThisVar", Facts.ThisVar, methodName, varName);
  WRITE_RELATION("HeapType", Facts.HeapType, heapName, typeName);
  WRITE_RELATION("Lookup", Facts.Lookup, typeName, sigName, methodName);
  WRITE_RELATION("Subtype", Facts.Subtype, typeName, typeName);
  WRITE_RELATION("SLoad", Facts.SLoad, varName, fieldName, methodName);
  WRITE_RELATION("SStore", Facts.SStore, fieldName, varName);
  WRITE_RELATION("Throw", Facts.Throw, varName, methodName);
  WRITE_RELATION("SiteInMethod", Facts.SiteInMethod, siteName, methodName);
  WRITE_RELATION("Catch", Facts.Catch, siteName, typeName, varName);
#undef WRITE_RELATION

  // NOCATCH: single-column relation of call sites without a catch clause.
  {
    std::string Path = Directory + "/NoCatch.facts";
    std::ofstream Out(Path);
    if (!Out) {
      Error = "failed to write NoCatch to " + Path;
      return {};
    }
    for (uint32_t SiteRaw : Facts.NoCatch)
      Out << Prog.siteName(SiteId(SiteRaw)) << '\n';
    Written.push_back(Path);
  }

  // Entry methods: single-column relation.
  {
    std::string Path = Directory + "/EntryMethod.facts";
    std::ofstream Out(Path);
    if (!Out) {
      Error = "failed to write EntryMethod to " + Path;
      return {};
    }
    for (uint32_t MethodRaw : Facts.EntryMethods)
      Out << Prog.methodName(MethodId(MethodRaw)) << '\n';
    Written.push_back(Path);
  }
  return Written;
}
