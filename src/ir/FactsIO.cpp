//===- ir/FactsIO.cpp - Doop-style facts-directory export -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/FactsIO.h"

#include "ir/Facts.h"
#include "ir/Program.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <string_view>
#include <unordered_map>

using namespace intro;

namespace {

/// Renders one id column of a relation row as its entity name.  Which
/// table an index refers to is positional, so each writer passes a
/// per-column name projector.
using ColumnNamer = std::string_view (*)(const Program &, uint32_t);

std::string_view varName(const Program &P, uint32_t Raw) {
  return P.varName(VarId(Raw));
}
std::string_view heapName(const Program &P, uint32_t Raw) {
  return P.heapName(HeapId(Raw));
}
std::string_view methodName(const Program &P, uint32_t Raw) {
  return P.methodName(MethodId(Raw));
}
std::string_view fieldName(const Program &P, uint32_t Raw) {
  return P.fieldName(FieldId(Raw));
}
std::string_view typeName(const Program &P, uint32_t Raw) {
  return P.typeName(TypeId(Raw));
}
std::string_view siteName(const Program &P, uint32_t Raw) {
  return P.siteName(SiteId(Raw));
}
std::string_view sigName(const Program &P, uint32_t Raw) {
  return P.name(P.signature(SigId(Raw)).Name);
}

// An index column (argument position) is printed numerically.
constexpr ColumnNamer RawIndex = nullptr;

/// Writes tuples of \p Rows into \p Path with one \p Namers entry per
/// column (all columns numeric when \p NumericIds).  \returns false on I/O
/// failure.
template <size_t Arity>
bool writeRelation(const Program &Prog, const std::string &Path,
                   const std::vector<std::array<uint32_t, Arity>> &Rows,
                   const std::array<ColumnNamer, Arity> &Namers,
                   bool NumericIds) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  for (const auto &Row : Rows) {
    for (size_t Col = 0; Col < Arity; ++Col) {
      if (Col > 0)
        Out << '\t';
      if (NumericIds || Namers[Col] == RawIndex)
        Out << Row[Col];
      else
        Out << Namers[Col](Prog, Row[Col]);
    }
    Out << '\n';
  }
  return Out.good();
}

//===----------------------------------------------------------------------===//
// Validated reader (numeric-id directories only)
//===----------------------------------------------------------------------===//

/// The id space a relation column draws from; bounds its valid range.
enum class Col : uint8_t { Var, Heap, Method, Field, Type, Site, Sig, Index };

uint32_t columnLimit(const FactsShape &S, Col C) {
  switch (C) {
  case Col::Var:
    return S.NumVars;
  case Col::Heap:
    return S.NumHeaps;
  case Col::Method:
    return S.NumMethods;
  case Col::Field:
    return S.NumFields;
  case Col::Type:
    return S.NumTypes;
  case Col::Site:
    return S.NumSites;
  case Col::Sig:
    return S.NumSigs;
  case Col::Index:
    return std::numeric_limits<uint32_t>::max();
  }
  return 0;
}

const char *columnEntity(Col C) {
  switch (C) {
  case Col::Var:
    return "var";
  case Col::Heap:
    return "heap";
  case Col::Method:
    return "method";
  case Col::Field:
    return "field";
  case Col::Type:
    return "type";
  case Col::Site:
    return "site";
  case Col::Sig:
    return "signature";
  case Col::Index:
    return "index";
  }
  return "?";
}

/// Strict decimal uint32 parse: digits only, no sign, no whitespace, no
/// overflow past UINT32_MAX.
bool parseId(std::string_view Token, uint32_t &Value) {
  if (Token.empty())
    return false;
  uint64_t Parsed = 0;
  for (char Ch : Token) {
    if (Ch < '0' || Ch > '9')
      return false;
    Parsed = Parsed * 10 + static_cast<uint64_t>(Ch - '0');
    if (Parsed > std::numeric_limits<uint32_t>::max())
      return false;
  }
  Value = static_cast<uint32_t>(Parsed);
  return true;
}

/// Splits \p Line on tabs into \p Tokens (a trailing '\r' from CRLF input
/// is stripped first).  Never fails: empty tokens surface as parse errors
/// downstream, with a better diagnostic than a split failure could give.
void splitColumns(std::string_view Line, std::vector<std::string_view> &Tokens) {
  Tokens.clear();
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  size_t Start = 0;
  while (true) {
    size_t Tab = Line.find('\t', Start);
    if (Tab == std::string_view::npos) {
      Tokens.push_back(Line.substr(Start));
      return;
    }
    Tokens.push_back(Line.substr(Start, Tab - Start));
    Start = Tab + 1;
  }
}

/// Reads and validates one `.facts` relation file.  \p KeyCols > 0 marks a
/// functional relation whose leading \p KeyCols columns must be unique
/// (e.g. FormalReturn is keyed by its method, ActualArg by (site, index));
/// supported keys are one or two uint32 columns, packed into a uint64.
template <size_t Arity>
bool readRelation(const std::string &Path, const FactsShape &Shape,
                  const std::array<Col, Arity> &Cols, unsigned KeyCols,
                  std::vector<std::array<uint32_t, Arity>> &Rows,
                  std::string &Error) {
  static_assert(Arity >= 1 && Arity <= 5, "unexpected relation arity");
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  Rows.clear();
  std::unordered_map<uint64_t, size_t> SeenKeys; // key -> first line.
  std::string Line;
  std::vector<std::string_view> Tokens;
  size_t LineNo = 0;
  auto Diag = [&](const std::string &Message) {
    Error = Path + ":" + std::to_string(LineNo) + ": " + Message;
    return false;
  };
  while (std::getline(In, Line)) {
    ++LineNo;
    splitColumns(Line, Tokens);
    if (Tokens.size() == 1 && Tokens[0].empty())
      continue; // Blank line (e.g. trailing newline artifacts).
    if (Tokens.size() != Arity)
      return Diag("expected " + std::to_string(Arity) + " columns, got " +
                  std::to_string(Tokens.size()));
    std::array<uint32_t, Arity> Row;
    for (size_t Index = 0; Index < Arity; ++Index) {
      if (!parseId(Tokens[Index], Row[Index]))
        return Diag("column " + std::to_string(Index + 1) + ": '" +
                    std::string(Tokens[Index]) + "' is not a valid id");
      uint32_t Limit = columnLimit(Shape, Cols[Index]);
      if (Cols[Index] != Col::Index && Row[Index] >= Limit)
        return Diag("column " + std::to_string(Index + 1) + ": " +
                    columnEntity(Cols[Index]) + " id " +
                    std::to_string(Row[Index]) + " out of range (have " +
                    std::to_string(Limit) + ")");
    }
    if (KeyCols > 0) {
      uint64_t Key = Row[0];
      if (KeyCols > 1)
        Key = (Key << 32) | Row[1];
      auto [It, Inserted] = SeenKeys.emplace(Key, LineNo);
      if (!Inserted)
        return Diag("duplicate declaration (first at line " +
                    std::to_string(It->second) + ")");
    }
    Rows.push_back(Row);
  }
  if (In.bad())
    return Diag("read error");
  return true;
}

/// Single-column variant for NoCatch / EntryMethod.
bool readUnaryRelation(const std::string &Path, const FactsShape &Shape,
                       Col Column, std::vector<uint32_t> &Rows,
                       std::string &Error) {
  std::vector<std::array<uint32_t, 1>> Wide;
  if (!readRelation<1>(Path, Shape, {Column}, /*KeyCols=*/0, Wide, Error))
    return false;
  Rows.clear();
  Rows.reserve(Wide.size());
  for (const auto &Row : Wide)
    Rows.push_back(Row[0]);
  return true;
}

} // namespace

FactsShape intro::shapeOf(const Program &Prog) {
  FactsShape Shape;
  Shape.NumVars = static_cast<uint32_t>(Prog.numVars());
  Shape.NumHeaps = static_cast<uint32_t>(Prog.numHeaps());
  Shape.NumMethods = static_cast<uint32_t>(Prog.numMethods());
  Shape.NumFields = static_cast<uint32_t>(Prog.numFields());
  Shape.NumTypes = static_cast<uint32_t>(Prog.numTypes());
  Shape.NumSites = static_cast<uint32_t>(Prog.numSites());
  Shape.NumSigs = static_cast<uint32_t>(Prog.numSignatures());
  return Shape;
}

std::vector<std::string>
intro::writeFactsDirectory(const Program &Prog, const std::string &Directory,
                           std::string &Error, const FactsIOOptions &Options) {
  ProgramFacts Facts = extractFacts(Prog);
  std::vector<std::string> Written;

  auto Emit = [&](const char *Name, bool Ok, const std::string &Path) {
    if (!Ok) {
      Error = std::string("failed to write ") + Name + " to " + Path;
      return false;
    }
    Written.push_back(Path);
    return true;
  };

#define WRITE_RELATION(NAME, ROWS, ...)                                       \
  do {                                                                        \
    std::string Path = Directory + "/" NAME ".facts";                         \
    constexpr size_t Arity = decltype(ROWS)::value_type().size();             \
    if (!Emit(NAME,                                                           \
              writeRelation<Arity>(Prog, Path, ROWS,                          \
                                   std::array<ColumnNamer, Arity>{            \
                                       __VA_ARGS__},                          \
                                   Options.NumericIds),                       \
              Path))                                                          \
      return {};                                                              \
  } while (false)

  WRITE_RELATION("Alloc", Facts.Alloc, varName, heapName, methodName);
  WRITE_RELATION("Move", Facts.Move, varName, varName);
  WRITE_RELATION("Cast", Facts.Cast, varName, varName, typeName);
  WRITE_RELATION("Load", Facts.Load, varName, varName, fieldName);
  WRITE_RELATION("Store", Facts.Store, varName, fieldName, varName);
  WRITE_RELATION("VCall", Facts.VCall, varName, sigName, siteName,
                 methodName);
  WRITE_RELATION("SCall", Facts.SCall, methodName, siteName, methodName);
  WRITE_RELATION("FormalArg", Facts.FormalArg, methodName, RawIndex,
                 varName);
  WRITE_RELATION("ActualArg", Facts.ActualArg, siteName, RawIndex, varName);
  WRITE_RELATION("FormalReturn", Facts.FormalReturn, methodName, varName);
  WRITE_RELATION("ActualReturn", Facts.ActualReturn, siteName, varName);
  WRITE_RELATION("ThisVar", Facts.ThisVar, methodName, varName);
  WRITE_RELATION("HeapType", Facts.HeapType, heapName, typeName);
  WRITE_RELATION("Lookup", Facts.Lookup, typeName, sigName, methodName);
  WRITE_RELATION("Subtype", Facts.Subtype, typeName, typeName);
  WRITE_RELATION("SLoad", Facts.SLoad, varName, fieldName, methodName);
  WRITE_RELATION("SStore", Facts.SStore, fieldName, varName);
  WRITE_RELATION("Throw", Facts.Throw, varName, methodName);
  WRITE_RELATION("SiteInMethod", Facts.SiteInMethod, siteName, methodName);
  WRITE_RELATION("Catch", Facts.Catch, siteName, typeName, varName);
#undef WRITE_RELATION

  auto WriteUnary = [&](const char *Name, const std::vector<uint32_t> &Rows,
                        ColumnNamer Namer) {
    std::string Path = Directory + "/" + Name + ".facts";
    std::ofstream Out(Path);
    if (!Out) {
      Error = std::string("failed to write ") + Name + " to " + Path;
      return false;
    }
    for (uint32_t Raw : Rows) {
      if (Options.NumericIds)
        Out << Raw << '\n';
      else
        Out << Namer(Prog, Raw) << '\n';
    }
    if (!Out.good()) {
      Error = std::string("failed to write ") + Name + " to " + Path;
      return false;
    }
    Written.push_back(Path);
    return true;
  };

  // NOCATCH: single-column relation of call sites without a catch clause.
  if (!WriteUnary("NoCatch", Facts.NoCatch, siteName))
    return {};
  // Entry methods: single-column relation.
  if (!WriteUnary("EntryMethod", Facts.EntryMethods, methodName))
    return {};
  return Written;
}

bool intro::readFactsDirectory(const std::string &Directory,
                               const FactsShape &Shape, ProgramFacts &Facts,
                               std::string &Error) {
  Facts = ProgramFacts();

#define READ_RELATION(NAME, ROWS, KEYCOLS, ...)                               \
  do {                                                                        \
    constexpr size_t Arity = decltype(Facts.ROWS)::value_type().size();       \
    if (!readRelation<Arity>(Directory + "/" NAME ".facts", Shape,            \
                             std::array<Col, Arity>{__VA_ARGS__}, KEYCOLS,    \
                             Facts.ROWS, Error))                              \
      return false;                                                           \
  } while (false)

  READ_RELATION("Alloc", Alloc, 0, Col::Var, Col::Heap, Col::Method);
  READ_RELATION("Move", Move, 0, Col::Var, Col::Var);
  READ_RELATION("Cast", Cast, 0, Col::Var, Col::Var, Col::Type);
  READ_RELATION("Load", Load, 0, Col::Var, Col::Var, Col::Field);
  READ_RELATION("Store", Store, 0, Col::Var, Col::Field, Col::Var);
  READ_RELATION("VCall", VCall, 0, Col::Var, Col::Sig, Col::Site,
                Col::Method);
  READ_RELATION("SCall", SCall, 0, Col::Method, Col::Site, Col::Method);
  // Functional relations: FormalArg is keyed by (method, index), ActualArg
  // by (site, index), the two-column ones by their first column.  Duplicate
  // rows here are genuine input corruption — a method cannot have two
  // return variables or two formals in one slot.
  READ_RELATION("FormalArg", FormalArg, 2, Col::Method, Col::Index,
                Col::Var);
  READ_RELATION("ActualArg", ActualArg, 2, Col::Site, Col::Index, Col::Var);
  READ_RELATION("FormalReturn", FormalReturn, 1, Col::Method, Col::Var);
  READ_RELATION("ActualReturn", ActualReturn, 1, Col::Site, Col::Var);
  READ_RELATION("ThisVar", ThisVar, 1, Col::Method, Col::Var);
  READ_RELATION("HeapType", HeapType, 1, Col::Heap, Col::Type);
  READ_RELATION("Lookup", Lookup, 0, Col::Type, Col::Sig, Col::Method);
  READ_RELATION("Subtype", Subtype, 0, Col::Type, Col::Type);
  READ_RELATION("SLoad", SLoad, 0, Col::Var, Col::Field, Col::Method);
  READ_RELATION("SStore", SStore, 0, Col::Field, Col::Var);
  READ_RELATION("Throw", Throw, 0, Col::Var, Col::Method);
  READ_RELATION("SiteInMethod", SiteInMethod, 1, Col::Site, Col::Method);
  READ_RELATION("Catch", Catch, 0, Col::Site, Col::Type, Col::Var);
#undef READ_RELATION

  if (!readUnaryRelation(Directory + "/NoCatch.facts", Shape, Col::Site,
                         Facts.NoCatch, Error))
    return false;
  if (!readUnaryRelation(Directory + "/EntryMethod.facts", Shape,
                         Col::Method, Facts.EntryMethods, Error))
    return false;
  return true;
}
