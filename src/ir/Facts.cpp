//===- ir/Facts.cpp - Doop-style input relation extraction ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Facts.h"

#include "ir/Program.h"

#include <set>

using namespace intro;

ProgramFacts intro::extractFacts(const Program &Prog) {
  ProgramFacts Facts;

  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    MethodId Method(MethodIndex);
    const MethodInfo &Info = Prog.method(Method);

    if (!Info.IsStatic)
      Facts.ThisVar.push_back({MethodIndex, Info.This.raw()});
    for (uint32_t Index = 0; Index < Info.Formals.size(); ++Index)
      Facts.FormalArg.push_back(
          {MethodIndex, Index, Info.Formals[Index].raw()});
    if (Info.Return.isValid())
      Facts.FormalReturn.push_back({MethodIndex, Info.Return.raw()});

    for (const Instruction &Instr : Info.Body) {
      switch (Instr.Kind) {
      case InstrKind::Alloc:
        Facts.Alloc.push_back(
            {Instr.To.raw(), Instr.Heap.raw(), MethodIndex});
        break;
      case InstrKind::Move:
        Facts.Move.push_back({Instr.To.raw(), Instr.From.raw()});
        break;
      case InstrKind::Cast:
        Facts.Cast.push_back(
            {Instr.To.raw(), Instr.From.raw(), Instr.CastType.raw()});
        break;
      case InstrKind::Load:
        Facts.Load.push_back(
            {Instr.To.raw(), Instr.Base.raw(), Instr.Field.raw()});
        break;
      case InstrKind::Store:
        Facts.Store.push_back(
            {Instr.Base.raw(), Instr.Field.raw(), Instr.From.raw()});
        break;
      case InstrKind::SLoad:
        Facts.SLoad.push_back(
            {Instr.To.raw(), Instr.Field.raw(), MethodIndex});
        break;
      case InstrKind::SStore:
        Facts.SStore.push_back({Instr.Field.raw(), Instr.From.raw()});
        break;
      case InstrKind::Throw:
        Facts.Throw.push_back({Instr.From.raw(), MethodIndex});
        break;
      case InstrKind::Call:
        break; // Emitted from the site table below.
      }
    }
  }

  std::set<uint32_t> UsedSigs;
  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    SiteId Site(SiteIndex);
    const SiteInfo &Info = Prog.site(Site);
    if (Info.IsStatic)
      Facts.SCall.push_back(
          {Info.StaticTarget.raw(), SiteIndex, Info.InMethod.raw()});
    else {
      Facts.VCall.push_back({Info.Base.raw(), Info.Sig.raw(), SiteIndex,
                             Info.InMethod.raw()});
      UsedSigs.insert(Info.Sig.raw());
    }
    for (uint32_t Index = 0; Index < Info.Actuals.size(); ++Index)
      Facts.ActualArg.push_back(
          {SiteIndex, Index, Info.Actuals[Index].raw()});
    if (Info.Result.isValid())
      Facts.ActualReturn.push_back({SiteIndex, Info.Result.raw()});
    Facts.SiteInMethod.push_back({SiteIndex, Info.InMethod.raw()});
    if (Info.CatchVar.isValid())
      Facts.Catch.push_back(
          {SiteIndex, Info.CatchType.raw(), Info.CatchVar.raw()});
    else
      Facts.NoCatch.push_back(SiteIndex);
  }

  std::set<uint32_t> HeapTypes;
  for (uint32_t HeapIndex = 0; HeapIndex < Prog.numHeaps(); ++HeapIndex) {
    Facts.HeapType.push_back(
        {HeapIndex, Prog.heap(HeapId(HeapIndex)).Type.raw()});
    HeapTypes.insert(Prog.heap(HeapId(HeapIndex)).Type.raw());
  }

  // LOOKUP restricted to (heap type, used signature) pairs that resolve.
  for (uint32_t TypeRaw : HeapTypes)
    for (uint32_t SigRaw : UsedSigs) {
      MethodId Target = Prog.lookup(TypeId(TypeRaw), SigId(SigRaw));
      if (Target.isValid())
        Facts.Lookup.push_back({TypeRaw, SigRaw, Target.raw()});
    }

  // SUBTYPE restricted to (heap type, cast-target or catch type) pairs
  // that hold.
  std::set<uint32_t> FilterTypes;
  for (const auto &Cast : Facts.Cast)
    FilterTypes.insert(Cast[2]);
  for (const auto &CatchTuple : Facts.Catch)
    FilterTypes.insert(CatchTuple[1]);
  for (uint32_t TypeRaw : HeapTypes)
    for (uint32_t TargetRaw : FilterTypes)
      if (Prog.isSubtypeOf(TypeId(TypeRaw), TypeId(TargetRaw)))
        Facts.Subtype.push_back({TypeRaw, TargetRaw});

  for (MethodId Entry : Prog.entries())
    Facts.EntryMethods.push_back(Entry.raw());

  return Facts;
}
