//===- ir/SouffleExport.cpp - Souffle program emission --------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/SouffleExport.h"

#include <ostream>

using namespace intro;

void intro::writeSouffleProgram(std::ostream &Out) {
  Out << R"(// Context-insensitive points-to analysis with on-the-fly
// call-graph construction -- the first pass of introspective
// context-sensitivity (Smaragdakis, Kastrinis, Balatsouras, PLDI 2014).
//
// Consumes the .facts directory written by writeFactsDirectory():
//   souffle -F <factsdir> -D <outdir> program.dl

.type Var <: symbol
.type Heap <: symbol
.type Method <: symbol
.type Field <: symbol
.type Type <: symbol
.type Sig <: symbol
.type Site <: symbol

// --- Input relations (Figure 2, insensitive projection) ---------------------
.decl Alloc(var: Var, heap: Heap, inMeth: Method)
.input Alloc
.decl Move(to: Var, from: Var)
.input Move
.decl Cast(to: Var, from: Var, type: Type)
.input Cast
.decl Load(to: Var, base: Var, fld: Field)
.input Load
.decl Store(base: Var, fld: Field, from: Var)
.input Store
.decl SLoad(to: Var, fld: Field, inMeth: Method)
.input SLoad
.decl SStore(fld: Field, from: Var)
.input SStore
.decl VCall(base: Var, sig: Sig, invo: Site, inMeth: Method)
.input VCall
.decl SCall(meth: Method, invo: Site, inMeth: Method)
.input SCall
.decl FormalArg(meth: Method, i: number, arg: Var)
.input FormalArg
.decl ActualArg(invo: Site, i: number, arg: Var)
.input ActualArg
.decl FormalReturn(meth: Method, ret: Var)
.input FormalReturn
.decl ActualReturn(invo: Site, var: Var)
.input ActualReturn
.decl ThisVar(meth: Method, this_: Var)
.input ThisVar
.decl HeapType(heap: Heap, type: Type)
.input HeapType
.decl Lookup(type: Type, sig: Sig, meth: Method)
.input Lookup
.decl Subtype(sub: Type, super: Type)
.input Subtype
.decl Throw(var: Var, meth: Method)
.input Throw
.decl SiteInMethod(invo: Site, meth: Method)
.input SiteInMethod
.decl Catch(invo: Site, type: Type, var: Var)
.input Catch
.decl NoCatch(invo: Site)
.input NoCatch
.decl EntryMethod(meth: Method)
.input EntryMethod

// --- Computed relations ------------------------------------------------------
.decl VarPointsTo(var: Var, heap: Heap)
.output VarPointsTo
.decl FldPointsTo(baseH: Heap, fld: Field, heap: Heap)
.output FldPointsTo
.decl SFldPointsTo(fld: Field, heap: Heap)
.output SFldPointsTo
.decl CallGraph(invo: Site, meth: Method)
.output CallGraph
.decl Reachable(meth: Method)
.output Reachable
.decl InterProcAssign(to: Var, from: Var)
.decl ThrowPointsTo(meth: Method, heap: Heap)
.output ThrowPointsTo

// --- Rules (Figure 3, insensitive projection) --------------------------------
Reachable(m) :- EntryMethod(m).

VarPointsTo(v, h) :- Reachable(m), Alloc(v, h, m).
VarPointsTo(t, h) :- Move(t, f), VarPointsTo(f, h).
// Casts flow like moves in the paper's model; swap in the commented rule
// for Doop CheckCast semantics.
VarPointsTo(t, h) :- Cast(t, f, _), VarPointsTo(f, h).
// VarPointsTo(t, h) :- Cast(t, f, type), VarPointsTo(f, h),
//                      HeapType(h, ht), Subtype(ht, type).
VarPointsTo(t, h) :- InterProcAssign(t, f), VarPointsTo(f, h).
VarPointsTo(t, h) :- Load(t, b, fld), VarPointsTo(b, bh),
                     FldPointsTo(bh, fld, h).
FldPointsTo(bh, fld, h) :- Store(b, fld, f), VarPointsTo(f, h),
                           VarPointsTo(b, bh).
SFldPointsTo(fld, h) :- SStore(fld, f), VarPointsTo(f, h).
VarPointsTo(t, h) :- SLoad(t, fld, m), Reachable(m), SFldPointsTo(fld, h).

Reachable(tm),
VarPointsTo(this_, h),
CallGraph(invo, tm) :-
    VCall(base, sig, invo, im), Reachable(im), VarPointsTo(base, h),
    HeapType(h, ht), Lookup(ht, sig, tm), ThisVar(tm, this_).

Reachable(tm),
CallGraph(invo, tm) :-
    SCall(tm, invo, im), Reachable(im).

InterProcAssign(to, from) :-
    CallGraph(invo, m), FormalArg(m, i, to), ActualArg(invo, i, from).
InterProcAssign(to, from) :-
    CallGraph(invo, m), FormalReturn(m, from), ActualReturn(invo, to).

ThrowPointsTo(m, h) :- Throw(v, m), VarPointsTo(v, h).
ThrowPointsTo(cm, h) :-
    ThrowPointsTo(tm, h), CallGraph(invo, tm), SiteInMethod(invo, cm),
    NoCatch(invo).
VarPointsTo(cv, h) :-
    ThrowPointsTo(tm, h), CallGraph(invo, tm), Catch(invo, type, cv),
    HeapType(h, ht), Subtype(ht, type).
ThrowPointsTo(cm, h) :-
    ThrowPointsTo(tm, h), CallGraph(invo, tm), SiteInMethod(invo, cm),
    Catch(invo, type, _), HeapType(h, ht), !Subtype(ht, type).
)";
}
