//===- ir/Interpreter.h - Concrete IR execution -----------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete (dynamic) interpreter for the IR, used as a soundness oracle
/// in property tests: every points-to fact observed during execution must be
/// present in the result of any sound static analysis.
///
/// The language has no branches, so a program has a single execution trace
/// (modulo recursion, which is cut off by a step budget).  Method bodies are
/// executed in instruction order; loads from never-written fields yield
/// null; calls on null receivers are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef IR_INTERPRETER_H
#define IR_INTERPRETER_H

#include "ir/Program.h"
#include "support/Ids.h"

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

namespace intro {

/// Points-to facts observed during one concrete execution.
struct DynamicFacts {
  /// Each (Var, Heap) pair such that Var held an object allocated at Heap.
  std::vector<std::pair<VarId, HeapId>> VarPointsTo;
  /// Each (BaseHeap, Field, Heap) observed in the concrete heap.
  std::vector<std::tuple<HeapId, FieldId, HeapId>> FieldPointsTo;
  /// Each method that started executing.
  std::vector<MethodId> ReachedMethods;
  /// Each (Site, Target) dispatched at a virtual or static call.
  std::vector<std::pair<SiteId, MethodId>> CallEdges;
  /// Each (Field, Heap) observed in a static field.
  std::vector<std::pair<FieldId, HeapId>> StaticFieldPointsTo;
  /// Each (Method, Heap) such that an exception object allocated at Heap
  /// escaped Method (thrown by it, or uncaught from a callee).
  std::vector<std::pair<MethodId, HeapId>> MethodThrows;
  /// True if the step budget was exhausted (trace is a prefix).
  bool Truncated = false;
};

/// Executes \p Prog from its entry methods for at most \p MaxSteps executed
/// instructions, recording points-to facts.
///
/// \returns the observed facts, deduplicated and deterministically ordered.
DynamicFacts interpret(const Program &Prog, uint64_t MaxSteps = 100000);

} // namespace intro

#endif // IR_INTERPRETER_H
