//===- ir/FactsIO.h - Doop-style facts-directory export ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes a program's input relations as a Doop-style facts directory: one
/// tab-separated `.facts` file per relation, using human-readable entity
/// names, so external Datalog engines (Souffle, LogicBlox) can consume the
/// same inputs this framework analyzes.
///
//===----------------------------------------------------------------------===//

#ifndef IR_FACTSIO_H
#define IR_FACTSIO_H

#include <string>
#include <vector>

namespace intro {

class Program;

/// Writes one `<Relation>.facts` TSV file per input relation of \p Prog
/// into directory \p Directory (which must exist).
/// \returns the paths of the files written, or an empty vector with
/// \p Error set on I/O failure.
std::vector<std::string> writeFactsDirectory(const Program &Prog,
                                             const std::string &Directory,
                                             std::string &Error);

} // namespace intro

#endif // IR_FACTSIO_H
