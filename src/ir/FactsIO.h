//===- ir/FactsIO.h - Doop-style facts-directory export ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes a program's input relations as a Doop-style facts directory: one
/// tab-separated `.facts` file per relation, using human-readable entity
/// names, so external Datalog engines (Souffle, LogicBlox) can consume the
/// same inputs this framework analyzes.
///
/// A second, numeric-id format (FactsIOOptions::NumericIds) round-trips
/// through readFactsDirectory(), which validates its input defensively:
/// truncated or over-long records, non-numeric or out-of-range ids, and
/// duplicate declarations in functional relations all produce a
/// `<file>:<line>:`-prefixed diagnostic instead of a crash or a silently
/// corrupted fact base.
///
//===----------------------------------------------------------------------===//

#ifndef IR_FACTSIO_H
#define IR_FACTSIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace intro {

class Program;
struct ProgramFacts;

/// Options of writeFactsDirectory().
struct FactsIOOptions {
  /// Write raw numeric ids instead of entity names.  Numeric directories
  /// round-trip through readFactsDirectory(); named ones are for external
  /// Datalog engines (which intern the strings themselves).
  bool NumericIds = false;
};

/// The entity-space sizes a facts directory is validated against: every id
/// of a relation column must be below the size of its column's id space.
struct FactsShape {
  uint32_t NumVars = 0;
  uint32_t NumHeaps = 0;
  uint32_t NumMethods = 0;
  uint32_t NumFields = 0;
  uint32_t NumTypes = 0;
  uint32_t NumSites = 0;
  uint32_t NumSigs = 0;
};

/// \returns the entity-space sizes of \p Prog.
FactsShape shapeOf(const Program &Prog);

/// Writes one `<Relation>.facts` TSV file per input relation of \p Prog
/// into directory \p Directory (which must exist).
/// \returns the paths of the files written, or an empty vector with
/// \p Error set on I/O failure.
std::vector<std::string>
writeFactsDirectory(const Program &Prog, const std::string &Directory,
                    std::string &Error,
                    const FactsIOOptions &Options = FactsIOOptions());

/// Reads a numeric-id facts directory (written with
/// FactsIOOptions::NumericIds) back into \p Facts, validating every record
/// against \p Shape.  Rejected with a diagnostic in \p Error (and \p Facts
/// left unspecified):
///   - a missing or unreadable relation file,
///   - a record with too few or too many columns (truncation/corruption),
///   - a column that is not a decimal uint32, or an id at or beyond its
///     column's entity-space size,
///   - a duplicate declaration in a functional relation (e.g. two
///     FormalReturn rows for one method, or two ActualArg rows for one
///     (site, index) pair).
/// \returns true on success.
bool readFactsDirectory(const std::string &Directory, const FactsShape &Shape,
                        ProgramFacts &Facts, std::string &Error);

} // namespace intro

#endif // IR_FACTSIO_H
