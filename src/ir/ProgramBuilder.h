//===- ir/ProgramBuilder.h - Convenient IR construction ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent API for constructing Program instances in tests, examples, and
/// the synthetic workload generator.  The builder owns the Program under
/// construction; take() finalizes and releases it.
///
/// Typical usage:
/// \code
///   ProgramBuilder B;
///   TypeId Object = B.cls("Object");
///   TypeId A = B.cls("A", Object);
///   FieldId F = B.field(A, "f");
///   MethodBuilder Main = B.method(Object, "main", 0, /*IsStatic=*/true);
///   B.entry(Main.id());
///   VarId X = Main.local("x");
///   Main.alloc(X, A);
///   Program P = B.take();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef IR_PROGRAMBUILDER_H
#define IR_PROGRAMBUILDER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace intro {

class ProgramBuilder;

/// Builds the variables and body of one method.  Lightweight handle; copies
/// refer to the same underlying method.
class MethodBuilder {
public:
  /// \returns the method being built.
  MethodId id() const { return Method; }

  /// \returns the `this` variable (virtual methods only).
  VarId thisVar() const;

  /// \returns the \p Index-th formal parameter.
  VarId formal(uint32_t Index) const;

  /// \returns the formal return variable, creating it on first use.
  VarId returnVar();

  /// Creates a fresh local variable named \p Name.
  VarId local(std::string_view Name);

  /// Appends `To = new Type` and \returns the fresh allocation site.
  HeapId alloc(VarId To, TypeId Type);

  /// Appends `To = From`.
  void move(VarId To, VarId From);

  /// Appends `To = (Type) From`.
  void cast(VarId To, VarId From, TypeId Type);

  /// Appends `To = Base.Field`.
  void load(VarId To, VarId Base, FieldId Field);

  /// Appends `Base.Field = From`.
  void store(VarId Base, FieldId Field, VarId From);

  /// Appends the static-field load `To = Field`.
  void sload(VarId To, FieldId Field);

  /// Appends the static-field store `Field = From`.
  void sstore(FieldId Field, VarId From);

  /// Appends `throw From`.
  void throwStmt(VarId From);

  /// Attaches a catch clause to the most recently emitted call: exceptions
  /// of type \p Type (or a subtype) escaping the callee bind to \p Var.
  void attachCatch(SiteId Site, TypeId Type, VarId Var);

  /// Appends the virtual call `Result = Base.Name(Actuals...)`.
  /// Pass an invalid \p Result to ignore the return value.
  SiteId vcall(VarId Result, VarId Base, std::string_view Name,
               const std::vector<VarId> &Actuals);

  /// Appends the static call `Result = Target(Actuals...)`.
  SiteId scall(VarId Result, MethodId Target,
               const std::vector<VarId> &Actuals);

private:
  friend class ProgramBuilder;
  MethodBuilder(ProgramBuilder &Parent, MethodId Method)
      : Parent(&Parent), Method(Method) {}

  ProgramBuilder *Parent;
  MethodId Method;
};

/// Incrementally constructs a Program.
class ProgramBuilder {
public:
  /// Creates a class named \p Name extending \p Super (or a hierarchy root).
  TypeId cls(std::string_view Name, TypeId Super = TypeId::invalid());

  /// Declares field \p Name in class \p Owner.
  FieldId field(TypeId Owner, std::string_view Name);

  /// Declares a method and returns a builder for its body.  Virtual methods
  /// get a `this` variable; all methods get \p Arity formal parameters
  /// (named p0, p1, ...).
  MethodBuilder method(TypeId Owner, std::string_view Name, uint32_t Arity,
                       bool IsStatic = false);

  /// Like method(), with explicit formal parameter names and (optionally) a
  /// named formal-return variable (empty = none yet).  Used by the frontend,
  /// which must preserve source names.
  MethodBuilder methodNamed(TypeId Owner, std::string_view Name,
                            const std::vector<std::string> &ParamNames,
                            bool IsStatic, std::string_view ReturnName);

  /// Marks \p Method as an entry point.
  void entry(MethodId Method) { Prog.addEntry(Method); }

  /// \returns a builder handle for an already-declared method.
  MethodBuilder bodyOf(MethodId Method) { return MethodBuilder(*this, Method); }

  /// Read access to the program under construction.
  const Program &current() const { return Prog; }

  /// Finalizes and releases the program.  The builder must not be used
  /// afterwards.
  Program take();

private:
  friend class MethodBuilder;
  Program Prog;
  uint32_t NextHeapIndex = 0;
  uint32_t NextSiteIndex = 0;
};

} // namespace intro

#endif // IR_PROGRAMBUILDER_H
