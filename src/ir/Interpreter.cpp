//===- ir/Interpreter.cpp - Concrete IR execution -------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include <set>
#include <unordered_map>

using namespace intro;

namespace {

/// A concrete object: its allocation site plus field storage.  Object
/// handles are indices into the interpreter's object table.
struct ConcreteObject {
  HeapId Site;
  std::unordered_map<uint32_t, uint32_t> Fields; // FieldId raw -> object
};

constexpr uint32_t NullRef = 0xFFFFFFFFu;

class Machine {
public:
  Machine(const Program &Prog, uint64_t MaxSteps)
      : Prog(Prog), StepsLeft(MaxSteps) {}

  DynamicFacts run() {
    for (MethodId Entry : Prog.entries())
      callMethod(Entry, NullRef, {});
    finish();
    return std::move(Facts);
  }

private:
  uint32_t allocate(HeapId Site) {
    Objects.push_back(ConcreteObject{Site, {}});
    return static_cast<uint32_t>(Objects.size() - 1);
  }

  void recordVar(VarId Var, uint32_t Ref) {
    if (Ref == NullRef)
      return;
    SeenVarPointsTo.insert({Var.raw(), Objects[Ref].Site.raw()});
  }

  /// What one method activation produced: a return value and/or an escaping
  /// exception (both may be null).
  struct Outcome {
    uint32_t Return = NullRef;
    uint32_t Thrown = NullRef;
  };

  /// Executes \p Method with the given receiver and arguments.
  Outcome callMethod(MethodId Method, uint32_t Receiver,
                     const std::vector<uint32_t> &Args) {
    // Both budgets guard against runaway recursion: StepsLeft bounds total
    // work, Depth bounds the native stack.
    if (StepsLeft == 0 || Depth >= MaxDepth) {
      Facts.Truncated = true;
      return Outcome();
    }
    ++Depth;
    Outcome Result = execMethod(Method, Receiver, Args);
    --Depth;
    if (Result.Thrown != NullRef)
      SeenThrows.insert({Method.raw(), Objects[Result.Thrown].Site.raw()});
    return Result;
  }

  Outcome execMethod(MethodId Method, uint32_t Receiver,
                     const std::vector<uint32_t> &Args) {
    const MethodInfo &Info = Prog.method(Method);
    SeenMethods.insert(Method.raw());

    // Environment: VarId raw -> object handle.
    std::unordered_map<uint32_t, uint32_t> Env;
    if (!Info.IsStatic) {
      Env[Info.This.raw()] = Receiver;
      recordVar(Info.This, Receiver);
    }
    for (size_t Index = 0; Index < Info.Formals.size(); ++Index) {
      uint32_t Value = Index < Args.size() ? Args[Index] : NullRef;
      Env[Info.Formals[Index].raw()] = Value;
      recordVar(Info.Formals[Index], Value);
    }

    auto Get = [&](VarId Var) {
      auto It = Env.find(Var.raw());
      return It == Env.end() ? NullRef : It->second;
    };
    auto Set = [&](VarId Var, uint32_t Value) {
      Env[Var.raw()] = Value;
      recordVar(Var, Value);
    };

    for (const Instruction &Instr : Info.Body) {
      if (StepsLeft == 0) {
        Facts.Truncated = true;
        break;
      }
      --StepsLeft;
      switch (Instr.Kind) {
      case InstrKind::Alloc:
        Set(Instr.To, allocate(Instr.Heap));
        break;
      case InstrKind::Move:
        Set(Instr.To, Get(Instr.From));
        break;
      case InstrKind::Cast: {
        // A concrete cast succeeds (propagates) or fails (yields null); a
        // failing cast models a thrown exception cutting the dataflow.
        uint32_t Value = Get(Instr.From);
        if (Value != NullRef &&
            Prog.isSubtypeOf(Prog.heap(Objects[Value].Site).Type,
                             Instr.CastType))
          Set(Instr.To, Value);
        else
          Set(Instr.To, NullRef);
        break;
      }
      case InstrKind::Load: {
        uint32_t Base = Get(Instr.Base);
        if (Base == NullRef) {
          Set(Instr.To, NullRef);
          break;
        }
        auto It = Objects[Base].Fields.find(Instr.Field.raw());
        Set(Instr.To, It == Objects[Base].Fields.end() ? NullRef : It->second);
        break;
      }
      case InstrKind::Store: {
        uint32_t Base = Get(Instr.Base);
        uint32_t Value = Get(Instr.From);
        if (Base == NullRef || Value == NullRef)
          break;
        Objects[Base].Fields[Instr.Field.raw()] = Value;
        SeenFieldPointsTo.insert(
            {Objects[Base].Site.raw(),
             {Instr.Field.raw(), Objects[Value].Site.raw()}});
        break;
      }
      case InstrKind::SLoad: {
        auto It = Globals.find(Instr.Field.raw());
        Set(Instr.To, It == Globals.end() ? NullRef : It->second);
        break;
      }
      case InstrKind::SStore: {
        uint32_t Value = Get(Instr.From);
        if (Value == NullRef)
          break;
        Globals[Instr.Field.raw()] = Value;
        SeenStaticFields.insert(
            {Instr.Field.raw(), Objects[Value].Site.raw()});
        break;
      }
      case InstrKind::Throw: {
        uint32_t Value = Get(Instr.From);
        if (Value == NullRef)
          break; // Throwing null: modeled as a no-op.
        Outcome Thrown;
        Thrown.Thrown = Value;
        return Thrown;
      }
      case InstrKind::Call: {
        const SiteInfo &Site = Prog.site(Instr.Site);
        MethodId Target;
        uint32_t Receiver2 = NullRef;
        if (Site.IsStatic) {
          Target = Site.StaticTarget;
        } else {
          Receiver2 = Get(Site.Base);
          if (Receiver2 == NullRef)
            break; // Null receiver: call does not happen.
          Target = Prog.lookup(Prog.heap(Objects[Receiver2].Site).Type,
                               Site.Sig);
          if (!Target.isValid())
            break; // No method matches: dispatch failure, skipped.
        }
        SeenCallEdges.insert({Instr.Site.raw(), Target.raw()});
        std::vector<uint32_t> CallArgs;
        CallArgs.reserve(Site.Actuals.size());
        for (VarId Actual : Site.Actuals)
          CallArgs.push_back(Get(Actual));
        Outcome Callee = callMethod(Target, Receiver2, CallArgs);
        if (Callee.Thrown != NullRef) {
          if (Site.CatchVar.isValid() &&
              Prog.isSubtypeOf(Prog.heap(Objects[Callee.Thrown].Site).Type,
                               Site.CatchType)) {
            Set(Site.CatchVar, Callee.Thrown);
            break; // Caught: execution continues after the call.
          }
          return Callee; // Uncaught: unwind this activation too.
        }
        if (Site.Result.isValid())
          Set(Site.Result, Callee.Return);
        break;
      }
      }
    }

    Outcome Normal;
    if (Info.Return.isValid())
      Normal.Return = Get(Info.Return);
    return Normal;
  }

  void finish() {
    for (auto [Var, Heap] : SeenVarPointsTo)
      Facts.VarPointsTo.push_back({VarId(Var), HeapId(Heap)});
    for (const auto &[BaseHeap, FieldAndHeap] : SeenFieldPointsTo)
      Facts.FieldPointsTo.push_back({HeapId(BaseHeap),
                                     FieldId(FieldAndHeap.first),
                                     HeapId(FieldAndHeap.second)});
    for (uint32_t Method : SeenMethods)
      Facts.ReachedMethods.push_back(MethodId(Method));
    for (auto [Site, Target] : SeenCallEdges)
      Facts.CallEdges.push_back({SiteId(Site), MethodId(Target)});
    for (auto [Field, Heap] : SeenStaticFields)
      Facts.StaticFieldPointsTo.push_back({FieldId(Field), HeapId(Heap)});
    for (auto [Method, Heap] : SeenThrows)
      Facts.MethodThrows.push_back({MethodId(Method), HeapId(Heap)});
  }

  static constexpr uint32_t MaxDepth = 400;

  const Program &Prog;
  uint64_t StepsLeft;
  uint32_t Depth = 0;
  std::vector<ConcreteObject> Objects;
  DynamicFacts Facts;
  // std::set gives the deterministic output ordering for free.
  std::set<std::pair<uint32_t, uint32_t>> SeenVarPointsTo;
  std::set<std::pair<uint32_t, std::pair<uint32_t, uint32_t>>>
      SeenFieldPointsTo;
  std::set<uint32_t> SeenMethods;
  std::set<std::pair<uint32_t, uint32_t>> SeenCallEdges;
  std::set<std::pair<uint32_t, uint32_t>> SeenStaticFields;
  std::set<std::pair<uint32_t, uint32_t>> SeenThrows;
  std::unordered_map<uint32_t, uint32_t> Globals;
};

} // namespace

DynamicFacts intro::interpret(const Program &Prog, uint64_t MaxSteps) {
  return Machine(Prog, MaxSteps).run();
}
