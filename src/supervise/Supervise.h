//===- supervise/Supervise.h - Supervised batch analysis jobs ---*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervision layer: runs each analysis job in a forked, rlimit-guarded
/// child process (support/Subprocess.h) and turns whatever happens to that
/// child into a classified, retried, reported event.  The cooperative
/// resilience stack (degradation ladder, budgets, cancellation) handles
/// failures the solver can *see*; this layer handles the ones it cannot —
/// segfaults, OOM kills, hangs, corrupted inputs — which is what a
/// production service actually meets when it analyzes untrusted workloads.
///
/// The flow per job:
///
///   1. fork a child; the child parses + validates the input (the untrusted
///      boundary stays inside the sandbox), then runs the sequential
///      degradation ladder (runResilient) and writes an
///      `intro-run-report-v1` line over the pipe.  Before each rung it
///      streams a one-line rung_start progress event, so the parent knows
///      the deepest rung that *started* even if the child dies hard.
///   2. classify the outcome (JobOutcomeClass below) from the exit code /
///      signal / report;
///   3. retry transient classes with exponential backoff + deterministic
///      seeded jitter, relaunching hard deaths with the rungs at-and-above
///      the one that killed the child disabled (escalateBelow) — the child
///      resumes the ladder where its predecessor died;
///   4. quarantine jobs that are deterministically bad (parse errors,
///      ladder floor failed) or that exhausted their retry budget.
///
/// The batch report (`intro-batch-report-v1`) separates a "deterministic"
/// section — classes, planned backoff delays, rung progressions, solver
/// counters — from a "timing" section holding every wall-clock value, so
/// the deterministic bytes are identical across retry timing and worker
/// counts for deterministic child behavior (the same contract the fig
/// harness reports follow).
///
//===----------------------------------------------------------------------===//

#ifndef SUPERVISE_SUPERVISE_H
#define SUPERVISE_SUPERVISE_H

#include "cache/ResultCache.h"
#include "introspect/Resilient.h"
#include "support/Subprocess.h"

#include <functional>
#include <string>
#include <vector>

namespace intro::supervise {

/// The failure taxonomy: what one supervised attempt amounted to, after
/// combining the child's process-level fate with its report.
enum class JobOutcomeClass : uint8_t {
  Clean,           ///< Completed; a usable result with a report.
  AnalysisFailure, ///< Ladder floor failed deterministically; not retried.
  BadInput,        ///< Parse/validation errors; deterministic, not retried.
  NonzeroExit,     ///< Unexplained nonzero exit; retried.
  Signalled,       ///< Killed by a signal (segfault, abort); retried.
  OutOfMemory,     ///< Starved under RLIMIT_AS; retried on a tighter rung.
  WatchdogTimeout, ///< Watchdog (wall) or RLIMIT_CPU (SIGXCPU); retried.
  BadReport,       ///< Exited clean but the report is missing/garbled.
};

/// \returns a stable lower-snake-case name for \p Class (report vocabulary).
const char *jobOutcomeClassName(JobOutcomeClass Class);

/// \returns true if \p Class is transient enough to retry.  Deterministic
/// verdicts (Clean, BadInput, AnalysisFailure) are not: retrying them
/// reproduces them.
bool isRetryable(JobOutcomeClass Class);

/// Deterministic fault injection for the *process* level — the hard-death
/// counterpart of the solver's FaultPlan.  Inert by default.  The chaos
/// fires inside the child when the given rung starts (report kinds fire at
/// report-writing time instead), and only while the 1-based attempt number
/// is <= UntilAttempt — so a plan with UntilAttempt=1 crashes the first
/// attempt and lets the retry succeed.
struct ChaosPlan {
  enum class Kind : uint8_t {
    None,            ///< No injected fault.
    Crash,           ///< raise(SIGKILL): an uncatchable hard death.
    Oom,             ///< Allocate until the address-space limit starves us.
    Spin,            ///< Sleep forever; only the watchdog ends it.
    ExitNonzero,     ///< _exit(13) mid-ladder, skipping the report.
    GarbageReport,   ///< Exit clean but write binary garbage as the report.
    TruncatedReport, ///< Exit clean but cut the report mid-object.
  };
  Kind Fault = Kind::None;
  /// The rung whose start triggers mid-ladder kinds.
  DegradationLevel AtLevel = DegradationLevel::Deep;
  /// Fire only on attempts <= this (1-based); default: every attempt.
  uint32_t UntilAttempt = ~0u;

  bool armed() const { return Fault != Kind::None; }
};

/// Parses a chaos SPEC of the form `KIND[:LEVEL][:UNTIL]` (the payload of
/// intro_batch's `--chaos=SPEC@NAME` and of the serve protocol's submit
/// "chaos" member) into \p Plan.  KIND is one of crash / oom / spin / exit
/// / garbage / truncate; LEVEL a degradation-level name; UNTIL a 1-based
/// attempt bound.  \returns false and sets \p Error on bad syntax.
bool parseChaosPlan(const std::string &Spec, ChaosPlan &Plan,
                    std::string &Error);

/// One input to analyze: a named textual-IR program.
struct JobSpec {
  std::string Name;   ///< Stable identifier (file name) used in reports.
  std::string Source; ///< Textual IR; parsed inside the child.
  ChaosPlan Chaos;    ///< Injected process-level fault (tests/smoke only).
};

/// Makes every JobSpec name unique, in place, preserving order: the second
/// job named "app" becomes "app.2", the third "app.3", and so on; suffixed
/// names that would collide with a *later* literal name keep counting up.
/// Names are report keys and quarantine file stems — two inputs from
/// different directories sharing a basename must not overwrite each
/// other's quarantine copy or alias each other in the report.
void disambiguateJobNames(std::vector<JobSpec> &Jobs);

/// Retry/backoff policy.  Delays are planned deterministically from (Seed,
/// job index, attempt) via the repo's xorshift Rng, so the planned schedule
/// is part of the deterministic report even though actual sleeping is not.
struct RetryPolicy {
  uint32_t MaxAttempts = 3;    ///< Total attempts per job (first + retries).
  double BaseDelayMs = 50;     ///< Backoff before the first retry.
  double Multiplier = 2.0;     ///< Exponential growth per further retry.
  double JitterFraction = 0.5; ///< Delay varies by +/- this fraction.
  uint64_t Seed = 0x5eed;      ///< Jitter seed (reproducible schedules).
};

/// \returns the planned backoff in ms before retry number \p Attempt
/// (2-based: the delay planned after attempt Attempt-1 failed) of job
/// \p JobIndex.  Pure function of its arguments.
double plannedBackoffMs(const RetryPolicy &Policy, size_t JobIndex,
                        uint32_t Attempt);

/// Disables every ladder rung at or above \p Level in \p Options, so a
/// relaunched child resumes strictly below the rung that killed its
/// predecessor.  Insensitive (the floor) disables nothing — there is
/// nothing below the floor to resume at.
void escalateBelow(ResilientOptions &Options, DegradationLevel Level);

/// Everything recorded about one child launch of one job.
struct JobAttempt {
  ChildStatus Status = ChildStatus::CleanExit; ///< Process-level fate.
  JobOutcomeClass Class = JobOutcomeClass::Clean;
  int ExitCode = 0;
  int TermSignal = 0;
  /// Deepest rung the child reported starting (progress lines); valid only
  /// when AnyRungStarted.
  DegradationLevel DeepestStartedRung = DegradationLevel::Deep;
  uint32_t DeepestStartedRound = 0;
  bool AnyRungStarted = false;
  /// Why the child's report could not be used (empty when it could).
  std::string ReportError;
  /// Backoff planned after this attempt (0 when no retry follows).
  double PlannedDelayMs = 0;
  /// Child ladder history decoded from the report (empty on hard deaths).
  AttemptTrace Ladder;
  /// True when the child ran with a Pass-A cache (BatchOptions::CacheDir);
  /// Cache then holds the child's cache counters decoded from its report.
  bool CacheEnabled = false;
  cache::CacheStats Cache;
  double Seconds = 0; ///< Wall clock of the attempt (timing-only).
};

/// The final record of one job after retries settled.
struct JobResult {
  std::string Name;
  JobOutcomeClass FinalClass = JobOutcomeClass::Clean;
  bool Quarantined = false; ///< Deterministically bad or retries exhausted.
  /// True when JobHooks::ShouldAbort stopped the retry loop: the last
  /// attempt's class stands but the job was neither retried nor
  /// quarantined — the caller (the analysis service, for a cancelled
  /// request) asked for the loop to end and owns the interpretation.
  bool Aborted = false;
  std::vector<JobAttempt> Attempts;
  /// Parse/validation diagnostics (BadInput jobs).
  std::vector<std::string> InputErrors;
  /// Winning rung/status of the final successful attempt (Clean jobs).
  std::string ResultLevel;
  std::string ResultStatus;
  bool ResultCompleted = false;
};

/// Batch-level configuration.
struct BatchOptions {
  /// The base degradation-ladder configuration every job starts from.
  /// Cancel/OnRungStart/Portfolio are supervisor-owned and ignored:
  /// children always run the sequential ladder (one thread after fork).
  ResilientOptions Ladder;
  /// Hard limits applied to every child.
  ChildLimits Limits;
  RetryPolicy Retry;
  /// Supervisor threads running jobs concurrently (1 = serial).  The
  /// deterministic report section is identical for any value.
  unsigned Workers = 1;
  /// Injectable sleeper for backoff delays; tests swap in a no-op to prove
  /// the deterministic report does not depend on retry timing.  Null means
  /// actually sleep.
  std::function<void(double Ms)> SleepMs;
  /// Pass-A cache directory, shared across jobs and retries.  Empty
  /// disables caching.  Each child opens its own ResultCache over this
  /// directory (pointers cannot cross the fork), so a retried or
  /// escalateBelow-relaunched child reloads the pre-analysis its
  /// predecessor stored instead of re-solving it.
  std::string CacheDir;
  /// ResultCache::Options::MaxEntries for the shared directory (0 = no cap).
  uint64_t CacheMaxEntries = 0;
};

/// The outcome of a whole batch.
struct BatchResult {
  std::vector<JobResult> Jobs; ///< In input order, independent of Workers.
  double TotalSeconds = 0;     ///< Wall clock of the batch (timing-only).
};

/// Per-job supervision hooks.  All optional; the plain batch runner uses
/// none of them.  The analysis service (src/serve) uses every one: it
/// streams child output to the requesting client as it arrives, kills the
/// running child when the client cancels, and stops the retry loop for a
/// cancelled job instead of burning the remaining attempts.
struct JobHooks {
  /// Observes the child's raw pipe bytes incrementally (supervising
  /// thread, pipe-read chunk boundaries).  \p Attempt is the 1-based
  /// attempt the bytes belong to, so a consumer reassembling lines can
  /// reset its buffer between attempts.
  std::function<void(uint32_t Attempt, std::string_view Chunk)> OnChildOutput;
  /// Checked after each attempt settles; returning true ends the retry
  /// loop immediately (JobResult::Aborted) regardless of retry budget.
  std::function<bool()> ShouldAbort;
  /// Kill switch wired into ChildLimits::Cancel for every attempt: when it
  /// becomes true the in-flight child is SIGKILLed (classified
  /// Signalled/SIGKILL).  Pair with ShouldAbort to stop the loop too.
  const std::atomic<bool> *CancelChild = nullptr;
};

/// Runs one job under supervision: launch, classify, retry with backoff
/// and ladder escalation, quarantine.  \p JobIndex seeds the jitter.
JobResult runSupervisedJob(const JobSpec &Job, size_t JobIndex,
                           const BatchOptions &Options);

/// Hooked variant of runSupervisedJob; see JobHooks.
JobResult runSupervisedJob(const JobSpec &Job, size_t JobIndex,
                           const BatchOptions &Options,
                           const JobHooks &Hooks);

/// Runs every job (optionally on several supervisor threads) and collects
/// results in input order.  A non-null \p HookFactory is called once per
/// job index (before the job starts, possibly from a supervisor thread) to
/// produce that job's hooks.
BatchResult runSupervisedBatch(const std::vector<JobSpec> &Jobs,
                               const BatchOptions &Options);
BatchResult
runSupervisedBatch(const std::vector<JobSpec> &Jobs,
                   const BatchOptions &Options,
                   const std::function<JobHooks(size_t JobIndex)> &HookFactory);

/// Writes the `intro-batch-report-v1` document: a "deterministic" object
/// (policy, limits, ladder options, per-job classes / attempts / planned
/// delays / rung progressions / deterministic solver counters, totals), a
/// "cache" object (per-job and total probe/hit/miss/store/evict counters
/// when BatchOptions::CacheDir is set — deterministic for a given starting
/// cache state, but by construction different between a cold and a warm
/// run, so it lives *outside* the "deterministic" section whose bytes are
/// the cold-vs-warm identity contract), and a "timing" object (every
/// wall-clock value).
void writeBatchReportJson(JsonWriter &J, const BatchResult &Batch,
                          const BatchOptions &Options);

} // namespace intro::supervise

#endif // SUPERVISE_SUPERVISE_H
