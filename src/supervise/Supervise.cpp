//===- supervise/Supervise.cpp - Supervised batch analysis jobs -----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "supervise/Supervise.h"

#include "analysis/ContextPolicy.h"
#include "analysis/Reports.h"
#include "frontend/Parser.h"
#include "ir/Validator.h"
#include "support/ExitCodes.h"
#include "support/Json.h"
#include "support/ParseNum.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cmath>
#include <csignal>
#include <cstring>
#include <future>
#include <new>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include <unistd.h>

using namespace intro;
using namespace intro::supervise;

const char *intro::supervise::jobOutcomeClassName(JobOutcomeClass Class) {
  switch (Class) {
  case JobOutcomeClass::Clean:
    return "clean";
  case JobOutcomeClass::AnalysisFailure:
    return "analysis_failure";
  case JobOutcomeClass::BadInput:
    return "bad_input";
  case JobOutcomeClass::NonzeroExit:
    return "nonzero_exit";
  case JobOutcomeClass::Signalled:
    return "signalled";
  case JobOutcomeClass::OutOfMemory:
    return "out_of_memory";
  case JobOutcomeClass::WatchdogTimeout:
    return "watchdog_timeout";
  case JobOutcomeClass::BadReport:
    return "bad_report";
  }
  return "?";
}

bool intro::supervise::isRetryable(JobOutcomeClass Class) {
  switch (Class) {
  case JobOutcomeClass::Clean:
  case JobOutcomeClass::AnalysisFailure:
  case JobOutcomeClass::BadInput:
    return false;
  case JobOutcomeClass::NonzeroExit:
  case JobOutcomeClass::Signalled:
  case JobOutcomeClass::OutOfMemory:
  case JobOutcomeClass::WatchdogTimeout:
  case JobOutcomeClass::BadReport:
    return true;
  }
  return false;
}

double intro::supervise::plannedBackoffMs(const RetryPolicy &Policy,
                                          size_t JobIndex, uint32_t Attempt) {
  if (Attempt < 2)
    return 0;
  // One draw per (seed, job, attempt): the schedule of any attempt is
  // reproducible in isolation, independent of how many draws other jobs
  // made (a shared generator would couple the jobs' schedules).
  Rng R(Policy.Seed + JobIndex * 0x9E3779B97F4A7C15ull + Attempt);
  double Unit = static_cast<double>(R.next() >> 11) *
                (1.0 / 9007199254740992.0); // 53-bit fraction in [0, 1).
  double Delay =
      Policy.BaseDelayMs *
      std::pow(Policy.Multiplier, static_cast<double>(Attempt) - 2.0);
  Delay *= 1.0 + Policy.JitterFraction * (2.0 * Unit - 1.0);
  return Delay < 0 ? 0 : Delay;
}

void intro::supervise::disambiguateJobNames(std::vector<JobSpec> &Jobs) {
  std::unordered_set<std::string> Taken;
  for (const JobSpec &Job : Jobs)
    Taken.insert(Job.Name);
  std::unordered_map<std::string, uint32_t> NextSuffix;
  std::unordered_set<std::string> Seen;
  for (JobSpec &Job : Jobs) {
    if (Seen.insert(Job.Name).second)
      continue;
    // Later duplicate: append the smallest ".N" (N >= 2) that collides
    // with neither an original name nor an already-assigned one.
    uint32_t &Suffix = NextSuffix[Job.Name];
    if (Suffix < 2)
      Suffix = 2;
    std::string Candidate;
    do {
      Candidate = Job.Name + "." + std::to_string(Suffix++);
    } while (Taken.count(Candidate) || Seen.count(Candidate));
    Job.Name = std::move(Candidate);
    Seen.insert(Job.Name);
  }
}

bool intro::supervise::parseChaosPlan(const std::string &Spec,
                                      ChaosPlan &Plan, std::string &Error) {
  std::vector<std::string> Parts;
  size_t Begin = 0;
  while (Begin <= Spec.size()) {
    size_t Colon = Spec.find(':', Begin);
    size_t Stop = Colon == std::string::npos ? Spec.size() : Colon;
    Parts.push_back(Spec.substr(Begin, Stop - Begin));
    Begin = Stop + 1;
    if (Colon == std::string::npos)
      break;
  }
  if (Parts.empty() || Parts.size() > 3) {
    Error = "expected KIND[:LEVEL][:UNTIL], got '" + Spec + "'";
    return false;
  }

  const std::string &Kind = Parts[0];
  if (Kind == "crash")
    Plan.Fault = ChaosPlan::Kind::Crash;
  else if (Kind == "oom")
    Plan.Fault = ChaosPlan::Kind::Oom;
  else if (Kind == "spin")
    Plan.Fault = ChaosPlan::Kind::Spin;
  else if (Kind == "exit")
    Plan.Fault = ChaosPlan::Kind::ExitNonzero;
  else if (Kind == "garbage")
    Plan.Fault = ChaosPlan::Kind::GarbageReport;
  else if (Kind == "truncate")
    Plan.Fault = ChaosPlan::Kind::TruncatedReport;
  else {
    Error = "unknown chaos kind '" + Kind +
            "' (crash|oom|spin|exit|garbage|truncate)";
    return false;
  }
  if (Parts.size() >= 2 && !Parts[1].empty() &&
      !degradationLevelFromName(Parts[1], Plan.AtLevel)) {
    Error = "unknown degradation level '" + Parts[1] + "'";
    return false;
  }
  if (Parts.size() == 3 &&
      !parseU32("chaos UNTIL", Parts[2], 1,
                std::numeric_limits<uint32_t>::max(), Plan.UntilAttempt,
                Error))
    return false;
  return true;
}

void intro::supervise::escalateBelow(ResilientOptions &Options,
                                     DegradationLevel Level) {
  // Ladder execution order: Deep, Insensitive (pre-analysis), IntroB,
  // IntroA, TightenedIntroA.  Dying *at* a rung disables that rung and
  // every stronger one; dying in the pre-analysis leaves nothing to
  // disable (it is both the gate and the floor).
  switch (Level) {
  case DegradationLevel::TightenedIntroA:
    Options.TightenedRounds = 0;
    [[fallthrough]];
  case DegradationLevel::IntroA:
    Options.AttemptIntroA = false;
    [[fallthrough]];
  case DegradationLevel::IntroB:
    Options.AttemptIntroB = false;
    [[fallthrough]];
  case DegradationLevel::Deep:
    Options.AttemptDeep = false;
    break;
  case DegradationLevel::Insensitive:
    break;
  }
}

namespace {

//===----------------------------------------------------------------------===//
// Child side: parse, run the ladder, stream progress + report.
//===----------------------------------------------------------------------===//

/// Burns address space until the RLIMIT_AS guard starves us.  Reservations
/// only — the pages are never touched, so without a limit the loop ends at
/// the pin-array bound and still reports OOM instead of harming the host.
[[noreturn]] void starveMemory() {
  constexpr size_t ChunkBytes = 64ull << 20;
  constexpr size_t MaxChunks = 4096;
  static void *volatile Pins[MaxChunks]; // volatile: the pins must stay.
  size_t Count = 0;
  while (Count < MaxChunks) {
    void *Chunk = ::operator new(ChunkBytes, std::nothrow);
    if (!Chunk)
      break;
    Pins[Count++] = Chunk;
  }
  (void)Pins[0];
  throw std::bad_alloc();
}

/// Fires \p Chaos if it is armed for this rung and attempt.  The caller
/// already emitted (and flushed) the rung_start progress line, so the
/// parent knows where the body is buried.
void maybeFireChaos(const ChaosPlan &Chaos, DegradationLevel Level,
                    uint32_t Attempt) {
  if (!Chaos.armed() || Level != Chaos.AtLevel || Attempt > Chaos.UntilAttempt)
    return;
  switch (Chaos.Fault) {
  case ChaosPlan::Kind::Crash:
    // Not a real SIGSEGV on purpose: sanitizer runtimes intercept SIGSEGV
    // and exit through their own reporting path, which would change the
    // classification per build flavor.  SIGKILL is uncatchable everywhere.
    ::raise(SIGKILL);
    break;
  case ChaosPlan::Kind::Oom:
    starveMemory();
  case ChaosPlan::Kind::Spin:
    for (;;)
      ::usleep(50'000);
  case ChaosPlan::Kind::ExitNonzero:
    ::_exit(13);
  case ChaosPlan::Kind::None:
  case ChaosPlan::Kind::GarbageReport:
  case ChaosPlan::Kind::TruncatedReport:
    break;
  }
}

/// Writes one CacheStats snapshot as a JSON object.
void writeCacheStatsJson(JsonWriter &J, const cache::CacheStats &Stats) {
  J.beginObject();
  J.key("probes");
  J.value(Stats.Probes);
  J.key("hits");
  J.value(Stats.Hits);
  J.key("misses");
  J.value(Stats.Misses);
  J.key("corrupt_entries");
  J.value(Stats.CorruptEntries);
  J.key("stores");
  J.value(Stats.Stores);
  J.key("store_failures");
  J.value(Stats.StoreFailures);
  J.key("evictions");
  J.value(Stats.Evictions);
  J.endObject();
}

/// Writes the child's final `intro-run-report-v1` line.  \p Outcome may be
/// null (bad-input reports carry diagnostics instead).  \p Cache (when the
/// child ran with a Pass-A cache) contributes a top-level "cache" object —
/// a sibling of "deterministic", not part of it: the counters are
/// deterministic for a given starting cache state but necessarily differ
/// between a cold and a warm run, and "deterministic" is the section whose
/// bytes must not.
void writeChildReport(std::ostream &Report, const JobSpec &Job,
                      uint32_t Attempt, const ResilientOptions &Ladder,
                      const ResilientOutcome *Outcome,
                      const std::vector<std::string> &InputErrors,
                      const cache::ResultCache *Cache = nullptr) {
  JsonWriter J(Report);
  J.beginObject();
  J.key("schema");
  J.value("intro-run-report-v1");
  J.key("deterministic");
  J.beginObject();
  J.key("job");
  J.value(Job.Name);
  J.key("attempt");
  J.value(Attempt);
  J.key("options");
  writeResilientOptionsJson(J, Ladder);
  if (!InputErrors.empty()) {
    J.key("input_errors");
    J.beginArray();
    for (const std::string &Error : InputErrors)
      J.value(Error);
    J.endArray();
  }
  if (Outcome) {
    J.key("outcome");
    writeResilientOutcomeJson(J, *Outcome);
  }
  J.endObject();
  if (Cache) {
    J.key("cache");
    writeCacheStatsJson(J, Cache->stats());
  }
  J.key("timing");
  J.beginObject();
  J.key("total_seconds");
  J.value(Outcome ? Outcome->TotalSeconds : 0.0);
  J.endObject();
  J.endObject();
  Report << '\n';
  Report.flush();
}

/// The analysis payload run inside the forked child.  Parsing and
/// validation happen here — the untrusted-input boundary stays inside the
/// sandbox — then the sequential degradation ladder runs with per-rung
/// progress streaming.
int childAnalyze(const JobSpec &Job, const ResilientOptions &BaseLadder,
                 uint32_t Attempt, std::ostream &Report,
                 const std::string &CacheDir, uint64_t CacheMaxEntries) {
  ParseResult Parsed = parseProgram(Job.Source);
  std::vector<std::string> InputErrors = std::move(Parsed.Errors);
  if (InputErrors.empty())
    InputErrors = validateProgram(Parsed.Prog);
  if (!InputErrors.empty()) {
    writeChildReport(Report, Job, Attempt, BaseLadder, nullptr, InputErrors);
    return ExitBadInput;
  }

  ResilientOptions Ladder = BaseLadder;

  // The child owns its cache handle: the parent's pointers cannot cross
  // the fork, and the shared directory is the actual cross-process state.
  // A retried or escalateBelow-relaunched child probes the same directory
  // its predecessor stored into, and reloads Pass A instead of re-solving.
  std::optional<cache::ResultCache> Cache;
  cache::Fingerprint CacheKey;
  if (!CacheDir.empty()) {
    Cache.emplace(cache::ResultCache::Options{CacheDir, CacheMaxEntries});
    CacheKey = cache::fingerprintProgram(Parsed.Prog);
    Ladder.Cache = &*Cache;
    Ladder.CacheKey = &CacheKey;
  }
  Ladder.OnRungStart = [&](DegradationLevel Level, uint32_t Round) {
    JsonWriter J(Report);
    J.beginObject();
    J.key("event");
    J.value("rung_start");
    J.key("level");
    J.value(degradationLevelName(Level));
    J.key("round");
    J.value(Round);
    J.endObject();
    Report << '\n';
    Report.flush();
    maybeFireChaos(Job.Chaos, Level, Attempt);
  };

  auto Deep = makeObjectPolicy(Parsed.Prog, 2, 1);
  ResilientOutcome Outcome = runResilient(Parsed.Prog, *Deep, Ladder);

  bool ReportChaos =
      Job.Chaos.armed() && Attempt <= Job.Chaos.UntilAttempt &&
      (Job.Chaos.Fault == ChaosPlan::Kind::GarbageReport ||
       Job.Chaos.Fault == ChaosPlan::Kind::TruncatedReport);
  if (ReportChaos) {
    if (Job.Chaos.Fault == ChaosPlan::Kind::GarbageReport)
      Report << "\x01\x02{{{not json\xff\xfe\n";
    else
      Report << "{\"schema\": \"intro-run-report-v1\", \"deterministic\": "
                "{\"job\": \"";
    Report.flush();
    return ExitSuccess;
  }

  writeChildReport(Report, Job, Attempt, Ladder, &Outcome, {},
                   Cache ? &*Cache : nullptr);
  return Outcome.completed() ? ExitSuccess : ExitAnalysisFailure;
}

//===----------------------------------------------------------------------===//
// Parent side: decode the pipe, classify, retry, quarantine.
//===----------------------------------------------------------------------===//

/// What the parent distilled from the child's pipe bytes.
struct ChildTranscript {
  bool AnyRungStarted = false;
  DegradationLevel DeepestStartedRung = DegradationLevel::Deep;
  uint32_t DeepestStartedRound = 0;
  bool HasReport = false;
  std::string ReportError; ///< Why no usable report (when !HasReport).
  std::vector<std::string> InputErrors;
  AttemptTrace Ladder;
  std::string Level;
  std::string Status;
  bool Completed = false;
  bool CacheEnabled = false;
  cache::CacheStats Cache;
};

/// Decodes the JSONL transcript: rung_start progress events (emission
/// order IS ladder execution order, so the last one seen is the deepest
/// started) and at most one final report line (the line with a "schema"
/// member).
ChildTranscript decodeTranscript(const std::string &Output) {
  ChildTranscript T;
  T.ReportError = "no report line received";
  size_t Begin = 0;
  while (Begin <= Output.size()) {
    size_t End = Output.find('\n', Begin);
    size_t Stop = End == std::string::npos ? Output.size() : End;
    std::string_view Line(Output.data() + Begin, Stop - Begin);
    Begin = Stop + 1;
    if (Line.empty())
      continue;
    JsonParseResult Parsed = parseJson(Line);
    if (!Parsed.ok()) {
      // A dying child's last line may be cut mid-token; remember why in
      // case no healthy report line follows.
      T.ReportError = "unparseable report line: " + Parsed.Error;
      continue;
    }
    const JsonValue &Doc = Parsed.Value;
    std::string Event;
    if (Doc.getString("event", Event) && Event == "rung_start") {
      std::string LevelName;
      DegradationLevel Level;
      if (Doc.getString("level", LevelName) &&
          degradationLevelFromName(LevelName, Level)) {
        T.AnyRungStarted = true;
        T.DeepestStartedRung = Level;
        uint64_t Round = 0;
        Doc.getUint("round", Round);
        T.DeepestStartedRound = static_cast<uint32_t>(Round);
      }
      continue;
    }
    std::string Schema;
    if (!Doc.getString("schema", Schema))
      continue;
    if (Schema != "intro-run-report-v1") {
      T.ReportError = "unexpected report schema '" + Schema + "'";
      continue;
    }
    const JsonValue *Det = Doc.get("deterministic");
    if (!Det || !Det->isObject()) {
      T.ReportError = "report has no deterministic section";
      continue;
    }
    if (const JsonValue *Errors = Det->get("input_errors");
        Errors && Errors->isArray())
      for (const JsonValue &Error : Errors->elements())
        if (Error.isString())
          T.InputErrors.push_back(Error.asString());
    if (const JsonValue *Outcome = Det->get("outcome");
        Outcome && Outcome->isObject()) {
      Outcome->getString("level", T.Level);
      Outcome->getString("status", T.Status);
      Outcome->getBool("completed", T.Completed);
      if (const JsonValue *Attempts = Outcome->get("attempts")) {
        std::string TraceError;
        if (!parseAttemptTraceJson(*Attempts, T.Ladder, TraceError)) {
          T.ReportError = "bad attempt trace: " + TraceError;
          T.Ladder.clear();
          continue;
        }
      }
    }
    if (const JsonValue *Cache = Doc.get("cache"); Cache && Cache->isObject()) {
      T.CacheEnabled = true;
      Cache->getUint("probes", T.Cache.Probes);
      Cache->getUint("hits", T.Cache.Hits);
      Cache->getUint("misses", T.Cache.Misses);
      Cache->getUint("corrupt_entries", T.Cache.CorruptEntries);
      Cache->getUint("stores", T.Cache.Stores);
      Cache->getUint("store_failures", T.Cache.StoreFailures);
      Cache->getUint("evictions", T.Cache.Evictions);
    }
    T.HasReport = true;
    T.ReportError.clear();
  }
  return T;
}

/// Combines the process-level fate with the transcript into the taxonomy.
JobOutcomeClass classifyAttempt(const ChildResult &Child,
                                const ChildTranscript &Transcript) {
  switch (Child.Status) {
  case ChildStatus::WatchdogKill:
    return JobOutcomeClass::WatchdogTimeout;
  case ChildStatus::OutOfMemory:
    return JobOutcomeClass::OutOfMemory;
  case ChildStatus::Signalled:
    // SIGXCPU is the kernel's CPU-time watchdog; same taxonomy bucket as
    // the parent's wall-clock one.
    return Child.TermSignal == SIGXCPU ? JobOutcomeClass::WatchdogTimeout
                                       : JobOutcomeClass::Signalled;
  case ChildStatus::NonzeroExit:
    if (Child.ExitCode == ExitBadInput)
      return JobOutcomeClass::BadInput;
    if (Child.ExitCode == ExitAnalysisFailure)
      return JobOutcomeClass::AnalysisFailure;
    return JobOutcomeClass::NonzeroExit;
  case ChildStatus::CleanExit:
    // The child's contract: exit 0 if and only if a completed result with
    // a healthy report.  Any inconsistency means the report channel is not
    // trustworthy.
    if (Transcript.HasReport && Transcript.Completed)
      return JobOutcomeClass::Clean;
    return JobOutcomeClass::BadReport;
  }
  return JobOutcomeClass::NonzeroExit;
}

/// Strips supervisor-owned members from the configured ladder: children
/// are single-threaded after fork (no portfolio), and callbacks/tokens
/// cannot cross the process boundary.
ResilientOptions sanitizeLadder(const ResilientOptions &Ladder) {
  ResilientOptions Clean = Ladder;
  Clean.Portfolio = false;
  Clean.Workers = 1;
  Clean.Cancel = nullptr;
  Clean.OnRungStart = nullptr;
  // Cache pointers are per-process: the child opens its own ResultCache
  // over BatchOptions::CacheDir instead of inheriting the parent's handle.
  Clean.Cache = nullptr;
  Clean.CacheKey = nullptr;
  return Clean;
}

} // namespace

JobResult intro::supervise::runSupervisedJob(const JobSpec &Job,
                                             size_t JobIndex,
                                             const BatchOptions &Options) {
  return runSupervisedJob(Job, JobIndex, Options, JobHooks());
}

JobResult intro::supervise::runSupervisedJob(const JobSpec &Job,
                                             size_t JobIndex,
                                             const BatchOptions &Options,
                                             const JobHooks &Hooks) {
  JobResult Result;
  Result.Name = Job.Name;
  ResilientOptions Ladder = sanitizeLadder(Options.Ladder);

  // The hooks' kill switch rides along in the per-job limits copy; the
  // shared BatchOptions stay untouched so concurrent jobs cannot see each
  // other's cancel flags.
  ChildLimits Limits = Options.Limits;
  if (Hooks.CancelChild)
    Limits.Cancel = Hooks.CancelChild;

  for (uint32_t Attempt = 1;; ++Attempt) {
    ChildOutputSink Sink;
    if (Hooks.OnChildOutput)
      Sink = [&Hooks, Attempt](std::string_view Chunk) {
        Hooks.OnChildOutput(Attempt, Chunk);
      };
    ChildResult Child = runSupervisedChild(
        Limits,
        [&Job, &Ladder, &Options, Attempt](std::ostream &R) {
          return childAnalyze(Job, Ladder, Attempt, R, Options.CacheDir,
                              Options.CacheMaxEntries);
        },
        Sink);
    ChildTranscript Transcript = decodeTranscript(Child.Output);

    JobAttempt Record;
    Record.Status = Child.Status;
    Record.Class = classifyAttempt(Child, Transcript);
    Record.ExitCode = Child.ExitCode;
    Record.TermSignal = Child.TermSignal;
    Record.AnyRungStarted = Transcript.AnyRungStarted;
    Record.DeepestStartedRung = Transcript.DeepestStartedRung;
    Record.DeepestStartedRound = Transcript.DeepestStartedRound;
    Record.ReportError = Transcript.ReportError;
    Record.Ladder = std::move(Transcript.Ladder);
    Record.CacheEnabled = Transcript.CacheEnabled;
    Record.Cache = Transcript.Cache;
    Record.Seconds = Child.Seconds;

    bool Aborted = Hooks.ShouldAbort && Hooks.ShouldAbort();
    bool Retry = !Aborted && isRetryable(Record.Class) &&
                 Attempt < Options.Retry.MaxAttempts;
    if (Retry)
      Record.PlannedDelayMs =
          plannedBackoffMs(Options.Retry, JobIndex, Attempt + 1);
    Result.Attempts.push_back(std::move(Record));
    const JobAttempt &Last = Result.Attempts.back();

    if (!Aborted && Last.Class == JobOutcomeClass::Clean) {
      Result.FinalClass = JobOutcomeClass::Clean;
      Result.ResultLevel = Transcript.Level;
      Result.ResultStatus = Transcript.Status;
      Result.ResultCompleted = Transcript.Completed;
      return Result;
    }
    if (Aborted) {
      // The caller ended the loop (a cancelled service request): record
      // the last class verbatim, skip quarantine — the job is not bad,
      // just unwanted.
      Result.FinalClass = Last.Class;
      Result.Aborted = true;
      Result.InputErrors = std::move(Transcript.InputErrors);
      return Result;
    }
    if (!Retry) {
      TRACE_INSTANT("supervise.quarantine", 1);
      Result.FinalClass = Last.Class;
      Result.Quarantined = true;
      Result.InputErrors = std::move(Transcript.InputErrors);
      return Result;
    }

    // Plan the relaunch: back off (deterministically planned, injectable
    // actual sleep), and after a hard mid-ladder death resume strictly
    // below the rung that killed the child.
    TRACE_SPAN("supervise.retry");
    bool HardDeath = Last.Class == JobOutcomeClass::Signalled ||
                     Last.Class == JobOutcomeClass::OutOfMemory ||
                     Last.Class == JobOutcomeClass::WatchdogTimeout;
    if (HardDeath && Last.AnyRungStarted)
      escalateBelow(Ladder, Last.DeepestStartedRung);
    if (Options.SleepMs)
      Options.SleepMs(Last.PlannedDelayMs);
    else if (Last.PlannedDelayMs > 0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          Last.PlannedDelayMs));
  }
}

BatchResult
intro::supervise::runSupervisedBatch(const std::vector<JobSpec> &Jobs,
                                     const BatchOptions &Options) {
  return runSupervisedBatch(Jobs, Options, nullptr);
}

BatchResult intro::supervise::runSupervisedBatch(
    const std::vector<JobSpec> &Jobs, const BatchOptions &Options,
    const std::function<JobHooks(size_t JobIndex)> &HookFactory) {
  Timer Total;
  BatchResult Batch;
  Batch.Jobs.resize(Jobs.size());
  auto RunOne = [&Jobs, &Batch, &Options, &HookFactory](size_t Index) {
    JobHooks Hooks = HookFactory ? HookFactory(Index) : JobHooks();
    Batch.Jobs[Index] = runSupervisedJob(Jobs[Index], Index, Options, Hooks);
  };
  unsigned Workers = std::max(1u, Options.Workers);
  if (Workers <= 1 || Jobs.size() <= 1) {
    for (size_t Index = 0; Index < Jobs.size(); ++Index)
      RunOne(Index);
  } else {
    ThreadPool Pool(std::min<unsigned>(Workers, Jobs.size()));
    std::vector<std::future<void>> Pending;
    Pending.reserve(Jobs.size());
    for (size_t Index = 0; Index < Jobs.size(); ++Index)
      Pending.push_back(Pool.submit([&RunOne, Index] { RunOne(Index); }));
    for (std::future<void> &F : Pending)
      F.get();
  }
  Batch.TotalSeconds = Total.seconds();
  return Batch;
}

namespace {

/// One attempt of the child ladder, deterministic columns only: the
/// wall-clock members of Attempt/SolverStats stay out of the deterministic
/// report section by construction.
void writeDeterministicLadderJson(JsonWriter &J, const AttemptTrace &Trace) {
  J.beginArray();
  for (const Attempt &A : Trace) {
    J.beginObject();
    J.key("level");
    J.value(degradationLevelName(A.Level));
    J.key("tightened_round");
    J.value(A.TightenedRound);
    J.key("analysis");
    J.value(A.AnalysisName);
    J.key("status");
    J.value(statusName(A.Status));
    J.key("tuples");
    J.value(A.Stats.VarPointsToTuples + A.Stats.FieldPointsToTuples);
    J.key("worklist_pops");
    J.value(A.Stats.WorklistPops);
    J.endObject();
  }
  J.endArray();
}

} // namespace

void intro::supervise::writeBatchReportJson(JsonWriter &J,
                                            const BatchResult &Batch,
                                            const BatchOptions &Options) {
  size_t ClassCounts[8] = {};
  uint64_t Retries = 0;
  size_t Quarantined = 0;
  for (const JobResult &Job : Batch.Jobs) {
    ++ClassCounts[static_cast<size_t>(Job.FinalClass)];
    Retries += Job.Attempts.empty() ? 0 : Job.Attempts.size() - 1;
    Quarantined += Job.Quarantined ? 1 : 0;
  }

  J.beginObject();
  J.key("schema");
  J.value("intro-batch-report-v1");
  J.key("deterministic");
  J.beginObject();
  J.key("retry_policy");
  J.beginObject();
  J.key("max_attempts");
  J.value(Options.Retry.MaxAttempts);
  J.key("base_delay_ms");
  J.value(Options.Retry.BaseDelayMs);
  J.key("multiplier");
  J.value(Options.Retry.Multiplier);
  J.key("jitter_fraction");
  J.value(Options.Retry.JitterFraction);
  J.key("seed");
  J.value(Options.Retry.Seed);
  J.endObject();
  J.key("limits");
  J.beginObject();
  J.key("max_address_space_bytes");
  J.value(Options.Limits.MaxAddressSpaceBytes);
  J.key("max_cpu_seconds");
  J.value(Options.Limits.MaxCpuSeconds);
  J.key("wall_deadline_seconds");
  J.value(Options.Limits.WallDeadlineSeconds);
  J.endObject();
  J.key("ladder_options");
  writeResilientOptionsJson(J, Options.Ladder);
  J.key("jobs");
  J.beginArray();
  for (size_t Index = 0; Index < Batch.Jobs.size(); ++Index) {
    const JobResult &Job = Batch.Jobs[Index];
    J.beginObject();
    J.key("index");
    J.value(static_cast<uint64_t>(Index + 1));
    J.key("name");
    J.value(Job.Name);
    J.key("final_class");
    J.value(jobOutcomeClassName(Job.FinalClass));
    J.key("quarantined");
    J.value(Job.Quarantined);
    J.key("result");
    if (Job.FinalClass == JobOutcomeClass::Clean) {
      J.beginObject();
      J.key("level");
      J.value(Job.ResultLevel);
      J.key("status");
      J.value(Job.ResultStatus);
      J.key("completed");
      J.value(Job.ResultCompleted);
      J.endObject();
    } else {
      J.null();
    }
    J.key("input_errors");
    J.beginArray();
    for (const std::string &Error : Job.InputErrors)
      J.value(Error);
    J.endArray();
    J.key("attempts");
    J.beginArray();
    for (size_t AttemptIndex = 0; AttemptIndex < Job.Attempts.size();
         ++AttemptIndex) {
      const JobAttempt &A = Job.Attempts[AttemptIndex];
      J.beginObject();
      J.key("attempt");
      J.value(static_cast<uint64_t>(AttemptIndex + 1));
      J.key("child_status");
      J.value(childStatusName(A.Status));
      J.key("class");
      J.value(jobOutcomeClassName(A.Class));
      J.key("exit_code");
      J.value(A.ExitCode);
      J.key("term_signal");
      J.value(A.TermSignal);
      J.key("planned_delay_ms");
      J.value(A.PlannedDelayMs);
      J.key("deepest_started_rung");
      if (A.AnyRungStarted)
        J.value(degradationLevelName(A.DeepestStartedRung));
      else
        J.null();
      J.key("report_error");
      J.value(A.ReportError);
      J.key("ladder");
      writeDeterministicLadderJson(J, A.Ladder);
      J.endObject();
    }
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.key("totals");
  J.beginObject();
  J.key("jobs");
  J.value(static_cast<uint64_t>(Batch.Jobs.size()));
  for (size_t Class = 0; Class < 8; ++Class) {
    J.key(jobOutcomeClassName(static_cast<JobOutcomeClass>(Class)));
    J.value(static_cast<uint64_t>(ClassCounts[Class]));
  }
  J.key("quarantined");
  J.value(static_cast<uint64_t>(Quarantined));
  J.key("retries");
  J.value(Retries);
  J.endObject();
  J.endObject();

  // Pass-A cache accounting.  Deterministic for a given starting cache
  // state, but a warm run's counts necessarily differ from a cold run's —
  // which is why this is a sibling of "deterministic", not part of it.
  J.key("cache");
  J.beginObject();
  J.key("enabled");
  J.value(!Options.CacheDir.empty());
  cache::CacheStats Totals;
  J.key("jobs");
  J.beginArray();
  for (const JobResult &Job : Batch.Jobs) {
    J.beginObject();
    J.key("name");
    J.value(Job.Name);
    J.key("attempts");
    J.beginArray();
    for (const JobAttempt &A : Job.Attempts) {
      if (!A.CacheEnabled) {
        J.null(); // Hard death / bad report: no cache counters came back.
        continue;
      }
      Totals.Probes += A.Cache.Probes;
      Totals.Hits += A.Cache.Hits;
      Totals.Misses += A.Cache.Misses;
      Totals.CorruptEntries += A.Cache.CorruptEntries;
      Totals.Stores += A.Cache.Stores;
      Totals.StoreFailures += A.Cache.StoreFailures;
      Totals.Evictions += A.Cache.Evictions;
      writeCacheStatsJson(J, A.Cache);
    }
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.key("totals");
  writeCacheStatsJson(J, Totals);
  J.endObject();

  J.key("timing");
  J.beginObject();
  J.key("total_seconds");
  J.value(Batch.TotalSeconds);
  J.key("jobs");
  J.beginArray();
  for (const JobResult &Job : Batch.Jobs) {
    J.beginObject();
    J.key("name");
    J.value(Job.Name);
    J.key("attempt_seconds");
    J.beginArray();
    for (const JobAttempt &A : Job.Attempts)
      J.value(A.Seconds);
    J.endArray();
    J.endObject();
  }
  J.endArray();
  J.endObject();
  J.endObject();
}
