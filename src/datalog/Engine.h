//===- datalog/Engine.h - Semi-naive Datalog evaluation ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small semi-naive Datalog engine with one extension beyond textbook
/// Datalog: *constructor functors* — external functions evaluated after a
/// rule body matches, binding fresh head variables.  This is exactly the
/// device the paper's model needs for the RECORD/MERGE context constructors
/// of Figure 2 ("RECORD (heap, ctx) = newHCtx"), mirroring LogicBlox
/// functional predicates.
///
/// Supported features: multiple head atoms per rule, negation on extensional
/// (never-derived) relations, hash-indexed joins, and a tuple budget.  This
/// engine is the *oracle* implementation of the analysis — the hand-tuned
/// worklist solver is cross-checked against it on randomized programs.
///
//===----------------------------------------------------------------------===//

#ifndef DATALOG_ENGINE_H
#define DATALOG_ENGINE_H

#include "datalog/Relation.h"

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace intro::datalog {

/// splitmix64-style finalizer used to hash join-index keys.  The obvious
/// `(RelationIndex << 8) ^ Mask` scheme collided whole families of keys —
/// (rel 1, mask 0x100) and (rel 2, mask 0x200) both land on 0, and every
/// analysis with more than a handful of indexed relations degenerated some
/// unordered_map bucket into a linked list.  A full-avalanche mix makes
/// the hash depend on every bit of both fields.
inline uint64_t mixIndexKeyBits(uint64_t Packed) {
  Packed += 0x9e3779b97f4a7c15ull;
  Packed = (Packed ^ (Packed >> 30)) * 0xbf58476d1ce4e5b9ull;
  Packed = (Packed ^ (Packed >> 27)) * 0x94d049bb133111ebull;
  return Packed ^ (Packed >> 31);
}

/// A term in an atom: either a rule variable or a constant.
struct Term {
  bool IsVar;
  uint32_t Value; ///< Variable number or constant value.

  static Term var(uint32_t Number) { return Term{true, Number}; }
  static Term cst(uint32_t Value) { return Term{false, Value}; }
};

/// One atom: RELATION(term, term, ...), possibly negated in a body.
struct Atom {
  uint32_t RelationIndex;
  std::vector<Term> Terms;
  bool Negated = false;
};

/// A functor application `OutVar = functor(Inputs...)`, evaluated after the
/// body matches.  Inputs must be bound; OutVar may be fresh.
struct FunctorCall {
  uint32_t FunctorIndex;
  uint32_t OutVar;
  std::vector<Term> Inputs;
};

/// A rule: Heads <- Body, with Functors evaluated in between.
struct Rule {
  std::vector<Atom> Heads;
  std::vector<Atom> Body;
  std::vector<FunctorCall> Functors;
};

/// Evaluation statistics for one run() call.
struct EngineStats {
  uint64_t Rounds = 0;
  uint64_t TuplesDerived = 0;
  bool BudgetExceeded = false;
};

/// The Datalog engine: relations, functors, rules, fixpoint evaluation.
class Engine {
public:
  using Functor = std::function<uint32_t(std::span<const uint32_t>)>;

  /// Declares a relation. \returns its index.
  uint32_t addRelation(std::string Name, uint32_t Arity);

  /// Registers an external functor. \returns its index.
  uint32_t addFunctor(Functor Fn);

  /// Adds a rule.  Head relations become intensional; negation is only
  /// permitted on relations that no rule derives (checked in run()).
  void addRule(Rule NewRule);

  /// Access to a relation, e.g. for loading input facts or reading results.
  Relation &relation(uint32_t Index) { return Relations[Index]; }
  const Relation &relation(uint32_t Index) const { return Relations[Index]; }

  /// Runs to fixpoint (or until \p MaxTuples total facts exist).
  EngineStats run(uint64_t MaxTuples = 50'000'000);

private:
  struct IndexKey {
    uint32_t RelationIndex;
    uint32_t Mask; // Bit i set: position i is bound at lookup time.
    bool operator==(const IndexKey &Other) const {
      return RelationIndex == Other.RelationIndex && Mask == Other.Mask;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey &Key) const {
      return static_cast<size_t>(
          mixIndexKeyBits((static_cast<uint64_t>(Key.RelationIndex) << 32) |
                          Key.Mask));
    }
  };
  /// A hash index of a relation on a set of bound positions.
  struct JoinIndex {
    uint64_t BuiltAtVersion = ~0ull;
    uint32_t BuiltSize = 0;
    std::unordered_multimap<uint64_t, uint32_t> Map; // value-hash -> tuple.
  };

  const JoinIndex &getIndex(uint32_t RelationIndex, uint32_t Mask);
  static uint64_t hashBound(std::span<const uint32_t> Tuple, uint32_t Mask);

  /// Recursively matches Body[AtomIndex..] under the binding environment;
  /// on a full match evaluates functors and inserts head tuples.
  void matchAtoms(const Rule &RuleRef, size_t AtomIndex, int DeltaAtom,
                  uint32_t DeltaBegin, uint32_t DeltaEnd,
                  std::vector<uint32_t> &Env, std::vector<bool> &Bound,
                  bool &Changed);

  void fireRule(const Rule &RuleRef, std::vector<uint32_t> &Env,
                std::vector<bool> &Bound, bool &Changed);

  static uint32_t numVars(const Rule &RuleRef);

  std::vector<Relation> Relations;
  std::vector<Functor> Functors;
  std::vector<Rule> Rules;
  std::vector<bool> Intensional; // Derived by some rule head.
  std::unordered_map<IndexKey, JoinIndex, IndexKeyHash> Indexes;
  uint64_t TotalTuples = 0;
  uint64_t MaxTuples = 0;
};

} // namespace intro::datalog

#endif // DATALOG_ENGINE_H
