//===- datalog/Aggregates.h - Count aggregation over relations --*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's metric queries aggregate over Datalog relations ("agg<result
/// = count()>").  Our engine keeps aggregation out of the rule language (it
/// is non-monotonic) and instead provides it as a post-fixpoint operation
/// over a computed relation, which is exactly how the metric queries use it.
///
//===----------------------------------------------------------------------===//

#ifndef DATALOG_AGGREGATES_H
#define DATALOG_AGGREGATES_H

#include "datalog/Relation.h"

#include <cstdint>
#include <map>
#include <vector>

namespace intro::datalog {

/// A group key (the projected columns) with its row count.
struct GroupCount {
  std::vector<uint32_t> Key;
  uint64_t Count = 0;
};

/// Counts the tuples of \p Rel per distinct projection onto \p GroupColumns
/// (0-based column indices).  Results are sorted by key.
///
/// Example: `INFLOW(invo) = count()` over
/// `HEAPSPERINVOCATIONPERARG(invo, arg, heap)` is
/// `countGroupBy(HeapsRel, {0})`.
std::vector<GroupCount> countGroupBy(const Relation &Rel,
                                     const std::vector<uint32_t> &GroupColumns);

/// Counts *distinct* projections onto \p CountColumns per group, rather
/// than raw rows — `count(distinct ...)`.
std::vector<GroupCount>
countDistinctGroupBy(const Relation &Rel,
                     const std::vector<uint32_t> &GroupColumns,
                     const std::vector<uint32_t> &CountColumns);

} // namespace intro::datalog

#endif // DATALOG_AGGREGATES_H
