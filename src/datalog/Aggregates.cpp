//===- datalog/Aggregates.cpp - Count aggregation over relations ----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "datalog/Aggregates.h"

#include <cassert>
#include <set>

using namespace intro::datalog;

std::vector<GroupCount>
intro::datalog::countGroupBy(const Relation &Rel,
                             const std::vector<uint32_t> &GroupColumns) {
  std::map<std::vector<uint32_t>, uint64_t> Groups;
  std::vector<uint32_t> Key(GroupColumns.size());
  for (uint32_t Index = 0; Index < Rel.size(); ++Index) {
    auto Tuple = Rel.tuple(Index);
    for (size_t Col = 0; Col < GroupColumns.size(); ++Col) {
      assert(GroupColumns[Col] < Rel.arity() && "group column out of range");
      Key[Col] = Tuple[GroupColumns[Col]];
    }
    ++Groups[Key];
  }
  std::vector<GroupCount> Result;
  Result.reserve(Groups.size());
  for (auto &[GroupKey, Count] : Groups)
    Result.push_back(GroupCount{GroupKey, Count});
  return Result;
}

std::vector<GroupCount> intro::datalog::countDistinctGroupBy(
    const Relation &Rel, const std::vector<uint32_t> &GroupColumns,
    const std::vector<uint32_t> &CountColumns) {
  std::map<std::vector<uint32_t>, std::set<std::vector<uint32_t>>> Groups;
  std::vector<uint32_t> Key(GroupColumns.size());
  std::vector<uint32_t> Counted(CountColumns.size());
  for (uint32_t Index = 0; Index < Rel.size(); ++Index) {
    auto Tuple = Rel.tuple(Index);
    for (size_t Col = 0; Col < GroupColumns.size(); ++Col)
      Key[Col] = Tuple[GroupColumns[Col]];
    for (size_t Col = 0; Col < CountColumns.size(); ++Col) {
      assert(CountColumns[Col] < Rel.arity() && "count column out of range");
      Counted[Col] = Tuple[CountColumns[Col]];
    }
    Groups[Key].insert(Counted);
  }
  std::vector<GroupCount> Result;
  Result.reserve(Groups.size());
  for (auto &[GroupKey, Distinct] : Groups)
    Result.push_back(GroupCount{GroupKey, Distinct.size()});
  return Result;
}
