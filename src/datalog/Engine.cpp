//===- datalog/Engine.cpp - Semi-naive Datalog evaluation -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "datalog/Engine.h"

#include <algorithm>
#include <cassert>

using namespace intro::datalog;

uint32_t Engine::addRelation(std::string Name, uint32_t Arity) {
  Relations.emplace_back(std::move(Name), Arity);
  Intensional.push_back(false);
  return static_cast<uint32_t>(Relations.size() - 1);
}

uint32_t Engine::addFunctor(Functor Fn) {
  Functors.push_back(std::move(Fn));
  return static_cast<uint32_t>(Functors.size() - 1);
}

void Engine::addRule(Rule NewRule) {
  assert(!NewRule.Heads.empty() && "rule must have at least one head");
  for (const Atom &Head : NewRule.Heads) {
    assert(!Head.Negated && "head atoms cannot be negated");
    Intensional[Head.RelationIndex] = true;
  }
  Rules.push_back(std::move(NewRule));
}

uint32_t Engine::numVars(const Rule &RuleRef) {
  uint32_t Max = 0;
  auto Scan = [&Max](const std::vector<Term> &Terms) {
    for (const Term &T : Terms)
      if (T.IsVar)
        Max = std::max(Max, T.Value + 1);
  };
  for (const Atom &A : RuleRef.Heads)
    Scan(A.Terms);
  for (const Atom &A : RuleRef.Body)
    Scan(A.Terms);
  for (const FunctorCall &F : RuleRef.Functors) {
    Scan(F.Inputs);
    Max = std::max(Max, F.OutVar + 1);
  }
  return Max;
}

uint64_t Engine::hashBound(std::span<const uint32_t> Tuple, uint32_t Mask) {
  uint64_t Hash = 1469598103934665603ull;
  for (size_t Position = 0; Position < Tuple.size(); ++Position) {
    if (!(Mask & (1u << Position)))
      continue;
    Hash ^= Tuple[Position];
    Hash *= 1099511628211ull;
  }
  return Hash;
}

const Engine::JoinIndex &Engine::getIndex(uint32_t RelationIndex,
                                          uint32_t Mask) {
  JoinIndex &Index = Indexes[IndexKey{RelationIndex, Mask}];
  const Relation &Rel = Relations[RelationIndex];
  if (Index.BuiltAtVersion == ~0ull) {
    Index.BuiltAtVersion = 0;
    Index.BuiltSize = 0;
  }
  // Relations only grow, so the index is extended incrementally.
  for (uint32_t TupleIndex = Index.BuiltSize; TupleIndex < Rel.size();
       ++TupleIndex)
    Index.Map.emplace(hashBound(Rel.tuple(TupleIndex), Mask), TupleIndex);
  Index.BuiltSize = Rel.size();
  return Index;
}

void Engine::fireRule(const Rule &RuleRef, std::vector<uint32_t> &Env,
                      std::vector<bool> &Bound, bool &Changed) {
  // Constructor functors: bind fresh variables from bound inputs.
  std::vector<uint32_t> FunctorBound;
  std::vector<uint32_t> Inputs;
  for (const FunctorCall &Call : RuleRef.Functors) {
    Inputs.clear();
    for (const Term &T : Call.Inputs) {
      assert((!T.IsVar || Bound[T.Value]) && "functor input must be bound");
      Inputs.push_back(T.IsVar ? Env[T.Value] : T.Value);
    }
    uint32_t Out = Functors[Call.FunctorIndex](Inputs);
    assert(!Bound[Call.OutVar] && "functor output variable already bound");
    Env[Call.OutVar] = Out;
    Bound[Call.OutVar] = true;
    FunctorBound.push_back(Call.OutVar);
  }

  std::vector<uint32_t> HeadTuple;
  for (const Atom &Head : RuleRef.Heads) {
    HeadTuple.clear();
    for (const Term &T : Head.Terms) {
      assert((!T.IsVar || Bound[T.Value]) && "head variable must be bound");
      HeadTuple.push_back(T.IsVar ? Env[T.Value] : T.Value);
    }
    if (Relations[Head.RelationIndex].insert(HeadTuple)) {
      ++TotalTuples;
      Changed = true;
    }
  }

  for (uint32_t Var : FunctorBound)
    Bound[Var] = false;
}

void Engine::matchAtoms(const Rule &RuleRef, size_t AtomIndex, int DeltaAtom,
                        uint32_t DeltaBegin, uint32_t DeltaEnd,
                        std::vector<uint32_t> &Env, std::vector<bool> &Bound,
                        bool &Changed) {
  if (TotalTuples > MaxTuples)
    return;
  if (AtomIndex == RuleRef.Body.size()) {
    fireRule(RuleRef, Env, Bound, Changed);
    return;
  }

  const Atom &A = RuleRef.Body[AtomIndex];
  const Relation &Rel = Relations[A.RelationIndex];

  if (A.Negated) {
    std::vector<uint32_t> Probe;
    for (const Term &T : A.Terms) {
      assert((!T.IsVar || Bound[T.Value]) &&
             "negated atom must be fully bound");
      Probe.push_back(T.IsVar ? Env[T.Value] : T.Value);
    }
    if (Rel.contains(Probe))
      return;
    matchAtoms(RuleRef, AtomIndex + 1, DeltaAtom, DeltaBegin, DeltaEnd, Env,
               Bound, Changed);
    return;
  }

  // Build the binding mask: positions whose value is known now.
  uint32_t Mask = 0;
  for (size_t Position = 0; Position < A.Terms.size(); ++Position) {
    const Term &T = A.Terms[Position];
    if (!T.IsVar || Bound[T.Value])
      Mask |= 1u << Position;
  }

  uint32_t RangeBegin = 0;
  uint32_t RangeEnd = Rel.size();
  if (static_cast<int>(AtomIndex) == DeltaAtom) {
    RangeBegin = DeltaBegin;
    RangeEnd = DeltaEnd;
  }

  auto TryTuple = [&](uint32_t TupleIndex) {
    std::span<const uint32_t> Tuple = Rel.tuple(TupleIndex);
    // Unify, trailing the variables we bind so we can undo.
    uint32_t Trail[16];
    uint32_t TrailSize = 0;
    bool Ok = true;
    for (size_t Position = 0; Position < A.Terms.size(); ++Position) {
      const Term &T = A.Terms[Position];
      uint32_t Value = Tuple[Position];
      if (!T.IsVar) {
        if (T.Value != Value) {
          Ok = false;
          break;
        }
      } else if (Bound[T.Value]) {
        if (Env[T.Value] != Value) {
          Ok = false;
          break;
        }
      } else {
        Env[T.Value] = Value;
        Bound[T.Value] = true;
        assert(TrailSize < 16 && "atom arity too large");
        Trail[TrailSize++] = T.Value;
      }
    }
    if (Ok)
      matchAtoms(RuleRef, AtomIndex + 1, DeltaAtom, DeltaBegin, DeltaEnd, Env,
                 Bound, Changed);
    for (uint32_t Undo = 0; Undo < TrailSize; ++Undo)
      Bound[Trail[Undo]] = false;
  };

  if (Mask == 0) {
    for (uint32_t TupleIndex = RangeBegin; TupleIndex < RangeEnd; ++TupleIndex)
      TryTuple(TupleIndex);
    return;
  }

  // Hash-indexed lookup on the bound positions.
  std::vector<uint32_t> Probe(A.Terms.size(), 0);
  for (size_t Position = 0; Position < A.Terms.size(); ++Position) {
    const Term &T = A.Terms[Position];
    if (!T.IsVar)
      Probe[Position] = T.Value;
    else if (Bound[T.Value])
      Probe[Position] = Env[T.Value];
  }
  uint64_t Key = hashBound(Probe, Mask);
  // Note: getIndex may rehash Indexes, so finish using one index before
  // requesting another (the recursion does request others — therefore we
  // copy the candidate list out first).
  std::vector<uint32_t> Candidates;
  {
    const JoinIndex &Index = getIndex(A.RelationIndex, Mask);
    auto [Begin, End] = Index.Map.equal_range(Key);
    for (auto It = Begin; It != End; ++It)
      if (It->second >= RangeBegin && It->second < RangeEnd)
        Candidates.push_back(It->second);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(Candidates.begin(), Candidates.end());
  for (uint32_t TupleIndex : Candidates)
    TryTuple(TupleIndex);
}

EngineStats Engine::run(uint64_t MaxTuplesBudget) {
  MaxTuples = MaxTuplesBudget;
  EngineStats Stats;

#ifndef NDEBUG
  for (const Rule &R : Rules)
    for (const Atom &A : R.Body)
      assert((!A.Negated || !Intensional[A.RelationIndex]) &&
             "negation is only supported on extensional relations");
#endif

  TotalTuples = 0;
  for (const Relation &Rel : Relations)
    TotalTuples += Rel.size();

  std::vector<uint32_t> PrevSize(Relations.size(), 0);
  bool FirstRound = true;
  bool Changed = true;
  while (Changed && TotalTuples <= MaxTuples) {
    Changed = false;
    ++Stats.Rounds;

    std::vector<uint32_t> DeltaBegin(Relations.size());
    std::vector<uint32_t> DeltaEnd(Relations.size());
    for (size_t Index = 0; Index < Relations.size(); ++Index) {
      DeltaBegin[Index] = FirstRound ? 0 : PrevSize[Index];
      DeltaEnd[Index] = Relations[Index].size();
      PrevSize[Index] = Relations[Index].size();
    }

    for (const Rule &RuleRef : Rules) {
      uint32_t Vars = numVars(RuleRef);
      std::vector<uint32_t> Env(Vars, 0);
      std::vector<bool> Bound(Vars, false);

      // Collect the positive intensional atoms: semi-naive evaluation runs
      // the rule once per such atom, with that atom restricted to its delta.
      std::vector<int> IdbAtoms;
      for (size_t AtomIndex = 0; AtomIndex < RuleRef.Body.size(); ++AtomIndex) {
        const Atom &A = RuleRef.Body[AtomIndex];
        if (!A.Negated && Intensional[A.RelationIndex])
          IdbAtoms.push_back(static_cast<int>(AtomIndex));
      }

      if (FirstRound || IdbAtoms.empty()) {
        // Evaluate with every atom at its full extent.  Rules without
        // intensional body atoms can never fire again after the first
        // round (their inputs are frozen).
        if (FirstRound)
          matchAtoms(RuleRef, 0, /*DeltaAtom=*/-1, 0, 0, Env, Bound, Changed);
        continue;
      }
      for (int DeltaAtom : IdbAtoms) {
        uint32_t RelIndex = RuleRef.Body[DeltaAtom].RelationIndex;
        if (DeltaBegin[RelIndex] == DeltaEnd[RelIndex])
          continue; // Empty delta: nothing new can fire through this atom.
        matchAtoms(RuleRef, 0, DeltaAtom, DeltaBegin[RelIndex],
                   DeltaEnd[RelIndex], Env, Bound, Changed);
      }
    }
    FirstRound = false;
  }

  Stats.TuplesDerived = TotalTuples;
  Stats.BudgetExceeded = TotalTuples > MaxTuples;
  return Stats;
}
