//===- datalog/Relation.h - Datalog relations -------------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Datalog relation: a deduplicated, insertion-ordered set of fixed-arity
/// tuples over uint32_t.  Insertion order doubles as the semi-naive "delta"
/// structure — tuples appended after a watermark are exactly the facts
/// derived in the previous round.
///
//===----------------------------------------------------------------------===//

#ifndef DATALOG_RELATION_H
#define DATALOG_RELATION_H

#include "support/TupleInterner.h"

#include <cassert>
#include <span>
#include <string>

namespace intro::datalog {

/// A set of same-arity tuples with dense insertion-order handles.
class Relation {
public:
  Relation(std::string Name, uint32_t Arity)
      : Name(std::move(Name)), Arity(Arity) {}

  const std::string &name() const { return Name; }
  uint32_t arity() const { return Arity; }

  /// Inserts \p Tuple. \returns true if it was new.
  bool insert(std::span<const uint32_t> Tuple) {
    assert(Tuple.size() == Arity && "tuple arity mismatch");
    size_t Before = Tuples.size();
    Tuples.intern(Tuple);
    bool Inserted = Tuples.size() != Before;
    Version += Inserted;
    return Inserted;
  }

  /// \returns true if \p Tuple is present.
  bool contains(std::span<const uint32_t> Tuple) const {
    assert(Tuple.size() == Arity && "tuple arity mismatch");
    return Tuples.find(Tuple) != TupleInterner::NotFound;
  }

  /// Number of tuples.
  uint32_t size() const { return static_cast<uint32_t>(Tuples.size()); }

  /// \returns tuple number \p Index (insertion order).
  std::span<const uint32_t> tuple(uint32_t Index) const {
    return Tuples.elements(Index);
  }

  /// Monotone change counter, used to invalidate join indexes.
  uint64_t version() const { return Version; }

private:
  std::string Name;
  uint32_t Arity;
  uint64_t Version = 0;
  TupleInterner Tuples;
};

} // namespace intro::datalog

#endif // DATALOG_RELATION_H
