//===- serve/Client.h - intro-serve-v1 client ------------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client side of the analysis service: connect, speak intro-serve-v1
/// frames, and (the common case) submit one job and block until its done
/// frame, surfacing each streamed child transcript line on the way.  Used
/// by `intro_batch --server=SOCK` and by serve_tests; the raw send/recv
/// surface is public so tests can also speak deliberately broken frames.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_CLIENT_H
#define SERVE_CLIENT_H

#include "cache/ResultCache.h"
#include "serve/Protocol.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace intro::serve {

/// Everything a done frame says about one submitted job.
struct SubmitOutcome {
  uint64_t JobId = 0;
  std::string State;      ///< "done" or "cancelled".
  std::string FinalClass; ///< Empty when no child ever launched.
  bool Quarantined = false;
  bool Aborted = false;
  uint64_t Attempts = 0;
  std::string ResultLevel;  ///< Winning rung (clean jobs).
  std::string ResultStatus; ///< Winning status (clean jobs).
  bool ResultCompleted = false;
  std::vector<std::string> InputErrors;
  bool CacheEnabled = false;
  cache::CacheStats Cache; ///< Summed over attempts that ran with a cache.
  /// The job's final intro-run-report-v1 line, verbatim as the child wrote
  /// it — its deterministic section is byte-identical to a local
  /// intro_batch run of the same program and ladder.
  std::string FinalReportLine;
};

/// One connection to an intro_serve daemon.
class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects and consumes the hello frame (validating the protocol name).
  bool connect(const std::string &SocketPath, std::string &Error);

  /// Sends one request frame wrapping \p Json.
  bool send(std::string_view Json, std::string &Error);

  /// Blocks for the next response frame's payload.
  bool recv(std::string &Json, std::string &Error);

  /// Submits one job and blocks until its done frame.  \p DeadlineSeconds
  /// <= 0 leaves the server default; \p ChaosSpec empty injects nothing
  /// (otherwise KIND[:LEVEL][:UNTIL], validated server-side).  \p OnLine,
  /// when non-null, sees every streamed transcript line with its 1-based
  /// attempt.  An error frame from the server fails the call with its code
  /// and message in \p Error.
  bool submit(const std::string &Name, const std::string &Source,
              double DeadlineSeconds, const std::string &ChaosSpec,
              const std::function<void(uint64_t Attempt,
                                       const std::string &Line)> &OnLine,
              SubmitOutcome &Out, std::string &Error);

  /// Sends a drain request and waits for the drained acknowledgement.
  bool drain(std::string &Error);

  void close();
  int fd() const { return Fd; }

private:
  int Fd = -1;
  FrameDecoder Decoder;
};

} // namespace intro::serve

#endif // SERVE_CLIENT_H
