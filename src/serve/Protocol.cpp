//===- serve/Protocol.cpp - intro-serve-v1 frame protocol -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

using namespace intro;
using namespace intro::serve;

std::string serve::encodeFrame(std::string_view Payload) {
  std::string Frame;
  Frame.reserve(4 + Payload.size());
  uint32_t Length = static_cast<uint32_t>(Payload.size());
  for (int Shift = 0; Shift < 32; Shift += 8)
    Frame.push_back(static_cast<char>((Length >> Shift) & 0xff));
  Frame.append(Payload.data(), Payload.size());
  return Frame;
}

void FrameDecoder::feed(const char *Data, size_t Count) {
  Buffer.append(Data, Count);
}

FrameDecoder::Status FrameDecoder::next(std::string &Payload,
                                        std::string &ErrorMessage) {
  if (Poisoned) {
    ErrorMessage = "frame stream already failed";
    return Status::Error;
  }
  if (Buffer.size() < 4)
    return Status::NeedMore;
  uint32_t Length = 0;
  for (int Index = 0; Index < 4; ++Index)
    Length |= static_cast<uint32_t>(static_cast<unsigned char>(Buffer[Index]))
              << (8 * Index);
  if (Length > MaxFramePayload) {
    // There is no way to skip to the "next" frame: the length header is
    // the only framing, and it just told us a lie (or the peer speaks a
    // different protocol).  Poison the stream.
    Poisoned = true;
    Buffer.clear();
    ErrorMessage = "frame payload length " + std::to_string(Length) +
                   " exceeds the " + std::to_string(MaxFramePayload) +
                   "-byte cap";
    return Status::Error;
  }
  if (Buffer.size() < 4 + static_cast<size_t>(Length))
    return Status::NeedMore;
  Payload.assign(Buffer, 4, Length);
  Buffer.erase(0, 4 + static_cast<size_t>(Length));
  return Status::Frame;
}
