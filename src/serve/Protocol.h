//===- serve/Protocol.h - intro-serve-v1 frame protocol ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the analysis service (`intro-serve-v1`): a stream of
/// length-prefixed JSON frames in both directions over a Unix-domain
/// socket.  Each frame is a 4-byte little-endian unsigned payload length
/// followed by exactly that many bytes of UTF-8 JSON — one complete
/// document per frame, no newline framing, no sync markers.
///
/// Requests (client -> server) are objects with an "op" member:
///
///   {"op":"submit","name":N,"source":S[,"deadline_seconds":D][,"chaos":C]}
///   {"op":"status","job":ID}
///   {"op":"cancel","job":ID}
///   {"op":"stats"}
///   {"op":"drain"}
///
/// Responses (server -> client) always carry "ok".  A submit streams:
/// first {"ok":true,"event":"accepted","job":ID}, then zero or more
/// {"ok":true,"event":"line","job":ID,"attempt":A,"line":L} frames — L is
/// one verbatim line of the supervised child's JSONL transcript (the same
/// rung_start and intro-run-report-v1 bytes intro_batch sees), then one
/// {"ok":true,"event":"done",...} frame.  Errors are
/// {"ok":false,"error":{"code":C,"message":M[,"line":N]}} with stable
/// machine codes (see DESIGN.md section 12 for the full grammar).
///
/// Framing errors cannot be resynchronized from — after an oversized or
/// truncated frame the server answers with a coded error and closes that
/// connection; the *server* keeps serving.  Malformed JSON inside a
/// well-formed frame is recoverable: the error response carries the
/// parser's 1-based line number and the connection stays open.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_PROTOCOL_H
#define SERVE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <string_view>

namespace intro::serve {

/// Protocol identifier sent in the hello frame and asserted by clients.
inline constexpr const char *ProtocolName = "intro-serve-v1";

/// Hard cap on one frame's payload.  Large enough for any realistic
/// textual-IR program, small enough that a garbage length header cannot
/// make the server buffer gigabytes.
inline constexpr uint32_t MaxFramePayload = 16u << 20;

/// \returns \p Payload wrapped as one wire frame (length header + bytes).
std::string encodeFrame(std::string_view Payload);

/// Incremental frame decoder: feed() raw socket bytes, then pull complete
/// frames with next() until it reports NeedMore.  Byte streams are
/// adversarial input here — the decoder never throws, never over-reads,
/// and flags unrecoverable framing errors explicitly.
class FrameDecoder {
public:
  enum class Status : uint8_t {
    NeedMore, ///< No complete frame buffered yet.
    Frame,    ///< One payload extracted into the out-parameter.
    Error,    ///< Unrecoverable framing error (oversized length).
  };

  /// Appends \p Count raw bytes from the socket.
  void feed(const char *Data, size_t Count);

  /// Tries to extract the next complete frame into \p Payload.  On Error,
  /// \p ErrorMessage describes the problem; the decoder is then poisoned
  /// (every further next() returns Error) because the stream position is
  /// lost for good.
  Status next(std::string &Payload, std::string &ErrorMessage);

  /// True when buffered bytes form only part of a frame — at EOF this
  /// means the peer hung up mid-frame (the "truncated_frame" error).
  bool hasPartial() const { return !Poisoned && !Buffer.empty(); }

private:
  std::string Buffer;
  bool Poisoned = false;
};

} // namespace intro::serve

#endif // SERVE_PROTOCOL_H
