//===- serve/Client.cpp - intro-serve-v1 client ---------------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Json.h"
#include "support/Socket.h"

#include <sstream>

#include <unistd.h>

using namespace intro;
using namespace intro::serve;

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  Fd = connectUnix(SocketPath, Error);
  if (Fd < 0)
    return false;
  std::string Hello;
  if (!recv(Hello, Error))
    return false;
  JsonParseResult Parsed = parseJson(Hello);
  std::string Protocol;
  if (!Parsed.ok() || !Parsed.Value.getString("protocol", Protocol) ||
      Protocol != ProtocolName) {
    Error = "server did not greet with " + std::string(ProtocolName);
    close();
    return false;
  }
  return true;
}

bool Client::send(std::string_view Json, std::string &Error) {
  std::string Frame = encodeFrame(Json);
  if (!sendAll(Fd, Frame.data(), Frame.size())) {
    Error = "server connection closed while sending";
    return false;
  }
  return true;
}

bool Client::recv(std::string &Json, std::string &Error) {
  char Buffer[4096];
  while (true) {
    std::string FrameError;
    FrameDecoder::Status Status = Decoder.next(Json, FrameError);
    if (Status == FrameDecoder::Status::Frame)
      return true;
    if (Status == FrameDecoder::Status::Error) {
      Error = "bad frame from server: " + FrameError;
      return false;
    }
    if (pollIn(Fd, -1) < 0) {
      Error = "poll failed on server connection";
      return false;
    }
    long Count = readSome(Fd, Buffer, sizeof(Buffer));
    if (Count < 0) {
      Error = "read failed on server connection";
      return false;
    }
    if (Count == 0) {
      Error = "server closed the connection";
      return false;
    }
    Decoder.feed(Buffer, static_cast<size_t>(Count));
  }
}

namespace {

/// Pulls an error frame's code/message into a single diagnostic.
bool extractError(const JsonValue &Doc, std::string &Error) {
  bool Ok = true;
  if (Doc.getBool("ok", Ok) && !Ok) {
    std::string Code = "error";
    std::string Message;
    if (const JsonValue *Detail = Doc.get("error")) {
      Detail->getString("code", Code);
      Detail->getString("message", Message);
    }
    Error = Code + ": " + Message;
    return true;
  }
  return false;
}

} // namespace

bool Client::submit(
    const std::string &Name, const std::string &Source, double DeadlineSeconds,
    const std::string &ChaosSpec,
    const std::function<void(uint64_t Attempt, const std::string &Line)>
        &OnLine,
    SubmitOutcome &Out, std::string &Error) {
  std::ostringstream Request;
  {
    JsonWriter J(Request);
    J.beginObject();
    J.key("op");
    J.value("submit");
    J.key("name");
    J.value(Name);
    J.key("source");
    J.value(Source);
    if (DeadlineSeconds > 0) {
      J.key("deadline_seconds");
      J.value(DeadlineSeconds);
    }
    if (!ChaosSpec.empty()) {
      J.key("chaos");
      J.value(ChaosSpec);
    }
    J.endObject();
  }
  if (!send(Request.str(), Error))
    return false;

  while (true) {
    std::string Payload;
    if (!recv(Payload, Error))
      return false;
    JsonParseResult Parsed = parseJson(Payload);
    if (!Parsed.ok()) {
      Error = "unparseable frame from server: " + Parsed.Error;
      return false;
    }
    const JsonValue &Doc = Parsed.Value;
    if (extractError(Doc, Error))
      return false;
    std::string Event;
    Doc.getString("event", Event);
    if (Event == "accepted") {
      Doc.getUint("job", Out.JobId);
      continue;
    }
    if (Event == "line") {
      std::string Line;
      uint64_t Attempt = 0;
      Doc.getString("line", Line);
      Doc.getUint("attempt", Attempt);
      if (Line.find("\"schema\"") != std::string::npos)
        Out.FinalReportLine = Line;
      if (OnLine)
        OnLine(Attempt, Line);
      continue;
    }
    if (Event != "done") {
      Error = "unexpected event '" + Event + "' while awaiting done";
      return false;
    }
    Doc.getUint("job", Out.JobId);
    Doc.getString("state", Out.State);
    Doc.getString("final_class", Out.FinalClass);
    Doc.getBool("quarantined", Out.Quarantined);
    Doc.getBool("aborted", Out.Aborted);
    Doc.getUint("attempts", Out.Attempts);
    if (const JsonValue *Result = Doc.get("result");
        Result && Result->isObject()) {
      Result->getString("level", Out.ResultLevel);
      Result->getString("status", Out.ResultStatus);
      Result->getBool("completed", Out.ResultCompleted);
    }
    if (const JsonValue *Errors = Doc.get("input_errors");
        Errors && Errors->isArray())
      for (const JsonValue &E : Errors->elements())
        if (E.isString())
          Out.InputErrors.push_back(E.asString());
    if (const JsonValue *Cache = Doc.get("cache"); Cache && Cache->isObject()) {
      Out.CacheEnabled = true;
      Cache->getUint("probes", Out.Cache.Probes);
      Cache->getUint("hits", Out.Cache.Hits);
      Cache->getUint("misses", Out.Cache.Misses);
      Cache->getUint("corrupt_entries", Out.Cache.CorruptEntries);
      Cache->getUint("stores", Out.Cache.Stores);
      Cache->getUint("store_failures", Out.Cache.StoreFailures);
      Cache->getUint("evictions", Out.Cache.Evictions);
    }
    return true;
  }
}

bool Client::drain(std::string &Error) {
  if (!send(R"({"op":"drain"})", Error))
    return false;
  std::string Payload;
  if (!recv(Payload, Error))
    return false;
  JsonParseResult Parsed = parseJson(Payload);
  if (!Parsed.ok()) {
    Error = "unparseable frame from server: " + Parsed.Error;
    return false;
  }
  if (extractError(Parsed.Value, Error))
    return false;
  std::string Event;
  Parsed.Value.getString("event", Event);
  if (Event != "drained") {
    Error = "expected a drained acknowledgement, got '" + Event + "'";
    return false;
  }
  return true;
}
