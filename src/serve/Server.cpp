//===- serve/Server.cpp - Persistent analysis service ---------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Protocol.h"
#include "support/ExitCodes.h"
#include "support/Socket.h"
#include "support/Trace.h"

#include <algorithm>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

using namespace intro;
using namespace intro::serve;

//===----------------------------------------------------------------------===//
// Internal state
//===----------------------------------------------------------------------===//

/// One submitted job, visible to every session (status/cancel cross
/// connections).  Phase moves Queued -> Running -> Done; CancelRequested is
/// both the queued-stage tombstone and the running-stage kill switch
/// (wired into ChildLimits::Cancel).
struct Server::JobState {
  uint64_t Id = 0;
  std::string Name;
  std::atomic<bool> CancelRequested{false};
  std::atomic<uint8_t> Phase{0}; // 0 queued, 1 running, 2 done.
  std::mutex Mutex;              // Guards Result and FinalReportLine.
  supervise::JobResult Result;
  std::string FinalReportLine;
};

/// One accepted connection: a reader thread plus a send mutex, because job
/// workers stream line events into the same fd the session thread writes
/// responses to.
struct Server::Session {
  int Fd = -1;
  std::mutex SendMutex;
  std::atomic<bool> PeerGone{false};
  std::atomic<bool> Finished{false};
  std::thread Thread;
};

Server::Server(ServerOptions Opts) : Options(std::move(Opts)) {}

Server::~Server() {
  reapSessions(/*JoinAll=*/true);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Options.SocketPath.c_str());
  }
}

bool Server::start(std::string &Error) {
  ListenFd = listenUnix(Options.SocketPath, /*Backlog=*/64, Error);
  if (ListenFd < 0)
    return false;
  Pool = std::make_unique<ThreadPool>(std::max(1u, Options.Workers));
  return true;
}

ServerCounters Server::counters() const {
  ServerCounters C;
  C.Connections = NConnections.load(std::memory_order_relaxed);
  C.Frames = NFrames.load(std::memory_order_relaxed);
  C.Submits = NSubmits.load(std::memory_order_relaxed);
  C.Completed = NCompleted.load(std::memory_order_relaxed);
  C.Cancelled = NCancelled.load(std::memory_order_relaxed);
  C.Errors = NErrors.load(std::memory_order_relaxed);
  return C;
}

//===----------------------------------------------------------------------===//
// Frame plumbing
//===----------------------------------------------------------------------===//

bool Server::sendFrame(Session &S, std::string_view Payload) {
  std::lock_guard<std::mutex> Lock(S.SendMutex);
  if (S.PeerGone.load(std::memory_order_relaxed))
    return false;
  std::string Frame = encodeFrame(Payload);
  if (!sendAll(S.Fd, Frame.data(), Frame.size())) {
    // EPIPE policy: the client hanging up on its own progress stream is a
    // clean stop, not a server error.  Remember it so nothing else tries.
    S.PeerGone.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool Server::sendError(Session &S, const char *Code,
                       const std::string &Message, uint32_t Line) {
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("ok");
  J.value(false);
  J.key("error");
  J.beginObject();
  J.key("code");
  J.value(Code);
  J.key("message");
  J.value(Message);
  if (Line > 0) {
    J.key("line");
    J.value(Line);
  }
  J.endObject();
  J.endObject();
  return sendFrame(S, Out.str());
}

//===----------------------------------------------------------------------===//
// Accept loop and sessions
//===----------------------------------------------------------------------===//

int Server::run(const std::atomic<bool> &Stop) {
  TRACE_SPAN("serve.run");
  while (!Stopping.load(std::memory_order_relaxed)) {
    if (Stop.load(std::memory_order_relaxed)) {
      // SIGTERM path: same contract as the drain op — finish what is
      // in flight, then leave nothing behind.
      TRACE_INSTANT("serve.stop_requested", 1);
      drainJobs();
      break;
    }
    reapSessions(/*JoinAll=*/false);
    int Ready = pollIn(ListenFd, 200);
    if (Ready < 0)
      break;
    if (Ready == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    NConnections.fetch_add(1, std::memory_order_relaxed);
    TRACE_COUNTER("serve.connection", 1);
    auto S = std::make_unique<Session>();
    S->Fd = Fd;
    Session *Raw = S.get();
    {
      std::lock_guard<std::mutex> Lock(SessionsMutex);
      Sessions.push_back(std::move(S));
    }
    Raw->Thread = std::thread([this, Raw] {
      // A supervision primitive throwing (fork failure, bad_alloc in the
      // parent) must cost one connection, never the whole server.
      try {
        serveSession(*Raw);
      } catch (...) {
        NErrors.fetch_add(1, std::memory_order_relaxed);
      }
      Raw->Finished.store(true, std::memory_order_release);
    });
  }

  // Shutdown: no new jobs can exist (drained), every session must wind
  // down.  shutdown(2) wakes sessions blocked in poll/read; their job
  // futures already resolved because drainJobs() waited for ActiveJobs.
  drainJobs();
  Stopping.store(true, std::memory_order_relaxed);
  ::close(ListenFd);
  ListenFd = -1;
  reapSessions(/*JoinAll=*/true);
  ::unlink(Options.SocketPath.c_str());
  return ExitSuccess;
}

void Server::reapSessions(bool JoinAll) {
  std::list<std::unique_ptr<Session>> Dead;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      Session &S = **It;
      if (JoinAll && !S.Finished.load(std::memory_order_acquire))
        ::shutdown(S.Fd, SHUT_RDWR); // Wake the reader; it will exit.
      if (JoinAll || S.Finished.load(std::memory_order_acquire)) {
        Dead.push_back(std::move(*It));
        It = Sessions.erase(It);
      } else {
        ++It;
      }
    }
  }
  for (std::unique_ptr<Session> &S : Dead) {
    if (S->Thread.joinable())
      S->Thread.join();
    ::close(S->Fd);
  }
}

void Server::serveSession(Session &S) {
  TRACE_SPAN("serve.session");
  {
    std::ostringstream Out;
    JsonWriter J(Out);
    J.beginObject();
    J.key("ok");
    J.value(true);
    J.key("event");
    J.value("hello");
    J.key("protocol");
    J.value(ProtocolName);
    J.endObject();
    if (!sendFrame(S, Out.str()))
      return;
  }

  FrameDecoder Decoder;
  char Buffer[4096];
  bool Close = false;
  while (!Close && !Stopping.load(std::memory_order_relaxed)) {
    int Ready = pollIn(S.Fd, 200);
    if (Ready < 0)
      break;
    if (Ready == 0)
      continue;
    long Count = readSome(S.Fd, Buffer, sizeof(Buffer));
    if (Count < 0)
      break;
    if (Count == 0) {
      // EOF.  A half-sent frame means the peer died (or gave up)
      // mid-request; name the condition so a flaky client can tell its
      // own truncation from a server fault.
      if (Decoder.hasPartial()) {
        NErrors.fetch_add(1, std::memory_order_relaxed);
        sendError(S, "truncated_frame", "connection closed mid-frame", 0);
      }
      break;
    }
    Decoder.feed(Buffer, static_cast<size_t>(Count));
    std::string Payload;
    std::string FrameError;
    while (!Close) {
      FrameDecoder::Status Status = Decoder.next(Payload, FrameError);
      if (Status == FrameDecoder::Status::NeedMore)
        break;
      if (Status == FrameDecoder::Status::Error) {
        NErrors.fetch_add(1, std::memory_order_relaxed);
        sendError(S, "oversized_frame", FrameError, 0);
        Close = true; // The stream position is unrecoverable.
        break;
      }
      NFrames.fetch_add(1, std::memory_order_relaxed);
      Close = !handleRequest(S, Payload);
    }
  }
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

bool Server::handleRequest(Session &S, const std::string &Payload) {
  JsonParseResult Parsed = parseJson(Payload);
  if (!Parsed.ok()) {
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return sendError(S, "bad_json", Parsed.Error, Parsed.Line);
  }
  std::string Op;
  if (!Parsed.Value.isObject() || !Parsed.Value.getString("op", Op)) {
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return sendError(S, "bad_request",
                     "expected an object with a string \"op\" member", 0);
  }
  if (Op == "submit")
    return handleSubmit(S, Parsed.Value);
  if (Op == "status")
    return handleStatus(S, Parsed.Value);
  if (Op == "cancel")
    return handleCancel(S, Parsed.Value);
  if (Op == "stats")
    return handleStats(S);
  if (Op == "drain")
    return handleDrain(S);
  NErrors.fetch_add(1, std::memory_order_relaxed);
  return sendError(S, "unknown_op", "unknown op '" + Op + "'", 0);
}

std::shared_ptr<Server::JobState> Server::findJob(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(JobsMutex);
  auto It = Jobs.find(Id);
  return It == Jobs.end() ? nullptr : It->second;
}

const char *Server::jobStateName(const JobState &Job) {
  uint8_t Phase = Job.Phase.load(std::memory_order_acquire);
  if (Phase == 2)
    return Job.CancelRequested.load(std::memory_order_relaxed) ? "cancelled"
                                                               : "done";
  if (Job.CancelRequested.load(std::memory_order_relaxed))
    return "cancelling";
  return Phase == 1 ? "running" : "queued";
}

bool Server::handleSubmit(Session &S, const JsonValue &Doc) {
  supervise::JobSpec Spec;
  if (!Doc.getString("name", Spec.Name) ||
      !Doc.getString("source", Spec.Source) || Spec.Name.empty())
    return sendError(
        S, "bad_request",
        "submit needs a nonempty string \"name\" and a string \"source\"", 0);
  std::string ChaosSpec;
  if (Doc.getString("chaos", ChaosSpec)) {
    std::string ChaosError;
    if (!supervise::parseChaosPlan(ChaosSpec, Spec.Chaos, ChaosError))
      return sendError(S, "bad_request", "bad chaos spec: " + ChaosError, 0);
  }
  double Deadline = Options.Batch.Limits.WallDeadlineSeconds;
  double Requested = 0;
  if (Doc.getDouble("deadline_seconds", Requested)) {
    if (!(Requested > 0))
      return sendError(S, "bad_request", "deadline_seconds must be positive",
                       0);
    Deadline = std::min(Requested, Options.MaxDeadlineSeconds);
  }

  std::shared_ptr<JobState> Job;
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    if (Draining)
      return sendError(S, "draining",
                       "server is draining and accepts no new jobs", 0);
    Job = std::make_shared<JobState>();
    Job->Id = NextJobId++;
    Job->Name = Spec.Name;
    Jobs.emplace(Job->Id, Job);
    ++ActiveJobs;
  }
  NSubmits.fetch_add(1, std::memory_order_relaxed);
  TRACE_COUNTER("serve.submit", 1);

  {
    std::ostringstream Out;
    JsonWriter J(Out);
    J.beginObject();
    J.key("ok");
    J.value(true);
    J.key("event");
    J.value("accepted");
    J.key("job");
    J.value(Job->Id);
    J.key("name");
    J.value(Job->Name);
    J.endObject();
    sendFrame(S, Out.str());
  }

  // The session thread blocks on the worker future — responses to this
  // connection stay in request order — while other sessions keep being
  // served (each has its own thread) and other jobs keep running (the
  // pool has Options.Workers slots).  The jitter seed is the job id, so a
  // job's planned backoff schedule is reproducible from its done frame.
  size_t JobIndex = static_cast<size_t>(Job->Id - 1);
  auto Future =
      Pool->submit([this, &S, Job, Spec = std::move(Spec), Deadline,
                    JobIndex]() mutable {
        runJob(S, *Job, Spec, Deadline, JobIndex);
      });
  Future.get();

  bool Sent = sendFrame(S, doneFrameFor(*Job));
  return Sent && !Stopping.load(std::memory_order_relaxed);
}

void Server::runJob(Session &S, JobState &Job, const supervise::JobSpec &Spec,
                    double DeadlineSeconds, size_t JobIndex) {
  TRACE_SPAN("serve.job");
  if (Job.CancelRequested.load(std::memory_order_acquire)) {
    // Cancelled while still queued: never launch a child.
    {
      std::lock_guard<std::mutex> Lock(Job.Mutex);
      Job.Result.Name = Spec.Name;
      Job.Result.Aborted = true;
    }
    finishJob(Job);
    return;
  }
  Job.Phase.store(1, std::memory_order_release);

  supervise::BatchOptions JobOptions = Options.Batch;
  // The server never runs an unwatched child; a hung analysis must not pin
  // a worker slot forever.
  JobOptions.Limits.WallDeadlineSeconds =
      DeadlineSeconds > 0 ? DeadlineSeconds : Options.MaxDeadlineSeconds;

  supervise::JobHooks Hooks;
  Hooks.CancelChild = &Job.CancelRequested;
  Hooks.ShouldAbort = [&Job] {
    return Job.CancelRequested.load(std::memory_order_acquire);
  };
  std::string LineBuffer;
  uint32_t LastAttempt = 0;
  Hooks.OnChildOutput = [&](uint32_t Attempt, std::string_view Chunk) {
    if (Attempt != LastAttempt) {
      LineBuffer.clear();
      LastAttempt = Attempt;
    }
    LineBuffer.append(Chunk);
    size_t Newline;
    while ((Newline = LineBuffer.find('\n')) != std::string::npos) {
      std::string Line = LineBuffer.substr(0, Newline);
      LineBuffer.erase(0, Newline + 1);
      if (Line.empty())
        continue;
      if (Line.find("\"schema\"") != std::string::npos) {
        std::lock_guard<std::mutex> Lock(Job.Mutex);
        Job.FinalReportLine = Line;
      }
      std::ostringstream Out;
      JsonWriter J(Out);
      J.beginObject();
      J.key("ok");
      J.value(true);
      J.key("event");
      J.value("line");
      J.key("job");
      J.value(Job.Id);
      J.key("attempt");
      J.value(Attempt);
      J.key("line");
      J.value(Line);
      J.endObject();
      if (!sendFrame(S, Out.str()) &&
          !Job.CancelRequested.load(std::memory_order_relaxed)) {
        // The client vanished mid-stream.  Per the EPIPE policy that is a
        // clean stop — and an orphaned analysis is pointless work, so the
        // job is cancelled rather than run to completion for nobody.
        TRACE_INSTANT("serve.client_gone", 1);
        Job.CancelRequested.store(true, std::memory_order_release);
      }
    }
  };

  supervise::JobResult Result;
  try {
    Result = supervise::runSupervisedJob(Spec, JobIndex, JobOptions, Hooks);
  } catch (...) {
    // Supervision itself failed (fork, pipe, allocation).  The job still
    // has to settle — a leaked ActiveJobs slot would deadlock drain.
    Result.Name = Spec.Name;
    Result.FinalClass = supervise::JobOutcomeClass::NonzeroExit;
    Result.Aborted = true;
  }
  {
    std::lock_guard<std::mutex> Lock(Job.Mutex);
    Job.Result = std::move(Result);
  }
  finishJob(Job);
}

void Server::finishJob(JobState &Job) {
  Job.Phase.store(2, std::memory_order_release);
  if (Job.CancelRequested.load(std::memory_order_relaxed)) {
    NCancelled.fetch_add(1, std::memory_order_relaxed);
    TRACE_COUNTER("serve.cancelled", 1);
  } else {
    NCompleted.fetch_add(1, std::memory_order_relaxed);
    TRACE_COUNTER("serve.completed", 1);
  }
  std::lock_guard<std::mutex> Lock(JobsMutex);
  --ActiveJobs;
  JobsIdle.notify_all();
}

std::string Server::doneFrameFor(JobState &Job) {
  std::lock_guard<std::mutex> Lock(Job.Mutex);
  const supervise::JobResult &R = Job.Result;
  bool Cancelled = Job.CancelRequested.load(std::memory_order_relaxed);

  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("ok");
  J.value(true);
  J.key("event");
  J.value("done");
  J.key("job");
  J.value(Job.Id);
  J.key("name");
  J.value(Job.Name);
  J.key("state");
  J.value(Cancelled ? "cancelled" : "done");
  J.key("final_class");
  if (R.Attempts.empty())
    J.null(); // Cancelled before any child launched.
  else
    J.value(supervise::jobOutcomeClassName(R.FinalClass));
  J.key("quarantined");
  J.value(R.Quarantined);
  J.key("aborted");
  J.value(R.Aborted);
  J.key("attempts");
  J.value(static_cast<uint64_t>(R.Attempts.size()));
  J.key("result");
  if (!Cancelled && !R.Attempts.empty() &&
      R.FinalClass == supervise::JobOutcomeClass::Clean) {
    J.beginObject();
    J.key("level");
    J.value(R.ResultLevel);
    J.key("status");
    J.value(R.ResultStatus);
    J.key("completed");
    J.value(R.ResultCompleted);
    J.endObject();
  } else {
    J.null();
  }
  J.key("input_errors");
  J.beginArray();
  for (const std::string &Error : R.InputErrors)
    J.value(Error);
  J.endArray();

  // Cache counters summed over the attempts that ran with a cache — the
  // same aggregation writeBatchReportJson totals use, so a client report
  // built from done frames matches a batch report built locally.
  cache::CacheStats Total;
  bool CacheEnabled = false;
  for (const supervise::JobAttempt &A : R.Attempts) {
    if (!A.CacheEnabled)
      continue;
    CacheEnabled = true;
    Total.Probes += A.Cache.Probes;
    Total.Hits += A.Cache.Hits;
    Total.Misses += A.Cache.Misses;
    Total.CorruptEntries += A.Cache.CorruptEntries;
    Total.Stores += A.Cache.Stores;
    Total.StoreFailures += A.Cache.StoreFailures;
    Total.Evictions += A.Cache.Evictions;
  }
  J.key("cache");
  if (CacheEnabled) {
    J.beginObject();
    J.key("probes");
    J.value(Total.Probes);
    J.key("hits");
    J.value(Total.Hits);
    J.key("misses");
    J.value(Total.Misses);
    J.key("corrupt_entries");
    J.value(Total.CorruptEntries);
    J.key("stores");
    J.value(Total.Stores);
    J.key("store_failures");
    J.value(Total.StoreFailures);
    J.key("evictions");
    J.value(Total.Evictions);
    J.endObject();
  } else {
    J.null();
  }
  J.endObject();
  return Out.str();
}

bool Server::handleStatus(Session &S, const JsonValue &Doc) {
  uint64_t Id = 0;
  if (!Doc.getUint("job", Id))
    return sendError(S, "bad_request", "status needs a numeric \"job\"", 0);
  std::shared_ptr<JobState> Job = findJob(Id);
  if (!Job) {
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return sendError(S, "unknown_job", "no such job id: " + std::to_string(Id),
                     0);
  }
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("ok");
  J.value(true);
  J.key("event");
  J.value("status");
  J.key("job");
  J.value(Job->Id);
  J.key("name");
  J.value(Job->Name);
  J.key("state");
  J.value(jobStateName(*Job));
  J.endObject();
  return sendFrame(S, Out.str());
}

bool Server::handleCancel(Session &S, const JsonValue &Doc) {
  uint64_t Id = 0;
  if (!Doc.getUint("job", Id))
    return sendError(S, "bad_request", "cancel needs a numeric \"job\"", 0);
  std::shared_ptr<JobState> Job = findJob(Id);
  if (!Job) {
    NErrors.fetch_add(1, std::memory_order_relaxed);
    return sendError(S, "unknown_job", "no such job id: " + std::to_string(Id),
                     0);
  }
  const char *Was = jobStateName(*Job);
  Job->CancelRequested.store(true, std::memory_order_release);
  TRACE_INSTANT("serve.cancel", 1);
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("ok");
  J.value(true);
  J.key("event");
  J.value("cancel");
  J.key("job");
  J.value(Job->Id);
  J.key("was");
  J.value(Was);
  J.endObject();
  return sendFrame(S, Out.str());
}

bool Server::handleStats(Session &S) {
  size_t Active;
  size_t TotalJobs;
  bool IsDraining;
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    Active = ActiveJobs;
    TotalJobs = Jobs.size();
    IsDraining = Draining;
  }
  ServerCounters C = counters();
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("ok");
  J.value(true);
  J.key("event");
  J.value("stats");
  J.key("protocol");
  J.value(ProtocolName);
  J.key("workers");
  J.value(static_cast<uint64_t>(std::max(1u, Options.Workers)));
  J.key("connections");
  J.value(C.Connections);
  J.key("frames");
  J.value(C.Frames);
  J.key("submits");
  J.value(C.Submits);
  J.key("completed");
  J.value(C.Completed);
  J.key("cancelled");
  J.value(C.Cancelled);
  J.key("errors");
  J.value(C.Errors);
  J.key("active_jobs");
  J.value(static_cast<uint64_t>(Active));
  J.key("jobs");
  J.value(static_cast<uint64_t>(TotalJobs));
  J.key("draining");
  J.value(IsDraining);
  J.key("cache_enabled");
  J.value(!Options.Batch.CacheDir.empty());
  J.endObject();
  return sendFrame(S, Out.str());
}

void Server::drainJobs() {
  std::unique_lock<std::mutex> Lock(JobsMutex);
  Draining = true;
  JobsIdle.wait(Lock, [this] { return ActiveJobs == 0; });
}

bool Server::handleDrain(Session &S) {
  TRACE_SPAN("serve.drain");
  drainJobs();
  ServerCounters C = counters();
  std::ostringstream Out;
  JsonWriter J(Out);
  J.beginObject();
  J.key("ok");
  J.value(true);
  J.key("event");
  J.value("drained");
  J.key("completed");
  J.value(C.Completed);
  J.key("cancelled");
  J.value(C.Cancelled);
  J.endObject();
  sendFrame(S, Out.str());
  Stopping.store(true, std::memory_order_relaxed);
  return false; // Close this connection; run() exits on its next poll tick.
}
