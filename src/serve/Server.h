//===- serve/Server.h - Persistent analysis service -------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running analysis daemon behind tools/intro_serve: accepts jobs
/// over a Unix-domain socket (serve/Protocol.h), runs each one through the
/// same supervised-child machinery as intro_batch (supervise/Supervise.h),
/// and streams the child's JSONL transcript back to the submitting client
/// as it is produced.  The design invariants:
///
///   - **Crash isolation.**  Every analysis runs in a forked, rlimit-guarded
///     child; a segfaulting, OOMing, or hanging job is classified and
///     retried by the supervision layer and can never take the server down.
///   - **Concurrency.**  Jobs from any number of connections multiplex onto
///     one support/ThreadPool; sessions are one thread each, so status /
///     cancel / stats requests are served while jobs run.
///   - **Warm cache.**  All jobs share one Pass-A ResultCache directory, so
///     a resubmitted program skips the pre-analysis regardless of which
///     connection first submitted it.
///   - **Determinism.**  A served job's child runs byte-identically to an
///     intro_batch job's child: the rung_start events and the
///     intro-run-report-v1 line stream to the client verbatim, and the
///     report's deterministic section is byte-equal to a local run with the
///     same ladder (asserted by serve_tests).
///   - **Deadlines.**  Every job runs under a wall watchdog: the request's
///     deadline_seconds clamped to MaxDeadlineSeconds, or the configured
///     default.  There is no unwatched mode on the server.
///   - **Clean drain.**  A drain request (or SIGTERM in intro_serve)
///     refuses new submits, waits for in-flight jobs, answers, and shuts
///     down with every child reaped and the socket file removed.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_SERVER_H
#define SERVE_SERVER_H

#include "supervise/Supervise.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace intro::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket.
  std::string SocketPath;
  /// Ladder, child limits, retry policy, and Pass-A cache configuration —
  /// exactly the knobs intro_batch exposes, applied to every served job.
  /// Limits.WallDeadlineSeconds is the *default* per-job deadline.
  supervise::BatchOptions Batch;
  /// Upper clamp on a request's deadline_seconds.  A client cannot buy
  /// more wall clock than the operator allows.
  double MaxDeadlineSeconds = 600;
  /// Worker threads running supervised jobs concurrently.
  unsigned Workers = 2;
};

/// Monotonic counters reported by the stats op (and used by tests).
struct ServerCounters {
  uint64_t Connections = 0;
  uint64_t Frames = 0;
  uint64_t Submits = 0;
  uint64_t Completed = 0;
  uint64_t Cancelled = 0;
  uint64_t Errors = 0;
};

/// The service.  Lifecycle: construct, start() (bind + listen), run()
/// (blocks until a drain request or the stop flag), destruct.  run() owns
/// every session thread and every job; when it returns, all children are
/// reaped, all threads joined, and the socket file is gone.
class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on the socket.  \returns false with \p Error set
  /// (path too long, another live server, permission).
  bool start(std::string &Error);

  /// Accept-and-serve loop.  Returns after a drain op completes, or after
  /// \p Stop becomes true (the SIGTERM path: drains in-flight jobs first).
  /// \returns a process exit code (support/ExitCodes.h).
  int run(const std::atomic<bool> &Stop);

  /// Counter snapshot (thread-safe; tests poll this).
  ServerCounters counters() const;

private:
  struct JobState;
  struct Session;

  void serveSession(Session &S);
  /// \returns false when the connection should close.
  bool handleRequest(Session &S, const std::string &Payload);
  bool handleSubmit(Session &S, const JsonValue &Doc);
  bool handleStatus(Session &S, const JsonValue &Doc);
  bool handleCancel(Session &S, const JsonValue &Doc);
  bool handleStats(Session &S);
  bool handleDrain(Session &S);

  void runJob(Session &S, JobState &Job, const supervise::JobSpec &Spec,
              double DeadlineSeconds, size_t JobIndex);
  void finishJob(JobState &Job);
  std::string doneFrameFor(JobState &Job);

  bool sendFrame(Session &S, std::string_view Payload);
  bool sendError(Session &S, const char *Code, const std::string &Message,
                 uint32_t Line);

  std::shared_ptr<JobState> findJob(uint64_t Id);
  const char *jobStateName(const JobState &Job);
  void drainJobs();
  void reapSessions(bool JoinAll);

  ServerOptions Options;
  int ListenFd = -1;
  std::unique_ptr<ThreadPool> Pool;

  mutable std::mutex JobsMutex;
  std::condition_variable JobsIdle;
  std::unordered_map<uint64_t, std::shared_ptr<JobState>> Jobs;
  uint64_t NextJobId = 1;
  size_t ActiveJobs = 0;
  bool Draining = false;

  std::atomic<bool> Stopping{false};

  std::mutex SessionsMutex;
  std::list<std::unique_ptr<Session>> Sessions;

  std::atomic<uint64_t> NConnections{0};
  std::atomic<uint64_t> NFrames{0};
  std::atomic<uint64_t> NSubmits{0};
  std::atomic<uint64_t> NCompleted{0};
  std::atomic<uint64_t> NCancelled{0};
  std::atomic<uint64_t> NErrors{0};
};

} // namespace intro::serve

#endif // SERVE_SERVER_H
