//===- introspect/Metrics.cpp - Cost metrics of Section 3 -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Metrics.h"

#include "analysis/Result.h"
#include "ir/Program.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>

using namespace intro;

namespace {

void initMetrics(IntrospectionMetrics &M, const Program &Prog) {
  M.InFlow.assign(Prog.numSites(), 0);
  M.MethodTotalVolume.assign(Prog.numMethods(), 0);
  M.MethodMaxVarPointsTo.assign(Prog.numMethods(), 0);
  M.ObjectMaxFieldPointsTo.assign(Prog.numHeaps(), 0);
  M.ObjectTotalFieldPointsTo.assign(Prog.numHeaps(), 0);
  M.MethodMaxVarFieldPointsTo.assign(Prog.numMethods(), 0);
  M.PointedByVars.assign(Prog.numHeaps(), 0);
  M.PointedByObjs.assign(Prog.numHeaps(), 0);
}

// The three sweeps below are written over index ranges so the sequential
// path (one full range) and the parallel path (contiguous shards) execute
// the same code.  All cross-shard accumulation is integer sums and maxes,
// so merging per-shard buffers in any order reproduces the sequential
// values bit for bit.

/// Metric #1 — in-flow: the Datalog query of Section 3,
///   HEAPSPERINVOCATIONPERARG(invo, arg, heap) <- CALLGRAPH(invo, _, _, _),
///     ACTUALARG(invo, _, arg), VARPOINTSTO(arg, _, heap, _).
///   INFLOW(invo, count(...)).
/// Writes are per-site, so shards over disjoint site ranges never collide.
void inFlowRange(const Program &Prog, const PointsToResult &Insens,
                 uint32_t Begin, uint32_t End, std::vector<uint64_t> &InFlow) {
  for (uint32_t SiteIndex = Begin; SiteIndex < End; ++SiteIndex) {
    SiteId Site(SiteIndex);
    if (Insens.callTargets(Site).empty())
      continue; // No CALLGRAPH(invo, ...) fact.
    uint64_t Total = 0;
    for (VarId Actual : Prog.site(Site).Actuals)
      Total += Insens.pointsTo(Actual).size();
    InFlow[SiteIndex] = Total;
  }
}

/// One (base heap, field) -> heaps cell of the FieldHeaps map.
using FieldCell = std::pair<const uint64_t, SortedIdSet>;

/// Metrics #3 and #6 — per-object field points-to sizes and
/// pointed-by-objs, accumulated into caller-provided buffers (the metric
/// vectors themselves on the sequential path, per-shard scratch on the
/// parallel path).
void fieldCellRange(const std::vector<const FieldCell *> &Cells, size_t Begin,
                    size_t End, std::vector<uint64_t> &TotalFieldPointsTo,
                    std::vector<uint64_t> &MaxFieldPointsTo,
                    std::vector<uint64_t> &PointedByObjs) {
  for (size_t Index = Begin; Index < End; ++Index) {
    const auto &[Key, Heaps] = *Cells[Index];
    uint32_t BaseHeap = static_cast<uint32_t>(Key >> 32);
    uint64_t Size = Heaps.size();
    TotalFieldPointsTo[BaseHeap] += Size;
    MaxFieldPointsTo[BaseHeap] = std::max(MaxFieldPointsTo[BaseHeap], Size);
    for (uint32_t Pointee : Heaps)
      ++PointedByObjs[Pointee];
  }
}

/// Metrics #2, #4, #5 — per-method volumes and pointed-by-vars, one sweep
/// over all (var, heap) pairs.  The per-method outputs are disjoint writes;
/// PointedByVars crosses method boundaries and goes through \p PointedByVars
/// (per-shard scratch on the parallel path).  Reads the *merged*
/// ObjectMaxFieldPointsTo, so this sweep must run after metric #3 is final.
void methodRange(const Program &Prog, const PointsToResult &Insens,
                 uint32_t Begin, uint32_t End, IntrospectionMetrics &M,
                 std::vector<uint64_t> &PointedByVars) {
  for (uint32_t MethodIndex = Begin; MethodIndex < End; ++MethodIndex) {
    const MethodInfo &Info = Prog.method(MethodId(MethodIndex));
    uint64_t Volume = 0;
    uint64_t MaxVar = 0;
    uint64_t MaxVarField = 0;
    for (VarId Var : Info.Locals) {
      const SortedIdSet &Heaps = Insens.pointsTo(Var);
      Volume += Heaps.size();
      MaxVar = std::max(MaxVar, static_cast<uint64_t>(Heaps.size()));
      for (uint32_t HeapRaw : Heaps) {
        ++PointedByVars[HeapRaw];
        MaxVarField =
            std::max(MaxVarField, M.ObjectMaxFieldPointsTo[HeapRaw]);
      }
    }
    M.MethodTotalVolume[MethodIndex] = Volume;
    M.MethodMaxVarPointsTo[MethodIndex] = MaxVar;
    M.MethodMaxVarFieldPointsTo[MethodIndex] = MaxVarField;
  }
}

std::vector<const FieldCell *> collectFieldCells(const PointsToResult &Insens) {
  std::vector<const FieldCell *> Cells;
  Cells.reserve(Insens.FieldHeaps.size());
  for (const auto &Cell : Insens.FieldHeaps)
    Cells.push_back(&Cell);
  // FieldHeaps is an unordered_map, so pointer-collection order varies with
  // hashing, insertion history, and library version.  Today every consumer
  // folds the cells with commutative integer ops (sum / max / count), but a
  // deterministic processing order keeps the shard boundaries — and any
  // future order-sensitive fold — stable across runs and platforms.
  std::sort(Cells.begin(), Cells.end(),
            [](const FieldCell *A, const FieldCell *B) {
              return A->first < B->first;
            });
  return Cells;
}

} // namespace

IntrospectionMetrics
intro::computeIntrospectionMetrics(const Program &Prog,
                                   const PointsToResult &Insens) {
  IntrospectionMetrics M;
  initMetrics(M, Prog);

  // Spans are per *phase*, never per shard: shard counts vary with the
  // worker count, and the trace content must not (DESIGN.md §8).
  {
    TRACE_SPAN("metrics.in_flow");
    inFlowRange(Prog, Insens, 0, static_cast<uint32_t>(Prog.numSites()),
                M.InFlow);
  }
  {
    TRACE_SPAN("metrics.field_cells");
    std::vector<const FieldCell *> Cells = collectFieldCells(Insens);
    fieldCellRange(Cells, 0, Cells.size(), M.ObjectTotalFieldPointsTo,
                   M.ObjectMaxFieldPointsTo, M.PointedByObjs);
  }
  {
    TRACE_SPAN("metrics.methods");
    methodRange(Prog, Insens, 0, static_cast<uint32_t>(Prog.numMethods()), M,
                M.PointedByVars);
  }
  return M;
}

IntrospectionMetrics
intro::computeIntrospectionMetrics(const Program &Prog,
                                   const PointsToResult &Insens,
                                   ThreadPool &Pool) {
  IntrospectionMetrics M;
  initMetrics(M, Prog);
  size_t Shards = Pool.workerCount();

  // Phase 1a — in-flow: disjoint per-site writes, no merge needed.  The
  // span wraps the whole phase on the calling thread (per-shard spans would
  // make trace content depend on the worker count; DESIGN.md §8).
  {
    TRACE_SPAN("metrics.in_flow");
    parallelForShards(Pool, Prog.numSites(), Shards,
                      [&](size_t, size_t Begin, size_t End) {
                        inFlowRange(Prog, Insens, static_cast<uint32_t>(Begin),
                                    static_cast<uint32_t>(End), M.InFlow);
                      });
  }

  // Phase 1b — field cells: per-shard accumulation, merged by sum / max /
  // sum in shard-index order (any order gives the same integers).
  {
    TRACE_SPAN("metrics.field_cells");
    std::vector<const FieldCell *> Cells = collectFieldCells(Insens);
    struct FieldAccum {
      std::vector<uint64_t> Total, Max, PointedByObjs;
    };
    std::vector<FieldAccum> FieldShards(std::max<size_t>(
        1, std::min(Shards, std::max<size_t>(Cells.size(), 1))));
    parallelForShards(
        Pool, Cells.size(), FieldShards.size(),
        [&](size_t Shard, size_t Begin, size_t End) {
          FieldAccum &A = FieldShards[Shard];
          A.Total.assign(Prog.numHeaps(), 0);
          A.Max.assign(Prog.numHeaps(), 0);
          A.PointedByObjs.assign(Prog.numHeaps(), 0);
          fieldCellRange(Cells, Begin, End, A.Total, A.Max, A.PointedByObjs);
        });
    for (const FieldAccum &A : FieldShards) {
      if (A.Total.empty())
        continue; // Shard never ran (more shards than cells).
      for (size_t Heap = 0; Heap < Prog.numHeaps(); ++Heap) {
        M.ObjectTotalFieldPointsTo[Heap] += A.Total[Heap];
        M.ObjectMaxFieldPointsTo[Heap] =
            std::max(M.ObjectMaxFieldPointsTo[Heap], A.Max[Heap]);
        M.PointedByObjs[Heap] += A.PointedByObjs[Heap];
      }
    }
  }

  // Phase 2 — methods: needs the merged ObjectMaxFieldPointsTo from phase
  // 1b.  Per-method outputs are disjoint writes; PointedByVars goes through
  // per-shard scratch summed in shard order.
  {
    TRACE_SPAN("metrics.methods");
    std::vector<std::vector<uint64_t>> VarShards(std::max<size_t>(
        1, std::min(Shards, std::max<size_t>(Prog.numMethods(), 1))));
    parallelForShards(Pool, Prog.numMethods(), VarShards.size(),
                      [&](size_t Shard, size_t Begin, size_t End) {
                        VarShards[Shard].assign(Prog.numHeaps(), 0);
                        methodRange(Prog, Insens, static_cast<uint32_t>(Begin),
                                    static_cast<uint32_t>(End), M,
                                    VarShards[Shard]);
                      });
    for (const std::vector<uint64_t> &Shard : VarShards) {
      if (Shard.empty())
        continue;
      for (size_t Heap = 0; Heap < Prog.numHeaps(); ++Heap)
        M.PointedByVars[Heap] += Shard[Heap];
    }
  }

  return M;
}
