//===- introspect/Metrics.cpp - Cost metrics of Section 3 -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Metrics.h"

#include "analysis/Result.h"
#include "ir/Program.h"

#include <algorithm>

using namespace intro;

IntrospectionMetrics
intro::computeIntrospectionMetrics(const Program &Prog,
                                   const PointsToResult &Insens) {
  IntrospectionMetrics M;
  M.InFlow.assign(Prog.numSites(), 0);
  M.MethodTotalVolume.assign(Prog.numMethods(), 0);
  M.MethodMaxVarPointsTo.assign(Prog.numMethods(), 0);
  M.ObjectMaxFieldPointsTo.assign(Prog.numHeaps(), 0);
  M.ObjectTotalFieldPointsTo.assign(Prog.numHeaps(), 0);
  M.MethodMaxVarFieldPointsTo.assign(Prog.numMethods(), 0);
  M.PointedByVars.assign(Prog.numHeaps(), 0);
  M.PointedByObjs.assign(Prog.numHeaps(), 0);

  // Metric #1 — in-flow: the Datalog query of Section 3,
  //   HEAPSPERINVOCATIONPERARG(invo, arg, heap) <- CALLGRAPH(invo, _, _, _),
  //     ACTUALARG(invo, _, arg), VARPOINTSTO(arg, _, heap, _).
  //   INFLOW(invo, count(...)).
  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    SiteId Site(SiteIndex);
    if (Insens.callTargets(Site).empty())
      continue; // No CALLGRAPH(invo, ...) fact.
    uint64_t Total = 0;
    for (VarId Actual : Prog.site(Site).Actuals)
      Total += Insens.pointsTo(Actual).size();
    M.InFlow[SiteIndex] = Total;
  }

  // Metrics #3 and #6 — per-object field points-to sizes and pointed-by-objs.
  for (const auto &[Key, Heaps] : Insens.FieldHeaps) {
    uint32_t BaseHeap = static_cast<uint32_t>(Key >> 32);
    uint64_t Size = Heaps.size();
    M.ObjectTotalFieldPointsTo[BaseHeap] += Size;
    M.ObjectMaxFieldPointsTo[BaseHeap] =
        std::max(M.ObjectMaxFieldPointsTo[BaseHeap], Size);
    for (uint32_t Pointee : Heaps)
      ++M.PointedByObjs[Pointee];
  }

  // Metrics #2, #4, #5 — per-method volumes and pointed-by-vars, one sweep
  // over all (var, heap) pairs.
  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    const MethodInfo &Info = Prog.method(MethodId(MethodIndex));
    uint64_t Volume = 0;
    uint64_t MaxVar = 0;
    uint64_t MaxVarField = 0;
    for (VarId Var : Info.Locals) {
      const SortedIdSet &Heaps = Insens.pointsTo(Var);
      Volume += Heaps.size();
      MaxVar = std::max(MaxVar, static_cast<uint64_t>(Heaps.size()));
      for (uint32_t HeapRaw : Heaps) {
        ++M.PointedByVars[HeapRaw];
        MaxVarField =
            std::max(MaxVarField, M.ObjectMaxFieldPointsTo[HeapRaw]);
      }
    }
    M.MethodTotalVolume[MethodIndex] = Volume;
    M.MethodMaxVarPointsTo[MethodIndex] = MaxVar;
    M.MethodMaxVarFieldPointsTo[MethodIndex] = MaxVarField;
  }

  return M;
}
