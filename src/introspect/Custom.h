//===- introspect/Custom.h - Composable heuristics --------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3 stresses that the cost metrics "can [be] mix-and-match[ed] to
/// create introspective analysis heuristics".  This header makes that
/// concrete: a small declarative description of a heuristic — threshold
/// rules over single metrics or metric products, OR-combined — from which
/// refinement exceptions are computed.  The paper's Heuristics A and B are
/// two instances (provided as constructors and tested for equivalence with
/// the hand-written versions in introspect/Heuristics.h).
///
/// Example — "exclude objects that many variables point to, and call sites
/// whose target hoards points-to facts or whose arguments are fat":
/// \code
///   CustomHeuristic H;
///   H.Name = "mine";
///   H.ObjectRules.push_back({Metric::PointedByVars, Metric::None, 150});
///   H.SiteRules.push_back({SiteProperty::TargetMethod,
///                          Metric::MethodTotalVolume, 5000});
///   H.SiteRules.push_back({SiteProperty::CallSite, Metric::InFlow, 80});
///   RefinementExceptions E = applyCustomHeuristic(Prog, Insens, M, H);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef INTROSPECT_CUSTOM_H
#define INTROSPECT_CUSTOM_H

#include "introspect/Heuristics.h"

#include <string>
#include <vector>

namespace intro {

/// The six Section 3 metrics (plus variants), addressable by name.
enum class Metric : uint8_t {
  None, ///< Placeholder for "no second factor" in product rules.
  // Per call site:
  InFlow, ///< #1
  // Per method:
  MethodTotalVolume,         ///< #2
  MethodMaxVarPointsTo,      ///< #2 (max variant)
  MethodMaxVarFieldPointsTo, ///< #4
  // Per object:
  ObjectMaxFieldPointsTo,   ///< #3 (max variant)
  ObjectTotalFieldPointsTo, ///< #3
  PointedByVars,            ///< #5
  PointedByObjs,            ///< #6
};

/// \returns true if \p M is defined on call sites.
bool isSiteMetric(Metric M);
/// \returns true if \p M is defined on methods.
bool isMethodMetric(Metric M);
/// \returns true if \p M is defined on objects (allocation sites).
bool isObjectMetric(Metric M);

/// What a site rule's metric is evaluated on.
enum class SiteProperty : uint8_t {
  CallSite,     ///< A per-site metric (InFlow).
  TargetMethod, ///< A per-method metric of the resolved target.
};

/// Excludes a (site, target) pair when `metric > Threshold`.
struct SiteRule {
  SiteProperty On = SiteProperty::CallSite;
  Metric MetricKind = Metric::InFlow;
  uint64_t Threshold = 0;
};

/// Excludes an object when `first * second > Threshold` (second factor 1 if
/// \p Second is Metric::None).
struct ObjectRule {
  Metric First = Metric::PointedByVars;
  Metric Second = Metric::None;
  uint64_t Threshold = 0;
};

/// A heuristic: rules are OR-combined (any rule firing excludes the
/// element from refinement).
struct CustomHeuristic {
  std::string Name;
  std::vector<SiteRule> SiteRules;
  std::vector<ObjectRule> ObjectRules;
};

/// The paper's Heuristic A as a CustomHeuristic.
CustomHeuristic heuristicASpec(const HeuristicAParams &Params = {});
/// The paper's Heuristic B as a CustomHeuristic.
CustomHeuristic heuristicBSpec(const HeuristicBParams &Params = {});

/// Evaluates \p Heuristic over the first-pass \p Insens result.
/// Site rules with method metrics apply to every target the first pass
/// resolved for the site.  Rules whose metric kind does not match their
/// domain are rejected with an assert.
RefinementExceptions applyCustomHeuristic(const Program &Prog,
                                          const PointsToResult &Insens,
                                          const IntrospectionMetrics &Metrics,
                                          const CustomHeuristic &Heuristic);

} // namespace intro

#endif // INTROSPECT_CUSTOM_H
