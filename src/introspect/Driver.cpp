//===- introspect/Driver.cpp - Two-pass introspective analysis ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Driver.h"

#include "ir/Program.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace intro;

IntrospectiveOutcome
intro::runIntrospective(const Program &Prog,
                        const ContextPolicy &RefinedPolicy,
                        const IntrospectiveOptions &Options) {
  IntrospectiveOutcome Out;
  auto Insensitive = makeInsensitivePolicy();

  // Pass 1: context-insensitive, with SITETOREFINE/OBJECTTOREFINE empty.
  {
    TRACE_SPAN("introspect.first_pass");
    Timer Clock;
    ContextTable Table;
    SolverOptions SolverOpts;
    SolverOpts.Budget = Options.FirstPassBudget;
    SolverOpts.Cancel = Options.Cancel;
    SolverOpts.Faults = Options.FirstPassFaults;
    Out.FirstPass = solvePointsTo(Prog, *Insensitive, Table, SolverOpts);
    Out.FirstPassSeconds = Clock.seconds();
  }

  // Introspection: query the first pass for the elements to not refine.
  {
    TRACE_SPAN("introspect.metrics");
    Timer Clock;
    Out.Metrics = computeIntrospectionMetrics(Prog, Out.FirstPass);
    Out.Exceptions =
        Options.Heuristic == HeuristicKind::A
            ? applyHeuristicA(Prog, Out.FirstPass, Out.Metrics,
                              Options.ParamsA)
            : applyHeuristicB(Prog, Out.FirstPass, Out.Metrics,
                              Options.ParamsB);
    Out.Stats = computeRefinementStats(Prog, Out.FirstPass, Out.Exceptions);
    Out.MetricSeconds = Clock.seconds();
  }

  // Pass 2: identical analysis code, refinement exceptions installed.
  {
    TRACE_SPAN("introspect.main_pass");
    std::string Name = RefinedPolicy.name();
    Name += Options.Heuristic == HeuristicKind::A ? "-IntroA" : "-IntroB";
    auto Policy = makeIntrospectivePolicy(std::move(Name), *Insensitive,
                                          RefinedPolicy, Out.Exceptions);
    Timer Clock;
    ContextTable Table;
    SolverOptions SolverOpts;
    SolverOpts.Budget = Options.SecondPassBudget;
    SolverOpts.Cancel = Options.Cancel;
    SolverOpts.Faults = Options.SecondPassFaults;
    Out.SecondPass = solvePointsTo(Prog, *Policy, Table, SolverOpts);
    Out.SecondPassSeconds = Clock.seconds();
  }
  return Out;
}
