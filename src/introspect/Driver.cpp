//===- introspect/Driver.cpp - Two-pass introspective analysis ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Driver.h"

#include "cache/ResultCache.h"
#include "ir/Program.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace intro;

IntrospectiveOutcome
intro::runIntrospective(const Program &Prog,
                        const ContextPolicy &RefinedPolicy,
                        const IntrospectiveOptions &Options) {
  IntrospectiveOutcome Out;
  auto Insensitive = makeInsensitivePolicy();

  // The cache is bypassed while faults are armed: a warm entry would mask
  // the injected first-pass failure the test is trying to provoke.
  bool UseCache = Options.Cache && Options.CacheKey &&
                  !Options.FirstPassFaults.armed();
  bool CacheHit = false;
  if (UseCache) {
    Timer Clock;
    cache::CachedPassA Entry;
    if (Options.Cache->lookup(*Options.CacheKey, Entry)) {
      Out.FirstPass = std::move(Entry.Insens);
      Out.Metrics = std::move(Entry.Metrics);
      Out.FirstPassSeconds = Clock.seconds();
      CacheHit = true;
    }
  }

  // Pass 1: context-insensitive, with SITETOREFINE/OBJECTTOREFINE empty.
  if (!CacheHit) {
    TRACE_SPAN("introspect.first_pass");
    Timer Clock;
    ContextTable Table;
    SolverOptions SolverOpts;
    SolverOpts.Budget = Options.FirstPassBudget;
    SolverOpts.Cancel = Options.Cancel;
    SolverOpts.Faults = Options.FirstPassFaults;
    Out.FirstPass = solvePointsTo(Prog, *Insensitive, Table, SolverOpts);
    Out.FirstPassSeconds = Clock.seconds();
  }

  // Introspection: query the first pass for the elements to not refine.
  {
    TRACE_SPAN("introspect.metrics");
    Timer Clock;
    if (!CacheHit)
      Out.Metrics = computeIntrospectionMetrics(Prog, Out.FirstPass);
    Out.Exceptions =
        Options.Heuristic == HeuristicKind::A
            ? applyHeuristicA(Prog, Out.FirstPass, Out.Metrics,
                              Options.ParamsA)
            : applyHeuristicB(Prog, Out.FirstPass, Out.Metrics,
                              Options.ParamsB);
    Out.Stats = computeRefinementStats(Prog, Out.FirstPass, Out.Exceptions);
    Out.MetricSeconds = Clock.seconds();
  }

  // Only a completed pre-analysis is worth replaying; budget-exhausted or
  // cancelled runs stay uncached so a retry with more headroom re-solves.
  if (UseCache && !CacheHit && isCompleted(Out.FirstPass.Status)) {
    cache::CachedPassA Entry;
    Entry.Insens = Out.FirstPass;
    Entry.Metrics = Out.Metrics;
    Options.Cache->store(*Options.CacheKey, Entry);
  }

  // Pass 2: identical analysis code, refinement exceptions installed.
  {
    TRACE_SPAN("introspect.main_pass");
    std::string Name = RefinedPolicy.name();
    Name += Options.Heuristic == HeuristicKind::A ? "-IntroA" : "-IntroB";
    auto Policy = makeIntrospectivePolicy(std::move(Name), *Insensitive,
                                          RefinedPolicy, Out.Exceptions);
    Timer Clock;
    ContextTable Table;
    SolverOptions SolverOpts;
    SolverOpts.Budget = Options.SecondPassBudget;
    SolverOpts.Cancel = Options.Cancel;
    SolverOpts.Faults = Options.SecondPassFaults;
    Out.SecondPass = solvePointsTo(Prog, *Policy, Table, SolverOpts);
    Out.SecondPassSeconds = Clock.seconds();
  }
  return Out;
}
