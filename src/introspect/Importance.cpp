//===- introspect/Importance.cpp - Element-importance estimation ----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Importance.h"

#include "analysis/Result.h"
#include "ir/Program.h"

#include <vector>

using namespace intro;

ImportanceMetrics intro::computeImportance(const Program &Prog,
                                           const PointsToResult &Insens) {
  ImportanceMetrics Importance;
  Importance.ObjectImportance.assign(Prog.numHeaps(), 0);
  Importance.MethodImportance.assign(Prog.numMethods(), 0);

  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    MethodId Method(MethodIndex);
    if (!Insens.isReachable(Method))
      continue;
    uint64_t LocalClientOps = 0;
    for (const Instruction &Instr : Prog.method(Method).Body) {
      if (Instr.Kind == InstrKind::Cast) {
        ++LocalClientOps;
        // Every object the cast source may hold matters for the
        // casts-may-fail client.
        for (uint32_t HeapRaw : Insens.pointsTo(Instr.From))
          ++Importance.ObjectImportance[HeapRaw];
      }
      if (Instr.Kind == InstrKind::Call) {
        const SiteInfo &Site = Prog.site(Instr.Site);
        if (Site.IsStatic)
          continue;
        // Only *polymorphic* dispatches are precision opportunities: a
        // monomorphic call cannot be devirtualized any further, so its
        // receiver objects earn no importance from it.
        if (Insens.callTargets(Instr.Site).size() < 2)
          continue;
        ++LocalClientOps;
        for (uint32_t HeapRaw : Insens.pointsTo(Site.Base))
          ++Importance.ObjectImportance[HeapRaw];
      }
    }
    Importance.MethodImportance[MethodIndex] = LocalClientOps;
  }

  // A method is also important when it *handles* objects that client
  // operations elsewhere depend on: credit each method with the (scaled)
  // importance of the objects flowing through its return variable and its
  // formals.  This is what makes a shared accessor of precision-critical
  // data (the "popular container" get/set) important even though it
  // contains no client operation itself.
  for (uint32_t MethodIndex = 0; MethodIndex < Prog.numMethods();
       ++MethodIndex) {
    const MethodInfo &Info = Prog.method(MethodId(MethodIndex));
    if (!Insens.isReachable(MethodId(MethodIndex)))
      continue;
    uint64_t Flow = 0;
    if (Info.Return.isValid())
      for (uint32_t HeapRaw : Insens.pointsTo(Info.Return))
        Flow = std::max(Flow, Importance.ObjectImportance[HeapRaw]);
    for (VarId Formal : Info.Formals)
      for (uint32_t HeapRaw : Insens.pointsTo(Formal))
        Flow = std::max(Flow, Importance.ObjectImportance[HeapRaw]);
    // Scale down: indirect importance counts less than a local client op.
    Importance.MethodImportance[MethodIndex] += Flow / 4;
  }

  return Importance;
}

uint64_t intro::applyImportanceGuard(const Program &Prog,
                                     const ImportanceMetrics &Importance,
                                     RefinementExceptions &Exceptions,
                                     const ImportanceGuardParams &Params) {
  (void)Prog;
  uint64_t Lifted = 0;

  for (auto It = Exceptions.NoRefineHeaps.begin();
       It != Exceptions.NoRefineHeaps.end();) {
    if (Importance.ObjectImportance[*It] > Params.ObjectThreshold) {
      It = Exceptions.NoRefineHeaps.erase(It);
      ++Lifted;
    } else {
      ++It;
    }
  }
  for (auto It = Exceptions.NoRefineSites.begin();
       It != Exceptions.NoRefineSites.end();) {
    uint32_t TargetRaw = static_cast<uint32_t>(*It);
    if (Importance.MethodImportance[TargetRaw] > Params.MethodThreshold) {
      It = Exceptions.NoRefineSites.erase(It);
      ++Lifted;
    } else {
      ++It;
    }
  }
  return Lifted;
}
