//===- introspect/Driver.h - Two-pass introspective analysis ----*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end introspective analysis of the paper: run the program
/// context-insensitively, query the result with a heuristic to find the
/// elements whose refinement would explode, then re-run the *identical*
/// analysis with the refinement exceptions installed in the context policy.
///
/// This is the library's flagship entry point:
/// \code
///   IntrospectiveOptions Options;
///   Options.Heuristic = HeuristicKind::A;
///   auto Refined = makeObjectPolicy(Prog, 2, 1);
///   IntrospectiveOutcome Out = runIntrospective(Prog, *Refined, Options);
///   // Out.SecondPass is a scalable 2objH-IntroA result.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef INTROSPECT_DRIVER_H
#define INTROSPECT_DRIVER_H

#include "analysis/Solver.h"
#include "introspect/Heuristics.h"

namespace intro {

namespace cache {
class ResultCache;
struct Fingerprint;
} // namespace cache

/// Options for an introspective run.
struct IntrospectiveOptions {
  HeuristicKind Heuristic = HeuristicKind::A;
  HeuristicAParams ParamsA;
  HeuristicBParams ParamsB;
  /// Budget for the cheap context-insensitive first pass.
  SolveBudget FirstPassBudget;
  /// Budget for the refined second pass (the paper's 90-min timeout).
  SolveBudget SecondPassBudget;
  /// Optional cooperative cancellation, polled by both passes.  The token
  /// must outlive the run.
  const CancellationToken *Cancel = nullptr;
  /// Deterministic fault injection per pass (tests only; inert by default).
  FaultPlan FirstPassFaults;
  FaultPlan SecondPassFaults;
  /// Optional content-addressed Pass-A store (runtime-only, like Cancel:
  /// never serialized with options).  When both Cache and CacheKey are
  /// set, the first pass probes the cache — a hit restores the stored
  /// result and metrics without solving; a completed miss is stored for
  /// the next run.  CacheKey must be fingerprintProgram(Prog) of the
  /// program being analyzed, and both pointers must outlive the run.
  /// Ignored while FirstPassFaults is armed, so fault injection is never
  /// masked by a warm cache.
  cache::ResultCache *Cache = nullptr;
  const cache::Fingerprint *CacheKey = nullptr;
};

/// Everything an introspective run produces.
struct IntrospectiveOutcome {
  PointsToResult FirstPass;  ///< The context-insensitive pre-analysis.
  PointsToResult SecondPass; ///< The introspectively refined analysis.
  IntrospectionMetrics Metrics;
  RefinementExceptions Exceptions;
  RefinementStats Stats;      ///< Figure 4-style exclusion shares.
  double FirstPassSeconds = 0;
  double MetricSeconds = 0;   ///< Cost of computing metrics + heuristics.
  double SecondPassSeconds = 0;
};

/// Runs the full two-pass introspective analysis of \p Prog, refining with
/// \p RefinedPolicy (e.g. 2objH) everywhere except at the heuristic-selected
/// exceptions, which stay context-insensitive.
///
/// The second pass's analysis name is "<refined>-IntroA" or "-IntroB".
IntrospectiveOutcome
runIntrospective(const Program &Prog, const ContextPolicy &RefinedPolicy,
                 const IntrospectiveOptions &Options = IntrospectiveOptions());

} // namespace intro

#endif // INTROSPECT_DRIVER_H
