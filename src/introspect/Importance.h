//===- introspect/Importance.h - Element-importance estimation --*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 3 closes with: "It would be an interesting direction
/// for future work to estimate this importance, i.e., to define metrics
/// that capture the extent of the impact of a program element's precision
/// on all other program elements."  This header implements that direction.
///
/// An element is *important* when client-visible precision depends on it:
///   - an object is important to every reachable cast whose source may hold
///     it and every virtual call site that may dispatch on it;
///   - a method is important when its locals feed casts or dispatches
///     (its precision flows straight into client metrics).
///
/// The guarded heuristics combine a cost heuristic (A or B) with an
/// importance threshold: expensive-but-important elements stay refined.
/// bench/ablation_importance measures the resulting tradeoff: on workloads
/// with "popular containers" (cheap to refine but precision-critical,
/// which plain Heuristic A sacrifices), the guard recovers most of the
/// lost precision at a modest scalability price.
///
//===----------------------------------------------------------------------===//

#ifndef INTROSPECT_IMPORTANCE_H
#define INTROSPECT_IMPORTANCE_H

#include "analysis/ContextPolicy.h"
#include "introspect/Heuristics.h"

#include <cstdint>
#include <vector>

namespace intro {

class PointsToResult;
class Program;

/// Importance scores, computed over the context-insensitive first pass.
struct ImportanceMetrics {
  /// Per object (raw HeapId): number of reachable cast instructions whose
  /// source may point to it, plus virtual call sites that may dispatch on
  /// it.  High = refining this object's flow pays off for clients.
  std::vector<uint64_t> ObjectImportance;

  /// Per method (raw MethodId): number of cast instructions and virtual
  /// dispatches among the method's own instructions, weighted by being
  /// reachable.  High = imprecision inside this method is client-visible.
  std::vector<uint64_t> MethodImportance;
};

/// Computes importance from the first-pass result.
ImportanceMetrics computeImportance(const Program &Prog,
                                    const PointsToResult &Insens);

/// Thresholds for the importance guard.
struct ImportanceGuardParams {
  /// Objects with importance > this are always refined.
  uint64_t ObjectThreshold = 50;
  /// (site, target) pairs whose target method importance > this are always
  /// refined.
  uint64_t MethodThreshold = 20;
};

/// Removes from \p Exceptions every exclusion whose element is important:
/// the result refines everything \p Exceptions refined, plus the important
/// elements.  \returns the number of exclusions lifted.
uint64_t applyImportanceGuard(const Program &Prog,
                              const ImportanceMetrics &Importance,
                              RefinementExceptions &Exceptions,
                              const ImportanceGuardParams &Params = {});

} // namespace intro

#endif // INTROSPECT_IMPORTANCE_H
