//===- introspect/Heuristics.cpp - Heuristics A and B ---------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Heuristics.h"

#include "analysis/Result.h"
#include "ir/Program.h"

#include <set>

using namespace intro;

namespace {

/// Excludes (site, target) pairs for which \p ShouldExclude holds; covers
/// every target the first pass resolved for the site.
template <typename Predicate>
void excludeSites(const Program &Prog, const PointsToResult &Insens,
                  RefinementExceptions &Exceptions, Predicate ShouldExclude) {
  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    SiteId Site(SiteIndex);
    for (uint32_t TargetRaw : Insens.callTargets(Site))
      if (ShouldExclude(Site, MethodId(TargetRaw)))
        Exceptions.NoRefineSites.insert(
            RefinementExceptions::packSite(Site, MethodId(TargetRaw)));
  }
}

} // namespace

RefinementExceptions
intro::applyHeuristicA(const Program &Prog, const PointsToResult &Insens,
                       const IntrospectionMetrics &Metrics,
                       const HeuristicAParams &Params) {
  RefinementExceptions Exceptions;

  // Objects: exclude allocation sites with pointed-by-vars (#5) > K.
  for (uint32_t HeapIndex = 0; HeapIndex < Prog.numHeaps(); ++HeapIndex)
    if (Metrics.PointedByVars[HeapIndex] > Params.K)
      Exceptions.NoRefineHeaps.insert(HeapIndex);

  // Call sites: exclude those with in-flow (#1) > L, or whose target method
  // has max var-field points-to (#4) > M.
  excludeSites(Prog, Insens, Exceptions,
               [&](SiteId Site, MethodId Target) {
                 return Metrics.InFlow[Site.index()] > Params.L ||
                        Metrics.MethodMaxVarFieldPointsTo[Target.index()] >
                            Params.M;
               });
  return Exceptions;
}

RefinementExceptions
intro::applyHeuristicB(const Program &Prog, const PointsToResult &Insens,
                       const IntrospectionMetrics &Metrics,
                       const HeuristicBParams &Params) {
  RefinementExceptions Exceptions;

  // Objects: exclude allocations whose (total field points-to (#3 variant)
  // x pointed-by-vars (#5)) product — the object's "total potential for
  // weighing down the analysis" — exceeds Q.
  for (uint32_t HeapIndex = 0; HeapIndex < Prog.numHeaps(); ++HeapIndex)
    if (Metrics.ObjectTotalFieldPointsTo[HeapIndex] *
            Metrics.PointedByVars[HeapIndex] >
        Params.Q)
      Exceptions.NoRefineHeaps.insert(HeapIndex);

  // Call sites: exclude those invoking methods with total points-to volume
  // (#2) above P.
  excludeSites(Prog, Insens, Exceptions, [&](SiteId, MethodId Target) {
    return Metrics.MethodTotalVolume[Target.index()] > Params.P;
  });
  return Exceptions;
}

RefinementStats
intro::computeRefinementStats(const Program &Prog,
                              const PointsToResult &Insens,
                              const RefinementExceptions &Exceptions) {
  RefinementStats Stats;

  std::set<uint32_t> ExcludedSites;
  for (uint64_t Packed : Exceptions.NoRefineSites)
    ExcludedSites.insert(static_cast<uint32_t>(Packed >> 32));

  for (uint32_t SiteIndex = 0; SiteIndex < Prog.numSites(); ++SiteIndex) {
    if (!Insens.isReachable(Prog.site(SiteId(SiteIndex)).InMethod))
      continue;
    ++Stats.TotalCallSites;
    if (ExcludedSites.count(SiteIndex))
      ++Stats.ExcludedCallSites;
  }
  for (uint32_t HeapIndex = 0; HeapIndex < Prog.numHeaps(); ++HeapIndex) {
    if (!Insens.isReachable(Prog.heap(HeapId(HeapIndex)).InMethod))
      continue;
    ++Stats.TotalObjects;
    if (Exceptions.NoRefineHeaps.count(HeapIndex))
      ++Stats.ExcludedObjects;
  }
  return Stats;
}
