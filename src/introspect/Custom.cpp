//===- introspect/Custom.cpp - Composable heuristics ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Custom.h"

#include "analysis/Result.h"
#include "ir/Program.h"

#include <cassert>

using namespace intro;

bool intro::isSiteMetric(Metric M) { return M == Metric::InFlow; }

bool intro::isMethodMetric(Metric M) {
  return M == Metric::MethodTotalVolume ||
         M == Metric::MethodMaxVarPointsTo ||
         M == Metric::MethodMaxVarFieldPointsTo;
}

bool intro::isObjectMetric(Metric M) {
  return M == Metric::ObjectMaxFieldPointsTo ||
         M == Metric::ObjectTotalFieldPointsTo ||
         M == Metric::PointedByVars || M == Metric::PointedByObjs;
}

namespace {

/// Reads a per-method metric value.
uint64_t methodMetric(const IntrospectionMetrics &M, Metric Kind,
                      uint32_t MethodRaw) {
  switch (Kind) {
  case Metric::MethodTotalVolume:
    return M.MethodTotalVolume[MethodRaw];
  case Metric::MethodMaxVarPointsTo:
    return M.MethodMaxVarPointsTo[MethodRaw];
  case Metric::MethodMaxVarFieldPointsTo:
    return M.MethodMaxVarFieldPointsTo[MethodRaw];
  default:
    assert(false && "not a method metric");
    return 0;
  }
}

/// Reads a per-object metric value; Metric::None reads as the neutral 1.
uint64_t objectMetric(const IntrospectionMetrics &M, Metric Kind,
                      uint32_t HeapRaw) {
  switch (Kind) {
  case Metric::None:
    return 1;
  case Metric::ObjectMaxFieldPointsTo:
    return M.ObjectMaxFieldPointsTo[HeapRaw];
  case Metric::ObjectTotalFieldPointsTo:
    return M.ObjectTotalFieldPointsTo[HeapRaw];
  case Metric::PointedByVars:
    return M.PointedByVars[HeapRaw];
  case Metric::PointedByObjs:
    return M.PointedByObjs[HeapRaw];
  default:
    assert(false && "not an object metric");
    return 0;
  }
}

} // namespace

CustomHeuristic intro::heuristicASpec(const HeuristicAParams &Params) {
  CustomHeuristic H;
  H.Name = "A";
  H.ObjectRules.push_back(
      ObjectRule{Metric::PointedByVars, Metric::None, Params.K});
  H.SiteRules.push_back(
      SiteRule{SiteProperty::CallSite, Metric::InFlow, Params.L});
  H.SiteRules.push_back(SiteRule{SiteProperty::TargetMethod,
                                 Metric::MethodMaxVarFieldPointsTo,
                                 Params.M});
  return H;
}

CustomHeuristic intro::heuristicBSpec(const HeuristicBParams &Params) {
  CustomHeuristic H;
  H.Name = "B";
  H.SiteRules.push_back(SiteRule{SiteProperty::TargetMethod,
                                 Metric::MethodTotalVolume, Params.P});
  H.ObjectRules.push_back(ObjectRule{Metric::ObjectTotalFieldPointsTo,
                                     Metric::PointedByVars, Params.Q});
  return H;
}

RefinementExceptions
intro::applyCustomHeuristic(const Program &Prog, const PointsToResult &Insens,
                            const IntrospectionMetrics &Metrics,
                            const CustomHeuristic &Heuristic) {
#ifndef NDEBUG
  for (const SiteRule &Rule : Heuristic.SiteRules)
    assert((Rule.On == SiteProperty::CallSite
                ? isSiteMetric(Rule.MetricKind)
                : isMethodMetric(Rule.MetricKind)) &&
           "site rule metric does not match its domain");
  for (const ObjectRule &Rule : Heuristic.ObjectRules) {
    assert(isObjectMetric(Rule.First) && "object rule needs object metric");
    assert((Rule.Second == Metric::None || isObjectMetric(Rule.Second)) &&
           "product factor must be an object metric");
  }
#endif

  RefinementExceptions Exceptions;

  for (uint32_t HeapRaw = 0; HeapRaw < Prog.numHeaps(); ++HeapRaw)
    for (const ObjectRule &Rule : Heuristic.ObjectRules) {
      uint64_t Product = objectMetric(Metrics, Rule.First, HeapRaw) *
                         objectMetric(Metrics, Rule.Second, HeapRaw);
      if (Product > Rule.Threshold) {
        Exceptions.NoRefineHeaps.insert(HeapRaw);
        break;
      }
    }

  for (uint32_t SiteRaw = 0; SiteRaw < Prog.numSites(); ++SiteRaw) {
    SiteId Site(SiteRaw);
    for (uint32_t TargetRaw : Insens.callTargets(Site))
      for (const SiteRule &Rule : Heuristic.SiteRules) {
        uint64_t Value = Rule.On == SiteProperty::CallSite
                             ? Metrics.InFlow[SiteRaw]
                             : methodMetric(Metrics, Rule.MetricKind,
                                            TargetRaw);
        if (Value > Rule.Threshold) {
          Exceptions.NoRefineSites.insert(
              RefinementExceptions::packSite(Site, MethodId(TargetRaw)));
          break;
        }
      }
  }
  return Exceptions;
}
