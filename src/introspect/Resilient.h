//===- introspect/Resilient.h - Degradation-ladder driver -------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A resilience layer around the solver and the introspective driver.  The
/// paper's central observation is that deep context-sensitive analyses are
/// *bimodal*: they either scale or explode.  A service cannot simply report
/// "TupleBudgetExceeded" and return a useless result; it must degrade to the
/// strongest analysis that completes.  runResilient() walks a ladder of
/// progressively cheaper configurations:
///
///   1. the refined deep analysis as given (e.g. plain 2objH),
///   2. introspective Heuristic B (sacrifices the least precision),
///   3. introspective Heuristic A (more aggressive),
///   4. Heuristic A with exponentially tightened thresholds (a backoff
///      multiplier shrinks K/L/M each round, excluding ever more elements
///      from refinement),
///   5. the context-insensitive result (always cheap; doubles as the
///      pre-analysis the introspective rungs already need).
///
/// Every attempt — including failed ones — is recorded in an AttemptTrace;
/// the outcome carries the deepest completed result tagged with its
/// DegradationLevel.  Cancellation stops the ladder immediately instead of
/// degrading further: a caller that asked to stop does not want a cheaper
/// answer, it wants to stop.
///
/// Deterministic fault injection (FaultPlan, per rung) lets tests exercise
/// every rung without constructing programs that genuinely blow up.
///
/// **Portfolio mode** (ResilientOptions::Portfolio) races the rungs
/// concurrently on a thread pool instead of paying for each failed rung in
/// wall-clock: the deep attempt and the insensitive pre-analysis launch
/// together; once the pre-analysis lands, every introspective rung launches
/// too.  The winner is decided in ladder order — exactly the rung the
/// sequential walk would have returned — and the losing rungs are cancelled
/// through per-rung tokens linked to the caller's.  Completed solver runs
/// are single-threaded and deterministic, so the winning PointsToResult,
/// the metrics, and the exceptions are bit-identical to the sequential
/// path; only wall-clock (and the Stats of *cancelled* losers in the
/// trace) differ.  The trace records every launched attempt in the fixed
/// ladder-walk order regardless of completion order.
///
//===----------------------------------------------------------------------===//

#ifndef INTROSPECT_RESILIENT_H
#define INTROSPECT_RESILIENT_H

#include "introspect/Driver.h"

#include <array>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace intro {

class JsonValue;
class JsonWriter;

/// The rungs of the degradation ladder, in descending analysis strength.
/// Also indexes ResilientOptions::LevelFaults.
enum class DegradationLevel : uint8_t {
  Deep = 0,        ///< The refined policy as given, no introspection.
  IntroB,          ///< Introspective Heuristic B.
  IntroA,          ///< Introspective Heuristic A.
  TightenedIntroA, ///< Heuristic A with backoff-tightened thresholds.
  Insensitive,     ///< The context-insensitive pre-analysis itself.
};

/// Number of DegradationLevel values.
inline constexpr size_t NumDegradationLevels = 5;

/// \returns a stable human-readable name for \p Level.
const char *degradationLevelName(DegradationLevel Level);

/// Inverse of degradationLevelName: \returns true and stores into \p Level
/// when \p Name matches a level name exactly.  Used when decoding reports.
bool degradationLevelFromName(std::string_view Name, DegradationLevel &Level);

/// One solver attempt of a resilient run, completed or not.
struct Attempt {
  DegradationLevel Level;   ///< The rung this attempt belongs to.
  std::string AnalysisName; ///< Solver-reported analysis name.
  SolveStatus Status;       ///< How the attempt ended.
  SolverStats Stats;        ///< Full solver counters of the attempt.
  double Seconds = 0;       ///< Wall-clock cost of the attempt.
  /// For TightenedIntroA: the 1-based tightening round; 0 otherwise.
  uint32_t TightenedRound = 0;
};

/// The chronological record of every attempt of a resilient run.  Note the
/// insensitive pre-analysis runs *second* (right after the deep attempt),
/// because the introspective rungs need its result; it is recorded at that
/// position with Level == Insensitive.
using AttemptTrace = std::vector<Attempt>;

/// Renders \p Trace as an aligned ASCII table (one row per attempt), or a
/// stable "(no attempts)" placeholder when \p Trace is empty.
std::string formatAttemptTrace(const AttemptTrace &Trace);

/// Options of a resilient run.
struct ResilientOptions {
  /// Budget of the deep (rung 1) attempt.
  SolveBudget DeepBudget;
  /// Budget of each introspective second pass (rungs 2-4).
  SolveBudget RefinedBudget;
  /// Budget of the context-insensitive pre-analysis / final rung.
  SolveBudget FirstPassBudget;

  /// Rungs can be skipped, e.g. a service that knows the deep analysis
  /// never scales on its workload starts directly at an introspective rung.
  bool AttemptDeep = true;
  bool AttemptIntroB = true;
  bool AttemptIntroA = true;
  /// How many tightened-Heuristic-A rounds to try before giving up and
  /// falling back to the insensitive result.
  uint32_t TightenedRounds = 2;
  /// Each tightening round divides Heuristic A's K/L/M thresholds by this
  /// factor (exponential backoff), excluding ever more elements from
  /// refinement.  Must be > 1; values that cannot tighten (non-finite,
  /// <= 1) are treated as 1, i.e. the rounds repeat the base thresholds.
  double BackoffMultiplier = 4.0;

  /// Heuristic thresholds of the first IntroA/IntroB rungs.
  HeuristicAParams ParamsA;
  HeuristicBParams ParamsB;

  /// Optional cooperative cancellation, polled inside every attempt and
  /// between rungs.  When it fires the ladder stops immediately — a caller
  /// that asked to stop does not want a cheaper answer — and the outcome
  /// falls back to the insensitive pre-analysis if that already completed.
  /// The token must outlive the run.
  const CancellationToken *Cancel = nullptr;
  /// In-solver cancellation poll interval (SolverOptions::CancelInterval).
  uint32_t CancelInterval = 64;

  /// Fired just before each rung's solver attempt starts (the rung level
  /// and, for TightenedIntroA, the 1-based tightening round).  The
  /// supervision layer uses this from a forked child to stream per-rung
  /// progress over its report pipe, so a parent that sees the child die a
  /// hard death (segfault, OOM kill, watchdog) knows the deepest rung that
  /// *started* and can resume the ladder strictly below it.  Sequential
  /// ladder only: portfolio mode launches rungs concurrently and does not
  /// invoke the callback (supervised children always run sequentially).
  std::function<void(DegradationLevel Level, uint32_t TightenedRound)>
      OnRungStart;

  /// Race the rungs concurrently instead of walking them one by one.  The
  /// returned result, level, metrics, and exceptions are bit-identical to
  /// the sequential walk (see the file comment); the win is wall-clock:
  /// failed rungs no longer serialize in front of the rung that completes.
  bool Portfolio = false;
  /// Worker threads for portfolio mode (and its parallel metric
  /// computation).  0 means one per hardware thread.
  unsigned Workers = 0;

  /// Optional content-addressed Pass-A store (runtime-only, like Cancel
  /// and OnRungStart: never serialized by writeResilientOptionsJson; a
  /// supervisor re-creates it in the child from its own --cache-dir).
  /// When both Cache and CacheKey are set, the insensitive pre-analysis
  /// probes the cache: a hit restores the stored result and metrics —
  /// every introspective rung then shares the cached Pass A, and an
  /// escalateBelow relaunch reloads instead of re-solving — while a
  /// completed miss is stored for the next run.  The trace row of a
  /// cache-served pre-analysis carries the *stored* solver stats, so the
  /// deterministic report columns are identical to a cold run's.  The
  /// cache is bypassed while the Insensitive fault plan is armed, so
  /// fault injection is never masked by a warm entry.
  cache::ResultCache *Cache = nullptr;
  const cache::Fingerprint *CacheKey = nullptr;

  /// Deterministic fault injection, indexed by DegradationLevel (tests
  /// only; inert by default).  The Insensitive entry applies to the
  /// pre-analysis run.  The TightenedIntroA entry applies to every
  /// tightening round.
  std::array<FaultPlan, NumDegradationLevels> LevelFaults{};

  /// \returns the fault plan of \p Level.
  const FaultPlan &faultsFor(DegradationLevel Level) const {
    return LevelFaults[static_cast<size_t>(Level)];
  }
  FaultPlan &faultsFor(DegradationLevel Level) {
    return LevelFaults[static_cast<size_t>(Level)];
  }
};

/// Everything a resilient run produces.
struct ResilientOutcome {
  /// The deepest completed result — or, if nothing completed (every rung
  /// failed or the run was cancelled), the last partial result, whose
  /// Status says why.
  PointsToResult Result;
  /// The rung Result came from.
  DegradationLevel Level = DegradationLevel::Insensitive;
  /// Chronological record of every attempt, completed or not.
  AttemptTrace Trace;
  /// True if the ladder was stopped by the cancellation token.
  bool Cancelled = false;
  /// Metrics of the insensitive pre-analysis; empty vectors if the deep
  /// rung succeeded outright (the happy path computes no metrics).
  IntrospectionMetrics Metrics;
  /// Refinement exceptions of the winning introspective rung; empty for
  /// Deep / Insensitive outcomes.
  RefinementExceptions Exceptions;
  /// Cost of computing the introspection metrics (0 on the happy path).
  double MetricSeconds = 0;
  /// Total wall-clock of the whole ladder (attempts + metrics).
  double TotalSeconds = 0;
  /// Human-readable normalization notes: every degenerate option the run
  /// clamped or resolved (Workers == 0, CancelInterval == 0, a
  /// BackoffMultiplier that cannot tighten, ...).  Surfaced in the
  /// machine-readable run report so a misconfigured service is visible in
  /// its own telemetry.
  std::vector<std::string> Notes;

  /// \returns true if Result is a completed (fixpoint) analysis.
  bool completed() const { return isCompleted(Result.Status); }
};

/// Returns a copy of \p Options with every degenerate knob clamped to its
/// documented minimum, appending one note per adjustment to \p Notes:
/// CancelInterval == 0 -> 1 (it is a modulus in the solver's stop check),
/// Workers == 0 -> the resolved auto worker count, BackoffMultiplier that
/// cannot tighten (non-finite or < 1) -> 1.  runResilient() applies this
/// itself; it is exposed for tests and for callers that want the notes
/// without running.
ResilientOptions normalizeResilientOptions(const ResilientOptions &Options,
                                           std::vector<std::string> &Notes);

/// Writes \p Trace as a JSON array: one object per attempt with its level,
/// tightened round, analysis name, status, wall-clock seconds, and full
/// solver stats.  An empty trace yields `[]`.
void writeAttemptTraceJson(JsonWriter &J, const AttemptTrace &Trace);

/// Writes \p Outcome as one JSON object: winning level/status, cancellation
/// flag, timing, normalization notes, and the attempt trace where each
/// attempt carries a `"won"` flag (portfolio win/loss per rung; exactly one
/// attempt wins unless nothing completed).
void writeResilientOutcomeJson(JsonWriter &J, const ResilientOutcome &Outcome);

/// Writes the *configuration* part of \p Options as one JSON object —
/// budgets, rung toggles, tightening rounds and backoff, heuristic
/// parameters, cancel interval, portfolio/worker knobs, and any armed fault
/// plans.  Runtime-only members (Cancel, OnRungStart) are not represented;
/// they cannot cross a process boundary.  Together with
/// parseResilientOptionsJson this lets a supervisor ship a ladder
/// configuration to a child process and relaunch a crashed job on a tighter
/// rung of the *same* ladder.
void writeResilientOptionsJson(JsonWriter &J, const ResilientOptions &Options);

/// Inverse of writeResilientOptionsJson.  Unknown members are ignored
/// (forward compatibility); missing members keep the field's default.
/// \returns false and sets \p Error on a type mismatch or an invalid
/// enumerator name.
bool parseResilientOptionsJson(const JsonValue &Value,
                               ResilientOptions &Options, std::string &Error);

/// Inverse of writeAttemptTraceJson: decodes a JSON array of attempt
/// objects (as embedded in `intro-run-report-v1` reports) back into an
/// AttemptTrace, so the supervisor can splice a child's partial ladder
/// history into the batch report.  The portfolio-only `"won"` member is
/// accepted and ignored.  \returns false and sets \p Error on malformed
/// input; \p Trace then holds the attempts decoded before the error.
bool parseAttemptTraceJson(const JsonValue &Value, AttemptTrace &Trace,
                           std::string &Error);

/// Runs the degradation ladder on \p Prog with \p RefinedPolicy (e.g.
/// 2objH) as the deep rung, returning the deepest analysis that completes
/// within its budget.
ResilientOutcome
runResilient(const Program &Prog, const ContextPolicy &RefinedPolicy,
             const ResilientOptions &Options = ResilientOptions());

} // namespace intro

#endif // INTROSPECT_RESILIENT_H
