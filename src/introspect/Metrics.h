//===- introspect/Metrics.h - Cost metrics of Section 3 ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six cost metrics of the paper's Section 3, computed as short queries
/// over the result of the context-insensitive first pass.  Every metric
/// estimates how much a program element would cost if analyzed with deeper
/// context:
///   1. argument in-flow of a call site,
///   2. total points-to volume of a method (and the max-var variant),
///   3. max/total field points-to of an object,
///   4. max var-field points-to of a method,
///   5. pointed-by-vars of an object,
///   6. pointed-by-objects of an object.
///
//===----------------------------------------------------------------------===//

#ifndef INTROSPECT_METRICS_H
#define INTROSPECT_METRICS_H

#include <cstdint>
#include <vector>

namespace intro {

class PointsToResult;
class Program;
class ThreadPool;

/// All six metrics, indexed by the raw id of the respective entity.
struct IntrospectionMetrics {
  /// #1: per call site, the cumulative points-to size of its actual
  /// arguments (the call's argument "in-flow").  Zero for sites whose
  /// caller is unreachable.
  std::vector<uint64_t> InFlow;

  /// #2: per method, the cumulative points-to size over all its local
  /// variables (its "total points-to volume").
  std::vector<uint64_t> MethodTotalVolume;
  /// #2 (variant): per method, the maximum points-to size over its locals.
  std::vector<uint64_t> MethodMaxVarPointsTo;

  /// #3: per object, the maximum field-points-to size over its fields.
  std::vector<uint64_t> ObjectMaxFieldPointsTo;
  /// #3 (variant): per object, the total field-points-to size.
  std::vector<uint64_t> ObjectTotalFieldPointsTo;

  /// #4: per method, the maximum ObjectMaxFieldPointsTo over all objects
  /// pointed to by the method's locals.
  std::vector<uint64_t> MethodMaxVarFieldPointsTo;

  /// #5: per object, the number of local variables pointing to it.
  std::vector<uint64_t> PointedByVars;

  /// #6: per object, the number of (object, field) pairs pointing to it.
  std::vector<uint64_t> PointedByObjs;
};

/// Computes all metrics from \p Insens, the result of a (context-
/// insensitive) first analysis pass over \p Prog.
IntrospectionMetrics computeIntrospectionMetrics(const Program &Prog,
                                                 const PointsToResult &Insens);

/// Parallel variant: shards the per-site, per-field-cell, and per-method
/// sweeps across \p Pool, accumulating into per-shard buffers that are
/// merged in shard-index order.  Every merge is an integer sum or max —
/// commutative and associative — so the result is bit-identical to the
/// sequential computation regardless of worker count or scheduling.
/// Must not be called from a task running on \p Pool itself.
IntrospectionMetrics computeIntrospectionMetrics(const Program &Prog,
                                                 const PointsToResult &Insens,
                                                 ThreadPool &Pool);

} // namespace intro

#endif // INTROSPECT_METRICS_H
