//===- introspect/Resilient.cpp - Degradation-ladder driver ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Resilient.h"

#include "analysis/Reports.h"
#include "cache/ResultCache.h"
#include "ir/Program.h"
#include "support/Json.h"
#include "support/TableWriter.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <utility>

using namespace intro;

const char *intro::degradationLevelName(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::Deep:
    return "deep";
  case DegradationLevel::IntroB:
    return "introB";
  case DegradationLevel::IntroA:
    return "introA";
  case DegradationLevel::TightenedIntroA:
    return "introA-tightened";
  case DegradationLevel::Insensitive:
    return "insensitive";
  }
  return "?";
}

bool intro::degradationLevelFromName(std::string_view Name,
                                     DegradationLevel &Level) {
  static constexpr DegradationLevel All[] = {
      DegradationLevel::Deep, DegradationLevel::IntroB,
      DegradationLevel::IntroA, DegradationLevel::TightenedIntroA,
      DegradationLevel::Insensitive};
  for (DegradationLevel Candidate : All)
    if (Name == degradationLevelName(Candidate)) {
      Level = Candidate;
      return true;
    }
  return false;
}

std::string intro::formatAttemptTrace(const AttemptTrace &Trace) {
  if (Trace.empty())
    return "(no attempts)\n";
  TableWriter Table(
      {"#", "level", "analysis", "status", "seconds", "tuples", "pops"});
  for (size_t Index = 0; Index < Trace.size(); ++Index) {
    const Attempt &A = Trace[Index];
    std::string Level = degradationLevelName(A.Level);
    if (A.TightenedRound > 0)
      Level += "#" + std::to_string(A.TightenedRound);
    Table.addRow({TableWriter::num(static_cast<uint64_t>(Index + 1)), Level,
                  A.AnalysisName, statusName(A.Status),
                  TableWriter::num(A.Seconds, 3),
                  TableWriter::num(A.Stats.VarPointsToTuples +
                                   A.Stats.FieldPointsToTuples),
                  TableWriter::num(A.Stats.WorklistPops)});
  }
  std::ostringstream Out;
  Table.print(Out);
  return Out.str();
}

namespace {

/// Static-storage span name of one ladder rung (trace event names must
/// outlive the recorder; see support/Trace.h).
const char *rungSpanName(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::Deep:
    return "rung.deep";
  case DegradationLevel::IntroB:
    return "rung.introB";
  case DegradationLevel::IntroA:
    return "rung.introA";
  case DegradationLevel::TightenedIntroA:
    return "rung.introA_tightened";
  case DegradationLevel::Insensitive:
    return "rung.insensitive";
  }
  return "rung.unknown";
}

/// Divides every Heuristic A threshold by BackoffMultiplier^Round.  A
/// multiplier that cannot tighten (non-finite, zero, negative, or below 1)
/// is clamped to 1 — otherwise the double-to-integer casts below would be
/// undefined behavior on the inf/negative quotients it produces.
HeuristicAParams tightened(const HeuristicAParams &Base, double Multiplier,
                           uint32_t Round) {
  double Factor = std::pow(Multiplier, Round);
  if (!std::isfinite(Factor) || Factor < 1.0)
    Factor = 1.0;
  HeuristicAParams Params;
  Params.K = static_cast<uint64_t>(static_cast<double>(Base.K) / Factor);
  Params.L = static_cast<uint64_t>(static_cast<double>(Base.L) / Factor);
  Params.M = static_cast<uint64_t>(static_cast<double>(Base.M) / Factor);
  return Params;
}

/// Shared per-run state of the ladder walk.
class Ladder {
public:
  Ladder(const Program &Prog, const ContextPolicy &RefinedPolicy,
         const ResilientOptions &Options)
      : Prog(Prog), Refined(RefinedPolicy), Options(Options) {}

  ResilientOutcome run() {
    Timer Total;
    auto Insensitive = makeInsensitivePolicy();

    // Rung 1: the refined deep analysis as given.
    if (Options.AttemptDeep &&
        finished(DegradationLevel::Deep,
                 attempt(DegradationLevel::Deep, Refined, Options.DeepBudget)))
      return seal(Total);
    if (Stopped) // Cancelled mid-deep: do not start cheaper work.
      return seal(Total);

    // The insensitive pre-analysis: needed by every introspective rung and
    // simultaneously the ladder's last resort.  Run it once, up front —
    // or reload it (with its metrics) from the Pass-A cache.  The cache is
    // bypassed while the Insensitive fault plan is armed: a warm entry
    // would mask the failure the plan is injecting.
    bool UseCache = Options.Cache && Options.CacheKey &&
                    !Options.faultsFor(DegradationLevel::Insensitive).armed();
    bool CacheHit = false;
    PointsToResult FirstPass;
    if (UseCache) {
      cache::CachedPassA Entry;
      Timer LoadClock;
      if (Options.Cache->lookup(*Options.CacheKey, Entry)) {
        // The rung still "starts" (and instantly completes): supervision
        // learns via OnRungStart that the pre-analysis is underway, and
        // the trace row carries the *stored* solver stats so its
        // deterministic columns match a cold run's.
        if (Options.OnRungStart)
          Options.OnRungStart(DegradationLevel::Insensitive, 0);
        FirstPass = std::move(Entry.Insens);
        Out.Metrics = std::move(Entry.Metrics);
        Out.Trace.push_back({DegradationLevel::Insensitive,
                             FirstPass.AnalysisName, FirstPass.Status,
                             FirstPass.Stats, LoadClock.seconds(), 0});
        CacheHit = true;
      }
    }
    if (!CacheHit)
      FirstPass = attempt(DegradationLevel::Insensitive, *Insensitive,
                          Options.FirstPassBudget);
    if (!isCompleted(FirstPass.Status)) {
      // Nothing cheaper exists: return the partial insensitive result.
      Out.Cancelled = FirstPass.Status == SolveStatus::Cancelled;
      Out.Result = std::move(FirstPass);
      Out.Level = DegradationLevel::Insensitive;
      return seal(Total);
    }

    // Introspective rungs share the metrics of the first pass.
    if (!CacheHit) {
      Timer MetricClock;
      Out.Metrics = computeIntrospectionMetrics(Prog, FirstPass);
      Out.MetricSeconds = MetricClock.seconds();
      if (UseCache) {
        cache::CachedPassA Entry;
        Entry.Insens = FirstPass;
        Entry.Metrics = Out.Metrics;
        Options.Cache->store(*Options.CacheKey, Entry);
      }
    }

    if (Options.AttemptIntroB &&
        introAttempt(DegradationLevel::IntroB, "-IntroB",
                     applyHeuristicB(Prog, FirstPass, Out.Metrics,
                                     Options.ParamsB),
                     *Insensitive))
      return seal(Total);

    if (!Stopped && Options.AttemptIntroA &&
        introAttempt(DegradationLevel::IntroA, "-IntroA",
                     applyHeuristicA(Prog, FirstPass, Out.Metrics,
                                     Options.ParamsA),
                     *Insensitive))
      return seal(Total);

    for (uint32_t Round = 1; !Stopped && Round <= Options.TightenedRounds;
         ++Round) {
      HeuristicAParams Params =
          tightened(Options.ParamsA, Options.BackoffMultiplier, Round);
      std::string Suffix = "-IntroA-tight" + std::to_string(Round);
      if (introAttempt(DegradationLevel::TightenedIntroA, Suffix.c_str(),
                       applyHeuristicA(Prog, FirstPass, Out.Metrics, Params),
                       *Insensitive, Round))
        return seal(Total);
    }

    // Every refined rung failed (or the ladder was cancelled): fall back to
    // the completed insensitive pre-analysis, the deepest completed result.
    Out.Result = std::move(FirstPass);
    Out.Level = DegradationLevel::Insensitive;
    Out.Exceptions = RefinementExceptions();
    return seal(Total);
  }

private:
  /// Runs one solver attempt and records it in the trace.
  PointsToResult attempt(DegradationLevel Level, const ContextPolicy &Policy,
                         const SolveBudget &Budget, uint32_t Round = 0) {
    ContextTable Table;
    SolverOptions SolverOpts;
    SolverOpts.Budget = Budget;
    SolverOpts.Cancel = Options.Cancel;
    SolverOpts.CancelInterval = Options.CancelInterval;
    SolverOpts.Faults = Options.faultsFor(Level);
    if (Options.OnRungStart)
      Options.OnRungStart(Level, Round);
    trace::ScopedSpan RungSpan(rungSpanName(Level));
    Timer Clock;
    PointsToResult R = solvePointsTo(Prog, Policy, Table, SolverOpts);
    Out.Trace.push_back(
        {Level, R.AnalysisName, R.Status, R.Stats, Clock.seconds(), Round});
    return R;
  }

  /// If \p R completed, installs it as the outcome (it is the deepest rung
  /// reached so far, by construction).  If \p R was cancelled, stops the
  /// ladder: the caller wants out, not a cheaper answer.  \returns true if
  /// the walk is over with a completed result.
  bool finished(DegradationLevel Level, PointsToResult R,
                RefinementExceptions Exceptions = {}) {
    if (isCompleted(R.Status)) {
      Out.Result = std::move(R);
      Out.Level = Level;
      Out.Exceptions = std::move(Exceptions);
      return true;
    }
    if (R.Status == SolveStatus::Cancelled) {
      Out.Cancelled = true;
      // Keep the partial result provisionally; a completed insensitive
      // pre-analysis (if one exists) replaces it on the fallback path.
      Out.Result = std::move(R);
      Out.Level = Level;
      Stopped = true;
    }
    return false;
  }

  /// Between-rung cancellation check: even if no solver poll observed the
  /// token (long CancelInterval, fast attempts), the ladder must not start
  /// another expensive attempt after a cancel.
  bool ladderCancelled() {
    if (!Stopped && Options.Cancel && Options.Cancel->isCancelled()) {
      Out.Cancelled = true;
      Stopped = true;
    }
    return Stopped;
  }

  /// Runs one introspective rung: installs \p Exceptions into the refined
  /// policy and solves under the refined budget.  \returns true if the
  /// ladder is done (rung completed).
  bool introAttempt(DegradationLevel Level, const char *NameSuffix,
                    RefinementExceptions Exceptions,
                    const ContextPolicy &Insensitive, uint32_t Round = 0) {
    if (ladderCancelled())
      return false;
    auto Policy = makeIntrospectivePolicy(Refined.name() + NameSuffix,
                                          Insensitive, Refined, Exceptions);
    PointsToResult R = attempt(Level, *Policy, Options.RefinedBudget, Round);
    return finished(Level, std::move(R), std::move(Exceptions));
  }

  ResilientOutcome seal(const Timer &Total) {
    Out.TotalSeconds = Total.seconds();
    return std::move(Out);
  }

  const Program &Prog;
  const ContextPolicy &Refined;
  const ResilientOptions &Options;
  ResilientOutcome Out;
  bool Stopped = false; ///< Cancellation fired; no further rungs.
};

//===----------------------------------------------------------------------===//
// Portfolio mode: race the rungs instead of walking them.
//===----------------------------------------------------------------------===//

/// One racing rung: its own linked cancellation token (so losers can be
/// stopped individually while the caller's token still reaches everyone),
/// the policy it solves under (owned for introspective rungs), and the
/// pending / harvested result.
struct PortfolioRung {
  DegradationLevel Level;
  uint32_t Round = 0;
  CancellationToken Cancel;
  std::unique_ptr<ContextPolicy> OwnedPolicy; ///< Null for borrowed policies.
  RefinementExceptions Exceptions; ///< Installed exceptions (intro rungs).
  std::future<std::pair<PointsToResult, double>> Pending;
  PointsToResult Result;
  double Seconds = 0;
  bool Harvested = false;
};

/// The concurrent counterpart of Ladder.  Launches the deep attempt and
/// the insensitive pre-analysis together; once the pre-analysis lands,
/// computes the metrics (in parallel) and launches every introspective
/// rung.  The winner is then decided by harvesting in ladder order — the
/// first completed rung is exactly the one the sequential walk would have
/// stopped at, because the rungs above it all failed their (deterministic)
/// budgets.  Everything below the winner is cancelled.
class Portfolio {
public:
  Portfolio(const Program &Prog, const ContextPolicy &RefinedPolicy,
            const ResilientOptions &Options)
      : Prog(Prog), Refined(RefinedPolicy), Options(Options) {}

  ResilientOutcome run() {
    Timer Total;
    auto Insensitive = makeInsensitivePolicy();
    // Never more workers than rungs that can exist; never fewer than one.
    unsigned MaxTasks = 2 + (Options.AttemptIntroB ? 1 : 0) +
                        (Options.AttemptIntroA ? 1 : 0) +
                        Options.TightenedRounds;
    unsigned Workers =
        Options.Workers ? Options.Workers : ThreadPool::defaultWorkerCount();
    Workers = std::max(1u, std::min(Workers, MaxTasks));
    ThreadPool Pool(Workers);
    try {
      return race(Pool, *Insensitive, Workers, Total);
    } catch (...) {
      // A throwing rung (or metric shard) must not leave the others
      // running for their full budgets while the pool drains.
      cancelAll();
      throw;
    }
  }

private:
  ResilientOutcome race(ThreadPool &Pool, const ContextPolicy &Insensitive,
                        unsigned Workers, const Timer &Total) {
    PortfolioRung *Deep = nullptr;
    if (Options.AttemptDeep)
      Deep = &launch(Pool, DegradationLevel::Deep, Refined,
                     Options.DeepBudget);

    // The Pass-A cache short-circuits the pre-analysis rung: a hit becomes
    // a pre-harvested rung (stored stats in its trace row, load time as
    // its Seconds) and the introspective rungs launch immediately.  Same
    // fault-plan bypass as the sequential walk.
    bool UseCache = Options.Cache && Options.CacheKey &&
                    !Options.faultsFor(DegradationLevel::Insensitive).armed();
    bool CacheHit = false;
    PortfolioRung *FirstPtr = nullptr;
    if (UseCache) {
      cache::CachedPassA Entry;
      Timer LoadClock;
      if (Options.Cache->lookup(*Options.CacheKey, Entry)) {
        Rungs.emplace_back();
        PortfolioRung &Loaded = Rungs.back();
        Loaded.Level = DegradationLevel::Insensitive;
        Loaded.Result = std::move(Entry.Insens);
        Loaded.Seconds = LoadClock.seconds();
        Loaded.Harvested = true;
        Out.Metrics = std::move(Entry.Metrics);
        FirstPtr = &Loaded;
        CacheHit = true;
      }
    }
    if (!FirstPtr)
      FirstPtr = &launch(Pool, DegradationLevel::Insensitive, Insensitive,
                         Options.FirstPassBudget);
    PortfolioRung &First = *FirstPtr;

    // The pre-analysis gates every introspective rung; the deep attempt
    // races on while we wait for it.
    harvest(First);
    bool FirstOk = isCompleted(First.Result.Status);

    std::vector<PortfolioRung *> IntroRungs;
    if (FirstOk) {
      if (!CacheHit) {
        Timer MetricClock;
        {
          // A dedicated pool: the main pool's workers may all be busy with
          // solver runs, and metric shards must not queue behind a deep
          // attempt that has minutes of budget left.
          ThreadPool MetricPool(Workers);
          Out.Metrics =
              computeIntrospectionMetrics(Prog, First.Result, MetricPool);
        }
        Out.MetricSeconds = MetricClock.seconds();
        if (UseCache) {
          cache::CachedPassA Entry;
          Entry.Insens = First.Result;
          Entry.Metrics = Out.Metrics;
          Options.Cache->store(*Options.CacheKey, Entry);
        }
      }

      if (Options.AttemptIntroB)
        IntroRungs.push_back(&launchIntro(
            Pool, DegradationLevel::IntroB, "-IntroB",
            applyHeuristicB(Prog, First.Result, Out.Metrics, Options.ParamsB),
            Insensitive));
      if (Options.AttemptIntroA)
        IntroRungs.push_back(&launchIntro(
            Pool, DegradationLevel::IntroA, "-IntroA",
            applyHeuristicA(Prog, First.Result, Out.Metrics, Options.ParamsA),
            Insensitive));
      for (uint32_t Round = 1; Round <= Options.TightenedRounds; ++Round) {
        HeuristicAParams Params =
            tightened(Options.ParamsA, Options.BackoffMultiplier, Round);
        std::string Suffix = "-IntroA-tight" + std::to_string(Round);
        IntroRungs.push_back(&launchIntro(
            Pool, DegradationLevel::TightenedIntroA, Suffix.c_str(),
            applyHeuristicA(Prog, First.Result, Out.Metrics, Params),
            Insensitive, Round));
      }
    }

    // Decide the race in ladder order.  Budgets and fault plans are
    // deterministic, so the rungs above the first completed one fail in
    // both execution modes, making this exactly the sequential winner.
    std::vector<PortfolioRung *> LadderOrder;
    if (Deep)
      LadderOrder.push_back(Deep);
    LadderOrder.insert(LadderOrder.end(), IntroRungs.begin(),
                       IntroRungs.end());
    PortfolioRung *Winner = nullptr;
    for (PortfolioRung *R : LadderOrder) {
      harvest(*R);
      if (isCompleted(R->Result.Status)) {
        Winner = R;
        break;
      }
    }
    TRACE_COUNTER("portfolio.rungs_launched", Rungs.size());
    if (Winner)
      TRACE_INSTANT("portfolio.winner_level",
                    static_cast<uint64_t>(Winner->Level));

    // The race is decided: stop the losers, then collect them for the
    // trace.  Launch order IS the sequential ladder-walk order (deep,
    // insensitive pre-analysis, introB, introA, tightened rounds), so the
    // trace order is deterministic even though completion order is not.
    cancelAll();
    for (PortfolioRung &R : Rungs)
      harvest(R);
    for (PortfolioRung &R : Rungs)
      Out.Trace.push_back({R.Level, R.Result.AnalysisName, R.Result.Status,
                           R.Result.Stats, R.Seconds, R.Round});

    bool ExternalCancel = Options.Cancel && Options.Cancel->isCancelled();
    if (Winner) {
      Out.Result = std::move(Winner->Result);
      Out.Level = Winner->Level;
      Out.Exceptions = std::move(Winner->Exceptions);
      if (Winner->Level == DegradationLevel::Deep) {
        // Bit-compatibility with the sequential happy path, which never
        // runs the pre-analysis or the metric queries.
        Out.Metrics = IntrospectionMetrics();
        Out.MetricSeconds = 0;
      }
    } else if (ExternalCancel) {
      Out.Cancelled = true;
      if (FirstOk) {
        // Mirror the sequential fallback: a completed pre-analysis is
        // handed back rather than a partial refined result.
        Out.Result = std::move(First.Result);
        Out.Level = DegradationLevel::Insensitive;
      } else {
        // The first cancelled partial in ladder order mirrors the rung
        // the sequential walk was in when it observed the token.
        PortfolioRung *Partial = &First;
        for (PortfolioRung *R : LadderOrder)
          if (R->Result.Status == SolveStatus::Cancelled) {
            Partial = R;
            break;
          }
        Out.Result = std::move(Partial->Result);
        Out.Level = Partial->Level;
      }
    } else {
      // Every refined rung failed on its budget: the pre-analysis result
      // (completed, or the partial if even it failed) is the answer.
      Out.Cancelled = First.Result.Status == SolveStatus::Cancelled;
      Out.Result = std::move(First.Result);
      Out.Level = DegradationLevel::Insensitive;
      Out.Exceptions = RefinementExceptions();
    }
    Out.TotalSeconds = Total.seconds();
    return std::move(Out);
  }

  /// Launches one rung on \p Pool.  \p Owned (if any) transfers policy
  /// ownership into the rung; \p Policy must otherwise outlive the run.
  PortfolioRung &launch(ThreadPool &Pool, DegradationLevel Level,
                        const ContextPolicy &Policy, const SolveBudget &Budget,
                        uint32_t Round = 0,
                        std::unique_ptr<ContextPolicy> Owned = nullptr,
                        RefinementExceptions Exceptions = {}) {
    Rungs.emplace_back();
    PortfolioRung &R = Rungs.back(); // deque: address stays valid.
    R.Level = Level;
    R.Round = Round;
    R.OwnedPolicy = std::move(Owned);
    R.Exceptions = std::move(Exceptions);
    R.Cancel.linkTo(Options.Cancel);

    SolverOptions SolverOpts;
    SolverOpts.Budget = Budget;
    SolverOpts.Cancel = &R.Cancel;
    SolverOpts.CancelInterval = Options.CancelInterval;
    SolverOpts.Faults = Options.faultsFor(Level);
    const Program *ProgPtr = &Prog;
    const ContextPolicy *PolicyPtr = &Policy;
    R.Pending = Pool.submit([ProgPtr, PolicyPtr, SolverOpts, Level] {
      // The rung span is recorded on the worker thread; the recorder merges
      // per-thread buffers at flush, and summaries key on the name alone,
      // so the merged content does not depend on which worker ran the rung.
      trace::ScopedSpan RungSpan(rungSpanName(Level));
      Timer Clock;
      ContextTable Table;
      PointsToResult Result =
          solvePointsTo(*ProgPtr, *PolicyPtr, Table, SolverOpts);
      return std::make_pair(std::move(Result), Clock.seconds());
    });
    return R;
  }

  PortfolioRung &launchIntro(ThreadPool &Pool, DegradationLevel Level,
                             const char *NameSuffix,
                             RefinementExceptions Exceptions,
                             const ContextPolicy &Insensitive,
                             uint32_t Round = 0) {
    auto Policy = makeIntrospectivePolicy(Refined.name() + NameSuffix,
                                          Insensitive, Refined, Exceptions);
    const ContextPolicy &Ref = *Policy;
    return launch(Pool, Level, Ref, Options.RefinedBudget, Round,
                  std::move(Policy), std::move(Exceptions));
  }

  void harvest(PortfolioRung &R) {
    if (R.Harvested)
      return;
    auto [Result, Seconds] = R.Pending.get();
    R.Result = std::move(Result);
    R.Seconds = Seconds;
    R.Harvested = true;
  }

  void cancelAll() {
    // One fan-out event for the whole sweep (count = rungs reached), not
    // one per rung: the number of *launched* rungs is deterministic, and
    // a single instant keeps it that way in the trace content.
    TRACE_INSTANT("portfolio.cancel_fanout", Rungs.size());
    for (PortfolioRung &R : Rungs)
      R.Cancel.cancel();
  }

  const Program &Prog;
  const ContextPolicy &Refined;
  const ResilientOptions &Options;
  ResilientOutcome Out;
  std::deque<PortfolioRung> Rungs; ///< In ladder-walk (launch) order.
};

/// One attempt as a JSON object; \p Won marks the rung the outcome came
/// from (false when writing a bare trace with no outcome context).
void writeAttemptJson(JsonWriter &J, const Attempt &A, size_t Index,
                      bool Won) {
  J.beginObject();
  J.key("index");
  J.value(static_cast<uint64_t>(Index + 1));
  J.key("level");
  J.value(degradationLevelName(A.Level));
  J.key("tightened_round");
  J.value(A.TightenedRound);
  J.key("analysis");
  J.value(A.AnalysisName);
  J.key("status");
  J.value(statusName(A.Status));
  J.key("won");
  J.value(Won);
  J.key("seconds");
  J.value(A.Seconds);
  J.key("stats");
  writeSolverStatsJson(J, A.Stats);
  J.endObject();
}

} // namespace

ResilientOptions
intro::normalizeResilientOptions(const ResilientOptions &Options,
                                 std::vector<std::string> &Notes) {
  ResilientOptions N = Options;
  if (N.CancelInterval == 0) {
    N.CancelInterval = 1;
    Notes.push_back("CancelInterval=0 clamped to 1 (it is a modulus in the "
                    "solver's stop check; 1 polls every iteration)");
  }
  if (!std::isfinite(N.BackoffMultiplier) || N.BackoffMultiplier < 1.0) {
    std::ostringstream Note;
    Note << "BackoffMultiplier=" << N.BackoffMultiplier
         << " cannot tighten; clamped to 1 (tightened rounds repeat the "
            "base thresholds)";
    Notes.push_back(Note.str());
    N.BackoffMultiplier = 1.0;
  }
  if (N.Portfolio && N.Workers == 0) {
    N.Workers = std::max(1u, ThreadPool::defaultWorkerCount());
    Notes.push_back("Workers=0 (auto) resolved to " +
                    std::to_string(N.Workers));
  }
  return N;
}

void intro::writeAttemptTraceJson(JsonWriter &J, const AttemptTrace &Trace) {
  J.beginArray();
  for (size_t Index = 0; Index < Trace.size(); ++Index)
    writeAttemptJson(J, Trace[Index], Index, /*Won=*/false);
  J.endArray();
}

void intro::writeResilientOutcomeJson(JsonWriter &J,
                                      const ResilientOutcome &Outcome) {
  // The winning attempt: the first trace row that completed on the winning
  // rung under the winning analysis name.  At most one row matches; none
  // match when nothing completed (all-failed or cancelled runs).
  size_t WinnerIndex = Outcome.Trace.size();
  if (Outcome.completed())
    for (size_t Index = 0; Index < Outcome.Trace.size(); ++Index) {
      const Attempt &A = Outcome.Trace[Index];
      if (isCompleted(A.Status) && A.Level == Outcome.Level &&
          A.AnalysisName == Outcome.Result.AnalysisName) {
        WinnerIndex = Index;
        break;
      }
    }

  J.beginObject();
  J.key("level");
  J.value(degradationLevelName(Outcome.Level));
  J.key("analysis");
  J.value(Outcome.Result.AnalysisName);
  J.key("status");
  J.value(statusName(Outcome.Result.Status));
  J.key("completed");
  J.value(Outcome.completed());
  J.key("cancelled");
  J.value(Outcome.Cancelled);
  J.key("metric_seconds");
  J.value(Outcome.MetricSeconds);
  J.key("total_seconds");
  J.value(Outcome.TotalSeconds);
  J.key("notes");
  J.beginArray();
  for (const std::string &Note : Outcome.Notes)
    J.value(Note);
  J.endArray();
  J.key("stats");
  writeSolverStatsJson(J, Outcome.Result.Stats);
  J.key("attempts");
  J.beginArray();
  for (size_t Index = 0; Index < Outcome.Trace.size(); ++Index)
    writeAttemptJson(J, Outcome.Trace[Index], Index, Index == WinnerIndex);
  J.endArray();
  J.endObject();
}

namespace {

/// One SolveBudget as a JSON object.
void writeBudgetJson(JsonWriter &J, const SolveBudget &Budget) {
  J.beginObject();
  J.key("max_tuples");
  J.value(Budget.MaxTuples);
  J.key("max_seconds");
  J.value(Budget.MaxSeconds);
  J.key("max_bytes");
  J.value(Budget.MaxBytes);
  J.endObject();
}

void parseBudgetJson(const JsonValue *Value, SolveBudget &Budget) {
  if (!Value || !Value->isObject())
    return;
  Value->getUint("max_tuples", Budget.MaxTuples);
  Value->getDouble("max_seconds", Budget.MaxSeconds);
  Value->getUint("max_bytes", Budget.MaxBytes);
}

} // namespace

void intro::writeResilientOptionsJson(JsonWriter &J,
                                      const ResilientOptions &Options) {
  J.beginObject();
  J.key("deep_budget");
  writeBudgetJson(J, Options.DeepBudget);
  J.key("refined_budget");
  writeBudgetJson(J, Options.RefinedBudget);
  J.key("first_pass_budget");
  writeBudgetJson(J, Options.FirstPassBudget);
  J.key("attempt_deep");
  J.value(Options.AttemptDeep);
  J.key("attempt_intro_b");
  J.value(Options.AttemptIntroB);
  J.key("attempt_intro_a");
  J.value(Options.AttemptIntroA);
  J.key("tightened_rounds");
  J.value(Options.TightenedRounds);
  J.key("backoff_multiplier");
  J.value(Options.BackoffMultiplier);
  J.key("params_a");
  J.beginObject();
  J.key("k");
  J.value(Options.ParamsA.K);
  J.key("l");
  J.value(Options.ParamsA.L);
  J.key("m");
  J.value(Options.ParamsA.M);
  J.endObject();
  J.key("params_b");
  J.beginObject();
  J.key("p");
  J.value(Options.ParamsB.P);
  J.key("q");
  J.value(Options.ParamsB.Q);
  J.endObject();
  J.key("cancel_interval");
  J.value(Options.CancelInterval);
  J.key("portfolio");
  J.value(Options.Portfolio);
  J.key("workers");
  J.value(static_cast<uint64_t>(Options.Workers));
  // Fault plans travel too: a supervisor relaunching a job must reproduce
  // the exact injected behaviour in the replacement child (tests depend on
  // it).  Only armed plans are written, keyed by level name.
  J.key("level_faults");
  J.beginArray();
  for (size_t Index = 0; Index < NumDegradationLevels; ++Index) {
    const FaultPlan &Plan = Options.LevelFaults[Index];
    if (!Plan.armed())
      continue;
    J.beginObject();
    J.key("level");
    J.value(degradationLevelName(static_cast<DegradationLevel>(Index)));
    J.key("fail_at_pop");
    J.value(Plan.FailAtPop);
    J.key("fail_status");
    J.value(statusName(Plan.FailStatus));
    J.key("tuple_inflation");
    J.value(Plan.TupleInflation);
    J.endObject();
  }
  J.endArray();
  J.endObject();
}

bool intro::parseResilientOptionsJson(const JsonValue &Value,
                                      ResilientOptions &Options,
                                      std::string &Error) {
  if (!Value.isObject()) {
    Error = "resilient options: expected an object";
    return false;
  }
  parseBudgetJson(Value.get("deep_budget"), Options.DeepBudget);
  parseBudgetJson(Value.get("refined_budget"), Options.RefinedBudget);
  parseBudgetJson(Value.get("first_pass_budget"), Options.FirstPassBudget);
  Value.getBool("attempt_deep", Options.AttemptDeep);
  Value.getBool("attempt_intro_b", Options.AttemptIntroB);
  Value.getBool("attempt_intro_a", Options.AttemptIntroA);
  uint64_t Rounds = Options.TightenedRounds;
  if (Value.getUint("tightened_rounds", Rounds))
    Options.TightenedRounds = static_cast<uint32_t>(Rounds);
  Value.getDouble("backoff_multiplier", Options.BackoffMultiplier);
  if (const JsonValue *A = Value.get("params_a")) {
    A->getUint("k", Options.ParamsA.K);
    A->getUint("l", Options.ParamsA.L);
    A->getUint("m", Options.ParamsA.M);
  }
  if (const JsonValue *B = Value.get("params_b")) {
    B->getUint("p", Options.ParamsB.P);
    B->getUint("q", Options.ParamsB.Q);
  }
  uint64_t Interval = Options.CancelInterval;
  if (Value.getUint("cancel_interval", Interval))
    Options.CancelInterval = static_cast<uint32_t>(Interval);
  Value.getBool("portfolio", Options.Portfolio);
  uint64_t Workers = Options.Workers;
  if (Value.getUint("workers", Workers))
    Options.Workers = static_cast<unsigned>(Workers);
  if (const JsonValue *Faults = Value.get("level_faults")) {
    if (!Faults->isArray()) {
      Error = "resilient options: level_faults must be an array";
      return false;
    }
    for (const JsonValue &Entry : Faults->elements()) {
      std::string LevelName;
      DegradationLevel Level;
      if (!Entry.getString("level", LevelName) ||
          !degradationLevelFromName(LevelName, Level)) {
        Error = "resilient options: bad fault level '" + LevelName + "'";
        return false;
      }
      FaultPlan &Plan = Options.faultsFor(Level);
      Entry.getUint("fail_at_pop", Plan.FailAtPop);
      std::string StatusText;
      if (Entry.getString("fail_status", StatusText) &&
          !statusFromName(StatusText, Plan.FailStatus)) {
        Error = "resilient options: bad fault status '" + StatusText + "'";
        return false;
      }
      Entry.getUint("tuple_inflation", Plan.TupleInflation);
    }
  }
  return true;
}

bool intro::parseAttemptTraceJson(const JsonValue &Value, AttemptTrace &Trace,
                                  std::string &Error) {
  if (!Value.isArray()) {
    Error = "attempt trace: expected an array";
    return false;
  }
  for (size_t Index = 0; Index < Value.elements().size(); ++Index) {
    const JsonValue &Entry = Value.elements()[Index];
    std::string Position = "attempt " + std::to_string(Index + 1);
    if (!Entry.isObject()) {
      Error = Position + ": expected an object";
      return false;
    }
    Attempt A;
    std::string LevelName;
    if (!Entry.getString("level", LevelName) ||
        !degradationLevelFromName(LevelName, A.Level)) {
      Error = Position + ": bad level '" + LevelName + "'";
      return false;
    }
    std::string StatusText;
    if (!Entry.getString("status", StatusText) ||
        !statusFromName(StatusText, A.Status)) {
      Error = Position + ": bad status '" + StatusText + "'";
      return false;
    }
    Entry.getString("analysis", A.AnalysisName);
    Entry.getDouble("seconds", A.Seconds);
    uint64_t Round = 0;
    if (Entry.getUint("tightened_round", Round))
      A.TightenedRound = static_cast<uint32_t>(Round);
    if (const JsonValue *Stats = Entry.get("stats"))
      if (!parseSolverStatsJson(*Stats, A.Stats)) {
        Error = Position + ": stats must be an object";
        return false;
      }
    Trace.push_back(std::move(A));
  }
  return true;
}

ResilientOutcome intro::runResilient(const Program &Prog,
                                     const ContextPolicy &RefinedPolicy,
                                     const ResilientOptions &Options) {
  std::vector<std::string> Notes;
  ResilientOptions Normalized = normalizeResilientOptions(Options, Notes);
  ResilientOutcome Out = Normalized.Portfolio
                             ? Portfolio(Prog, RefinedPolicy, Normalized).run()
                             : Ladder(Prog, RefinedPolicy, Normalized).run();
  Out.Notes = std::move(Notes);
  return Out;
}
