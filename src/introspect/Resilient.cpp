//===- introspect/Resilient.cpp - Degradation-ladder driver ---------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "introspect/Resilient.h"

#include "ir/Program.h"
#include "support/TableWriter.h"
#include "support/Timer.h"

#include <cmath>
#include <sstream>

using namespace intro;

const char *intro::degradationLevelName(DegradationLevel Level) {
  switch (Level) {
  case DegradationLevel::Deep:
    return "deep";
  case DegradationLevel::IntroB:
    return "introB";
  case DegradationLevel::IntroA:
    return "introA";
  case DegradationLevel::TightenedIntroA:
    return "introA-tightened";
  case DegradationLevel::Insensitive:
    return "insensitive";
  }
  return "?";
}

std::string intro::formatAttemptTrace(const AttemptTrace &Trace) {
  TableWriter Table(
      {"#", "level", "analysis", "status", "seconds", "tuples", "pops"});
  for (size_t Index = 0; Index < Trace.size(); ++Index) {
    const Attempt &A = Trace[Index];
    std::string Level = degradationLevelName(A.Level);
    if (A.TightenedRound > 0)
      Level += "#" + std::to_string(A.TightenedRound);
    Table.addRow({TableWriter::num(static_cast<uint64_t>(Index + 1)), Level,
                  A.AnalysisName, statusName(A.Status),
                  TableWriter::num(A.Seconds, 3),
                  TableWriter::num(A.Stats.VarPointsToTuples +
                                   A.Stats.FieldPointsToTuples),
                  TableWriter::num(A.Stats.WorklistPops)});
  }
  std::ostringstream Out;
  Table.print(Out);
  return Out.str();
}

namespace {

/// Divides every Heuristic A threshold by BackoffMultiplier^Round.  A
/// multiplier that cannot tighten (non-finite, zero, negative, or below 1)
/// is clamped to 1 — otherwise the double-to-integer casts below would be
/// undefined behavior on the inf/negative quotients it produces.
HeuristicAParams tightened(const HeuristicAParams &Base, double Multiplier,
                           uint32_t Round) {
  double Factor = std::pow(Multiplier, Round);
  if (!std::isfinite(Factor) || Factor < 1.0)
    Factor = 1.0;
  HeuristicAParams Params;
  Params.K = static_cast<uint64_t>(static_cast<double>(Base.K) / Factor);
  Params.L = static_cast<uint64_t>(static_cast<double>(Base.L) / Factor);
  Params.M = static_cast<uint64_t>(static_cast<double>(Base.M) / Factor);
  return Params;
}

/// Shared per-run state of the ladder walk.
class Ladder {
public:
  Ladder(const Program &Prog, const ContextPolicy &RefinedPolicy,
         const ResilientOptions &Options)
      : Prog(Prog), Refined(RefinedPolicy), Options(Options) {}

  ResilientOutcome run() {
    Timer Total;
    auto Insensitive = makeInsensitivePolicy();

    // Rung 1: the refined deep analysis as given.
    if (Options.AttemptDeep &&
        finished(DegradationLevel::Deep,
                 attempt(DegradationLevel::Deep, Refined, Options.DeepBudget)))
      return seal(Total);
    if (Stopped) // Cancelled mid-deep: do not start cheaper work.
      return seal(Total);

    // The insensitive pre-analysis: needed by every introspective rung and
    // simultaneously the ladder's last resort.  Run it once, up front.
    PointsToResult FirstPass = attempt(DegradationLevel::Insensitive,
                                       *Insensitive, Options.FirstPassBudget);
    if (!isCompleted(FirstPass.Status)) {
      // Nothing cheaper exists: return the partial insensitive result.
      Out.Cancelled = FirstPass.Status == SolveStatus::Cancelled;
      Out.Result = std::move(FirstPass);
      Out.Level = DegradationLevel::Insensitive;
      return seal(Total);
    }

    // Introspective rungs share the metrics of the first pass.
    Timer MetricClock;
    Out.Metrics = computeIntrospectionMetrics(Prog, FirstPass);
    Out.MetricSeconds = MetricClock.seconds();

    if (Options.AttemptIntroB &&
        introAttempt(DegradationLevel::IntroB, "-IntroB",
                     applyHeuristicB(Prog, FirstPass, Out.Metrics,
                                     Options.ParamsB),
                     *Insensitive))
      return seal(Total);

    if (!Stopped && Options.AttemptIntroA &&
        introAttempt(DegradationLevel::IntroA, "-IntroA",
                     applyHeuristicA(Prog, FirstPass, Out.Metrics,
                                     Options.ParamsA),
                     *Insensitive))
      return seal(Total);

    for (uint32_t Round = 1; !Stopped && Round <= Options.TightenedRounds;
         ++Round) {
      HeuristicAParams Params =
          tightened(Options.ParamsA, Options.BackoffMultiplier, Round);
      std::string Suffix = "-IntroA-tight" + std::to_string(Round);
      if (introAttempt(DegradationLevel::TightenedIntroA, Suffix.c_str(),
                       applyHeuristicA(Prog, FirstPass, Out.Metrics, Params),
                       *Insensitive, Round))
        return seal(Total);
    }

    // Every refined rung failed (or the ladder was cancelled): fall back to
    // the completed insensitive pre-analysis, the deepest completed result.
    Out.Result = std::move(FirstPass);
    Out.Level = DegradationLevel::Insensitive;
    Out.Exceptions = RefinementExceptions();
    return seal(Total);
  }

private:
  /// Runs one solver attempt and records it in the trace.
  PointsToResult attempt(DegradationLevel Level, const ContextPolicy &Policy,
                         const SolveBudget &Budget, uint32_t Round = 0) {
    ContextTable Table;
    SolverOptions SolverOpts;
    SolverOpts.Budget = Budget;
    SolverOpts.Cancel = Options.Cancel;
    SolverOpts.CancelInterval = Options.CancelInterval;
    SolverOpts.Faults = Options.faultsFor(Level);
    Timer Clock;
    PointsToResult R = solvePointsTo(Prog, Policy, Table, SolverOpts);
    Out.Trace.push_back(
        {Level, R.AnalysisName, R.Status, R.Stats, Clock.seconds(), Round});
    return R;
  }

  /// If \p R completed, installs it as the outcome (it is the deepest rung
  /// reached so far, by construction).  If \p R was cancelled, stops the
  /// ladder: the caller wants out, not a cheaper answer.  \returns true if
  /// the walk is over with a completed result.
  bool finished(DegradationLevel Level, PointsToResult R,
                RefinementExceptions Exceptions = {}) {
    if (isCompleted(R.Status)) {
      Out.Result = std::move(R);
      Out.Level = Level;
      Out.Exceptions = std::move(Exceptions);
      return true;
    }
    if (R.Status == SolveStatus::Cancelled) {
      Out.Cancelled = true;
      // Keep the partial result provisionally; a completed insensitive
      // pre-analysis (if one exists) replaces it on the fallback path.
      Out.Result = std::move(R);
      Out.Level = Level;
      Stopped = true;
    }
    return false;
  }

  /// Between-rung cancellation check: even if no solver poll observed the
  /// token (long CancelInterval, fast attempts), the ladder must not start
  /// another expensive attempt after a cancel.
  bool ladderCancelled() {
    if (!Stopped && Options.Cancel && Options.Cancel->isCancelled()) {
      Out.Cancelled = true;
      Stopped = true;
    }
    return Stopped;
  }

  /// Runs one introspective rung: installs \p Exceptions into the refined
  /// policy and solves under the refined budget.  \returns true if the
  /// ladder is done (rung completed).
  bool introAttempt(DegradationLevel Level, const char *NameSuffix,
                    RefinementExceptions Exceptions,
                    const ContextPolicy &Insensitive, uint32_t Round = 0) {
    if (ladderCancelled())
      return false;
    auto Policy = makeIntrospectivePolicy(Refined.name() + NameSuffix,
                                          Insensitive, Refined, Exceptions);
    PointsToResult R = attempt(Level, *Policy, Options.RefinedBudget, Round);
    return finished(Level, std::move(R), std::move(Exceptions));
  }

  ResilientOutcome seal(const Timer &Total) {
    Out.TotalSeconds = Total.seconds();
    return std::move(Out);
  }

  const Program &Prog;
  const ContextPolicy &Refined;
  const ResilientOptions &Options;
  ResilientOutcome Out;
  bool Stopped = false; ///< Cancellation fired; no further rungs.
};

} // namespace

ResilientOutcome intro::runResilient(const Program &Prog,
                                     const ContextPolicy &RefinedPolicy,
                                     const ResilientOptions &Options) {
  return Ladder(Prog, RefinedPolicy, Options).run();
}
