//===- introspect/Heuristics.h - Heuristics A and B -------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two heuristic combinations of the Section 3 cost metrics.
/// Each maps the metrics of the context-insensitive first pass to the set
/// of program elements that should *not* be refined (complement form):
///
///   Heuristic A — refine all allocation sites except those with
///   pointed-by-vars > K; refine all call sites except those with in-flow
///   > L or whose target method has max var-field points-to > M.
///   Paper defaults: K=100, L=100, M=200.
///
///   Heuristic B — refine all call sites except those invoking methods with
///   total points-to volume > P; refine all allocations except those whose
///   (total field points-to x pointed-by-vars) product exceeds Q.
///   Paper defaults: P=Q=10000.
///
//===----------------------------------------------------------------------===//

#ifndef INTROSPECT_HEURISTICS_H
#define INTROSPECT_HEURISTICS_H

#include "analysis/ContextPolicy.h"
#include "introspect/Metrics.h"

namespace intro {

class Program;
class PointsToResult;

/// Tunable constants of Heuristic A (paper Section 3).
struct HeuristicAParams {
  uint64_t K = 100; ///< pointed-by-vars threshold for objects.
  uint64_t L = 100; ///< in-flow threshold for call sites.
  uint64_t M = 200; ///< max var-field points-to threshold for targets.
};

/// Tunable constants of Heuristic B (paper Section 3).
struct HeuristicBParams {
  uint64_t P = 10000; ///< total points-to volume threshold for targets.
  uint64_t Q = 10000; ///< (total field pts x pointed-by-vars) threshold.
};

/// Which heuristic an introspective run uses.
enum class HeuristicKind : uint8_t { A, B };

/// Applies Heuristic A.  \p Insens must be the first-pass result that
/// \p Metrics was computed from.
RefinementExceptions applyHeuristicA(const Program &Prog,
                                     const PointsToResult &Insens,
                                     const IntrospectionMetrics &Metrics,
                                     const HeuristicAParams &Params = {});

/// Applies Heuristic B.
RefinementExceptions applyHeuristicB(const Program &Prog,
                                     const PointsToResult &Insens,
                                     const IntrospectionMetrics &Metrics,
                                     const HeuristicBParams &Params = {});

/// Statistics matching the paper's Figure 4: how many call sites / objects
/// were selected to not be refined, as a share of the refinable population.
struct RefinementStats {
  uint64_t TotalCallSites = 0;    ///< Call sites in reachable methods.
  uint64_t ExcludedCallSites = 0; ///< ... selected to not be refined.
  uint64_t TotalObjects = 0;      ///< Allocation sites in reachable methods.
  uint64_t ExcludedObjects = 0;   ///< ... selected to not be refined.

  double callSitePercent() const {
    return TotalCallSites == 0
               ? 0.0
               : 100.0 * static_cast<double>(ExcludedCallSites) /
                     static_cast<double>(TotalCallSites);
  }
  double objectPercent() const {
    return TotalObjects == 0 ? 0.0
                             : 100.0 * static_cast<double>(ExcludedObjects) /
                                   static_cast<double>(TotalObjects);
  }
};

/// Computes Figure 4-style statistics for \p Exceptions.
RefinementStats computeRefinementStats(const Program &Prog,
                                       const PointsToResult &Insens,
                                       const RefinementExceptions &Exceptions);

} // namespace intro

#endif // INTROSPECT_HEURISTICS_H
