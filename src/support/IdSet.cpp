//===- support/IdSet.cpp - Adaptive dense-handle set ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/IdSet.h"

#include <algorithm>
#include <cassert>

using namespace intro;

uint64_t IdSet::findBitFrom(uint64_t From) const {
  uint64_t End = static_cast<uint64_t>(Words.size()) * 64;
  if (From >= End)
    return End;
  size_t Word = static_cast<size_t>(From >> 6);
  uint64_t Bits = Words[Word] >> (From & 63);
  if (Bits != 0)
    return From + static_cast<uint64_t>(__builtin_ctzll(Bits));
  for (++Word; Word < Words.size(); ++Word)
    if (Words[Word] != 0)
      return (static_cast<uint64_t>(Word) << 6) +
             static_cast<uint64_t>(__builtin_ctzll(Words[Word]));
  return End;
}

void IdSet::maybePromote() {
  if (Dense || Small.size() < std::max<uint32_t>(Threshold, 1))
    return;
  // Density condition: the bitmap may not be sparser than one element per
  // word, i.e. 8 bitmap bytes per at most 8 vector bytes (2x overhead cap).
  if (wordsFor(Small.back()) > Small.size())
    return;
  Words.assign(wordsFor(Small.back()), 0);
  for (uint32_t Value : Small)
    Words[Value >> 6] |= uint64_t(1) << (Value & 63);
  Count = Small.size();
  Small.clear();
  Small.shrink_to_fit();
  Dense = true;
}

void IdSet::demote() {
  assert(Dense && "demote of a small set");
  Small = toVector();
  Words.clear();
  Words.shrink_to_fit();
  Count = 0;
  Dense = false;
}

bool IdSet::ensureDenseCapacity(uint32_t MaxValue, size_t FinalCount) {
  size_t Needed = wordsFor(MaxValue);
  if (Needed <= Words.size())
    return true;
  // Sparse-outlier guard: a handle far beyond the populated range must not
  // balloon the bitmap (16 bytes per element is the cap — twice the 2x
  // bound the promotion condition guarantees, leaving room for growth).
  if (Needed > 2 * FinalCount) {
    demote();
    return false;
  }
  size_t Grown = std::max(Needed, Words.size() * 2);
  Words.resize(Grown, 0);
  return true;
}

bool IdSet::insert(uint32_t Value) {
  if (Dense) {
    if (!ensureDenseCapacity(Value, Count + 1))
      return setInsert(Small, Value); // Demoted: past threshold, low density.
    uint64_t &Word = Words[Value >> 6];
    uint64_t Mask = uint64_t(1) << (Value & 63);
    if (Word & Mask)
      return false;
    Word |= Mask;
    ++Count;
    return true;
  }
  if (!setInsert(Small, Value))
    return false;
  maybePromote();
  return true;
}

size_t IdSet::unionWithDelta(const uint32_t *Begin, const uint32_t *End,
                             SortedIdSet &NewElements) {
  if (Begin == End)
    return 0;
  if (Dense) {
    // The range is sorted, so its maximum is the last element; settle the
    // capacity (or the demotion) once, before touching any bits.
    if (!ensureDenseCapacity(*(End - 1),
                             Count + static_cast<size_t>(End - Begin)))
      return unionWithDelta(Begin, End, NewElements); // Now on the small path.
    size_t Added = 0;
    for (const uint32_t *It = Begin; It != End; ++It) {
      uint64_t &Word = Words[*It >> 6];
      uint64_t Mask = uint64_t(1) << (*It & 63);
      if (Word & Mask)
        continue;
      Word |= Mask;
      NewElements.push_back(*It);
      ++Added;
    }
    Count += Added;
    return Added;
  }
  size_t FirstNew = NewElements.size();
  std::set_difference(Begin, End, Small.begin(), Small.end(),
                      std::back_inserter(NewElements));
  size_t Added = NewElements.size() - FirstNew;
  if (Added == 0)
    return 0;
  SortedIdSet Merged;
  Merged.reserve(Small.size() + Added);
  std::merge(Small.begin(), Small.end(), NewElements.begin() + FirstNew,
             NewElements.end(), std::back_inserter(Merged));
  Small.swap(Merged);
  maybePromote();
  return Added;
}

size_t IdSet::unionWithDelta(const IdSet &Src, SortedIdSet &NewElements) {
  if (&Src == this || Src.empty())
    return 0;
  if (!Src.Dense)
    return unionWithDelta(Src.Small.data(),
                          Src.Small.data() + Src.Small.size(), NewElements);

  if (Dense) {
    // Word-wise OR; the new elements of each word are Src & ~Dst.  Both
    // sets satisfy the density invariant, so growing to the wider of the
    // two cannot trip the sparse-outlier cap — settle capacity directly.
    if (Src.Words.size() > Words.size())
      Words.resize(Src.Words.size(), 0);
    size_t Added = 0;
    for (size_t Word = 0; Word < Src.Words.size(); ++Word) {
      uint64_t Fresh = Src.Words[Word] & ~Words[Word];
      if (Fresh == 0)
        continue;
      Words[Word] |= Fresh;
      Added += static_cast<size_t>(__builtin_popcountll(Fresh));
      while (Fresh != 0) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Fresh));
        NewElements.push_back(static_cast<uint32_t>((Word << 6) + Bit));
        Fresh &= Fresh - 1;
      }
    }
    Count += Added;
    return Added;
  }

  // Small destination, dense source: one ascending merge pass over both.
  SortedIdSet Merged;
  Merged.reserve(Small.size() + Src.size());
  size_t FirstNew = NewElements.size();
  auto SmallIt = Small.begin();
  Src.forEach([&](uint32_t Value) {
    while (SmallIt != Small.end() && *SmallIt < Value)
      Merged.push_back(*SmallIt++);
    if (SmallIt != Small.end() && *SmallIt == Value) {
      ++SmallIt;
      Merged.push_back(Value);
      return;
    }
    Merged.push_back(Value);
    NewElements.push_back(Value);
  });
  Merged.insert(Merged.end(), SmallIt, Small.end());
  size_t Added = NewElements.size() - FirstNew;
  if (Added == 0)
    return 0;
  Small.swap(Merged);
  maybePromote();
  return Added;
}

void IdSet::insertNewSorted(const SortedIdSet &Values) {
  if (Values.empty())
    return;
  if (Dense) {
    if (!ensureDenseCapacity(Values.back(), Count + Values.size())) {
      insertNewSorted(Values); // Demoted: redo on the small path.
      return;
    }
    for (uint32_t Value : Values) {
      assert(!(Words[Value >> 6] >> (Value & 63) & 1) &&
             "insertNewSorted element already present");
      Words[Value >> 6] |= uint64_t(1) << (Value & 63);
    }
    Count += Values.size();
    return;
  }
  if (Small.empty() || Small.back() < Values.front()) {
    Small.insert(Small.end(), Values.begin(), Values.end());
  } else {
    SortedIdSet Merged;
    Merged.reserve(Small.size() + Values.size());
    std::merge(Small.begin(), Small.end(), Values.begin(), Values.end(),
               std::back_inserter(Merged));
    assert(std::adjacent_find(Merged.begin(), Merged.end()) == Merged.end() &&
           "insertNewSorted element already present");
    Small.swap(Merged);
  }
  maybePromote();
}

bool IdSet::operator==(const IdSet &Other) const {
  if (size() != Other.size())
    return false;
  auto It = Other.begin();
  for (uint32_t Value : *this) {
    if (Value != *It)
      return false;
    ++It;
  }
  return true;
}
