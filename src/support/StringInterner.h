//===- support/StringInterner.h - Pooled string storage ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit handles with stable storage.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STRINGINTERNER_H
#define SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace intro {

/// Maps strings to dense indices and back.
///
/// Interned strings live for the lifetime of the interner; the views returned
/// by \ref text remain valid across later insertions.
class StringInterner {
public:
  /// Interns \p Text, returning the existing index if already present.
  uint32_t intern(std::string_view Text);

  /// \returns the text of the interned string \p Index.
  std::string_view text(uint32_t Index) const {
    assert(Index < Storage.size() && "string index out of range");
    return Storage[Index];
  }

  /// \returns the number of distinct interned strings.
  size_t size() const { return Storage.size(); }

private:
  // Deque storage keeps element addresses stable across growth, so views
  // into short (SSO) strings survive later insertions.
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, uint32_t> Index;
};

} // namespace intro

#endif // SUPPORT_STRINGINTERNER_H
