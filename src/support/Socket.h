//===- support/Socket.h - Unix-domain socket & SIGPIPE policy ---*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small POSIX surface the serving layer needs: Unix-domain listen and
/// connect, full-buffer send/receive loops, and a poll wrapper — plus the
/// repo-wide SIGPIPE/EPIPE policy those loops implement.
///
/// **The SIGPIPE policy.**  Every long-running tool (intro_batch,
/// intro_serve, the fig harnesses) calls ignoreSigPipe() first thing in
/// main().  The default SIGPIPE disposition kills the process the moment a
/// consumer closes its end of a pipe or socket — `intro_batch | head`
/// died mid-batch with no exit code, no report, and no quarantine copy.
/// With the signal ignored, a write to a closed peer fails with EPIPE
/// instead, and the policy for that is uniform:
///
///   - a *progress* channel (stdout table, a streamed event frame) going
///     away is the consumer's choice — a clean stop, never an error;
///   - a *result* channel (a report file, a quarantine copy) failing is
///     still an error, because nobody chose to discard it.
///
/// sendAll() additionally passes MSG_NOSIGNAL, so socket writes are safe
/// even from contexts that could not have called ignoreSigPipe() (tests,
/// library embedders).  Forked analysis children have their own guard in
/// support/Subprocess.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SOCKET_H
#define SUPPORT_SOCKET_H

#include <cstddef>
#include <string>

namespace intro {

/// Ignores SIGPIPE process-wide (idempotent).  See the file comment for the
/// policy; call it at the top of every tool main() that writes to pipes or
/// sockets it does not control the far end of.
void ignoreSigPipe();

/// Creates, binds, and listens on a Unix-domain stream socket at \p Path.
/// A stale socket file from a dead server is detected (connect refused) and
/// replaced; a live server at the same path is an error.  \returns the
/// listening fd, or -1 with \p Error set.
int listenUnix(const std::string &Path, int Backlog, std::string &Error);

/// Connects to the Unix-domain stream socket at \p Path.  \returns the
/// connected fd, or -1 with \p Error set.
int connectUnix(const std::string &Path, std::string &Error);

/// Writes all \p Count bytes to \p Fd (EINTR-resumed, MSG_NOSIGNAL on
/// sockets).  \returns false when the peer is gone (EPIPE/ECONNRESET) or on
/// any other write error — per the policy above the caller treats a dead
/// progress consumer as a clean stop, not a failure.
bool sendAll(int Fd, const char *Data, size_t Count);

/// Waits until \p Fd is readable.  \returns 1 when readable (or at EOF),
/// 0 on timeout, -1 on error.  \p TimeoutMs < 0 waits forever.
int pollIn(int Fd, int TimeoutMs);

/// One EINTR-resumed read(2).  \returns bytes read, 0 at EOF, -1 on error.
long readSome(int Fd, char *Buffer, size_t Capacity);

} // namespace intro

#endif // SUPPORT_SOCKET_H
