//===- support/StringInterner.cpp - Pooled string storage -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace intro;

uint32_t StringInterner::intern(std::string_view Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;

  uint32_t NewIndex = static_cast<uint32_t>(Storage.size());
  Storage.emplace_back(Text);
  // Key the map with a view into the stable std::string buffer, not into the
  // caller's (possibly temporary) memory.
  Index.emplace(std::string_view(Storage.back()), NewIndex);
  return NewIndex;
}
