//===- support/Overflow.h - Overflow-safe integer helpers -------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Saturating unsigned arithmetic for budget enforcement.  Budget checks
/// compare derived quantities (tuple counts scaled by fault-injection
/// inflation factors, byte estimates) against limits; if the derivation
/// wraps, a huge value compares as tiny and the budget silently disarms —
/// the exact opposite of the intended trip.  Saturating to the maximum
/// keeps "too big to represent" on the tripping side of every comparison.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_OVERFLOW_H
#define SUPPORT_OVERFLOW_H

#include <cstdint>
#include <limits>

namespace intro {

/// \returns A * B, or UINT64_MAX if the product does not fit in 64 bits.
inline uint64_t saturatingMul(uint64_t A, uint64_t B) {
#if defined(__GNUC__) || defined(__clang__)
  uint64_t Product;
  if (__builtin_mul_overflow(A, B, &Product))
    return std::numeric_limits<uint64_t>::max();
  return Product;
#else
  if (A != 0 && B > std::numeric_limits<uint64_t>::max() / A)
    return std::numeric_limits<uint64_t>::max();
  return A * B;
#endif
}

/// \returns A + B, or UINT64_MAX if the sum does not fit in 64 bits.
inline uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t Sum = A + B;
  return Sum < A ? std::numeric_limits<uint64_t>::max() : Sum;
}

} // namespace intro

#endif // SUPPORT_OVERFLOW_H
