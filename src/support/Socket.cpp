//===- support/Socket.cpp - Unix-domain socket & SIGPIPE policy -----------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace intro;

void intro::ignoreSigPipe() { ::signal(SIGPIPE, SIG_IGN); }

namespace {

/// Fills a sockaddr_un for \p Path; \returns false when the path does not
/// fit sun_path (a hard protocol limit, typically 108 bytes).
bool fillAddress(const std::string &Path, sockaddr_un &Address,
                 std::string &Error) {
  std::memset(&Address, 0, sizeof(Address));
  Address.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Address.sun_path)) {
    Error = "socket path is empty or longer than sun_path allows: " + Path;
    return false;
  }
  std::memcpy(Address.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

int intro::listenUnix(const std::string &Path, int Backlog,
                      std::string &Error) {
  sockaddr_un Address;
  if (!fillAddress(Path, Address, Error))
    return -1;

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Address), sizeof(Address)) !=
      0) {
    if (errno == EADDRINUSE) {
      // Either a live server or a stale socket file from a dead one.  A
      // refused connect means nobody is listening: unlink and rebind.
      std::string ProbeError;
      int Probe = connectUnix(Path, ProbeError);
      if (Probe >= 0) {
        ::close(Probe);
        ::close(Fd);
        Error = "another server is already listening on " + Path;
        return -1;
      }
      ::unlink(Path.c_str());
      if (::bind(Fd, reinterpret_cast<sockaddr *>(&Address),
                 sizeof(Address)) == 0) {
        if (::listen(Fd, Backlog) != 0) {
          Error = std::string("listen: ") + std::strerror(errno);
          ::close(Fd);
          return -1;
        }
        return Fd;
      }
    }
    Error = std::string("bind ") + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, Backlog) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(Path.c_str());
    return -1;
  }
  return Fd;
}

int intro::connectUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Address;
  if (!fillAddress(Path, Address, Error))
    return -1;

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Address),
                sizeof(Address)) != 0) {
    Error = std::string("connect ") + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool intro::sendAll(int Fd, const char *Data, size_t Count) {
  while (Count > 0) {
    // MSG_NOSIGNAL: no SIGPIPE even if the caller never installed the
    // process-wide guard.  Falls back to write(2) semantics for non-socket
    // fds via the ENOTSOCK retry below.
    ssize_t Written = ::send(Fd, Data, Count, MSG_NOSIGNAL);
    if (Written < 0 && errno == ENOTSOCK)
      Written = ::write(Fd, Data, Count);
    if (Written < 0) {
      if (errno == EINTR)
        continue;
      return false; // EPIPE/ECONNRESET: peer gone — clean stop policy.
    }
    Data += Written;
    Count -= static_cast<size_t>(Written);
  }
  return true;
}

int intro::pollIn(int Fd, int TimeoutMs) {
  pollfd Poll;
  Poll.fd = Fd;
  Poll.events = POLLIN;
  Poll.revents = 0;
  while (true) {
    int Ready = ::poll(&Poll, 1, TimeoutMs);
    if (Ready < 0 && errno == EINTR)
      continue;
    if (Ready < 0)
      return -1;
    return Ready > 0 ? 1 : 0;
  }
}

long intro::readSome(int Fd, char *Buffer, size_t Capacity) {
  while (true) {
    ssize_t Count = ::read(Fd, Buffer, Capacity);
    if (Count < 0 && errno == EINTR)
      continue;
    return static_cast<long>(Count);
  }
}
