//===- support/ExitCodes.h - Process exit-code contract ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exit-code contract shared by every tool in the repo (the fig
/// benches, intro_batch).  A supervisor — ours or CI's — must be able to
/// distinguish "the analysis legitimately failed" from "you fed me
/// garbage" from "the tool itself is broken" without parsing stderr, so a
/// blanket `return 1` is banned.  Codes 97/98 are reserved by the child
/// harness (support/Subprocess.h) and deliberately outside this space.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_EXITCODES_H
#define SUPPORT_EXITCODES_H

namespace intro {

/// Everything worked; results (and reports) are complete.
inline constexpr int ExitSuccess = 0;
/// The tool ran correctly but the analysis did not produce a usable result
/// (budget exhaustion on the last rung, a quarantined batch job, ...).
inline constexpr int ExitAnalysisFailure = 1;
/// The input was rejected before analysis: unknown flags, unreadable
/// files, programs with parse or validation errors.
inline constexpr int ExitBadInput = 2;
/// The tool itself failed: an unexpected exception, an I/O error writing a
/// report, a supervision primitive failing.  These are our bugs, not the
/// user's.
inline constexpr int ExitInternalError = 3;

} // namespace intro

#endif // SUPPORT_EXITCODES_H
