//===- support/Trace.cpp - Structured solver tracing ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <ostream>

using namespace intro;
using namespace intro::trace;

namespace {

/// The single active recorder (nullptr = tracing off).  Relaxed is enough:
/// install/uninstall happen on the controlling thread before worker threads
/// are launched / after they are joined, which provides the ordering.
std::atomic<Recorder *> ActiveRecorder{nullptr};

/// Bumped on every Recorder::start() so per-thread log caches from an
/// earlier (possibly destroyed) recorder can never be mistaken for current.
std::atomic<uint64_t> InstallGeneration{0};

/// Per-thread cache of the registered log, keyed by install generation.
struct LocalCache {
  uint64_t Generation = 0;
  void *Log = nullptr;
};
thread_local LocalCache Cache;

} // namespace

Recorder *intro::trace::active() {
  return ActiveRecorder.load(std::memory_order_relaxed);
}

Recorder::Recorder() = default;

Recorder::~Recorder() { stop(); }

void Recorder::start() {
  assert(ActiveRecorder.load(std::memory_order_relaxed) == nullptr &&
         "another recorder is already active");
  Stopped = false;
  StartNs = nowNs();
  Generation = InstallGeneration.fetch_add(1, std::memory_order_relaxed) + 1;
  ActiveRecorder.store(this, std::memory_order_release);
}

void Recorder::stop() {
  Recorder *Expected = this;
  ActiveRecorder.compare_exchange_strong(Expected, nullptr,
                                         std::memory_order_acq_rel);
  if (Stopped)
    return;
  Stopped = true;
  mergeLogs();
}

uint64_t Recorder::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Timer::Clock::now().time_since_epoch())
          .count());
}

Recorder::ThreadLog &Recorder::localLog() {
  if (Cache.Generation == Generation && Cache.Log)
    return *static_cast<ThreadLog *>(Cache.Log);
  std::lock_guard<std::mutex> Lock(LogMutex);
  Logs.push_back(std::make_unique<ThreadLog>());
  Logs.back()->Tid = static_cast<uint32_t>(Logs.size());
  Cache.Generation = Generation;
  Cache.Log = Logs.back().get();
  return *Logs.back();
}

void Recorder::append(Event::Kind K, const char *Name, uint64_t Value) {
  if (Stopped)
    return; // A span straddling stop() closes into the void.
  localLog().Events.push_back({K, Name, nowNs() - StartNs, Value});
}

void Recorder::counterAdd(const char *Name, uint64_t Delta) {
  if (Stopped)
    return;
  auto &Cells = localLog().Counters;
  // Linear scan: the instrumentation uses a handful of distinct names, and
  // literal pointers make the common hit a pointer compare.
  for (auto &[CellName, CellValue] : Cells) {
    if (CellName == Name) {
      CellValue += Delta;
      return;
    }
  }
  Cells.push_back({Name, Delta});
}

void Recorder::mergeLogs() {
  std::lock_guard<std::mutex> Lock(LogMutex);
  Merged.clear();
  MergedCounters.clear();
  SpanSummaries.clear();
  InstantSummaries.clear();

  for (const auto &Log : Logs) {
    // Events keep their recording thread's order; span pairing is LIFO
    // within the thread that produced them.
    std::vector<std::pair<const char *, uint64_t>> OpenSpans;
    for (const Event &E : Log->Events) {
      Merged.push_back(E);
      switch (E.K) {
      case Event::Kind::Begin:
        OpenSpans.push_back({E.Name, E.TimeNs});
        break;
      case Event::Kind::End:
        if (!OpenSpans.empty() && OpenSpans.back().first == E.Name) {
          NameSummary &S = SpanSummaries[E.Name];
          ++S.Count;
          S.TotalNs += E.TimeNs - OpenSpans.back().second;
          OpenSpans.pop_back();
        }
        break;
      case Event::Kind::Instant: {
        NameSummary &S = InstantSummaries[E.Name];
        ++S.Count;
        S.Sum += E.Value;
        break;
      }
      case Event::Kind::Counter:
        break; // Counters travel through the cell table below.
      }
    }
    for (const auto &[Name, Value] : Log->Counters)
      MergedCounters[Name] += Value;
  }
}

const std::vector<Event> &Recorder::events() {
  stop();
  return Merged;
}

const std::map<std::string, uint64_t> &Recorder::counters() {
  stop();
  return MergedCounters;
}

const std::map<std::string, NameSummary> &Recorder::spans() {
  stop();
  return SpanSummaries;
}

const std::map<std::string, NameSummary> &Recorder::instants() {
  stop();
  return InstantSummaries;
}

void Recorder::writeChromeTrace(std::ostream &Out) {
  stop();
  JsonWriter J(Out);
  J.beginObject();
  J.key("displayTimeUnit");
  J.value("ms");
  J.key("traceEvents");
  J.beginArray();

  uint64_t LastTs = 0;
  {
    std::lock_guard<std::mutex> Lock(LogMutex);
    for (const auto &Log : Logs) {
      for (const Event &E : Log->Events) {
        LastTs = std::max(LastTs, E.TimeNs);
        J.beginObject();
        J.key("name");
        J.value(E.Name);
        J.key("ph");
        switch (E.K) {
        case Event::Kind::Begin:
          J.value("B");
          break;
        case Event::Kind::End:
          J.value("E");
          break;
        case Event::Kind::Instant:
          J.value("i");
          J.key("s");
          J.value("t");
          break;
        case Event::Kind::Counter:
          J.value("C");
          break;
        }
        J.key("pid");
        J.value(uint64_t(1));
        J.key("tid");
        J.value(uint64_t(Log->Tid));
        J.key("ts");
        J.value(static_cast<double>(E.TimeNs) / 1000.0);
        if (E.K == Event::Kind::Instant) {
          J.key("args");
          J.beginObject();
          J.key("value");
          J.value(E.Value);
          J.endObject();
        }
        J.endObject();
      }
    }
  }
  // One final counter sample per merged counter so the totals show up as
  // counter tracks in the viewer.
  for (const auto &[Name, Value] : MergedCounters) {
    J.beginObject();
    J.key("name");
    J.value(Name);
    J.key("ph");
    J.value("C");
    J.key("pid");
    J.value(uint64_t(1));
    J.key("tid");
    J.value(uint64_t(1));
    J.key("ts");
    J.value(static_cast<double>(LastTs) / 1000.0);
    J.key("args");
    J.beginObject();
    J.key("value");
    J.value(Value);
    J.endObject();
    J.endObject();
  }
  J.endArray();
  J.endObject();
  Out << '\n';
}

void Recorder::writeDeterministicSummary(JsonWriter &J) {
  stop();
  J.beginObject();
  J.key("counters");
  J.beginObject();
  for (const auto &[Name, Value] : MergedCounters) {
    J.key(Name);
    J.value(Value);
  }
  J.endObject();
  // Spans: names and pair counts only — durations are timing-dependent and
  // live in the Chrome export / the report's timing sections instead.
  J.key("spans");
  J.beginArray();
  for (const auto &[Name, Summary] : SpanSummaries) {
    J.beginObject();
    J.key("name");
    J.value(Name);
    J.key("count");
    J.value(Summary.Count);
    J.endObject();
  }
  J.endArray();
  J.key("instants");
  J.beginArray();
  for (const auto &[Name, Summary] : InstantSummaries) {
    J.beginObject();
    J.key("name");
    J.value(Name);
    J.key("count");
    J.value(Summary.Count);
    J.key("sum");
    J.value(Summary.Sum);
    J.endObject();
  }
  J.endArray();
  J.endObject();
}
