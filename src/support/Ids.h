//===- support/Ids.h - Strongly typed dense identifiers --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed wrappers around dense 32-bit indices.
///
/// Every entity in the analysis (variables, heap allocation sites, methods,
/// fields, types, invocation sites, contexts, ...) is identified by a dense
/// index into a per-kind table.  Using a distinct C++ type per entity kind
/// makes it impossible to pass, say, a variable id where a method id is
/// expected, at zero runtime cost.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_IDS_H
#define SUPPORT_IDS_H

#include <cassert>
#include <cstdint>
#include <functional>

namespace intro {

/// A strongly typed dense identifier.
///
/// \tparam Tag an empty struct that distinguishes id kinds at compile time.
template <typename Tag> class Id {
public:
  /// Sentinel encoding "no entity".
  static constexpr uint32_t InvalidIndex = 0xFFFFFFFFu;

  constexpr Id() = default;
  constexpr explicit Id(uint32_t Index) : Index(Index) {}

  /// \returns the invalid sentinel id.
  static constexpr Id invalid() { return Id(); }

  /// \returns true if this id refers to an actual entity.
  constexpr bool isValid() const { return Index != InvalidIndex; }

  /// \returns the underlying dense index; the id must be valid.
  constexpr uint32_t index() const {
    assert(isValid() && "querying index of invalid id");
    return Index;
  }

  /// \returns the raw representation, valid or not.
  constexpr uint32_t raw() const { return Index; }

  friend constexpr bool operator==(Id A, Id B) { return A.Index == B.Index; }
  friend constexpr bool operator!=(Id A, Id B) { return A.Index != B.Index; }
  friend constexpr bool operator<(Id A, Id B) { return A.Index < B.Index; }

private:
  uint32_t Index = InvalidIndex;
};

struct VarTag {};
struct HeapTag {};
struct MethodTag {};
struct FieldTag {};
struct TypeTag {};
struct SigTag {};
struct SiteTag {};
struct InstrTag {};
struct CtxTag {};
struct HCtxTag {};

/// A local program variable.
using VarId = Id<VarTag>;
/// A heap object, abstracted as its allocation site.
using HeapId = Id<HeapTag>;
/// A method definition.
using MethodId = Id<MethodTag>;
/// An instance field.
using FieldId = Id<FieldTag>;
/// A class type.
using TypeId = Id<TypeTag>;
/// A method signature (name plus arity), the unit of virtual dispatch.
using SigId = Id<SigTag>;
/// A method invocation site.
using SiteId = Id<SiteTag>;
/// An instruction within a method body.
using InstrId = Id<InstrTag>;
/// A calling context (element of the paper's set C).
using CtxId = Id<CtxTag>;
/// A heap context (element of the paper's set HC).
using HCtxId = Id<HCtxTag>;

} // namespace intro

namespace std {
template <typename Tag> struct hash<intro::Id<Tag>> {
  size_t operator()(intro::Id<Tag> Id) const noexcept {
    return std::hash<uint32_t>()(Id.raw());
  }
};
} // namespace std

#endif // SUPPORT_IDS_H
