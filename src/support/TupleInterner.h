//===- support/TupleInterner.h - Interned uint32 tuples ---------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns variable-length tuples of 32-bit values into dense handles.
///
/// Calling contexts and heap contexts are tuples of program-element indices
/// (call sites, allocation sites, or types, depending on the flavor of
/// context-sensitivity).  The analysis manipulates them exclusively through
/// dense interned handles; this class provides the handle <-> tuple mapping.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TUPLEINTERNER_H
#define SUPPORT_TUPLEINTERNER_H

#include <cassert>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace intro {

/// Interns tuples of uint32_t into dense uint32_t handles.
///
/// Tuple contents are stored contiguously in one arena; handles are stable
/// and dense (0, 1, 2, ...), so clients can use them to index side tables.
class TupleInterner {
public:
  /// A handle value meaning "not present" (returned by find).
  static constexpr uint32_t NotFound = 0xFFFFFFFFu;

  /// Interns \p Elements, returning the handle of the (unique) stored copy.
  uint32_t intern(std::span<const uint32_t> Elements);

  /// Looks up \p Elements without inserting. \returns its handle or
  /// \ref NotFound.
  uint32_t find(std::span<const uint32_t> Elements) const;

  /// \returns the elements of tuple \p Handle.
  std::span<const uint32_t> elements(uint32_t Handle) const {
    assert(Handle < Offsets.size() && "tuple handle out of range");
    uint32_t Begin = Offsets[Handle];
    uint32_t End = Handle + 1 < Offsets.size()
                       ? Offsets[Handle + 1]
                       : static_cast<uint32_t>(Arena.size());
    return std::span<const uint32_t>(Arena.data() + Begin, End - Begin);
  }

  /// \returns the number of distinct interned tuples.
  size_t size() const { return Offsets.size(); }

private:
  struct TupleRef {
    const TupleInterner *Owner;
    uint32_t Handle;
  };
  struct TupleHash {
    using is_transparent = void;
    size_t operator()(std::span<const uint32_t> Elements) const {
      // FNV-1a over the element words.
      uint64_t Hash = 1469598103934665603ull;
      for (uint32_t Element : Elements) {
        Hash ^= Element;
        Hash *= 1099511628211ull;
      }
      return static_cast<size_t>(Hash);
    }
  };

  // Probing table: maps hash -> candidate handles.  We implement dedup with
  // an unordered_multimap keyed by hash to avoid storing tuple copies.
  std::vector<uint32_t> Arena;
  std::vector<uint32_t> Offsets;
  std::unordered_multimap<size_t, uint32_t> Buckets;
};

} // namespace intro

#endif // SUPPORT_TUPLEINTERNER_H
