//===- support/IdSet.h - Adaptive dense-handle set --------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver's points-to sets are sets of dense 32-bit handles with a
/// bimodal size distribution: most sets stay tiny, a few hub sets grow to
/// thousands of elements and absorb the bulk of the propagation work.  IdSet
/// adapts its representation to that shape:
///
///   - below the promotion threshold it is a sorted, duplicate-free vector
///     (SetUtils.h semantics: cache-friendly, 4 bytes per element);
///   - at the threshold — and only when the bitmap would be at least as
///     element-dense as one bit per 64-bit word — it switches to a packed
///     bitmap, making membership O(1) and set union a word-wise OR.
///
/// The density condition bounds bitmap storage by 2x the vector bytes, so
/// promotion never loses the compactness of the sorted vector by more than a
/// constant factor; a sparse outlier handle (e.g. UINT32_MAX landing in a
/// small dense set) demotes back to the vector instead of allocating a
/// gigantic bitmap.
///
/// The API mirrors SetUtils.h (contains / insert / union-with-delta) plus
/// the batched primitive the solver's difference propagation is built on:
/// unionWithDelta(Src) merges a whole source set in one pass and reports
/// exactly the genuinely new elements, in ascending order.  Iteration is
/// always in ascending handle order in both representations, so results
/// derived from an IdSet keep the canonical sorted encoding.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_IDSET_H
#define SUPPORT_IDSET_H

#include "support/SetUtils.h"

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace intro {

/// An adaptive set of dense 32-bit handles: sorted vector when small,
/// packed bitmap when large and dense.  See the file comment.
class IdSet {
public:
  /// Default element count at which promotion to the bitmap representation
  /// is first considered.  Calibrated with bench/micro_engine's BM_IdSet*
  /// benchmarks: below ~48 elements the sorted vector's linear memory wins;
  /// above it, mid-vector insertion shifts start to dominate and the
  /// word-wise union is strictly cheaper (DESIGN.md section 11).
  static constexpr uint32_t DefaultPromoteThreshold = 48;

  IdSet() = default;
  /// \p PromoteThreshold overrides the promotion size (tests use tiny
  /// thresholds to exercise both representations cheaply).  A threshold of
  /// 0 behaves like 1: any insert may promote, density permitting.
  explicit IdSet(uint32_t PromoteThreshold) : Threshold(PromoteThreshold) {}

  /// \returns true if the set contains \p Value.
  bool contains(uint32_t Value) const {
    if (!Dense)
      return setContains(Small, Value);
    size_t Word = Value >> 6;
    return Word < Words.size() &&
           (Words[Word] >> (Value & 63)) & uint64_t(1);
  }

  /// Inserts \p Value. \returns true if it was newly added.
  bool insert(uint32_t Value);

  /// Merges \p Src into this set.  Every genuinely new element is appended
  /// to \p NewElements in ascending order (the vector is not cleared).
  /// \returns the number of elements added.  \p Src may be *this (no-op).
  size_t unionWithDelta(const IdSet &Src, SortedIdSet &NewElements);

  /// Convenience overload: \returns the new elements as a fresh vector.
  SortedIdSet unionWithDelta(const IdSet &Src) {
    SortedIdSet NewElements;
    unionWithDelta(Src, NewElements);
    return NewElements;
  }

  /// Merges the sorted duplicate-free range [\p Begin, \p End) into this
  /// set, appending new elements to \p NewElements.  \returns the number
  /// added.
  size_t unionWithDelta(const uint32_t *Begin, const uint32_t *End,
                        SortedIdSet &NewElements);
  size_t unionWithDelta(const SortedIdSet &Src, SortedIdSet &NewElements) {
    return unionWithDelta(Src.data(), Src.data() + Src.size(), NewElements);
  }

  /// Merges the sorted duplicate-free \p Values, all of which must be
  /// absent from the set (the caller already knows they are new — e.g. the
  /// solver inserting a union's delta into a node's pending-delta set).
  void insertNewSorted(const SortedIdSet &Values);

  size_t size() const { return Dense ? Count : Small.size(); }
  bool empty() const { return size() == 0; }

  /// Resets to an empty small-representation set, releasing storage.
  void clear() {
    Small.clear();
    Small.shrink_to_fit();
    Words.clear();
    Words.shrink_to_fit();
    Count = 0;
    Dense = false;
  }

  /// \returns true if the set currently uses the bitmap representation.
  bool isDense() const { return Dense; }

  /// Deterministic payload-storage estimate in bytes: element storage for
  /// the vector representation, word storage for the bitmap.  Based on
  /// logical sizes, not allocator capacities, so budget decisions derived
  /// from it are identical across platforms and library implementations.
  uint64_t approxBytes() const {
    return Dense ? Words.size() * sizeof(uint64_t)
                 : Small.size() * sizeof(uint32_t);
  }

  /// Calls \p Fn(uint32_t) for every element in ascending order.
  template <typename FnT> void forEach(FnT &&Fn) const {
    if (!Dense) {
      for (uint32_t Value : Small)
        Fn(Value);
      return;
    }
    for (size_t Word = 0; Word < Words.size(); ++Word) {
      uint64_t Bits = Words[Word];
      while (Bits != 0) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Bits));
        Fn(static_cast<uint32_t>((Word << 6) + Bit));
        Bits &= Bits - 1;
      }
    }
  }

  /// \returns the contents as a sorted vector.
  SortedIdSet toVector() const {
    if (!Dense)
      return Small;
    SortedIdSet Out;
    Out.reserve(Count);
    forEach([&Out](uint32_t Value) { Out.push_back(Value); });
    return Out;
  }

  /// Ascending-order forward iteration over both representations.
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    uint32_t operator*() const {
      return Parent->Dense ? static_cast<uint32_t>(Pos) : Parent->Small[Pos];
    }
    const_iterator &operator++() {
      if (Parent->Dense)
        Pos = Parent->findBitFrom(Pos + 1);
      else
        ++Pos;
      return *this;
    }
    bool operator==(const const_iterator &Other) const {
      return Pos == Other.Pos;
    }
    bool operator!=(const const_iterator &Other) const {
      return Pos != Other.Pos;
    }

  private:
    friend class IdSet;
    const_iterator(const IdSet *Parent, uint64_t Pos)
        : Parent(Parent), Pos(Pos) {}
    const IdSet *Parent;
    uint64_t Pos; ///< Vector index (small) or bit position (dense).
  };

  const_iterator begin() const {
    return {this, Dense ? findBitFrom(0) : 0};
  }
  const_iterator end() const {
    return {this, Dense ? static_cast<uint64_t>(Words.size()) * 64
                        : Small.size()};
  }

  /// Structural equality over the logical contents (representations may
  /// differ).
  bool operator==(const IdSet &Other) const;
  bool operator!=(const IdSet &Other) const { return !(*this == Other); }

private:
  /// First set bit at or after \p From; Words.size()*64 when none.
  uint64_t findBitFrom(uint64_t From) const;

  /// Number of 64-bit words a bitmap holding \p MaxValue needs.
  static size_t wordsFor(uint32_t MaxValue) {
    return static_cast<size_t>(MaxValue >> 6) + 1;
  }

  /// Promotes to the bitmap representation when the set is past the
  /// threshold AND at least one element per word dense, which bounds bitmap
  /// bytes by 2x the vector bytes.
  void maybePromote();

  /// Rebuilds the sorted vector from the bitmap (sparse-outlier fallback).
  void demote();

  /// Grows the bitmap to cover \p MaxValue, unless the result would be
  /// sparser than the 16-bytes-per-element cap given \p FinalCount elements
  /// — in that case demotes to the vector representation and \returns
  /// false (the caller must reissue the operation on the small path).
  bool ensureDenseCapacity(uint32_t MaxValue, size_t FinalCount);

  SortedIdSet Small;           ///< Sorted-vector representation.
  std::vector<uint64_t> Words; ///< Bitmap representation.
  size_t Count = 0;            ///< Element count (bitmap representation).
  uint32_t Threshold = DefaultPromoteThreshold;
  bool Dense = false;
};

} // namespace intro

#endif // SUPPORT_IDSET_H
