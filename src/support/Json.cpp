//===- support/Json.cpp - Minimal streaming JSON writer -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace intro;

void JsonWriter::prefix() {
  if (PendingKey) {
    // The comma (if any) was emitted with the key.
    PendingKey = false;
    return;
  }
  if (!Stack.empty()) {
    assert(!Stack.back().IsObject && "object members need a key() first");
    if (Stack.back().HasElements)
      Out << ',';
    Stack.back().HasElements = true;
  }
}

void JsonWriter::beginObject() {
  prefix();
  Stack.push_back({/*IsObject=*/true});
  Out << '{';
}

void JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().IsObject && "unbalanced endObject");
  Stack.pop_back();
  Out << '}';
}

void JsonWriter::beginArray() {
  prefix();
  Stack.push_back({/*IsObject=*/false});
  Out << '[';
}

void JsonWriter::endArray() {
  assert(!Stack.empty() && !Stack.back().IsObject && "unbalanced endArray");
  Stack.pop_back();
  Out << ']';
}

void JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back().IsObject && "key() outside object");
  assert(!PendingKey && "key() twice without a value");
  if (Stack.back().HasElements)
    Out << ',';
  Stack.back().HasElements = true;
  Out << '"' << escape(Name) << "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view Text) {
  prefix();
  Out << '"' << escape(Text) << '"';
}

void JsonWriter::value(uint64_t Number) {
  prefix();
  Out << Number;
}

void JsonWriter::value(int64_t Number) {
  prefix();
  Out << Number;
}

void JsonWriter::value(bool Flag) {
  prefix();
  Out << (Flag ? "true" : "false");
}

void JsonWriter::value(double Number) {
  if (!std::isfinite(Number)) {
    null();
    return;
  }
  prefix();
  char Buffer[64];
  // %.17g round-trips every finite double and never prints nan/inf here.
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Number);
  Out << Buffer;
}

void JsonWriter::null() {
  prefix();
  Out << "null";
}

std::string JsonWriter::escape(std::string_view Text) {
  std::string Result;
  Result.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\r':
      Result += "\\r";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Result += Buffer;
      } else {
        Result += static_cast<char>(C);
      }
    }
  }
  return Result;
}
