//===- support/Json.cpp - Minimal streaming JSON writer -------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace intro;

void JsonWriter::prefix() {
  if (PendingKey) {
    // The comma (if any) was emitted with the key.
    PendingKey = false;
    return;
  }
  if (!Stack.empty()) {
    assert(!Stack.back().IsObject && "object members need a key() first");
    if (Stack.back().HasElements)
      Out << ',';
    Stack.back().HasElements = true;
  }
}

void JsonWriter::beginObject() {
  prefix();
  Stack.push_back({/*IsObject=*/true});
  Out << '{';
}

void JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().IsObject && "unbalanced endObject");
  Stack.pop_back();
  Out << '}';
}

void JsonWriter::beginArray() {
  prefix();
  Stack.push_back({/*IsObject=*/false});
  Out << '[';
}

void JsonWriter::endArray() {
  assert(!Stack.empty() && !Stack.back().IsObject && "unbalanced endArray");
  Stack.pop_back();
  Out << ']';
}

void JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back().IsObject && "key() outside object");
  assert(!PendingKey && "key() twice without a value");
  if (Stack.back().HasElements)
    Out << ',';
  Stack.back().HasElements = true;
  Out << '"' << escape(Name) << "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view Text) {
  prefix();
  Out << '"' << escape(Text) << '"';
}

void JsonWriter::value(uint64_t Number) {
  prefix();
  Out << Number;
}

void JsonWriter::value(int64_t Number) {
  prefix();
  Out << Number;
}

void JsonWriter::value(bool Flag) {
  prefix();
  Out << (Flag ? "true" : "false");
}

void JsonWriter::value(double Number) {
  if (!std::isfinite(Number)) {
    null();
    return;
  }
  prefix();
  char Buffer[64];
  // %.17g round-trips every finite double and never prints nan/inf here.
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", Number);
  Out << Buffer;
}

void JsonWriter::null() {
  prefix();
  Out << "null";
}

//===----------------------------------------------------------------------===//
// JsonValue / parseJson
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::get(std::string_view Name) const {
  if (!isObject())
    return nullptr;
  for (const auto &[Key, Value] : Members)
    if (Key == Name)
      return &Value;
  return nullptr;
}

bool JsonValue::getString(std::string_view Name, std::string &Out) const {
  const JsonValue *V = get(Name);
  if (!V || !V->isString())
    return false;
  Out = V->asString();
  return true;
}

bool JsonValue::getUint(std::string_view Name, uint64_t &Out) const {
  const JsonValue *V = get(Name);
  if (!V || !V->isNumber() || V->asDouble() < 0)
    return false;
  Out = V->asUint();
  return true;
}

bool JsonValue::getDouble(std::string_view Name, double &Out) const {
  const JsonValue *V = get(Name);
  if (!V || !V->isNumber())
    return false;
  Out = V->asDouble();
  return true;
}

bool JsonValue::getBool(std::string_view Name, bool &Out) const {
  const JsonValue *V = get(Name);
  if (!V || !V->isBool())
    return false;
  Out = V->asBool();
  return true;
}

namespace {

/// Recursive-descent JSON reader.  All failure paths set Error and unwind
/// via the ok() checks — no exceptions, no assertions on input content.
class JsonParser {
public:
  JsonParser(std::string_view Text, size_t MaxDepth)
      : Text(Text), MaxDepth(MaxDepth) {}

  JsonParseResult run() {
    JsonParseResult Result;
    parseValue(Result.Value, 0);
    if (Error.empty()) {
      skipWhitespace();
      if (Pos != Text.size())
        fail("trailing garbage after JSON document");
    }
    Result.Error = std::move(Error);
    Result.Line = Line;
    return Result;
  }

private:
  void fail(const std::string &Message) {
    if (Error.empty())
      Error = "line " + std::to_string(Line) + ": " + Message;
  }

  bool ok() const { return Error.empty(); }
  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWhitespace() {
    while (!atEnd()) {
      char C = Text[Pos];
      if (C == '\n')
        ++Line;
      else if (C != ' ' && C != '\t' && C != '\r')
        return;
      ++Pos;
    }
  }

  /// Consumes the keyword \p Word ("true"/"false"/"null") or fails.
  bool keyword(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word) {
      fail("invalid token");
      return false;
    }
    Pos += Word.size();
    return true;
  }

  void parseValue(JsonValue &Out, size_t Depth) {
    if (Depth > MaxDepth) {
      fail("nesting deeper than " + std::to_string(MaxDepth) + " levels");
      return;
    }
    skipWhitespace();
    if (atEnd()) {
      fail("unexpected end of input (truncated document?)");
      return;
    }
    switch (peek()) {
    case '{':
      parseObject(Out, Depth);
      return;
    case '[':
      parseArray(Out, Depth);
      return;
    case '"':
      Out.K = JsonValue::Kind::String;
      parseString(Out.Str);
      return;
    case 't':
      if (keyword("true")) {
        Out.K = JsonValue::Kind::Bool;
        Out.Flag = true;
      }
      return;
    case 'f':
      if (keyword("false")) {
        Out.K = JsonValue::Kind::Bool;
        Out.Flag = false;
      }
      return;
    case 'n':
      if (keyword("null"))
        Out.K = JsonValue::Kind::Null;
      return;
    default:
      parseNumber(Out);
      return;
    }
  }

  void parseObject(JsonValue &Out, size_t Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWhitespace();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return;
    }
    while (ok()) {
      skipWhitespace();
      if (atEnd() || peek() != '"') {
        fail("expected '\"' starting an object key");
        return;
      }
      std::string Key;
      parseString(Key);
      if (!ok())
        return;
      skipWhitespace();
      if (atEnd() || peek() != ':') {
        fail("expected ':' after object key");
        return;
      }
      ++Pos;
      JsonValue Member;
      parseValue(Member, Depth + 1);
      if (!ok())
        return;
      // First occurrence wins; later duplicates are dropped, not an error —
      // a tolerant reader is the right default for crash-time reports.
      if (!Out.get(Key))
        Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipWhitespace();
      if (atEnd()) {
        fail("unexpected end of input inside object");
        return;
      }
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return;
      }
      fail("expected ',' or '}' in object");
      return;
    }
  }

  void parseArray(JsonValue &Out, size_t Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWhitespace();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return;
    }
    while (ok()) {
      JsonValue Element;
      parseValue(Element, Depth + 1);
      if (!ok())
        return;
      Out.Elems.push_back(std::move(Element));
      skipWhitespace();
      if (atEnd()) {
        fail("unexpected end of input inside array");
        return;
      }
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return;
      }
      fail("expected ',' or ']' in array");
      return;
    }
  }

  void parseString(std::string &Out) {
    ++Pos; // opening '"'
    Out.clear();
    while (true) {
      if (atEnd()) {
        fail("unterminated string");
        return;
      }
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return;
      }
      if (C == '\n' || C < 0x20) {
        fail("unescaped control character in string");
        return;
      }
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos; // '\'
      if (atEnd()) {
        fail("unterminated escape sequence");
        return;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return;
        }
        uint32_t Code = 0;
        for (int Digit = 0; Digit < 4; ++Digit) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<uint32_t>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<uint32_t>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<uint32_t>(H - 'A' + 10);
          else {
            fail("invalid hex digit in \\u escape");
            return;
          }
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        fail("invalid escape character");
        return;
      }
    }
  }

  /// Encodes \p Code as UTF-8.  Surrogates are written as-is in the 3-byte
  /// form (WTF-8 style): report decoding must not lose bytes over pedantry.
  static void appendUtf8(std::string &Out, uint32_t Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  void parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    while (!atEnd() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                        peek() == 'e' || peek() == 'E' || peek() == '+' ||
                        peek() == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("invalid token");
      return;
    }
    // strtod wants a NUL-terminated buffer; the token is short, copy it.
    std::string Token(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    double Value = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || errno == ERANGE ||
        !std::isfinite(Value)) {
      fail("malformed or out-of-range number '" + Token + "'");
      return;
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = Value;
  }

  std::string_view Text;
  size_t MaxDepth;
  size_t Pos = 0;
  uint32_t Line = 1;
  std::string Error;
};

} // namespace

JsonParseResult intro::parseJson(std::string_view Text, size_t MaxDepth) {
  return JsonParser(Text, MaxDepth).run();
}

std::string JsonWriter::escape(std::string_view Text) {
  std::string Result;
  Result.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\r':
      Result += "\\r";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Result += Buffer;
      } else {
        Result += static_cast<char>(C);
      }
    }
  }
  return Result;
}
