//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, fully deterministic xorshift128+ generator.
///
/// The synthetic workload generator must produce identical programs for
/// identical seeds on every platform, so we avoid std::mt19937 distribution
/// functions (whose results are implementation-defined for some adapters)
/// and implement the few draws we need directly.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RNG_H
#define SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace intro {

/// Deterministic xorshift128+ pseudo-random number generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // SplitMix64 seeding, as recommended for xorshift-family generators.
    State0 = splitMix(Seed);
    State1 = splitMix(Seed);
  }

  /// \returns the next 64 pseudo-random bits.
  uint64_t next() {
    uint64_t S1 = State0;
    uint64_t S0 = State1;
    uint64_t Result = S0 + S1;
    State0 = S0;
    S1 ^= S1 << 23;
    State1 = S1 ^ S0 ^ (S1 >> 18) ^ (S0 >> 5);
    return Result;
  }

  /// \returns a uniform integer in [0, Bound).  \p Bound must be positive.
  uint32_t below(uint32_t Bound) {
    assert(Bound > 0 && "empty range");
    // Lemire's multiply-shift rejection-free variant is overkill here; a
    // 64-bit multiply-high gives negligible bias for our bounds.
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a uniform integer in [Lo, Hi] inclusive.
  uint32_t range(uint32_t Lo, uint32_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + below(Hi - Lo + 1);
  }

  /// \returns true with probability \p Permille / 1000.
  bool chance(uint32_t Permille) { return below(1000) < Permille; }

private:
  uint64_t splitMix(uint64_t &X) {
    X += 0x9E3779B97F4A7C15ull;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  uint64_t State0;
  uint64_t State1;
};

} // namespace intro

#endif // SUPPORT_RNG_H
