//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation token: one side signals, long-running loops
/// poll.  Used by the solver's worklist loop so a watchdog (or an impatient
/// service endpoint) can abort a blowing-up deep analysis without killing
/// the process; the solver returns promptly with SolveStatus::Cancelled and
/// a sound-prefix result.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_CANCELLATION_H
#define SUPPORT_CANCELLATION_H

#include <atomic>

namespace intro {

/// A thread-safe, reusable cancellation flag.  cancel() may be called from
/// any thread, any number of times; polling is a relaxed atomic load and is
/// cheap enough for hot loops.
class CancellationToken {
public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken &) = delete;
  CancellationToken &operator=(const CancellationToken &) = delete;

  /// Requests cancellation.  Idempotent.
  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  /// \returns true once cancel() has been called.
  bool isCancelled() const { return Flag.load(std::memory_order_relaxed); }

  /// Re-arms the token for reuse.  Only safe once no worker polls it.
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace intro

#endif // SUPPORT_CANCELLATION_H
