//===- support/Cancellation.h - Cooperative cancellation --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation token: one side signals, long-running loops
/// poll.  Used by the solver's worklist loop so a watchdog (or an impatient
/// service endpoint) can abort a blowing-up deep analysis without killing
/// the process; the solver returns promptly with SolveStatus::Cancelled and
/// a sound-prefix result.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_CANCELLATION_H
#define SUPPORT_CANCELLATION_H

#include <atomic>

namespace intro {

/// A thread-safe, reusable cancellation flag.  cancel() may be called from
/// any thread, any number of times; polling is a relaxed atomic load and is
/// cheap enough for hot loops.
///
/// Tokens can be *linked* into a tree: a child whose linkTo() names a
/// parent also reports cancelled once the parent does.  The portfolio
/// engine uses this to fan one external token out to every racing rung —
/// cancelling a single losing rung cancels only that rung, while the
/// caller's token still reaches all of them — without any thread having to
/// forward signals.
class CancellationToken {
public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken &) = delete;
  CancellationToken &operator=(const CancellationToken &) = delete;

  /// Requests cancellation of this token (and, transitively, of every
  /// token linked below it).  Idempotent.
  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  /// \returns true once cancel() has been called on this token or on any
  /// token it is (transitively) linked to.
  bool isCancelled() const {
    return Flag.load(std::memory_order_relaxed) ||
           (Parent && Parent->isCancelled());
  }

  /// Links this token below \p Ancestor: isCancelled() then also reports
  /// the ancestor's state.  Not synchronized — link before any thread
  /// polls this token, and keep the ancestor alive for this token's whole
  /// polling lifetime.  Pass nullptr to unlink.
  void linkTo(const CancellationToken *Ancestor) { Parent = Ancestor; }

  /// Re-arms the token for reuse.  Only safe once no worker polls it.
  /// Links are kept: a still-cancelled ancestor wins over the reset.
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
  const CancellationToken *Parent = nullptr;
};

} // namespace intro

#endif // SUPPORT_CANCELLATION_H
