//===- support/Json.h - Minimal streaming JSON writer -----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, allocation-light streaming JSON emitter used by the tracing
/// layer and the machine-readable run reports.  The caller drives the
/// structure (beginObject/key/value/...), so field order — and therefore
/// byte-level output — is fully deterministic; the writer only handles
/// commas, escaping, and numeric formatting.
///
/// Robustness rule for reports: non-finite doubles (NaN, ±inf) are emitted
/// as `null`, never as bare `nan`/`inf` tokens — a single degenerate ratio
/// upstream must not make a whole report unparseable.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_JSON_H
#define SUPPORT_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace intro {

/// Streams syntactically valid JSON to an ostream.  Usage:
/// \code
///   JsonWriter J(Out);
///   J.beginObject();
///   J.key("pops");    J.value(uint64_t(42));
///   J.key("spans");   J.beginArray(); J.value("solve"); J.endArray();
///   J.endObject();
/// \endcode
/// Misuse (value without key inside an object, unbalanced begin/end) is a
/// programming error caught by assertions in debug builds.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &Out) : Out(Out) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; must be followed by exactly one value or
  /// container.
  void key(std::string_view Name);

  void value(std::string_view Text);
  void value(const char *Text) { value(std::string_view(Text)); }
  void value(const std::string &Text) { value(std::string_view(Text)); }
  void value(uint64_t Number);
  void value(int64_t Number);
  void value(uint32_t Number) { value(static_cast<uint64_t>(Number)); }
  void value(int Number) { value(static_cast<int64_t>(Number)); }
  void value(bool Flag);
  /// Non-finite values are emitted as null (see file comment).
  void value(double Number);
  void null();

  /// JSON-escapes \p Text (quotes, backslashes, control characters).
  static std::string escape(std::string_view Text);

private:
  /// Emits the separating comma/nothing due before the next element and
  /// marks the enclosing container non-empty.
  void prefix();

  struct Scope {
    bool IsObject;
    bool HasElements = false;
  };
  std::ostream &Out;
  std::vector<Scope> Stack;
  bool PendingKey = false;
};

} // namespace intro

#endif // SUPPORT_JSON_H
