//===- support/Json.h - Minimal streaming JSON writer -----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, allocation-light streaming JSON emitter used by the tracing
/// layer and the machine-readable run reports.  The caller drives the
/// structure (beginObject/key/value/...), so field order — and therefore
/// byte-level output — is fully deterministic; the writer only handles
/// commas, escaping, and numeric formatting.
///
/// Robustness rule for reports: non-finite doubles (NaN, ±inf) are emitted
/// as `null`, never as bare `nan`/`inf` tokens — a single degenerate ratio
/// upstream must not make a whole report unparseable.
///
/// The file also provides the matching *reader* (JsonValue / parseJson):
/// a small recursive-descent parser used by the supervision layer to decode
/// run reports arriving over a pipe from a child process that may have
/// died mid-write.  It never aborts on malformed input — truncation,
/// binary garbage, and pathological nesting all come back as an error
/// message with a line number (the same contract the frontend parser
/// gives for untrusted program text).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_JSON_H
#define SUPPORT_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace intro {

/// Streams syntactically valid JSON to an ostream.  Usage:
/// \code
///   JsonWriter J(Out);
///   J.beginObject();
///   J.key("pops");    J.value(uint64_t(42));
///   J.key("spans");   J.beginArray(); J.value("solve"); J.endArray();
///   J.endObject();
/// \endcode
/// Misuse (value without key inside an object, unbalanced begin/end) is a
/// programming error caught by assertions in debug builds.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &Out) : Out(Out) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; must be followed by exactly one value or
  /// container.
  void key(std::string_view Name);

  void value(std::string_view Text);
  void value(const char *Text) { value(std::string_view(Text)); }
  void value(const std::string &Text) { value(std::string_view(Text)); }
  void value(uint64_t Number);
  void value(int64_t Number);
  void value(uint32_t Number) { value(static_cast<uint64_t>(Number)); }
  void value(int Number) { value(static_cast<int64_t>(Number)); }
  void value(bool Flag);
  /// Non-finite values are emitted as null (see file comment).
  void value(double Number);
  void null();

  /// JSON-escapes \p Text (quotes, backslashes, control characters).
  static std::string escape(std::string_view Text);

private:
  /// Emits the separating comma/nothing due before the next element and
  /// marks the enclosing container non-empty.
  void prefix();

  struct Scope {
    bool IsObject;
    bool HasElements = false;
  };
  std::ostream &Out;
  std::vector<Scope> Stack;
  bool PendingKey = false;
};

/// A parsed JSON value.  Numbers are stored as double plus, when the token
/// was integral and in range, a lossless uint64_t/int64_t view; object
/// member order is preserved (first occurrence wins on duplicate keys).
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return Flag; }
  double asDouble() const { return Num; }
  /// Integral view of a number; truncates like a C cast for non-integers.
  uint64_t asUint() const { return static_cast<uint64_t>(Num); }
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  size_t size() const { return isObject() ? Members.size() : Elems.size(); }

  /// \returns the member named \p Name, or nullptr if absent (or if this
  /// value is not an object) — chainable without null checks at each hop.
  const JsonValue *get(std::string_view Name) const;

  /// Typed member lookups for report decoding: \returns true and stores
  /// into \p Out only when the member exists and has the right type.
  bool getString(std::string_view Name, std::string &Out) const;
  bool getUint(std::string_view Name, uint64_t &Out) const;
  bool getDouble(std::string_view Name, double &Out) const;
  bool getBool(std::string_view Name, bool &Out) const;

  // The parser builds values directly; these are not meant as a public
  // construction API (use JsonWriter to produce JSON).
  Kind K = Kind::Null;
  bool Flag = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Outcome of parseJson: the value on success, else a diagnostic with the
/// 1-based line where parsing stopped.
struct JsonParseResult {
  JsonValue Value;
  std::string Error; ///< Empty on success.
  uint32_t Line = 1; ///< Line of the error (or of the end on success).

  bool ok() const { return Error.empty(); }
};

/// Parses one JSON document from \p Text (trailing whitespace allowed,
/// trailing garbage is an error).  Never throws or aborts: truncated input,
/// binary garbage, numbers out of range, and nesting deeper than
/// \p MaxDepth all yield ok() == false with a line-numbered message.
JsonParseResult parseJson(std::string_view Text, size_t MaxDepth = 128);

} // namespace intro

#endif // SUPPORT_JSON_H
