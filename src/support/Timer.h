//===- support/Timer.h - Monotonic timing helpers ---------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic stopwatch used by the solver's resource budget, the
/// degradation-ladder / portfolio attempt accounting, and the benchmark
/// harnesses.
///
/// The clock is required to be std::chrono::steady_clock — never the wall
/// clock — so that elapsed readings cannot jump backwards (or forwards)
/// under NTP adjustment, manual clock changes, or DST.  TimeBudget
/// enforcement and rung timing depend on this: a wall-clock step while a
/// solve runs must not spuriously trip (or extend) MaxSeconds.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMER_H
#define SUPPORT_TIMER_H

#include <chrono>

namespace intro {

/// A stopwatch that starts on construction.
class Timer {
public:
  /// The time source.  Publicly named so tests can assert properties of
  /// the exact clock backing seconds()/millis().
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Timer must be backed by a monotonic clock: budget "
                "enforcement breaks if elapsed time can go backwards");

  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// \returns elapsed seconds since construction or the last reset().
  /// Non-negative and non-decreasing across successive calls.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// \returns elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1000.0; }

private:
  Clock::time_point Start;
};

} // namespace intro

#endif // SUPPORT_TIMER_H
