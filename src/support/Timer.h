//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic wall-clock stopwatch used by the solver's resource budget
/// and by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TIMER_H
#define SUPPORT_TIMER_H

#include <chrono>

namespace intro {

/// A stopwatch that starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// \returns elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// \returns elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace intro

#endif // SUPPORT_TIMER_H
