//===- support/TupleInterner.cpp - Interned uint32 tuples -----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TupleInterner.h"

#include <algorithm>

using namespace intro;

uint32_t TupleInterner::find(std::span<const uint32_t> Elements) const {
  size_t Hash = TupleHash()(Elements);
  auto [Begin, End] = Buckets.equal_range(Hash);
  for (auto It = Begin; It != End; ++It) {
    std::span<const uint32_t> Existing = elements(It->second);
    if (std::equal(Existing.begin(), Existing.end(), Elements.begin(),
                   Elements.end()))
      return It->second;
  }
  return NotFound;
}

uint32_t TupleInterner::intern(std::span<const uint32_t> Elements) {
  if (uint32_t Existing = find(Elements); Existing != NotFound)
    return Existing;
  size_t Hash = TupleHash()(Elements);

  uint32_t Handle = static_cast<uint32_t>(Offsets.size());
  Offsets.push_back(static_cast<uint32_t>(Arena.size()));
  // The input span may alias the arena (e.g. when interning a truncated
  // view of an existing tuple), so copy it out before the arena can grow.
  std::vector<uint32_t> Copy(Elements.begin(), Elements.end());
  Arena.insert(Arena.end(), Copy.begin(), Copy.end());
  Buckets.emplace(Hash, Handle);
  return Handle;
}
