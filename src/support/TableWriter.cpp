//===- support/TableWriter.cpp - ASCII result tables ----------------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TableWriter.h"

#include <cassert>
#include <cstdio>
#include <ostream>

using namespace intro;

TableWriter::TableWriter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TableWriter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

void TableWriter::print(std::ostream &Out) const {
  // Zero columns would render as a lone "|" with a lone "|" underneath;
  // emit a stable placeholder instead of degenerate alignment output.
  if (Headers.empty()) {
    Out << "(empty table)\n";
    return;
  }
  std::vector<size_t> Widths(Headers.size());
  for (size_t Col = 0; Col < Headers.size(); ++Col)
    Widths[Col] = Headers[Col].size();
  for (const auto &Row : Rows)
    for (size_t Col = 0; Col < Row.size(); ++Col)
      Widths[Col] = std::max(Widths[Col], Row[Col].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    Out << '|';
    for (size_t Col = 0; Col < Cells.size(); ++Col) {
      Out << ' ' << Cells[Col];
      for (size_t Pad = Cells[Col].size(); Pad < Widths[Col]; ++Pad)
        Out << ' ';
      Out << " |";
    }
    Out << '\n';
  };

  PrintRow(Headers);
  Out << '|';
  for (size_t Col = 0; Col < Headers.size(); ++Col) {
    for (size_t Pad = 0; Pad < Widths[Col] + 2; ++Pad)
      Out << '-';
    Out << '|';
  }
  Out << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string TableWriter::num(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string TableWriter::num(uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%llu",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

std::string TableWriter::percent(double Value) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f %%", Value);
  return Buffer;
}
