//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small thread pool for the parallel portfolio engine and
/// the benchmark sweep runners: a fixed number of workers, a FIFO task
/// queue, and std::future-based results.  No work stealing, no priorities,
/// no resizing — the analysis workloads are a handful of long-running,
/// independent solver calls, so a single shared queue is both sufficient
/// and easy to reason about.
///
/// Exceptions thrown by a task are captured by its std::packaged_task and
/// rethrown from the corresponding future's get(), so a crashing solver
/// run surfaces in the submitting thread rather than terminating a worker.
///
/// Destruction drains: the destructor runs every task already queued, then
/// joins the workers.  Callers that want to abandon queued analysis work
/// must cancel it cooperatively (CancellationToken) before destroying the
/// pool.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_THREADPOOL_H
#define SUPPORT_THREADPOOL_H

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace intro {

/// A fixed-size pool of worker threads executing queued tasks in FIFO
/// submission order (start order; completion order depends on run times).
class ThreadPool {
public:
  /// Creates \p Workers worker threads; 0 means defaultWorkerCount().
  explicit ThreadPool(unsigned Workers = 0) {
    if (Workers == 0)
      Workers = defaultWorkerCount();
    Threads.reserve(Workers);
    for (unsigned Index = 0; Index < Workers; ++Index)
      Threads.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains the queue (every already-submitted task still runs), then
  /// joins all workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Draining = true;
    }
    Ready.notify_all();
    for (std::thread &Worker : Threads)
      Worker.join();
  }

  /// Number of worker threads.
  size_t workerCount() const { return Threads.size(); }

  /// Worker count used when the caller does not specify one: every
  /// hardware thread, with a fallback when the runtime cannot tell.
  static unsigned defaultWorkerCount() {
    unsigned Count = std::thread::hardware_concurrency();
    return Count == 0 ? 4 : Count;
  }

  /// Enqueues \p Task and \returns the future of its result.  A thrown
  /// exception is captured and rethrown by future.get().
  template <typename Fn>
  auto submit(Fn &&Task) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto Packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(Task));
    std::future<Result> Future = Packaged->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Queue.emplace_back([Packaged] { (*Packaged)(); });
    }
    Ready.notify_one();
    return Future;
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Job;
      {
        std::unique_lock<std::mutex> Lock(Mutex);
        Ready.wait(Lock, [this] { return Draining || !Queue.empty(); });
        if (Queue.empty())
          return; // Draining and drained.
        Job = std::move(Queue.front());
        Queue.pop_front();
      }
      Job();
    }
  }

  std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  bool Draining = false;
};

/// Splits [0, \p Count) into \p ShardCount contiguous slices and runs
/// \p Body(ShardIndex, Begin, End) for each on \p Pool, blocking until all
/// slices finish.  The slice boundaries depend only on Count and
/// ShardCount, so any per-shard accumulation a caller merges in shard-index
/// order is deterministic.  Exceptions from any shard rethrow here (the
/// remaining shards still run to completion first).
///
/// Must not be called from inside a task running on \p Pool — the caller
/// blocks on the shard futures while holding no worker, and a worker
/// calling it could deadlock a fully-busy pool.
template <typename Fn>
inline void parallelForShards(ThreadPool &Pool, size_t Count,
                              size_t ShardCount, Fn &&Body) {
  ShardCount = std::clamp<size_t>(ShardCount, 1, std::max<size_t>(Count, 1));
  if (ShardCount == 1) {
    Body(size_t(0), size_t(0), Count); // Inline: nothing to parallelize.
    return;
  }
  std::vector<std::future<void>> Shards;
  Shards.reserve(ShardCount);
  for (size_t Shard = 0; Shard < ShardCount; ++Shard) {
    size_t Begin = Count * Shard / ShardCount;
    size_t End = Count * (Shard + 1) / ShardCount;
    Shards.push_back(
        Pool.submit([&Body, Shard, Begin, End] { Body(Shard, Begin, End); }));
  }
  // get() in order so the first failure's exception propagates after every
  // shard has stopped touching caller-owned buffers.
  std::exception_ptr First;
  for (std::future<void> &Shard : Shards) {
    try {
      Shard.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

} // namespace intro

#endif // SUPPORT_THREADPOOL_H
