//===- support/Trace.h - Structured solver tracing --------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured event recorder for the analysis pipeline: spans (timed
/// begin/end pairs), integer counters, and instant events, recorded into
/// per-thread buffers and merged at flush.  The paper's whole method is
/// *measuring* an analysis to decide how to run it; this is the layer that
/// makes our own runs measurable.
///
/// Design constraints, in order:
///
///  1. **Zero cost when off.**  Compiling with INTRO_TRACE_DISABLED turns
///     every TRACE_* macro into nothing.  In the default (enabled) build,
///     an event site with no recorder installed costs one relaxed atomic
///     load and a predictable branch — no allocation, no lock (asserted by
///     trace_tests and priced by bench/micro_engine).
///
///  2. **Lock-free-enough when on.**  Each recording thread appends to its
///     own buffer and bumps its own counter table; the recorder's mutex is
///     taken only on a thread's *first* event (buffer registration) and at
///     flush.  No event-path contention between threads.
///
///  3. **Deterministic content.**  Event *names* are compile-time string
///     literals; counters merge by name-sorted sum; span/instant summaries
///     merge by name-sorted count+sum.  For a deterministic workload the
///     merged summary is byte-identical for any thread count or schedule —
///     only timestamps (and their Chrome export) vary run to run.
///
/// Flush contract: finish() (and the exporters, which call it) must only
/// run after every recording thread has quiesced with a happens-before
/// edge to the caller — join the threads or destroy the pool first.  This
/// is the same contract the portfolio engine already obeys for results.
///
/// Event taxonomy and the determinism argument are documented in
/// DESIGN.md §8.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TRACE_H
#define SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace intro {

class JsonWriter;

namespace trace {

/// One recorded event.  Name must have static storage duration (the
/// TRACE_* macros pass string literals); timestamps are nanoseconds on the
/// recorder's monotonic clock.
struct Event {
  enum class Kind : uint8_t {
    Begin,   ///< Span opened.
    End,     ///< Span closed.
    Counter, ///< Counter delta (aggregated at flush).
    Instant, ///< Point event carrying a value.
  };
  Kind K;
  const char *Name;
  uint64_t TimeNs;
  uint64_t Value;
};

/// Name-merged statistics of one event name after flush.
struct NameSummary {
  uint64_t Count = 0;   ///< Events (span pairs / instants) with this name.
  uint64_t Sum = 0;     ///< Counter total or instant-value sum.
  uint64_t TotalNs = 0; ///< Span-only: summed wall-clock inside the span.
};

class Recorder;

/// \returns the currently installed recorder, or nullptr (relaxed load;
/// this is the only cost an event site pays when tracing is off).
Recorder *active();

/// A structured event recorder.  Install with start(), record through the
/// TRACE_* macros (or the member functions), then stop() and export.
/// At most one recorder is active at a time; nesting is a caller bug.
class Recorder {
public:
  Recorder();
  ~Recorder(); ///< Uninstalls if still active.

  Recorder(const Recorder &) = delete;
  Recorder &operator=(const Recorder &) = delete;

  /// Installs this recorder as the active event sink and starts the clock.
  void start();

  /// Uninstalls the recorder and merges all per-thread buffers.  See the
  /// flush contract in the file comment.  Idempotent.
  void stop();

  // --- Recording (called through the TRACE_* macros) ---------------------

  void beginSpan(const char *Name) { append(Event::Kind::Begin, Name, 0); }
  void endSpan(const char *Name) { append(Event::Kind::End, Name, 0); }
  void counterAdd(const char *Name, uint64_t Delta);
  void instant(const char *Name, uint64_t Value) {
    append(Event::Kind::Instant, Name, Value);
  }

  // --- Exports (implicitly stop() first) ---------------------------------

  /// All merged events in (thread-registration-order, record-order).
  const std::vector<Event> &events();

  /// Counter totals merged by name (deterministic).
  const std::map<std::string, uint64_t> &counters();

  /// Span summaries merged by name: pair count + total nanoseconds.
  const std::map<std::string, NameSummary> &spans();

  /// Instant summaries merged by name: count + value sum.
  const std::map<std::string, NameSummary> &instants();

  /// Writes the Chrome trace_event JSON object format — loadable in
  /// chrome://tracing and Perfetto: {"traceEvents": [...], ...}.
  /// Timestamps are microseconds from recorder start.
  void writeChromeTrace(std::ostream &Out);

  /// Writes the deterministic trace summary (counters, span summaries
  /// without timings, instant summaries) as one JSON object.  For a
  /// deterministic workload this section is byte-identical across thread
  /// counts; run reports embed it as their "trace" member.
  void writeDeterministicSummary(JsonWriter &J);

private:
  struct ThreadLog {
    std::vector<Event> Events;
    /// Per-thread counter cells, append-ordered; looked up linearly (the
    /// instrumented code uses a handful of distinct counters).
    std::vector<std::pair<const char *, uint64_t>> Counters;
    uint32_t Tid = 0;
  };

  /// \returns this thread's log, registering it on first use.
  ThreadLog &localLog();
  void append(Event::Kind K, const char *Name, uint64_t Value);
  uint64_t nowNs() const;
  void mergeLogs();

  std::mutex LogMutex;
  std::vector<std::unique_ptr<ThreadLog>> Logs;

  uint64_t StartNs = 0;
  uint64_t Generation = 0;
  bool Stopped = true;

  std::vector<Event> Merged;
  std::map<std::string, uint64_t> MergedCounters;
  std::map<std::string, NameSummary> SpanSummaries;
  std::map<std::string, NameSummary> InstantSummaries;
};

/// RAII span: opens on construction, closes on destruction.  Captures the
/// recorder once, so a span that straddles a stop() still closes into the
/// same recorder (stop() tolerates post-stop appends from the owning
/// thread; see Trace.cpp).
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name) : R(active()), Name(Name) {
    if (R)
      R->beginSpan(Name);
  }
  ~ScopedSpan() {
    if (R)
      R->endSpan(Name);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  Recorder *R;
  const char *Name;
};

inline void counterAdd(const char *Name, uint64_t Delta) {
  if (Recorder *R = active())
    R->counterAdd(Name, Delta);
}

inline void instant(const char *Name, uint64_t Value) {
  if (Recorder *R = active())
    R->instant(Name, Value);
}

} // namespace trace
} // namespace intro

// --- Macros -----------------------------------------------------------------
//
// TRACE_SPAN("name")            — RAII span covering the enclosing scope.
// TRACE_COUNTER("name", delta)  — adds delta to a named counter.
// TRACE_INSTANT("name", value)  — point event carrying a value.
//
// Names MUST be string literals (static storage; the recorder stores the
// pointer).  Compiling with -DINTRO_TRACE_DISABLED removes every call site
// entirely.

#define INTRO_TRACE_CONCAT_IMPL(A, B) A##B
#define INTRO_TRACE_CONCAT(A, B) INTRO_TRACE_CONCAT_IMPL(A, B)

#ifndef INTRO_TRACE_DISABLED
#define TRACE_SPAN(NAME)                                                       \
  ::intro::trace::ScopedSpan INTRO_TRACE_CONCAT(TraceSpan_, __LINE__)(NAME)
#define TRACE_COUNTER(NAME, DELTA) ::intro::trace::counterAdd(NAME, DELTA)
#define TRACE_INSTANT(NAME, VALUE) ::intro::trace::instant(NAME, VALUE)
#else
#define TRACE_SPAN(NAME)                                                       \
  do {                                                                         \
  } while (false)
#define TRACE_COUNTER(NAME, DELTA)                                             \
  do {                                                                         \
  } while (false)
#define TRACE_INSTANT(NAME, VALUE)                                             \
  do {                                                                         \
  } while (false)
#endif

#endif // SUPPORT_TRACE_H
