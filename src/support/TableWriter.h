//===- support/TableWriter.h - ASCII result tables --------------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders benchmark results as aligned ASCII tables, mirroring the rows and
/// columns of the paper's figures so that EXPERIMENTS.md can quote harness
/// output verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TABLEWRITER_H
#define SUPPORT_TABLEWRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace intro {

/// Accumulates rows of string cells and prints them column-aligned.
class TableWriter {
public:
  /// Creates a table with the given column \p Headers.
  explicit TableWriter(std::vector<std::string> Headers);

  /// Appends one row; must have as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (headers, separator, rows) to \p Out.  A table with
  /// no rows prints just the header and separator; a table with no columns
  /// prints a stable "(empty table)" placeholder.
  void print(std::ostream &Out) const;

  /// Formats \p Value with \p Decimals fraction digits.
  static std::string num(double Value, int Decimals = 1);

  /// Formats \p Value as an integer with no grouping.
  static std::string num(uint64_t Value);

  /// Formats \p Value as a percentage with one fraction digit, e.g. "12.3 %".
  static std::string percent(double Value);

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace intro

#endif // SUPPORT_TABLEWRITER_H
