//===- support/Subprocess.cpp - Supervised child processes ----------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <mutex>
#include <new>
#include <streambuf>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace intro;

const char *intro::childStatusName(ChildStatus Status) {
  switch (Status) {
  case ChildStatus::CleanExit:
    return "clean-exit";
  case ChildStatus::NonzeroExit:
    return "nonzero-exit";
  case ChildStatus::Signalled:
    return "signalled";
  case ChildStatus::OutOfMemory:
    return "out-of-memory";
  case ChildStatus::WatchdogKill:
    return "watchdog-kill";
  }
  return "?";
}

namespace {

/// Unbuffered streambuf over a pipe write end: every overflow/xsputn goes
/// straight to write(2), so whatever the child managed to emit before a
/// crash is visible to the parent — no stdio buffer dies with the process.
class FdStreamBuf : public std::streambuf {
public:
  explicit FdStreamBuf(int Fd) : Fd(Fd) {}

private:
  int_type overflow(int_type Ch) override {
    if (Ch == traits_type::eof())
      return traits_type::not_eof(Ch);
    char Byte = static_cast<char>(Ch);
    return writeAll(&Byte, 1) ? Ch : traits_type::eof();
  }

  std::streamsize xsputn(const char *Data, std::streamsize Count) override {
    return writeAll(Data, static_cast<size_t>(Count))
               ? Count
               : std::streamsize(0);
  }

  bool writeAll(const char *Data, size_t Count) {
    while (Count > 0) {
      ssize_t Written = ::write(Fd, Data, Count);
      if (Written < 0) {
        if (errno == EINTR)
          continue;
        return false; // Parent gone (EPIPE with SIGPIPE ignored) — drop.
      }
      Data += Written;
      Count -= static_cast<size_t>(Written);
    }
    return true;
  }

  int Fd;
};

/// Applies the rlimit guards inside the child.  Failures are ignored on
/// purpose: a container that forbids setrlimit should degrade to "no hard
/// limit", not to "no analysis".
void applyChildLimits(const ChildLimits &Limits) {
  if (Limits.MaxAddressSpaceBytes > 0) {
    rlimit Limit;
    Limit.rlim_cur = static_cast<rlim_t>(Limits.MaxAddressSpaceBytes);
    Limit.rlim_max = static_cast<rlim_t>(Limits.MaxAddressSpaceBytes);
    (void)setrlimit(RLIMIT_AS, &Limit);
  }
  if (Limits.MaxCpuSeconds > 0) {
    rlimit Limit;
    Limit.rlim_cur = Limits.MaxCpuSeconds;
    // Hard limit one second above soft: if the SIGXCPU default disposition
    // was somehow masked, the kernel follows up with SIGKILL.
    Limit.rlim_max = Limits.MaxCpuSeconds + 1;
    (void)setrlimit(RLIMIT_CPU, &Limit);
  }
}

/// The child side of runSupervisedChild: runs the payload with the report
/// stream and never returns.  _exit (not exit) keeps the parent's atexit
/// handlers, stdio flushes, and static destructors from running twice.
[[noreturn]] void runChild(int WriteFd, const ChildLimits &Limits,
                           const ChildPayload &Payload) {
  // A parent that gave up must not turn our report write into SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  applyChildLimits(Limits);
  int Code = ChildExceptionExitCode;
  try {
    FdStreamBuf Buf(WriteFd);
    std::ostream Report(&Buf);
    Code = Payload(Report);
  } catch (const std::bad_alloc &) {
    Code = OomExitCode;
  } catch (...) {
    Code = ChildExceptionExitCode;
  }
  ::close(WriteFd);
  ::_exit(Code);
}

/// fork() is serialized across supervisor threads: glibc makes
/// malloc-after-fork safe via atfork handlers, but two simultaneous forks
/// copying pipe fds racing with fcntl would be needless exposure.
std::mutex &forkMutex() {
  static std::mutex M;
  return M;
}

/// Turns the raw waitpid status into a ChildStatus.  Two deliberate
/// wrinkles: (a) a watchdog kill wins over whatever the status word says —
/// the parent pulled the trigger, so the signal is ours, not the child's;
/// (b) under an armed RLIMIT_AS, SIGABRT is read as out-of-memory, because
/// sanitizer runtimes abort on allocation failure instead of letting
/// std::bad_alloc propagate to the harness.
void classify(ChildResult &Result, int Status, bool WatchdogFired,
              const ChildLimits &Limits) {
  if (WatchdogFired) {
    Result.Status = ChildStatus::WatchdogKill;
    Result.TermSignal = SIGKILL;
    return;
  }
  if (WIFEXITED(Status)) {
    Result.ExitCode = WEXITSTATUS(Status);
    if (Result.ExitCode == 0)
      Result.Status = ChildStatus::CleanExit;
    else if (Result.ExitCode == OomExitCode)
      Result.Status = ChildStatus::OutOfMemory;
    else
      Result.Status = ChildStatus::NonzeroExit;
    return;
  }
  if (WIFSIGNALED(Status)) {
    Result.TermSignal = WTERMSIG(Status);
    if (Result.TermSignal == SIGABRT && Limits.MaxAddressSpaceBytes > 0)
      Result.Status = ChildStatus::OutOfMemory;
    else
      Result.Status = ChildStatus::Signalled;
    return;
  }
  // Stopped/continued should be impossible without WUNTRACED; treat as a
  // nonzero exit so the supervisor retries rather than trusting garbage.
  Result.Status = ChildStatus::NonzeroExit;
  Result.ExitCode = ChildExceptionExitCode;
}

} // namespace

ChildResult intro::runSupervisedChild(const ChildLimits &Limits,
                                      const ChildPayload &Payload,
                                      const ChildOutputSink &Sink) {
  TRACE_SPAN("supervise.launch");
  ChildResult Result;
  Timer Clock;

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    Result.Status = ChildStatus::NonzeroExit;
    Result.ExitCode = ChildExceptionExitCode;
    Result.Output = "";
    return Result;
  }

  // Buffered stdout/stderr must not be duplicated into the child (it would
  // replay the parent's pending output on its own exit path via write(2)
  // inside the payload's own printing, if any).
  std::fflush(stdout);
  std::fflush(stderr);

  pid_t Pid;
  {
    std::lock_guard<std::mutex> Lock(forkMutex());
    Pid = ::fork();
  }
  if (Pid < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    Result.Status = ChildStatus::NonzeroExit;
    Result.ExitCode = ChildExceptionExitCode;
    return Result;
  }
  if (Pid == 0) {
    ::close(Pipe[0]);
    runChild(Pipe[1], Limits, Payload); // Never returns.
  }

  // --- Parent: drain the pipe under the watchdog, then reap. --------------
  ::close(Pipe[1]);
  int ReadFd = Pipe[0];
  bool WatchdogFired = false;
  bool CancelFired = false;

  {
    TRACE_SPAN("supervise.wait");
    char Buffer[4096];
    while (true) {
      double Remaining = -1; // poll() "infinite".
      if (Limits.WallDeadlineSeconds > 0) {
        Remaining = Limits.WallDeadlineSeconds - Clock.seconds();
        if (Remaining <= 0 && !WatchdogFired) {
          TRACE_SPAN("supervise.kill");
          TRACE_INSTANT("supervise.watchdog_fired", 1);
          ::kill(Pid, SIGKILL);
          WatchdogFired = true;
          Remaining = -1; // Kill delivered; drain to EOF unbounded.
        }
      }
      // Cancel kill switch: like the watchdog the parent pulls the trigger,
      // but the classification stays Signalled/SIGKILL — a cancel is the
      // caller's decision, not a resource verdict, and callers that cancel
      // interpret the death themselves.
      if (Limits.Cancel && !WatchdogFired && !CancelFired &&
          Limits.Cancel->load(std::memory_order_relaxed)) {
        TRACE_INSTANT("supervise.cancel_kill", 1);
        ::kill(Pid, SIGKILL);
        CancelFired = true;
        Remaining = -1; // Kill delivered; drain to EOF unbounded.
      }
      pollfd Poll;
      Poll.fd = ReadFd;
      Poll.events = POLLIN;
      Poll.revents = 0;
      // Cap the slice so the deadline (and the cancel flag) is honored
      // within ~50ms even if the child neither writes nor exits.
      int SliceCapMs = Limits.Cancel && !CancelFired ? 50 : 1000;
      int TimeoutMs =
          (Remaining < 0) ? SliceCapMs
                          : static_cast<int>(std::min(Remaining, 0.05) * 1000);
      int Ready = ::poll(&Poll, 1, TimeoutMs < 1 ? 1 : TimeoutMs);
      if (Ready < 0) {
        if (errno == EINTR)
          continue;
        break;
      }
      if (Ready == 0)
        continue; // Timeout slice: re-check the deadline.
      ssize_t Count = ::read(ReadFd, Buffer, sizeof(Buffer));
      if (Count > 0) {
        Result.Output.append(Buffer, static_cast<size_t>(Count));
        if (Sink)
          Sink(std::string_view(Buffer, static_cast<size_t>(Count)));
        continue;
      }
      if (Count < 0 && errno == EINTR)
        continue;
      break; // EOF (child exited or closed) or hard read error.
    }
  }
  ::close(ReadFd);

  // The child may linger briefly after closing its pipe; the reap below is
  // bounded because either it exited (EOF path) or SIGKILL is in flight
  // (watchdog path).  A spinning child that closed its pipe but never
  // exits is still covered: arm the watchdog kill on the way in.
  if ((Limits.WallDeadlineSeconds > 0 || Limits.Cancel) && !WatchdogFired &&
      !CancelFired) {
    // EOF before deadline: give the child the rest of its deadline to
    // exit, then kill.  Poll waitpid in 10ms slices on the steady clock,
    // honoring the cancel switch the same way the drain loop does.
    int Status = 0;
    while (true) {
      pid_t Reaped = ::waitpid(Pid, &Status, WNOHANG);
      if (Reaped == Pid || (Reaped < 0 && errno != EINTR))
        break;
      if (Limits.WallDeadlineSeconds > 0 &&
          Clock.seconds() >= Limits.WallDeadlineSeconds) {
        TRACE_INSTANT("supervise.watchdog_fired", 1);
        ::kill(Pid, SIGKILL);
        WatchdogFired = true;
        Reaped = ::waitpid(Pid, &Status, 0);
        break;
      }
      if (Limits.Cancel && Limits.Cancel->load(std::memory_order_relaxed)) {
        TRACE_INSTANT("supervise.cancel_kill", 1);
        ::kill(Pid, SIGKILL);
        Reaped = ::waitpid(Pid, &Status, 0);
        break;
      }
      ::usleep(10'000);
    }
    classify(Result, Status, WatchdogFired, Limits);
    Result.Seconds = Clock.seconds();
    return Result;
  }

  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  classify(Result, Status, WatchdogFired, Limits);
  Result.Seconds = Clock.seconds();
  return Result;
}
