//===- support/Subprocess.h - Supervised child processes --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hard, process-level isolation for one analysis job.  The cooperative
/// layers (cancellation tokens, tuple/time/memory budgets) only help when
/// the code under analysis cooperates; a segfault, a runaway allocation the
/// book-keeping missed, or a hang in a pathological input kills the whole
/// service.  runSupervisedChild() forks, applies setrlimit guards
/// (RLIMIT_AS, RLIMIT_CPU) in the child, runs a payload that writes its
/// result to a pipe, and supervises from the parent with a monotonic
/// watchdog deadline — draining the pipe the whole time so a chatty child
/// can never deadlock against a full pipe buffer.
///
/// The child is always reaped (waitpid until the exact pid is collected),
/// so supervision never leaks zombies; supervise_tests asserts this with
/// waitpid(-1) accounting after every scenario.
///
/// Classification, not diagnosis: the parent reports *how* the child ended
/// (clean exit / nonzero exit / signal / out-of-memory / watchdog kill);
/// interpreting the payload's report bytes is the caller's job (see
/// supervise/Supervise.h).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SUBPROCESS_H
#define SUPPORT_SUBPROCESS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace intro {

/// Hard limits applied inside the forked child before the payload runs.
struct ChildLimits {
  /// RLIMIT_AS in bytes; 0 leaves the limit untouched.  When the limit is
  /// hit, allocation fails in the child; the harness turns that into the
  /// dedicated OOM exit code (OomExitCode) rather than a crash.
  uint64_t MaxAddressSpaceBytes = 0;
  /// RLIMIT_CPU in seconds; 0 leaves the limit untouched.  Exceeding it
  /// delivers SIGXCPU (default: kill), a CPU-time cousin of the watchdog.
  uint32_t MaxCpuSeconds = 0;
  /// Parent-side wall-clock watchdog on the Timer (steady) clock; past the
  /// deadline the child is SIGKILLed and reported as WatchdogKill.  0
  /// disables the watchdog.
  double WallDeadlineSeconds = 0;
  /// Runtime-only cooperative kill switch (not a limit, but enforced by
  /// the same parent supervision loop): when it becomes true the child is
  /// SIGKILLed and the run classifies naturally as Signalled/SIGKILL —
  /// deliberately *not* WatchdogKill, which is reserved for the deadline.
  /// The analysis service uses this for its cancel requests.  Must outlive
  /// the runSupervisedChild call; never serialized into reports.
  const std::atomic<bool> *Cancel = nullptr;
};

/// How a supervised child ended, from the parent's perspective.
enum class ChildStatus : uint8_t {
  CleanExit,    ///< _exit(0); the payload's report (if any) is in Output.
  NonzeroExit,  ///< _exit(code != 0); code preserved in ExitCode.
  Signalled,    ///< Killed by a signal (segfault, abort, SIGXCPU, ...).
  OutOfMemory,  ///< Allocation failed under RLIMIT_AS (see OomExitCode).
  WatchdogKill, ///< The parent killed it past WallDeadlineSeconds.
};

/// \returns a stable lower-case name for \p Status (used in reports).
const char *childStatusName(ChildStatus Status);

/// Exit code the child harness uses to report an allocation failure —
/// deliberately outside the tool exit-code space (support/ExitCodes.h) so
/// the supervisor can tell "the analysis failed" from "the process starved".
inline constexpr int OomExitCode = 97;
/// Exit code for a payload that threw an unexpected exception.
inline constexpr int ChildExceptionExitCode = 98;

/// Everything the parent learns about one supervised child run.
struct ChildResult {
  ChildStatus Status = ChildStatus::CleanExit;
  int ExitCode = 0;    ///< Valid when the child exited.
  int TermSignal = 0;  ///< Valid when Status == Signalled (raw signo).
  std::string Output;  ///< Every byte the payload wrote to its pipe.
  double Seconds = 0;  ///< Wall clock from fork to reap (timing-only).
};

/// The payload a child runs: writes its report to the stream (backed by
/// the pipe) and returns the process exit code.  It must not assume any
/// parent state beyond what it captured by value or reads read-only —
/// after fork there is exactly one thread.
using ChildPayload = std::function<int(std::ostream &Report)>;

/// Incremental observer of the child's pipe bytes, invoked on the
/// supervising thread as each chunk is drained — *before* the child has
/// necessarily exited.  The analysis service streams per-rung progress to
/// its clients through this.  Chunks are raw bytes in write order (the
/// same bytes accumulated into ChildResult::Output); chunk boundaries are
/// pipe-read boundaries, not line boundaries.
using ChildOutputSink = std::function<void(std::string_view Chunk)>;

/// Forks; the child applies \p Limits, runs \p Payload, and _exit()s with
/// its return value (std::bad_alloc => OomExitCode, any other exception =>
/// ChildExceptionExitCode).  The parent captures the pipe, enforces the
/// watchdog (and the Limits.Cancel kill switch), reaps the child, and
/// classifies the outcome.  A non-null \p Sink additionally observes every
/// drained chunk as it arrives.
///
/// Safe to call concurrently from several supervisor threads: fork() is
/// serialized internally and each caller waits on its own pid only.
ChildResult runSupervisedChild(const ChildLimits &Limits,
                               const ChildPayload &Payload,
                               const ChildOutputSink &Sink = nullptr);

} // namespace intro

#endif // SUPPORT_SUBPROCESS_H
