//===- support/SetUtils.h - Sorted-vector set operations --------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Points-to sets are represented as sorted vectors of dense 32-bit handles.
/// This header provides the handful of set operations the solver needs:
/// membership, insertion, and "merge the delta in, returning what was new".
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SETUTILS_H
#define SUPPORT_SETUTILS_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace intro {

/// A set of dense handles stored as a sorted, duplicate-free vector.
using SortedIdSet = std::vector<uint32_t>;

/// \returns true if \p Set contains \p Value.
inline bool setContains(const SortedIdSet &Set, uint32_t Value) {
  return std::binary_search(Set.begin(), Set.end(), Value);
}

/// Inserts \p Value into \p Set. \returns true if it was newly added.
inline bool setInsert(SortedIdSet &Set, uint32_t Value) {
  auto It = std::lower_bound(Set.begin(), Set.end(), Value);
  if (It != Set.end() && *It == Value)
    return false;
  Set.insert(It, Value);
  return true;
}

/// Merges sorted \p Delta into \p Set, appending the genuinely new elements
/// to \p NewElements (which is not cleared).
inline void setUnionInto(SortedIdSet &Set, const SortedIdSet &Delta,
                         SortedIdSet &NewElements) {
  if (Delta.empty())
    return;
  size_t FirstNew = NewElements.size();
  std::set_difference(Delta.begin(), Delta.end(), Set.begin(), Set.end(),
                      std::back_inserter(NewElements));
  if (NewElements.size() == FirstNew)
    return;
  SortedIdSet Merged;
  Merged.reserve(Set.size() + (NewElements.size() - FirstNew));
  std::merge(Set.begin(), Set.end(), NewElements.begin() + FirstNew,
             NewElements.end(), std::back_inserter(Merged));
  Set.swap(Merged);
}

/// Sorts \p Values and removes duplicates in place.
inline void setNormalize(SortedIdSet &Values) {
  std::sort(Values.begin(), Values.end());
  Values.erase(std::unique(Values.begin(), Values.end()), Values.end());
}

} // namespace intro

#endif // SUPPORT_SETUTILS_H
