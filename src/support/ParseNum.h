//===- support/ParseNum.h - Strict numeric CLI parsing ----------*- C++ -*-===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked decimal parsing for command-line flag values.  The std::stoul
/// family is the wrong tool for a CLI: on LP64 it happily parses values far
/// above uint32_t max (a later static_cast then truncates silently), it
/// accepts leading whitespace and signs, it stops at the first non-digit
/// instead of rejecting trailing garbage, and a fully non-numeric value
/// escapes as std::invalid_argument — which a tool's outer try/catch then
/// misreports as an internal error (exit 3) instead of bad input (exit 2).
///
/// These helpers accept exactly the strings a user would call a number —
/// nonempty, all ASCII digits (or a plain decimal for parseF64) — enforce a
/// [Min, Max] range, and on failure produce a diagnostic that names the
/// offending flag, so `--retries=x` reports "bad value for --retries"
/// rather than a stack unwind.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_PARSENUM_H
#define SUPPORT_PARSENUM_H

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>

namespace intro {

/// Parses \p Text as a decimal uint64 in [\p Min, \p Max] for flag
/// \p Flag (e.g. "--seed").  \returns true and sets \p Out on success;
/// otherwise \returns false and sets \p Error to a named-flag diagnostic.
inline bool parseU64(std::string_view Flag, std::string_view Text,
                     uint64_t Min, uint64_t Max, uint64_t &Out,
                     std::string &Error) {
  auto fail = [&](const char *Why) {
    Error = "bad value for " + std::string(Flag) + ": '" + std::string(Text) +
            "' (" + Why + ")";
    return false;
  };
  if (Text.empty())
    return fail("expected a decimal integer");
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return fail("expected a decimal integer");
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (std::numeric_limits<uint64_t>::max() - Digit) / 10)
      return fail("value does not fit in 64 bits");
    Value = Value * 10 + Digit;
  }
  if (Value < Min || Value > Max) {
    Error = "bad value for " + std::string(Flag) + ": '" + std::string(Text) +
            "' (expected an integer in [" + std::to_string(Min) + ", " +
            std::to_string(Max) + "])";
    return false;
  }
  Out = Value;
  return true;
}

/// uint32_t variant of parseU64: same validation, range additionally
/// bounded by the uint32_t representable range.
inline bool parseU32(std::string_view Flag, std::string_view Text,
                     uint32_t Min, uint32_t Max, uint32_t &Out,
                     std::string &Error) {
  uint64_t Wide = 0;
  if (!parseU64(Flag, Text, Min, Max, Wide, Error))
    return false;
  Out = static_cast<uint32_t>(Wide);
  return true;
}

/// Parses \p Text as a finite decimal double in [\p Min, \p Max].  Rejects
/// empty strings, leading whitespace/signs, trailing garbage, hex floats,
/// and inf/nan spellings — flag values are plain decimals like "1.5".
inline bool parseF64(std::string_view Flag, std::string_view Text, double Min,
                     double Max, double &Out, std::string &Error) {
  auto fail = [&](const char *Why) {
    Error = "bad value for " + std::string(Flag) + ": '" + std::string(Text) +
            "' (" + Why + ")";
    return false;
  };
  if (Text.empty())
    return fail("expected a decimal number");
  for (char C : Text)
    if ((C < '0' || C > '9') && C != '.')
      return fail("expected a decimal number");
  std::string Owned(Text);
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Owned.c_str(), &End);
  if (End != Owned.c_str() + Owned.size() || errno == ERANGE ||
      !std::isfinite(Value))
    return fail("expected a decimal number");
  if (Value < Min || Value > Max) {
    Error = "bad value for " + std::string(Flag) + ": '" + std::string(Text) +
            "' (expected a number in [" + std::to_string(Min) + ", " +
            std::to_string(Max) + "])";
    return false;
  }
  Out = Value;
  return true;
}

} // namespace intro

#endif // SUPPORT_PARSENUM_H
