//===- fuzz/Mutator.cpp - Frontend round-trip mutation fuzzing ------------===//
//
// Part of the introspective-analysis project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "frontend/Parser.h"
#include "frontend/Printer.h"
#include "support/Rng.h"

using namespace intro;
using namespace intro::fuzz;

std::string intro::fuzz::mutateBytes(uint64_t Seed, const std::string &Input) {
  // Mix the input length into the stream so equal seeds on different inputs
  // do not replay the same edit script at the same offsets.
  Rng R(Seed ^ (0x9e3779b97f4a7c15ULL * (Input.size() + 1)));
  std::string Out = Input;
  uint32_t Edits = 1 + R.below(4);
  for (uint32_t Edit = 0; Edit < Edits; ++Edit) {
    if (Out.empty()) {
      Out.push_back(static_cast<char>(R.below(256)));
      continue;
    }
    uint32_t Size = static_cast<uint32_t>(Out.size());
    switch (R.below(5)) {
    case 0: { // Flip one byte to an arbitrary value.
      Out[R.below(Size)] = static_cast<char>(R.below(256));
      break;
    }
    case 1: { // Insert an arbitrary byte.
      Out.insert(Out.begin() + R.below(Size + 1),
                 static_cast<char>(R.below(256)));
      break;
    }
    case 2: { // Delete one byte.
      Out.erase(Out.begin() + R.below(Size));
      break;
    }
    case 3: { // Duplicate a short span somewhere else.
      uint32_t From = R.below(Size);
      uint32_t Len = 1 + R.below(16);
      if (From + Len > Size)
        Len = Size - From;
      std::string Span = Out.substr(From, Len);
      Out.insert(R.below(static_cast<uint32_t>(Out.size()) + 1), Span);
      break;
    }
    case 4: { // Truncate at a random point.
      Out.resize(R.below(Size + 1));
      break;
    }
    }
  }
  return Out;
}

RoundTripOutcome intro::fuzz::roundTripCheck(const std::string &Source) {
  RoundTripOutcome Out;
  ParseResult First = parseProgram(Source);
  if (!First.ok())
    return Out; // Diagnosed, not crashed: contract satisfied.
  Out.Parsed = true;
  std::string Printed = printProgram(First.Prog);
  ParseResult Second = parseProgram(Printed);
  if (!Second.ok()) {
    Out.Detail = "printed form fails to re-parse: " + Second.Errors.front();
    return Out;
  }
  std::string Reprinted = printProgram(Second.Prog);
  if (Reprinted != Printed) {
    Out.Detail = "print/parse not a one-step fixpoint";
    return Out;
  }
  Out.Fixpoint = true;
  return Out;
}
